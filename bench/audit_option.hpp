// --audit[=FILE] support for the figure-reproduction benches.
//
// Mirrors telemetry_option.hpp: each fig6/7/8 binary constructs one
// AuditOption from its argv.  When the flag is absent the option is inert
// (auditing disabled, outputs bit-identical to the flagless binary) and
// finish() is a no-op returning 0.  When present, every collected trace
// additionally runs one closed-loop fidelity audit (src/audit/) in its own
// world, a verdict table prints after the figure, and finish() writes the
// accumulated reports as a machine-readable fidelity trajectory (schema
// "tracemod-fidelity-trajectory-v1", default file BENCH_fidelity.json --
// the schema is documented in EXPERIMENTS.md).  finish() returns 4 when
// any report breached its thresholds, so CI can gate on the exit status.
#pragma once

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "audit/auditor.hpp"
#include "scenarios/experiment.hpp"
#include "sim/io/durable.hpp"
#include "version.hpp"

namespace tracemod::bench {

class AuditOption {
 public:
  AuditOption(int argc, char** argv, scenarios::ExperimentConfig& cfg) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--audit") == 0) {
        path_ = "BENCH_fidelity.json";
        cfg.audit.enabled = true;
      } else if (std::strncmp(arg, "--audit=", 8) == 0 && arg[8] != '\0') {
        path_ = arg + 8;
        cfg.audit.enabled = true;
      }
    }
  }

  bool enabled() const { return !path_.empty(); }

  /// Accumulates reports, prefixing each label with "<prefix>/"; safe to
  /// call when disabled (the reports vector is empty then).
  void add(const std::vector<audit::FidelityReport>& reports,
           const std::string& prefix) {
    for (audit::FidelityReport r : reports) {
      if (!prefix.empty()) r.label = prefix + "/" + r.label;
      reports_.push_back(std::move(r));
    }
  }

  /// Prints the verdict table and writes the trajectory JSON.  Returns 0,
  /// 1 if the file cannot be opened, or 4 when any audit breached; 0
  /// immediately when the flag was absent.
  int finish() const {
    if (!enabled()) return 0;
    std::size_t pass = 0, breach = 0, unauditable = 0;
    std::printf("\n%-25s %-12s | %8s %8s %8s %8s %6s\n", "audit", "verdict",
                "lat.err", "bw.err", "loss.d", "ks.rtt", "within");
    for (const audit::FidelityReport& r : reports_) {
      const auto& s = r.scores;
      std::printf("%-25s %-12s | %8.3f %8.3f %8.4f %8.3f %5.0f%%\n",
                  r.label.c_str(), audit::to_string(r.verdict),
                  s.latency_rel_err, s.bandwidth_rel_err, s.loss_delta,
                  s.ks_rtt, 100.0 * s.within_tolerance_fraction);
      switch (r.verdict) {
        case audit::Verdict::kPass: ++pass; break;
        case audit::Verdict::kBreach: ++breach; break;
        case audit::Verdict::kUnauditable: ++unauditable; break;
      }
    }
    std::printf("audit: %zu pass, %zu breach, %zu unauditable\n", pass,
                breach, unauditable);

    std::ostringstream out;
    out << "{\n\"schema\": \"tracemod-fidelity-trajectory-v1\",\n"
        << "\"tool_version\": \"" << kToolVersion << "\",\n"
        << "\"reports\": [";
    for (std::size_t i = 0; i < reports_.size(); ++i) {
      out << (i == 0 ? "\n" : ",\n");
      audit::write_fidelity_json(out, reports_[i]);
    }
    out << "\n]\n}\n";
    if (!sim::io::write_artifact_or_complain(path_, out.str())) return 1;
    std::printf("fidelity trajectory: %zu report(s) -> %s\n",
                reports_.size(), path_.c_str());
    return breach > 0 ? 4 : 0;
  }

 private:
  std::string path_;
  std::vector<audit::FidelityReport> reports_;
};

}  // namespace tracemod::bench
