// Performance regression gate: measures throughput, real-time ratio, and
// allocation rate for four representative workloads and compares them
// against a committed baseline (BENCH_perf.json, schema
// tracemod-perf-gate-v1).  Exits non-zero when any workload regresses past
// the calibrated tolerances, so CI catches "the emulator got slower"
// before it lands.
//
// Workloads:
//   dispatch   raw event-loop dispatch (chained self-rescheduling events)
//   modulated  full modulated FTP-recv benchmark on a wavelan-like trace
//   campus     200-host campus world for 10 virtual seconds
//   distill    distillation of a one-hour synthetic ping trace
//
// Wall-clock numbers are noisy, so the gate is deliberately one-sided and
// generous: throughput and real-time ratio must stay above
// --min-wall-ratio (default 0.25) of baseline, while allocs/event -- which
// is near-deterministic -- must stay below --max-alloc-ratio (default 1.5)
// of baseline plus a small absolute slack.  Each workload runs --repeat
// times and the best run counts.
//
// Usage: perf_gate [--baseline BENCH_perf.json] [--out measured.json]
//                  [--update] [--repeat K] [--drill-slowdown X]
//                  [--min-wall-ratio R] [--max-alloc-ratio R]
//                  [--allow-debug]
//   --update          rewrite the baseline from this run (no comparison)
//   --drill-slowdown  divide measured rates by X before comparing; CI uses
//                     2.0 to prove the gate actually fails on a regression
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/distiller.hpp"
#include "report.hpp"
#include "scenarios/campus.hpp"
#include "scenarios/experiment.hpp"
#include "sim/event_loop.hpp"
#include "sim/io/durable.hpp"
#include "sim/perf/perf.hpp"
#include "sim/perf/report.hpp"
#include "trace/ping.hpp"
#include "version.hpp"

#include "build_guard.hpp"

using namespace tracemod;

namespace {

struct WorkloadResult {
  std::string name;
  bool ok = true;
  double wall_s = 0.0;
  std::uint64_t events = 0;          ///< dispatches (or records for distill)
  double work_per_sec = 0.0;         ///< events / wall_s
  double sim_per_wall = 0.0;         ///< simulated seconds per wall second
  double allocs_per_event = 0.0;
};

/// Same synthetic trace shape the micro benchmarks use: n complete
/// three-ping groups, one group per virtual second.
trace::CollectedTrace synthetic_collected(std::size_t groups) {
  trace::CollectedTrace out;
  sim::TimePoint t = sim::kEpoch;
  std::uint16_t seq = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    const double rtts[3] = {0.0009, 0.0150, 0.0217};
    const std::uint32_t sizes[3] = {60, 1052, 1052};
    for (int i = 0; i < 3; ++i) {
      trace::PacketRecord echo;
      echo.at = t;
      echo.dir = trace::PacketDirection::kOutgoing;
      echo.protocol = net::Protocol::kIcmp;
      echo.icmp_kind = trace::IcmpKind::kEcho;
      echo.icmp_seq = seq;
      echo.ip_bytes = sizes[i];
      out.records.emplace_back(echo);

      trace::PacketRecord reply = echo;
      reply.dir = trace::PacketDirection::kIncoming;
      reply.icmp_kind = trace::IcmpKind::kEchoReply;
      reply.echo_origin = t;
      reply.at = t + sim::from_seconds(rtts[i]);
      out.records.emplace_back(reply);
      ++seq;
    }
    t += sim::seconds(1);
  }
  return out;
}

WorkloadResult run_dispatch() {
  constexpr std::uint64_t kEvents = 200'000;
  sim::perf::PerfProfiler profiler;
  sim::EventLoop loop;
  std::uint64_t fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < kEvents) loop.schedule(sim::microseconds(10), chain, "gate.tick");
  };
  {
    sim::perf::PerfSession session(profiler);
    loop.schedule(sim::microseconds(10), chain, "gate.tick");
    loop.run();
  }
  const sim::perf::PerfSnapshot snap = sim::perf::capture_perf(profiler);
  WorkloadResult r;
  r.name = "dispatch";
  r.ok = fired == kEvents;
  r.wall_s = snap.wall_s;
  r.events = snap.dispatched;
  r.work_per_sec = snap.events_per_sec();
  r.sim_per_wall = sim::to_seconds(loop.now() - sim::kEpoch) /
                   std::max(snap.wall_s, 1e-9);
  r.allocs_per_event = snap.allocs_per_event();
  return r;
}

WorkloadResult run_modulated() {
  const core::ReplayTrace trace =
      core::ReplayTrace::wavelan_like(sim::seconds(120));
  sim::perf::PerfProfiler profiler;
  scenarios::BenchmarkOutcome outcome;
  {
    sim::perf::PerfSession session(profiler);
    outcome = scenarios::run_modulated_benchmark(
        trace, scenarios::BenchmarkKind::kFtpRecv, 1, sim::milliseconds(10),
        0.0);
  }
  const sim::perf::PerfSnapshot snap = sim::perf::capture_perf(profiler);
  WorkloadResult r;
  r.name = "modulated";
  r.ok = outcome.ok;
  r.wall_s = snap.wall_s;
  r.events = snap.dispatched;
  r.work_per_sec = snap.events_per_sec();
  r.sim_per_wall = outcome.elapsed_s / std::max(snap.wall_s, 1e-9);
  r.allocs_per_event = snap.allocs_per_event();
  return r;
}

WorkloadResult run_campus_workload() {
  scenarios::CampusConfig cfg;
  cfg.hosts = 200;
  cfg.horizon = sim::from_seconds(10);
  cfg.seed = 42;
  sim::perf::PerfProfiler profiler;
  scenarios::CampusResult res;
  {
    sim::perf::PerfSession session(profiler);
    res = scenarios::run_campus(cfg);
  }
  const sim::perf::PerfSnapshot snap = sim::perf::capture_perf(profiler);
  WorkloadResult r;
  r.name = "campus";
  r.ok = res.ok;
  r.wall_s = snap.wall_s;
  r.events = snap.dispatched;
  r.work_per_sec = snap.events_per_sec();
  r.sim_per_wall = res.virtual_s / std::max(snap.wall_s, 1e-9);
  r.allocs_per_event = snap.allocs_per_event();
  return r;
}

WorkloadResult run_distill() {
  const trace::CollectedTrace collected = synthetic_collected(3600);
  sim::perf::PerfProfiler profiler;
  std::size_t tuples = 0;
  double allocs = 0.0;
  double wall = 0.0;
  {
    sim::perf::PerfSession session(profiler);
    core::Distiller distiller;
    tuples = distiller.distill(collected).tuples().size();
  }
  const sim::perf::PerfSnapshot snap = sim::perf::capture_perf(profiler);
  wall = snap.wall_s;
  allocs = static_cast<double>(snap.allocs.allocs);
  WorkloadResult r;
  r.name = "distill";
  r.ok = tuples > 0;
  r.wall_s = wall;
  // No event loop here: "events" are the records streamed through the
  // distiller, so work_per_sec is records/sec and allocs amortize over
  // records.
  r.events = collected.records.size();
  r.work_per_sec = static_cast<double>(r.events) / std::max(wall, 1e-9);
  r.sim_per_wall = 3600.0 / std::max(wall, 1e-9);
  r.allocs_per_event = allocs / static_cast<double>(std::max<std::uint64_t>(
                                    r.events, 1));
  return r;
}

/// Best of k: highest throughput run for the wall metrics, lowest
/// allocs/event across runs (first runs pay one-time lazy-init allocs).
template <typename Fn>
WorkloadResult best_of(Fn fn, int k) {
  WorkloadResult best = fn();
  for (int i = 1; i < k; ++i) {
    WorkloadResult r = fn();
    r.allocs_per_event = std::min(r.allocs_per_event, best.allocs_per_event);
    if (r.work_per_sec > best.work_per_sec) {
      best = r;
    } else {
      best.allocs_per_event =
          std::min(best.allocs_per_event, r.allocs_per_event);
    }
  }
  return best;
}

void write_gate_json(std::ostream& out, const std::vector<WorkloadResult>& ws,
                     int repeat) {
  out << "{\n"
      << "  \"schema\": \"tracemod-perf-gate-v1\",\n"
      << "  \"tool_version\": \"" << kToolVersion << "\",\n"
      << "  \"build_type\": \"" << bench::build_type() << "\",\n"
      << "  \"best_of\": " << repeat << ",\n"
      << "  \"workloads\": [\n";
  for (std::size_t i = 0; i < ws.size(); ++i) {
    const WorkloadResult& w = ws[i];
    out << "    {\"name\": \"" << w.name << "\""
        << ", \"ok\": " << (w.ok ? "true" : "false")
        << ", \"wall_s\": " << w.wall_s << ", \"events\": " << w.events
        << ", \"work_per_sec\": " << w.work_per_sec
        << ", \"sim_per_wall\": " << w.sim_per_wall
        << ", \"allocs_per_event\": " << w.allocs_per_event << "}"
        << (i + 1 < ws.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
}

/// Minimal baseline reader: finds the {...} object whose "name" matches,
/// then scans a numeric field inside it.  Good enough for the flat schema
/// this tool itself writes; returns false when the key is absent.
bool baseline_field(const std::string& text, const std::string& workload,
                    const char* key, double* out) {
  const std::string tag = "\"name\": \"" + workload + "\"";
  const std::size_t at = text.find(tag);
  if (at == std::string::npos) return false;
  const std::size_t end = text.find('}', at);
  const std::string obj =
      text.substr(at, end == std::string::npos ? std::string::npos : end - at);
  const std::string want = std::string("\"") + key + "\":";
  const std::size_t k = obj.find(want);
  if (k == std::string::npos) return false;
  *out = std::strtod(obj.c_str() + k + want.size(), nullptr);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool official = tracemod::bench::require_release_build(argc, argv);
  std::string baseline_path = "BENCH_perf.json";
  std::string out_path;
  bool update = false;
  int repeat = 3;
  double drill = 1.0;
  double min_wall_ratio = 0.25;
  double max_alloc_ratio = 1.5;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--baseline") == 0) {
      baseline_path = next("--baseline");
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next("--out");
    } else if (std::strcmp(argv[i], "--update") == 0) {
      update = true;
    } else if (std::strcmp(argv[i], "--repeat") == 0) {
      repeat = std::max(1, std::atoi(next("--repeat")));
    } else if (std::strcmp(argv[i], "--drill-slowdown") == 0) {
      drill = std::atof(next("--drill-slowdown"));
    } else if (std::strcmp(argv[i], "--min-wall-ratio") == 0) {
      min_wall_ratio = std::atof(next("--min-wall-ratio"));
    } else if (std::strcmp(argv[i], "--max-alloc-ratio") == 0) {
      max_alloc_ratio = std::atof(next("--max-alloc-ratio"));
    } else if (std::strcmp(argv[i], "--allow-debug") == 0) {
      // Consumed by require_release_build() above.
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  if (drill <= 0.0) {
    std::fprintf(stderr, "--drill-slowdown must be > 0\n");
    return 1;
  }

  bench::heading("Perf gate: throughput / real-time ratio / allocs vs baseline",
                 std::string("best of ") + std::to_string(repeat) +
                     ", build " + bench::build_type());

  std::vector<WorkloadResult> results;
  results.push_back(best_of(run_dispatch, repeat));
  results.push_back(best_of(run_modulated, repeat));
  results.push_back(best_of(run_campus_workload, repeat));
  results.push_back(best_of(run_distill, repeat));

  bench::rowf("%-10s %10s %12s %14s %12s %8s", "workload", "wall s",
              "work/sec", "sim-s/wall-s", "allocs/ev", "run");
  bool all_ok = true;
  for (const WorkloadResult& w : results) {
    all_ok = all_ok && w.ok;
    bench::rowf("%-10s %10.3f %12.0f %14.1f %12.3f %8s", w.name.c_str(),
                w.wall_s, w.work_per_sec, w.sim_per_wall, w.allocs_per_event,
                w.ok ? "ok" : "FAILED");
  }
  if (!all_ok) {
    std::fprintf(stderr, "perf_gate: a workload failed to complete\n");
    return 1;
  }

  if (!out_path.empty()) {
    std::ostringstream f;
    write_gate_json(f, results, repeat);
    if (!sim::io::write_artifact_or_complain(out_path, f.str())) return 2;
    bench::rowf("wrote %s", out_path.c_str());
  }

  if (update) {
    if (!official) {
      std::fprintf(stderr,
                   "perf_gate: refusing --update from a non-Release build\n");
      return 1;
    }
    std::ostringstream f;
    write_gate_json(f, results, repeat);
    if (!sim::io::write_artifact_or_complain(baseline_path, f.str())) {
      return 1;
    }
    bench::rowf("baseline updated: %s", baseline_path.c_str());
    return 0;
  }

  std::ifstream bf(baseline_path);
  if (!bf) {
    std::fprintf(stderr,
                 "perf_gate: no baseline at %s (run with --update to create "
                 "one)\n",
                 baseline_path.c_str());
    return 1;
  }
  std::stringstream buf;
  buf << bf.rdbuf();
  const std::string baseline = buf.str();
  if (baseline.find("\"schema\": \"tracemod-perf-gate-v1\"") ==
      std::string::npos) {
    std::fprintf(stderr, "perf_gate: %s is not a tracemod-perf-gate-v1 file\n",
                 baseline_path.c_str());
    return 1;
  }

  if (drill != 1.0) {
    bench::rowf("drill: pretending the build got %.2fx slower", drill);
  }

  int regressions = 0;
  for (const WorkloadResult& w : results) {
    double base_work = 0.0, base_ratio = 0.0, base_allocs = 0.0;
    if (!baseline_field(baseline, w.name, "work_per_sec", &base_work) ||
        !baseline_field(baseline, w.name, "sim_per_wall", &base_ratio) ||
        !baseline_field(baseline, w.name, "allocs_per_event", &base_allocs)) {
      std::fprintf(stderr, "perf_gate: baseline lacks workload '%s'\n",
                   w.name.c_str());
      ++regressions;
      continue;
    }
    const double work = w.work_per_sec / drill;
    const double ratio = w.sim_per_wall / drill;
    const double work_floor = base_work * min_wall_ratio;
    const double ratio_floor = base_ratio * min_wall_ratio;
    const double alloc_ceil = base_allocs * max_alloc_ratio + 0.5;
    const bool work_ok = work >= work_floor;
    const bool ratio_ok = ratio >= ratio_floor;
    const bool alloc_ok = w.allocs_per_event <= alloc_ceil;
    bench::rowf("%-10s work %10.0f vs floor %10.0f [%s]   "
                "sim/wall %8.1f vs %8.1f [%s]   allocs %7.3f vs %7.3f [%s]",
                w.name.c_str(), work, work_floor, work_ok ? "ok" : "REGRESS",
                ratio, ratio_floor, ratio_ok ? "ok" : "REGRESS",
                w.allocs_per_event, alloc_ceil, alloc_ok ? "ok" : "REGRESS");
    if (!work_ok || !ratio_ok || !alloc_ok) ++regressions;
  }

  if (regressions > 0) {
    std::fprintf(stderr, "perf_gate: %d workload(s) regressed past tolerance\n",
                 regressions);
    return 1;
  }
  bench::rowf("perf gate passed (%zu workloads within tolerance)",
              results.size());
  return 0;
}
