// Figure 4: Wean traces (traveling to classroom).
//
// Office with known poor connectivity (z0), hallway to the elevator
// (z0-z3), waiting (z3-z4), riding three floors (z4-z5), walking to the
// classroom (z5-z7).
//
// Paper's shape: signal variable but acceptable on the walk, quite good
// while waiting, dropping precipitously in the elevator, good again after;
// latency good except for a ~350 ms peak during the ride; bandwidth
// somewhat lower than Porter; loss low except during the ride, where it is
// atrocious.
#include "scenario_figure.hpp"

#include "build_guard.hpp"

using namespace tracemod;

int main(int argc, char** argv) {
  tracemod::bench::require_release_build(argc, argv);
  bench::heading("Figure 4: Wean Traces",
                 "ranges across 4 trials per checkpoint interval\n"
                 "(z3..z4 = waiting for the elevator, z4..z5 = riding it)");
  const auto scenario = scenarios::wean();
  const auto trials = bench::collect_trials(scenario, 4, 40'000);
  bench::print_path_figure(scenario, trials);
  return 0;
}
