// Figure 1: Effect of Delay Compensation.
//
// Replays a synthetic trace whose performance is close to a WaveLAN device
// and runs FTP transfers of varying sizes, both directions:
//   - Store (outbound): unaffected by compensation;
//   - Fetch without compensation: the endpoint-placement artifact charges
//     inbound traffic the physical network's serialization on top of the
//     emulated bottleneck, so throughput is visibly lower;
//   - Fetch with compensation: the measured physical per-byte cost is
//     subtracted, pulling fetch back to store.
// A second sweep over a much slower synthetic network confirms that the
// compensation constant depends only on the modulation setup, not on the
// traced network (the paper's validation of that claim).
#include <vector>

#include "apps/ftp.hpp"
#include "core/emulator.hpp"
#include "report.hpp"

#include "build_guard.hpp"

using namespace tracemod;

namespace {

double run_ftp(const core::ReplayTrace& trace, std::uint64_t bytes,
               bool fetch, bool compensate, double comp_vb,
               std::uint64_t seed) {
  core::EmulatorConfig cfg;
  cfg.seed = seed;
  cfg.loop_trace = true;  // transfers outlast the synthetic trace
  cfg.modulation.inbound_vb_compensation = compensate ? comp_vb : 0.0;
  core::Emulator emulator(trace, cfg);

  apps::FtpServer server(emulator.server());
  apps::FtpClient client(emulator.mobile(), {cfg.server_addr, 21});
  double elapsed = -1.0;
  bool done = false;
  auto cb = [&](apps::FtpResult r) {
    elapsed = r.ok ? sim::to_seconds(r.elapsed) : -1.0;
    done = true;
  };
  if (fetch) {
    client.fetch(bytes, cb);
  } else {
    client.store(bytes, cb);
  }
  while (!done && emulator.loop().step()) {
  }
  return elapsed;
}

void sweep(const char* label, const core::ReplayTrace& trace,
           double comp_vb) {
  bench::rowf("%s", label);
  bench::rowf("%8s %12s %16s %16s %10s", "size(MB)", "store(s)",
              "fetch-uncomp(s)", "fetch-comp(s)", "comp/store");
  for (std::uint64_t mb : {1, 2, 4, 6, 8, 10}) {
    const std::uint64_t bytes = mb * 1000 * 1000;
    const double store = run_ftp(trace, bytes, false, false, comp_vb, 11 + mb);
    const double fetch_u = run_ftp(trace, bytes, true, false, comp_vb, 22 + mb);
    const double fetch_c = run_ftp(trace, bytes, true, true, comp_vb, 33 + mb);
    bench::rowf("%8llu %12.2f %16.2f %16.2f %9.2f%%",
                static_cast<unsigned long long>(mb), store, fetch_u, fetch_c,
                100.0 * fetch_c / store);
  }
}

}  // namespace

int main(int argc, char** argv) {
  tracemod::bench::require_release_build(argc, argv);
  bench::heading(
      "Figure 1: Effect of Delay Compensation",
      "FTP elapsed times over a synthetic trace; a perfect realization of "
      "the\ndelay model would give identical Fetch and Store curves.");

  const double comp_vb = core::Emulator::measure_physical_vb();
  bench::rowf("measured physical network Vb: %.3f us/byte "
              "(10 Mb/s Ethernet ~ 0.8 us/byte)",
              comp_vb * 1e6);

  // The paper's synthetic trace: performance close to a WaveLAN device.
  // Loss is left out so the curves isolate the delay asymmetry, as in the
  // paper's smooth Figure 1.
  sweep("\n-- WaveLAN-like synthetic trace (1.5 Mb/s, 3 ms, no loss) --",
        core::ReplayTrace::constant(sim::seconds(60), sim::seconds(1), 0.003,
                                    1.5e6, 0.0),
        comp_vb);

  // Validation that compensation is independent of the traced network:
  // a much slower network, same compensation constant.
  sweep("\n-- much slower synthetic trace (250 kb/s, 20 ms, no loss) --",
        core::ReplayTrace::constant(sim::seconds(60), sim::seconds(1), 0.020,
                                    250e3, 0.0),
        comp_vb);

  bench::rowf("\nExpected shape (paper): uncompensated fetch visibly below "
              "store;\ncompensated fetch ~ store; the effect shrinks on the "
              "slow network\n(physical Vb is a smaller fraction of the "
              "emulated Vb).");
  return 0;
}
