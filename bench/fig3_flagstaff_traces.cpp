// Figure 3: Flagstaff traces (outdoor travel).
//
// Four traversals leaving Porter Hall (y0-y1), along Schenley Park
// (y1-y5), then around Flagstaff Hill (y5-y9), always outdoors.
//
// Paper's shape: signal somewhat below Porter, falling sharply on entering
// the park and staying roughly constant at a low level; latency better
// than Porter overall; average bandwidth somewhat better than Porter;
// loss significantly worse than Porter, particularly late in the path.
#include "scenario_figure.hpp"

#include "build_guard.hpp"

using namespace tracemod;

int main(int argc, char** argv) {
  tracemod::bench::require_release_build(argc, argv);
  bench::heading("Figure 3: Flagstaff Traces",
                 "ranges across 4 trials per checkpoint interval");
  const auto scenario = scenarios::flagstaff();
  const auto trials = bench::collect_trials(scenario, 4, 30'000);
  bench::print_path_figure(scenario, trials);
  return 0;
}
