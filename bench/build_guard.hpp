// Build-type guard for benchmark binaries.
//
// A Debug-build benchmark number is worse than no number: it looks like a
// regression (or masks one) when compared against Release baselines, and
// committed baseline snapshots poisoned by a Debug run corrupt the perf
// trajectory for everyone after.  Every bench main calls
// require_release_build() first:
//   - in an optimized build (Release/RelWithDebInfo/MinSizeRel with
//     NDEBUG) it is silent;
//   - otherwise it refuses to run and exits kExitNonReleaseBuild (6),
//     unless --allow-debug was passed, in which case it prints a loud
//     UNOFFICIAL tag and continues (for smoke-testing the binaries
//     themselves, as the CI Debug jobs do).
// The build type itself comes from the TRACEMOD_BUILD_TYPE compile
// definition (bench/CMakeLists.txt stamps CMAKE_BUILD_TYPE); result
// artifacts should embed build_type() so a snapshot's provenance is
// auditable (micro_core stamps it as benchmark context, perf_gate into
// its JSON).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tracemod::bench {

/// Exit code for "refused to benchmark a non-Release build".  Disjoint
/// from the tracemod CLI contract (0-5, tools/tracemod_cli.hpp).
inline constexpr int kExitNonReleaseBuild = 6;

/// The build type this binary was compiled as, lower-cased by CMake
/// convention ("release", "debug", ...); "unknown" when the generator did
/// not stamp one (multi-config), in which case NDEBUG still decides.
inline const char* build_type() {
#if defined(TRACEMOD_BUILD_TYPE)
  return TRACEMOD_BUILD_TYPE[0] != '\0' ? TRACEMOD_BUILD_TYPE : "unknown";
#else
  return "unknown";
#endif
}

/// True for the optimized build family benchmark numbers may come from.
inline bool is_release_build() {
#if !defined(NDEBUG)
  return false;  // asserts compiled in: never an official number
#else
  const char* t = build_type();
  return std::strcmp(t, "debug") != 0 && std::strcmp(t, "Debug") != 0;
#endif
}

/// Call first in every bench main.  Returns true to proceed; on a
/// non-Release build, exits kExitNonReleaseBuild unless --allow-debug is
/// among the arguments (then tags the output UNOFFICIAL and proceeds).
/// Benches without argv can call require_release_build(0, nullptr).
inline bool require_release_build(int argc, char** argv) {
  if (is_release_build()) return true;
  bool allow = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--allow-debug") == 0) allow = true;
  }
  if (!allow) {
    std::fprintf(
        stderr,
        "refusing to benchmark a '%s' build: numbers from unoptimized "
        "builds are not comparable to Release baselines.\n"
        "Configure with -DCMAKE_BUILD_TYPE=Release, or pass "
        "--allow-debug to run anyway (results tagged UNOFFICIAL).\n",
        build_type());
    std::exit(kExitNonReleaseBuild);
  }
  std::fprintf(stderr,
               "WARNING: '%s' build -- results are UNOFFICIAL and must "
               "not be committed as baselines.\n",
               build_type());
  return false;
}

}  // namespace tracemod::bench
