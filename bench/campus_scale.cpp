// Campus scaling curve: events/sec versus host count on the sharded
// medium.  Emits BENCH_campus.json (schema tracemod-campus-bench-v1) so CI
// can track the curve and assert sub-quadratic scaling, the acceptance
// bar for the spatial-shard refactor (DESIGN.md section 11).
//
// Usage: campus_scale [--sizes 100,1000,10000] [--seconds S] [--threads T]
//                     [--out BENCH_campus.json]
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "report.hpp"
#include "scenarios/campus.hpp"
#include "sim/io/durable.hpp"
#include "version.hpp"

#include "build_guard.hpp"

using namespace tracemod;

namespace {

struct Point {
  std::size_t hosts = 0;
  scenarios::CampusResult result;
};

std::vector<std::size_t> parse_sizes(const std::string& csv) {
  std::vector<std::size_t> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string tok = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!tok.empty()) out.push_back(std::strtoull(tok.c_str(), nullptr, 10));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Least-squares slope of log(wall) against log(hosts): the empirical
/// scaling exponent.  Quadratic contention would push this toward 2;
/// the sharded medium should hold it well under that.
double scaling_exponent(const std::vector<Point>& pts) {
  if (pts.size() < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (const Point& p : pts) {
    const double x = std::log(static_cast<double>(p.hosts));
    const double y = std::log(std::max(p.result.wall_s, 1e-9));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double n = static_cast<double>(pts.size());
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

bool write_json(const std::string& path, const std::vector<Point>& pts,
                double seconds, unsigned threads) {
  std::ostringstream out;
  out << "{\n"
      << "  \"schema\": \"tracemod-campus-bench-v1\",\n"
      << "  \"tool_version\": \"" << kToolVersion << "\",\n"
      << "  \"virtual_seconds\": " << seconds << ",\n"
      << "  \"threads\": " << threads << ",\n"
      << "  \"scaling_exponent\": " << scaling_exponent(pts) << ",\n"
      << "  \"points\": [\n";
  for (std::size_t i = 0; i < pts.size(); ++i) {
    const scenarios::CampusResult& r = pts[i].result;
    out << "    {\"hosts\": " << pts[i].hosts
        << ", \"ok\": " << (r.ok ? "true" : "false")
        << ", \"wavepoints\": " << r.wavepoints
        << ", \"events\": " << r.events
        << ", \"frames_delivered\": " << r.frames_delivered
        << ", \"handoffs\": " << r.handoffs
        << ", \"wall_s\": " << r.wall_s
        << ", \"events_per_sec\": " << r.events_per_sec << "}"
        << (i + 1 < pts.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return sim::io::write_artifact_or_complain(path, out.str());
}

}  // namespace

int main(int argc, char** argv) {
  tracemod::bench::require_release_build(argc, argv);
  std::vector<std::size_t> sizes = {100, 1000, 10000};
  double seconds = 30.0;
  unsigned threads = 0;
  std::string out_path = "BENCH_campus.json";
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--sizes") == 0) {
      sizes = parse_sizes(next("--sizes"));
    } else if (std::strcmp(argv[i], "--seconds") == 0) {
      seconds = std::atof(next("--seconds"));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = static_cast<unsigned>(std::atoi(next("--threads")));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next("--out");
    } else if (std::strcmp(argv[i], "--allow-debug") == 0) {
      // Consumed by require_release_build() above.
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }

  bench::heading("Campus scaling: events/sec vs hosts",
                 "sharded medium, " + std::to_string(seconds) +
                     " virtual seconds per point");
  bench::rowf("%8s %6s %12s %10s %12s %9s", "hosts", "wps", "events",
              "wall s", "events/s", "status");
  std::vector<Point> pts;
  bool all_ok = true;
  for (std::size_t n : sizes) {
    scenarios::CampusConfig cfg;
    cfg.hosts = n;
    cfg.horizon = sim::from_seconds(seconds);
    cfg.threads = threads;
    Point p;
    p.hosts = n;
    p.result = scenarios::run_campus(cfg);
    all_ok = all_ok && p.result.ok;
    bench::rowf("%8zu %6zu %12llu %10.2f %12.0f %9s", n, p.result.wavepoints,
                static_cast<unsigned long long>(p.result.events),
                p.result.wall_s, p.result.events_per_sec,
                p.result.ok ? "ok" : "STALLED");
    pts.push_back(p);
  }
  const double expo = scaling_exponent(pts);
  bench::rowf("scaling exponent (log wall / log hosts): %.2f  [%s]", expo,
              expo < 1.8 ? "sub-quadratic" : "QUADRATIC-ISH");
  if (!write_json(out_path, pts, seconds, threads)) return 2;
  bench::rowf("wrote %s", out_path.c_str());
  return all_ok ? 0 : 1;
}
