// Shared machinery for Figures 2-5: collect N traversal traces of a
// scenario, distill them, and report observed signal quality plus derived
// model parameters along the path (or as histograms for the stationary
// Chatterbox scenario).
#pragma once

#include <algorithm>
#include <vector>

#include "core/distiller.hpp"
#include "report.hpp"
#include "scenarios/experiment.hpp"
#include "sim/stats.hpp"

namespace tracemod::bench {

struct TrialData {
  trace::CollectedTrace raw;
  core::ReplayTrace replay;
};

inline std::vector<TrialData> collect_trials(const scenarios::Scenario& s,
                                             int trials,
                                             std::uint64_t base_seed) {
  std::vector<TrialData> out;
  for (int t = 0; t < trials; ++t) {
    TrialData d;
    d.raw = scenarios::collect_raw_trace(
        s, base_seed + static_cast<std::uint64_t>(t));
    core::Distiller distiller;
    d.replay = distiller.distill(d.raw);
    out.push_back(std::move(d));
  }
  return out;
}

struct Range {
  double lo = 0.0, hi = 0.0;
  bool any = false;
  void add(double v) {
    if (!any) {
      lo = hi = v;
      any = true;
    } else {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
};

/// Figures 2-4: per checkpoint interval, the range across trials of signal
/// level (device records) and the distilled latency / bandwidth / loss.
inline void print_path_figure(const scenarios::Scenario& s,
                              const std::vector<TrialData>& trials) {
  const auto mobility = s.mobility();
  const auto& cps = mobility.checkpoints();

  rowf("%-10s %-14s %-16s %-18s %-14s", "interval", "signal(lvl)",
       "latency(ms)", "bandwidth(kb/s)", "loss(%)");
  for (std::size_t c = 0; c + 1 <= cps.size(); ++c) {
    const sim::TimePoint t0 = cps[c].at;
    const sim::TimePoint t1 =
        (c + 1 < cps.size()) ? cps[c + 1].at
                             : t0 + sim::seconds(10);  // final dwell
    Range sig, lat, bw, loss;
    for (const TrialData& d : trials) {
      for (const auto& rec : d.raw.device_records()) {
        if (rec.at >= t0 && rec.at < t1) sig.add(rec.signal_level);
      }
      sim::Duration off{};
      for (const auto& q : d.replay.tuples()) {
        const sim::TimePoint at = sim::kEpoch + off;
        off += q.d;
        if (at < t0 || at >= t1) continue;
        lat.add(q.latency_s * 1e3);
        if (q.per_byte_bottleneck > 0) {
          bw.add(8.0 / q.per_byte_bottleneck / 1e3);
        }
        loss.add(q.loss * 100.0);
      }
    }
    const std::string label =
        cps[c].label + (c + 1 < cps.size() ? ".." + cps[c + 1].label : "");
    rowf("%-10s %5.1f..%-6.1f %6.2f..%-8.2f %7.0f..%-9.0f %5.1f..%-6.1f",
         label.c_str(), sig.lo, sig.hi, lat.lo, lat.hi, bw.lo, bw.hi, loss.lo,
         loss.hi);
  }
}

/// Figure 5: histograms (no motion, so location is meaningless).
inline void print_histogram_figure(const std::vector<TrialData>& trials) {
  sim::RunningStats sig_stats;
  std::vector<double> lats, bws, losses, sigs;
  for (const TrialData& d : trials) {
    for (const auto& rec : d.raw.device_records()) {
      sigs.push_back(rec.signal_level);
      sig_stats.add(rec.signal_level);
    }
    for (const auto& q : d.replay.tuples()) {
      lats.push_back(q.latency_s * 1e3);
      if (q.per_byte_bottleneck > 0) bws.push_back(8.0 / q.per_byte_bottleneck / 1e3);
      losses.push_back(q.loss * 100.0);
    }
  }
  auto hist = [](const std::vector<double>& xs, double lo, double hi,
                 const char* label) {
    sim::Histogram h(lo, hi, 10);
    for (double x : xs) h.add(x);
    std::printf("%s", h.render(label).c_str());
  };
  hist(sigs, 0, 30, "signal level (WaveLAN units)");
  hist(lats, 0, sim::percentile_of(lats, 0.98) + 1, "latency (ms)");
  hist(bws, 0, 2000, "bandwidth (kb/s)");
  hist(losses, 0, std::max(10.0, sim::percentile_of(losses, 0.98)),
       "loss rate (%)");
}

}  // namespace tracemod::bench
