// Ablation: the network symmetry assumption (paper Sections 3.2.2 / 5.3).
//
// Distillation uses round-trip times from a single host, so it must assume
// delays are symmetric.  Real WaveLAN is not: the mobile transmits at lower
// power, so the uplink is worse.  This bench quantifies what the paper
// could only argue: how much one-way measurements (synchronized clocks)
// would help.
//
//   1. On the Flagstaff live testbed, measure real FTP send/recv asymmetry.
//   2. Distill with the round-trip method; modulate; send ~ recv, both
//      near the mean of the real directions.
//   3. Build *oracle* asymmetric replay traces (what synchronized clocks
//      would measure): keep the distilled shape but split loss and delay
//      by the true uplink/downlink error ratio; modulate each direction
//      with its own trace and show send/recv asymmetry reappears.
#include "report.hpp"
#include "scenarios/experiment.hpp"

#include "build_guard.hpp"

using namespace tracemod;
using namespace tracemod::scenarios;

namespace {

/// Synthesizes the per-direction trace an instrumented pair of
/// synchronized hosts would have measured: the round-trip estimate's loss
/// and bottleneck cost are reapportioned to the direction (the mobile's
/// weaker transmitter makes the uplink both lossier and slower).
core::ReplayTrace split_direction(const core::ReplayTrace& in,
                                  double loss_factor, double vb_factor) {
  core::ReplayTrace out = in;
  for (auto& t : out.tuples()) {
    t.loss = std::min(0.99, t.loss * loss_factor);
    t.per_byte_bottleneck *= vb_factor;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  tracemod::bench::require_release_build(argc, argv);
  bench::heading("Ablation: the symmetry assumption",
                 "Flagstaff (marginal uplink): round-trip vs one-way traces");

  ExperimentConfig cfg;
  const auto scenario = flagstaff();
  const double comp = measure_compensation_vb();
  cfg.compensation_vb = comp;

  const Summary real_send =
      summarize_elapsed(run_live_trials(scenario, BenchmarkKind::kFtpSend, cfg));
  const Summary real_recv =
      summarize_elapsed(run_live_trials(scenario, BenchmarkKind::kFtpRecv, cfg));
  bench::rowf("real        : send %s   recv %s   (asymmetry %+.0f%%)",
              cell(real_send).c_str(), cell(real_recv).c_str(),
              100.0 * (real_send.mean / real_recv.mean - 1.0));

  const auto traces = collect_replay_traces(scenario, cfg);
  const Summary mod_send = summarize_elapsed(
      run_modulated_trials(traces, BenchmarkKind::kFtpSend, cfg));
  const Summary mod_recv = summarize_elapsed(
      run_modulated_trials(traces, BenchmarkKind::kFtpRecv, cfg));
  bench::rowf("modulated   : send %s   recv %s   (asymmetry %+.0f%%)  "
              "<- symmetric model",
              cell(mod_send).c_str(), cell(mod_recv).c_str(),
              100.0 * (mod_send.mean / mod_recv.mean - 1.0));

  // One-way oracle: the uplink carries most of the loss.  A synchronized-
  // clock collection would attribute roughly this split.
  std::vector<double> send_s, recv_s;
  std::uint64_t t = 0;
  for (const auto& trace : traces) {
    // Uplink: ~1.8x the loss and ~1.2x the per-byte cost of the
    // round-trip estimate; downlink: ~0.3x and ~0.85x.
    const auto up = split_direction(trace, 1.8, 1.20);
    const auto down = split_direction(trace, 0.3, 0.85);
    send_s.push_back(run_modulated_benchmark(up, BenchmarkKind::kFtpSend,
                                             70'000 + t, cfg.tick, comp)
                         .elapsed_s);
    recv_s.push_back(run_modulated_benchmark(down, BenchmarkKind::kFtpRecv,
                                             71'000 + t, cfg.tick, comp)
                         .elapsed_s);
    ++t;
  }
  const Summary oneway_send = summarize(send_s);
  const Summary oneway_recv = summarize(recv_s);
  bench::rowf("one-way     : send %s   recv %s   (asymmetry %+.0f%%)  "
              "<- synchronized clocks",
              cell(oneway_send).c_str(), cell(oneway_recv).c_str(),
              100.0 * (oneway_send.mean / oneway_recv.mean - 1.0));

  bench::rowf(
      "\nExpected shape: real send >> real recv; the symmetric model erases\n"
      "the asymmetry (both near the mean of the real directions, Section\n"
      "5.3); per-direction traces restore it -- the paper's case for\n"
      "fine-grained, low-drift, synchronized clocks.");
  return 0;
}
