// Ablation: scheduling granularity (paper Section 3.3 / 5.4).
//
// The modulation layer schedules packet releases on clock ticks; delays
// under half a tick send immediately.  This sweep replays one Wean trace
// under tick resolutions from ideal (0) to 50 ms and reports the Andrew
// phases and an FTP transfer.  The paper's conjecture: the 10 ms NetBSD
// tick under-delays the short NFS status checks (ScanDir/ReadAll) but
// barely touches bulk transfers; coarser ticks make both worse.
#include "report.hpp"
#include "scenarios/experiment.hpp"

#include "build_guard.hpp"

using namespace tracemod;
using namespace tracemod::scenarios;

int main(int argc, char** argv) {
  tracemod::bench::require_release_build(argc, argv);
  bench::heading("Ablation: modulation scheduling granularity",
                 "one Wean replay trace; tick resolution swept");

  ExperimentConfig cfg;
  const auto scenario = wean();
  core::Distiller distiller;
  const core::ReplayTrace trace =
      distiller.distill(collect_raw_trace(scenario, 60'000));
  const double comp = measure_compensation_vb();

  // Live reference for the same seed family.
  {
    LiveTestbed bed(scenario, 60'001);
    const auto live = run_benchmark(BenchmarkKind::kAndrew, bed.mobile(),
                                    bed.server(), bed.server_addr(),
                                    bed.loop());
    bench::rowf("%-12s scandir=%6.2fs readall=%6.2fs total=%7.2fs (live ref)",
                "live", live.andrew.scandir_s, live.andrew.readall_s,
                live.andrew.total_s);
  }

  bench::rowf("%-12s %10s %10s %10s | %10s %14s %14s", "tick", "scandir(s)",
              "readall(s)", "total(s)", "ftp(s)", "sub-tick pkts",
              "scheduled pkts");
  for (const auto tick_ms : {0, 1, 10, 50}) {
    const sim::Duration tick = sim::milliseconds(tick_ms);
    const auto andrew = run_modulated_benchmark(
        trace, BenchmarkKind::kAndrew, 61'000 + tick_ms, tick, comp);
    const auto ftp = run_modulated_benchmark(
        trace, BenchmarkKind::kFtpRecv, 62'000 + tick_ms, tick, comp);
    char label[32];
    std::snprintf(label, sizeof(label), tick_ms == 0 ? "ideal" : "%d ms",
                  tick_ms);
    bench::rowf("%-12s %10.2f %10.2f %10.2f | %10.2f", label,
                andrew.andrew.scandir_s, andrew.andrew.readall_s,
                andrew.andrew.total_s, ftp.elapsed_s);
  }
  bench::rowf(
      "\nExpected shape: ScanDir/ReadAll grow toward the live reference as\n"
      "the tick shrinks (an ideal clock schedules every short delay); FTP\n"
      "is insensitive because its delays are far above every threshold.");
  return 0;
}
