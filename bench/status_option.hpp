// --status=PREFIX support for the figure-reproduction benches.
//
// Mirrors telemetry_option.hpp / audit_option.hpp: each fig6/7/8 binary
// constructs one StatusOption from its argv.  When the flag is absent the
// option is inert (the ExperimentConfig is untouched, so the run is
// bit-identical to the flagless binary and every method is a no-op).  When
// present, the option owns a StatusBoard publishing crash-safe
// tracemod-status-v1 snapshots to PREFIX.status: the event-loop heartbeat
// feeds events/sim-clock through ExperimentConfig::status, the binary
// marks scenario boundaries with phase(), counts finished cells with
// step(), and finish() publishes the terminal snapshot with the exit code.
// Poll a running bench with `tracemod status PREFIX.status [--follow]`.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "scenarios/experiment.hpp"
#include "sim/status/status.hpp"

namespace tracemod::bench {

class StatusOption {
 public:
  StatusOption(int argc, char** argv, scenarios::ExperimentConfig& cfg,
               const std::string& driver) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--status=", 9) == 0 && arg[9] != '\0') {
        sim::status::StatusBoard::Config bcfg;
        bcfg.path = std::string(arg + 9) + ".status";
        bcfg.driver = driver;
        if (board_.configure(std::move(bcfg))) {
          cfg.status = &board_;
        } else {
          // A bad prefix degrades to a status-less run rather than killing
          // the bench; the warning is the only trace.
          std::fprintf(stderr, "cannot write status file at prefix '%s'; "
                               "running without status\n", arg + 9);
        }
      }
    }
  }

  bool enabled() const { return board_.enabled(); }

  /// Declares the progress axis once the cell count is known.
  void set_units(const std::string& label, double total) {
    board_.set_units(label, total);
    board_.publish_now();
  }

  /// Marks a phase boundary (publishes immediately when enabled).
  void phase(const std::string& name) { board_.set_phase(name); }

  /// Counts one finished cell.
  void step() {
    board_.add_units_done(1);
    board_.maybe_publish();
  }

  /// Publishes the terminal snapshot; safe when disabled.
  void finish(int exit_code) { board_.finish(exit_code); }

 private:
  sim::status::StatusBoard board_;
};

}  // namespace tracemod::bench
