// Figure 5: Chatterbox traces (busy conference room).
//
// The collection host sits still in a room with five other laptops running
// a SynRGen edit-debug workload against NFS over the same cell.  No
// motion, so the figure reports distributions rather than paths.
//
// Paper's shape: signal level consistently high (typically ~18); despite
// that, latency and bandwidth are poorer than the other scenarios because
// of contention; loss rates reasonable.
#include "scenario_figure.hpp"

#include "build_guard.hpp"

using namespace tracemod;

int main(int argc, char** argv) {
  tracemod::bench::require_release_build(argc, argv);
  bench::heading("Figure 5: Chatterbox Traces",
                 "distributions across 4 trials (stationary host, "
                 "5 SynRGen interferers)");
  const auto scenario = scenarios::chatterbox();
  const auto trials = bench::collect_trials(scenario, 4, 50'000);
  bench::print_histogram_figure(trials);
  return 0;
}
