// Figure 6: Elapsed Times for the World Wide Web Benchmark.
//
// Web reference traces are replayed as fast as possible against a private
// server: four live trials per scenario, four collected traces distilled
// and replayed for four modulated trials, plus the bare-Ethernet row.
// The paper's accuracy criterion: the difference between real and
// modulated means is within the sum of their standard deviations.
#include "audit_option.hpp"
#include "report.hpp"
#include "scenarios/parallel_runner.hpp"
#include "status_option.hpp"
#include "telemetry_option.hpp"

#include "build_guard.hpp"

using namespace tracemod;
using namespace tracemod::scenarios;

namespace {
struct PaperRow {
  const char* scenario;
  double real_mean, real_sd, mod_mean, mod_sd;
};
constexpr PaperRow kPaper[] = {
    {"Wean", 161.47, 7.82, 160.04, 2.60},
    {"Porter", 159.83, 5.07, 150.65, 5.83},
    {"Flagstaff", 157.82, 6.58, 148.64, 9.61},
    {"Chatterbox", 169.07, 17.63, 157.62, 10.18},
};
constexpr double kPaperEthernet = 140.30;
constexpr double kPaperEthernetSd = 3.07;
}  // namespace

int main(int argc, char** argv) {
  tracemod::bench::require_release_build(argc, argv);
  bench::heading("Figure 6: Elapsed Times for World Wide Web Benchmark",
                 "mean (stddev) seconds over 4 trials");
  ExperimentConfig cfg;
  bench::TelemetryOption telemetry(argc, argv, cfg);
  bench::AuditOption audits(argc, argv, cfg);
  bench::StatusOption status(argc, argv, cfg, "fig6-web");
  status.set_units("scenarios", static_cast<double>(all_scenarios().size() + 1));
  cfg.compensation_vb = measure_compensation_vb();
  ParallelRunner runner;
  bench::rowf("%-11s | %18s %18s | %18s %18s | %s", "scenario", "real(s)",
              "modulated(s)", "paper real", "paper mod", "check");

  for (const Scenario& s : all_scenarios()) {
    status.phase(s.name);
    const auto c = runner.experiment(s, BenchmarkKind::kWeb, cfg);
    status.step();
    telemetry.add(c.live, s.name + "/live");
    telemetry.add(c.modulated, s.name + "/mod");
    audits.add(c.audits, s.name);
    const Summary r = summarize_elapsed(c.live);
    const Summary m = summarize_elapsed(c.modulated);
    const PaperRow* p = nullptr;
    for (const auto& row : kPaper) {
      if (s.name == row.scenario) p = &row;
    }
    bench::rowf("%-11s | %18s %18s | %9.2f (%5.2f) %9.2f (%5.2f) | %s",
                s.name.c_str(), cell(r).c_str(), cell(m).c_str(),
                p->real_mean, p->real_sd, p->mod_mean, p->mod_sd,
                check_label(r, m).c_str());
  }
  status.phase("ethernet");
  const auto eth_trials = runner.ethernet_trials(BenchmarkKind::kWeb, cfg);
  status.step();
  telemetry.add(eth_trials, "ethernet");
  const Summary eth = summarize_elapsed(eth_trials);
  bench::rowf("%-11s | %18s %18s | %9.2f (%5.2f) %18s |", "Ethernet",
              cell(eth).c_str(), "-", kPaperEthernet, kPaperEthernetSd, "-");
  bench::rowf(
      "\nExpected shape: all four scenarios within error; every wireless\n"
      "scenario slower than Ethernet; Chatterbox the most variable.");
  const int audit_rc = audits.finish();
  const int telemetry_rc = telemetry.finish();
  const int rc = audit_rc != 0 ? audit_rc : telemetry_rc;
  status.finish(rc);
  return rc;
}
