// Figure 2: Porter traces (inter-building travel).
//
// Four traversals of the Porter scenario: Wean Hall lobby (x0) -> outdoor
// patio (x1-x3) -> Porter Hall (x4-x6).  At each location the paper plots
// the range of observations across trials; we print that range per
// checkpoint interval.
//
// Paper's shape: signal highly variable initially, improving across the
// patio, falling off through Porter Hall and turning variable near x5;
// latency typically 1.5-10 ms with spikes toward 100 ms; bandwidth
// typically 1.4-1.6 Mb/s with dips toward 900 kb/s; loss usually < 10%,
// worst early on the patio and at the end of Porter Hall.
#include "scenario_figure.hpp"

#include "build_guard.hpp"

using namespace tracemod;

int main(int argc, char** argv) {
  tracemod::bench::require_release_build(argc, argv);
  bench::heading("Figure 2: Porter Traces",
                 "ranges across 4 trials per checkpoint interval");
  const auto scenario = scenarios::porter();
  const auto trials = bench::collect_trials(scenario, 4, 20'000);
  bench::print_path_figure(scenario, trials);

  std::size_t total_groups = 0, corrected = 0;
  for (const auto& t : trials) {
    core::Distiller d;
    d.distill(t.raw);
    total_groups += d.stats().groups_total;
    corrected += d.stats().groups_corrected;
  }
  bench::rowf("\n%zu ping groups across trials, %zu corrected (%.1f%%)",
              total_groups, corrected,
              100.0 * static_cast<double>(corrected) /
                  static_cast<double>(std::max<std::size_t>(total_groups, 1)));
  return 0;
}
