// Shared output helpers for the figure-reproduction benches.
//
// Each bench prints the corresponding paper table/figure as text, with the
// paper's published numbers alongside ours where the paper gives them.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>

namespace tracemod::bench {

inline void heading(const std::string& title, const std::string& subtitle) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  if (!subtitle.empty()) std::printf("%s\n", subtitle.c_str());
  std::printf("================================================================\n");
}

inline void rowf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Marks a comparison the way the paper's discussion does.
inline const char* verdict(bool within) {
  return within ? "within error" : "DIVERGES";
}

}  // namespace tracemod::bench
