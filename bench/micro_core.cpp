// Microbenchmarks (google-benchmark) for the core machinery: distillation
// throughput, modulation-layer per-packet cost, event-loop dispatch, and
// trace-format round-trips.  These bound the overhead the methodology adds
// to an experiment, the paper's "cheap to compute" model constraint
// (Section 3.2.1).
#include <benchmark/benchmark.h>

#include <cstring>
#include <sstream>
#include <vector>

#include "core/distiller.hpp"
#include "core/emulator.hpp"
#include "scenarios/live_testbed.hpp"
#include "trace/ping.hpp"
#include "trace/trace_io.hpp"
#include "version.hpp"

#include "build_guard.hpp"

using namespace tracemod;

namespace {

/// A synthetic collected trace with n complete ping groups.
trace::CollectedTrace synthetic_collected(std::size_t groups) {
  trace::CollectedTrace out;
  sim::TimePoint t = sim::kEpoch;
  std::uint16_t seq = 0;
  for (std::size_t g = 0; g < groups; ++g) {
    const double rtts[3] = {0.0009, 0.0150, 0.0217};
    const std::uint32_t sizes[3] = {60, 1052, 1052};
    for (int i = 0; i < 3; ++i) {
      trace::PacketRecord echo;
      echo.at = t;
      echo.dir = trace::PacketDirection::kOutgoing;
      echo.protocol = net::Protocol::kIcmp;
      echo.icmp_kind = trace::IcmpKind::kEcho;
      echo.icmp_seq = seq;
      echo.ip_bytes = sizes[i];
      out.records.emplace_back(echo);

      trace::PacketRecord reply = echo;
      reply.dir = trace::PacketDirection::kIncoming;
      reply.icmp_kind = trace::IcmpKind::kEchoReply;
      reply.echo_origin = t;
      reply.at = t + sim::from_seconds(rtts[i]);
      out.records.emplace_back(reply);
      ++seq;
    }
    t += sim::seconds(1);
  }
  return out;
}

void BM_DistillTrace(benchmark::State& state) {
  const auto collected = synthetic_collected(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    core::Distiller distiller;
    benchmark::DoNotOptimize(distiller.distill(collected));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DistillTrace)->Arg(60)->Arg(600)->Arg(3600);

void BM_ModulatedPingRoundTrips(benchmark::State& state) {
  // Per-iteration cost of pushing a packet exchange through the full
  // modulated stack (both directions of the modulation layer).
  for (auto _ : state) {
    state.PauseTiming();
    core::Emulator emulator(
        core::ReplayTrace::wavelan_like(sim::seconds(3600)),
        core::EmulatorConfig{});
    int replies = 0;
    emulator.mobile().icmp().set_reply_callback(
        [&](const net::Packet&) { ++replies; });
    state.ResumeTiming();
    for (int i = 0; i < 1000; ++i) {
      emulator.mobile().icmp().send_echo(
          emulator.config().server_addr, 1, static_cast<std::uint16_t>(i),
          64, emulator.loop().now());
      emulator.run_for(sim::milliseconds(40));
    }
    benchmark::DoNotOptimize(replies);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_ModulatedPingRoundTrips)->Unit(benchmark::kMillisecond);

void BM_EventLoopDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    std::uint64_t sum = 0;
    for (int i = 0; i < 10000; ++i) {
      loop.schedule(sim::microseconds(i), [&sum, i] { sum += i; });
    }
    loop.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventLoopDispatch)->Unit(benchmark::kMillisecond);

void BM_TraceFormatRoundTrip(benchmark::State& state) {
  const auto collected = synthetic_collected(600);
  for (auto _ : state) {
    std::stringstream ss;
    trace::write_trace(ss, collected);
    benchmark::DoNotOptimize(trace::read_trace(ss));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(collected.records.size()));
}
BENCHMARK(BM_TraceFormatRoundTrip)->Unit(benchmark::kMillisecond);

void BM_LiveWirelessSecond(benchmark::State& state) {
  // Wall-clock cost of simulating one second of a busy live scenario.
  for (auto _ : state) {
    state.PauseTiming();
    scenarios::LiveTestbed bed(scenarios::chatterbox(), 99);
    trace::PingWorkload ping(bed.mobile(), bed.server_addr(),
                             bed.mobile_clock());
    ping.start();
    state.ResumeTiming();
    bed.loop().run_until(bed.loop().now() + sim::seconds(1));
  }
}
BENCHMARK(BM_LiveWirelessSecond)->Unit(benchmark::kMillisecond);

}  // namespace

// BENCHMARK_MAIN(), plus a default JSON export: unless the caller already
// chose a --benchmark_out, results also land in BENCH_core.json so CI can
// archive the perf trajectory without wrapping the invocation.
int main(int argc, char** argv) {
  tracemod::bench::require_release_build(argc, argv);
  benchmark::AddCustomContext("tracemod_build_type",
                              tracemod::bench::build_type());
  benchmark::AddCustomContext("tracemod_tool_version", tracemod::kToolVersion);
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc) + 2);
  bool has_out = false;
  for (int i = 0; i < argc; ++i) {
    // --allow-debug belongs to the build guard; google-benchmark would
    // reject it as unrecognized.
    if (i > 0 && std::strcmp(argv[i], "--allow-debug") == 0) continue;
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
    args.push_back(argv[i]);
  }
  static char out_flag[] = "--benchmark_out=BENCH_core.json";
  static char fmt_flag[] = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag);
    args.push_back(fmt_flag);
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
