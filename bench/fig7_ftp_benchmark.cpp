// Figure 7: Elapsed Times for the FTP Benchmark.
//
// 10 MB disk-to-disk transfers, send and receive reported separately.  The
// benchmark is network-limited and exposes the symmetry assumption forced
// by unsynchronized clocks: real WaveLAN performance is asymmetric (send
// slower than receive on marginal uplinks), while modulated send and
// receive land near the mean of the two real directions.
#include "audit_option.hpp"
#include "report.hpp"
#include "scenarios/parallel_runner.hpp"
#include "status_option.hpp"
#include "telemetry_option.hpp"

#include "build_guard.hpp"

using namespace tracemod;
using namespace tracemod::scenarios;

namespace {
struct PaperRow {
  const char* scenario;
  double send_mean, send_sd, recv_mean, recv_sd;      // real
  double msend_mean, msend_sd, mrecv_mean, mrecv_sd;  // modulated
};
constexpr PaperRow kPaper[] = {
    {"Wean", 79.88, 10.88, 64.93, 0.93, 72.65, 3.33, 67.83, 2.34},
    {"Porter", 86.38, 4.94, 82.23, 1.92, 76.65, 4.29, 72.95, 4.01},
    {"Flagstaff", 88.15, 1.60, 61.85, 1.12, 74.88, 2.97, 70.80, 3.36},
    {"Chatterbox", 116.83, 30.49, 96.83, 42.15, 92.13, 20.13, 87.28, 17.18},
};
}  // namespace

int main(int argc, char** argv) {
  tracemod::bench::require_release_build(argc, argv);
  bench::heading("Figure 7: Elapsed Times for FTP Benchmark",
                 "10 MB disk-to-disk; mean (stddev) seconds over 4 trials");
  ExperimentConfig cfg;
  bench::TelemetryOption telemetry(argc, argv, cfg);
  bench::AuditOption audits(argc, argv, cfg);
  bench::StatusOption status(argc, argv, cfg, "fig7-ftp");
  status.set_units("scenarios", static_cast<double>(all_scenarios().size() + 1));
  cfg.compensation_vb = measure_compensation_vb();
  ParallelRunner runner;
  bench::rowf("%-11s %-5s | %16s %16s | %16s %16s | %s", "scenario", "dir",
              "real(s)", "modulated(s)", "paper real", "paper mod", "check");

  for (const Scenario& s : all_scenarios()) {
    status.phase(s.name);
    const auto traces = runner.replay_traces(s, cfg);
    // Traces are shared by both FTP directions; audit each trace once.
    if (audits.enabled()) {
      audits.add(runner.trace_audits(traces, cfg), s.name);
    }
    const PaperRow* p = nullptr;
    for (const auto& row : kPaper) {
      if (s.name == row.scenario) p = &row;
    }
    for (const bool send : {true, false}) {
      const BenchmarkKind kind =
          send ? BenchmarkKind::kFtpSend : BenchmarkKind::kFtpRecv;
      const std::string dir = send ? "send" : "recv";
      const auto live = runner.live_trials(s, kind, cfg);
      const auto modulated = runner.modulated_trials(traces, kind, cfg);
      telemetry.add(live, s.name + "/" + dir + "/live");
      telemetry.add(modulated, s.name + "/" + dir + "/mod");
      const Summary r = summarize_elapsed(live);
      const Summary m = summarize_elapsed(modulated);
      bench::rowf("%-11s %-5s | %16s %16s | %7.2f (%6.2f) %7.2f (%6.2f) | %s",
                  s.name.c_str(), send ? "send" : "recv", cell(r).c_str(),
                  cell(m).c_str(), send ? p->send_mean : p->recv_mean,
                  send ? p->send_sd : p->recv_sd,
                  send ? p->msend_mean : p->mrecv_mean,
                  send ? p->msend_sd : p->mrecv_sd,
                  check_label(r, m).c_str());
    }
    status.step();
  }
  status.phase("ethernet");
  for (const bool send : {true, false}) {
    const BenchmarkKind kind =
        send ? BenchmarkKind::kFtpSend : BenchmarkKind::kFtpRecv;
    const auto eth_trials = runner.ethernet_trials(kind, cfg);
    telemetry.add(eth_trials,
                  std::string("ethernet/") + (send ? "send" : "recv"));
    const Summary eth = summarize_elapsed(eth_trials);
    bench::rowf("%-11s %-5s | %16s %16s | %7.2f (%6.2f) %16s |", "Ethernet",
                send ? "send" : "recv", cell(eth).c_str(), "-",
                send ? 20.50 : 18.83, send ? 0.08 : 0.17, "-");
  }
  status.step();
  bench::rowf(
      "\nExpected shape: real send > real recv (asymmetric WaveLAN);\n"
      "modulated send ~ modulated recv, both near the mean of the real\n"
      "directions (the symmetry assumption, Section 5.3); Ethernet ~ 20 s.");
  const int audit_rc = audits.finish();
  const int telemetry_rc = telemetry.finish();
  const int rc = audit_rc != 0 ? audit_rc : telemetry_rc;
  status.finish(rc);
  return rc;
}
