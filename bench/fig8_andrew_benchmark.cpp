// Figure 8: Elapsed Times for Andrew Benchmark Phases.
//
// The Andrew benchmark over NFS/UDP: MakeDir, Copy, ScanDir, ReadAll,
// Make, plus the total.  The paper's headline artifact appears here: the
// status-check-dominated phases (ScanDir, ReadAll) are *under-delayed* in
// modulation because many short NFS messages compute delays below half the
// 10 ms scheduling tick and are sent immediately (Section 5.4).
#include <vector>

#include "audit_option.hpp"
#include "report.hpp"
#include "scenarios/parallel_runner.hpp"
#include "status_option.hpp"
#include "telemetry_option.hpp"

#include "build_guard.hpp"

using namespace tracemod;
using namespace tracemod::scenarios;

namespace {

struct PhaseSummary {
  Summary makedir, copy, scandir, readall, make, total;
};

PhaseSummary summarize_phases(const std::vector<BenchmarkOutcome>& outcomes) {
  std::vector<double> md, cp, sd, ra, mk, tt;
  for (const auto& o : outcomes) {
    md.push_back(o.andrew.makedir_s);
    cp.push_back(o.andrew.copy_s);
    sd.push_back(o.andrew.scandir_s);
    ra.push_back(o.andrew.readall_s);
    mk.push_back(o.andrew.make_s);
    tt.push_back(o.andrew.total_s);
  }
  return PhaseSummary{summarize(md), summarize(cp), summarize(sd),
                      summarize(ra), summarize(mk), summarize(tt)};
}

void print_row(const char* scenario, const char* kind,
               const PhaseSummary& p) {
  bench::rowf("%-11s %-5s %13s %15s %15s %15s %16s %16s", scenario, kind,
              cell(p.makedir).c_str(), cell(p.copy).c_str(),
              cell(p.scandir).c_str(), cell(p.readall).c_str(),
              cell(p.make).c_str(), cell(p.total).c_str());
}

struct PaperTotals {
  const char* scenario;
  double real_mean, real_sd, mod_mean, mod_sd;
};
constexpr PaperTotals kPaper[] = {
    {"Wean", 163.00, 4.40, 162.75, 4.86},
    {"Porter", 169.50, 5.45, 151.00, 14.09},
    {"Flagstaff", 177.00, 4.69, 145.75, 5.91},
    {"Chatterbox", 180.75, 27.61, 202.75, 50.79},
};

}  // namespace

int main(int argc, char** argv) {
  tracemod::bench::require_release_build(argc, argv);
  bench::heading("Figure 8: Elapsed Times for Andrew Benchmark Phases",
                 "mean (stddev) seconds over 4 trials; NFS over UDP");
  ExperimentConfig cfg;
  bench::TelemetryOption telemetry(argc, argv, cfg);
  bench::AuditOption audits(argc, argv, cfg);
  bench::StatusOption status(argc, argv, cfg, "fig8-andrew");
  status.set_units("scenarios", static_cast<double>(all_scenarios().size() + 1));
  cfg.compensation_vb = measure_compensation_vb();
  ParallelRunner runner;
  bench::rowf("%-11s %-5s %13s %15s %15s %15s %16s %16s", "scenario", "",
              "MakeDir(s)", "Copy(s)", "ScanDir(s)", "ReadAll(s)", "Make(s)",
              "Total(s)");

  for (const Scenario& s : all_scenarios()) {
    status.phase(s.name);
    const auto c = runner.experiment(s, BenchmarkKind::kAndrew, cfg);
    status.step();
    telemetry.add(c.live, s.name + "/live");
    telemetry.add(c.modulated, s.name + "/mod");
    audits.add(c.audits, s.name);
    const PhaseSummary rp = summarize_phases(c.live);
    const PhaseSummary mp = summarize_phases(c.modulated);
    print_row(s.name.c_str(), "Real", rp);
    print_row("", "Mod.", mp);
    const PaperTotals* p = nullptr;
    for (const auto& row : kPaper) {
      if (s.name == row.scenario) p = &row;
    }
    bench::rowf("%-11s paper totals: real %.2f (%.2f), mod %.2f (%.2f); "
                "ours: %s  [scan/read under-delay: %s]",
                "", p->real_mean, p->real_sd, p->mod_mean, p->mod_sd,
                bench::verdict(within_error(rp.total, mp.total)),
                (mp.scandir.mean < rp.scandir.mean &&
                 mp.readall.mean < rp.readall.mean)
                    ? "yes"
                    : "no");
  }
  status.phase("ethernet");
  const auto eth_trials = runner.ethernet_trials(BenchmarkKind::kAndrew, cfg);
  status.step();
  telemetry.add(eth_trials, "ethernet");
  const PhaseSummary eth = summarize_phases(eth_trials);
  print_row("Ethernet", "Real", eth);
  bench::rowf("%-11s paper Ethernet: 2.25 (0.50)  12.50 (0.58)  7.75 (0.50)"
              "  17.50 (0.58)  84.00 (1.41)  124.00 (1.63)",
              "");
  bench::rowf(
      "\nExpected shape: Wean/Porter/Chatterbox totals within error;\n"
      "Flagstaff diverges (modulated < real) because short NFS messages\n"
      "fall below the 10 ms scheduling threshold (Section 5.4).");
  const int audit_rc = audits.finish();
  const int telemetry_rc = telemetry.finish();
  const int rc = audit_rc != 0 ? audit_rc : telemetry_rc;
  status.finish(rc);
  return rc;
}
