// Production-volume corpus distillation: wall time and peak RSS for the
// bounded-memory streaming distiller on a multi-GB synthetic trace.
// Emits BENCH_corpus.json (schema tracemod-corpus-bench-v1) so CI can
// assert the robustness tentpole's acceptance bar: a >= 1 GB corpus
// distills faster than real time (wall seconds << the corpus's collection
// duration) while RSS stays flat -- the corpus never fits in the cap, so
// any whole-file slurp would blow it.
//
// Usage: corpus_distill [--mb N] [--seconds S] [--threads T]
//                       [--rss-cap-mb N] [--out BENCH_corpus.json] [--keep]
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/stream_distiller.hpp"
#include "report.hpp"
#include "sim/io/durable.hpp"
#include "trace/synthetic_corpus.hpp"
#include "version.hpp"

#include "build_guard.hpp"

using namespace tracemod;

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Peak resident set of this process, in MB (ru_maxrss is KB on Linux).
double peak_rss_mb() {
  rusage u{};
  getrusage(RUSAGE_SELF, &u);
  return static_cast<double>(u.ru_maxrss) / 1024.0;
}

const char* status_name(core::DistillStatus s) {
  switch (s) {
    case core::DistillStatus::kOk: return "ok";
    case core::DistillStatus::kSalvaged: return "salvaged";
    case core::DistillStatus::kDegraded: return "degraded";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  tracemod::bench::require_release_build(argc, argv);
  double mb = 1024.0;
  double seconds = 7200.0;
  unsigned threads = 0;
  double rss_cap_mb = 512.0;
  std::string out_path = "BENCH_corpus.json";
  bool keep = false;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(1);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--mb") == 0) {
      mb = std::atof(next("--mb"));
    } else if (std::strcmp(argv[i], "--seconds") == 0) {
      seconds = std::atof(next("--seconds"));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = static_cast<unsigned>(std::atoi(next("--threads")));
    } else if (std::strcmp(argv[i], "--rss-cap-mb") == 0) {
      rss_cap_mb = std::atof(next("--rss-cap-mb"));
    } else if (std::strcmp(argv[i], "--out") == 0) {
      out_path = next("--out");
    } else if (std::strcmp(argv[i], "--keep") == 0) {
      keep = true;
    } else if (std::strcmp(argv[i], "--allow-debug") == 0) {
      // Consumed by require_release_build() above.
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      return 1;
    }
  }

  bench::heading("Corpus distillation: wall time and RSS at production volume",
                 "streaming two-pass distiller, " + std::to_string(mb) +
                     " MB synthetic corpus");

  const std::string corpus_path =
      (std::filesystem::temp_directory_path() / "tracemod_bench_corpus.trace")
          .string();

  trace::CorpusSpec spec;
  spec.duration = sim::from_seconds(seconds);
  spec.target_bytes = static_cast<std::uint64_t>(mb * 1024.0 * 1024.0);
  spec.seed = 1997;
  const double t_gen0 = now_s();
  const trace::CorpusInfo info = trace::generate_ping_corpus(corpus_path, spec);
  const double gen_s = now_s() - t_gen0;
  bench::rowf("generated %.1f MB / %llu records / %.0f virtual s in %.1f s",
              static_cast<double>(info.bytes) / (1024.0 * 1024.0),
              static_cast<unsigned long long>(info.records), seconds, gen_s);

  core::StreamDistillConfig cfg;
  cfg.threads = threads;
  const double t_dis0 = now_s();
  core::StreamDistiller distiller(cfg);
  const core::StreamDistillResult res = distiller.distill_file(corpus_path);
  const double distill_s = now_s() - t_dis0;
  const double rss_mb = peak_rss_mb();

  // "Faster than real time": collecting this corpus took `seconds` of
  // wall clock on the reference testbed; distilling it must take less.
  const double speedup = seconds / std::max(distill_s, 1e-9);
  const bool faster = distill_s < seconds;
  const bool flat_rss = rss_mb < rss_cap_mb;
  const double corpus_mb = static_cast<double>(info.bytes) / (1024.0 * 1024.0);

  bench::rowf("distilled in %.2f s (%.0fx real time, %s) -> %zu tuples [%s]",
              distill_s, speedup, faster ? "faster" : "SLOWER",
              res.replay.size(), status_name(res.status));
  bench::rowf("windows: %llu total, %llu damaged, %llu shed; "
              "records streamed: %llu",
              static_cast<unsigned long long>(res.stats.windows_total),
              static_cast<unsigned long long>(res.stats.windows_damaged),
              static_cast<unsigned long long>(res.stats.windows_shed),
              static_cast<unsigned long long>(res.stats.records_streamed));
  bench::rowf("peak RSS %.1f MB vs %.0f MB cap (corpus %.1f MB): %s", rss_mb,
              rss_cap_mb, corpus_mb, flat_rss ? "flat" : "BLOWN");

  std::ostringstream out;
  out << "{\n"
      << "  \"schema\": \"tracemod-corpus-bench-v1\",\n"
      << "  \"tool_version\": \"" << kToolVersion << "\",\n"
      << "  \"corpus_bytes\": " << info.bytes << ",\n"
      << "  \"corpus_records\": " << info.records << ",\n"
      << "  \"corpus_virtual_seconds\": " << seconds << ",\n"
      << "  \"generate_wall_s\": " << gen_s << ",\n"
      << "  \"distill_wall_s\": " << distill_s << ",\n"
      << "  \"speedup_vs_real_time\": " << speedup << ",\n"
      << "  \"faster_than_real_time\": " << (faster ? "true" : "false")
      << ",\n"
      << "  \"peak_rss_mb\": " << rss_mb << ",\n"
      << "  \"rss_cap_mb\": " << rss_cap_mb << ",\n"
      << "  \"rss_flat\": " << (flat_rss ? "true" : "false") << ",\n"
      << "  \"threads\": " << threads << ",\n"
      << "  \"windows_total\": " << res.stats.windows_total << ",\n"
      << "  \"windows_damaged\": " << res.stats.windows_damaged << ",\n"
      << "  \"windows_shed\": " << res.stats.windows_shed << ",\n"
      << "  \"records_streamed\": " << res.stats.records_streamed << ",\n"
      << "  \"tuples\": " << res.replay.size() << ",\n"
      << "  \"status\": \"" << status_name(res.status) << "\"\n"
      << "}\n";
  if (!sim::io::write_artifact_or_complain(out_path, out.str())) {
    if (!keep) std::filesystem::remove(corpus_path);
    return 2;
  }
  bench::rowf("wrote %s", out_path.c_str());

  if (!keep) std::filesystem::remove(corpus_path);
  return (faster && flat_rss && res.status == core::DistillStatus::kOk) ? 0
                                                                        : 1;
}
