// --telemetry=PREFIX support for the figure-reproduction benches.
//
// Each fig6/7/8 binary constructs one TelemetryOption from its argv.  When
// the flag is absent the option is inert: the ExperimentConfig is left
// untouched (telemetry disabled, outputs bit-identical to the flagless
// binary) and finish() is a no-op.  When present, every trial world records
// telemetry, the binary accumulates labelled snapshots in table order, and
// finish() writes PREFIX.perfetto.json (load in ui.perfetto.dev) plus
// PREFIX.metrics.txt via the merged exporters.
#pragma once

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenarios/experiment.hpp"
#include "sim/io/durable.hpp"

namespace tracemod::bench {

class TelemetryOption {
 public:
  TelemetryOption(int argc, char** argv,
                  scenarios::ExperimentConfig& cfg) {
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--telemetry=", 12) == 0 && arg[12] != '\0') {
        prefix_ = arg + 12;
        cfg.telemetry.enabled = true;
      }
    }
  }

  bool enabled() const { return !prefix_.empty(); }

  /// Appends the outcomes' snapshots labelled "<prefix>/trial<i>"; skips
  /// outcomes without telemetry, so calls are safe when disabled.
  void add(const std::vector<scenarios::BenchmarkOutcome>& outcomes,
           const std::string& prefix) {
    for (auto& s : scenarios::labeled_telemetry(outcomes, prefix)) {
      snaps_.push_back(std::move(s));
    }
  }

  /// Writes the merged exports.  Returns 0, or 1 if the files cannot be
  /// opened; 0 immediately when the flag was absent.
  int finish() const {
    if (!enabled()) return 0;
    const std::string json_path = prefix_ + ".perfetto.json";
    const std::string metrics_path = prefix_ + ".metrics.txt";
    std::ostringstream json;
    std::ostringstream metrics;
    sim::write_chrome_trace(json, snaps_);
    sim::write_metrics_text(metrics, snaps_);
    if (!sim::io::write_artifact_or_complain(json_path, json.str()) ||
        !sim::io::write_artifact_or_complain(metrics_path, metrics.str())) {
      return 1;
    }
    std::printf("\ntelemetry: %zu snapshot(s) -> %s (load in "
                "ui.perfetto.dev) and %s\n",
                snaps_.size(), json_path.c_str(), metrics_path.c_str());
    return 0;
  }

 private:
  std::string prefix_;
  std::vector<sim::LabeledTelemetry> snaps_;
};

}  // namespace tracemod::bench
