file(REMOVE_RECURSE
  "CMakeFiles/synthetic_traces.dir/synthetic_traces.cpp.o"
  "CMakeFiles/synthetic_traces.dir/synthetic_traces.cpp.o.d"
  "synthetic_traces"
  "synthetic_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
