# Empty dependencies file for synthetic_traces.
# This may be replaced when dependencies are built.
