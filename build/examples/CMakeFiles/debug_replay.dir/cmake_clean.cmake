file(REMOVE_RECURSE
  "CMakeFiles/debug_replay.dir/debug_replay.cpp.o"
  "CMakeFiles/debug_replay.dir/debug_replay.cpp.o.d"
  "debug_replay"
  "debug_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
