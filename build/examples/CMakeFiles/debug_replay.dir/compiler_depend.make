# Empty compiler generated dependencies file for debug_replay.
# This may be replaced when dependencies are built.
