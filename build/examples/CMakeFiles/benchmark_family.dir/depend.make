# Empty dependencies file for benchmark_family.
# This may be replaced when dependencies are built.
