file(REMOVE_RECURSE
  "CMakeFiles/benchmark_family.dir/benchmark_family.cpp.o"
  "CMakeFiles/benchmark_family.dir/benchmark_family.cpp.o.d"
  "benchmark_family"
  "benchmark_family.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchmark_family.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
