add_test([=[Umbrella.PublicApiIsReachable]=]  /root/repo/build/tests/umbrella_tests [==[--gtest_filter=Umbrella.PublicApiIsReachable]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Umbrella.PublicApiIsReachable]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  umbrella_tests_TESTS Umbrella.PublicApiIsReachable)
