
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/wireless/channel_property_test.cpp" "tests/CMakeFiles/wireless_tests.dir/wireless/channel_property_test.cpp.o" "gcc" "tests/CMakeFiles/wireless_tests.dir/wireless/channel_property_test.cpp.o.d"
  "/root/repo/tests/wireless/channel_test.cpp" "tests/CMakeFiles/wireless_tests.dir/wireless/channel_test.cpp.o" "gcc" "tests/CMakeFiles/wireless_tests.dir/wireless/channel_test.cpp.o.d"
  "/root/repo/tests/wireless/geometry_test.cpp" "tests/CMakeFiles/wireless_tests.dir/wireless/geometry_test.cpp.o" "gcc" "tests/CMakeFiles/wireless_tests.dir/wireless/geometry_test.cpp.o.d"
  "/root/repo/tests/wireless/mobility_test.cpp" "tests/CMakeFiles/wireless_tests.dir/wireless/mobility_test.cpp.o" "gcc" "tests/CMakeFiles/wireless_tests.dir/wireless/mobility_test.cpp.o.d"
  "/root/repo/tests/wireless/signal_model_test.cpp" "tests/CMakeFiles/wireless_tests.dir/wireless/signal_model_test.cpp.o" "gcc" "tests/CMakeFiles/wireless_tests.dir/wireless/signal_model_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenarios/CMakeFiles/tracemod_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tracemod_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/tracemod_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tracemod_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/wireless/CMakeFiles/tracemod_wireless.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/tracemod_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tracemod_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tracemod_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
