file(REMOVE_RECURSE
  "CMakeFiles/scenarios_tests.dir/scenarios/live_testbed_test.cpp.o"
  "CMakeFiles/scenarios_tests.dir/scenarios/live_testbed_test.cpp.o.d"
  "CMakeFiles/scenarios_tests.dir/scenarios/pipeline_test.cpp.o"
  "CMakeFiles/scenarios_tests.dir/scenarios/pipeline_test.cpp.o.d"
  "CMakeFiles/scenarios_tests.dir/scenarios/scenario_test.cpp.o"
  "CMakeFiles/scenarios_tests.dir/scenarios/scenario_test.cpp.o.d"
  "scenarios_tests"
  "scenarios_tests.pdb"
  "scenarios_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenarios_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
