file(REMOVE_RECURSE
  "libtracemod_trace.a"
)
