# Empty compiler generated dependencies file for tracemod_trace.
# This may be replaced when dependencies are built.
