
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/ping.cpp" "src/trace/CMakeFiles/tracemod_trace.dir/ping.cpp.o" "gcc" "src/trace/CMakeFiles/tracemod_trace.dir/ping.cpp.o.d"
  "/root/repo/src/trace/records.cpp" "src/trace/CMakeFiles/tracemod_trace.dir/records.cpp.o" "gcc" "src/trace/CMakeFiles/tracemod_trace.dir/records.cpp.o.d"
  "/root/repo/src/trace/trace_io.cpp" "src/trace/CMakeFiles/tracemod_trace.dir/trace_io.cpp.o" "gcc" "src/trace/CMakeFiles/tracemod_trace.dir/trace_io.cpp.o.d"
  "/root/repo/src/trace/trace_tap.cpp" "src/trace/CMakeFiles/tracemod_trace.dir/trace_tap.cpp.o" "gcc" "src/trace/CMakeFiles/tracemod_trace.dir/trace_tap.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tracemod_net.dir/DependInfo.cmake"
  "/root/repo/build/src/wireless/CMakeFiles/tracemod_wireless.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/tracemod_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tracemod_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
