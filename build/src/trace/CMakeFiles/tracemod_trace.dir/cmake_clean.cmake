file(REMOVE_RECURSE
  "CMakeFiles/tracemod_trace.dir/ping.cpp.o"
  "CMakeFiles/tracemod_trace.dir/ping.cpp.o.d"
  "CMakeFiles/tracemod_trace.dir/records.cpp.o"
  "CMakeFiles/tracemod_trace.dir/records.cpp.o.d"
  "CMakeFiles/tracemod_trace.dir/trace_io.cpp.o"
  "CMakeFiles/tracemod_trace.dir/trace_io.cpp.o.d"
  "CMakeFiles/tracemod_trace.dir/trace_tap.cpp.o"
  "CMakeFiles/tracemod_trace.dir/trace_tap.cpp.o.d"
  "libtracemod_trace.a"
  "libtracemod_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracemod_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
