# Empty dependencies file for tracemod_core.
# This may be replaced when dependencies are built.
