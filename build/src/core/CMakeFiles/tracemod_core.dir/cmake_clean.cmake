file(REMOVE_RECURSE
  "CMakeFiles/tracemod_core.dir/distiller.cpp.o"
  "CMakeFiles/tracemod_core.dir/distiller.cpp.o.d"
  "CMakeFiles/tracemod_core.dir/emulator.cpp.o"
  "CMakeFiles/tracemod_core.dir/emulator.cpp.o.d"
  "CMakeFiles/tracemod_core.dir/model.cpp.o"
  "CMakeFiles/tracemod_core.dir/model.cpp.o.d"
  "CMakeFiles/tracemod_core.dir/modulation.cpp.o"
  "CMakeFiles/tracemod_core.dir/modulation.cpp.o.d"
  "CMakeFiles/tracemod_core.dir/replay_device.cpp.o"
  "CMakeFiles/tracemod_core.dir/replay_device.cpp.o.d"
  "libtracemod_core.a"
  "libtracemod_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracemod_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
