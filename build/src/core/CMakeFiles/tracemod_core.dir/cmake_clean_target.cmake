file(REMOVE_RECURSE
  "libtracemod_core.a"
)
