
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/distiller.cpp" "src/core/CMakeFiles/tracemod_core.dir/distiller.cpp.o" "gcc" "src/core/CMakeFiles/tracemod_core.dir/distiller.cpp.o.d"
  "/root/repo/src/core/emulator.cpp" "src/core/CMakeFiles/tracemod_core.dir/emulator.cpp.o" "gcc" "src/core/CMakeFiles/tracemod_core.dir/emulator.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/tracemod_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/tracemod_core.dir/model.cpp.o.d"
  "/root/repo/src/core/modulation.cpp" "src/core/CMakeFiles/tracemod_core.dir/modulation.cpp.o" "gcc" "src/core/CMakeFiles/tracemod_core.dir/modulation.cpp.o.d"
  "/root/repo/src/core/replay_device.cpp" "src/core/CMakeFiles/tracemod_core.dir/replay_device.cpp.o" "gcc" "src/core/CMakeFiles/tracemod_core.dir/replay_device.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/tracemod_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/tracemod_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/wireless/CMakeFiles/tracemod_wireless.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tracemod_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tracemod_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
