file(REMOVE_RECURSE
  "libtracemod_wireless.a"
)
