file(REMOVE_RECURSE
  "CMakeFiles/tracemod_wireless.dir/channel.cpp.o"
  "CMakeFiles/tracemod_wireless.dir/channel.cpp.o.d"
  "CMakeFiles/tracemod_wireless.dir/geometry.cpp.o"
  "CMakeFiles/tracemod_wireless.dir/geometry.cpp.o.d"
  "CMakeFiles/tracemod_wireless.dir/mobility.cpp.o"
  "CMakeFiles/tracemod_wireless.dir/mobility.cpp.o.d"
  "CMakeFiles/tracemod_wireless.dir/signal_model.cpp.o"
  "CMakeFiles/tracemod_wireless.dir/signal_model.cpp.o.d"
  "libtracemod_wireless.a"
  "libtracemod_wireless.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracemod_wireless.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
