
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wireless/channel.cpp" "src/wireless/CMakeFiles/tracemod_wireless.dir/channel.cpp.o" "gcc" "src/wireless/CMakeFiles/tracemod_wireless.dir/channel.cpp.o.d"
  "/root/repo/src/wireless/geometry.cpp" "src/wireless/CMakeFiles/tracemod_wireless.dir/geometry.cpp.o" "gcc" "src/wireless/CMakeFiles/tracemod_wireless.dir/geometry.cpp.o.d"
  "/root/repo/src/wireless/mobility.cpp" "src/wireless/CMakeFiles/tracemod_wireless.dir/mobility.cpp.o" "gcc" "src/wireless/CMakeFiles/tracemod_wireless.dir/mobility.cpp.o.d"
  "/root/repo/src/wireless/signal_model.cpp" "src/wireless/CMakeFiles/tracemod_wireless.dir/signal_model.cpp.o" "gcc" "src/wireless/CMakeFiles/tracemod_wireless.dir/signal_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/tracemod_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tracemod_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
