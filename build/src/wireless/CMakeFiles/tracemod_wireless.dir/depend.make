# Empty dependencies file for tracemod_wireless.
# This may be replaced when dependencies are built.
