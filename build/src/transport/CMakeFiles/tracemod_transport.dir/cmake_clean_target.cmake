file(REMOVE_RECURSE
  "libtracemod_transport.a"
)
