# Empty compiler generated dependencies file for tracemod_transport.
# This may be replaced when dependencies are built.
