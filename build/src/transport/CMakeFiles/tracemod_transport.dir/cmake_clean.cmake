file(REMOVE_RECURSE
  "CMakeFiles/tracemod_transport.dir/icmp.cpp.o"
  "CMakeFiles/tracemod_transport.dir/icmp.cpp.o.d"
  "CMakeFiles/tracemod_transport.dir/tcp.cpp.o"
  "CMakeFiles/tracemod_transport.dir/tcp.cpp.o.d"
  "CMakeFiles/tracemod_transport.dir/udp.cpp.o"
  "CMakeFiles/tracemod_transport.dir/udp.cpp.o.d"
  "libtracemod_transport.a"
  "libtracemod_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracemod_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
