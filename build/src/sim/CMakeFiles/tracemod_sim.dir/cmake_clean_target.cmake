file(REMOVE_RECURSE
  "libtracemod_sim.a"
)
