file(REMOVE_RECURSE
  "CMakeFiles/tracemod_sim.dir/event_loop.cpp.o"
  "CMakeFiles/tracemod_sim.dir/event_loop.cpp.o.d"
  "CMakeFiles/tracemod_sim.dir/random.cpp.o"
  "CMakeFiles/tracemod_sim.dir/random.cpp.o.d"
  "CMakeFiles/tracemod_sim.dir/stats.cpp.o"
  "CMakeFiles/tracemod_sim.dir/stats.cpp.o.d"
  "libtracemod_sim.a"
  "libtracemod_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracemod_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
