# Empty dependencies file for tracemod_sim.
# This may be replaced when dependencies are built.
