file(REMOVE_RECURSE
  "CMakeFiles/tracemod_net.dir/ethernet.cpp.o"
  "CMakeFiles/tracemod_net.dir/ethernet.cpp.o.d"
  "CMakeFiles/tracemod_net.dir/ip_address.cpp.o"
  "CMakeFiles/tracemod_net.dir/ip_address.cpp.o.d"
  "CMakeFiles/tracemod_net.dir/node.cpp.o"
  "CMakeFiles/tracemod_net.dir/node.cpp.o.d"
  "CMakeFiles/tracemod_net.dir/packet.cpp.o"
  "CMakeFiles/tracemod_net.dir/packet.cpp.o.d"
  "libtracemod_net.a"
  "libtracemod_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracemod_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
