# Empty compiler generated dependencies file for tracemod_net.
# This may be replaced when dependencies are built.
