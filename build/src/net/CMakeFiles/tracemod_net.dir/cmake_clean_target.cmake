file(REMOVE_RECURSE
  "libtracemod_net.a"
)
