file(REMOVE_RECURSE
  "libtracemod_apps.a"
)
