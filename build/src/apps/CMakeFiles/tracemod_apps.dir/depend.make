# Empty dependencies file for tracemod_apps.
# This may be replaced when dependencies are built.
