file(REMOVE_RECURSE
  "CMakeFiles/tracemod_apps.dir/andrew.cpp.o"
  "CMakeFiles/tracemod_apps.dir/andrew.cpp.o.d"
  "CMakeFiles/tracemod_apps.dir/ftp.cpp.o"
  "CMakeFiles/tracemod_apps.dir/ftp.cpp.o.d"
  "CMakeFiles/tracemod_apps.dir/nfs.cpp.o"
  "CMakeFiles/tracemod_apps.dir/nfs.cpp.o.d"
  "CMakeFiles/tracemod_apps.dir/synrgen.cpp.o"
  "CMakeFiles/tracemod_apps.dir/synrgen.cpp.o.d"
  "CMakeFiles/tracemod_apps.dir/web.cpp.o"
  "CMakeFiles/tracemod_apps.dir/web.cpp.o.d"
  "libtracemod_apps.a"
  "libtracemod_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracemod_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
