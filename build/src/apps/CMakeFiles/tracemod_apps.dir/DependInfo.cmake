
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/andrew.cpp" "src/apps/CMakeFiles/tracemod_apps.dir/andrew.cpp.o" "gcc" "src/apps/CMakeFiles/tracemod_apps.dir/andrew.cpp.o.d"
  "/root/repo/src/apps/ftp.cpp" "src/apps/CMakeFiles/tracemod_apps.dir/ftp.cpp.o" "gcc" "src/apps/CMakeFiles/tracemod_apps.dir/ftp.cpp.o.d"
  "/root/repo/src/apps/nfs.cpp" "src/apps/CMakeFiles/tracemod_apps.dir/nfs.cpp.o" "gcc" "src/apps/CMakeFiles/tracemod_apps.dir/nfs.cpp.o.d"
  "/root/repo/src/apps/synrgen.cpp" "src/apps/CMakeFiles/tracemod_apps.dir/synrgen.cpp.o" "gcc" "src/apps/CMakeFiles/tracemod_apps.dir/synrgen.cpp.o.d"
  "/root/repo/src/apps/web.cpp" "src/apps/CMakeFiles/tracemod_apps.dir/web.cpp.o" "gcc" "src/apps/CMakeFiles/tracemod_apps.dir/web.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transport/CMakeFiles/tracemod_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tracemod_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tracemod_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
