file(REMOVE_RECURSE
  "libtracemod_scenarios.a"
)
