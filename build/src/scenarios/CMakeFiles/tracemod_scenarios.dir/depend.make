# Empty dependencies file for tracemod_scenarios.
# This may be replaced when dependencies are built.
