file(REMOVE_RECURSE
  "CMakeFiles/tracemod_scenarios.dir/benchmarks.cpp.o"
  "CMakeFiles/tracemod_scenarios.dir/benchmarks.cpp.o.d"
  "CMakeFiles/tracemod_scenarios.dir/experiment.cpp.o"
  "CMakeFiles/tracemod_scenarios.dir/experiment.cpp.o.d"
  "CMakeFiles/tracemod_scenarios.dir/live_testbed.cpp.o"
  "CMakeFiles/tracemod_scenarios.dir/live_testbed.cpp.o.d"
  "CMakeFiles/tracemod_scenarios.dir/scenario.cpp.o"
  "CMakeFiles/tracemod_scenarios.dir/scenario.cpp.o.d"
  "libtracemod_scenarios.a"
  "libtracemod_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracemod_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
