file(REMOVE_RECURSE
  "CMakeFiles/tracemod_tool.dir/tracemod_tool.cpp.o"
  "CMakeFiles/tracemod_tool.dir/tracemod_tool.cpp.o.d"
  "tracemod"
  "tracemod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tracemod_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
