# Empty dependencies file for tracemod_tool.
# This may be replaced when dependencies are built.
