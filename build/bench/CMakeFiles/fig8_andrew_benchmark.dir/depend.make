# Empty dependencies file for fig8_andrew_benchmark.
# This may be replaced when dependencies are built.
