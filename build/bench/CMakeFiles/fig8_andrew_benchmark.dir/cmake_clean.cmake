file(REMOVE_RECURSE
  "CMakeFiles/fig8_andrew_benchmark.dir/fig8_andrew_benchmark.cpp.o"
  "CMakeFiles/fig8_andrew_benchmark.dir/fig8_andrew_benchmark.cpp.o.d"
  "fig8_andrew_benchmark"
  "fig8_andrew_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_andrew_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
