file(REMOVE_RECURSE
  "CMakeFiles/fig1_delay_compensation.dir/fig1_delay_compensation.cpp.o"
  "CMakeFiles/fig1_delay_compensation.dir/fig1_delay_compensation.cpp.o.d"
  "fig1_delay_compensation"
  "fig1_delay_compensation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_delay_compensation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
