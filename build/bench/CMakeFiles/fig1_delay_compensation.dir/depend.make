# Empty dependencies file for fig1_delay_compensation.
# This may be replaced when dependencies are built.
