file(REMOVE_RECURSE
  "CMakeFiles/fig2_porter_traces.dir/fig2_porter_traces.cpp.o"
  "CMakeFiles/fig2_porter_traces.dir/fig2_porter_traces.cpp.o.d"
  "fig2_porter_traces"
  "fig2_porter_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_porter_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
