# Empty dependencies file for fig2_porter_traces.
# This may be replaced when dependencies are built.
