# Empty compiler generated dependencies file for fig5_chatterbox_traces.
# This may be replaced when dependencies are built.
