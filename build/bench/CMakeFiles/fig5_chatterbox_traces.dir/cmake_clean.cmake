file(REMOVE_RECURSE
  "CMakeFiles/fig5_chatterbox_traces.dir/fig5_chatterbox_traces.cpp.o"
  "CMakeFiles/fig5_chatterbox_traces.dir/fig5_chatterbox_traces.cpp.o.d"
  "fig5_chatterbox_traces"
  "fig5_chatterbox_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_chatterbox_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
