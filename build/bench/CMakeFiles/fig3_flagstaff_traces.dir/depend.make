# Empty dependencies file for fig3_flagstaff_traces.
# This may be replaced when dependencies are built.
