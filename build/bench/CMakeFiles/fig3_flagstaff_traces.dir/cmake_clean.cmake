file(REMOVE_RECURSE
  "CMakeFiles/fig3_flagstaff_traces.dir/fig3_flagstaff_traces.cpp.o"
  "CMakeFiles/fig3_flagstaff_traces.dir/fig3_flagstaff_traces.cpp.o.d"
  "fig3_flagstaff_traces"
  "fig3_flagstaff_traces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_flagstaff_traces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
