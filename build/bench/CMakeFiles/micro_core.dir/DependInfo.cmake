
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_core.cpp" "bench/CMakeFiles/micro_core.dir/micro_core.cpp.o" "gcc" "bench/CMakeFiles/micro_core.dir/micro_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/scenarios/CMakeFiles/tracemod_scenarios.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/tracemod_core.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/tracemod_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tracemod_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/wireless/CMakeFiles/tracemod_wireless.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/tracemod_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/tracemod_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tracemod_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
