# Empty compiler generated dependencies file for fig7_ftp_benchmark.
# This may be replaced when dependencies are built.
