file(REMOVE_RECURSE
  "CMakeFiles/fig7_ftp_benchmark.dir/fig7_ftp_benchmark.cpp.o"
  "CMakeFiles/fig7_ftp_benchmark.dir/fig7_ftp_benchmark.cpp.o.d"
  "fig7_ftp_benchmark"
  "fig7_ftp_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ftp_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
