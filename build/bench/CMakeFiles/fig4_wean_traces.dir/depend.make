# Empty dependencies file for fig4_wean_traces.
# This may be replaced when dependencies are built.
