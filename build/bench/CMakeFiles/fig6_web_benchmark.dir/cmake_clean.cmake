file(REMOVE_RECURSE
  "CMakeFiles/fig6_web_benchmark.dir/fig6_web_benchmark.cpp.o"
  "CMakeFiles/fig6_web_benchmark.dir/fig6_web_benchmark.cpp.o.d"
  "fig6_web_benchmark"
  "fig6_web_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_web_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
