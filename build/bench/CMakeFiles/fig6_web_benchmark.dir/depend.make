# Empty dependencies file for fig6_web_benchmark.
# This may be replaced when dependencies are built.
