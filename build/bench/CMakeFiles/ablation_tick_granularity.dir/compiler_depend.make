# Empty compiler generated dependencies file for ablation_tick_granularity.
# This may be replaced when dependencies are built.
