file(REMOVE_RECURSE
  "CMakeFiles/ablation_tick_granularity.dir/ablation_tick_granularity.cpp.o"
  "CMakeFiles/ablation_tick_granularity.dir/ablation_tick_granularity.cpp.o.d"
  "ablation_tick_granularity"
  "ablation_tick_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tick_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
