// Quickstart: the three-phase methodology end to end.
//
//   1. COLLECT  - walk the Porter scenario with the instrumented mobile
//                 host running the ping workload;
//   2. DISTILL  - reduce the collected trace to a replay trace of
//                 <d, F, Vb, Vr, L> quality tuples;
//   3. MODULATE - replay the trace on an isolated Ethernet and run an
//                 unmodified application (FTP) over it.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "apps/ftp.hpp"
#include "core/distiller.hpp"
#include "core/emulator.hpp"
#include "scenarios/experiment.hpp"
#include "scenarios/live_testbed.hpp"

using namespace tracemod;

int main() {
  // --- 1. Collection: one traversal of the Porter scenario. -------------
  std::printf("== collection: walking the Porter scenario ==\n");
  scenarios::LiveTestbed testbed(scenarios::porter(), /*seed=*/42);
  trace::CollectedTrace collected = testbed.collect_trace();
  std::printf("collected %zu records over %.1f s (%llu lost to overruns)\n",
              collected.records.size(), sim::to_seconds(collected.duration()),
              static_cast<unsigned long long>(collected.total_lost_records()));

  // --- 2. Distillation. --------------------------------------------------
  core::Distiller distiller;
  core::ReplayTrace replay = distiller.distill(collected);
  std::printf(
      "== distillation ==\n"
      "replay trace: %zu quality tuples covering %.1f s\n"
      "mean latency %.2f ms, mean bottleneck bandwidth %.2f Mb/s, "
      "mean loss %.1f%%\n",
      replay.size(), sim::to_seconds(replay.total_duration()),
      replay.mean_latency_s() * 1e3,
      8.0 / replay.mean_bottleneck_per_byte() / 1e6,
      replay.mean_loss() * 100.0);
  std::printf("groups: %zu complete, %zu corrected, %zu skipped\n",
              distiller.stats().groups_total,
              distiller.stats().groups_corrected,
              distiller.stats().groups_skipped);
  replay.save("porter_replay.trace");
  std::printf("saved to porter_replay.trace\n");

  // --- 3. Modulation: unmodified FTP over the emulated network. ----------
  std::printf("== modulation: 2 MB FTP fetch over the emulated network ==\n");
  core::EmulatorConfig cfg;
  cfg.modulation.inbound_vb_compensation =
      core::Emulator::measure_physical_vb();
  core::Emulator emulator(core::ReplayTrace::load("porter_replay.trace"), cfg);

  apps::FtpServer server(emulator.server());
  apps::FtpClient client(emulator.mobile(),
                         net::Endpoint{cfg.server_addr, 21});
  bool done = false;
  client.fetch(2 * 1000 * 1000, [&](apps::FtpResult r) {
    std::printf("fetched %llu bytes in %.2f s (%.2f Mb/s) [%s]\n",
                static_cast<unsigned long long>(r.bytes),
                sim::to_seconds(r.elapsed),
                static_cast<double>(r.bytes) * 8.0 /
                    sim::to_seconds(r.elapsed) / 1e6,
                r.ok ? "ok" : "FAILED");
    done = true;
  });
  while (!done && emulator.loop().step()) {
  }

  const auto& mod = emulator.modulation().stats();
  std::printf(
      "modulation layer: %llu out, %llu in, %llu dropped, "
      "%llu sent immediately (sub-tick), %llu scheduled on ticks\n",
      static_cast<unsigned long long>(mod.modulated_out),
      static_cast<unsigned long long>(mod.modulated_in),
      static_cast<unsigned long long>(mod.dropped),
      static_cast<unsigned long long>(mod.sent_immediately),
      static_cast<unsigned long long>(mod.scheduled));
  return done ? 0 : 1;
}
