// Synthetic traces (paper Section 6).
//
// Modulation does not require a collected trace: synthetic replay traces
// generate conditions real networks can only approximate.  Following the
// Odyssey reference, this example subjects a bandwidth-probing application
// to step and impulse variations in bandwidth and prints the observed
// throughput over time -- the kind of controlled stimulus used to study
// adaptive mobile systems.
#include <cstdio>
#include <vector>

#include "core/emulator.hpp"
#include "transport/udp.hpp"

using namespace tracemod;

namespace {

/// A packet-train bandwidth estimator: once a second, a 30-packet train is
/// blasted back-to-back; the bottleneck spaces the arrivals, so
/// bytes / (last - first arrival) estimates the available bandwidth -- the
/// probing an adaptive application would do.
class Prober {
 public:
  Prober(transport::Host& sender, transport::Host& receiver,
         net::IpAddress dst)
      : sender_(sender), socket_(sender.udp()), sink_(receiver.udp(), 9000),
        dst_(dst) {
    sink_.set_receive_callback(
        [this](const net::Packet& pkt, net::Endpoint) {
          if (received_bytes_ == 0) first_arrival_ = sender_.loop().now();
          last_arrival_ = sender_.loop().now();
          received_bytes_ += pkt.payload_size;
        });
  }

  void run_one_second(double* estimate_mbps) {
    received_bytes_ = 0;
    for (int i = 0; i < 30; ++i) socket_.send_to({dst_, 9000}, 1400);
    sender_.loop().run_until(sender_.loop().now() + sim::seconds(1));
    const double span = sim::to_seconds(last_arrival_ - first_arrival_);
    *estimate_mbps =
        (received_bytes_ > 1400 && span > 0)
            ? static_cast<double>(received_bytes_ - 1400) * 8.0 / span / 1e6
            : 0.0;
  }

 private:
  transport::Host& sender_;
  transport::UdpSocket socket_;
  transport::UdpSocket sink_;
  net::IpAddress dst_;
  std::uint64_t received_bytes_ = 0;
  sim::TimePoint first_arrival_{};
  sim::TimePoint last_arrival_{};
};

void run_trace(const char* title, core::ReplayTrace trace) {
  std::printf("\n== %s ==\n", title);
  std::printf("%4s  %14s  %12s\n", "t(s)", "trace bw(kb/s)", "train est(kb/s)");
  core::EmulatorConfig cfg;
  core::Emulator emulator(std::move(trace), cfg);
  Prober prober(emulator.server(), emulator.mobile(), cfg.mobile_addr);

  for (int second = 0; second < 24; ++second) {
    double goodput = 0.0;
    prober.run_one_second(&goodput);
    const core::QualityTuple* tuple = emulator.modulation().active_tuple();
    const double trace_bw =
        tuple != nullptr ? tuple->bottleneck_bandwidth_bps() / 1e3 : 0.0;
    std::printf("%4d  %14.0f  %12.0f\n", second, trace_bw,
                goodput * 1e3);
  }
}

}  // namespace

int main() {
  std::printf("Synthetic trace modulation: step and impulse bandwidth\n"
              "variation (paper Section 6).  The probe's goodput should\n"
              "track the trace's bandwidth within a second or two.\n");

  // Step: 1.6 Mb/s <-> 200 kb/s every 8 seconds.
  run_trace("bandwidth step (1.6 Mb/s <-> 200 kb/s, period 16 s)",
            core::ReplayTrace::bandwidth_step(
                sim::seconds(60), sim::seconds(1), 0.003, 200e3, 1.6e6,
                sim::seconds(16)));

  // Impulse: one 3-second dip in an otherwise constant trace.
  std::vector<core::QualityTuple> tuples;
  for (int s = 0; s < 60; ++s) {
    const bool dip = (s >= 10 && s < 13);
    tuples.push_back(core::QualityTuple{
        sim::seconds(1), 0.003, 8.0 / (dip ? 100e3 : 1.5e6), 0.0, 0.0});
  }
  run_trace("bandwidth impulse (3 s dip to 100 kb/s at t=10)",
            core::ReplayTrace(std::move(tuples)));
  return 0;
}
