// A trace benchmark family (paper Section 6).
//
// "A set of traces can be used as a benchmark family for evaluating and
// comparing the adaptive capabilities of alternative mobile system
// designs."  This example compares two file-transfer designs across all
// four scenario traces:
//   A. eager  - one bulk TCP transfer, classic FTP;
//   B. chunked - an "adaptive" client that transfers in 256 KB chunks over
//      separate connections, resuming after failures (simple, robust, but
//      pays per-chunk handshakes).
// The family exposes the trade-off: eager wins on clean traces, chunked
// degrades more gracefully on the hostile ones.
#include <algorithm>
#include <cstdio>

#include "apps/ftp.hpp"
#include "core/distiller.hpp"
#include "core/emulator.hpp"
#include "scenarios/experiment.hpp"

using namespace tracemod;

namespace {

constexpr std::uint64_t kTotalBytes = 8 * 1000 * 1000;

double run_eager(const core::ReplayTrace& trace, std::uint64_t seed) {
  core::EmulatorConfig cfg;
  cfg.seed = seed;
  cfg.loop_trace = true;
  core::Emulator emulator(trace, cfg);
  apps::FtpServer server(emulator.server());
  apps::FtpClient client(emulator.mobile(), {cfg.server_addr, 21});
  double elapsed = -1;
  bool done = false;
  client.fetch(kTotalBytes, [&](apps::FtpResult r) {
    elapsed = r.ok ? sim::to_seconds(r.elapsed) : -1;
    done = true;
  });
  const sim::TimePoint deadline = emulator.loop().now() + sim::seconds(1800);
  while (!done && emulator.loop().now() < deadline && emulator.loop().step()) {
  }
  return elapsed;
}

double run_chunked(const core::ReplayTrace& trace, std::uint64_t seed) {
  core::EmulatorConfig cfg;
  cfg.seed = seed;
  cfg.loop_trace = true;
  core::Emulator emulator(trace, cfg);
  apps::FtpServer server(emulator.server());
  apps::FtpClient client(emulator.mobile(), {cfg.server_addr, 21});

  constexpr std::uint64_t kChunk = 256 * 1000;
  std::uint64_t fetched = 0;
  double elapsed = -1;
  bool done = false;
  std::function<void()> next = [&] {
    const std::uint64_t want = std::min(kChunk, kTotalBytes - fetched);
    client.fetch(want, [&, want](apps::FtpResult r) {
      if (r.ok) fetched += want;  // a failed chunk is simply retried
      if (fetched >= kTotalBytes) {
        elapsed = sim::to_seconds(emulator.loop().now());
        done = true;
        return;
      }
      next();
    });
  };
  next();
  const sim::TimePoint deadline = emulator.loop().now() + sim::seconds(1800);
  while (!done && emulator.loop().now() < deadline && emulator.loop().step()) {
  }
  return elapsed;
}

}  // namespace

int main() {
  std::printf("Benchmark family: 4 MB fetch, eager vs chunked design,\n"
              "across the four scenario traces (one collection each).\n\n");
  std::printf("%-12s %12s %14s %10s\n", "trace", "eager(s)", "chunked(s)",
              "winner");
  for (const auto& scenario : scenarios::all_scenarios()) {
    core::Distiller distiller;
    core::ReplayTrace trace = distiller.distill(
        scenarios::collect_raw_trace(scenario, 31'337));
    // Rotate the trace so its second half (the hostile region in the
    // mobile scenarios) arrives mid-transfer.
    auto& ts = trace.tuples();
    if (ts.size() > 60) {
      std::rotate(ts.begin(), ts.begin() + static_cast<std::ptrdiff_t>(ts.size() / 2), ts.end());
    }
    const double eager = run_eager(trace, 1);
    const double chunked = run_chunked(trace, 1);
    const char* winner = "-";
    if (eager > 0 && (chunked < 0 || eager <= chunked)) winner = "eager";
    if (chunked > 0 && (eager < 0 || chunked < eager)) winner = "chunked";
    std::printf("%-12s %12.1f %14.1f %10s\n", scenario.name.c_str(), eager,
                chunked, winner);
  }
  std::printf("\n(-1.0 marks a transfer that did not finish within 30 min.)\n");
  return 0;
}
