// Deterministic bug reproduction (paper Section 6).
//
// "Tracing can play an important role in debugging by deterministically
// reproducing the network conditions under which a subtle bug was
// originally uncovered."
//
// The subtle bug here: an RPC client whose retransmission timer does NOT
// back off.  On a healthy network it looks fine; in the Wean elevator's
// loss burst it floods the link with retransmissions and livelocks long
// after the outage ends.  Live, the bug strikes only on trials that ride
// the elevator mid-transfer -- miserable to debug.  Under trace
// modulation the elevator is a file: every run reproduces the conditions,
// and the fix can be verified against the exact same network.
#include <cstdio>

#include "apps/nfs.hpp"
#include "core/distiller.hpp"
#include "core/emulator.hpp"
#include "scenarios/live_testbed.hpp"

using namespace tracemod;

namespace {

struct RunResult {
  double elapsed_s = 0.0;
  std::uint64_t retransmissions = 0;
  bool completed = false;
};

/// Issues 600 sequential getattr RPCs (a metadata-heavy workload) and
/// reports how long they take with the given retransmission policy.
RunResult run_workload(const core::ReplayTrace& trace, double backoff,
                       std::uint64_t seed) {
  core::EmulatorConfig cfg;
  cfg.seed = seed;
  core::Emulator emulator(trace, cfg);
  apps::NfsServer server(emulator.server(), 2049);
  server.add_file("f", 1024);

  apps::NfsClientConfig nfs_cfg;
  nfs_cfg.backoff = backoff;  // 1.0 = the bug: constant-rate retransmission
  // The buggy build also ships an aggressive fixed timer.
  nfs_cfg.initial_timeout =
      backoff > 1.0 ? sim::milliseconds(700) : sim::milliseconds(150);
  nfs_cfg.max_retries = 120;
  apps::NfsClient client(emulator.mobile(),
                         {cfg.server_addr, 2049}, nfs_cfg);

  RunResult result;
  int remaining = 600;
  std::function<void()> next = [&] {
    client.getattr("f", [&](const apps::NfsReply&, bool ok) {
      if (!ok) return;  // give-up: leave completed=false
      if (--remaining == 0) {
        result.elapsed_s = sim::to_seconds(emulator.loop().now());
        result.completed = true;
        return;
      }
      next();
    });
  };
  next();
  const sim::TimePoint deadline = emulator.loop().now() + sim::seconds(3600);
  while (!result.completed && emulator.loop().now() < deadline &&
         emulator.loop().step()) {
  }
  result.retransmissions = client.stats().retransmissions;
  return result;
}

}  // namespace

int main() {
  std::printf("Collecting one Wean trace (office -> elevator -> classroom)"
              "...\n");
  scenarios::LiveTestbed bed(scenarios::wean(), /*seed=*/4242);
  core::Distiller distiller;
  const core::ReplayTrace full = distiller.distill(bed.collect_trace());

  // Traces are data: slice out the 50 s window around the worst segment
  // (the elevator ride) so every run exercises the triggering conditions
  // from the first RPC.
  std::size_t worst_idx = 0;
  for (std::size_t i = 0; i < full.size(); ++i) {
    if (full.tuples()[i].loss > full.tuples()[worst_idx].loss) worst_idx = i;
  }
  const std::size_t begin = worst_idx > 2 ? worst_idx - 2 : 0;
  const std::size_t end = std::min(full.size(), worst_idx + 48);
  core::ReplayTrace trace(std::vector<core::QualityTuple>(
      full.tuples().begin() + static_cast<std::ptrdiff_t>(begin),
      full.tuples().begin() + static_cast<std::ptrdiff_t>(end)));
  std::printf("sliced tuples %zu..%zu around the elevator; worst loss %.0f%%,"
              " worst latency %.0f ms\n\n",
              begin, end, full.tuples()[worst_idx].loss * 100.0, [&] {
                double worst = 0;
                for (const auto& t : trace.tuples())
                  worst = std::max(worst, t.latency_s * 1e3);
                return worst;
              }());

  std::printf("%-28s %12s %16s %10s\n", "client retransmission policy",
              "elapsed(s)", "retransmissions", "status");
  for (int run = 0; run < 3; ++run) {
    const RunResult buggy = run_workload(trace, 1.0, 1000);  // same seed: deterministic
    std::printf("%-28s %12.1f %16llu %10s   (run %d: identical every time)\n",
                "no backoff (the bug)", buggy.elapsed_s,
                static_cast<unsigned long long>(buggy.retransmissions),
                buggy.completed ? "done" : "WEDGED", run);
  }
  const RunResult fixed = run_workload(trace, 2.0, 1000);
  std::printf("%-28s %12.1f %16llu %10s\n", "exponential backoff (fix)",
              fixed.elapsed_s,
              static_cast<unsigned long long>(fixed.retransmissions),
              fixed.completed ? "done" : "WEDGED");

  std::printf("\nThe same replay trace and seed give bit-identical runs, so\n"
              "the failure is reproducible on demand and the fix is verified\n"
              "against the exact network conditions that exposed the bug.\n");
  return 0;
}
