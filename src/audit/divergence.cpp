#include "audit/divergence.hpp"

#include <algorithm>
#include <cmath>

#include "sim/tick_clock.hpp"

namespace tracemod::audit {

namespace {

/// Duration-weighted reference averages over the offset range [lo, hi]
/// (seconds from the reference trace's start).  Returns false when the
/// range does not intersect the trace.
bool reference_window(const core::ReplayTrace& ref, double lo_s, double hi_s,
                      double* f, double* vb, double* loss) {
  double offset = 0.0, weight = 0.0;
  double f_sum = 0.0, vb_sum = 0.0, loss_sum = 0.0;
  for (const core::QualityTuple& t : ref.tuples()) {
    const double d = sim::to_seconds(t.d);
    const double begin = offset, end = offset + d;
    offset = end;
    const double overlap = std::min(end, hi_s) - std::max(begin, lo_s);
    if (overlap <= 0.0) continue;
    f_sum += overlap * t.latency_s;
    vb_sum += overlap * t.per_byte_bottleneck;
    loss_sum += overlap * t.loss;
    weight += overlap;
  }
  if (weight <= 0.0) return false;
  *f = f_sum / weight;
  *vb = vb_sum / weight;
  *loss = loss_sum / weight;
  return true;
}

/// Deterministic quantization-noise offset for the i-th of n expected RTT
/// samples.  One quantized leg adds an error uniform on (-tick/2, tick/2];
/// two independent legs sum to a triangular distribution on (-tick, tick).
/// A stratified comb over the inverse CDF reproduces the marginal shape
/// without drawing randomness, so the expected sample set is a pure
/// function of its inputs.
double quantization_offset(std::size_t i, std::size_t n, int legs,
                           double tick_s) {
  if (legs <= 0 || tick_s <= 0.0 || n == 0) return 0.0;
  const double p = (static_cast<double>(i) + 0.5) / static_cast<double>(n);
  if (legs == 1) return tick_s * (p - 0.5);
  // Triangular on [-tick, tick]: piecewise-quadratic CDF, inverted.
  if (p < 0.5) return tick_s * (std::sqrt(2.0 * p) - 1.0);
  return tick_s * (1.0 - std::sqrt(2.0 * (1.0 - p)));
}

/// Median of an unsorted sample (mean of the middle pair when even).
/// Returns 0 for an empty sample.
double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    m = (m + *std::max_element(
                 v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid))) /
        2.0;
  }
  return m;
}

}  // namespace

double ks_distance(std::vector<double> a, std::vector<double> b) {
  if (a.empty() || b.empty()) return 0.0;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());
  double d = 0.0;
  std::size_t ia = 0, ib = 0;
  while (ia < a.size() && ib < b.size()) {
    // Step past every copy of the smaller value in BOTH samples before
    // comparing: the empirical CDFs only both settle after a tied value
    // has been consumed from each side.
    const double x = std::min(a[ia], b[ib]);
    while (ia < a.size() && a[ia] == x) ++ia;
    while (ib < b.size() && b[ib] == x) ++ib;
    d = std::max(d, std::abs(static_cast<double>(ia) / na -
                             static_cast<double>(ib) / nb));
  }
  return d;
}

DivergenceScores score_divergence(const core::ReplayTrace& reference,
                                  const trace::CollectedTrace& second_order,
                                  const Baseline& baseline,
                                  const DivergenceConfig& cfg) {
  DivergenceScores out;
  core::Distiller distiller(cfg.distill);
  out.recovered = distiller.distill(second_order);
  out.distill_stats = distiller.stats();
  if (second_order.records.empty() || out.recovered.empty()) return out;

  const double ref_total = sim::to_seconds(reference.total_duration());
  const double window_s = sim::to_seconds(cfg.distill.window);
  const sim::TimePoint t0 =
      trace::record_time(second_order.records.front());
  const sim::TickClock tick(cfg.tick);
  const double tick_s = sim::to_seconds(cfg.tick);

  // The probe's two packet sizes, distiller-style: smallest sent size is
  // stage 1, largest is stage 2.
  const auto sent = second_order.echoes_sent();
  if (sent.empty()) return out;
  double s_small = 1e18, s_large = 0.0;
  for (const trace::PacketRecord& e : sent) {
    s_small = std::min(s_small, static_cast<double>(e.ip_bytes));
    s_large = std::max(s_large, static_cast<double>(e.ip_bytes));
  }

  // Timestamps collection could not cover: kernel-buffer overruns.
  std::vector<sim::TimePoint> lost_at;
  for (const trace::TraceRecord& r : second_order.records) {
    if (std::holds_alternative<trace::LostRecords>(r)) {
      lost_at.push_back(trace::record_time(r));
    }
  }
  const std::vector<core::Distiller::Estimate>& estimates =
      distiller.estimates();

  // --- per-window scores ---------------------------------------------------
  // Recovered tuple i covers the distiller's i-th step window; recompute the
  // same window span to decide provenance (scored vs. unauditable).
  for (std::size_t i = 0; i < out.recovered.size(); ++i) {
    const core::QualityTuple& rec = out.recovered.tuples()[i];
    const sim::TimePoint mid =
        t0 + cfg.distill.step * static_cast<std::int64_t>(i) +
        cfg.distill.step / 2;
    const sim::TimePoint w_begin = mid - cfg.distill.window / 2;
    const sim::TimePoint w_end = mid + cfg.distill.window / 2;
    const double mid_offset = sim::to_seconds(mid + cfg.align);

    // Only windows wholly inside the reference trace are comparable; the
    // settle tail runs against pass-through modulation by design.
    if (mid_offset - window_s / 2 < 0.0 ||
        mid_offset + window_s / 2 > ref_total) {
      continue;
    }

    WindowScore w;
    w.mid = mid;
    const bool lost =
        std::any_of(lost_at.begin(), lost_at.end(),
                    [&](sim::TimePoint at) {
                      return at >= w_begin && at < w_end;
                    });
    const bool observed =
        std::any_of(estimates.begin(), estimates.end(),
                    [&](const core::Distiller::Estimate& e) {
                      return e.at >= w_begin && e.at < w_end;
                    });
    if (lost) {
      w.state = WindowState::kLostRecords;
    } else if (!observed) {
      w.state = WindowState::kNoEstimates;
    }
    if (!w.auditable()) {
      ++out.unauditable;
      out.windows.push_back(w);
      continue;
    }

    if (!reference_window(reference, mid_offset - window_s / 2,
                          mid_offset + window_s / 2, &w.ref_latency_s,
                          &w.ref_vb, &w.ref_loss)) {
      continue;  // degenerate reference (zero-duration tuples)
    }
    w.rec_latency_s = std::max(0.0, rec.latency_s - baseline.latency_s);
    // Recovered Vb measures the emulated bottleneck directly: the
    // modulation queue spreads the back-to-back stage-2 pair, so the
    // physical Ethernet never requeues them and contributes nothing --
    // no baseline subtraction.  The judge is exp_vb: the spacing a
    // faithful modulator would produce, quantized to the contract tick
    // and floored by the physical requeue spacing (the spacing when the
    // quantized modulation delay collapses to zero).
    w.rec_vb = rec.per_byte_bottleneck;
    const double spacing = s_large * w.ref_vb;
    const double q_spacing =
        tick_s > 0.0 ? std::floor(spacing / tick_s + 0.5) * tick_s : spacing;
    w.exp_vb =
        std::max(q_spacing, s_large * baseline.per_byte_bottleneck) / s_large;
    w.rec_loss = rec.loss;

    w.latency_rel_err = std::abs(w.rec_latency_s - w.ref_latency_s) /
                        std::max(w.ref_latency_s, cfg.latency_floor_s);
    w.bandwidth_rel_err = std::abs(w.rec_vb - w.exp_vb) /
                          std::max(w.exp_vb, cfg.bottleneck_floor);
    w.loss_delta = std::abs(w.rec_loss - w.ref_loss);
    w.within_tolerance = w.latency_rel_err <= cfg.latency_tolerance &&
                         w.bandwidth_rel_err <= cfg.bandwidth_tolerance &&
                         w.loss_delta <= cfg.loss_tolerance;

    ++out.auditable;
    if (w.within_tolerance) ++out.within_tolerance;
    out.windows.push_back(w);
  }

  if (out.auditable > 0) {
    std::vector<double> lat, bw, loss;
    lat.reserve(out.auditable);
    bw.reserve(out.auditable);
    loss.reserve(out.auditable);
    for (const WindowScore& w : out.windows) {
      if (!w.auditable()) continue;
      lat.push_back(w.latency_rel_err);
      bw.push_back(w.bandwidth_rel_err);
      loss.push_back(w.loss_delta);
    }
    out.latency_rel_err = median(std::move(lat));
    out.bandwidth_rel_err = median(std::move(bw));
    out.loss_delta = median(std::move(loss));
    out.within_tolerance_fraction = static_cast<double>(out.within_tolerance) /
                                    static_cast<double>(out.auditable);
  }
  if (!out.windows.empty()) {
    out.auditable_fraction = static_cast<double>(out.auditable) /
                             static_cast<double>(out.windows.size());
  }

  // --- KS distance on stage-1 round-trips ----------------------------------
  // Observed: every stage-1 ECHOREPLY (the smallest probe size).  Expected:
  // for the same probes, the reference model's RTT -- baseline testbed cost
  // plus one modulated leg each way, where a leg under half a tick sends
  // immediately (contributing nothing) and a scheduled leg carries the
  // quantization comb.
  std::vector<double> observed, expected;
  std::vector<std::pair<double, int>> clean;  // (clean RTT, quantized legs)
  for (const trace::TraceRecord& r : second_order.records) {
    const auto* p = std::get_if<trace::PacketRecord>(&r);
    if (p == nullptr || p->icmp_kind != trace::IcmpKind::kEchoReply) continue;
    if (static_cast<double>(p->ip_bytes) != s_small) continue;
    const double offset = sim::to_seconds(p->echo_origin + cfg.align);
    if (offset < 0.0 || offset >= ref_total) continue;
    const core::QualityTuple& q =
        reference.at_offset(sim::from_seconds(offset));
    const double s = static_cast<double>(p->ip_bytes);
    const double out_leg =
        q.latency_s + s * (q.per_byte_bottleneck + q.per_byte_residual);
    const double in_leg =
        q.latency_s +
        s * (std::max(0.0, q.per_byte_bottleneck + cfg.inbound_extra_vb) +
             q.per_byte_residual);
    double rtt = baseline.rtt_s(s);
    int legs = 0;
    for (const double leg : {out_leg, in_leg}) {
      if (tick.below_threshold(sim::from_seconds(leg))) continue;
      rtt += leg;
      ++legs;
    }
    observed.push_back(sim::to_seconds(p->rtt()));
    clean.emplace_back(rtt, legs);
  }
  expected.reserve(clean.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    expected.push_back(clean[i].first + quantization_offset(i, clean.size(),
                                                            clean[i].second,
                                                            tick_s));
  }
  out.rtt_samples = observed.size();
  out.ks_rtt = ks_distance(std::move(observed), std::move(expected));
  return out;
}

}  // namespace tracemod::audit
