// Divergence scoring: recovered vs. reference parameter tracks.
//
// The second half of the closed loop: re-distill a second-order trace
// (second_order.hpp) through the ordinary core::Distiller, time-align the
// recovered <F, Vb, L> track against the reference replay trace, and score
// the divergence per window and in aggregate:
//   - per-window relative error on latency (F) and bottleneck per-byte
//     cost (Vb), absolute delta on the loss rate (L), each against the
//     duration-weighted reference average over the same window;
//   - the fraction of auditable windows whose errors all land inside the
//     configured tolerances;
//   - a two-sample Kolmogorov-Smirnov distance between the observed
//     stage-1 probe round-trips and the round-trips the reference model
//     predicts for the same probes (including the tick-quantization noise
//     the modulation layer is *supposed* to add -- Section 3.3).
//
// Windows that collection could not observe -- a LostRecords marker inside
// the window, or no usable probe group at all -- are excluded from every
// aggregate and counted as unauditable: degraded collection must never be
// reported as modulation divergence.
#pragma once

#include <cstdint>
#include <vector>

#include "core/distiller.hpp"
#include "trace/records.hpp"

namespace tracemod::audit {

/// The physical testbed's own contribution to recovered parameters,
/// measured by running the identical instruments over the un-modulated
/// testbed (an empty reference trace) and distilling: Ethernet
/// serialization and propagation plus stack cost.  Subtracted from the
/// recovered track before comparison, mirroring the paper's delay
/// compensation philosophy (Section 3.3).
struct Baseline {
  double latency_s = 0.0;            ///< F0
  double per_byte_bottleneck = 0.0;  ///< Vb0, s/byte
  double per_byte_residual = 0.0;    ///< Vr0, s/byte

  /// Round-trip the bare testbed adds to a probe of the given IP size.
  double rtt_s(double bytes) const {
    return 2.0 * (latency_s +
                  bytes * (per_byte_bottleneck + per_byte_residual));
  }
};

struct DivergenceConfig {
  /// Re-distillation window/step (defaults match the collection pipeline).
  core::DistillConfig distill{};
  /// The CONTRACT tick quantum -- the scheduling granularity the emulation
  /// is supposed to run at (the paper's 10 ms kernel timer), deliberately
  /// NOT copied from the audited emulator's config.  The expected-RTT and
  /// expected-bandwidth models quantize to this grid: a faithful modulator
  /// cannot beat half-a-tick, so that much error is excused -- while an
  /// emulator running a coarser quantum than the contract shows up as
  /// genuine divergence (the doubled-tick breach the CI gate pins).
  sim::Duration tick = sim::milliseconds(10);
  /// Endpoint-placement term for inbound probes: the modulation layer
  /// charges inbound packets max(0, Vb + physical_vb - compensation)
  /// (core/modulation.hpp); this is physical_vb - compensation.
  double inbound_extra_vb = 0.0;
  /// Shift applied when mapping audit-world time to reference-trace
  /// offsets (the replay daemon starts at t = 0, so 0 is usually right).
  sim::Duration align{};
  /// Relative-error denominators never drop below these floors, so a
  /// near-zero reference value cannot manufacture infinite error.
  double latency_floor_s = 0.5e-3;
  double bottleneck_floor = 2e-7;  ///< s/byte (~40 Mb/s)
  /// Per-window tolerances for the within-tolerance fraction (see the
  /// FidelityThresholds comment in auditor.hpp for the calibration).
  double latency_tolerance = 0.60;
  double bandwidth_tolerance = 0.25;
  double loss_tolerance = 0.05;
};

enum class WindowState : std::uint8_t {
  kScored = 0,       ///< auditable, scores valid
  kLostRecords = 1,  ///< kernel-buffer overrun inside the window
  kNoEstimates = 2,  ///< no usable probe group (distiller filled it)
};

struct WindowScore {
  sim::TimePoint mid{};  ///< window midpoint, audit-world virtual time
  WindowState state = WindowState::kScored;
  bool within_tolerance = false;
  double latency_rel_err = 0.0;
  double bandwidth_rel_err = 0.0;
  double loss_delta = 0.0;
  // The compared values.  rec_latency_s has the baseline's F0 subtracted.
  // exp_vb is the bottleneck cost a *faithful* modulator would recover for
  // this window: the stage-2 release spacing s2*ref_vb quantized to the
  // contract tick, floored by the physical Ethernet's own requeue spacing
  // -- recovered Vb is judged against that, not against raw ref_vb, so the
  // unavoidable tick-quantization of back-to-back releases is not scored
  // as divergence (while a coarser-than-contract quantum is).
  double ref_latency_s = 0.0, rec_latency_s = 0.0;
  double ref_vb = 0.0, exp_vb = 0.0, rec_vb = 0.0;
  double ref_loss = 0.0, rec_loss = 0.0;

  bool auditable() const { return state == WindowState::kScored; }
};

struct DivergenceScores {
  /// One entry per re-distilled window whose span lies inside the
  /// reference trace; the settle tail past the trace end is not scored.
  std::vector<WindowScore> windows;
  std::size_t auditable = 0;
  std::size_t unauditable = 0;
  std::size_t within_tolerance = 0;
  /// Aggregates over auditable windows only.  Medians, not means: a deep
  /// coverage fade makes the probe group's own serialization through the
  /// emulated bottleneck self-interfere (recovered F inflates by tens of
  /// ms for a handful of windows), and that instrument artifact must not
  /// dominate the verdict the way it would a mean.  A real contract
  /// violation (e.g. a doubled tick) shifts *every* window, so the median
  /// separates the two cleanly.
  double latency_rel_err = 0.0;
  double bandwidth_rel_err = 0.0;
  double loss_delta = 0.0;
  double within_tolerance_fraction = 0.0;  ///< of auditable windows
  double auditable_fraction = 0.0;         ///< auditable / windows.size()
  /// Two-sample KS distance, observed vs. model-expected stage-1 RTTs.
  double ks_rtt = 0.0;
  std::size_t rtt_samples = 0;
  /// The re-distilled replay trace and its distillation stats.
  core::ReplayTrace recovered;
  core::Distiller::Stats distill_stats;
};

/// Scores one second-order trace against its reference.
DivergenceScores score_divergence(const core::ReplayTrace& reference,
                                  const trace::CollectedTrace& second_order,
                                  const Baseline& baseline,
                                  const DivergenceConfig& cfg = {});

/// Two-sample Kolmogorov-Smirnov distance: sup |F_a - F_b| over the
/// empirical CDFs.  Returns 0 when either sample is empty.
double ks_distance(std::vector<double> a, std::vector<double> b);

}  // namespace tracemod::audit
