// Second-order collection: tracing the emulation itself.
//
// The paper validates modulation by closing its own loop (Section 5):
// collect a trace *of the modulated run*, re-distill it, and compare the
// recovered parameter tracks against the replay trace that drove the
// modulation.  This module provides the collection half of that loop: it
// builds a modulated testbed over a reference replay trace, attaches the
// ordinary trace::TraceTap above the modulation layer on the mobile host
// (IP -> tap -> modulation -> Ethernet), runs the paper's ping workload
// through it, and returns the second-order trace.
//
// The audit world is a dedicated SimContext: attaching the tap never
// touches any benchmark trial's world, so enabling audits cannot perturb a
// single virtual-time result.
#pragma once

#include "core/emulator.hpp"
#include "trace/ping.hpp"
#include "trace/trace_tap.hpp"

namespace tracemod::audit {

struct SecondOrderConfig {
  /// The modulated world to audit: seed, tick quantum, compensation,
  /// Ethernet, and (for fault drills) modulation-daemon faults.
  core::EmulatorConfig emulator{};
  /// The audit probe.  The sizes differ from the collection default on
  /// purpose: stage 1 must be large enough that its one-way modulated
  /// delay stays above the half-tick immediate-send threshold (Section
  /// 3.3) for WaveLAN-class traces, or the recovered latency track would
  /// be biased low by the scheduling-granularity artifact rather than by
  /// any modulation defect.  The period is much shorter than collection's
  /// 1 s: each re-distillation window then averages ~25 probe groups, which
  /// beats down the +-half-tick release-quantization noise that eq. (5)
  /// amplifies by s1/(2*(s2-s1)).  197 ms is coprime with the 10 ms tick
  /// grid, so probe phases sweep the grid instead of locking to it.
  trace::PingConfig ping{600, 1400, sim::milliseconds(197), 42};
  trace::TraceTapConfig tap{};
  /// Explicit run length; zero means the reference trace's total duration
  /// plus `settle`.
  sim::Duration run_for{};
  sim::Duration settle = sim::seconds(2);
  /// < 1 shrinks the tap's kernel buffer to this fraction before the run
  /// (trace::FaultInjector::pressure_kernel_buffer), so overruns surface
  /// as LostRecords windows -- the degraded-collection drill.
  double buffer_pressure = 1.0;
};

struct SecondOrderResult {
  trace::CollectedTrace trace;
  trace::PingWorkload::Stats ping;
  core::ModulationLayer::Stats modulation;
  sim::Duration ran_for{};
  /// Records rejected by injected kernel-buffer pressure.
  std::uint64_t buffer_drops = 0;
};

/// Runs one second-order collection over the reference trace.  Pass an
/// empty reference to measure the un-modulated testbed with the identical
/// instruments (the baseline-calibration run: modulation is transparent
/// without tuples, so the recovered parameters are the physical testbed's
/// own contribution).
SecondOrderResult collect_second_order(const core::ReplayTrace& reference,
                                       const SecondOrderConfig& cfg = {});

}  // namespace tracemod::audit
