// The fidelity auditor: verdicts over the closed collection loop.
//
// Ties the loop together: measure the physical testbed's baseline with the
// same instruments (un-modulated run), run a second-order collection over
// the reference trace (second_order.hpp), score the divergence
// (divergence.hpp), and judge the aggregates against thresholds derived
// from the paper's Section 5 accuracy discussion.  The result is a
// FidelityReport: a verdict (pass / breach / unauditable), the per-window
// and aggregate scores, and every breached threshold spelled out.
//
// Reports surface through three sinks: a human-readable section
// (write_fidelity_report), a machine-readable JSON verdict
// (write_fidelity_json, consumed by CI's audit gate), and the telemetry
// pipeline -- record_metrics() feeds a MetricsRegistry under the audit.*
// names in sim/metric_names.hpp, and telemetry_snapshot() packages the
// divergence time-series for the Perfetto / Prometheus exporters.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "audit/divergence.hpp"
#include "audit/second_order.hpp"
#include "sim/telemetry.hpp"

namespace tracemod::core {
struct WindowSummary;
}

namespace tracemod::audit {

/// Aggregate ceilings.  The calibration anchors are the paper's Section 5
/// evaluation (end-to-end results within ~5% of live) and the measured
/// behaviour of this audit instrument on the shipped Porter pipeline: a
/// faithful 10 ms-tick emulation re-distills to ~0.39 median latency
/// relative error (the +-half-tick release noise is amplified through
/// eq. (5) by s1/(2*(s2-s1)) and the distiller's media-access correction
/// folds only positive deviations into F), ~0 median bandwidth error
/// against the tick-quantized expectation, and ~0.34 KS distance -- while
/// an emulator running a doubled tick measures 2.0 / 1.0 / 0.76.  The
/// defaults sit between those bands: a faithful run passes with margin,
/// a contract-tick violation breaches on every axis.
struct FidelityThresholds {
  double max_latency_rel_err = 0.60;
  double max_bandwidth_rel_err = 0.25;
  double max_loss_delta = 0.05;
  double max_ks_rtt = 0.50;
  double min_within_tolerance = 0.60;
  /// Below this auditable fraction the run is judged unauditable rather
  /// than divergent (degraded collection is not a modulation defect).
  double min_auditable = 0.50;
};

enum class Verdict : std::uint8_t { kPass = 0, kBreach = 1, kUnauditable = 2 };
const char* to_string(Verdict v);

/// Verdict for one streaming-distillation corpus window
/// (core/stream_distiller.hpp).  Salvaged damage and budget shedding are
/// collection degradation, not modulation defects, so a damaged or shed
/// window is kUnauditable -- never kBreach -- and a clean window passes.
Verdict window_verdict(const core::WindowSummary& window);

/// The opt-in face experiments see (scenarios::ExperimentConfig::audit).
struct AuditOptions {
  bool enabled = false;
  FidelityThresholds thresholds{};
};

struct AuditConfig {
  SecondOrderConfig second_order{};
  DivergenceConfig divergence{};
  FidelityThresholds thresholds{};
  /// Length of the baseline-calibration run (empty reference trace).
  sim::Duration baseline_run = sim::seconds(30);
};

struct FidelityReport {
  std::string label;
  Verdict verdict = Verdict::kUnauditable;
  std::vector<std::string> breaches;  ///< one line per breached threshold
  FidelityThresholds thresholds{};
  Baseline baseline{};
  DivergenceScores scores;
  trace::PingWorkload::Stats ping{};
  std::uint64_t lost_records = 0;  ///< records lost to buffer overruns
  std::uint64_t buffer_drops = 0;  ///< injected-pressure rejections

  bool passed() const { return verdict == Verdict::kPass; }
};

/// Calibration: runs the identical probe/tap/distill instruments over the
/// un-modulated testbed and returns the physical contribution to recovered
/// parameters.  Deterministic for a given config.
Baseline measure_baseline(const SecondOrderConfig& cfg,
                          sim::Duration run_for = sim::seconds(30));

/// Runs the full closed loop over one reference trace.
FidelityReport audit_trace(const core::ReplayTrace& reference,
                           const AuditConfig& cfg = {},
                           const std::string& label = "");

/// Feeds the report's counters and divergence series into a metrics
/// registry under the audit.* names (sim/metric_names.hpp).
void record_metrics(const FidelityReport& report,
                    sim::MetricsRegistry& metrics);

/// Packages the report as a telemetry snapshot -- audit.* counters and
/// divergence time-series plus an "audit/divergence" counter track -- so
/// the standard Perfetto / Prometheus / report exporters carry fidelity
/// data alongside trial telemetry.
sim::TelemetrySnapshot telemetry_snapshot(const FidelityReport& report);

/// Human-readable verdict section.
void write_fidelity_report(std::ostream& out, const FidelityReport& report);

/// Machine-readable verdict (schema "tracemod-fidelity-v1").
void write_fidelity_json(std::ostream& out, const FidelityReport& report);

}  // namespace tracemod::audit
