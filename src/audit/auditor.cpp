#include "audit/auditor.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>

#include "core/stream_distiller.hpp"
#include "sim/metric_names.hpp"
#include "sim/sim_context.hpp"
#include "version.hpp"

namespace tracemod::audit {

namespace {

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

std::string escape(const std::string& s) {
  std::string out;
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
    } else {
      out += c;
    }
  }
  return out;
}

void check(std::vector<std::string>& breaches, const char* what, double value,
           double limit, bool at_least = false) {
  const bool bad = at_least ? value < limit : value > limit;
  if (!bad) return;
  breaches.push_back(std::string(what) + " " + fmt("%.4f", value) +
                     (at_least ? " < " : " > ") + fmt("%.4f", limit));
}

}  // namespace

const char* to_string(Verdict v) {
  switch (v) {
    case Verdict::kPass: return "pass";
    case Verdict::kBreach: return "breach";
    case Verdict::kUnauditable: return "unauditable";
  }
  return "?";
}

Verdict window_verdict(const core::WindowSummary& window) {
  if (window.damaged || window.shed) return Verdict::kUnauditable;
  return Verdict::kPass;
}

Baseline measure_baseline(const SecondOrderConfig& cfg,
                          sim::Duration run_for) {
  // The calibration run must be clean: no injected pressure or daemon
  // faults, and a sibling seed so it never shares a world with the audited
  // run.
  SecondOrderConfig clean = cfg;
  clean.buffer_pressure = 1.0;
  clean.emulator.daemon_faults = {};
  clean.emulator.seed = cfg.emulator.seed + 1;
  clean.run_for = run_for;
  const SecondOrderResult result =
      collect_second_order(core::ReplayTrace{}, clean);

  // The full eq. (5) pipeline breaks down on the bare Ethernet: the two
  // back-to-back stage-2 probes busy the shared medium exactly when their
  // own replies return, inflating t2 by a full serialization and driving
  // every group's F estimate negative (past the distiller's structural
  // clamp, since the true F is ~zero here).  So estimate directly from the
  // clean observables instead: t1 (the stage-1 probe flies alone, its RTT
  // is undisturbed) and t3 - t2 (the Ethernet requeues the back-to-back
  // pair, so the gap is the physical per-byte serialization cost).
  const auto sent = result.trace.echoes_sent();
  const auto replies = result.trace.echo_replies();
  std::map<std::uint16_t, const trace::PacketRecord*> reply_by_seq;
  for (const trace::PacketRecord& r : replies) reply_by_seq[r.icmp_seq] = &r;
  double s_small = 1e18, s_large = 0.0;
  for (const trace::PacketRecord& e : sent) {
    s_small = std::min(s_small, static_cast<double>(e.ip_bytes));
    s_large = std::max(s_large, static_cast<double>(e.ip_bytes));
  }
  double t1_sum = 0.0, gap_sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i + 2 < sent.size(); ++i) {
    if (static_cast<double>(sent[i].ip_bytes) != s_small) continue;
    if (static_cast<double>(sent[i + 1].ip_bytes) != s_large) continue;
    if (static_cast<double>(sent[i + 2].ip_bytes) != s_large) continue;
    const auto r1 = reply_by_seq.find(sent[i].icmp_seq);
    const auto r2 = reply_by_seq.find(sent[i + 1].icmp_seq);
    const auto r3 = reply_by_seq.find(sent[i + 2].icmp_seq);
    if (r1 == reply_by_seq.end() || r2 == reply_by_seq.end() ||
        r3 == reply_by_seq.end()) {
      continue;
    }
    t1_sum += sim::to_seconds(r1->second->rtt());
    gap_sum += sim::to_seconds(r3->second->rtt() - r2->second->rtt());
    ++n;
  }
  Baseline b;
  if (n == 0 || s_small >= s_large) return b;
  b.per_byte_bottleneck = std::max(0.0, gap_sum / static_cast<double>(n)) /
                          s_large;
  b.latency_s = std::max(
      0.0, t1_sum / (2.0 * static_cast<double>(n)) -
               s_small * b.per_byte_bottleneck);
  b.per_byte_residual = 0.0;
  return b;
}

FidelityReport audit_trace(const core::ReplayTrace& reference,
                           const AuditConfig& cfg, const std::string& label) {
  FidelityReport report;
  report.label = label;
  report.thresholds = cfg.thresholds;
  report.baseline = measure_baseline(cfg.second_order, cfg.baseline_run);

  const SecondOrderResult second =
      collect_second_order(reference, cfg.second_order);
  report.ping = second.ping;
  report.buffer_drops = second.buffer_drops;
  report.lost_records = second.trace.total_lost_records();

  // cfg.divergence.tick is deliberately NOT synced to the emulator's tick:
  // it is the contract granularity, and an emulator running coarser than
  // the contract must read as divergence, not be excused by the model.
  DivergenceConfig div = cfg.divergence;
  // The endpoint-placement term the modulation layer applies to inbound
  // packets, reconstructed exactly as core::Emulator wires it.
  div.inbound_extra_vb =
      8.0 / cfg.second_order.emulator.ethernet.bandwidth_bps -
      cfg.second_order.emulator.modulation.inbound_vb_compensation;
  report.scores = score_divergence(reference, second.trace, report.baseline,
                                   div);

  const DivergenceScores& s = report.scores;
  const FidelityThresholds& th = cfg.thresholds;
  if (s.windows.empty() || s.auditable == 0 ||
      s.auditable_fraction < th.min_auditable) {
    report.verdict = Verdict::kUnauditable;
    report.breaches.push_back(
        "auditable windows " + std::to_string(s.auditable) + "/" +
        std::to_string(s.windows.size()) + " below the " +
        fmt("%.2f", th.min_auditable) +
        " floor (degraded collection, not divergence)");
    return report;
  }
  check(report.breaches, "latency rel err", s.latency_rel_err,
        th.max_latency_rel_err);
  check(report.breaches, "bandwidth rel err", s.bandwidth_rel_err,
        th.max_bandwidth_rel_err);
  check(report.breaches, "loss delta", s.loss_delta, th.max_loss_delta);
  check(report.breaches, "KS(rtt)", s.ks_rtt, th.max_ks_rtt);
  check(report.breaches, "within-tolerance fraction",
        s.within_tolerance_fraction, th.min_within_tolerance,
        /*at_least=*/true);
  report.verdict =
      report.breaches.empty() ? Verdict::kPass : Verdict::kBreach;
  return report;
}

void record_metrics(const FidelityReport& report,
                    sim::MetricsRegistry& metrics) {
  namespace metric = sim::metric;
  metrics.counter(metric::kAuditWindowsTotal) += report.scores.windows.size();
  metrics.counter(metric::kAuditWindowsUnauditable) +=
      report.scores.unauditable;
  metrics.counter(metric::kAuditWindowsWithinTolerance) +=
      report.scores.within_tolerance;
  sim::TimeSeries& lat = metrics.series(metric::kAuditLatencyRelErr);
  sim::TimeSeries& bw = metrics.series(metric::kAuditBandwidthRelErr);
  sim::TimeSeries& loss = metrics.series(metric::kAuditLossDelta);
  for (const WindowScore& w : report.scores.windows) {
    if (!w.auditable()) continue;
    lat.sample(w.mid, w.latency_rel_err);
    bw.sample(w.mid, w.bandwidth_rel_err);
    loss.sample(w.mid, w.loss_delta);
  }
}

sim::TelemetrySnapshot telemetry_snapshot(const FidelityReport& report) {
  namespace metric = sim::metric;
  sim::MetricsRegistry registry;
  record_metrics(report, registry);
  sim::TelemetrySnapshot snap;
  snap.counters = registry.snapshot();
  for (const auto& [name, series] : registry.series_channels()) {
    snap.series.emplace_back(name, series);
  }
  // A counter track so the divergence series chart in ui.perfetto.dev.
  snap.tracks.push_back(sim::Track{"audit", "divergence"});
  const sim::TrackId track = 1;
  for (const WindowScore& w : report.scores.windows) {
    if (!w.auditable()) continue;
    snap.events.push_back({sim::TraceEvent::Phase::kCounter, track,
                           metric::kAuditLatencyRelErr, 0, w.mid,
                           w.latency_rel_err});
    snap.events.push_back({sim::TraceEvent::Phase::kCounter, track,
                           metric::kAuditBandwidthRelErr, 0, w.mid,
                           w.bandwidth_rel_err});
    snap.events.push_back({sim::TraceEvent::Phase::kCounter, track,
                           metric::kAuditLossDelta, 0, w.mid, w.loss_delta});
  }
  return snap;
}

void write_fidelity_report(std::ostream& out, const FidelityReport& report) {
  const DivergenceScores& s = report.scores;
  out << "== fidelity audit";
  if (!report.label.empty()) out << ": " << report.label;
  out << " ==\n";
  out << "verdict: " << to_string(report.verdict) << "\n";
  out << "baseline (physical testbed): F0=" << fmt("%.3f", report.baseline.latency_s * 1e3)
      << "ms Vb0=" << fmt("%.3f", report.baseline.per_byte_bottleneck * 1e6)
      << "us/B Vr0=" << fmt("%.3f", report.baseline.per_byte_residual * 1e6)
      << "us/B\n";
  out << "windows: " << s.auditable << " auditable, " << s.unauditable
      << " unauditable (" << report.lost_records
      << " records lost to overruns), "
      << fmt("%.1f", s.within_tolerance_fraction * 100.0)
      << "% within tolerance\n";
  out << "aggregate divergence (recovered vs reference):\n";
  out << "  latency rel err   " << fmt("%.4f", s.latency_rel_err)
      << "  (max " << fmt("%.4f", report.thresholds.max_latency_rel_err)
      << ")\n";
  out << "  bandwidth rel err " << fmt("%.4f", s.bandwidth_rel_err)
      << "  (max " << fmt("%.4f", report.thresholds.max_bandwidth_rel_err)
      << ")\n";
  out << "  loss delta        " << fmt("%.4f", s.loss_delta) << "  (max "
      << fmt("%.4f", report.thresholds.max_loss_delta) << ")\n";
  out << "  KS(rtt)           " << fmt("%.4f", s.ks_rtt) << "  (max "
      << fmt("%.4f", report.thresholds.max_ks_rtt) << ", n=" << s.rtt_samples
      << ")\n";
  for (const std::string& b : report.breaches) {
    out << "breach: " << b << "\n";
  }
}

void write_fidelity_json(std::ostream& out, const FidelityReport& report) {
  const DivergenceScores& s = report.scores;
  out << "{\n";
  out << "  \"schema\": \"tracemod-fidelity-v1\",\n";
  out << "  \"tool_version\": \"" << kToolVersion << "\",\n";
  out << "  \"label\": \"" << escape(report.label) << "\",\n";
  out << "  \"verdict\": \"" << to_string(report.verdict) << "\",\n";
  out << "  \"baseline\": {\"latency_s\": "
      << fmt("%.9g", report.baseline.latency_s)
      << ", \"vb_s_per_byte\": "
      << fmt("%.9g", report.baseline.per_byte_bottleneck)
      << ", \"vr_s_per_byte\": "
      << fmt("%.9g", report.baseline.per_byte_residual) << "},\n";
  out << "  \"aggregate\": {\"latency_rel_err\": "
      << fmt("%.6g", s.latency_rel_err)
      << ", \"bandwidth_rel_err\": " << fmt("%.6g", s.bandwidth_rel_err)
      << ", \"loss_delta\": " << fmt("%.6g", s.loss_delta)
      << ", \"ks_rtt\": " << fmt("%.6g", s.ks_rtt)
      << ", \"within_tolerance_fraction\": "
      << fmt("%.6g", s.within_tolerance_fraction)
      << ", \"auditable_fraction\": " << fmt("%.6g", s.auditable_fraction)
      << ", \"rtt_samples\": " << s.rtt_samples << "},\n";
  out << "  \"thresholds\": {\"max_latency_rel_err\": "
      << fmt("%.6g", report.thresholds.max_latency_rel_err)
      << ", \"max_bandwidth_rel_err\": "
      << fmt("%.6g", report.thresholds.max_bandwidth_rel_err)
      << ", \"max_loss_delta\": "
      << fmt("%.6g", report.thresholds.max_loss_delta)
      << ", \"max_ks_rtt\": " << fmt("%.6g", report.thresholds.max_ks_rtt)
      << ", \"min_within_tolerance\": "
      << fmt("%.6g", report.thresholds.min_within_tolerance)
      << ", \"min_auditable\": "
      << fmt("%.6g", report.thresholds.min_auditable) << "},\n";
  out << "  \"windows\": {\"total\": " << s.windows.size()
      << ", \"auditable\": " << s.auditable
      << ", \"unauditable\": " << s.unauditable
      << ", \"within_tolerance\": " << s.within_tolerance
      << ", \"lost_records\": " << report.lost_records << "},\n";
  out << "  \"series\": [\n";
  bool first = true;
  for (const WindowScore& w : s.windows) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\"t_s\": " << fmt("%.3f", sim::to_seconds(w.mid))
        << ", \"auditable\": " << (w.auditable() ? "true" : "false")
        << ", \"latency_rel_err\": " << fmt("%.6g", w.latency_rel_err)
        << ", \"bandwidth_rel_err\": " << fmt("%.6g", w.bandwidth_rel_err)
        << ", \"loss_delta\": " << fmt("%.6g", w.loss_delta) << "}";
  }
  out << "\n  ],\n";
  out << "  \"breaches\": [";
  for (std::size_t i = 0; i < report.breaches.size(); ++i) {
    if (i > 0) out << ", ";
    out << "\"" << escape(report.breaches[i]) << "\"";
  }
  out << "]\n";
  out << "}\n";
}

}  // namespace tracemod::audit
