#include "audit/second_order.hpp"

#include "sim/clock_model.hpp"
#include "sim/metric_names.hpp"
#include "trace/fault_injector.hpp"

namespace tracemod::audit {

SecondOrderResult collect_second_order(const core::ReplayTrace& reference,
                                       const SecondOrderConfig& cfg) {
  core::Emulator emulator(reference, cfg.emulator);
  sim::EventLoop& loop = emulator.loop();

  // The Emulator wrapped the mobile's interface 0 with the modulation
  // layer; wrapping again puts the tap between IP and modulation, so it
  // timestamps probes before they are delayed outbound and after they are
  // delayed inbound -- the tap observes the emulated network, exactly as
  // the paper's second-order collection observed the modulated kernel.
  sim::ClockModel clock;  // the audit host's clock (ideal)
  trace::TraceTap* tap = nullptr;
  emulator.mobile().node().wrap_interface(
      0, [&](std::unique_ptr<net::NetDevice> inner) {
        auto t = std::make_unique<trace::TraceTap>(std::move(inner), loop,
                                                   clock, nullptr, cfg.tap);
        tap = t.get();
        return t;
      });

  // Degraded-collection drill: squeeze the tap's kernel buffer up front so
  // overruns emit LostRecords markers during the run.  The injector's
  // stream derives from the audit seed, never the world's root rng.
  trace::FaultInjector pressure(
      sim::Rng(cfg.emulator.seed ^ 0xa0d17'b0f'fe2ULL),
      &emulator.context().metrics());
  if (cfg.buffer_pressure < 1.0) {
    pressure.pressure_kernel_buffer(tap->buffer(), cfg.buffer_pressure);
  }

  trace::CollectionDaemon collector(loop, *tap);
  trace::PingWorkload ping(emulator.mobile(), cfg.emulator.server_addr,
                           clock, cfg.ping);

  const sim::Duration run_for =
      cfg.run_for.count() > 0 ? cfg.run_for
                              : reference.total_duration() + cfg.settle;
  collector.start();
  ping.start();
  emulator.run_for(run_for);
  ping.stop();
  collector.stop();

  SecondOrderResult result;
  result.trace = collector.take_trace();
  result.ping = ping.stats();
  result.modulation = emulator.modulation().stats();
  result.ran_for = run_for;
  result.buffer_drops = emulator.context().metrics().value(
      sim::metric::kBufferPressureDrops);
  return result;
}

}  // namespace tracemod::audit
