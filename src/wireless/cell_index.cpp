#include "wireless/cell_index.hpp"

#include <algorithm>
#include <cmath>

#include "sim/assert.hpp"
#include "sim/perf/perf.hpp"

namespace tracemod::wireless {

double association_range_m(double tx_dbm, double ref_loss_db,
                           double path_exponent, double rx_floor_dbm) {
  // Invert tx - (ref_loss + 10 n log10(d)) = floor for d; clamp at the
  // 1 m reference distance the path-loss model bottoms out at.
  const double exponent = (tx_dbm - ref_loss_db - rx_floor_dbm) /
                          (10.0 * path_exponent);
  return std::max(1.0, std::pow(10.0, exponent));
}

CellIndex::CellKey CellIndex::key_of(std::int64_t ix, std::int64_t iy) const {
  // Pack two 32-bit coordinates; campus geometry is metres-scale, so the
  // truncation can never wrap in practice.
  return (static_cast<CellKey>(static_cast<std::uint32_t>(ix)) << 32) |
         static_cast<CellKey>(static_cast<std::uint32_t>(iy));
}

CellIndex::CellKey CellIndex::cell_of(Vec2 p) const {
  if (!sharded()) return 0;
  return key_of(static_cast<std::int64_t>(std::floor(p.x / cell_size_)),
                static_cast<std::int64_t>(std::floor(p.y / cell_size_)));
}

void CellIndex::insert(std::uint32_t id, Vec2 p) {
  TM_ASSERT(where_.find(id) == where_.end());
  const CellKey key = cell_of(p);
  cells_[key].entries.push_back(id);
  where_.emplace(id, key);
}

void CellIndex::update(std::uint32_t id, Vec2 p) {
  sim::perf::PerfScope perf_scope(sim::perf::Domain::kCellIndex,
                                  "cell.update");
  auto it = where_.find(id);
  TM_ASSERT(it != where_.end());
  const CellKey key = cell_of(p);
  if (key == it->second) return;
  std::vector<std::uint32_t>& old_bucket = cells_[it->second].entries;
  old_bucket.erase(std::find(old_bucket.begin(), old_bucket.end(), id));
  // Re-registration appends: within a cell, order is arrival order, which
  // is deterministic for a deterministic simulation.
  cells_[key].entries.push_back(id);
  it->second = key;
}

void CellIndex::cell_span(Vec2 p, double radius, std::int64_t* x0,
                          std::int64_t* x1, std::int64_t* y0,
                          std::int64_t* y1) const {
  *x0 = static_cast<std::int64_t>(std::floor((p.x - radius) / cell_size_));
  *x1 = static_cast<std::int64_t>(std::floor((p.x + radius) / cell_size_));
  *y0 = static_cast<std::int64_t>(std::floor((p.y - radius) / cell_size_));
  *y1 = static_cast<std::int64_t>(std::floor((p.y + radius) / cell_size_));
}

void CellIndex::for_each_candidate(
    Vec2 p, double radius, const std::function<void(std::uint32_t)>& fn) const {
  sim::perf::PerfScope perf_scope(sim::perf::Domain::kCellIndex,
                                  "cell.query");
  if (!sharded()) {
    auto it = cells_.find(0);
    if (it == cells_.end()) return;
    for (std::uint32_t id : it->second.entries) fn(id);
    return;
  }
  std::int64_t x0, x1, y0, y1;
  cell_span(p, radius, &x0, &x1, &y0, &y1);
  for (std::int64_t iy = y0; iy <= y1; ++iy) {
    for (std::int64_t ix = x0; ix <= x1; ++ix) {
      auto it = cells_.find(key_of(ix, iy));
      if (it == cells_.end()) continue;
      for (std::uint32_t id : it->second.entries) fn(id);
    }
  }
}

void CellIndex::covered_cells(Vec2 p, double radius,
                              std::vector<CellKey>* out) const {
  if (!sharded()) {
    out->push_back(0);
    return;
  }
  std::int64_t x0, x1, y0, y1;
  cell_span(p, radius, &x0, &x1, &y0, &y1);
  for (std::int64_t iy = y0; iy <= y1; ++iy) {
    for (std::int64_t ix = x0; ix <= x1; ++ix) {
      out->push_back(key_of(ix, iy));
    }
  }
}

std::size_t CellIndex::occupied_cells() const {
  std::size_t n = 0;
  for (const auto& [key, bucket] : cells_) {
    if (!bucket.entries.empty()) ++n;
  }
  return n;
}

}  // namespace tracemod::wireless
