// Spatial cell index for the sharded wireless medium.
//
// The seed emulated one flat CSMA cell: every transceiver saw every frame,
// handoff scans walked every WavePoint, and contention was effectively
// O(N^2).  A CellIndex partitions the campus plane into a uniform grid of
// square cells so that only transceivers within radio range interact:
//   - station registration buckets entries by cell, preserving insertion
//     order inside each bucket (determinism: queries visit cells in a fixed
//     row-major scan order and entries in registration order, so results
//     are a pure function of the inputs, never of hashing or threads);
//   - disc queries ("everything within range r of p") touch only the cells
//     overlapping the disc's bounding box -- the O(mobiles x wavepoints)
//     handoff scan becomes an O(nearby) candidate query;
//   - cell_size <= 0 selects the degenerate single-cell grid, which makes
//     every query a full scan in insertion order -- byte-identical to the
//     seed's flat medium (the equivalence the regression tests pin).
//
// The index is position-keyed, not ownership-keyed: callers store opaque
// 32-bit ids (registration indices) and refresh positions explicitly, so
// the index never touches caller objects and is safe to query from shard
// workers while no mutation is in flight.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "wireless/geometry.hpp"

namespace tracemod::wireless {

/// Grid configuration for the sharded medium.  Embedded in ChannelConfig;
/// the default (cell_size 0) keeps the flat seed behaviour.
struct SpatialConfig {
  /// Square cell edge in metres.  <= 0 disables sharding: the whole plane
  /// is one cell and the medium behaves exactly like the seed's flat
  /// channel.  A good value is the radio interaction range (every disc
  /// query then touches at most 3x3 cells).
  double cell_size = 0.0;

  /// Radio interaction range in metres: the radius inside which stations
  /// contend, interfere, and are handoff candidates.  Transmissions mark
  /// every cell within this range of the transmitter busy, which is what
  /// makes carrier sense correct across cell borders.
  double radio_range_m = 130.0;

  bool sharded() const { return cell_size > 0.0; }
};

/// The maximum distance at which a transmitter at tx_dbm can still clear
/// rx_floor_dbm under the given path-loss parameters with no wall/zone
/// attenuation (an upper bound: obstacles only shorten it).  Campus
/// builders size SpatialConfig::radio_range_m from this so a cell-index
/// candidate query can never hide a WavePoint the flat scan would accept.
double association_range_m(double tx_dbm, double ref_loss_db,
                           double path_exponent, double rx_floor_dbm);

class CellIndex {
 public:
  /// Packed cell coordinate (row-major key derived from ix/iy).
  using CellKey = std::int64_t;

  explicit CellIndex(double cell_size = 0.0) : cell_size_(cell_size) {}

  bool sharded() const { return cell_size_ > 0.0; }
  double cell_size() const { return cell_size_; }

  /// The cell containing p (always key 0 in flat mode).
  CellKey cell_of(Vec2 p) const;

  /// Registers an entry; ids are caller-chosen and must be unique.
  void insert(std::uint32_t id, Vec2 p);

  /// Moves an entry to its current position's cell.  Cheap no-op when the
  /// cell did not change.
  void update(std::uint32_t id, Vec2 p);

  /// Visits every entry whose cell overlaps the disc (p, radius): a
  /// superset of the entries within radius, visited in deterministic order
  /// (cells in row-major scan order over the disc's bounding box, entries
  /// in registration order within each cell).  Flat mode visits everything
  /// in registration order -- the seed's full scan.
  void for_each_candidate(Vec2 p, double radius,
                          const std::function<void(std::uint32_t)>& fn) const;

  /// Appends the keys of every cell overlapping the disc (p, radius) in
  /// the same deterministic scan order.  Flat mode appends the single key.
  void covered_cells(Vec2 p, double radius,
                     std::vector<CellKey>* out) const;

  std::size_t size() const { return where_.size(); }

  /// Number of distinct occupied cells (diagnostics and tests).
  std::size_t occupied_cells() const;

 private:
  struct Bucket {
    std::vector<std::uint32_t> entries;  // registration order
  };

  CellKey key_of(std::int64_t ix, std::int64_t iy) const;
  void cell_span(Vec2 p, double radius, std::int64_t* x0, std::int64_t* x1,
                 std::int64_t* y0, std::int64_t* y1) const;

  double cell_size_;
  std::unordered_map<CellKey, Bucket> cells_;
  std::unordered_map<std::uint32_t, CellKey> where_;
};

}  // namespace tracemod::wireless
