// The WaveLAN-like shared wireless channel.
//
// One 2 Mb/s-class CSMA medium shared by every mobile and WavePoint in a
// scenario.  The channel implements:
//   - carrier-sense serialization with DIFS + random backoff,
//   - SNR-dependent frame error with bounded link-layer retries (this is
//     what turns deep fades into the paper's correlated latency spikes and
//     loss),
//   - SNR-dependent effective byte rate (distilled "bandwidth" of
//     0.9-1.6 Mb/s in Figures 2-5),
//   - association and WavePoint handoff with hysteresis and a short outage,
//   - an optional bursty interference process,
//   - a bounded transmit backlog; overflow drops model interface-queue
//     overruns.
//
// Uplink and downlink differ in transmit power, so marginal links are
// asymmetric -- the effect the paper's FTP benchmark exposes (Section 5.3).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "sim/event_loop.hpp"
#include "sim/random.hpp"
#include "sim/telemetry.hpp"
#include "wireless/signal_model.hpp"

namespace tracemod::sim {
class SimContext;
}

namespace tracemod::wireless {

/// Anything with a radio: mobiles and WavePoints.
class Transceiver {
 public:
  virtual ~Transceiver() = default;
  virtual Vec2 position() const = 0;
  virtual double tx_power_dbm() const = 0;
  virtual void receive_frame(net::Packet pkt) = 0;
  virtual std::string label() const = 0;
};

/// A base station radio; claims its associated mobiles' addresses on the
/// wired side so bridged traffic finds them.
class BaseStation : public Transceiver {
 public:
  virtual void claim_mobile(net::IpAddress addr) = 0;
  virtual void unclaim_mobile(net::IpAddress addr) = 0;
};

struct ChannelConfig {
  double effective_rate_bps = 1.9e6;   ///< byte rate at high SNR
  double min_rate_factor = 0.5;        ///< rate floor at poor SNR
  sim::Duration preamble = sim::microseconds(450);
  sim::Duration difs = sim::microseconds(300);
  sim::Duration slot = sim::microseconds(500);
  /// Receiver-side store-and-forward / host processing per frame (486-class
  /// bridges and laptops); adds latency, not per-byte cost.
  sim::Duration processing = sim::microseconds(800);
  int max_backoff_exp = 6;
  int max_retries = 3;
  double frame_err_mid_snr_db = 7.0;   ///< sigmoid center (1000-byte frame)
  double frame_err_width_db = 2.2;
  sim::Duration backlog_cap = sim::milliseconds(500);  ///< tx queue bound
  sim::Duration association_poll = sim::milliseconds(250);
  double handoff_hysteresis_db = 4.0;
  sim::Duration handoff_outage = sim::milliseconds(150);
  /// Frames the mobile's driver buffers while the roaming protocol runs;
  /// they burst out after re-association (the latency spikes at cell
  /// boundaries in Figure 2).  Overflow drops.
  std::size_t handoff_defer_cap = 8;
  double association_floor_dbm = -90.0;  ///< below this, no association
  /// Bursty external interference: while a burst is active, every frame
  /// suffers this much extra error probability.  0 disables the process.
  double burst_extra_err = 0.0;
  sim::Duration burst_mean_on = sim::milliseconds(200);
  sim::Duration burst_mean_off = sim::seconds(4);
};

class WirelessChannel {
 public:
  struct Stats {
    std::uint64_t frames_delivered = 0;
    std::uint64_t frames_dropped_retries = 0;
    std::uint64_t frames_dropped_unassociated = 0;
    std::uint64_t frames_dropped_handoff = 0;
    std::uint64_t frames_dropped_backlog = 0;
    std::uint64_t retry_attempts = 0;
    std::uint64_t handoffs = 0;
  };

  WirelessChannel(sim::EventLoop& loop, SignalModel model, ChannelConfig cfg,
                  sim::Rng rng);

  void add_wavepoint(BaseStation* wp);
  void add_mobile(Transceiver* mobile, net::IpAddress addr);

  /// Starts association polling and the interference process.  Call after
  /// all stations are registered.
  void start();

  void transmit_from_mobile(Transceiver* mobile, net::Packet pkt);
  void transmit_from_wavepoint(BaseStation* wp, net::Packet pkt);

  /// Driver-style signal readings for a mobile (for device records).
  SignalInfo signal_info(const Transceiver* mobile);

  /// The WavePoint a mobile is currently associated with, or nullptr.
  BaseStation* associated(const Transceiver* mobile) const;

  const Stats& stats() const { return stats_; }
  const ChannelConfig& config() const { return cfg_; }
  SignalModel& signal_model() { return model_; }
  sim::EventLoop& loop() { return loop_; }

  /// Effective byte rate for a given SNR (exposed for tests/benches).
  double rate_bps(double snr_db) const;
  /// Frame error probability for a frame of the given size at a given SNR.
  double frame_error_prob(double snr_db, std::uint32_t bytes) const;

  /// Wires the channel into the context's metrics (retransmit / drop /
  /// handoff counters) and, when telemetry is enabled, the flight recorder
  /// ("channel/air" track).  Call once from the world builder.
  void set_telemetry(sim::SimContext& ctx);

 private:
  struct MobileEntry {
    Transceiver* radio = nullptr;
    net::IpAddress addr;
    BaseStation* assoc = nullptr;
    bool in_handoff = false;
    std::vector<net::Packet> deferred;  ///< held during handoff
  };

  struct Attempt {
    Transceiver* from;
    Transceiver* to;
    net::Packet pkt;
    int tries = 0;
  };

  void start_attempt(Attempt attempt);
  void finish_attempt(Attempt attempt, sim::TimePoint started);
  void poll_associations();
  void associate(MobileEntry& entry, BaseStation* wp);
  void schedule_burst_flip();
  MobileEntry* find_mobile(const Transceiver* radio);
  const MobileEntry* find_mobile(const Transceiver* radio) const;
  MobileEntry* find_mobile_by_addr(net::IpAddress addr);

  sim::EventLoop& loop_;
  SignalModel model_;
  ChannelConfig cfg_;
  sim::Rng rng_;
  std::vector<BaseStation*> wavepoints_;
  std::vector<MobileEntry> mobiles_;
  sim::TimePoint busy_until_ = sim::kEpoch;
  bool burst_active_ = false;
  bool started_ = false;
  Stats stats_;
  // Context-wide counters (nullptr until set_telemetry wires them).
  std::uint64_t* m_retransmits_ = nullptr;
  std::uint64_t* m_drops_ = nullptr;
  std::uint64_t* m_handoffs_ = nullptr;
  sim::Telemetry* tel_ = nullptr;  // non-null only while enabled
  sim::TrackId trk_air_ = sim::kNoTrack;
};

}  // namespace tracemod::wireless
