// The WaveLAN-like wireless medium: one shared CSMA cell in the seed
// configuration, a sharded spatial medium at campus scale.
//
// The channel implements:
//   - carrier-sense serialization with DIFS + random backoff,
//   - SNR-dependent frame error with bounded link-layer retries (this is
//     what turns deep fades into the paper's correlated latency spikes and
//     loss),
//   - SNR-dependent effective byte rate (distilled "bandwidth" of
//     0.9-1.6 Mb/s in Figures 2-5),
//   - association and WavePoint handoff with hysteresis and a short outage,
//   - an optional bursty interference process,
//   - a bounded transmit backlog; overflow drops model interface-queue
//     overruns.
//
// Spatial sharding (ChannelConfig::spatial, DESIGN.md section 11): with a
// positive cell_size the plane is partitioned by a CellIndex and
//   - carrier-sense/backoff state is per cell: a transmission marks every
//     cell within radio range of the transmitter busy, so stations at a
//     cell border still defer to each other (correct cross-cell
//     interference) while distant cells transmit concurrently;
//   - the association/handoff scan asks the cell index for nearby
//     WavePoints instead of walking all of them -- the seed's
//     O(mobiles x wavepoints) poll becomes O(mobiles x nearby);
//   - the pure signal-strength scan of the association poll can fan out
//     across worker threads via set_parallel_for; mutations are applied
//     serially in registration order, so serial and parallel sharded runs
//     are bit-identical.
// The default spatial config (cell_size 0) is the degenerate single-cell
// grid: every code path reduces to the seed's flat-medium arithmetic and
// outputs stay bit-identical to it (pinned by tests and the sweep golden).
//
// Uplink and downlink differ in transmit power, so marginal links are
// asymmetric -- the effect the paper's FTP benchmark exposes (Section 5.3).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/packet.hpp"
#include "sim/event_loop.hpp"
#include "sim/random.hpp"
#include "sim/telemetry.hpp"
#include "wireless/cell_index.hpp"
#include "wireless/signal_model.hpp"

namespace tracemod::sim {
class SimContext;
}

namespace tracemod::wireless {

/// Anything with a radio: mobiles and WavePoints.
class Transceiver {
 public:
  virtual ~Transceiver() = default;
  virtual Vec2 position() const = 0;
  virtual double tx_power_dbm() const = 0;
  virtual void receive_frame(net::Packet pkt) = 0;
  virtual std::string label() const = 0;
};

/// A base station radio; claims its associated mobiles' addresses on the
/// wired side so bridged traffic finds them.
class BaseStation : public Transceiver {
 public:
  virtual void claim_mobile(net::IpAddress addr) = 0;
  virtual void unclaim_mobile(net::IpAddress addr) = 0;
};

struct ChannelConfig {
  double effective_rate_bps = 1.9e6;   ///< byte rate at high SNR
  double min_rate_factor = 0.5;        ///< rate floor at poor SNR
  sim::Duration preamble = sim::microseconds(450);
  sim::Duration difs = sim::microseconds(300);
  sim::Duration slot = sim::microseconds(500);
  /// Receiver-side store-and-forward / host processing per frame (486-class
  /// bridges and laptops); adds latency, not per-byte cost.
  sim::Duration processing = sim::microseconds(800);
  int max_backoff_exp = 6;
  int max_retries = 3;
  double frame_err_mid_snr_db = 7.0;   ///< sigmoid center (1000-byte frame)
  double frame_err_width_db = 2.2;
  sim::Duration backlog_cap = sim::milliseconds(500);  ///< tx queue bound
  sim::Duration association_poll = sim::milliseconds(250);
  double handoff_hysteresis_db = 4.0;
  sim::Duration handoff_outage = sim::milliseconds(150);
  /// Frames the mobile's driver buffers while the roaming protocol runs;
  /// they burst out after re-association (the latency spikes at cell
  /// boundaries in Figure 2).  Overflow drops.
  std::size_t handoff_defer_cap = 8;
  double association_floor_dbm = -90.0;  ///< below this, no association
  /// Bursty external interference: while a burst is active, every frame
  /// suffers this much extra error probability.  0 disables the process.
  double burst_extra_err = 0.0;
  sim::Duration burst_mean_on = sim::milliseconds(200);
  sim::Duration burst_mean_off = sim::seconds(4);
  /// Spatial sharding of the medium (cell_index.hpp).  The default keeps
  /// the flat single-cell seed behaviour.
  SpatialConfig spatial{};
};

class WirelessChannel {
 public:
  struct Stats {
    std::uint64_t frames_delivered = 0;
    std::uint64_t frames_dropped_retries = 0;
    std::uint64_t frames_dropped_unassociated = 0;
    std::uint64_t frames_dropped_handoff = 0;
    std::uint64_t frames_dropped_backlog = 0;
    std::uint64_t retry_attempts = 0;
    std::uint64_t handoffs = 0;
  };

  /// Runs shard-scan bodies 0..n-1, possibly concurrently; must block
  /// until all complete.  Bodies are pure (no RNG, no event scheduling),
  /// so any execution order yields the identical result.
  using ParallelFor =
      std::function<void(std::size_t n,
                         const std::function<void(std::size_t)>& body)>;

  WirelessChannel(sim::EventLoop& loop, SignalModel model, ChannelConfig cfg,
                  sim::Rng rng);

  void add_wavepoint(BaseStation* wp);
  void add_mobile(Transceiver* mobile, net::IpAddress addr);

  /// Starts association polling and the interference process.  Call after
  /// all stations are registered.
  void start();

  void transmit_from_mobile(Transceiver* mobile, net::Packet pkt);
  void transmit_from_wavepoint(BaseStation* wp, net::Packet pkt);

  /// Driver-style signal readings for a mobile (for device records).
  SignalInfo signal_info(const Transceiver* mobile);

  /// The WavePoint a mobile is currently associated with, or nullptr.
  BaseStation* associated(const Transceiver* mobile) const;

  const Stats& stats() const { return stats_; }
  const ChannelConfig& config() const { return cfg_; }
  SignalModel& signal_model() { return model_; }
  sim::EventLoop& loop() { return loop_; }

  /// Effective byte rate for a given SNR (exposed for tests/benches).
  double rate_bps(double snr_db) const;
  /// Frame error probability for a frame of the given size at a given SNR.
  double frame_error_prob(double snr_db, std::uint32_t bytes) const;

  /// Wires the channel into the context's metrics (retransmit / drop /
  /// handoff counters) and, when telemetry is enabled, the flight recorder
  /// ("channel/air" track).  Call once from the world builder.
  void set_telemetry(sim::SimContext& ctx);

  /// Installs a fork-join executor for the sharded association scan (the
  /// campus runner wires this to its TaskPool).  Only the pure
  /// signal-strength scan runs on workers; association changes and handoff
  /// scheduling stay on the event-loop thread in registration order, so a
  /// run with an executor is bit-identical to one without.  Ignored in
  /// flat (non-sharded) configurations.
  void set_parallel_for(ParallelFor fn) { parallel_for_ = std::move(fn); }

  /// The WavePoint cell index (diagnostics and tests).
  const CellIndex& wavepoint_index() const { return wp_index_; }

  /// Distinct grid cells currently carrying or having carried a
  /// transmission (diagnostics; 1 in flat mode once anything transmitted).
  std::size_t busy_cells_tracked() const { return cell_busy_.size(); }

 private:
  struct MobileEntry {
    Transceiver* radio = nullptr;
    net::IpAddress addr;
    BaseStation* assoc = nullptr;
    bool in_handoff = false;
    std::vector<net::Packet> deferred;  ///< held during handoff
  };

  struct Attempt {
    Transceiver* from;
    Transceiver* to;
    net::Packet pkt;
    int tries = 0;
  };

  /// Result of the pure association scan for one mobile: the strongest
  /// candidate WavePoint within interaction range and, when associated,
  /// the current WavePoint's median signal at the same instant.
  struct ScanResult {
    BaseStation* best = nullptr;
    double best_rx = -1e9;
    double cur_rx = -1e9;
    bool skipped = false;  ///< mobile was mid-handoff at scan time
  };

  void start_attempt(Attempt attempt);
  void finish_attempt(Attempt attempt, sim::TimePoint started);
  void poll_associations();
  void associate(MobileEntry& entry, BaseStation* wp);
  void schedule_burst_flip();
  MobileEntry* find_mobile(const Transceiver* radio);
  const MobileEntry* find_mobile(const Transceiver* radio) const;
  MobileEntry* find_mobile_by_addr(net::IpAddress addr);

  /// The pure scan (no RNG, no mutation): safe to run on shard workers.
  ScanResult scan_mobile(const MobileEntry& entry) const;
  /// Applies one mobile's scan result: the seed's association/handoff
  /// logic, verbatim.  Event-loop thread only.
  void apply_scan(MobileEntry& entry, const ScanResult& scan);

  /// Earliest instant the medium is free across every cell within radio
  /// range of a transmitter at `pos` (the flat config reduces this to the
  /// seed's single busy_until_ read).  Fills covered_scratch_.
  sim::TimePoint busy_floor_at(Vec2 pos);
  /// Marks every cell in covered_scratch_ busy until `until`.
  void occupy_covered(sim::TimePoint until);

  sim::EventLoop& loop_;
  SignalModel model_;
  ChannelConfig cfg_;
  sim::Rng rng_;
  std::vector<BaseStation*> wavepoints_;
  std::vector<MobileEntry> mobiles_;
  /// O(1) mobile lookups; the seed's linear scans made every frame O(N)
  /// and the whole medium O(N^2) at campus host counts.
  std::unordered_map<const Transceiver*, std::size_t> mobile_by_radio_;
  std::unordered_map<net::IpAddress, std::size_t> mobile_by_addr_;
  /// WavePoints bucketed by grid cell; candidate queries for association
  /// and handoff go through this instead of scanning all of them.
  CellIndex wp_index_;
  /// Per-cell carrier-sense horizon (key 0 only in flat mode).
  std::unordered_map<CellIndex::CellKey, sim::TimePoint> cell_busy_;
  std::vector<CellIndex::CellKey> covered_scratch_;
  ParallelFor parallel_for_;
  bool burst_active_ = false;
  bool started_ = false;
  Stats stats_;
  // Context-wide counters (nullptr until set_telemetry wires them).
  std::uint64_t* m_retransmits_ = nullptr;
  std::uint64_t* m_drops_ = nullptr;
  std::uint64_t* m_handoffs_ = nullptr;
  sim::Telemetry* tel_ = nullptr;  // non-null only while enabled
  sim::TrackId trk_air_ = sim::kNoTrack;
};

}  // namespace tracemod::wireless
