#include "wireless/channel.hpp"

#include <algorithm>
#include <cmath>

#include "sim/assert.hpp"
#include "sim/metric_names.hpp"
#include "sim/sim_context.hpp"

namespace tracemod::wireless {

WirelessChannel::WirelessChannel(sim::EventLoop& loop, SignalModel model,
                                 ChannelConfig cfg, sim::Rng rng)
    : loop_(loop),
      model_(std::move(model)),
      cfg_(cfg),
      rng_(rng),
      wp_index_(cfg.spatial.cell_size) {}

void WirelessChannel::add_wavepoint(BaseStation* wp) {
  TM_ASSERT(wp != nullptr);
  // WavePoints are fixed infrastructure: index them once at their mounting
  // position.  Ids are registration indices into wavepoints_.
  wp_index_.insert(static_cast<std::uint32_t>(wavepoints_.size()),
                   wp->position());
  wavepoints_.push_back(wp);
}

void WirelessChannel::add_mobile(Transceiver* mobile, net::IpAddress addr) {
  TM_ASSERT(mobile != nullptr);
  // Registration is closed once the channel starts: pending handoff events
  // hold pointers into mobiles_.
  TM_ASSERT(!started_);
  TM_ASSERT(mobile_by_radio_.find(mobile) == mobile_by_radio_.end());
  TM_ASSERT(mobile_by_addr_.find(addr) == mobile_by_addr_.end());
  mobile_by_radio_.emplace(mobile, mobiles_.size());
  mobile_by_addr_.emplace(addr, mobiles_.size());
  mobiles_.push_back(MobileEntry{mobile, addr, nullptr, false, {}});
}

void WirelessChannel::set_telemetry(sim::SimContext& ctx) {
  m_retransmits_ = &ctx.metrics().counter(sim::metric::kWirelessRetransmits);
  m_drops_ = &ctx.metrics().counter(sim::metric::kWirelessDrops);
  m_handoffs_ = &ctx.metrics().counter(sim::metric::kWirelessHandoffs);
  if (ctx.telemetry().enabled()) {
    tel_ = &ctx.telemetry();
    trk_air_ = tel_->track("channel", "air");
  }
}

void WirelessChannel::start() {
  if (started_) return;
  started_ = true;
  poll_associations();  // immediate first pass, then periodic
  if (cfg_.burst_extra_err > 0.0) schedule_burst_flip();
}

WirelessChannel::MobileEntry* WirelessChannel::find_mobile(
    const Transceiver* radio) {
  auto it = mobile_by_radio_.find(radio);
  return it != mobile_by_radio_.end() ? &mobiles_[it->second] : nullptr;
}

const WirelessChannel::MobileEntry* WirelessChannel::find_mobile(
    const Transceiver* radio) const {
  auto it = mobile_by_radio_.find(radio);
  return it != mobile_by_radio_.end() ? &mobiles_[it->second] : nullptr;
}

WirelessChannel::MobileEntry* WirelessChannel::find_mobile_by_addr(
    net::IpAddress addr) {
  auto it = mobile_by_addr_.find(addr);
  return it != mobile_by_addr_.end() ? &mobiles_[it->second] : nullptr;
}

BaseStation* WirelessChannel::associated(const Transceiver* mobile) const {
  const MobileEntry* e = find_mobile(mobile);
  return e != nullptr ? e->assoc : nullptr;
}

double WirelessChannel::rate_bps(double snr_db) const {
  const double factor =
      std::clamp(0.58 + 0.035 * (snr_db - 6.0), cfg_.min_rate_factor, 1.0);
  return cfg_.effective_rate_bps * factor;
}

double WirelessChannel::frame_error_prob(double snr_db,
                                         std::uint32_t bytes) const {
  const double p_ref =
      1.0 / (1.0 + std::exp((snr_db - cfg_.frame_err_mid_snr_db) /
                            cfg_.frame_err_width_db));
  const double scaled =
      1.0 - std::pow(1.0 - p_ref, static_cast<double>(bytes) / 1000.0);
  return std::clamp(scaled, 0.0, 1.0);
}

sim::TimePoint WirelessChannel::busy_floor_at(Vec2 pos) {
  covered_scratch_.clear();
  wp_index_.covered_cells(pos, cfg_.spatial.radio_range_m, &covered_scratch_);
  sim::TimePoint floor = sim::kEpoch;
  for (CellIndex::CellKey key : covered_scratch_) {
    auto it = cell_busy_.find(key);
    if (it != cell_busy_.end()) floor = std::max(floor, it->second);
  }
  return floor;
}

void WirelessChannel::occupy_covered(sim::TimePoint until) {
  for (CellIndex::CellKey key : covered_scratch_) {
    sim::TimePoint& busy = cell_busy_[key];
    busy = std::max(busy, until);
  }
}

void WirelessChannel::transmit_from_mobile(Transceiver* mobile,
                                           net::Packet pkt) {
  MobileEntry* entry = find_mobile(mobile);
  TM_ASSERT(entry != nullptr);
  if (entry->in_handoff) {
    // The driver buffers a few frames while the roaming protocol runs.
    if (entry->deferred.size() < cfg_.handoff_defer_cap) {
      entry->deferred.push_back(std::move(pkt));
    } else {
      ++stats_.frames_dropped_handoff;
    }
    return;
  }
  if (entry->assoc == nullptr) {
    ++stats_.frames_dropped_unassociated;
    return;
  }
  if (busy_floor_at(mobile->position()) - loop_.now() > cfg_.backlog_cap) {
    ++stats_.frames_dropped_backlog;
    return;
  }
  start_attempt(Attempt{mobile, entry->assoc, std::move(pkt), 0});
}

void WirelessChannel::transmit_from_wavepoint(BaseStation* wp,
                                              net::Packet pkt) {
  MobileEntry* entry = find_mobile_by_addr(pkt.dst);
  if (entry == nullptr || entry->assoc != wp) {
    ++stats_.frames_dropped_unassociated;
    return;
  }
  if (entry->in_handoff) {
    ++stats_.frames_dropped_handoff;
    return;
  }
  if (busy_floor_at(wp->position()) - loop_.now() > cfg_.backlog_cap) {
    ++stats_.frames_dropped_backlog;
    return;
  }
  start_attempt(Attempt{wp, entry->radio, std::move(pkt), 0});
}

void WirelessChannel::start_attempt(Attempt attempt) {
  // Binary exponential backoff; the first attempt draws from a small window.
  const int exp = std::min(attempt.tries + 1, cfg_.max_backoff_exp);
  const auto slots = rng_.uniform_int(0, (std::int64_t{1} << exp) - 1);
  const sim::Duration backoff = cfg_.slot * slots;

  // Carrier sense covers every cell within radio range of the transmitter
  // (in the flat configuration that is the single global cell, i.e. the
  // seed's scalar busy horizon).
  const sim::TimePoint floor = busy_floor_at(attempt.from->position());
  const sim::TimePoint start =
      std::max(loop_.now(), floor) + cfg_.difs + backoff;
  // Duration uses the median SNR at reservation time: the radio picks its
  // timing before knowing whether the frame will survive.
  const double rx =
      model_.median_rx_dbm(attempt.from->position(),
                           attempt.from->tx_power_dbm(), attempt.to->position());
  const double rate = rate_bps(model_.snr_db(rx));
  const sim::Duration tx_time =
      cfg_.preamble +
      sim::from_seconds(attempt.pkt.wire_size() * 8.0 / rate);
  const sim::TimePoint done = start + tx_time;
  // The reservation keeps every covered cell deferring, so a station just
  // across a cell border still backs off this transmission.
  occupy_covered(done);
  if (tel_ != nullptr) {
    // The reservation window is known now; record the span with its
    // (future) endpoints instead of scheduling anything.
    tel_->recorder().begin(trk_air_, "air.tx", attempt.pkt.id, start,
                           static_cast<double>(attempt.pkt.wire_size()));
    tel_->recorder().end(trk_air_, "air.tx", attempt.pkt.id, done);
  }
  loop_.schedule_at(
      done,
      [this, attempt = std::move(attempt), start]() mutable {
        finish_attempt(std::move(attempt), start);
      },
      "air.finish");
}

void WirelessChannel::finish_attempt(Attempt attempt, sim::TimePoint) {
  const double rx = model_.rx_dbm(attempt.from->position(),
                                  attempt.from->tx_power_dbm(),
                                  attempt.to->position(), loop_.now()) +
                    model_.fast_fade_db();
  double p_err = frame_error_prob(model_.snr_db(rx), attempt.pkt.wire_size());
  if (burst_active_) p_err = std::min(1.0, p_err + cfg_.burst_extra_err);

  if (!rng_.chance(p_err)) {
    ++stats_.frames_delivered;
    // Host/bridge processing happens off the air: it delays delivery but
    // does not hold the channel.
    Transceiver* to = attempt.to;
    loop_.schedule(
        cfg_.processing,
        [to, pkt = std::move(attempt.pkt)]() mutable {
          to->receive_frame(std::move(pkt));
        },
        "air.deliver");
    return;
  }
  if (attempt.tries < cfg_.max_retries) {
    ++attempt.tries;
    ++stats_.retry_attempts;
    if (m_retransmits_ != nullptr) ++*m_retransmits_;
    if (tel_ != nullptr) {
      tel_->recorder().instant(trk_air_, "air.retransmit", attempt.pkt.id,
                               loop_.now(),
                               static_cast<double>(attempt.tries));
    }
    start_attempt(std::move(attempt));
    return;
  }
  ++stats_.frames_dropped_retries;
  if (m_drops_ != nullptr) ++*m_drops_;
  if (tel_ != nullptr) {
    tel_->recorder().instant(trk_air_, "air.drop", attempt.pkt.id,
                             loop_.now());
  }
}

void WirelessChannel::associate(MobileEntry& entry, BaseStation* wp) {
  if (entry.assoc != nullptr) entry.assoc->unclaim_mobile(entry.addr);
  entry.assoc = wp;
  if (wp != nullptr) wp->claim_mobile(entry.addr);
}

WirelessChannel::ScanResult WirelessChannel::scan_mobile(
    const MobileEntry& entry) const {
  ScanResult scan;
  if (entry.in_handoff) {
    scan.skipped = true;
    return scan;
  }
  const Vec2 pos = entry.radio->position();
  // Candidate query: in the flat configuration this visits every WavePoint
  // in registration order (the seed's full scan); sharded, only WavePoints
  // in cells overlapping the interaction disc -- the fix for the old
  // O(mobiles x wavepoints) poll.
  wp_index_.for_each_candidate(
      pos, cfg_.spatial.radio_range_m, [&](std::uint32_t id) {
        BaseStation* wp = wavepoints_[id];
        const double rx =
            model_.median_rx_dbm(wp->position(), wp->tx_power_dbm(), pos);
        if (rx > scan.best_rx) {
          scan.best_rx = rx;
          scan.best = wp;
        }
      });
  if (entry.assoc != nullptr) {
    scan.cur_rx = model_.median_rx_dbm(entry.assoc->position(),
                                       entry.assoc->tx_power_dbm(), pos);
  }
  return scan;
}

void WirelessChannel::apply_scan(MobileEntry& entry, const ScanResult& scan) {
  if (scan.skipped) return;
  BaseStation* best = scan.best;
  const double best_rx = scan.best_rx;
  if (best == nullptr) return;

  if (entry.assoc == nullptr) {
    if (best_rx >= cfg_.association_floor_dbm) associate(entry, best);
    return;
  }
  // Out of range of everything: the roaming protocol drops the
  // association entirely (5 dB of hysteresis against flapping).
  if (best_rx < cfg_.association_floor_dbm - 5.0) {
    associate(entry, nullptr);
    return;
  }
  if (best == entry.assoc) return;
  if (best_rx > scan.cur_rx + cfg_.handoff_hysteresis_db) {
    // Roaming protocol: brief outage, then re-association (the paper's
    // WavePoint handoffs).
    entry.assoc->unclaim_mobile(entry.addr);
    entry.assoc = nullptr;
    entry.in_handoff = true;
    ++stats_.handoffs;
    if (m_handoffs_ != nullptr) ++*m_handoffs_;
    if (tel_ != nullptr) {
      tel_->recorder().begin(trk_air_, "handoff", stats_.handoffs,
                             loop_.now());
      tel_->recorder().end(trk_air_, "handoff", stats_.handoffs,
                           loop_.now() + cfg_.handoff_outage);
    }
    MobileEntry* entry_ptr = &entry;
    loop_.schedule(
        cfg_.handoff_outage,
        [this, entry_ptr, best] {
          entry_ptr->in_handoff = false;
          associate(*entry_ptr, best);
          // Flush the frames the driver held back during the handoff.
          std::vector<net::Packet> held = std::move(entry_ptr->deferred);
          entry_ptr->deferred.clear();
          for (net::Packet& pkt : held) {
            start_attempt(Attempt{entry_ptr->radio, best, std::move(pkt), 0});
          }
        },
        "wireless.handoff");
  }
}

void WirelessChannel::poll_associations() {
  // scan_mobile is pure (positions and median signal only -- no RNG, no
  // scheduling), so the scan phase is order-independent; apply_scan runs
  // serially in registration order either way.  That makes the serial and
  // parallel paths bit-identical, and the flat path identical to the seed's
  // interleaved scan-then-apply loop.
  if (cfg_.spatial.sharded() && parallel_for_ && !mobiles_.empty()) {
    std::vector<ScanResult> scans(mobiles_.size());
    const std::size_t chunk = 256;
    const std::size_t n_chunks = (mobiles_.size() + chunk - 1) / chunk;
    parallel_for_(n_chunks, [&](std::size_t c) {
      const std::size_t lo = c * chunk;
      const std::size_t hi = std::min(lo + chunk, mobiles_.size());
      for (std::size_t i = lo; i < hi; ++i) {
        scans[i] = scan_mobile(mobiles_[i]);
      }
    });
    for (std::size_t i = 0; i < mobiles_.size(); ++i) {
      apply_scan(mobiles_[i], scans[i]);
    }
  } else {
    for (MobileEntry& entry : mobiles_) {
      apply_scan(entry, scan_mobile(entry));
    }
  }
  loop_.schedule(cfg_.association_poll, [this] { poll_associations(); },
                 "wireless.poll");
}

void WirelessChannel::schedule_burst_flip() {
  const double mean = burst_active_ ? sim::to_seconds(cfg_.burst_mean_on)
                                    : sim::to_seconds(cfg_.burst_mean_off);
  loop_.schedule(sim::from_seconds(rng_.exponential(mean)),
                 [this] {
                   burst_active_ = !burst_active_;
                   schedule_burst_flip();
                 },
                 "wireless.burst");
}

SignalInfo WirelessChannel::signal_info(const Transceiver* mobile) {
  const MobileEntry* entry = find_mobile(mobile);
  TM_ASSERT(entry != nullptr);
  if (entry->assoc == nullptr) {
    // No base station in range: the driver reads noise.
    return model_.to_signal_info(model_.config().noise_floor_dbm);
  }
  const double rx =
      model_.rx_dbm(entry->assoc->position(), entry->assoc->tx_power_dbm(),
                    mobile->position(), loop_.now());
  return model_.to_signal_info(rx);
}

}  // namespace tracemod::wireless
