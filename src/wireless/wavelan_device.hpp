// The mobile host's WaveLAN network interface.
//
// Bridges a Node's protocol stack to the WirelessChannel, and exposes the
// driver's signal readings (signal level / quality / silence) that the
// trace-collection layer samples periodically (paper Section 3.1.1).
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "net/device.hpp"
#include "wireless/channel.hpp"

namespace tracemod::wireless {

class WaveLanDevice : public net::NetDevice, public Transceiver {
 public:
  using PositionFn = std::function<Vec2()>;

  /// Registers with the channel under the given interface address.  The
  /// position function is sampled on every transmission (mobility).
  WaveLanDevice(WirelessChannel& channel, net::IpAddress addr,
                PositionFn position, std::string name,
                double tx_power_dbm = 12.0)
      : channel_(channel),
        position_(std::move(position)),
        name_(std::move(name)),
        tx_power_dbm_(tx_power_dbm) {
    channel_.add_mobile(this, addr);
  }

  // --- net::NetDevice ---
  void transmit(net::Packet pkt) override {
    channel_.transmit_from_mobile(this, std::move(pkt));
  }
  std::string name() const override { return name_; }

  // --- Transceiver ---
  Vec2 position() const override { return position_(); }
  double tx_power_dbm() const override { return tx_power_dbm_; }
  void receive_frame(net::Packet pkt) override { deliver_up(std::move(pkt)); }
  std::string label() const override { return name_; }

  /// Driver signal readings at the current instant.
  SignalInfo signal() { return channel_.signal_info(this); }

  bool associated() const { return channel_.associated(this) != nullptr; }

  WirelessChannel& channel() { return channel_; }

 private:
  WirelessChannel& channel_;
  PositionFn position_;
  std::string name_;
  double tx_power_dbm_;
};

}  // namespace tracemod::wireless
