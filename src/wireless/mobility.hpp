// Checkpointed mobility paths.
//
// The paper's scenarios are traversals of labeled checkpoints (Porter x0-x6,
// Flagstaff y0-y9, Wean z0-z7).  A MobilityModel is a sequence of waypoints
// with walking speeds and pauses; it yields position as a function of time
// and the checkpoint schedule used for the figures' location axes.
#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"
#include "wireless/geometry.hpp"

namespace tracemod::wireless {

class MobilityModel {
 public:
  struct Waypoint {
    std::string label;      ///< checkpoint name, e.g. "x3"
    Vec2 pos;
    double speed_mps = 1.4; ///< speed of the leg *arriving* at this waypoint
    sim::Duration pause{};  ///< dwell time at this waypoint
  };

  struct Checkpoint {
    std::string label;
    sim::TimePoint at;  ///< arrival time
    Vec2 pos;
  };

  /// Requires at least one waypoint; the first waypoint's speed is unused.
  explicit MobilityModel(std::vector<Waypoint> waypoints);

  /// Position at time t; clamps to the endpoints outside [0, duration].
  Vec2 position(sim::TimePoint t) const;

  /// Total traversal time (travel + pauses).
  sim::Duration duration() const { return duration_; }

  /// Checkpoint arrival schedule, in order.
  const std::vector<Checkpoint>& checkpoints() const { return checkpoints_; }

  /// A model that never moves (Chatterbox).
  static MobilityModel stationary(Vec2 pos, sim::Duration dwell,
                                  const std::string& label = "s0");

 private:
  struct Knot {
    sim::TimePoint at;
    Vec2 pos;
  };

  std::vector<Knot> knots_;  // piecewise-linear position track
  std::vector<Checkpoint> checkpoints_;
  sim::Duration duration_{};
};

}  // namespace tracemod::wireless
