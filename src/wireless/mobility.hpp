// Checkpointed mobility paths and the campus mobility-model family.
//
// The paper's scenarios are traversals of labeled checkpoints (Porter x0-x6,
// Flagstaff y0-y9, Wean z0-z7).  A MobilityModel is a sequence of waypoints
// with walking speeds and pauses; it yields position as a function of time
// and the checkpoint schedule used for the figures' location axes.
//
// Every member of the family reduces to that one representation -- a
// piecewise-linear position track -- so the channel, devices, and traces
// never care which generator produced a path:
//   - random_waypoint() draws waypoints/speeds/pauses from an Rng into a
//     bounding box until a horizon is filled (the classic model; with a
//     degenerate box or zero horizon it collapses to stationary());
//   - GroupMobility superimposes fixed member offsets on one shared leader
//     track (leader/follower groups walking a campus together);
//   - MobilityModel::trace_replay() replays a recorded (time, position)
//     track verbatim, for paths captured from real traces.
#pragma once

#include <string>
#include <vector>

#include "sim/random.hpp"
#include "sim/time.hpp"
#include "wireless/geometry.hpp"

namespace tracemod::wireless {

class MobilityModel {
 public:
  struct Waypoint {
    std::string label;      ///< checkpoint name, e.g. "x3"
    Vec2 pos;
    double speed_mps = 1.4; ///< speed of the leg *arriving* at this waypoint
    sim::Duration pause{};  ///< dwell time at this waypoint
  };

  struct Checkpoint {
    std::string label;
    sim::TimePoint at;  ///< arrival time
    Vec2 pos;
  };

  /// Requires at least one waypoint; the first waypoint's speed is unused.
  explicit MobilityModel(std::vector<Waypoint> waypoints);

  /// Position at time t; clamps to the endpoints outside [0, duration].
  Vec2 position(sim::TimePoint t) const;

  /// Total traversal time (travel + pauses).
  sim::Duration duration() const { return duration_; }

  /// Checkpoint arrival schedule, in order.
  const std::vector<Checkpoint>& checkpoints() const { return checkpoints_; }

  /// A model that never moves (Chatterbox).
  static MobilityModel stationary(Vec2 pos, sim::Duration dwell,
                                  const std::string& label = "s0");

  /// Replays a recorded (time, position) track verbatim: the model passes
  /// through each sample at exactly its timestamp, linearly interpolating
  /// between samples.  Times must be non-decreasing from kEpoch.
  struct TracePoint {
    sim::TimePoint at;
    Vec2 pos;
  };
  static MobilityModel trace_replay(const std::vector<TracePoint>& points,
                                    const std::string& label_prefix = "t");

 private:
  MobilityModel() = default;  // for trace_replay

  struct Knot {
    sim::TimePoint at;
    Vec2 pos;
  };

  std::vector<Knot> knots_;  // piecewise-linear position track
  std::vector<Checkpoint> checkpoints_;
  sim::Duration duration_{};
};

/// Parameters for the random-waypoint generator.  Draw order per waypoint
/// is fixed (x, y, speed, pause) so a path is a pure function of the seed.
struct RandomWaypointConfig {
  Vec2 area_min{0.0, 0.0};  ///< bounding box of the walkable area
  Vec2 area_max{100.0, 100.0};
  double speed_min_mps = 0.7;  ///< slow stroll
  double speed_max_mps = 2.0;  ///< brisk walk
  sim::Duration pause_min{};
  sim::Duration pause_max = sim::seconds(30);
  /// Waypoints are appended until the path's duration covers the horizon.
  sim::Duration horizon = sim::seconds(600);
  std::string label_prefix = "rw";
};

/// The classic random-waypoint model: pick a uniform point in the box, walk
/// to it at a uniform speed, pause, repeat until the horizon is filled.
/// A zero-size box or zero horizon degenerates to a stationary model.
MobilityModel random_waypoint(const RandomWaypointConfig& cfg, sim::Rng& rng);

/// Group mobility by leader/offset superposition (the INET-style reference
/// point group model): one shared leader track, and each member rides at a
/// fixed offset from the leader's current position.  Offsets are constant,
/// so intra-group geometry is rigid -- a tour group crossing the campus.
class GroupMobility {
 public:
  explicit GroupMobility(MobilityModel leader) : leader_(std::move(leader)) {}

  /// Adds a member at the given offset from the leader; returns its index.
  std::size_t add_member(Vec2 offset);

  /// Adds `count` members on a deterministic ring of the given radius
  /// around the leader (evenly spaced; no RNG involved).
  void add_ring(std::size_t count, double radius);

  Vec2 position(std::size_t member, sim::TimePoint t) const;

  std::size_t members() const { return offsets_.size(); }
  const MobilityModel& leader() const { return leader_; }
  Vec2 offset(std::size_t member) const { return offsets_[member]; }

 private:
  MobilityModel leader_;
  std::vector<Vec2> offsets_;
};

}  // namespace tracemod::wireless
