// 2-D campus geometry for the wireless propagation model.
#pragma once

#include <cmath>
#include <vector>

namespace tracemod::wireless {

struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  friend Vec2 operator+(Vec2 a, Vec2 b) { return {a.x + b.x, a.y + b.y}; }
  friend Vec2 operator-(Vec2 a, Vec2 b) { return {a.x - b.x, a.y - b.y}; }
  friend Vec2 operator*(Vec2 a, double s) { return {a.x * s, a.y * s}; }
  friend bool operator==(Vec2 a, Vec2 b) { return a.x == b.x && a.y == b.y; }

  double norm() const { return std::hypot(x, y); }
};

inline double distance(Vec2 a, Vec2 b) { return (a - b).norm(); }

/// Linear interpolation between two points, t in [0,1].
inline Vec2 lerp(Vec2 a, Vec2 b, double t) { return a + (b - a) * t; }

/// A wall attenuates any radio path that crosses it.
struct Wall {
  Vec2 a;
  Vec2 b;
  double loss_db = 6.0;
};

/// A zone adds attenuation when either endpoint of a radio path lies inside
/// (elevator shafts, stairwells, metal-clad rooms).
struct Zone {
  Vec2 center;
  double radius = 1.0;
  double extra_loss_db = 20.0;

  bool contains(Vec2 p) const { return distance(center, p) <= radius; }
};

/// True if segments [p1,p2] and [q1,q2] intersect (proper or touching).
bool segments_intersect(Vec2 p1, Vec2 p2, Vec2 q1, Vec2 q2);

/// Total wall attenuation along the straight path from -> to.
double wall_loss_db(const std::vector<Wall>& walls, Vec2 from, Vec2 to);

/// Total zone attenuation: sum of zones containing either endpoint.
double zone_loss_db(const std::vector<Zone>& zones, Vec2 from, Vec2 to);

}  // namespace tracemod::wireless
