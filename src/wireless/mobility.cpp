#include "wireless/mobility.hpp"

#include "sim/assert.hpp"

namespace tracemod::wireless {

MobilityModel::MobilityModel(std::vector<Waypoint> waypoints) {
  TM_ASSERT(!waypoints.empty());
  sim::TimePoint t = sim::kEpoch;
  Vec2 prev = waypoints.front().pos;
  knots_.push_back(Knot{t, prev});
  checkpoints_.push_back(Checkpoint{waypoints.front().label, t, prev});
  if (waypoints.front().pause.count() > 0) {
    t += waypoints.front().pause;
    knots_.push_back(Knot{t, prev});
  }
  for (std::size_t i = 1; i < waypoints.size(); ++i) {
    const Waypoint& wp = waypoints[i];
    TM_ASSERT(wp.speed_mps > 0.0);
    const double d = distance(prev, wp.pos);
    t += sim::from_seconds(d / wp.speed_mps);
    knots_.push_back(Knot{t, wp.pos});
    checkpoints_.push_back(Checkpoint{wp.label, t, wp.pos});
    if (wp.pause.count() > 0) {
      t += wp.pause;
      knots_.push_back(Knot{t, wp.pos});
    }
    prev = wp.pos;
  }
  duration_ = t - sim::kEpoch;
}

Vec2 MobilityModel::position(sim::TimePoint t) const {
  if (t <= knots_.front().at) return knots_.front().pos;
  if (t >= knots_.back().at) return knots_.back().pos;
  for (std::size_t i = 1; i < knots_.size(); ++i) {
    if (t <= knots_[i].at) {
      const Knot& a = knots_[i - 1];
      const Knot& b = knots_[i];
      const auto span = b.at - a.at;
      if (span.count() == 0) return b.pos;
      const double frac = static_cast<double>((t - a.at).count()) /
                          static_cast<double>(span.count());
      return lerp(a.pos, b.pos, frac);
    }
  }
  return knots_.back().pos;
}

MobilityModel MobilityModel::stationary(Vec2 pos, sim::Duration dwell,
                                        const std::string& label) {
  return MobilityModel({Waypoint{label, pos, 1.0, dwell}});
}

}  // namespace tracemod::wireless
