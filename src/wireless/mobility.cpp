#include "wireless/mobility.hpp"

#include <algorithm>
#include <cmath>

#include "sim/assert.hpp"

namespace tracemod::wireless {

MobilityModel::MobilityModel(std::vector<Waypoint> waypoints) {
  TM_ASSERT(!waypoints.empty());
  sim::TimePoint t = sim::kEpoch;
  Vec2 prev = waypoints.front().pos;
  knots_.push_back(Knot{t, prev});
  checkpoints_.push_back(Checkpoint{waypoints.front().label, t, prev});
  if (waypoints.front().pause.count() > 0) {
    t += waypoints.front().pause;
    knots_.push_back(Knot{t, prev});
  }
  for (std::size_t i = 1; i < waypoints.size(); ++i) {
    const Waypoint& wp = waypoints[i];
    TM_ASSERT(wp.speed_mps > 0.0);
    const double d = distance(prev, wp.pos);
    t += sim::from_seconds(d / wp.speed_mps);
    knots_.push_back(Knot{t, wp.pos});
    checkpoints_.push_back(Checkpoint{wp.label, t, wp.pos});
    if (wp.pause.count() > 0) {
      t += wp.pause;
      knots_.push_back(Knot{t, wp.pos});
    }
    prev = wp.pos;
  }
  duration_ = t - sim::kEpoch;
}

Vec2 MobilityModel::position(sim::TimePoint t) const {
  if (t <= knots_.front().at) return knots_.front().pos;
  if (t >= knots_.back().at) return knots_.back().pos;
  // Binary search for the first knot at or after t.  Long generated paths
  // (a campus hour of random-waypoint legs) made the old linear scan the
  // hot spot of every association poll; lower_bound picks the identical
  // interval the scan did.
  const auto it = std::lower_bound(
      knots_.begin() + 1, knots_.end(), t,
      [](const Knot& k, sim::TimePoint when) { return k.at < when; });
  const Knot& a = *(it - 1);
  const Knot& b = *it;
  const auto span = b.at - a.at;
  if (span.count() == 0) return b.pos;
  const double frac = static_cast<double>((t - a.at).count()) /
                      static_cast<double>(span.count());
  return lerp(a.pos, b.pos, frac);
}

MobilityModel MobilityModel::stationary(Vec2 pos, sim::Duration dwell,
                                        const std::string& label) {
  return MobilityModel({Waypoint{label, pos, 1.0, dwell}});
}

MobilityModel MobilityModel::trace_replay(
    const std::vector<TracePoint>& points, const std::string& label_prefix) {
  TM_ASSERT(!points.empty());
  MobilityModel m;
  // Anchor at the epoch so the track is defined from t = 0 even when the
  // recording starts later.
  if (points.front().at > sim::kEpoch) {
    m.knots_.push_back(Knot{sim::kEpoch, points.front().pos});
  }
  sim::TimePoint prev_at = sim::kEpoch;
  for (std::size_t i = 0; i < points.size(); ++i) {
    TM_ASSERT(points[i].at >= prev_at);
    prev_at = points[i].at;
    m.knots_.push_back(Knot{points[i].at, points[i].pos});
    m.checkpoints_.push_back(Checkpoint{
        label_prefix + std::to_string(i), points[i].at, points[i].pos});
  }
  m.duration_ = points.back().at - sim::kEpoch;
  return m;
}

MobilityModel random_waypoint(const RandomWaypointConfig& cfg, sim::Rng& rng) {
  TM_ASSERT(cfg.area_max.x >= cfg.area_min.x);
  TM_ASSERT(cfg.area_max.y >= cfg.area_min.y);
  TM_ASSERT(cfg.speed_max_mps >= cfg.speed_min_mps);
  TM_ASSERT(cfg.speed_min_mps > 0.0);
  auto draw_point = [&] {
    // Fixed draw order (x then y) -- part of the determinism contract.
    const double x = rng.uniform(cfg.area_min.x, cfg.area_max.x);
    const double y = rng.uniform(cfg.area_min.y, cfg.area_max.y);
    return Vec2{x, y};
  };
  auto draw_pause = [&] {
    return sim::from_seconds(rng.uniform(sim::to_seconds(cfg.pause_min),
                                         sim::to_seconds(cfg.pause_max)));
  };
  std::vector<MobilityModel::Waypoint> wps;
  std::size_t n = 0;
  Vec2 prev = draw_point();
  sim::TimePoint t = sim::kEpoch;
  const sim::Duration pause0 = draw_pause();
  wps.push_back(MobilityModel::Waypoint{cfg.label_prefix + std::to_string(n++),
                                        prev, 1.0, pause0});
  t += pause0;
  while (t - sim::kEpoch < cfg.horizon) {
    const Vec2 next = draw_point();
    const double speed = rng.uniform(cfg.speed_min_mps, cfg.speed_max_mps);
    const sim::Duration pause = draw_pause();
    t += sim::from_seconds(distance(prev, next) / speed) + pause;
    wps.push_back(MobilityModel::Waypoint{
        cfg.label_prefix + std::to_string(n++), next, speed, pause});
    prev = next;
    // A zero-area box with zero pauses never advances time; bail instead
    // of spinning (the path is stationary anyway).
    if (t == sim::kEpoch && wps.size() > 1) break;
  }
  return MobilityModel(std::move(wps));
}

std::size_t GroupMobility::add_member(Vec2 offset) {
  offsets_.push_back(offset);
  return offsets_.size() - 1;
}

void GroupMobility::add_ring(std::size_t count, double radius) {
  for (std::size_t i = 0; i < count; ++i) {
    const double theta =
        2.0 * 3.14159265358979323846 * static_cast<double>(i) /
        static_cast<double>(count == 0 ? 1 : count);
    add_member(Vec2{radius * std::cos(theta), radius * std::sin(theta)});
  }
}

Vec2 GroupMobility::position(std::size_t member, sim::TimePoint t) const {
  TM_ASSERT(member < offsets_.size());
  return leader_.position(t) + offsets_[member];
}

}  // namespace tracemod::wireless
