#include "wireless/geometry.hpp"

namespace tracemod::wireless {

namespace {
// Orientation of the ordered triplet (a, b, c):
// >0 counterclockwise, <0 clockwise, 0 collinear.
double cross(Vec2 a, Vec2 b, Vec2 c) {
  return (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
}

bool on_segment(Vec2 a, Vec2 b, Vec2 p) {
  return std::min(a.x, b.x) <= p.x && p.x <= std::max(a.x, b.x) &&
         std::min(a.y, b.y) <= p.y && p.y <= std::max(a.y, b.y);
}
}  // namespace

bool segments_intersect(Vec2 p1, Vec2 p2, Vec2 q1, Vec2 q2) {
  const double d1 = cross(q1, q2, p1);
  const double d2 = cross(q1, q2, p2);
  const double d3 = cross(p1, p2, q1);
  const double d4 = cross(p1, p2, q2);

  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  if (d1 == 0 && on_segment(q1, q2, p1)) return true;
  if (d2 == 0 && on_segment(q1, q2, p2)) return true;
  if (d3 == 0 && on_segment(p1, p2, q1)) return true;
  if (d4 == 0 && on_segment(p1, p2, q2)) return true;
  return false;
}

double wall_loss_db(const std::vector<Wall>& walls, Vec2 from, Vec2 to) {
  double loss = 0.0;
  for (const Wall& w : walls) {
    if (segments_intersect(from, to, w.a, w.b)) loss += w.loss_db;
  }
  return loss;
}

double zone_loss_db(const std::vector<Zone>& zones, Vec2 from, Vec2 to) {
  double loss = 0.0;
  for (const Zone& z : zones) {
    if (z.contains(from) || z.contains(to)) loss += z.extra_loss_db;
  }
  return loss;
}

}  // namespace tracemod::wireless
