// Radio propagation and WaveLAN signal reporting.
//
// Log-distance path loss with wall/zone attenuation, slow log-normal
// shadowing (an Ornstein-Uhlenbeck process, so consecutive samples are
// correlated the way real shadowing is), and per-packet fast fading.
// Received power maps onto WaveLAN driver units: signal level (~0-40,
// noise floor at 5 per the paper's figures), signal quality, silence level.
#pragma once

#include "sim/random.hpp"
#include "sim/time.hpp"
#include "wireless/geometry.hpp"

namespace tracemod::wireless {

struct SignalConfig {
  double ref_loss_db = 40.0;       ///< path loss at 1 m, 900 MHz-ish
  double path_exponent = 3.0;      ///< indoor-heavy environment
  double noise_floor_dbm = -92.0;
  double shadow_sigma_db = 3.0;    ///< stationary stddev of shadowing
  double shadow_tau_s = 8.0;       ///< OU relaxation time
  double fast_fade_sigma_db = 2.0; ///< per-packet fading
};

/// WaveLAN-style device readings (paper Section 3.1.1).
struct SignalInfo {
  double level = 0.0;    ///< signal level units; < 5 is background noise
  double quality = 0.0;  ///< 0..15
  double silence = 0.0;  ///< noise reading in the same units as level
};

class SignalModel {
 public:
  SignalModel(SignalConfig cfg, std::vector<Wall> walls, std::vector<Zone> zones,
              sim::Rng rng)
      : cfg_(cfg),
        walls_(std::move(walls)),
        zones_(std::move(zones)),
        rng_(rng) {}

  /// Deterministic median received power (no shadowing/fading).
  double median_rx_dbm(Vec2 from, double tx_dbm, Vec2 to) const;

  /// Received power including the current shadowing state; advances the
  /// shadowing process to time t first.
  double rx_dbm(Vec2 from, double tx_dbm, Vec2 to, sim::TimePoint t);

  /// One per-packet fast-fade draw (dB, zero mean).
  double fast_fade_db() { return rng_.normal(0.0, cfg_.fast_fade_sigma_db); }

  /// Maps received power to WaveLAN units.
  SignalInfo to_signal_info(double rx_dbm) const;

  double snr_db(double rx_dbm) const { return rx_dbm - cfg_.noise_floor_dbm; }
  const SignalConfig& config() const { return cfg_; }

  /// Current shadowing value (tests).
  double shadow_db() const { return shadow_db_; }

 private:
  void advance_shadow(sim::TimePoint t);

  SignalConfig cfg_;
  std::vector<Wall> walls_;
  std::vector<Zone> zones_;
  sim::Rng rng_;
  double shadow_db_ = 0.0;
  sim::TimePoint shadow_at_ = sim::kEpoch;
};

}  // namespace tracemod::wireless
