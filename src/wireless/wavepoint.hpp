// WavePoint base stations.
//
// A WavePoint bridges the wireless channel to a backbone Ethernet: frames
// received over the air are forwarded onto the wire, and wired frames
// addressed to an associated mobile are transmitted over the air.  The
// channel's roaming logic moves the mobile's wired-side address claim
// between WavePoints on handoff.
#pragma once

#include <string>

#include "net/ethernet.hpp"
#include "wireless/channel.hpp"

namespace tracemod::wireless {

class WavePoint : public BaseStation {
 public:
  WavePoint(WirelessChannel& channel, net::EthernetSegment& backbone,
            Vec2 pos, std::string name, double tx_power_dbm = 18.0)
      : channel_(channel),
        pos_(pos),
        name_(std::move(name)),
        tx_power_dbm_(tx_power_dbm),
        eth_(backbone, name_ + "-eth") {
    eth_.set_receive_callback([this](net::Packet pkt) {
      channel_.transmit_from_wavepoint(this, std::move(pkt));
    });
    channel_.add_wavepoint(this);
  }

  // --- Transceiver ---
  Vec2 position() const override { return pos_; }
  double tx_power_dbm() const override { return tx_power_dbm_; }
  void receive_frame(net::Packet pkt) override {
    // Air -> wire.
    eth_.transmit(std::move(pkt));
  }
  std::string label() const override { return name_; }

  // --- BaseStation ---
  void claim_mobile(net::IpAddress addr) override { eth_.claim_address(addr); }
  void unclaim_mobile(net::IpAddress addr) override {
    eth_.unclaim_address(addr);
  }

  net::EthernetDevice& ethernet() { return eth_; }

 private:
  WirelessChannel& channel_;
  Vec2 pos_;
  std::string name_;
  double tx_power_dbm_;
  net::EthernetDevice eth_;
};

}  // namespace tracemod::wireless
