#include "wireless/signal_model.hpp"

#include <algorithm>
#include <cmath>

namespace tracemod::wireless {

double SignalModel::median_rx_dbm(Vec2 from, double tx_dbm, Vec2 to) const {
  const double d = std::max(distance(from, to), 1.0);
  double loss = cfg_.ref_loss_db + 10.0 * cfg_.path_exponent * std::log10(d);
  loss += wall_loss_db(walls_, from, to);
  loss += zone_loss_db(zones_, from, to);
  return tx_dbm - loss;
}

void SignalModel::advance_shadow(sim::TimePoint t) {
  if (t <= shadow_at_) return;
  const double dt = sim::to_seconds(t - shadow_at_);
  shadow_at_ = t;
  // Exact OU update: x' = x e^{-dt/tau} + sigma sqrt(1 - e^{-2dt/tau}) N.
  const double decay = std::exp(-dt / cfg_.shadow_tau_s);
  const double noise_scale =
      cfg_.shadow_sigma_db * std::sqrt(std::max(0.0, 1.0 - decay * decay));
  shadow_db_ = shadow_db_ * decay + rng_.normal(0.0, noise_scale);
}

double SignalModel::rx_dbm(Vec2 from, double tx_dbm, Vec2 to,
                           sim::TimePoint t) {
  advance_shadow(t);
  return median_rx_dbm(from, tx_dbm, to) + shadow_db_;
}

SignalInfo SignalModel::to_signal_info(double rx) const {
  SignalInfo info;
  // Mapping chosen so that a strong in-room link (~ -55 dBm) reads ~19 and
  // the driver's noise threshold of 5 corresponds to ~ -82 dBm, matching
  // the dynamic range of the paper's Figures 2-5.
  info.level = std::clamp((rx + 92.0) / 2.0, 0.0, 40.0);
  const double snr = snr_db(rx);
  info.quality = std::clamp(snr / 2.5, 0.0, 15.0);
  info.silence = std::clamp((cfg_.noise_floor_dbm + 96.0) / 2.0, 0.0, 40.0);
  return info;
}

}  // namespace tracemod::wireless
