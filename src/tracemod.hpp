// Umbrella header: the tracemod public API.
//
// The three-phase methodology (paper Sections 2.2, 3):
//   collection   -> scenarios::LiveTestbed::collect_trace(), trace::*
//   distillation -> core::Distiller
//   modulation   -> core::Emulator / core::ModulationLayer
// plus the substrates and benchmark applications used by the evaluation.
#pragma once

// Simulation substrate.
#include "sim/clock_model.hpp"
#include "sim/event_loop.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/tick_clock.hpp"
#include "sim/time.hpp"

// Network and transport stacks.
#include "net/ethernet.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "transport/host.hpp"

// Wireless substrate.
#include "wireless/channel.hpp"
#include "wireless/mobility.hpp"
#include "wireless/wavelan_device.hpp"
#include "wireless/wavepoint.hpp"

// Trace collection.
#include "trace/ping.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_tap.hpp"

// The paper's contribution.
#include "core/distiller.hpp"
#include "core/emulator.hpp"
#include "core/model.hpp"
#include "core/modulation.hpp"

// Benchmarks and scenarios.
#include "apps/andrew.hpp"
#include "apps/ftp.hpp"
#include "apps/nfs.hpp"
#include "apps/synrgen.hpp"
#include "apps/web.hpp"
#include "scenarios/experiment.hpp"
