#include "scenarios/experiment.hpp"

#include <cmath>
#include <cstdio>

#include "sim/stats.hpp"

namespace tracemod::scenarios {

double measure_compensation_vb() { return core::Emulator::measure_physical_vb(); }

namespace {

/// The wall-clock watchdog engages only under supervision; a disabled
/// config keeps benchmark runs free of host-clock reads.
WatchdogConfig benchmark_watchdog(const ExperimentConfig& cfg) {
  WatchdogConfig wd;
  if (cfg.supervision.enabled) wd.wall_budget_s = cfg.supervision.wall_budget_s;
  wd.status = cfg.status;
  return wd;
}

}  // namespace

BenchmarkOutcome run_live_trial(const Scenario& scenario, BenchmarkKind kind,
                                const ExperimentConfig& cfg, int trial) {
  LiveTestbedConfig bed_cfg;
  bed_cfg.telemetry = cfg.telemetry;
  LiveTestbed bed(scenario, cfg.base_seed + static_cast<std::uint64_t>(trial),
                  bed_cfg);
  BenchmarkOutcome out = run_benchmark(kind, bed.mobile(), bed.server(),
                                       bed.server_addr(), bed.loop(),
                                       cfg.supervision.virtual_budget,
                                       benchmark_watchdog(cfg));
  if (cfg.telemetry.enabled) {
    out.telemetry = std::make_shared<sim::TelemetrySnapshot>(
        sim::capture_telemetry(bed.context()));
  }
  return out;
}

core::ReplayTrace collect_replay_trace(const Scenario& scenario,
                                       const ExperimentConfig& cfg,
                                       int trial) {
  // Collection runs interleave with live trials in the paper; distinct
  // seeds keep the traversals independent.
  const std::uint64_t seed =
      cfg.base_seed + 500 + static_cast<std::uint64_t>(trial);
  core::Distiller distiller;
  return distiller.distill(collect_raw_trace(scenario, seed));
}

BenchmarkOutcome run_modulated_trial(const core::ReplayTrace& trace,
                                     BenchmarkKind kind,
                                     const ExperimentConfig& cfg, int trial) {
  return run_modulated_benchmark(
      trace, kind, cfg.base_seed + 900 + static_cast<std::uint64_t>(trial),
      cfg.tick, cfg.compensate ? cfg.compensation_vb : 0.0, cfg.telemetry,
      cfg.supervision.virtual_budget, benchmark_watchdog(cfg));
}

BenchmarkOutcome run_ethernet_trial(BenchmarkKind kind,
                                    const ExperimentConfig& cfg, int trial) {
  // An empty replay trace leaves the modulation layer transparent: this
  // is the bare isolated Ethernet.
  return run_modulated_benchmark(
      core::ReplayTrace{}, kind,
      cfg.base_seed + 1300 + static_cast<std::uint64_t>(trial), cfg.tick, 0.0,
      cfg.telemetry, cfg.supervision.virtual_budget, benchmark_watchdog(cfg));
}

audit::FidelityReport run_trace_audit(const core::ReplayTrace& trace,
                                      const ExperimentConfig& cfg, int trial,
                                      const std::string& label) {
  audit::AuditConfig acfg;
  acfg.second_order.emulator.seed =
      cfg.base_seed + 1700 + static_cast<std::uint64_t>(trial);
  acfg.second_order.emulator.modulation.tick = cfg.tick;
  // The audit measures the *uncompensated* modulation contract, even when
  // trials run with delay compensation.  Compensation is an
  // endpoint-placement correction for benchmark traffic crossing the
  // physical testbed path; under the probe workload it makes the inbound
  // reply spacing straddle the round-to-nearest tick boundary (the shared
  // bottleneck queue compresses replies to ~s2*Vb apart), so recovered Vb
  // turns phase-bimodal and stops measuring the emulated bottleneck.  The
  // tick, the trace, and the seeds still come from the trial config, so a
  // misconfigured quantum or a corrupt trace is still caught.
  acfg.second_order.emulator.modulation.inbound_vb_compensation = 0.0;
  acfg.thresholds = cfg.audit.thresholds;
  return audit::audit_trace(trace, acfg, label);
}

std::vector<BenchmarkOutcome> run_live_trials(const Scenario& scenario,
                                              BenchmarkKind kind,
                                              const ExperimentConfig& cfg) {
  std::vector<BenchmarkOutcome> outcomes;
  for (int t = 0; t < cfg.trials; ++t) {
    outcomes.push_back(run_live_trial(scenario, kind, cfg, t));
  }
  return outcomes;
}

trace::CollectedTrace collect_raw_trace(const Scenario& scenario,
                                        std::uint64_t seed) {
  LiveTestbed bed(scenario, seed);
  return bed.collect_trace();
}

std::vector<core::ReplayTrace> collect_replay_traces(
    const Scenario& scenario, const ExperimentConfig& cfg) {
  std::vector<core::ReplayTrace> traces;
  for (int t = 0; t < cfg.trials; ++t) {
    traces.push_back(collect_replay_trace(scenario, cfg, t));
  }
  return traces;
}

BenchmarkOutcome run_modulated_benchmark(
    const core::ReplayTrace& trace, BenchmarkKind kind, std::uint64_t seed,
    sim::Duration tick, double inbound_vb_compensation,
    const sim::TelemetryConfig& telemetry, sim::Duration timeout,
    const WatchdogConfig& watchdog) {
  core::EmulatorConfig ecfg;
  ecfg.seed = seed;
  ecfg.modulation.tick = tick;
  ecfg.modulation.inbound_vb_compensation = inbound_vb_compensation;
  ecfg.telemetry = telemetry;
  core::Emulator emulator(trace, ecfg);
  BenchmarkOutcome out =
      run_benchmark(kind, emulator.mobile(), emulator.server(),
                    ecfg.server_addr, emulator.loop(), timeout, watchdog);
  if (telemetry.enabled) {
    out.telemetry = std::make_shared<sim::TelemetrySnapshot>(
        sim::capture_telemetry(emulator.context()));
  }
  return out;
}

std::vector<BenchmarkOutcome> run_modulated_trials(
    const std::vector<core::ReplayTrace>& traces, BenchmarkKind kind,
    const ExperimentConfig& cfg) {
  std::vector<BenchmarkOutcome> outcomes;
  int t = 0;
  for (const core::ReplayTrace& trace : traces) {
    outcomes.push_back(run_modulated_trial(trace, kind, cfg, t++));
  }
  return outcomes;
}

std::vector<BenchmarkOutcome> run_ethernet_trials(
    BenchmarkKind kind, const ExperimentConfig& cfg) {
  std::vector<BenchmarkOutcome> outcomes;
  for (int t = 0; t < cfg.trials; ++t) {
    outcomes.push_back(run_ethernet_trial(kind, cfg, t));
  }
  return outcomes;
}

std::vector<audit::FidelityReport> run_trace_audits(
    const std::vector<core::ReplayTrace>& traces, const ExperimentConfig& cfg,
    const std::string& label_prefix) {
  std::vector<audit::FidelityReport> reports;
  int t = 0;
  for (const core::ReplayTrace& trace : traces) {
    const std::string label = label_prefix.empty()
                                  ? "trial" + std::to_string(t)
                                  : label_prefix + "/trial" + std::to_string(t);
    reports.push_back(run_trace_audit(trace, cfg, t, label));
    ++t;
  }
  return reports;
}

std::vector<sim::LabeledTelemetry> labeled_telemetry(
    const std::vector<BenchmarkOutcome>& outcomes, const std::string& prefix) {
  std::vector<sim::LabeledTelemetry> out;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    if (outcomes[i].telemetry == nullptr) continue;
    out.push_back(sim::LabeledTelemetry{
        prefix + "/trial" + std::to_string(i), outcomes[i].telemetry});
  }
  return out;
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  s.n = values.size();
  s.mean = sim::mean_of(values);
  s.stddev = sim::stddev_of(values);
  return s;
}

Summary summarize_elapsed(const std::vector<BenchmarkOutcome>& outcomes) {
  std::vector<double> values;
  for (const auto& o : outcomes) values.push_back(o.elapsed_s);
  return summarize(values);
}

std::string cell(const Summary& s) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f (%.2f)", s.mean, s.stddev);
  return buf;
}

bool within_error(const Summary& a, const Summary& b) {
  return std::abs(a.mean - b.mean) <= a.stddev + b.stddev;
}

double off_by_factor(const Summary& a, const Summary& b) {
  const double sd_sum = a.stddev + b.stddev;
  if (sd_sum <= 0.0) return std::abs(a.mean - b.mean) > 0 ? 1e9 : 0.0;
  return std::abs(a.mean - b.mean) / sd_sum;
}

std::string check_label(const Summary& a, const Summary& b) {
  if (within_error(a, b)) return "within error";
  char buf[48];
  std::snprintf(buf, sizeof(buf), "off by %.2fx sd-sum", off_by_factor(a, b));
  return buf;
}

}  // namespace tracemod::scenarios
