#include "scenarios/scenario.hpp"

namespace tracemod::scenarios {

using wireless::MobilityModel;
using wireless::Vec2;
using wireless::Wall;
using wireless::Zone;

namespace {
MobilityModel::Waypoint wp(const char* label, double x, double y,
                           double speed = 1.4, sim::Duration pause = {}) {
  return MobilityModel::Waypoint{label, Vec2{x, y}, speed, pause};
}
}  // namespace

Scenario porter() {
  Scenario s;
  s.name = "Porter";
  // Wean Hall lobby (x < 40), outdoor patio (40..105), Porter Hall (x > 105)
  // with two interior walls deepening the building.
  s.walls = {
      Wall{{40, -15}, {40, 25}, 8.0},    // Wean exterior
      Wall{{105, -15}, {105, 25}, 8.0},  // Porter exterior
      Wall{{125, -15}, {125, 25}, 3.0},  // Porter interior
      Wall{{150, -15}, {150, 25}, 3.0},  // Porter interior, deeper
  };
  s.wavepoint_positions = {{20, 10}, {72, -10}, {112, 8}};
  s.path = {
      wp("x0", 5, 0, 1.4, sim::seconds(10)),  // Wean main lobby
      wp("x1", 45, 0),                        // exit onto the patio
      wp("x2", 65, 0),
      wp("x3", 90, 0),                        // patio end
      wp("x4", 110, 0),                       // Porter entrance
      wp("x5", 140, 0),
      wp("x6", 165, 0, 1.4, sim::seconds(10)),
  };
  s.signal.shadow_sigma_db = 2.5;  // busy indoor/outdoor boundary
  s.channel.slot = sim::microseconds(600);
  // Co-channel interference bursts: correlated errors that survive the
  // link-layer retries, producing Porter's occasional loss and the
  // retry-driven latency spikes of Figure 2.
  s.channel.burst_extra_err = 0.45;
  s.channel.burst_mean_on = sim::milliseconds(500);
  s.channel.burst_mean_off = sim::seconds(8);
  // WavePoint handoffs at the building boundaries: the driver defers
  // frames for the outage, releasing them in a burst afterwards.
  s.channel.handoff_outage = sim::milliseconds(200);
  s.collection_duration = MobilityModel(s.path).duration() + sim::seconds(10);
  return s;
}

Scenario flagstaff() {
  Scenario s;
  s.name = "Flagstaff";
  // Entirely outdoors in Schenley Park; WavePoints are inside buildings
  // along the north edge (one exterior wall in every path).
  s.walls = {
      Wall{{-20, 5}, {260, 5}, 5.0},
  };
  s.wavepoint_positions = {{20, 10}, {105, 12}, {190, 15}, {270, 18}};
  s.path = {
      wp("y0", 0, 0, 1.4, sim::seconds(5)),  // leaving Porter Hall
      wp("y1", 45, -12),
      wp("y2", 85, -15),
      wp("y3", 125, -15),
      wp("y4", 165, -18),
      wp("y5", 205, -22),  // Schenley Park edge done; around Flagstaff Hill
      wp("y6", 235, -35),
      wp("y7", 255, -45),
      wp("y8", 280, -58),
      wp("y9", 295, -64, 1.4, sim::seconds(5)),
  };
  s.signal.shadow_sigma_db = 1.2;  // open terrain: steadier shadowing
  // Outdoors: clean, uncontended channel at the edge of range.  Fewer
  // link-layer retries give up fast -- latency stays low while loss
  // climbs; the clean channel sustains a slightly better byte rate.
  s.channel.max_retries = 2;
  s.channel.slot = sim::microseconds(400);
  s.channel.effective_rate_bps = 2.0e6;
  s.collection_duration = MobilityModel(s.path).duration() + sim::seconds(10);
  return s;
}

Scenario wean() {
  Scenario s;
  s.name = "Wean";
  // Office with known-poor connectivity, a hallway, the elevator (a deep
  // attenuation zone), and the walk to the classroom near a second
  // WavePoint ("three floors up" collapses to the second WavePoint's cell).
  s.walls = {
      Wall{{10, 4}, {50, 4}, 4.0},  // hallway wall shielding the WavePoint
  };
  s.zones = {
      Zone{{0, 0}, 6.0, 6.0},      // the office
      Zone{{55, 0}, 3.5, 13.0},    // the elevator shaft
  };
  s.wavepoint_positions = {{30, 8}, {95, 8}};
  s.path = {
      wp("z0", 0, 0, 1.4, sim::seconds(15)),   // graduate student office
      wp("z1", 15, 0),
      wp("z2", 30, 0),
      wp("z3", 44, 0, 1.4, sim::seconds(35)),  // waiting for the elevator
      wp("z4", 55, 0, 1.4, sim::seconds(30)),  // riding three floors
      wp("z5", 62, 0),                         // stepping out
      wp("z6", 80, 0),
      wp("z7", 100, 0, 1.4, sim::seconds(10)), // the classroom
  };
  s.signal.shadow_sigma_db = 2.0;
  // Deep in the shaft the MAC fights hard before giving up: long retry
  // ladders produce the ~350 ms latency peak of Figure 4.
  s.channel.max_retries = 5;
  s.channel.max_backoff_exp = 8;
  s.channel.slot = sim::microseconds(700);
  s.collection_duration = MobilityModel(s.path).duration() + sim::seconds(10);
  return s;
}

Scenario chatterbox() {
  Scenario s;
  s.name = "Chatterbox";
  // A conference room: strong signal, no motion, five other laptops
  // hammering NFS through the same cell.
  s.wavepoint_positions = {{8, 9}};
  s.path = {wp("s0", 0, 0, 1.0, sim::seconds(300))};
  s.signal.shadow_sigma_db = 1.5;
  s.interferers = 5;
  s.collection_duration = sim::seconds(300);
  return s;
}

std::vector<Scenario> all_scenarios() {
  return {porter(), flagstaff(), wean(), chatterbox()};
}

}  // namespace tracemod::scenarios
