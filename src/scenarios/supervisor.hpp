// Resilient experiment supervision (failure model: DESIGN.md section 10).
//
// The paper's evaluation is a large trial matrix, and the north-star sweep
// runs arbitrarily many scenarios for hours.  At that scale a single bad
// trial must not destroy completed work, so every trial task can run under
// a guard that converts exceptions into structured TrialError records,
// watchdogs mark runaway worlds instead of hanging the sweep, failed
// trials can be retried with the identical derived seed (flaky-environment
// recovery) or a perturbed one, and completed cells persist to a
// CRC-framed journal so a killed sweep resumes where it stopped.
//
// Invariants:
//   - supervision off (the default) leaves every output bit-identical to a
//     config without this layer;
//   - serial and parallel supervised runs produce identical results AND
//     identical error records (the guard path is shared);
//   - a resumed sweep's final output is byte-identical to an uninterrupted
//     run of the same config.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "audit/auditor.hpp"
#include "core/model.hpp"
#include "scenarios/benchmarks.hpp"
#include "scenarios/scenario.hpp"
#include "sim/io/durable.hpp"
#include "sim/time.hpp"

namespace tracemod::sim {
class MetricsRegistry;
class TaskPool;  // sim/task_pool.hpp
}

namespace tracemod::scenarios {

struct ExperimentConfig;  // experiment.hpp (which includes this header)
using sim::TaskPool;

// --- error taxonomy ---------------------------------------------------------

enum class TrialErrorKind {
  kException,  ///< the trial threw; message carries what()
  kTimedOut,   ///< the virtual-time budget expired before completion
  kStuck,      ///< the wall-clock stuck-trial watchdog fired
};

const char* to_string(TrialErrorKind kind);

/// One failed trial, with enough identity to reproduce it: the taxonomy
/// kind, the derived seed of the failing attempt, and where in the matrix
/// it sat.  Recorded in CellResult/SweepResult instead of tearing down the
/// experiment engine.
struct TrialError {
  TrialErrorKind kind = TrialErrorKind::kException;
  std::string message;
  std::uint64_t seed = 0;  ///< derived seed of the failing attempt
  std::string scenario;    ///< empty for scenario-less phases (ethernet)
  std::string benchmark;   ///< to_string(BenchmarkKind), or "-" for collect
  std::string phase;       ///< live | collect | modulated | ethernet | audit
  int trial = -1;
  int attempts = 1;  ///< attempts consumed, including the first run

  friend bool operator==(const TrialError& a, const TrialError& b) {
    return a.kind == b.kind && a.message == b.message && a.seed == b.seed &&
           a.scenario == b.scenario && a.benchmark == b.benchmark &&
           a.phase == b.phase && a.trial == b.trial &&
           a.attempts == b.attempts;
  }
};

/// Renders "live trial 0 of Wean/web (seed 10000, attempt 1): <message>".
std::string describe(const TrialError& e);

// --- supervision policy -----------------------------------------------------

/// A deliberately poisoned trial for chaos drills: the guard throws before
/// running a matching attempt.  Empty strings and trial -1 are wildcards;
/// scenario/benchmark matching is case-insensitive.
struct InjectedTrialFault {
  std::string scenario;
  std::string benchmark;
  std::string phase;
  int trial = -1;
  /// The fault fires for the first `fail_attempts` attempts of the trial,
  /// so a supervised retry policy with max_retries >= fail_attempts
  /// recovers (deterministic flaky-trial drills).
  int fail_attempts = 1 << 20;  // effectively: always fails
};

struct SupervisionConfig {
  /// Master switch.  Off (default) keeps every code path and output
  /// bit-identical to a build without supervision.
  bool enabled = false;

  /// Bounded retry budget per trial.  Retries re-run the trial with the
  /// identical derived seed, so a deterministic failure reproduces and a
  /// flaky-environment failure (OOM, wall-clock stuck) gets a clean rerun.
  int max_retries = 0;

  /// When true, retry attempt k perturbs the config base seed by
  /// k * kRetrySeedStride before deriving trial seeds.  Explicitly
  /// NON-bit-identical: a recovered trial's outcome differs from what the
  /// original seed would have produced.  Off by default.
  bool perturb_retry_seed = false;

  /// Per-trial virtual-time budget for benchmark phases.  The default
  /// matches the historical run_benchmark deadline, so supervision-off
  /// configs are unchanged.  Expiry marks the outcome timed_out (never a
  /// silent partial result) and, under supervision, records a kTimedOut
  /// TrialError.
  sim::Duration virtual_budget = sim::seconds(7200);

  /// Wall-clock stuck-trial watchdog: a benchmark whose event loop keeps
  /// dispatching without finishing (e.g. a zero-delay livelock that never
  /// advances virtual time) is abandoned after this many host seconds and
  /// marked kStuck.  0 disables.  Checked on the event-loop-progress
  /// heartbeat inside the trial's own thread -- no extra threads per trial.
  double wall_budget_s = 0.0;

  /// Chaos drills (tests, CI, sweep --poison).
  std::vector<InjectedTrialFault> inject;
};

/// Base-seed stride between perturbed retry attempts (large odd constant so
/// perturbed trial seeds never collide with the sweep's derived seeds).
inline constexpr std::uint64_t kRetrySeedStride = 0x9E3779B97F4A7C15ull;

// --- supervision accounting -------------------------------------------------

struct SupervisionReport {
  /// Every unrecovered failure in the sweep, in deterministic matrix order
  /// (per scenario row: collect, then each cell's live+modulated, then
  /// audits; ethernet rows last).
  std::vector<TrialError> errors;
  std::uint64_t trials_failed = 0;     ///< trials that exhausted retries
  std::uint64_t trials_retried = 0;    ///< retry attempts consumed
  std::uint64_t trials_timed_out = 0;  ///< outcomes flagged timed_out/stuck

  bool degraded() const { return !errors.empty(); }
};

/// Publishes the three sweep.* counters (sim/metric_names.hpp) onto a
/// registry, so supervision results surface exactly like every other
/// degradation signal in the system.
void export_supervision_metrics(const SupervisionReport& report,
                                sim::MetricsRegistry& metrics);

// --- guarded trial building blocks ------------------------------------------

/// The result of running one trial under the supervision guard: the value
/// (default-constructed when every attempt failed), at most one TrialError,
/// and the retry attempts consumed.  With supervision disabled the guard is
/// transparent -- the underlying function runs once and exceptions
/// propagate unchanged.
template <typename T>
struct Guarded {
  T value{};
  std::optional<TrialError> error;
  int retries = 0;
};

Guarded<BenchmarkOutcome> guarded_live_trial(const Scenario& scenario,
                                             BenchmarkKind kind,
                                             const ExperimentConfig& cfg,
                                             int trial);
Guarded<core::ReplayTrace> guarded_replay_trace(const Scenario& scenario,
                                                const ExperimentConfig& cfg,
                                                int trial);
Guarded<BenchmarkOutcome> guarded_modulated_trial(
    const core::ReplayTrace& trace, BenchmarkKind kind,
    const ExperimentConfig& cfg, int trial);
Guarded<BenchmarkOutcome> guarded_ethernet_trial(BenchmarkKind kind,
                                                 const ExperimentConfig& cfg,
                                                 int trial);
Guarded<audit::FidelityReport> guarded_trace_audit(
    const core::ReplayTrace& trace, const ExperimentConfig& cfg, int trial,
    const std::string& label);

// --- result containers (shared by serial and parallel engines) --------------

/// One benchmark x scenario cell of the paper's evaluation.
struct CellResult {
  std::string scenario;
  BenchmarkKind kind{};
  std::vector<BenchmarkOutcome> live;
  std::vector<core::ReplayTrace> traces;
  std::vector<BenchmarkOutcome> modulated;
  /// One fidelity report per trace when cfg.audit.enabled; else empty.
  std::vector<audit::FidelityReport> audits;
  /// This cell's unrecovered failures (live errors in trial order, then
  /// modulated errors in trial order); empty unless supervision ran.
  std::vector<TrialError> errors;
  /// Retry attempts consumed by this cell's trials.
  std::uint64_t trials_retried = 0;
  /// True when the cell was reconstructed from a sweep journal rather than
  /// executed (traces/audits/telemetry are not journaled and stay empty).
  bool resumed = false;
};

struct SweepResult {
  /// Scenario-major, in the order given (the paper's table order).
  std::vector<CellResult> cells;
  /// Bare-Ethernet baseline rows, one vector per benchmark kind.
  std::vector<std::vector<BenchmarkOutcome>> ethernet;
  /// Per-scenario fidelity reports (traces are per scenario, so audits
  /// are too), scenario-major; empty unless cfg.audit.enabled.
  std::vector<std::vector<audit::FidelityReport>> audits;
  /// Aggregated supervision accounting; errors empty when nothing failed
  /// (and always empty with supervision disabled).
  SupervisionReport supervision;
};

/// Counts outcomes flagged timed_out/wall_stuck across the whole result
/// into supervision.trials_timed_out (partial results are never silently
/// clean -- satellite of DESIGN.md section 10).
void tally_timed_out_trials(SweepResult& result);

// --- sweep journal (resumable sweeps) ---------------------------------------

/// One journal entry: a completed cell (scenario + kind), a completed
/// bare-Ethernet row (ethernet=true), or a completed collection row
/// (collect=true, errors only).  Outcome summaries carry everything the
/// sweep's final table and JSON output need; traces, telemetry, and audits
/// are intentionally not journaled.
struct JournalCellRecord {
  std::string scenario;  ///< empty for ethernet rows
  BenchmarkKind kind{};
  bool ethernet = false;
  bool collect = false;
  std::vector<BenchmarkOutcome> live;       ///< outcomes (ethernet rows too)
  std::vector<BenchmarkOutcome> modulated;  ///< empty for ethernet/collect
  std::vector<TrialError> errors;
  std::uint64_t trials_retried = 0;
};

/// Fingerprint of everything that must match for journal records to be
/// reusable: seeds, trial count, tick, compensation, and the supervision
/// policy (including injected faults).  The scenario/benchmark matrix is
/// deliberately excluded -- records carry their own identity, so a journal
/// from an aborted subset resumes cleanly into a larger matrix.
std::uint32_t sweep_fingerprint(const ExperimentConfig& cfg);

enum class JournalStatus {
  kMissing,      ///< no file; start fresh
  kClean,        ///< every frame decoded and checksummed
  kDroppedTail,  ///< trailing partial frame dropped (kill mid-append)
  kCorrupt,      ///< checksum/structure failure on a complete frame
  kMismatch,     ///< config fingerprint differs; records unusable
};

const char* to_string(JournalStatus status);

struct JournalReadResult {
  JournalStatus status = JournalStatus::kMissing;
  std::string message;  ///< human-readable detail for warnings
  std::vector<JournalCellRecord> records;
};

/// Reads a sweep journal.  Never throws: any damage degrades the status
/// (callers warn and fall back to re-running; a corrupt journal must never
/// skip un-journaled work or crash the sweep).
JournalReadResult read_sweep_journal(const std::string& path,
                                     std::uint32_t fingerprint);

/// Appends CRC-framed records through the durable write plane
/// (sim/io/durable.hpp); each append is synced so a killed sweep loses at
/// most the record being written (which the reader then drops as a
/// partial tail), and a failed append is truncated back so it is never
/// visible as a committed frame.
class SweepJournalWriter {
 public:
  SweepJournalWriter() = default;

  /// Opens the journal.  fresh=true truncates and writes a new header;
  /// fresh=false appends to an existing clean journal.  Returns false on
  /// I/O failure (journaling is then disabled, never fatal).  plan ==
  /// nullptr consults the ambient fault plan (tests inject locally, CI
  /// chaos drills inject via TRACEMOD_IO_FAULTS).
  bool open(const std::string& path, std::uint32_t fingerprint, bool fresh,
            sim::io::FaultPlan* plan = nullptr);

  bool is_open() const { return writer_.is_open(); }

  /// True once any journal write failed: the sweep keeps computing but is
  /// no longer resumable, so drivers must report degradation (exit 5).
  bool degraded() const { return writer_.degraded(); }

  /// Human-readable cause of the degradation (empty when not degraded).
  std::string degraded_reason() const;

  void append(const JournalCellRecord& record);

  /// Final sync + close (safe to skip; the destructor closes without the
  /// final sync).
  void close();

 private:
  sim::io::AppendJournalWriter writer_;
};

/// Encodes/decodes one record's frame payload (exposed for tests and for
/// journal-rewrite after a dropped tail).
std::string encode_journal_record(const JournalCellRecord& record);

// --- supervised sweep driver ------------------------------------------------

struct SupervisedSweepOptions {
  /// Completed cells/rows are appended here as they finish (may be null).
  SweepJournalWriter* journal = nullptr;
  /// Records from a previous aborted run; matching cells/rows are skipped
  /// and reconstructed.  Resuming is incompatible with auditing and
  /// telemetry (neither is journaled); the sweep tool rejects the combo.
  const std::vector<JournalCellRecord>* resume = nullptr;
};

/// The full supervised trial matrix.  pool == nullptr runs the identical
/// task lists serially in deterministic order; the guard path is shared, so
/// serial and parallel runs produce identical results and identical error
/// records.  With cfg.supervision.enabled == false, behaves like the
/// unsupervised engine except that per-task exceptions still surface (the
/// task pool rethrows a combined error).
SweepResult run_supervised_sweep(TaskPool* pool,
                                 const std::vector<Scenario>& scenarios,
                                 const std::vector<BenchmarkKind>& kinds,
                                 const ExperimentConfig& cfg,
                                 const SupervisedSweepOptions& opts = {});

/// One supervised cell (collection + live + modulated [+ audits]); the
/// cell's errors include its collection failures.
CellResult run_supervised_experiment(TaskPool* pool, const Scenario& scenario,
                                     BenchmarkKind kind,
                                     const ExperimentConfig& cfg);

/// Writes the sweep's machine-readable result (schema "tracemod-sweep-v1",
/// documented in EXPERIMENTS.md): per-cell outcome summaries with the
/// degraded-cell fields (completed/timed_out/wall_stuck flags, error
/// records) plus the supervision counters.
void write_sweep_json(std::ostream& out, const SweepResult& result,
                      const ExperimentConfig& cfg,
                      const std::vector<BenchmarkKind>& kinds);

}  // namespace tracemod::scenarios
