#include "scenarios/benchmarks.hpp"

#include <optional>

#include "apps/ftp.hpp"
#include "apps/web.hpp"

namespace tracemod::scenarios {

const char* to_string(BenchmarkKind kind) {
  switch (kind) {
    case BenchmarkKind::kWeb: return "web";
    case BenchmarkKind::kFtpSend: return "ftp-send";
    case BenchmarkKind::kFtpRecv: return "ftp-recv";
    case BenchmarkKind::kAndrew: return "andrew";
  }
  return "?";
}

namespace {

/// Steps the loop until the flag is set, the virtual deadline passes, or
/// the event queue drains.  (run_until alone would simulate hours of idle
/// interferer traffic after the benchmark finishes.)
void run_until_done(sim::EventLoop& loop, const bool& done,
                    sim::Duration timeout) {
  const sim::TimePoint deadline = loop.now() + timeout;
  while (!done && loop.now() < deadline) {
    if (!loop.step()) break;
  }
}

}  // namespace

BenchmarkOutcome run_benchmark(BenchmarkKind kind, transport::Host& client,
                               transport::Host& server_host,
                               net::IpAddress server_addr,
                               sim::EventLoop& loop, sim::Duration timeout) {
  BenchmarkOutcome outcome;
  bool done = false;

  switch (kind) {
    case BenchmarkKind::kWeb: {
      apps::WebServer server(server_host, 80);
      sim::Rng trace_rng(kWorkloadSeed);
      apps::WebBenchmark bench(client, net::Endpoint{server_addr, 80},
                               apps::make_search_task_trace(trace_rng,
                                                            kWebObjects));
      bench.start([&](apps::WebBenchmark::Result r) {
        outcome.ok = r.ok;
        outcome.elapsed_s = sim::to_seconds(r.elapsed);
        done = true;
      });
      run_until_done(loop, done, timeout);
      break;
    }
    case BenchmarkKind::kFtpSend:
    case BenchmarkKind::kFtpRecv: {
      apps::FtpServer server(server_host);
      apps::FtpClient ftp(client, net::Endpoint{server_addr, 21});
      auto on_done = [&](apps::FtpResult r) {
        outcome.ok = r.ok;
        outcome.elapsed_s = sim::to_seconds(r.elapsed);
        done = true;
      };
      if (kind == BenchmarkKind::kFtpSend) {
        ftp.store(kFtpBytes, on_done);
      } else {
        ftp.fetch(kFtpBytes, on_done);
      }
      run_until_done(loop, done, timeout);
      break;
    }
    case BenchmarkKind::kAndrew: {
      apps::AndrewConfig cfg;
      apps::NfsServer server(server_host, 2049);
      apps::populate_andrew_tree(server, cfg, kWorkloadSeed);
      apps::AndrewBenchmark bench(client, net::Endpoint{server_addr, 2049},
                                  cfg, kWorkloadSeed);
      bench.start([&](apps::AndrewResult r) {
        outcome.ok = r.ok;
        outcome.elapsed_s = r.total_s;
        outcome.andrew = r;
        done = true;
      });
      run_until_done(loop, done, timeout);
      break;
    }
  }
  return outcome;
}

}  // namespace tracemod::scenarios
