#include "scenarios/benchmarks.hpp"

#include <chrono>
#include <optional>

#include "apps/ftp.hpp"
#include "apps/web.hpp"

namespace tracemod::scenarios {

const char* to_string(BenchmarkKind kind) {
  switch (kind) {
    case BenchmarkKind::kWeb: return "web";
    case BenchmarkKind::kFtpSend: return "ftp-send";
    case BenchmarkKind::kFtpRecv: return "ftp-recv";
    case BenchmarkKind::kAndrew: return "andrew";
  }
  return "?";
}

const char* to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kCompleted: return "completed";
    case RunStatus::kDrained: return "drained";
    case RunStatus::kVirtualDeadline: return "virtual-deadline";
    case RunStatus::kWallStuck: return "wall-stuck";
  }
  return "?";
}

RunStatus run_event_loop_until(sim::EventLoop& loop, const bool& done,
                               sim::Duration timeout,
                               const WatchdogConfig& watchdog) {
  const sim::TimePoint deadline = loop.now() + timeout;
  const bool wall = watchdog.wall_budget_s > 0.0;
  sim::status::StatusBoard* status =
      watchdog.status != nullptr && watchdog.status->enabled()
          ? watchdog.status
          : nullptr;
  // One combined heartbeat predicate: with neither the watchdog nor status
  // enabled the loop body is branch-for-branch the historical one, so
  // status-off runs dispatch the identical sequence.
  const bool beat = wall || status != nullptr;
  const std::uint64_t interval =
      watchdog.wall_check_interval > 0 ? watchdog.wall_check_interval : 1;
  const auto wall_start = std::chrono::steady_clock::now();
  std::uint64_t steps = 0;
  std::uint64_t reported = 0;
  // Reconciles the heartbeat's stride-granular accounting with the loop's
  // true end state, so the final published snapshot is exact.
  const auto leave = [&](RunStatus st) {
    if (status != nullptr && steps > reported) {
      status->note_dispatch(steps - reported, sim::to_seconds(loop.now()));
    }
    return st;
  };
  while (!done) {
    if (loop.now() >= deadline) return leave(RunStatus::kVirtualDeadline);
    if (!loop.step()) return leave(RunStatus::kDrained);
    if (beat) ++steps;
    if (beat && steps % interval == 0) {
      if (status != nullptr) {
        status->note_dispatch(steps - reported, sim::to_seconds(loop.now()));
        reported = steps;
      }
      if (wall) {
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - wall_start;
        if (elapsed.count() > watchdog.wall_budget_s) {
          return leave(RunStatus::kWallStuck);
        }
      }
    }
  }
  return leave(RunStatus::kCompleted);
}

BenchmarkOutcome run_benchmark(BenchmarkKind kind, transport::Host& client,
                               transport::Host& server_host,
                               net::IpAddress server_addr,
                               sim::EventLoop& loop, sim::Duration timeout,
                               const WatchdogConfig& watchdog) {
  BenchmarkOutcome outcome;
  bool done = false;
  RunStatus status = RunStatus::kDrained;

  switch (kind) {
    case BenchmarkKind::kWeb: {
      apps::WebServer server(server_host, 80);
      sim::Rng trace_rng(kWorkloadSeed);
      apps::WebBenchmark bench(client, net::Endpoint{server_addr, 80},
                               apps::make_search_task_trace(trace_rng,
                                                            kWebObjects));
      bench.start([&](apps::WebBenchmark::Result r) {
        outcome.ok = r.ok;
        outcome.elapsed_s = sim::to_seconds(r.elapsed);
        done = true;
      });
      status = run_event_loop_until(loop, done, timeout, watchdog);
      break;
    }
    case BenchmarkKind::kFtpSend:
    case BenchmarkKind::kFtpRecv: {
      apps::FtpServer server(server_host);
      apps::FtpClient ftp(client, net::Endpoint{server_addr, 21});
      auto on_done = [&](apps::FtpResult r) {
        outcome.ok = r.ok;
        outcome.elapsed_s = sim::to_seconds(r.elapsed);
        done = true;
      };
      if (kind == BenchmarkKind::kFtpSend) {
        ftp.store(kFtpBytes, on_done);
      } else {
        ftp.fetch(kFtpBytes, on_done);
      }
      status = run_event_loop_until(loop, done, timeout, watchdog);
      break;
    }
    case BenchmarkKind::kAndrew: {
      apps::AndrewConfig cfg;
      apps::NfsServer server(server_host, 2049);
      apps::populate_andrew_tree(server, cfg, kWorkloadSeed);
      apps::AndrewBenchmark bench(client, net::Endpoint{server_addr, 2049},
                                  cfg, kWorkloadSeed);
      bench.start([&](apps::AndrewResult r) {
        outcome.ok = r.ok;
        outcome.elapsed_s = r.total_s;
        outcome.andrew = r;
        done = true;
      });
      status = run_event_loop_until(loop, done, timeout, watchdog);
      break;
    }
  }
  outcome.completed = status == RunStatus::kCompleted;
  outcome.timed_out = status == RunStatus::kVirtualDeadline;
  outcome.wall_stuck = status == RunStatus::kWallStuck;
  return outcome;
}

}  // namespace tracemod::scenarios
