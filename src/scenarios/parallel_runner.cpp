#include "scenarios/parallel_runner.hpp"


namespace tracemod::scenarios {

std::vector<BenchmarkOutcome> ParallelRunner::live_trials(
    const Scenario& scenario, BenchmarkKind kind,
    const ExperimentConfig& cfg) {
  return parallel_index_map<BenchmarkOutcome>(
      pool_, static_cast<std::size_t>(cfg.trials), [&](std::size_t t) {
        return run_live_trial(scenario, kind, cfg, static_cast<int>(t));
      });
}

std::vector<core::ReplayTrace> ParallelRunner::replay_traces(
    const Scenario& scenario, const ExperimentConfig& cfg) {
  return parallel_index_map<core::ReplayTrace>(
      pool_, static_cast<std::size_t>(cfg.trials), [&](std::size_t t) {
        return collect_replay_trace(scenario, cfg, static_cast<int>(t));
      });
}

std::vector<BenchmarkOutcome> ParallelRunner::modulated_trials(
    const std::vector<core::ReplayTrace>& traces, BenchmarkKind kind,
    const ExperimentConfig& cfg) {
  return parallel_index_map<BenchmarkOutcome>(
      pool_, traces.size(), [&](std::size_t t) {
        return run_modulated_trial(traces[t], kind, cfg,
                                   static_cast<int>(t));
      });
}

std::vector<BenchmarkOutcome> ParallelRunner::ethernet_trials(
    BenchmarkKind kind, const ExperimentConfig& cfg) {
  return parallel_index_map<BenchmarkOutcome>(
      pool_, static_cast<std::size_t>(cfg.trials), [&](std::size_t t) {
        return run_ethernet_trial(kind, cfg, static_cast<int>(t));
      });
}

std::vector<audit::FidelityReport> ParallelRunner::trace_audits(
    const std::vector<core::ReplayTrace>& traces, const ExperimentConfig& cfg,
    const std::string& label_prefix) {
  return parallel_index_map<audit::FidelityReport>(
      pool_, traces.size(), [&](std::size_t t) {
        const std::string label =
            label_prefix.empty()
                ? "trial" + std::to_string(t)
                : label_prefix + "/trial" + std::to_string(t);
        return run_trace_audit(traces[t], cfg, static_cast<int>(t), label);
      });
}

ParallelRunner::CellResult ParallelRunner::experiment(
    const Scenario& scenario, BenchmarkKind kind,
    const ExperimentConfig& cfg) {
  if (cfg.supervision.enabled) {
    return run_supervised_experiment(&pool_, scenario, kind, cfg);
  }
  CellResult cell;
  cell.scenario = scenario.name;
  cell.kind = kind;
  const auto n = static_cast<std::size_t>(cfg.trials);
  cell.live.resize(n);
  cell.traces.resize(n);

  // Phase one: live trials and collection traversals are independent of
  // each other; fan them out as one task list.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(2 * n);
  for (std::size_t t = 0; t < n; ++t) {
    tasks.push_back([&, t] {
      cell.live[t] = run_live_trial(scenario, kind, cfg, static_cast<int>(t));
    });
    tasks.push_back([&, t] {
      cell.traces[t] =
          collect_replay_trace(scenario, cfg, static_cast<int>(t));
    });
  }
  pool_.run_all(std::move(tasks));

  // Phase two: one modulated trial per distilled trace, and -- when
  // auditing is on -- one closed-loop fidelity audit per trace, all
  // independent worlds fanned out together.
  cell.modulated.resize(n);
  if (cfg.audit.enabled) cell.audits.resize(n);
  std::vector<std::function<void()>> phase_two;
  phase_two.reserve(cfg.audit.enabled ? 2 * n : n);
  for (std::size_t t = 0; t < n; ++t) {
    phase_two.push_back([&, t] {
      cell.modulated[t] =
          run_modulated_trial(cell.traces[t], kind, cfg, static_cast<int>(t));
    });
    if (cfg.audit.enabled) {
      phase_two.push_back([&, t] {
        cell.audits[t] =
            run_trace_audit(cell.traces[t], cfg, static_cast<int>(t),
                            "trial" + std::to_string(t));
      });
    }
  }
  pool_.run_all(std::move(phase_two));
  return cell;
}

ParallelRunner::SweepResult ParallelRunner::sweep(
    const std::vector<Scenario>& scenarios,
    const std::vector<BenchmarkKind>& kinds, const ExperimentConfig& cfg) {
  if (cfg.supervision.enabled) {
    return run_supervised_sweep(&pool_, scenarios, kinds, cfg);
  }
  SweepResult result;
  const auto n = static_cast<std::size_t>(cfg.trials);
  const std::size_t ns = scenarios.size();
  const std::size_t nk = kinds.size();

  result.cells.resize(ns * nk);
  result.ethernet.assign(nk, std::vector<BenchmarkOutcome>(n));
  // Traces are per scenario (benchmark-independent) and shared by that
  // scenario's row of cells, exactly as the serial figure drivers reuse
  // one collect_replay_traces() call per scenario.
  std::vector<std::vector<core::ReplayTrace>> traces(
      ns, std::vector<core::ReplayTrace>(n));

  std::vector<std::function<void()>> phase_one;
  phase_one.reserve(ns * n + ns * nk * n + nk * n);
  for (std::size_t s = 0; s < ns; ++s) {
    for (std::size_t t = 0; t < n; ++t) {
      phase_one.push_back([&, s, t] {
        traces[s][t] =
            collect_replay_trace(scenarios[s], cfg, static_cast<int>(t));
      });
    }
    for (std::size_t k = 0; k < nk; ++k) {
      CellResult& cell = result.cells[s * nk + k];
      cell.scenario = scenarios[s].name;
      cell.kind = kinds[k];
      cell.live.resize(n);
      for (std::size_t t = 0; t < n; ++t) {
        phase_one.push_back([&, s, k, t] {
          result.cells[s * nk + k].live[t] = run_live_trial(
              scenarios[s], kinds[k], cfg, static_cast<int>(t));
        });
      }
    }
  }
  for (std::size_t k = 0; k < nk; ++k) {
    for (std::size_t t = 0; t < n; ++t) {
      phase_one.push_back([&, k, t] {
        result.ethernet[k][t] =
            run_ethernet_trial(kinds[k], cfg, static_cast<int>(t));
      });
    }
  }
  pool_.run_all(std::move(phase_one));

  std::vector<std::function<void()>> phase_two;
  phase_two.reserve(ns * nk * n + (cfg.audit.enabled ? ns * n : 0));
  for (std::size_t s = 0; s < ns; ++s) {
    for (std::size_t k = 0; k < nk; ++k) {
      CellResult& cell = result.cells[s * nk + k];
      cell.traces = traces[s];
      cell.modulated.resize(n);
      for (std::size_t t = 0; t < n; ++t) {
        phase_two.push_back([&, s, k, t] {
          CellResult& c = result.cells[s * nk + k];
          c.modulated[t] =
              run_modulated_trial(c.traces[t], kinds[k], cfg,
                                  static_cast<int>(t));
        });
      }
    }
  }
  // Audits ride on the per-scenario traces, one report per traversal; the
  // audit worlds are independent of every trial world.
  if (cfg.audit.enabled) {
    result.audits.assign(ns, std::vector<audit::FidelityReport>(n));
    for (std::size_t s = 0; s < ns; ++s) {
      for (std::size_t t = 0; t < n; ++t) {
        phase_two.push_back([&, s, t] {
          result.audits[s][t] = run_trace_audit(
              traces[s][t], cfg, static_cast<int>(t),
              scenarios[s].name + "/trial" + std::to_string(t));
        });
      }
    }
  }
  pool_.run_all(std::move(phase_two));
  // Partial results are never silently clean, supervised or not.
  tally_timed_out_trials(result);
  return result;
}

ParallelRunner::SweepResult ParallelRunner::supervised_sweep(
    const std::vector<Scenario>& scenarios,
    const std::vector<BenchmarkKind>& kinds, const ExperimentConfig& cfg,
    const SupervisedSweepOptions& opts) {
  return run_supervised_sweep(&pool_, scenarios, kinds, cfg, opts);
}

}  // namespace tracemod::scenarios
