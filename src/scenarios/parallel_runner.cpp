#include "scenarios/parallel_runner.hpp"

#include <atomic>
#include <exception>
#include <stdexcept>

#include "sim/assert.hpp"

namespace tracemod::scenarios {

namespace {
/// True on threads owned by a TaskPool; run_all asserts against it because
/// a worker calling run_all would wait forever for its own slot.
thread_local bool tl_pool_worker = false;
}  // namespace

TaskPool::TaskPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void TaskPool::worker_main() {
  tl_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stop_ and drained
      task = std::move(pending_.front());
      pending_.pop_front();
    }
    task();
  }
}

void TaskPool::run_all(std::vector<std::function<void()>> tasks) {
  TM_ASSERT(!tl_pool_worker);  // reentrant run_all deadlocks on its own slot
  if (tasks.empty()) return;

  struct Batch {
    std::atomic<std::size_t> remaining;
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::mutex err_mu;
    std::vector<std::exception_ptr> errors;
  };
  Batch batch;
  batch.remaining.store(tasks.size());
  const std::size_t total = tasks.size();

  {
    std::lock_guard<std::mutex> lock(mu_);
    TM_ASSERT(!stop_);
    for (auto& t : tasks) {
      pending_.push_back([&batch, fn = std::move(t)] {
        try {
          fn();
        } catch (...) {
          std::lock_guard<std::mutex> el(batch.err_mu);
          batch.errors.push_back(std::current_exception());
        }
        // Signal under the lock so the waiter cannot miss the last task
        // finishing between its predicate check and its wait.
        std::lock_guard<std::mutex> dl(batch.done_mu);
        batch.remaining.fetch_sub(1);
        batch.done_cv.notify_all();
      });
    }
  }
  work_cv_.notify_all();

  std::unique_lock<std::mutex> lock(batch.done_mu);
  batch.done_cv.wait(lock, [&batch] { return batch.remaining.load() == 0; });
  if (batch.errors.empty()) return;
  if (batch.errors.size() == 1) std::rethrow_exception(batch.errors.front());
  // Several tasks failed; none may be silently swallowed.  The combined
  // error carries the count and one representative message (the first
  // collected, which depends on scheduling).
  std::string first_what = "unknown exception";
  try {
    std::rethrow_exception(batch.errors.front());
  } catch (const std::exception& e) {
    first_what = e.what();
  } catch (...) {
  }
  throw std::runtime_error(std::to_string(batch.errors.size()) + " of " +
                           std::to_string(total) +
                           " tasks failed; first: " + first_what);
}

std::vector<BenchmarkOutcome> ParallelRunner::live_trials(
    const Scenario& scenario, BenchmarkKind kind,
    const ExperimentConfig& cfg) {
  return parallel_index_map<BenchmarkOutcome>(
      pool_, static_cast<std::size_t>(cfg.trials), [&](std::size_t t) {
        return run_live_trial(scenario, kind, cfg, static_cast<int>(t));
      });
}

std::vector<core::ReplayTrace> ParallelRunner::replay_traces(
    const Scenario& scenario, const ExperimentConfig& cfg) {
  return parallel_index_map<core::ReplayTrace>(
      pool_, static_cast<std::size_t>(cfg.trials), [&](std::size_t t) {
        return collect_replay_trace(scenario, cfg, static_cast<int>(t));
      });
}

std::vector<BenchmarkOutcome> ParallelRunner::modulated_trials(
    const std::vector<core::ReplayTrace>& traces, BenchmarkKind kind,
    const ExperimentConfig& cfg) {
  return parallel_index_map<BenchmarkOutcome>(
      pool_, traces.size(), [&](std::size_t t) {
        return run_modulated_trial(traces[t], kind, cfg,
                                   static_cast<int>(t));
      });
}

std::vector<BenchmarkOutcome> ParallelRunner::ethernet_trials(
    BenchmarkKind kind, const ExperimentConfig& cfg) {
  return parallel_index_map<BenchmarkOutcome>(
      pool_, static_cast<std::size_t>(cfg.trials), [&](std::size_t t) {
        return run_ethernet_trial(kind, cfg, static_cast<int>(t));
      });
}

std::vector<audit::FidelityReport> ParallelRunner::trace_audits(
    const std::vector<core::ReplayTrace>& traces, const ExperimentConfig& cfg,
    const std::string& label_prefix) {
  return parallel_index_map<audit::FidelityReport>(
      pool_, traces.size(), [&](std::size_t t) {
        const std::string label =
            label_prefix.empty()
                ? "trial" + std::to_string(t)
                : label_prefix + "/trial" + std::to_string(t);
        return run_trace_audit(traces[t], cfg, static_cast<int>(t), label);
      });
}

ParallelRunner::CellResult ParallelRunner::experiment(
    const Scenario& scenario, BenchmarkKind kind,
    const ExperimentConfig& cfg) {
  if (cfg.supervision.enabled) {
    return run_supervised_experiment(&pool_, scenario, kind, cfg);
  }
  CellResult cell;
  cell.scenario = scenario.name;
  cell.kind = kind;
  const auto n = static_cast<std::size_t>(cfg.trials);
  cell.live.resize(n);
  cell.traces.resize(n);

  // Phase one: live trials and collection traversals are independent of
  // each other; fan them out as one task list.
  std::vector<std::function<void()>> tasks;
  tasks.reserve(2 * n);
  for (std::size_t t = 0; t < n; ++t) {
    tasks.push_back([&, t] {
      cell.live[t] = run_live_trial(scenario, kind, cfg, static_cast<int>(t));
    });
    tasks.push_back([&, t] {
      cell.traces[t] =
          collect_replay_trace(scenario, cfg, static_cast<int>(t));
    });
  }
  pool_.run_all(std::move(tasks));

  // Phase two: one modulated trial per distilled trace, and -- when
  // auditing is on -- one closed-loop fidelity audit per trace, all
  // independent worlds fanned out together.
  cell.modulated.resize(n);
  if (cfg.audit.enabled) cell.audits.resize(n);
  std::vector<std::function<void()>> phase_two;
  phase_two.reserve(cfg.audit.enabled ? 2 * n : n);
  for (std::size_t t = 0; t < n; ++t) {
    phase_two.push_back([&, t] {
      cell.modulated[t] =
          run_modulated_trial(cell.traces[t], kind, cfg, static_cast<int>(t));
    });
    if (cfg.audit.enabled) {
      phase_two.push_back([&, t] {
        cell.audits[t] =
            run_trace_audit(cell.traces[t], cfg, static_cast<int>(t),
                            "trial" + std::to_string(t));
      });
    }
  }
  pool_.run_all(std::move(phase_two));
  return cell;
}

ParallelRunner::SweepResult ParallelRunner::sweep(
    const std::vector<Scenario>& scenarios,
    const std::vector<BenchmarkKind>& kinds, const ExperimentConfig& cfg) {
  if (cfg.supervision.enabled) {
    return run_supervised_sweep(&pool_, scenarios, kinds, cfg);
  }
  SweepResult result;
  const auto n = static_cast<std::size_t>(cfg.trials);
  const std::size_t ns = scenarios.size();
  const std::size_t nk = kinds.size();

  result.cells.resize(ns * nk);
  result.ethernet.assign(nk, std::vector<BenchmarkOutcome>(n));
  // Traces are per scenario (benchmark-independent) and shared by that
  // scenario's row of cells, exactly as the serial figure drivers reuse
  // one collect_replay_traces() call per scenario.
  std::vector<std::vector<core::ReplayTrace>> traces(
      ns, std::vector<core::ReplayTrace>(n));

  std::vector<std::function<void()>> phase_one;
  phase_one.reserve(ns * n + ns * nk * n + nk * n);
  for (std::size_t s = 0; s < ns; ++s) {
    for (std::size_t t = 0; t < n; ++t) {
      phase_one.push_back([&, s, t] {
        traces[s][t] =
            collect_replay_trace(scenarios[s], cfg, static_cast<int>(t));
      });
    }
    for (std::size_t k = 0; k < nk; ++k) {
      CellResult& cell = result.cells[s * nk + k];
      cell.scenario = scenarios[s].name;
      cell.kind = kinds[k];
      cell.live.resize(n);
      for (std::size_t t = 0; t < n; ++t) {
        phase_one.push_back([&, s, k, t] {
          result.cells[s * nk + k].live[t] = run_live_trial(
              scenarios[s], kinds[k], cfg, static_cast<int>(t));
        });
      }
    }
  }
  for (std::size_t k = 0; k < nk; ++k) {
    for (std::size_t t = 0; t < n; ++t) {
      phase_one.push_back([&, k, t] {
        result.ethernet[k][t] =
            run_ethernet_trial(kinds[k], cfg, static_cast<int>(t));
      });
    }
  }
  pool_.run_all(std::move(phase_one));

  std::vector<std::function<void()>> phase_two;
  phase_two.reserve(ns * nk * n + (cfg.audit.enabled ? ns * n : 0));
  for (std::size_t s = 0; s < ns; ++s) {
    for (std::size_t k = 0; k < nk; ++k) {
      CellResult& cell = result.cells[s * nk + k];
      cell.traces = traces[s];
      cell.modulated.resize(n);
      for (std::size_t t = 0; t < n; ++t) {
        phase_two.push_back([&, s, k, t] {
          CellResult& c = result.cells[s * nk + k];
          c.modulated[t] =
              run_modulated_trial(c.traces[t], kinds[k], cfg,
                                  static_cast<int>(t));
        });
      }
    }
  }
  // Audits ride on the per-scenario traces, one report per traversal; the
  // audit worlds are independent of every trial world.
  if (cfg.audit.enabled) {
    result.audits.assign(ns, std::vector<audit::FidelityReport>(n));
    for (std::size_t s = 0; s < ns; ++s) {
      for (std::size_t t = 0; t < n; ++t) {
        phase_two.push_back([&, s, t] {
          result.audits[s][t] = run_trace_audit(
              traces[s][t], cfg, static_cast<int>(t),
              scenarios[s].name + "/trial" + std::to_string(t));
        });
      }
    }
  }
  pool_.run_all(std::move(phase_two));
  // Partial results are never silently clean, supervised or not.
  tally_timed_out_trials(result);
  return result;
}

ParallelRunner::SweepResult ParallelRunner::supervised_sweep(
    const std::vector<Scenario>& scenarios,
    const std::vector<BenchmarkKind>& kinds, const ExperimentConfig& cfg,
    const SupervisedSweepOptions& opts) {
  return run_supervised_sweep(&pool_, scenarios, kinds, cfg, opts);
}

}  // namespace tracemod::scenarios
