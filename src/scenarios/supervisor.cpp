#include "scenarios/supervisor.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cstring>
#include <fstream>
#include <functional>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "scenarios/experiment.hpp"
#include "scenarios/parallel_runner.hpp"
#include "sim/sim_context.hpp"
#include "sim/metric_names.hpp"
#include "trace/crc32c.hpp"
#include "version.hpp"

namespace tracemod::scenarios {

const char* to_string(TrialErrorKind kind) {
  switch (kind) {
    case TrialErrorKind::kException: return "exception";
    case TrialErrorKind::kTimedOut: return "timed-out";
    case TrialErrorKind::kStuck: return "stuck";
  }
  return "?";
}

std::string describe(const TrialError& e) {
  std::string where = e.scenario.empty() ? std::string() : e.scenario;
  if (!e.benchmark.empty() && e.benchmark != "-") {
    where += (where.empty() ? "" : "/") + e.benchmark;
  }
  std::string out = "[";
  out += to_string(e.kind);
  out += "] ";
  out += e.phase;
  out += " trial " + std::to_string(e.trial);
  if (!where.empty()) out += " of " + where;
  out += " (seed " + std::to_string(e.seed) + ", attempts " +
         std::to_string(e.attempts) + "): " + e.message;
  return out;
}

void export_supervision_metrics(const SupervisionReport& report,
                                sim::MetricsRegistry& metrics) {
  metrics.counter(sim::metric::kSweepTrialsFailed) += report.trials_failed;
  metrics.counter(sim::metric::kSweepTrialsRetried) += report.trials_retried;
  metrics.counter(sim::metric::kSweepTrialsTimedOut) +=
      report.trials_timed_out;
  // Ride-along: the write plane's process-global health (io.write_errors,
  // io.degraded_planes, ...) lands on the same registry.
  sim::io::export_io_metrics(metrics);
}

// --- guard ------------------------------------------------------------------

namespace {

struct PhaseInfo {
  const char* name;
  std::uint64_t seed_offset;  ///< derived-seed offset (experiment.hpp)
};

constexpr PhaseInfo kPhaseLive{"live", 0};
constexpr PhaseInfo kPhaseCollect{"collect", 500};
constexpr PhaseInfo kPhaseModulated{"modulated", 900};
constexpr PhaseInfo kPhaseEthernet{"ethernet", 1300};
constexpr PhaseInfo kPhaseAudit{"audit", 1700};

bool iequals(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool fault_matches(const InjectedTrialFault& f, const std::string& scenario,
                   const char* phase, const std::string& benchmark, int trial,
                   int attempt) {
  if (!f.scenario.empty() && !iequals(f.scenario, scenario)) return false;
  if (!f.benchmark.empty() && !iequals(f.benchmark, benchmark)) return false;
  if (!f.phase.empty() && f.phase != phase) return false;
  if (f.trial >= 0 && f.trial != trial) return false;
  return attempt < f.fail_attempts;
}

template <typename T>
bool outcome_timed_out(const T&) { return false; }
bool outcome_timed_out(const BenchmarkOutcome& o) { return o.timed_out; }
template <typename T>
bool outcome_wall_stuck(const T&) { return false; }
bool outcome_wall_stuck(const BenchmarkOutcome& o) { return o.wall_stuck; }

/// The shared guard path: runs one trial phase with crash isolation and the
/// bounded retry policy.  Serial and parallel engines both funnel through
/// here, which is what keeps their error records identical.
template <typename T, typename Fn>
Guarded<T> run_guarded_impl(const ExperimentConfig& cfg,
                            const PhaseInfo& phase,
                            const std::string& scenario,
                            const std::string& benchmark, int trial,
                            Fn&& run) {
  Guarded<T> g;
  const SupervisionConfig& sup = cfg.supervision;
  if (!sup.enabled) {
    // Transparent: one attempt, exceptions propagate to the task pool.
    g.value = run(cfg);
    return g;
  }
  const int max_attempts = 1 + std::max(0, sup.max_retries);
  std::optional<TrialError> last;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    ExperimentConfig acfg = cfg;
    if (sup.perturb_retry_seed && attempt > 0) {
      acfg.base_seed =
          cfg.base_seed + kRetrySeedStride * static_cast<std::uint64_t>(attempt);
    }
    const std::uint64_t seed =
        acfg.base_seed + phase.seed_offset + static_cast<std::uint64_t>(trial);
    auto record = [&](TrialErrorKind kind, std::string message) {
      last = TrialError{kind,  std::move(message), seed,  scenario,
                        benchmark, phase.name,     trial, attempt + 1};
    };
    try {
      for (const InjectedTrialFault& f : sup.inject) {
        if (fault_matches(f, scenario, phase.name, benchmark, trial,
                          attempt)) {
          throw std::runtime_error("injected trial fault");
        }
      }
      T value = run(acfg);
      if (outcome_wall_stuck(value)) {
        record(TrialErrorKind::kStuck,
               "wall-clock watchdog fired after " +
                   std::to_string(sup.wall_budget_s) + " s");
        g.retries = attempt;
        continue;  // a stuck wall clock is an environment flake: retry
      }
      if (outcome_timed_out(value)) {
        record(TrialErrorKind::kTimedOut,
               "virtual-time budget (" +
                   std::to_string(sim::to_seconds(sup.virtual_budget)) +
                   " s) expired");
        g.retries = attempt;
        if (!sup.perturb_retry_seed) {
          // Identical seed => identical timeout; keep the partial outcome.
          g.value = std::move(value);
          g.error = std::move(last);
          return g;
        }
        continue;
      }
      g.value = std::move(value);
      g.retries = attempt;
      g.error.reset();
      return g;
    } catch (const std::exception& e) {
      record(TrialErrorKind::kException, e.what());
    } catch (...) {
      record(TrialErrorKind::kException, "unknown exception");
    }
    g.retries = attempt;
  }
  g.retries = max_attempts - 1;
  g.error = std::move(last);
  return g;
}

/// run_guarded_impl plus status accounting.  Serial and parallel engines
/// both funnel through here, so the status board sees identical counter
/// streams from either; with status off this is one never-taken branch.
template <typename T, typename Fn>
Guarded<T> run_guarded(const ExperimentConfig& cfg, const PhaseInfo& phase,
                       const std::string& scenario,
                       const std::string& benchmark, int trial, Fn&& run) {
  Guarded<T> g = run_guarded_impl<T>(cfg, phase, scenario, benchmark, trial,
                                     std::forward<Fn>(run));
  if (sim::status::StatusBoard* board = cfg.status;
      board != nullptr && board->enabled()) {
    board->add_units_done(1);
    if (g.retries > 0) {
      board->add_retries(static_cast<std::uint64_t>(g.retries));
    }
    if (g.error) board->add_errors(1);
    board->maybe_publish();
  }
  return g;
}

}  // namespace

Guarded<BenchmarkOutcome> guarded_live_trial(const Scenario& scenario,
                                             BenchmarkKind kind,
                                             const ExperimentConfig& cfg,
                                             int trial) {
  return run_guarded<BenchmarkOutcome>(
      cfg, kPhaseLive, scenario.name, to_string(kind), trial,
      [&](const ExperimentConfig& c) {
        return run_live_trial(scenario, kind, c, trial);
      });
}

Guarded<core::ReplayTrace> guarded_replay_trace(const Scenario& scenario,
                                                const ExperimentConfig& cfg,
                                                int trial) {
  return run_guarded<core::ReplayTrace>(
      cfg, kPhaseCollect, scenario.name, "-", trial,
      [&](const ExperimentConfig& c) {
        return collect_replay_trace(scenario, c, trial);
      });
}

Guarded<BenchmarkOutcome> guarded_modulated_trial(
    const core::ReplayTrace& trace, BenchmarkKind kind,
    const ExperimentConfig& cfg, int trial) {
  return run_guarded<BenchmarkOutcome>(
      cfg, kPhaseModulated, "", to_string(kind), trial,
      [&](const ExperimentConfig& c) {
        return run_modulated_trial(trace, kind, c, trial);
      });
}

Guarded<BenchmarkOutcome> guarded_ethernet_trial(BenchmarkKind kind,
                                                 const ExperimentConfig& cfg,
                                                 int trial) {
  return run_guarded<BenchmarkOutcome>(
      cfg, kPhaseEthernet, "", to_string(kind), trial,
      [&](const ExperimentConfig& c) {
        return run_ethernet_trial(kind, c, trial);
      });
}

Guarded<audit::FidelityReport> guarded_trace_audit(
    const core::ReplayTrace& trace, const ExperimentConfig& cfg, int trial,
    const std::string& label) {
  return run_guarded<audit::FidelityReport>(
      cfg, kPhaseAudit, label, "-", trial, [&](const ExperimentConfig& c) {
        return run_trace_audit(trace, c, trial, label);
      });
}

void tally_timed_out_trials(SweepResult& result) {
  std::uint64_t n = 0;
  auto scan = [&n](const std::vector<BenchmarkOutcome>& outcomes) {
    for (const BenchmarkOutcome& o : outcomes) {
      if (o.timed_out || o.wall_stuck) ++n;
    }
  };
  for (const CellResult& c : result.cells) {
    scan(c.live);
    scan(c.modulated);
  }
  for (const auto& row : result.ethernet) scan(row);
  result.supervision.trials_timed_out = n;
}

// --- sweep journal ----------------------------------------------------------

namespace {

constexpr char kJournalMagic[4] = {'T', 'M', 'S', 'J'};
constexpr std::uint16_t kJournalVersion = 1;
constexpr std::size_t kJournalHeaderSize = 4 + 2 + 4;  // magic|version|fp
constexpr std::size_t kFrameHeaderSize = 1 + 4 + 4;    // type|len|crc
constexpr std::uint32_t kMaxFramePayload = 64u << 20;

enum RecordType : std::uint8_t {
  kRecordCell = 1,
  kRecordEthernet = 2,
  kRecordCollect = 3,
};

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}
void put_u16(std::string& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) put_u8(out, (v >> (8 * i)) & 0xff);
}
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(out, (v >> (8 * i)) & 0xff);
}
void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(out, (v >> (8 * i)) & 0xff);
}
void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}
void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

/// Bounds-checked little-endian cursor; decode errors throw and the reader
/// maps them to JournalStatus::kCorrupt.
struct Cursor {
  const char* p;
  const char* end;
  void need(std::size_t n) const {
    if (static_cast<std::size_t>(end - p) < n) {
      throw std::runtime_error("journal record truncated mid-field");
    }
  }
  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(*p++);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(*p++)) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(*p++)) << (8 * i);
    }
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t n = u32();
    if (n > kMaxFramePayload) {
      throw std::runtime_error("journal string length implausible");
    }
    need(n);
    std::string s(p, n);
    p += n;
    return s;
  }
};

void put_outcome(std::string& out, const BenchmarkOutcome& o) {
  std::uint8_t flags = 0;
  if (o.ok) flags |= 1u << 0;
  if (o.completed) flags |= 1u << 1;
  if (o.timed_out) flags |= 1u << 2;
  if (o.wall_stuck) flags |= 1u << 3;
  if (o.andrew.ok) flags |= 1u << 4;
  put_u8(out, flags);
  put_f64(out, o.elapsed_s);
  put_f64(out, o.andrew.makedir_s);
  put_f64(out, o.andrew.copy_s);
  put_f64(out, o.andrew.scandir_s);
  put_f64(out, o.andrew.readall_s);
  put_f64(out, o.andrew.make_s);
  put_f64(out, o.andrew.total_s);
  put_u64(out, o.andrew.rpc_calls);
  put_u64(out, o.andrew.rpc_retransmissions);
}

BenchmarkOutcome get_outcome(Cursor& c) {
  BenchmarkOutcome o;
  const std::uint8_t flags = c.u8();
  o.ok = flags & (1u << 0);
  o.completed = flags & (1u << 1);
  o.timed_out = flags & (1u << 2);
  o.wall_stuck = flags & (1u << 3);
  o.andrew.ok = flags & (1u << 4);
  o.elapsed_s = c.f64();
  o.andrew.makedir_s = c.f64();
  o.andrew.copy_s = c.f64();
  o.andrew.scandir_s = c.f64();
  o.andrew.readall_s = c.f64();
  o.andrew.make_s = c.f64();
  o.andrew.total_s = c.f64();
  o.andrew.rpc_calls = c.u64();
  o.andrew.rpc_retransmissions = c.u64();
  return o;
}

void put_error(std::string& out, const TrialError& e) {
  put_u8(out, static_cast<std::uint8_t>(e.kind));
  put_u64(out, e.seed);
  put_u32(out, static_cast<std::uint32_t>(e.trial));
  put_u32(out, static_cast<std::uint32_t>(e.attempts));
  put_str(out, e.scenario);
  put_str(out, e.benchmark);
  put_str(out, e.phase);
  put_str(out, e.message);
}

TrialError get_error(Cursor& c) {
  TrialError e;
  const std::uint8_t kind = c.u8();
  if (kind > static_cast<std::uint8_t>(TrialErrorKind::kStuck)) {
    throw std::runtime_error("journal error record has unknown kind");
  }
  e.kind = static_cast<TrialErrorKind>(kind);
  e.seed = c.u64();
  e.trial = static_cast<int>(c.u32());
  e.attempts = static_cast<int>(c.u32());
  e.scenario = c.str();
  e.benchmark = c.str();
  e.phase = c.str();
  e.message = c.str();
  return e;
}

void put_outcomes(std::string& out, const std::vector<BenchmarkOutcome>& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const BenchmarkOutcome& o : v) put_outcome(out, o);
}

std::vector<BenchmarkOutcome> get_outcomes(Cursor& c) {
  const std::uint32_t n = c.u32();
  if (n > 1u << 20) {
    throw std::runtime_error("journal outcome count implausible");
  }
  std::vector<BenchmarkOutcome> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(get_outcome(c));
  return v;
}

void put_errors(std::string& out, const std::vector<TrialError>& v) {
  put_u32(out, static_cast<std::uint32_t>(v.size()));
  for (const TrialError& e : v) put_error(out, e);
}

std::vector<TrialError> get_errors(Cursor& c) {
  const std::uint32_t n = c.u32();
  if (n > 1u << 20) {
    throw std::runtime_error("journal error count implausible");
  }
  std::vector<TrialError> v;
  v.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) v.push_back(get_error(c));
  return v;
}

std::uint8_t record_type(const JournalCellRecord& r) {
  if (r.collect) return kRecordCollect;
  if (r.ethernet) return kRecordEthernet;
  return kRecordCell;
}

JournalCellRecord decode_journal_record(std::uint8_t type,
                                        const std::string& payload) {
  Cursor c{payload.data(), payload.data() + payload.size()};
  JournalCellRecord r;
  r.collect = type == kRecordCollect;
  r.ethernet = type == kRecordEthernet;
  r.scenario = c.str();
  const std::uint8_t kind = c.u8();
  if (kind > static_cast<std::uint8_t>(BenchmarkKind::kAndrew)) {
    throw std::runtime_error("journal record has unknown benchmark kind");
  }
  r.kind = static_cast<BenchmarkKind>(kind);
  r.live = get_outcomes(c);
  r.modulated = get_outcomes(c);
  r.errors = get_errors(c);
  r.trials_retried = c.u64();
  if (c.p != c.end) {
    throw std::runtime_error("journal record has trailing bytes");
  }
  return r;
}

std::string frame_record(const JournalCellRecord& r) {
  const std::string payload = encode_journal_record(r);
  const std::uint8_t type = record_type(r);
  std::string frame;
  put_u8(frame, type);
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  // Like trace format v2, the CRC covers the type byte followed by the
  // payload, so a flipped type and a flipped length are both caught.
  std::uint32_t crc = trace::crc32c(&type, 1);
  crc = trace::crc32c(payload.data(), payload.size(), crc);
  put_u32(frame, crc);
  frame += payload;
  return frame;
}

}  // namespace

std::string encode_journal_record(const JournalCellRecord& r) {
  std::string out;
  put_str(out, r.scenario);
  put_u8(out, static_cast<std::uint8_t>(r.kind));
  put_outcomes(out, r.live);
  put_outcomes(out, r.modulated);
  put_errors(out, r.errors);
  put_u64(out, r.trials_retried);
  return out;
}

std::uint32_t sweep_fingerprint(const ExperimentConfig& cfg) {
  std::string bytes;
  put_u64(bytes, cfg.base_seed);
  put_u32(bytes, static_cast<std::uint32_t>(cfg.trials));
  put_u64(bytes, static_cast<std::uint64_t>(cfg.tick.count()));
  put_u8(bytes, cfg.compensate ? 1 : 0);
  put_f64(bytes, cfg.compensation_vb);
  put_u8(bytes, cfg.supervision.enabled ? 1 : 0);
  put_u32(bytes, static_cast<std::uint32_t>(cfg.supervision.max_retries));
  put_u8(bytes, cfg.supervision.perturb_retry_seed ? 1 : 0);
  put_u64(bytes,
          static_cast<std::uint64_t>(cfg.supervision.virtual_budget.count()));
  put_f64(bytes, cfg.supervision.wall_budget_s);
  for (const InjectedTrialFault& f : cfg.supervision.inject) {
    put_str(bytes, f.scenario);
    put_str(bytes, f.benchmark);
    put_str(bytes, f.phase);
    put_u32(bytes, static_cast<std::uint32_t>(f.trial));
    put_u32(bytes, static_cast<std::uint32_t>(f.fail_attempts));
  }
  return trace::crc32c(bytes.data(), bytes.size());
}

const char* to_string(JournalStatus status) {
  switch (status) {
    case JournalStatus::kMissing: return "missing";
    case JournalStatus::kClean: return "clean";
    case JournalStatus::kDroppedTail: return "dropped-tail";
    case JournalStatus::kCorrupt: return "corrupt";
    case JournalStatus::kMismatch: return "mismatch";
  }
  return "?";
}

JournalReadResult read_sweep_journal(const std::string& path,
                                     std::uint32_t fingerprint) {
  JournalReadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    result.status = JournalStatus::kMissing;
    return result;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());

  auto corrupt = [&](const std::string& why) {
    result.status = JournalStatus::kCorrupt;
    result.message = why;
    result.records.clear();
    return result;
  };

  if (bytes.size() < kJournalHeaderSize) {
    return corrupt("journal smaller than its header");
  }
  if (std::memcmp(bytes.data(), kJournalMagic, sizeof(kJournalMagic)) != 0) {
    return corrupt("bad journal magic");
  }
  Cursor header{bytes.data() + 4, bytes.data() + kJournalHeaderSize};
  std::uint16_t version = header.u8();
  version |= static_cast<std::uint16_t>(header.u8()) << 8;
  if (version != kJournalVersion) {
    return corrupt("unsupported journal version " + std::to_string(version));
  }
  const std::uint32_t fp = header.u32();
  if (fp != fingerprint) {
    result.status = JournalStatus::kMismatch;
    result.message = "journal config fingerprint differs from this run";
    return result;
  }

  result.status = JournalStatus::kClean;
  std::size_t off = kJournalHeaderSize;
  while (off < bytes.size()) {
    const std::size_t remaining = bytes.size() - off;
    if (remaining < kFrameHeaderSize) {
      result.status = JournalStatus::kDroppedTail;
      result.message = "dropped partial trailing frame header at offset " +
                       std::to_string(off);
      return result;
    }
    Cursor fh{bytes.data() + off, bytes.data() + off + kFrameHeaderSize};
    const std::uint8_t type = fh.u8();
    const std::uint32_t len = fh.u32();
    const std::uint32_t crc = fh.u32();
    if (len > kMaxFramePayload) {
      return corrupt("frame length implausible at offset " +
                     std::to_string(off));
    }
    if (remaining - kFrameHeaderSize < len) {
      // A killed sweep's final append: the frame is declared but its
      // payload never fully landed.  Drop it, keep the intact prefix.
      result.status = JournalStatus::kDroppedTail;
      result.message = "dropped partial trailing record at offset " +
                       std::to_string(off);
      return result;
    }
    const char* payload = bytes.data() + off + kFrameHeaderSize;
    std::uint32_t actual = trace::crc32c(&type, 1);
    actual = trace::crc32c(payload, len, actual);
    if (actual != crc) {
      return corrupt("record checksum mismatch at offset " +
                     std::to_string(off));
    }
    if (type != kRecordCell && type != kRecordEthernet &&
        type != kRecordCollect) {
      return corrupt("unknown record type at offset " + std::to_string(off));
    }
    try {
      result.records.push_back(
          decode_journal_record(type, std::string(payload, len)));
    } catch (const std::exception& e) {
      return corrupt(e.what());
    }
    off += kFrameHeaderSize + len;
  }
  return result;
}

bool SweepJournalWriter::open(const std::string& path,
                              std::uint32_t fingerprint, bool fresh,
                              sim::io::FaultPlan* plan) {
  // Cells complete at minutes-apart cadence, so every frame is synced
  // (sync_every_frames = 1): a resumed sweep trusts everything the writer
  // acknowledged, even across power loss.
  sim::io::AppendJournalWriter::Options options;
  options.sync_every_frames = 1;
  options.plan = plan;
  sim::io::IoResult r = sim::io::IoResult::success();
  if (fresh) {
    std::string header(kJournalMagic, sizeof(kJournalMagic));
    put_u16(header, kJournalVersion);
    put_u32(header, fingerprint);
    r = writer_.open_fresh(path, header, options);
  } else {
    r = writer_.open_existing(path, options);
  }
  return r.ok;
}

std::string SweepJournalWriter::degraded_reason() const {
  if (!writer_.degraded()) return {};
  return writer_.last_error().describe();
}

void SweepJournalWriter::append(const JournalCellRecord& record) {
  if (!writer_.is_open()) return;
  const std::string frame = frame_record(record);
  // A failed append is truncated back to the previous frame boundary and
  // the writer degrades: journaling stops, the sweep keeps computing, and
  // no partially-written record can masquerade as a committed cell.
  const sim::io::IoResult r = writer_.append(frame);
  if (!r.ok) {
    sim::io::note_degraded_plane("sweep-journal", writer_.last_error());
  }
}

void SweepJournalWriter::close() {
  if (writer_.is_open()) (void)writer_.close();
}

// --- supervised sweep driver ------------------------------------------------

namespace {

void run_tasks(TaskPool* pool, std::vector<std::function<void()>> tasks) {
  if (pool != nullptr) {
    pool->run_all(std::move(tasks));
  } else {
    for (auto& t : tasks) t();
  }
}

const JournalCellRecord* find_record(
    const std::vector<JournalCellRecord>* resume, bool ethernet, bool collect,
    const std::string& scenario, BenchmarkKind kind) {
  if (resume == nullptr) return nullptr;
  for (const JournalCellRecord& r : *resume) {
    if (r.ethernet != ethernet || r.collect != collect) continue;
    if (!ethernet && !iequals(r.scenario, scenario)) continue;
    if (!collect && r.kind != kind) continue;
    if (collect && !iequals(r.scenario, scenario)) continue;
    return &r;
  }
  return nullptr;
}

struct RowTraces {
  std::vector<Guarded<core::ReplayTrace>> traces;
  std::vector<TrialError> errors;
  std::uint64_t retried = 0;
  bool collected = false;  ///< ran this session (vs. resumed/skipped)
};

/// Collects one scenario's replay traces under the guard (n parallel
/// traversals), accumulating the row's collect errors in trial order.
RowTraces collect_row(TaskPool* pool, const Scenario& scenario,
                      const ExperimentConfig& cfg) {
  const auto n = static_cast<std::size_t>(cfg.trials);
  RowTraces row;
  row.traces.resize(n);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    tasks.push_back([&, t] {
      row.traces[t] = guarded_replay_trace(scenario, cfg, static_cast<int>(t));
    });
  }
  run_tasks(pool, std::move(tasks));
  for (const auto& g : row.traces) {
    if (g.error) row.errors.push_back(*g.error);
    row.retried += static_cast<std::uint64_t>(g.retries);
  }
  row.collected = true;
  return row;
}

/// Runs one cell's live + modulated trials (2n tasks, all independent
/// worlds) against already-collected traces.  A trial whose trace failed to
/// collect is skipped: its outcome stays default (completed == false) and
/// the collect error already records the root cause.
void run_cell_trials(TaskPool* pool, const Scenario& scenario,
                     BenchmarkKind kind, const ExperimentConfig& cfg,
                     const RowTraces& row, CellResult& cell) {
  const auto n = static_cast<std::size_t>(cfg.trials);
  cell.live.resize(n);
  cell.modulated.resize(n);
  std::vector<Guarded<BenchmarkOutcome>> live_g(n), mod_g(n);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(2 * n);
  for (std::size_t t = 0; t < n; ++t) {
    tasks.push_back([&, t] {
      live_g[t] = guarded_live_trial(scenario, kind, cfg, static_cast<int>(t));
    });
    if (!row.traces[t].error) {
      tasks.push_back([&, t] {
        mod_g[t] = guarded_modulated_trial(row.traces[t].value, kind, cfg,
                                           static_cast<int>(t));
      });
    }
  }
  run_tasks(pool, std::move(tasks));
  cell.traces.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    cell.live[t] = std::move(live_g[t].value);
    cell.modulated[t] = std::move(mod_g[t].value);
    cell.traces[t] = row.traces[t].value;
    cell.trials_retried += static_cast<std::uint64_t>(live_g[t].retries) +
                           static_cast<std::uint64_t>(mod_g[t].retries);
  }
  for (const auto& g : live_g) {
    if (g.error) cell.errors.push_back(*g.error);
  }
  for (const auto& g : mod_g) {
    if (g.error) cell.errors.push_back(*g.error);
  }
}

void restore_cell(const JournalCellRecord& rec, CellResult& cell) {
  cell.live = rec.live;
  cell.modulated = rec.modulated;
  cell.errors = rec.errors;
  cell.trials_retried = rec.trials_retried;
  cell.resumed = true;
}

}  // namespace

SweepResult run_supervised_sweep(TaskPool* pool,
                                 const std::vector<Scenario>& scenarios,
                                 const std::vector<BenchmarkKind>& kinds,
                                 const ExperimentConfig& cfg,
                                 const SupervisedSweepOptions& opts) {
  SweepResult result;
  const auto n = static_cast<std::size_t>(cfg.trials);
  const std::size_t ns = scenarios.size();
  const std::size_t nk = kinds.size();
  result.cells.resize(ns * nk);
  result.ethernet.assign(nk, {});
  if (cfg.audit.enabled) result.audits.assign(ns, {});
  SupervisionReport& report = result.supervision;

  // Status totals mirror the resume logic below exactly, so a resumed
  // sweep's board counts only the work it will actually redo.
  sim::status::StatusBoard* board =
      cfg.status != nullptr && cfg.status->enabled() ? cfg.status : nullptr;
  if (board != nullptr) {
    std::uint64_t total = 0;
    for (std::size_t s = 0; s < ns; ++s) {
      bool missing = cfg.audit.enabled;
      for (std::size_t k = 0; k < nk; ++k) {
        if (find_record(opts.resume, false, false, scenarios[s].name,
                        kinds[k]) == nullptr) {
          missing = true;
          total += 2 * n;  // live + modulated trials of the cell
        }
      }
      if (missing) total += n;                 // collection traversals
      if (cfg.audit.enabled) total += n;       // per-trace audits
    }
    for (std::size_t k = 0; k < nk; ++k) {
      if (find_record(opts.resume, true, false, "", kinds[k]) == nullptr) {
        total += n;                            // ethernet baseline trials
      }
    }
    board->set_units("trials", static_cast<double>(total));
    board->publish_now();
  }

  for (std::size_t s = 0; s < ns; ++s) {
    const Scenario& scenario = scenarios[s];
    bool row_missing = false;
    for (std::size_t k = 0; k < nk; ++k) {
      if (find_record(opts.resume, false, false, scenario.name, kinds[k]) ==
          nullptr) {
        row_missing = true;
      }
    }
    // Audits ride on freshly collected traces, so auditing forces a
    // collection even for fully resumed rows (the sweep tool rejects
    // resume + audit; this keeps the library deterministic regardless).
    if (cfg.audit.enabled) row_missing = true;

    RowTraces row;
    row.traces.resize(n);
    if (row_missing) {
      if (board != nullptr) board->set_phase("collect:" + scenario.name);
      row = collect_row(pool, scenario, cfg);
      if (opts.journal != nullptr) {
        JournalCellRecord rec;
        rec.collect = true;
        rec.scenario = scenario.name;
        rec.errors = row.errors;
        rec.trials_retried = row.retried;
        opts.journal->append(rec);
      }
    } else if (const JournalCellRecord* rec = find_record(
                   opts.resume, false, true, scenario.name, kinds.front())) {
      // Fully resumed row: reuse the journaled collection accounting so
      // the supervision summary matches the uninterrupted run.
      row.errors = rec->errors;
      row.retried = rec->trials_retried;
    }
    report.errors.insert(report.errors.end(), row.errors.begin(),
                         row.errors.end());
    report.trials_retried += row.retried;

    for (std::size_t k = 0; k < nk; ++k) {
      CellResult& cell = result.cells[s * nk + k];
      cell.scenario = scenario.name;
      cell.kind = kinds[k];
      if (const JournalCellRecord* rec = find_record(
              opts.resume, false, false, scenario.name, kinds[k])) {
        restore_cell(*rec, cell);
      } else {
        if (board != nullptr) {
          board->set_phase("bench:" + scenario.name + "/" +
                           to_string(kinds[k]));
        }
        run_cell_trials(pool, scenario, kinds[k], cfg, row, cell);
        if (opts.journal != nullptr) {
          JournalCellRecord rec;
          rec.scenario = cell.scenario;
          rec.kind = cell.kind;
          rec.live = cell.live;
          rec.modulated = cell.modulated;
          rec.errors = cell.errors;
          rec.trials_retried = cell.trials_retried;
          opts.journal->append(rec);
        }
      }
      report.errors.insert(report.errors.end(), cell.errors.begin(),
                           cell.errors.end());
      report.trials_retried += cell.trials_retried;
    }

    if (cfg.audit.enabled) {
      if (board != nullptr) board->set_phase("audit:" + scenario.name);
      result.audits[s].resize(n);
      std::vector<Guarded<audit::FidelityReport>> audit_g(n);
      std::vector<std::function<void()>> tasks;
      for (std::size_t t = 0; t < n; ++t) {
        // A skipped audit (errored trace) is still accounted so a finished
        // sweep reports units_done == units_total.
        if (row.traces[t].error) {
          if (board != nullptr) board->add_units_done(1);
          continue;
        }
        tasks.push_back([&, t] {
          audit_g[t] = guarded_trace_audit(
              row.traces[t].value, cfg, static_cast<int>(t),
              scenario.name + "/trial" + std::to_string(t));
        });
      }
      run_tasks(pool, std::move(tasks));
      for (std::size_t t = 0; t < n; ++t) {
        result.audits[s][t] = std::move(audit_g[t].value);
        report.trials_retried += static_cast<std::uint64_t>(audit_g[t].retries);
        if (audit_g[t].error) report.errors.push_back(*audit_g[t].error);
      }
    }
  }

  if (board != nullptr) board->set_phase("ethernet");
  for (std::size_t k = 0; k < nk; ++k) {
    if (const JournalCellRecord* rec =
            find_record(opts.resume, true, false, "", kinds[k])) {
      result.ethernet[k] = rec->live;
      report.errors.insert(report.errors.end(), rec->errors.begin(),
                           rec->errors.end());
      report.trials_retried += rec->trials_retried;
      continue;
    }
    std::vector<Guarded<BenchmarkOutcome>> eth_g(n);
    std::vector<std::function<void()>> tasks;
    tasks.reserve(n);
    for (std::size_t t = 0; t < n; ++t) {
      tasks.push_back([&, t] {
        eth_g[t] = guarded_ethernet_trial(kinds[k], cfg, static_cast<int>(t));
      });
    }
    run_tasks(pool, std::move(tasks));
    JournalCellRecord rec;
    rec.ethernet = true;
    rec.kind = kinds[k];
    result.ethernet[k].resize(n);
    for (std::size_t t = 0; t < n; ++t) {
      result.ethernet[k][t] = std::move(eth_g[t].value);
      rec.trials_retried += static_cast<std::uint64_t>(eth_g[t].retries);
      if (eth_g[t].error) rec.errors.push_back(*eth_g[t].error);
    }
    rec.live = result.ethernet[k];
    report.errors.insert(report.errors.end(), rec.errors.begin(),
                         rec.errors.end());
    report.trials_retried += rec.trials_retried;
    if (opts.journal != nullptr) opts.journal->append(rec);
  }

  report.trials_failed = report.errors.size();
  tally_timed_out_trials(result);
  if (board != nullptr) board->publish_now();
  return result;
}

CellResult run_supervised_experiment(TaskPool* pool, const Scenario& scenario,
                                     BenchmarkKind kind,
                                     const ExperimentConfig& cfg) {
  RowTraces row = collect_row(pool, scenario, cfg);
  CellResult cell;
  cell.scenario = scenario.name;
  cell.kind = kind;
  // Collection failures lead the cell's error list (root causes first).
  cell.errors = row.errors;
  cell.trials_retried = row.retried;
  run_cell_trials(pool, scenario, kind, cfg, row, cell);
  if (cfg.audit.enabled) {
    const auto n = static_cast<std::size_t>(cfg.trials);
    cell.audits.resize(n);
    std::vector<Guarded<audit::FidelityReport>> audit_g(n);
    std::vector<std::function<void()>> tasks;
    for (std::size_t t = 0; t < n; ++t) {
      if (row.traces[t].error) continue;
      tasks.push_back([&, t] {
        audit_g[t] =
            guarded_trace_audit(row.traces[t].value, cfg, static_cast<int>(t),
                                "trial" + std::to_string(t));
      });
    }
    run_tasks(pool, std::move(tasks));
    for (std::size_t t = 0; t < n; ++t) {
      cell.audits[t] = std::move(audit_g[t].value);
      cell.trials_retried += static_cast<std::uint64_t>(audit_g[t].retries);
      if (audit_g[t].error) cell.errors.push_back(*audit_g[t].error);
    }
  }
  return cell;
}

// --- sweep JSON -------------------------------------------------------------

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void write_json_outcomes(std::ostream& out,
                         const std::vector<BenchmarkOutcome>& outcomes) {
  out << "[";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const BenchmarkOutcome& o = outcomes[i];
    out << (i == 0 ? "" : ", ") << "{\"elapsed_s\": " << json_double(o.elapsed_s)
        << ", \"ok\": " << (o.ok ? "true" : "false")
        << ", \"completed\": " << (o.completed ? "true" : "false")
        << ", \"timed_out\": " << (o.timed_out ? "true" : "false")
        << ", \"wall_stuck\": " << (o.wall_stuck ? "true" : "false") << "}";
  }
  out << "]";
}

void write_json_errors(std::ostream& out,
                       const std::vector<TrialError>& errors) {
  out << "[";
  for (std::size_t i = 0; i < errors.size(); ++i) {
    const TrialError& e = errors[i];
    out << (i == 0 ? "" : ", ") << "{\"kind\": \"" << to_string(e.kind)
        << "\", \"phase\": \"" << json_escape(e.phase) << "\", \"scenario\": \""
        << json_escape(e.scenario) << "\", \"benchmark\": \""
        << json_escape(e.benchmark) << "\", \"trial\": " << e.trial
        << ", \"seed\": " << e.seed << ", \"attempts\": " << e.attempts
        << ", \"message\": \"" << json_escape(e.message) << "\"}";
  }
  out << "]";
}

}  // namespace

void write_sweep_json(std::ostream& out, const SweepResult& result,
                      const ExperimentConfig& cfg,
                      const std::vector<BenchmarkKind>& kinds) {
  out << "{\n\"schema\": \"tracemod-sweep-v1\",\n";
  out << "\"tool_version\": \"" << kToolVersion << "\",\n";
  out << "\"config\": {\"base_seed\": " << cfg.base_seed
      << ", \"trials\": " << cfg.trials
      << ", \"tick_ms\": " << json_double(sim::to_milliseconds(cfg.tick))
      << ", \"compensate\": " << (cfg.compensate ? "true" : "false")
      << ", \"supervised\": " << (cfg.supervision.enabled ? "true" : "false")
      << ", \"max_retries\": " << cfg.supervision.max_retries
      << ", \"perturb_retry_seed\": "
      << (cfg.supervision.perturb_retry_seed ? "true" : "false") << "},\n";
  out << "\"cells\": [";
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const CellResult& c = result.cells[i];
    const Summary live = summarize_elapsed(c.live);
    const Summary mod = summarize_elapsed(c.modulated);
    out << (i == 0 ? "\n" : ",\n");
    out << "{\"scenario\": \"" << json_escape(c.scenario)
        << "\", \"benchmark\": \"" << to_string(c.kind)
        << "\", \"resumed\": " << (c.resumed ? "true" : "false")
        << ", \"degraded\": " << (c.errors.empty() ? "false" : "true")
        << ",\n \"live\": {\"mean_s\": " << json_double(live.mean)
        << ", \"stddev_s\": " << json_double(live.stddev) << ", \"trials\": ";
    write_json_outcomes(out, c.live);
    out << "},\n \"modulated\": {\"mean_s\": " << json_double(mod.mean)
        << ", \"stddev_s\": " << json_double(mod.stddev) << ", \"trials\": ";
    write_json_outcomes(out, c.modulated);
    out << "},\n \"trials_retried\": " << c.trials_retried
        << ", \"errors\": ";
    write_json_errors(out, c.errors);
    out << "}";
  }
  out << "\n],\n\"ethernet\": [";
  for (std::size_t k = 0; k < result.ethernet.size(); ++k) {
    const Summary eth = summarize_elapsed(result.ethernet[k]);
    out << (k == 0 ? "\n" : ",\n");
    out << "{\"benchmark\": \""
        << to_string(k < kinds.size() ? kinds[k] : BenchmarkKind::kWeb)
        << "\", \"mean_s\": " << json_double(eth.mean)
        << ", \"stddev_s\": " << json_double(eth.stddev) << ", \"trials\": ";
    write_json_outcomes(out, result.ethernet[k]);
    out << "}";
  }
  out << "\n],\n\"supervision\": {\"trials_failed\": "
      << result.supervision.trials_failed
      << ", \"trials_retried\": " << result.supervision.trials_retried
      << ", \"trials_timed_out\": " << result.supervision.trials_timed_out
      << ", \"errors\": ";
  write_json_errors(out, result.supervision.errors);
  out << "}\n}\n";
}

}  // namespace tracemod::scenarios
