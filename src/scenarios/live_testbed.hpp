// The live wireless testbed: what the paper's experimenters walked around
// campus with.
//
// Builds, for a given scenario and trial seed: the signal model and shared
// wireless channel, the WavePoints bridging to a campus Ethernet, the
// mobile host (WaveLAN device under a trace tap, drifting clock), the
// wired server, and any SynRGen interferer laptops.  Both trace-collection
// traversals and live benchmark runs use this testbed; only the traffic on
// top differs.
#pragma once

#include <memory>
#include <vector>

#include "apps/nfs.hpp"
#include "apps/synrgen.hpp"
#include "net/ethernet.hpp"
#include "scenarios/scenario.hpp"
#include "sim/clock_model.hpp"
#include "sim/sim_context.hpp"
#include "trace/ping.hpp"
#include "trace/trace_tap.hpp"
#include "transport/host.hpp"
#include "wireless/wavelan_device.hpp"
#include "wireless/wavepoint.hpp"

namespace tracemod::scenarios {

struct LiveTestbedConfig {
  transport::TcpConfig tcp{};
  /// The collection host's clock imperfection (paper Section 3.2.2).
  sim::ClockModel::Config mobile_clock{50.0 /*ppm*/, {},
                                       sim::microseconds(20)};
  net::IpAddress mobile_addr = net::IpAddress(10, 1, 0, 2);
  net::IpAddress server_addr = net::IpAddress(10, 1, 0, 1);
  /// Observability (sim/telemetry.hpp); disabled by default, in which case
  /// the testbed behaves bit-identically to a build without it.
  sim::TelemetryConfig telemetry{};
};

class LiveTestbed {
 public:
  LiveTestbed(const Scenario& scenario, std::uint64_t seed,
              LiveTestbedConfig cfg = {});

  sim::SimContext& context() { return ctx_; }
  sim::EventLoop& loop() { return ctx_.loop(); }
  transport::Host& mobile() { return *mobile_; }
  transport::Host& server() { return *server_; }
  net::IpAddress server_addr() const { return cfg_.server_addr; }
  const wireless::MobilityModel& mobility() const { return mobility_; }
  wireless::WirelessChannel& channel() { return *channel_; }
  trace::TraceTap& tap() { return *tap_; }
  sim::ClockModel& mobile_clock() { return clock_; }
  const Scenario& scenario() const { return scenario_; }

  /// Runs the paper's collection traversal: ping workload + trace tap for
  /// the scenario's collection duration.  Returns the collected trace.
  trace::CollectedTrace collect_trace();

 private:
  Scenario scenario_;
  LiveTestbedConfig cfg_;
  sim::SimContext ctx_;  ///< this testbed's isolated simulation context
  sim::ClockModel clock_;
  wireless::MobilityModel mobility_;
  std::unique_ptr<wireless::WirelessChannel> channel_;
  std::unique_ptr<net::EthernetSegment> backbone_;
  std::vector<std::unique_ptr<wireless::WavePoint>> wavepoints_;
  std::unique_ptr<transport::Host> mobile_;
  std::unique_ptr<transport::Host> server_;
  trace::TraceTap* tap_ = nullptr;  // owned by the mobile's node

  // Chatterbox interferers.
  std::unique_ptr<apps::NfsServer> interferer_nfs_;
  std::vector<std::unique_ptr<transport::Host>> interferer_hosts_;
  std::vector<std::unique_ptr<apps::SynRGenUser>> interferer_users_;
};

}  // namespace tracemod::scenarios
