// The campus generator: 1k-100k roaming hosts on the sharded medium.
//
// The paper walked one mobile host past a handful of WavePoints; the
// ROADMAP's north star needs worlds three to five orders of magnitude
// wider.  CampusWorld synthesizes such a world from a seed:
//   - a square quad tiled with a grid of WavePoints, each bridging to its
//     own backbone Ethernet segment with a local campus-server sink (one
//     shared 10 Mb/s bus would be the bottleneck long before the air is);
//   - a population of roaming hosts drawn from the mobility family
//     (wireless/mobility.hpp): solo random-waypoint walkers plus rigid
//     leader/offset groups;
//   - lightweight periodic uplink traffic per host (a UDP report frame
//     every few seconds, echoed back by the sink when echo_downlink is
//     set), exercising association, handoff, contention, and both air
//     directions without paying for 100k TCP stacks;
//   - the sharded channel: spatial cells sized by CampusConfig, and an
//     optional TaskPool that the channel's association scan fans out on.
//
// Everything is a pure function of the seed: construction draws from the
// context's master rng in one fixed order, and run() produces a result
// digest that is byte-identical across serial/parallel and repeat runs --
// the equivalence the campus tests and CI smoke job pin.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/ethernet.hpp"
#include "scenarios/benchmarks.hpp"
#include "scenarios/parallel_runner.hpp"
#include "scenarios/scenario.hpp"
#include "sim/sim_context.hpp"
#include "wireless/wavelan_device.hpp"
#include "wireless/wavepoint.hpp"

namespace tracemod::scenarios {

struct CampusConfig {
  std::size_t hosts = 1000;
  /// Edge of the square campus in metres; 0 sizes it automatically so the
  /// host density per WavePoint stays roughly constant as hosts grows
  /// (that is what makes throughput scale sub-quadratically).
  double area_m = 0.0;
  double wp_spacing_m = 120.0;  ///< WavePoint grid pitch
  /// Spatial shard size (ChannelConfig::spatial).  0 = flat seed medium;
  /// the default matches the radio range so queries touch <= 3x3 cells.
  double cell_size_m = 130.0;
  double radio_range_m = 130.0;
  /// Fraction of hosts walking in rigid groups (leader + ring offsets).
  unsigned group_pct = 20;
  std::size_t group_size = 4;  ///< hosts per group, leader included
  sim::Duration horizon = sim::seconds(30);  ///< virtual time to simulate
  sim::Duration app_period = sim::seconds(2);  ///< per-host uplink period
  std::uint32_t app_payload_bytes = 256;
  bool echo_downlink = true;
  std::uint64_t seed = 42;
  /// Worker threads for the channel's sharded association scan; 0 runs
  /// serially.  Results are bit-identical either way.
  unsigned threads = 0;
  /// Wall-clock supervision for run() (benchmarks.hpp semantics).
  WatchdogConfig watchdog{};
  sim::TelemetryConfig telemetry{};
};

struct CampusResult {
  bool ok = false;          ///< reached the virtual horizon
  RunStatus status = RunStatus::kDrained;
  std::size_t hosts = 0;
  std::size_t wavepoints = 0;
  double virtual_s = 0.0;   ///< virtual time actually simulated
  std::uint64_t events = 0;  ///< event-loop dispatches
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_dropped = 0;  ///< all drop causes summed
  std::uint64_t handoffs = 0;
  std::uint64_t uplink_sent = 0;
  std::uint64_t echoes_received = 0;
  std::size_t occupied_cells = 0;  ///< WavePoint cells (1 when flat)
  /// FNV-1a digest over the counters above plus per-host tx/rx counts and
  /// final position bit patterns: the byte-equivalence handle for the
  /// serial==parallel and repeat-run contracts.
  std::uint64_t digest = 0;
  /// Wall-clock seconds and derived rate; filled by run_campus (the only
  /// nondeterministic fields, never part of the digest).
  double wall_s = 0.0;
  double events_per_sec = 0.0;
};

class CampusWorld {
 public:
  explicit CampusWorld(const CampusConfig& cfg);
  ~CampusWorld();

  CampusWorld(const CampusWorld&) = delete;
  CampusWorld& operator=(const CampusWorld&) = delete;

  /// Drives the world to the virtual horizon under the configured
  /// watchdog.  Fills everything in CampusResult except the wall-clock
  /// fields.
  CampusResult run();

  sim::SimContext& context() { return ctx_; }
  wireless::WirelessChannel& channel() { return *channel_; }
  std::size_t hosts() const { return devices_.size(); }
  std::size_t wavepoint_count() const { return wavepoints_.size(); }
  double side_m() const { return side_m_; }

  /// Host position at a virtual time (tests; any host index).
  wireless::Vec2 host_position(std::size_t host, sim::TimePoint t) const;

 private:
  struct HostPath {
    int group = -1;          ///< index into groups_, or -1 for solo
    std::size_t member = 0;  ///< member slot within the group
    std::size_t path = 0;    ///< index into paths_ when solo
  };

  void app_tick(std::size_t host);

  CampusConfig cfg_;
  sim::SimContext ctx_;
  double side_m_ = 0.0;
  std::unique_ptr<wireless::WirelessChannel> channel_;
  std::vector<std::unique_ptr<net::EthernetSegment>> backbones_;
  std::vector<std::unique_ptr<wireless::WavePoint>> wavepoints_;
  std::vector<std::unique_ptr<net::EthernetDevice>> sinks_;
  std::vector<wireless::MobilityModel> paths_;       // solo walkers, leaders
  std::vector<wireless::GroupMobility> groups_;
  std::vector<HostPath> host_paths_;
  std::vector<std::unique_ptr<wireless::WaveLanDevice>> devices_;
  std::vector<sim::Duration> app_offsets_;  // per-host first-tick jitter
  std::vector<std::uint64_t> tx_counts_;
  std::vector<std::uint64_t> rx_counts_;
  std::unique_ptr<TaskPool> pool_;
  bool done_ = false;
};

/// Builds the world, runs it, and reports including wall-clock rate.
CampusResult run_campus(const CampusConfig& cfg);

/// A single-mobile campus-quad Scenario on the sharded medium: a 4x3
/// WavePoint grid and a diagonal walk across it, with
/// channel.spatial enabled.  Runs through the full sweep / distillation /
/// audit pipeline via `sweep --scenarios campus`; deliberately NOT part of
/// all_scenarios(), which stays pinned to the paper's four.
Scenario campus_walk();

}  // namespace tracemod::scenarios
