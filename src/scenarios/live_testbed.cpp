#include "scenarios/live_testbed.hpp"

namespace tracemod::scenarios {

namespace {
constexpr std::uint16_t kInterfererNfsPort = 2050;
}

LiveTestbed::LiveTestbed(const Scenario& scenario, std::uint64_t seed,
                         LiveTestbedConfig cfg)
    : scenario_(scenario),
      cfg_(cfg),
      ctx_(seed, cfg.telemetry),
      clock_(cfg.mobile_clock, sim::Rng(seed ^ 0xC10C)),
      mobility_(scenario.mobility()) {
  // The context's root stream is the trial's master rng; every subsystem
  // stream is forked from it in a fixed order, so the whole world is a
  // deterministic function of the seed.
  sim::Rng& master = ctx_.rng();
  sim::EventLoop& loop = ctx_.loop();

  wireless::SignalModel model(scenario_.signal, scenario_.walls,
                              scenario_.zones, master.fork());
  channel_ = std::make_unique<wireless::WirelessChannel>(
      loop, std::move(model), scenario_.channel, master.fork());
  channel_->set_telemetry(ctx_);
  backbone_ = std::make_unique<net::EthernetSegment>(loop);

  int wp_index = 0;
  for (const wireless::Vec2& pos : scenario_.wavepoint_positions) {
    wavepoints_.push_back(std::make_unique<wireless::WavePoint>(
        *channel_, *backbone_, pos, "wp" + std::to_string(wp_index++)));
  }

  server_ = std::make_unique<transport::Host>(ctx_, "server",
                                              master.next_u64(), cfg_.tcp);
  auto server_dev =
      std::make_unique<net::EthernetDevice>(*backbone_, "server-eth0");
  server_dev->claim_address(cfg_.server_addr);
  server_dev->set_telemetry(ctx_.telemetry(), "server");
  server_->node().add_interface(std::move(server_dev), cfg_.server_addr);
  server_->node().set_default_route(0);

  mobile_ = std::make_unique<transport::Host>(ctx_, "mobile",
                                              master.next_u64(), cfg_.tcp);
  auto radio = std::make_unique<wireless::WaveLanDevice>(
      *channel_, cfg_.mobile_addr,
      [this] { return mobility_.position(ctx_.loop().now()); }, "wavelan0");
  wireless::WaveLanDevice* radio_ptr = radio.get();
  mobile_->node().add_interface(std::move(radio), cfg_.mobile_addr);
  mobile_->node().set_default_route(0);

  // Hook the collection tap between IP and the WaveLAN device; it samples
  // the driver's signal readings once per second while open.
  mobile_->node().wrap_interface(
      0, [&](std::unique_ptr<net::NetDevice> inner) {
        auto tap = std::make_unique<trace::TraceTap>(
            std::move(inner), ctx_.loop(), clock_,
            [radio_ptr] { return radio_ptr->signal(); });
        tap_ = tap.get();
        return tap;
      });

  // Chatterbox: interfering laptops running SynRGen against NFS.
  if (scenario_.interferers > 0) {
    interferer_nfs_ =
        std::make_unique<apps::NfsServer>(*server_, kInterfererNfsPort);
    const wireless::Vec2 room = mobility_.position(sim::kEpoch);
    for (int i = 0; i < scenario_.interferers; ++i) {
      auto host = std::make_unique<transport::Host>(
          ctx_, "laptop" + std::to_string(i), master.next_u64(), cfg_.tcp);
      const net::IpAddress addr(10, 1, 0,
                                static_cast<std::uint8_t>(10 + i));
      const wireless::Vec2 pos{room.x + 1.0 + 0.7 * i,
                               room.y - 1.5 + 0.6 * i};
      auto dev = std::make_unique<wireless::WaveLanDevice>(
          *channel_, addr, [pos] { return pos; },
          "wavelan-l" + std::to_string(i));
      host->node().add_interface(std::move(dev), addr);
      host->node().set_default_route(0);
      auto user = std::make_unique<apps::SynRGenUser>(
          *host, net::Endpoint{cfg_.server_addr, kInterfererNfsPort},
          "u" + std::to_string(i), master.next_u64());
      user->start();
      interferer_hosts_.push_back(std::move(host));
      interferer_users_.push_back(std::move(user));
    }
  }

  channel_->start();
}

trace::CollectedTrace LiveTestbed::collect_trace() {
  trace::CollectionDaemon daemon(ctx_.loop(), *tap_);
  trace::PingWorkload ping(*mobile_, cfg_.server_addr, clock_);
  daemon.start();
  ping.start();
  ctx_.loop().run_until(ctx_.loop().now() + scenario_.collection_duration);
  ping.stop();
  daemon.stop();
  return daemon.take_trace();
}

}  // namespace tracemod::scenarios
