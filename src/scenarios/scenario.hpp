// The paper's four evaluation scenarios (Section 4.1).
//
// Each scenario is a complete physical-world description: WavePoint
// placement, walls and attenuation zones, the mobile's checkpointed path,
// channel tuning, and interfering users.  Geometry and parameters are
// chosen so the distilled traces have the shape and dynamic range of the
// paper's Figures 2-5:
//   Porter     - inter-building walk; variable signal, latency spikes,
//                loss mostly under 10%;
//   Flagstaff  - outdoor walk at the edge of coverage; low but steady
//                signal, good latency, the worst loss late in the path;
//   Wean       - office -> elevator -> classroom; catastrophic loss and a
//                latency peak during the elevator ride;
//   Chatterbox - stationary host in a room with five SynRGen users; high
//                signal but degraded latency/bandwidth from contention.
#pragma once

#include <string>
#include <vector>

#include "wireless/channel.hpp"
#include "wireless/mobility.hpp"

namespace tracemod::scenarios {

struct Scenario {
  std::string name;
  std::vector<wireless::Wall> walls;
  std::vector<wireless::Zone> zones;
  std::vector<wireless::Vec2> wavepoint_positions;
  std::vector<wireless::MobilityModel::Waypoint> path;
  wireless::SignalConfig signal;
  wireless::ChannelConfig channel;
  int interferers = 0;  ///< SynRGen users on separate laptops
  /// How long a trace-collection traversal records (>= path duration).
  sim::Duration collection_duration{};

  wireless::MobilityModel mobility() const {
    return wireless::MobilityModel(path);
  }
};

Scenario porter();
Scenario flagstaff();
Scenario wean();
Scenario chatterbox();

/// All four, in the paper's order.
std::vector<Scenario> all_scenarios();

}  // namespace tracemod::scenarios
