// The paper's full experimental procedure (Section 5.1).
//
// For each benchmark on each scenario: N live trials on the wireless
// testbed, N trace-collection traversals, distillation of each trace, and
// one modulated trial per distilled trace on the isolated-Ethernet testbed.
// The Ethernet row of every table is the same benchmark on the modulation
// Ethernet with no modulation active.
#pragma once

#include <vector>

#include "audit/auditor.hpp"
#include "core/distiller.hpp"
#include "core/emulator.hpp"
#include "scenarios/benchmarks.hpp"
#include "scenarios/live_testbed.hpp"
#include "scenarios/supervisor.hpp"

namespace tracemod::scenarios {

struct ExperimentConfig {
  int trials = 4;
  std::uint64_t base_seed = 10'000;
  sim::Duration tick = sim::milliseconds(10);  ///< modulation granularity
  bool compensate = true;  ///< inbound delay compensation (Figure 1)
  /// The physical modulating network's measured mean bottleneck per-byte
  /// cost (Section 3.3, Delay Compensation).  Measure it once per
  /// modulation setup with measure_compensation_vb() and pass it through
  /// this config; there is no process-global cache, so distinct configs
  /// (and concurrent experiments) are fully independent.  Ignored when
  /// compensate is false.
  double compensation_vb = 0.0;
  /// Observability for every trial world (sim/telemetry.hpp).  When
  /// enabled, each trial's BenchmarkOutcome carries its captured
  /// TelemetrySnapshot; when disabled (default), trial behaviour and
  /// outputs are bit-identical to a config without this field.
  sim::TelemetryConfig telemetry{};
  /// Closed-loop fidelity auditing (src/audit/).  When enabled, each
  /// collected replay trace additionally gets one audit run (seed
  /// base_seed + 1700 + t) in its own dedicated world; trial worlds are
  /// untouched, so every benchmark outcome is bit-identical to a config
  /// with auditing disabled (pinned by test and by CI's seed diff).
  audit::AuditOptions audit{};
  /// Resilient supervision (scenarios/supervisor.hpp): crash-isolated
  /// trials, watchdogs, deterministic retry.  Disabled by default; a
  /// disabled config's outputs are bit-identical to the seed behaviour
  /// (the virtual budget defaults to the historical 7200 s deadline).
  SupervisionConfig supervision{};
  /// Live status board (sim/status/status.hpp).  Null (default) compiles
  /// every status hook down to one never-taken branch; non-null lets the
  /// guarded trial path and the event-loop dispatch heartbeat publish
  /// progress without touching virtual time, RNG, or trial outputs.
  sim::status::StatusBoard* status = nullptr;
};

/// Measures the physical modulating network's mean bottleneck per-byte
/// cost in a throwaway context.  Deterministic for a given EmulatorConfig;
/// callers store the result in ExperimentConfig::compensation_vb.
double measure_compensation_vb();

// --- single-trial building blocks -----------------------------------------
//
// Each trial builds a fresh world in its own SimContext from a seed derived
// as base_seed + fixed-offset + trial, so a trial's outcome depends only on
// the config -- never on which thread runs it or what ran before.  The
// batch drivers below and the parallel engine (parallel_runner.hpp) both
// fan out over these.

/// One live benchmark trial on the wireless testbed (seed base_seed + t).
BenchmarkOutcome run_live_trial(const Scenario& scenario, BenchmarkKind kind,
                                const ExperimentConfig& cfg, int trial);

/// One collection traversal distilled to a replay trace
/// (seed base_seed + 500 + t).
core::ReplayTrace collect_replay_trace(const Scenario& scenario,
                                       const ExperimentConfig& cfg, int trial);

/// One modulated benchmark trial over a replay trace
/// (seed base_seed + 900 + t).
BenchmarkOutcome run_modulated_trial(const core::ReplayTrace& trace,
                                     BenchmarkKind kind,
                                     const ExperimentConfig& cfg, int trial);

/// One bare-Ethernet trial (seed base_seed + 1300 + t).
BenchmarkOutcome run_ethernet_trial(BenchmarkKind kind,
                                    const ExperimentConfig& cfg, int trial);

/// One closed-loop fidelity audit of a replay trace
/// (seed base_seed + 1700 + t): second-order collection against the
/// modulated world, re-distillation, divergence scoring, verdict.  Runs in
/// its own world; never perturbs trial results.
audit::FidelityReport run_trace_audit(const core::ReplayTrace& trace,
                                      const ExperimentConfig& cfg, int trial,
                                      const std::string& label = "");

// --- serial batch drivers --------------------------------------------------

/// Live benchmark trials; trial t uses seed base_seed + t.
std::vector<BenchmarkOutcome> run_live_trials(const Scenario& scenario,
                                              BenchmarkKind kind,
                                              const ExperimentConfig& cfg);

/// One collection traversal; returns the raw trace (Figures 2-5 plot these
/// and their distillations).
trace::CollectedTrace collect_raw_trace(const Scenario& scenario,
                                        std::uint64_t seed);

/// N collection traversals, each distilled to a replay trace.
std::vector<core::ReplayTrace> collect_replay_traces(
    const Scenario& scenario, const ExperimentConfig& cfg);

/// One modulated benchmark trial per replay trace.
std::vector<BenchmarkOutcome> run_modulated_trials(
    const std::vector<core::ReplayTrace>& traces, BenchmarkKind kind,
    const ExperimentConfig& cfg);

/// The benchmark over the bare modulation Ethernet (the tables' last row).
std::vector<BenchmarkOutcome> run_ethernet_trials(BenchmarkKind kind,
                                                  const ExperimentConfig& cfg);

/// One fidelity audit per replay trace (trial t audits traces[t]).
std::vector<audit::FidelityReport> run_trace_audits(
    const std::vector<core::ReplayTrace>& traces, const ExperimentConfig& cfg,
    const std::string& label_prefix = "");

/// A single modulated benchmark run over an explicit replay trace.
BenchmarkOutcome run_modulated_benchmark(
    const core::ReplayTrace& trace, BenchmarkKind kind, std::uint64_t seed,
    sim::Duration tick, double inbound_vb_compensation,
    const sim::TelemetryConfig& telemetry = {},
    sim::Duration timeout = sim::seconds(7200),
    const WatchdogConfig& watchdog = {});

/// Labels each outcome's telemetry snapshot ("<prefix>/trial0", ...) in
/// trial order for the merged exporters (sim/telemetry.hpp).  Outcomes
/// without telemetry are skipped, so the result is empty for disabled
/// configs.  Trial order is the serial order, so serial and parallel runs
/// merge identically.
std::vector<sim::LabeledTelemetry> labeled_telemetry(
    const std::vector<BenchmarkOutcome>& outcomes, const std::string& prefix);

// --- reporting helpers -----------------------------------------------------

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t n = 0;
};

Summary summarize_elapsed(const std::vector<BenchmarkOutcome>& outcomes);
Summary summarize(const std::vector<double>& values);

/// "161.47 (7.82)" -- the paper's table cell format.
std::string cell(const Summary& s);

/// The paper's accuracy criterion: |mean_a - mean_b| <= stddev_a + stddev_b.
bool within_error(const Summary& a, const Summary& b);

/// |mean_a - mean_b| as a multiple of (stddev_a + stddev_b) -- the paper's
/// "off by 1.05 times the sum of the standard deviations" phrasing.
double off_by_factor(const Summary& a, const Summary& b);

/// "within error" or "off by N.NNx sd-sum".
std::string check_label(const Summary& a, const Summary& b);

}  // namespace tracemod::scenarios
