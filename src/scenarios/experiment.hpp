// The paper's full experimental procedure (Section 5.1).
//
// For each benchmark on each scenario: N live trials on the wireless
// testbed, N trace-collection traversals, distillation of each trace, and
// one modulated trial per distilled trace on the isolated-Ethernet testbed.
// The Ethernet row of every table is the same benchmark on the modulation
// Ethernet with no modulation active.
#pragma once

#include <vector>

#include "core/distiller.hpp"
#include "core/emulator.hpp"
#include "scenarios/benchmarks.hpp"
#include "scenarios/live_testbed.hpp"

namespace tracemod::scenarios {

struct ExperimentConfig {
  int trials = 4;
  std::uint64_t base_seed = 10'000;
  sim::Duration tick = sim::milliseconds(10);  ///< modulation granularity
  bool compensate = true;  ///< inbound delay compensation (Figure 1)
};

/// Live benchmark trials; trial t uses seed base_seed + t.
std::vector<BenchmarkOutcome> run_live_trials(const Scenario& scenario,
                                              BenchmarkKind kind,
                                              const ExperimentConfig& cfg);

/// One collection traversal; returns the raw trace (Figures 2-5 plot these
/// and their distillations).
trace::CollectedTrace collect_raw_trace(const Scenario& scenario,
                                        std::uint64_t seed);

/// N collection traversals, each distilled to a replay trace.
std::vector<core::ReplayTrace> collect_replay_traces(
    const Scenario& scenario, const ExperimentConfig& cfg);

/// One modulated benchmark trial per replay trace.
std::vector<BenchmarkOutcome> run_modulated_trials(
    const std::vector<core::ReplayTrace>& traces, BenchmarkKind kind,
    const ExperimentConfig& cfg);

/// The benchmark over the bare modulation Ethernet (the tables' last row).
std::vector<BenchmarkOutcome> run_ethernet_trials(BenchmarkKind kind,
                                                  const ExperimentConfig& cfg);

/// The physical modulating network's mean bottleneck per-byte cost,
/// measured once per process and cached (Section 3.3, Delay Compensation).
double compensation_vb();

/// A single modulated benchmark run over an explicit replay trace.
BenchmarkOutcome run_modulated_benchmark(const core::ReplayTrace& trace,
                                         BenchmarkKind kind,
                                         std::uint64_t seed,
                                         sim::Duration tick,
                                         double inbound_vb_compensation);

// --- reporting helpers -----------------------------------------------------

struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t n = 0;
};

Summary summarize_elapsed(const std::vector<BenchmarkOutcome>& outcomes);
Summary summarize(const std::vector<double>& values);

/// "161.47 (7.82)" -- the paper's table cell format.
std::string cell(const Summary& s);

/// The paper's accuracy criterion: |mean_a - mean_b| <= stddev_a + stddev_b.
bool within_error(const Summary& a, const Summary& b);

/// |mean_a - mean_b| as a multiple of (stddev_a + stddev_b) -- the paper's
/// "off by 1.05 times the sum of the standard deviations" phrasing.
double off_by_factor(const Summary& a, const Summary& b);

/// "within error" or "off by N.NNx sd-sum".
std::string check_label(const Summary& a, const Summary& b);

}  // namespace tracemod::scenarios
