#include "scenarios/campus.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <chrono>

#include "sim/assert.hpp"

namespace tracemod::scenarios {

namespace {

/// Every backbone segment hosts a sink claiming this address: "the campus
/// server" as seen from any WavePoint's wired side.
const net::IpAddress kCampusServerAddr(10, 1, 0, 1);

constexpr std::uint16_t kAppPort = 4000;
constexpr std::uint32_t kEchoPayloadBytes = 64;

net::IpAddress host_addr(std::size_t i) {
  // 10.2.0.0 upward; unique for any campus size we can simulate.
  return net::IpAddress(0x0A020000u + static_cast<std::uint32_t>(i));
}

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t double_bits(double d) {
  std::uint64_t v = 0;
  std::memcpy(&v, &d, sizeof(v));
  return v;
}

}  // namespace

CampusWorld::CampusWorld(const CampusConfig& cfg)
    : cfg_(cfg), ctx_(cfg.seed, cfg.telemetry) {
  TM_ASSERT(cfg_.hosts > 0);
  TM_ASSERT(cfg_.wp_spacing_m > 0.0);

  // WavePoint grid: fixed density when auto-sized, so adding hosts adds
  // coverage area and infrastructure instead of piling contention into one
  // cell (the sub-quadratic-scaling premise).
  std::size_t cols;
  if (cfg_.area_m > 0.0) {
    side_m_ = cfg_.area_m;
    cols = std::max<std::size_t>(
        2, static_cast<std::size_t>(side_m_ / cfg_.wp_spacing_m) + 1);
  } else {
    const double target_wps =
        std::max(4.0, static_cast<double>(cfg_.hosts) / 32.0);
    cols = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::ceil(std::sqrt(target_wps))));
    side_m_ = cfg_.wp_spacing_m * static_cast<double>(cols - 1);
  }

  sim::Rng& master = ctx_.rng();
  sim::EventLoop& loop = ctx_.loop();

  // Fixed fork order (signal, channel, then per-host draws): the whole
  // world is a function of the seed.
  wireless::SignalModel model(wireless::SignalConfig{}, {}, {},
                              master.fork());
  wireless::ChannelConfig chan;
  chan.spatial.cell_size = cfg_.cell_size_m;
  chan.spatial.radio_range_m = cfg_.radio_range_m;
  channel_ = std::make_unique<wireless::WirelessChannel>(
      loop, std::move(model), chan, master.fork());
  channel_->set_telemetry(ctx_);

  for (std::size_t j = 0; j < cols; ++j) {
    for (std::size_t i = 0; i < cols; ++i) {
      const wireless::Vec2 pos{cfg_.wp_spacing_m * static_cast<double>(i),
                               cfg_.wp_spacing_m * static_cast<double>(j)};
      auto backbone = std::make_unique<net::EthernetSegment>(loop);
      auto wp = std::make_unique<wireless::WavePoint>(
          *channel_, *backbone, pos,
          "wp" + std::to_string(j * cols + i));
      auto sink = std::make_unique<net::EthernetDevice>(
          *backbone, "sink" + std::to_string(j * cols + i));
      sink->claim_address(kCampusServerAddr);
      net::EthernetDevice* sink_ptr = sink.get();
      sink->set_receive_callback([this, sink_ptr](net::Packet pkt) {
        if (!cfg_.echo_downlink) return;
        net::Packet echo = net::make_udp_packet(
            kCampusServerAddr, pkt.src, kAppPort, kAppPort,
            kEchoPayloadBytes);
        echo.id = ctx_.next_packet_id();
        echo.created_at = ctx_.loop().now();
        sink_ptr->transmit(std::move(echo));
      });
      backbones_.push_back(std::move(backbone));
      wavepoints_.push_back(std::move(wp));
      sinks_.push_back(std::move(sink));
    }
  }

  // Mobility population.  The first `grouped` hosts walk in rigid
  // leader/offset groups; the rest are solo random-waypoint walkers.  All
  // rng draws happen here, host by host, in index order.
  wireless::RandomWaypointConfig rw;
  rw.area_min = {0.0, 0.0};
  rw.area_max = {side_m_, side_m_};
  rw.pause_max = sim::seconds(10);
  rw.horizon = cfg_.horizon;
  rw.label_prefix = "c";

  const std::size_t grouped =
      cfg_.group_size > 1
          ? std::min(cfg_.hosts,
                     cfg_.hosts * std::min(cfg_.group_pct, 100u) / 100)
          : 0;
  host_paths_.reserve(cfg_.hosts);
  std::size_t h = 0;
  while (h < grouped) {
    const std::size_t block = std::min(cfg_.group_size, grouped - h);
    wireless::GroupMobility group(random_waypoint(rw, master));
    group.add_member({0.0, 0.0});  // the leader itself
    group.add_ring(block - 1, 2.5);
    groups_.push_back(std::move(group));
    for (std::size_t k = 0; k < block; ++k) {
      HostPath hp;
      hp.group = static_cast<int>(groups_.size() - 1);
      hp.member = k;
      host_paths_.push_back(hp);
    }
    h += block;
  }
  for (; h < cfg_.hosts; ++h) {
    paths_.push_back(random_waypoint(rw, master));
    HostPath hp;
    hp.path = paths_.size() - 1;
    host_paths_.push_back(hp);
  }

  // Per-host first-tick jitter, drawn in index order so traffic phase is
  // part of the same deterministic contract as the paths.
  app_offsets_.reserve(cfg_.hosts);
  for (std::size_t i = 0; i < cfg_.hosts; ++i) {
    app_offsets_.push_back(sim::from_seconds(
        master.uniform(0.0, sim::to_seconds(cfg_.app_period))));
  }

  tx_counts_.assign(cfg_.hosts, 0);
  rx_counts_.assign(cfg_.hosts, 0);
  devices_.reserve(cfg_.hosts);
  for (std::size_t i = 0; i < cfg_.hosts; ++i) {
    auto dev = std::make_unique<wireless::WaveLanDevice>(
        *channel_, host_addr(i),
        [this, i] { return host_position(i, ctx_.loop().now()); },
        "m" + std::to_string(i));
    dev->set_receive_callback([this, i](net::Packet) { ++rx_counts_[i]; });
    devices_.push_back(std::move(dev));
  }

  if (cfg_.threads > 0) {
    pool_ = std::make_unique<TaskPool>(cfg_.threads);
    channel_->set_parallel_for(
        [this](std::size_t n, const std::function<void(std::size_t)>& body) {
          std::vector<std::function<void()>> tasks;
          tasks.reserve(n);
          for (std::size_t i = 0; i < n; ++i) {
            tasks.push_back([&body, i] { body(i); });
          }
          pool_->run_all(std::move(tasks));
        });
  }

  channel_->start();
}

CampusWorld::~CampusWorld() = default;

wireless::Vec2 CampusWorld::host_position(std::size_t host,
                                          sim::TimePoint t) const {
  const HostPath& hp = host_paths_[host];
  if (hp.group >= 0) {
    return groups_[static_cast<std::size_t>(hp.group)].position(hp.member, t);
  }
  return paths_[hp.path].position(t);
}

void CampusWorld::app_tick(std::size_t host) {
  if (done_) return;
  net::Packet pkt =
      net::make_udp_packet(host_addr(host), kCampusServerAddr, kAppPort,
                           kAppPort, cfg_.app_payload_bytes);
  pkt.id = ctx_.next_packet_id();
  pkt.created_at = ctx_.loop().now();
  ++tx_counts_[host];
  devices_[host]->transmit(std::move(pkt));
  ctx_.loop().schedule(cfg_.app_period, [this, host] { app_tick(host); },
                       "campus.app");
}

CampusResult CampusWorld::run() {
  sim::EventLoop& loop = ctx_.loop();
  for (std::size_t i = 0; i < cfg_.hosts; ++i) {
    loop.schedule_at(sim::kEpoch + app_offsets_[i],
                     [this, i] { app_tick(i); }, "campus.app");
  }
  loop.schedule_at(sim::kEpoch + cfg_.horizon, [this] { done_ = true; },
                   "campus.done");

  CampusResult r;
  r.hosts = cfg_.hosts;
  r.wavepoints = wavepoints_.size();
  if (sim::status::StatusBoard* board = cfg_.watchdog.status;
      board != nullptr && board->enabled()) {
    // A campus run's natural progress axis is the virtual horizon; the
    // dispatch heartbeat advances units_done via the published sim clock.
    board->set_units("sim-seconds", sim::to_seconds(cfg_.horizon));
    board->set_units_follow_sim(true);
    board->set_phase("campus:" + std::to_string(cfg_.hosts) + "-hosts");
  }
  // The +1s slack means the status tells us what actually happened: the
  // done flag (kCompleted) rather than the deadline fence.
  r.status = run_event_loop_until(loop, done_, cfg_.horizon + sim::seconds(1),
                                  cfg_.watchdog);
  r.ok = r.status == RunStatus::kCompleted;
  r.virtual_s = sim::to_seconds(loop.now() - sim::kEpoch);
  r.events = loop.dispatched();

  const wireless::WirelessChannel::Stats& s = channel_->stats();
  r.frames_delivered = s.frames_delivered;
  r.frames_dropped = s.frames_dropped_retries + s.frames_dropped_backlog +
                     s.frames_dropped_handoff + s.frames_dropped_unassociated;
  r.handoffs = s.handoffs;
  r.occupied_cells = channel_->wavepoint_index().occupied_cells();
  for (std::size_t i = 0; i < cfg_.hosts; ++i) {
    r.uplink_sent += tx_counts_[i];
    r.echoes_received += rx_counts_[i];
  }

  std::uint64_t d = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  d = fnv_mix(d, r.hosts);
  d = fnv_mix(d, r.wavepoints);
  d = fnv_mix(d, r.events);
  d = fnv_mix(d, r.frames_delivered);
  d = fnv_mix(d, r.frames_dropped);
  d = fnv_mix(d, s.retry_attempts);
  d = fnv_mix(d, r.handoffs);
  d = fnv_mix(d, r.uplink_sent);
  d = fnv_mix(d, r.echoes_received);
  d = fnv_mix(d, ctx_.packet_ids_issued());
  const sim::TimePoint end = sim::kEpoch + cfg_.horizon;
  for (std::size_t i = 0; i < cfg_.hosts; ++i) {
    d = fnv_mix(d, tx_counts_[i]);
    d = fnv_mix(d, rx_counts_[i]);
    const wireless::Vec2 p = host_position(i, end);
    d = fnv_mix(d, double_bits(p.x));
    d = fnv_mix(d, double_bits(p.y));
  }
  r.digest = d;
  return r;
}

CampusResult run_campus(const CampusConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  CampusWorld world(cfg);
  CampusResult r = world.run();
  const auto t1 = std::chrono::steady_clock::now();
  r.wall_s = std::chrono::duration<double>(t1 - t0).count();
  r.events_per_sec =
      r.wall_s > 0.0 ? static_cast<double>(r.events) / r.wall_s : 0.0;
  return r;
}

Scenario campus_walk() {
  Scenario s;
  s.name = "campus";
  // A 4x3 WavePoint grid over a 360x240 m quad; no interior walls.
  for (int j = 0; j < 3; ++j) {
    for (int i = 0; i < 4; ++i) {
      s.wavepoint_positions.push_back({120.0 * i, 120.0 * j});
    }
  }
  using WP = wireless::MobilityModel::Waypoint;
  s.path = {
      WP{"c0", {10.0, 10.0}, 1.4, sim::seconds(10)},
      WP{"c1", {120.0, 70.0}, 1.4, sim::seconds(5)},
      WP{"c2", {230.0, 130.0}, 1.4, sim::seconds(5)},
      WP{"c3", {350.0, 230.0}, 1.4, sim::seconds(10)},
  };
  // The point of this scenario: the sharded medium under the full
  // collection/distillation/audit pipeline.
  s.channel.spatial.cell_size = 130.0;
  s.channel.spatial.radio_range_m = 130.0;
  s.collection_duration = sim::seconds(360);
  return s;
}

}  // namespace tracemod::scenarios
