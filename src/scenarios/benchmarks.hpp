// Benchmark runners (paper Section 4.2).
//
// Each runner stands up the needed server on the server host, drives the
// client, and runs the event loop until the benchmark completes.  The same
// code runs against a live wireless testbed and a modulated Ethernet one --
// the transparency the paper's methodology promises.
#pragma once

#include <cstdint>
#include <memory>

#include "apps/andrew.hpp"
#include "net/ip_address.hpp"
#include "sim/event_loop.hpp"
#include "sim/status/status.hpp"
#include "sim/telemetry.hpp"
#include "transport/host.hpp"

namespace tracemod::scenarios {

enum class BenchmarkKind { kWeb, kFtpSend, kFtpRecv, kAndrew };

const char* to_string(BenchmarkKind kind);

struct BenchmarkOutcome {
  bool ok = false;
  /// True when the benchmark's completion callback fired.  A false value
  /// means the outcome is partial (deadline, watchdog, or drained event
  /// queue) and must never be reported as a clean result.
  bool completed = false;
  /// The virtual-time budget expired before completion.
  bool timed_out = false;
  /// The wall-clock stuck-trial watchdog abandoned the run.
  bool wall_stuck = false;
  double elapsed_s = 0.0;
  apps::AndrewResult andrew;  ///< populated for kAndrew only
  /// The trial's captured telemetry; null unless the trial ran with
  /// telemetry enabled.  Shared so outcomes stay cheap to copy.
  std::shared_ptr<const sim::TelemetrySnapshot> telemetry;
};

/// Wall-clock stuck-trial watchdog for a benchmark run.  The event loop's
/// own dispatch acts as the heartbeat: every wall_check_interval dispatches
/// the host clock is compared against the budget, so a world that stops
/// advancing virtual time (a zero-delay livelock) is still abandoned -- no
/// extra threads per trial.  wall_budget_s == 0 disables the watchdog and
/// keeps the run free of host-clock reads (bit-identical wall behaviour).
struct WatchdogConfig {
  double wall_budget_s = 0.0;
  std::uint64_t wall_check_interval = 4096;
  /// Live status board fed by the same dispatch heartbeat (events
  /// dispatched + the world's virtual clock, every wall_check_interval
  /// dispatches).  Null (the default) keeps the loop free of status code;
  /// non-null adds only host-clock reads and never touches virtual time.
  sim::status::StatusBoard* status = nullptr;
};

/// Why a benchmark's event-loop drive returned.
enum class RunStatus {
  kCompleted,        ///< the done flag was set
  kDrained,          ///< event queue empty before completion
  kVirtualDeadline,  ///< virtual-time budget expired
  kWallStuck,        ///< wall-clock watchdog fired
};

const char* to_string(RunStatus status);

/// Steps the loop until `done` is set, the virtual deadline passes, the
/// queue drains, or the wall-clock watchdog fires.  (Plain run_until would
/// simulate hours of idle interferer traffic after the benchmark finishes.)
/// With the watchdog disabled, the dispatch sequence is identical to the
/// historical deadline loop.
RunStatus run_event_loop_until(sim::EventLoop& loop, const bool& done,
                               sim::Duration timeout,
                               const WatchdogConfig& watchdog = {});

/// Workload seeds are fixed so every trial replays the identical workload
/// (the paper replays the same Web reference traces and the same source
/// tree); only the network varies between trials.
inline constexpr std::uint64_t kWorkloadSeed = 7777;

/// FTP transfers 10 MB disk-to-disk, as in Figure 7.
inline constexpr std::uint64_t kFtpBytes = 10ull * 1000 * 1000;

/// Number of objects in the replayed Web reference traces (five users'
/// search tasks).
inline constexpr std::size_t kWebObjects = 550;

BenchmarkOutcome run_benchmark(BenchmarkKind kind, transport::Host& client,
                               transport::Host& server_host,
                               net::IpAddress server_addr,
                               sim::EventLoop& loop,
                               sim::Duration timeout = sim::seconds(7200),
                               const WatchdogConfig& watchdog = {});

}  // namespace tracemod::scenarios
