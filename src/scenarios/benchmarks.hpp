// Benchmark runners (paper Section 4.2).
//
// Each runner stands up the needed server on the server host, drives the
// client, and runs the event loop until the benchmark completes.  The same
// code runs against a live wireless testbed and a modulated Ethernet one --
// the transparency the paper's methodology promises.
#pragma once

#include <cstdint>
#include <memory>

#include "apps/andrew.hpp"
#include "net/ip_address.hpp"
#include "sim/telemetry.hpp"
#include "transport/host.hpp"

namespace tracemod::scenarios {

enum class BenchmarkKind { kWeb, kFtpSend, kFtpRecv, kAndrew };

const char* to_string(BenchmarkKind kind);

struct BenchmarkOutcome {
  bool ok = false;
  double elapsed_s = 0.0;
  apps::AndrewResult andrew;  ///< populated for kAndrew only
  /// The trial's captured telemetry; null unless the trial ran with
  /// telemetry enabled.  Shared so outcomes stay cheap to copy.
  std::shared_ptr<const sim::TelemetrySnapshot> telemetry;
};

/// Workload seeds are fixed so every trial replays the identical workload
/// (the paper replays the same Web reference traces and the same source
/// tree); only the network varies between trials.
inline constexpr std::uint64_t kWorkloadSeed = 7777;

/// FTP transfers 10 MB disk-to-disk, as in Figure 7.
inline constexpr std::uint64_t kFtpBytes = 10ull * 1000 * 1000;

/// Number of objects in the replayed Web reference traces (five users'
/// search tasks).
inline constexpr std::size_t kWebObjects = 550;

BenchmarkOutcome run_benchmark(BenchmarkKind kind, transport::Host& client,
                               transport::Host& server_host,
                               net::IpAddress server_addr,
                               sim::EventLoop& loop,
                               sim::Duration timeout = sim::seconds(7200));

}  // namespace tracemod::scenarios
