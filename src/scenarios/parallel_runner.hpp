// Parallel experiment engine.
//
// The paper's evaluation is a matrix -- {Web, FTP, Andrew} benchmarks x
// {Porter, Flagstaff, Wean, Chatterbox} scenarios x N trials plus the
// collection traversals feeding distillation.  Every cell of that matrix
// is an independent simulated world: each trial builds its own SimContext
// from a seed derived as base_seed + fixed-offset + trial.  This engine
// fans those worlds out across a thread pool and returns results in stable
// trial order, bit-identical to the serial drivers in experiment.hpp
// regardless of thread count or scheduling.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "scenarios/experiment.hpp"

namespace tracemod::scenarios {

/// A minimal fixed-size thread pool.  Tasks must be independent of each
/// other (no task may block on another); that is exactly the shape of a
/// trial matrix.
class TaskPool {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit TaskPool(unsigned threads = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs every task on the pool and blocks until all complete.  Every
  /// task runs even when siblings throw.  If exactly one task threw, that
  /// exception is rethrown here; if several threw, a combined
  /// std::runtime_error reports the failure count and the first collected
  /// message (collection order, not submission order).  Not reentrant: a
  /// task that calls run_all on its own pool would deadlock waiting for a
  /// worker slot, so a debug assertion rejects calls from worker threads.
  void run_all(std::vector<std::function<void()>> tasks);

 private:
  void worker_main();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> pending_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// out[i] = fn(i), computed on the pool; results land in index order no
/// matter which thread finishes first.
template <typename T>
std::vector<T> parallel_index_map(TaskPool& pool, std::size_t n,
                                  std::function<T(std::size_t)> fn) {
  std::vector<T> out(n);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks.push_back([&out, &fn, i] { out[i] = fn(i); });
  }
  pool.run_all(std::move(tasks));
  return out;
}

/// Parallel counterparts of the serial drivers in experiment.hpp.  Both
/// call the same per-trial building blocks, so for a given config the
/// outputs are byte-identical -- the seed-determinism invariant the tests
/// pin down.
class ParallelRunner {
 public:
  explicit ParallelRunner(unsigned threads = 0) : pool_(threads) {}

  TaskPool& pool() { return pool_; }
  unsigned thread_count() const { return pool_.thread_count(); }

  std::vector<BenchmarkOutcome> live_trials(const Scenario& scenario,
                                            BenchmarkKind kind,
                                            const ExperimentConfig& cfg);
  std::vector<core::ReplayTrace> replay_traces(const Scenario& scenario,
                                               const ExperimentConfig& cfg);
  std::vector<BenchmarkOutcome> modulated_trials(
      const std::vector<core::ReplayTrace>& traces, BenchmarkKind kind,
      const ExperimentConfig& cfg);
  std::vector<BenchmarkOutcome> ethernet_trials(BenchmarkKind kind,
                                                const ExperimentConfig& cfg);
  std::vector<audit::FidelityReport> trace_audits(
      const std::vector<core::ReplayTrace>& traces, const ExperimentConfig& cfg,
      const std::string& label_prefix = "");

  /// The result containers live at namespace scope (supervisor.hpp) so the
  /// serial supervised driver and this engine share them; the historical
  /// nested names remain as aliases.
  using CellResult = ::tracemod::scenarios::CellResult;
  using SweepResult = ::tracemod::scenarios::SweepResult;

  /// Full experimental procedure for one cell: live trials, collection
  /// traversals, and distillation fan out together; modulated trials
  /// follow once their input traces exist.  With cfg.supervision.enabled,
  /// delegates to run_supervised_experiment (crash-isolated trials).
  CellResult experiment(const Scenario& scenario, BenchmarkKind kind,
                        const ExperimentConfig& cfg);

  /// The full trial matrix: every benchmark on every scenario plus the
  /// Ethernet baselines.  Collection traversals are per scenario (traces
  /// are benchmark-independent, as in the paper) and shared by that
  /// scenario's cells.  All phase-one worlds -- live trials, traversals,
  /// Ethernet runs -- are fanned out as one task list.  With
  /// cfg.supervision.enabled, delegates to run_supervised_sweep.
  SweepResult sweep(const std::vector<Scenario>& scenarios,
                    const std::vector<BenchmarkKind>& kinds,
                    const ExperimentConfig& cfg);

  /// The supervised matrix with journaling/resume options (the sweep tool's
  /// entry point for --journal/--resume).
  SweepResult supervised_sweep(const std::vector<Scenario>& scenarios,
                               const std::vector<BenchmarkKind>& kinds,
                               const ExperimentConfig& cfg,
                               const SupervisedSweepOptions& opts = {});

 private:
  TaskPool pool_;
};

}  // namespace tracemod::scenarios
