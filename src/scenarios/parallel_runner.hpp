// Parallel experiment engine.
//
// The paper's evaluation is a matrix -- {Web, FTP, Andrew} benchmarks x
// {Porter, Flagstaff, Wean, Chatterbox} scenarios x N trials plus the
// collection traversals feeding distillation.  Every cell of that matrix
// is an independent simulated world: each trial builds its own SimContext
// from a seed derived as base_seed + fixed-offset + trial.  This engine
// fans those worlds out across a thread pool and returns results in stable
// trial order, bit-identical to the serial drivers in experiment.hpp
// regardless of thread count or scheduling.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "scenarios/experiment.hpp"
#include "sim/task_pool.hpp"

namespace tracemod::scenarios {

// The pool itself lives in sim/task_pool.hpp (the streaming distiller fans
// corpus windows out on it too); the historical scenarios-level names
// remain as aliases.
using sim::TaskPool;
using sim::parallel_index_map;

/// Parallel counterparts of the serial drivers in experiment.hpp.  Both
/// call the same per-trial building blocks, so for a given config the
/// outputs are byte-identical -- the seed-determinism invariant the tests
/// pin down.
class ParallelRunner {
 public:
  explicit ParallelRunner(unsigned threads = 0) : pool_(threads) {}

  TaskPool& pool() { return pool_; }
  unsigned thread_count() const { return pool_.thread_count(); }

  std::vector<BenchmarkOutcome> live_trials(const Scenario& scenario,
                                            BenchmarkKind kind,
                                            const ExperimentConfig& cfg);
  std::vector<core::ReplayTrace> replay_traces(const Scenario& scenario,
                                               const ExperimentConfig& cfg);
  std::vector<BenchmarkOutcome> modulated_trials(
      const std::vector<core::ReplayTrace>& traces, BenchmarkKind kind,
      const ExperimentConfig& cfg);
  std::vector<BenchmarkOutcome> ethernet_trials(BenchmarkKind kind,
                                                const ExperimentConfig& cfg);
  std::vector<audit::FidelityReport> trace_audits(
      const std::vector<core::ReplayTrace>& traces, const ExperimentConfig& cfg,
      const std::string& label_prefix = "");

  /// The result containers live at namespace scope (supervisor.hpp) so the
  /// serial supervised driver and this engine share them; the historical
  /// nested names remain as aliases.
  using CellResult = ::tracemod::scenarios::CellResult;
  using SweepResult = ::tracemod::scenarios::SweepResult;

  /// Full experimental procedure for one cell: live trials, collection
  /// traversals, and distillation fan out together; modulated trials
  /// follow once their input traces exist.  With cfg.supervision.enabled,
  /// delegates to run_supervised_experiment (crash-isolated trials).
  CellResult experiment(const Scenario& scenario, BenchmarkKind kind,
                        const ExperimentConfig& cfg);

  /// The full trial matrix: every benchmark on every scenario plus the
  /// Ethernet baselines.  Collection traversals are per scenario (traces
  /// are benchmark-independent, as in the paper) and shared by that
  /// scenario's cells.  All phase-one worlds -- live trials, traversals,
  /// Ethernet runs -- are fanned out as one task list.  With
  /// cfg.supervision.enabled, delegates to run_supervised_sweep.
  SweepResult sweep(const std::vector<Scenario>& scenarios,
                    const std::vector<BenchmarkKind>& kinds,
                    const ExperimentConfig& cfg);

  /// The supervised matrix with journaling/resume options (the sweep tool's
  /// entry point for --journal/--resume).
  SweepResult supervised_sweep(const std::vector<Scenario>& scenarios,
                               const std::vector<BenchmarkKind>& kinds,
                               const ExperimentConfig& cfg,
                               const SupervisedSweepOptions& opts = {});

 private:
  TaskPool pool_;
};

}  // namespace tracemod::scenarios
