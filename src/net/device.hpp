// Network device abstraction.
//
// A NetDevice is the boundary between a host's protocol stack and a medium.
// The stack calls transmit() for outbound packets; the medium (or an inner
// device) calls deliver_up() for inbound ones, which invokes the callback
// installed by the stack.
//
// DeviceShim is the decorator base used by both the trace-collection tap and
// the modulation layer: it wraps an inner device and sees every packet in
// both directions, exactly like the paper's hooks "between the IP and
// Ethernet layers" (Section 3.3).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "net/packet.hpp"
#include "sim/assert.hpp"

namespace tracemod::net {

class NetDevice {
 public:
  using ReceiveCallback = std::function<void(Packet)>;

  virtual ~NetDevice() = default;

  /// Sends a packet toward the medium.
  virtual void transmit(Packet pkt) = 0;

  /// Installed by the protocol stack (or by an outer decorator).
  void set_receive_callback(ReceiveCallback cb) { receive_cb_ = std::move(cb); }

  virtual std::string name() const = 0;

  /// Bytes of link-layer framing this device adds to an IP datagram.
  virtual std::uint32_t framing_bytes() const { return kEthernetHeaderBytes; }

 protected:
  /// Hands an inbound packet to whoever is stacked above this device.
  void deliver_up(Packet pkt) {
    if (receive_cb_) receive_cb_(std::move(pkt));
  }

 private:
  ReceiveCallback receive_cb_;
};

/// Decorator base: wraps an inner device, forwarding both directions through
/// overridable hooks.  Subclasses override on_outbound/on_inbound and call
/// send_down/send_up when (and if) the packet should continue.
class DeviceShim : public NetDevice {
 public:
  explicit DeviceShim(std::unique_ptr<NetDevice> inner)
      : inner_(std::move(inner)) {
    TM_ASSERT(inner_ != nullptr);
    inner_->set_receive_callback(
        [this](Packet pkt) { on_inbound(std::move(pkt)); });
  }

  void transmit(Packet pkt) final { on_outbound(std::move(pkt)); }

  std::string name() const override { return inner_->name(); }
  std::uint32_t framing_bytes() const override {
    return inner_->framing_bytes();
  }

  NetDevice& inner() { return *inner_; }
  const NetDevice& inner() const { return *inner_; }

 protected:
  /// Default behaviour is pass-through in both directions.
  virtual void on_outbound(Packet pkt) { send_down(std::move(pkt)); }
  virtual void on_inbound(Packet pkt) { send_up(std::move(pkt)); }

  void send_down(Packet pkt) { inner_->transmit(std::move(pkt)); }
  void send_up(Packet pkt) { deliver_up(std::move(pkt)); }

 private:
  std::unique_ptr<NetDevice> inner_;
};

/// Directly connects two stacks with a constant-rate, constant-delay pipe.
/// Used in unit tests where full Ethernet/wireless media would be noise.
class LoopbackPipe;

}  // namespace tracemod::net
