#include "net/ip_address.hpp"

#include <cstdio>

namespace tracemod::net {

IpAddress IpAddress::parse(const std::string& text) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char trailing = 0;
  const int n =
      std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &trailing);
  if (n != 4 || a > 255 || b > 255 || c > 255 || d > 255) {
    throw std::invalid_argument("malformed IP address: '" + text + "'");
  }
  return IpAddress(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                   static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::string IpAddress::str() const {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xff,
                (value >> 16) & 0xff, (value >> 8) & 0xff, value & 0xff);
  return buf;
}

std::string Endpoint::str() const {
  return addr.str() + ":" + std::to_string(port);
}

}  // namespace tracemod::net
