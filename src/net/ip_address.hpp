// IPv4-style addressing for the simulated internetwork.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>

namespace tracemod::net {

/// A 32-bit network address with dotted-quad parsing and printing.
struct IpAddress {
  std::uint32_t value = 0;

  constexpr IpAddress() = default;
  constexpr explicit IpAddress(std::uint32_t v) : value(v) {}
  constexpr IpAddress(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                      std::uint8_t d)
      : value((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Parses "a.b.c.d"; throws std::invalid_argument on malformed input.
  static IpAddress parse(const std::string& text);

  std::string str() const;

  constexpr bool is_unspecified() const { return value == 0; }

  friend constexpr bool operator==(IpAddress a, IpAddress b) {
    return a.value == b.value;
  }
  friend constexpr bool operator!=(IpAddress a, IpAddress b) {
    return a.value != b.value;
  }
  friend constexpr bool operator<(IpAddress a, IpAddress b) {
    return a.value < b.value;
  }
};

/// Transport endpoint: address + port.
struct Endpoint {
  IpAddress addr;
  std::uint16_t port = 0;

  std::string str() const;

  friend constexpr bool operator==(const Endpoint& a, const Endpoint& b) {
    return a.addr == b.addr && a.port == b.port;
  }
  friend constexpr bool operator!=(const Endpoint& a, const Endpoint& b) {
    return !(a == b);
  }
  friend constexpr bool operator<(const Endpoint& a, const Endpoint& b) {
    if (a.addr != b.addr) return a.addr < b.addr;
    return a.port < b.port;
  }
};

}  // namespace tracemod::net

template <>
struct std::hash<tracemod::net::IpAddress> {
  std::size_t operator()(tracemod::net::IpAddress a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value);
  }
};

template <>
struct std::hash<tracemod::net::Endpoint> {
  std::size_t operator()(const tracemod::net::Endpoint& e) const noexcept {
    return std::hash<std::uint64_t>{}(
        (std::uint64_t{e.addr.value} << 16) | e.port);
  }
};
