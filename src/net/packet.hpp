// The simulated packet.
//
// Packets carry structured protocol headers (a variant over ICMP/UDP/TCP)
// plus an opaque application payload handle and a payload byte count.  Wire
// sizes are computed from real header sizes so that bandwidth and
// serialization behaviour match what an instrumented kernel would see.
#pragma once

#include <any>
#include <cstdint>
#include <memory>
#include <string>
#include <variant>

#include "net/ip_address.hpp"
#include "sim/time.hpp"

namespace tracemod::net {

enum class Protocol : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

const char* protocol_name(Protocol p);

// Header wire sizes, bytes.
inline constexpr std::uint32_t kEthernetHeaderBytes = 18;  // 14 hdr + 4 FCS
inline constexpr std::uint32_t kIpHeaderBytes = 20;
inline constexpr std::uint32_t kIcmpHeaderBytes = 8;
inline constexpr std::uint32_t kUdpHeaderBytes = 8;
inline constexpr std::uint32_t kTcpHeaderBytes = 20;
/// Ethernet MTU governs transport segmentation (IP + L4 + payload <= MTU).
inline constexpr std::uint32_t kMtuBytes = 1500;

struct IcmpHeader {
  enum class Type : std::uint8_t { kEchoReply = 0, kEchoRequest = 8 };
  Type type = Type::kEchoRequest;
  std::uint16_t id = 0;   ///< pid of the generating process (paper Sec 3.1.1)
  std::uint16_t seq = 0;
  /// The paper's ping writes the generation time into the ECHO payload and
  /// the target copies it back; round-trip time needs no synchronized clock.
  sim::TimePoint payload_timestamp{};
};

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
};

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  // Sequence numbers are kept in an unwrapped 64-bit space; a wire
  // implementation would carry the low 32 bits.  The header still costs
  // kTcpHeaderBytes on the simulated wire.
  std::uint64_t seq = 0;
  std::uint64_t ack = 0;
  bool syn = false;
  bool ack_flag = false;
  bool fin = false;
  bool rst = false;
  std::uint32_t window = 0;

  std::string flags_str() const;
};

struct Packet {
  std::uint64_t id = 0;  ///< unique per simulation, assigned by Node/medium
  IpAddress src;
  IpAddress dst;
  std::uint8_t ttl = 64;
  /// IP fragmentation: datagrams larger than the MTU are split at the
  /// sending node and reassembled at the destination.  Fragments share the
  /// original datagram's frag_id; index/count locate this piece.  A
  /// non-fragment has frag_count == 0.
  std::uint32_t frag_id = 0;
  std::uint16_t frag_index = 0;
  std::uint16_t frag_count = 0;
  bool is_fragment() const { return frag_count != 0; }
  Protocol protocol = Protocol::kUdp;
  std::variant<IcmpHeader, UdpHeader, TcpHeader> l4;
  /// Application payload byte count (contributes to wire size).
  std::uint32_t payload_size = 0;
  /// Structured payload for the simulated apps (RPC messages, HTTP bodies).
  /// Copied by value; apps keep these small descriptor structs.
  std::any payload;
  /// When the packet entered the sender's stack (diagnostics only).
  sim::TimePoint created_at{};

  const IcmpHeader& icmp() const { return std::get<IcmpHeader>(l4); }
  IcmpHeader& icmp() { return std::get<IcmpHeader>(l4); }
  const UdpHeader& udp() const { return std::get<UdpHeader>(l4); }
  UdpHeader& udp() { return std::get<UdpHeader>(l4); }
  const TcpHeader& tcp() const { return std::get<TcpHeader>(l4); }
  TcpHeader& tcp() { return std::get<TcpHeader>(l4); }

  std::uint32_t l4_header_bytes() const;
  /// IP-layer size: IP header + L4 header + payload.
  std::uint32_t ip_size() const { return kIpHeaderBytes + l4_header_bytes() + payload_size; }
  /// Size on an Ethernet-framed wire.
  std::uint32_t wire_size() const { return kEthernetHeaderBytes + ip_size(); }

  std::string describe() const;
};

/// Convenience constructors used by the transports.
Packet make_icmp_packet(IpAddress src, IpAddress dst, IcmpHeader hdr,
                        std::uint32_t payload_size);
Packet make_udp_packet(IpAddress src, IpAddress dst, std::uint16_t sport,
                       std::uint16_t dport, std::uint32_t payload_size);
Packet make_tcp_packet(IpAddress src, IpAddress dst, TcpHeader hdr,
                       std::uint32_t payload_size);

}  // namespace tracemod::net
