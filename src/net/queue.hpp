// Drop-tail FIFO packet queue with byte and packet limits.
#pragma once

#include <cstdint>
#include <deque>

#include "net/packet.hpp"
#include "sim/assert.hpp"

namespace tracemod::net {

class DropTailQueue {
 public:
  struct Stats {
    std::uint64_t enqueued = 0;
    std::uint64_t dropped = 0;
    std::uint64_t dequeued = 0;
  };

  DropTailQueue(std::size_t max_packets, std::size_t max_bytes)
      : max_packets_(max_packets), max_bytes_(max_bytes) {
    TM_ASSERT(max_packets > 0 && max_bytes > 0);
  }

  /// Returns false (and counts a drop) if the packet does not fit.
  bool push(Packet pkt) {
    const std::size_t sz = pkt.wire_size();
    if (queue_.size() >= max_packets_ || bytes_ + sz > max_bytes_) {
      ++stats_.dropped;
      return false;
    }
    bytes_ += sz;
    queue_.push_back(std::move(pkt));
    ++stats_.enqueued;
    return true;
  }

  Packet pop() {
    TM_ASSERT(!queue_.empty());
    Packet pkt = std::move(queue_.front());
    queue_.pop_front();
    bytes_ -= pkt.wire_size();
    ++stats_.dequeued;
    return pkt;
  }

  bool empty() const { return queue_.empty(); }
  std::size_t size() const { return queue_.size(); }
  std::size_t bytes() const { return bytes_; }
  const Stats& stats() const { return stats_; }

 private:
  std::size_t max_packets_;
  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  std::deque<Packet> queue_;
  Stats stats_;
};

}  // namespace tracemod::net
