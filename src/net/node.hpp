// L3 host / router.
//
// A Node owns its devices, an address per device, a routing table, and a
// protocol dispatch table.  Transports (src/transport) register themselves
// as ProtocolHandlers.  Routers enable forwarding; hosts leave it off.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/device.hpp"
#include "net/packet.hpp"
#include "sim/random.hpp"
#include "sim/sim_context.hpp"

namespace tracemod::net {

/// Implemented by transports (ICMP/UDP/TCP demultiplexers).
class ProtocolHandler {
 public:
  virtual ~ProtocolHandler() = default;
  virtual void handle_packet(const Packet& pkt) = 0;
};

class Node {
 public:
  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t forwarded = 0;
    std::uint64_t no_route = 0;
    std::uint64_t ttl_expired = 0;
    std::uint64_t unclaimed_protocol = 0;
    std::uint64_t datagrams_fragmented = 0;
    std::uint64_t datagrams_reassembled = 0;
    std::uint64_t reassembly_evictions = 0;
  };

  /// Builds a node in the given simulation context; packet ids are stamped
  /// from the context, never from process state.  The seed drives this
  /// node's private random stream (protocol-level randomness).
  Node(sim::SimContext& ctx, std::string name, std::uint64_t seed = 1);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Adds a device with its interface address; returns the interface index.
  /// The Node installs itself as the device's receive callback.
  std::size_t add_interface(std::unique_ptr<NetDevice> dev, IpAddress addr);

  /// Replaces the device at an interface, preserving the address.  Used to
  /// wrap an existing device in a shim (trace tap, modulation layer) after
  /// construction.  The old device is passed to the factory.
  void wrap_interface(std::size_t index,
                      std::function<std::unique_ptr<NetDevice>(
                          std::unique_ptr<NetDevice>)> factory);

  /// Route: destinations matching network/prefix_len go out interface index.
  void add_route(IpAddress network, unsigned prefix_len, std::size_t interface);
  void set_default_route(std::size_t interface) { add_route(IpAddress{}, 0, interface); }

  void set_forwarding(bool on) { forwarding_ = on; }

  void register_protocol(Protocol proto, ProtocolHandler* handler);

  /// Routes and transmits a packet originating at this node.  Fills in the
  /// source address from the egress interface when unspecified, stamps the
  /// packet id and creation time, and fragments datagrams larger than the
  /// MTU.  Returns false if no route matched.
  bool send(Packet pkt);

  bool has_address(IpAddress addr) const;

  IpAddress address(std::size_t interface = 0) const;
  NetDevice& device(std::size_t interface = 0);
  std::size_t interface_count() const { return interfaces_.size(); }

  sim::SimContext& context() { return ctx_; }
  sim::EventLoop& loop() { return ctx_.loop(); }
  sim::Rng& rng() { return rng_; }
  const std::string& name() const { return name_; }
  const Stats& stats() const { return stats_; }

 private:
  struct Interface {
    std::unique_ptr<NetDevice> dev;
    IpAddress addr;
  };
  struct Route {
    IpAddress network;
    unsigned prefix_len;
    std::size_t interface;
  };

  void on_receive(Packet pkt);
  void deliver_local(const Packet& pkt);
  void transmit_via(std::size_t interface, Packet pkt);
  const Route* lookup_route(IpAddress dst) const;
  void install_callback(std::size_t index);

  sim::SimContext& ctx_;
  std::string name_;
  sim::Rng rng_;
  // Context-wide counters (cached references; the registry's references
  // are stable and the context outlives its nodes).
  std::uint64_t& m_sent_;
  std::uint64_t& m_received_;
  std::uint64_t& m_forwarded_;
  // Flight-recorder handles, resolved once; kNoTrack when telemetry is off.
  sim::TrackId trk_ip_ = sim::kNoTrack;
  sim::TrackId trk_transport_ = sim::kNoTrack;
  // End-to-end latency histogram; nullptr when telemetry is off.
  sim::Histogram* e2e_hist_ = nullptr;
  std::vector<Interface> interfaces_;
  std::vector<Route> routes_;  // kept sorted by prefix length, longest first
  std::vector<ProtocolHandler*> handlers_ = std::vector<ProtocolHandler*>(256, nullptr);
  bool forwarding_ = false;
  Stats stats_;

  // --- IP reassembly ---
  struct ReassemblyEntry {
    std::shared_ptr<const Packet> original;
    std::vector<bool> have;
    std::uint16_t remaining = 0;
    sim::TimePoint first_seen{};
  };
  std::unordered_map<std::uint64_t, ReassemblyEntry> reassembly_;
  std::uint32_t next_frag_id_ = 1;
};

}  // namespace tracemod::net
