#include "net/ethernet.hpp"

#include <algorithm>

namespace tracemod::net {

EthernetSegment::EthernetSegment(sim::EventLoop& loop, Config cfg)
    : loop_(loop), cfg_(cfg) {
  TM_ASSERT(cfg_.bandwidth_bps > 0);
}

void EthernetSegment::attach(EthernetDevice* dev) { ports_.push_back(dev); }

void EthernetSegment::detach(EthernetDevice* dev) {
  ports_.erase(std::remove(ports_.begin(), ports_.end(), dev), ports_.end());
}

sim::TimePoint EthernetSegment::reserve(std::uint32_t frame_bytes,
                                        sim::TimePoint* end_of_frame) {
  const sim::TimePoint start = std::max(loop_.now(), busy_until_);
  const auto tx_time =
      sim::from_seconds(static_cast<double>(frame_bytes) * 8.0 /
                        cfg_.bandwidth_bps);
  busy_until_ = start + tx_time + cfg_.interframe_gap;
  ++frames_;
  if (end_of_frame) *end_of_frame = start + tx_time;
  return start;
}

void EthernetSegment::deliver(const Packet& pkt, const EthernetDevice* sender) {
  for (EthernetDevice* port : ports_) {
    if (port == sender) continue;
    if (port->accepts(pkt.dst)) {
      port->receive_frame(pkt);
      return;  // unicast: first claimant wins (bridge tables are disjoint)
    }
  }
  // No claimant: frame falls off the segment, like a miss in a real bridge.
}

EthernetDevice::EthernetDevice(EthernetSegment& segment, std::string name,
                               std::size_t queue_packets,
                               std::size_t queue_bytes)
    : segment_(segment),
      name_(std::move(name)),
      queue_(queue_packets, queue_bytes) {
  segment_.attach(this);
}

EthernetDevice::~EthernetDevice() { segment_.detach(this); }

void EthernetDevice::transmit(Packet pkt) {
  const std::uint64_t id = pkt.id;
  if (!queue_.push(std::move(pkt))) {  // drop-tail
    if (tel_ != nullptr) {
      tel_->recorder().instant(trk_, "eth.drop", id, segment_.loop().now());
    }
    return;
  }
  pump();
}

void EthernetDevice::pump() {
  if (transmitting_ || queue_.empty()) return;
  transmitting_ = true;
  Packet pkt = queue_.pop();
  sim::TimePoint end_of_frame;
  const sim::TimePoint start = segment_.reserve(pkt.wire_size(), &end_of_frame);
  if (tel_ != nullptr) {
    // The serialization window is known now; record it with its (possibly
    // future) endpoints rather than scheduling anything.
    tel_->recorder().begin(trk_, "eth.tx", pkt.id, start,
                           static_cast<double>(pkt.wire_size()));
    tel_->recorder().end(trk_, "eth.tx", pkt.id, end_of_frame);
  }
  const sim::TimePoint arrival = end_of_frame + segment_.config().propagation;
  segment_.loop().schedule_at(
      arrival,
      [this, pkt = std::move(pkt)]() mutable { segment_.deliver(pkt, this); },
      "eth.deliver");
  // The transmitter is free again as soon as the frame leaves the wire; the
  // segment's busy window (frame + interframe gap) spaces the next one.
  segment_.loop().schedule_at(
      end_of_frame,
      [this] {
        transmitting_ = false;
        pump();
      },
      "eth.pump");
}

}  // namespace tracemod::net
