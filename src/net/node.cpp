#include "net/node.hpp"

#include <algorithm>

#include "sim/metric_names.hpp"
#include "sim/perf/perf.hpp"

namespace tracemod::net {

namespace {
bool prefix_match(IpAddress network, unsigned prefix_len, IpAddress dst) {
  if (prefix_len == 0) return true;
  const std::uint32_t mask =
      prefix_len >= 32 ? 0xffffffffu : ~((1u << (32 - prefix_len)) - 1u);
  return (network.value & mask) == (dst.value & mask);
}
}  // namespace

Node::Node(sim::SimContext& ctx, std::string name, std::uint64_t seed)
    : ctx_(ctx),
      name_(std::move(name)),
      rng_(seed),
      m_sent_(ctx.metrics().counter(sim::metric::kNetPacketsSent)),
      m_received_(ctx.metrics().counter(sim::metric::kNetPacketsReceived)),
      m_forwarded_(ctx.metrics().counter(sim::metric::kNetPacketsForwarded)) {
  sim::Telemetry& tel = ctx.telemetry();
  trk_ip_ = tel.track(name_, "ip");
  trk_transport_ = tel.track(name_, "transport");
  if (tel.enabled()) {
    const sim::TelemetryConfig& cfg = tel.config();
    e2e_hist_ = &ctx.metrics().histogram(sim::metric::kE2eLatencyMs,
                                         cfg.e2e_hist_lo_ms, cfg.e2e_hist_hi_ms,
                                         cfg.e2e_hist_bins);
  }
}

std::size_t Node::add_interface(std::unique_ptr<NetDevice> dev,
                                IpAddress addr) {
  TM_ASSERT(dev != nullptr);
  interfaces_.push_back(Interface{std::move(dev), addr});
  const std::size_t index = interfaces_.size() - 1;
  install_callback(index);
  return index;
}

void Node::install_callback(std::size_t index) {
  interfaces_[index].dev->set_receive_callback(
      [this](Packet pkt) { on_receive(std::move(pkt)); });
}

void Node::wrap_interface(
    std::size_t index,
    std::function<std::unique_ptr<NetDevice>(std::unique_ptr<NetDevice>)>
        factory) {
  TM_ASSERT(index < interfaces_.size());
  interfaces_[index].dev = factory(std::move(interfaces_[index].dev));
  TM_ASSERT(interfaces_[index].dev != nullptr);
  install_callback(index);
}

void Node::add_route(IpAddress network, unsigned prefix_len,
                     std::size_t interface) {
  TM_ASSERT(interface < interfaces_.size());
  TM_ASSERT(prefix_len <= 32);
  routes_.push_back(Route{network, prefix_len, interface});
  std::stable_sort(routes_.begin(), routes_.end(),
                   [](const Route& a, const Route& b) {
                     return a.prefix_len > b.prefix_len;
                   });
}

void Node::register_protocol(Protocol proto, ProtocolHandler* handler) {
  handlers_[static_cast<std::size_t>(proto)] = handler;
}

const Node::Route* Node::lookup_route(IpAddress dst) const {
  for (const Route& r : routes_) {
    if (prefix_match(r.network, r.prefix_len, dst)) return &r;
  }
  return nullptr;
}

void Node::transmit_via(std::size_t interface, Packet pkt) {
  interfaces_[interface].dev->transmit(std::move(pkt));
}

bool Node::send(Packet pkt) {
  sim::perf::PerfScope perf_scope(sim::perf::Domain::kPacketPath,
                                  "node.send");
  const Route* route = lookup_route(pkt.dst);
  if (route == nullptr) {
    ++stats_.no_route;
    return false;
  }
  if (pkt.src.is_unspecified()) pkt.src = interfaces_[route->interface].addr;
  if (pkt.id == 0) pkt.id = ctx_.next_packet_id();
  pkt.created_at = loop().now();
  ++stats_.sent;
  ++m_sent_;
  sim::Telemetry& tel = ctx_.telemetry();
  if (tel.enabled()) {
    tel.recorder().begin(trk_ip_, "pkt", pkt.id, loop().now(),
                         static_cast<double>(pkt.ip_size()));
  }

  if (pkt.ip_size() <= kMtuBytes) {
    transmit_via(route->interface, std::move(pkt));
    return true;
  }

  // IP fragmentation: split the datagram into MTU-sized pieces.  Each
  // fragment is a real packet on the wire (it is delayed, dropped, and
  // traced individually); the destination reassembles, and losing any
  // fragment loses the datagram.
  ++stats_.datagrams_fragmented;
  const std::uint32_t chunk =
      kMtuBytes - kIpHeaderBytes - pkt.l4_header_bytes();
  const std::uint32_t total = pkt.payload_size;
  const auto count =
      static_cast<std::uint16_t>((total + chunk - 1) / chunk);
  auto original = std::make_shared<const Packet>(std::move(pkt));
  const std::uint32_t frag_id = next_frag_id_++;
  for (std::uint16_t i = 0; i < count; ++i) {
    Packet frag;
    frag.id = ctx_.next_packet_id();
    frag.src = original->src;
    frag.dst = original->dst;
    frag.ttl = original->ttl;
    frag.protocol = original->protocol;
    frag.l4 = original->l4;
    frag.payload_size =
        std::min<std::uint32_t>(chunk, total - i * chunk);
    frag.frag_id = frag_id;
    frag.frag_index = i;
    frag.frag_count = count;
    // Only the first fragment carries the reassembly handle; duplicating
    // it onto every fragment would copy the payload state N times, and
    // losing any fragment loses the datagram regardless.
    if (i == 0) frag.payload = original;
    frag.created_at = loop().now();
    if (tel.enabled()) {
      tel.recorder().begin(trk_ip_, "frag", frag.id, loop().now(),
                           static_cast<double>(frag.ip_size()));
    }
    transmit_via(route->interface, std::move(frag));
  }
  return true;
}

bool Node::has_address(IpAddress addr) const {
  for (const Interface& intf : interfaces_) {
    if (intf.addr == addr) return true;
  }
  return false;
}

IpAddress Node::address(std::size_t interface) const {
  TM_ASSERT(interface < interfaces_.size());
  return interfaces_[interface].addr;
}

NetDevice& Node::device(std::size_t interface) {
  TM_ASSERT(interface < interfaces_.size());
  return *interfaces_[interface].dev;
}

void Node::deliver_local(const Packet& pkt) {
  sim::Telemetry& tel = ctx_.telemetry();
  if (tel.enabled()) {
    tel.recorder().end(trk_transport_, "pkt", pkt.id, loop().now());
    tel.recorder().instant(trk_transport_, "deliver", pkt.id, loop().now(),
                           static_cast<double>(pkt.payload_size));
    if (e2e_hist_ != nullptr && pkt.created_at != sim::TimePoint{}) {
      e2e_hist_->add(sim::to_seconds(loop().now() - pkt.created_at) * 1e3);
    }
  }
  ProtocolHandler* handler = handlers_[static_cast<std::size_t>(pkt.protocol)];
  if (handler != nullptr) {
    handler->handle_packet(pkt);
  } else {
    ++stats_.unclaimed_protocol;
  }
}

void Node::on_receive(Packet pkt) {
  sim::perf::PerfScope perf_scope(sim::perf::Domain::kPacketPath,
                                  "node.receive");
  if (has_address(pkt.dst)) {
    ++stats_.received;
    ++m_received_;
    if (!pkt.is_fragment()) {
      deliver_local(pkt);
      return;
    }
    sim::Telemetry& tel = ctx_.telemetry();
    if (tel.enabled()) {
      // Each fragment's own span ends when it arrives; the original
      // datagram's span ends at reassembly (deliver_local below).
      tel.recorder().end(trk_ip_, "frag", pkt.id, loop().now());
    }
    // Reassembly.  Stale partial datagrams are evicted lazily.
    const std::uint64_t key =
        (std::uint64_t{pkt.src.value} << 32) | pkt.frag_id;
    auto it = reassembly_.find(key);
    if (it == reassembly_.end()) {
      if (reassembly_.size() >= 256) {
        // Evict anything older than a reassembly lifetime (30 s).
        for (auto e = reassembly_.begin(); e != reassembly_.end();) {
          if (loop().now() - e->second.first_seen > sim::seconds(30)) {
            ++stats_.reassembly_evictions;
            e = reassembly_.erase(e);
          } else {
            ++e;
          }
        }
      }
      ReassemblyEntry entry;
      entry.have.assign(pkt.frag_count, false);
      entry.remaining = pkt.frag_count;
      entry.first_seen = loop().now();
      it = reassembly_.emplace(key, std::move(entry)).first;
    }
    ReassemblyEntry& entry = it->second;
    if (pkt.frag_index >= entry.have.size() || entry.have[pkt.frag_index]) {
      return;  // duplicate or inconsistent fragment
    }
    entry.have[pkt.frag_index] = true;
    if (auto original =
            std::any_cast<std::shared_ptr<const Packet>>(&pkt.payload)) {
      entry.original = *original;
    }
    if (--entry.remaining == 0 && entry.original != nullptr) {
      ++stats_.datagrams_reassembled;
      const Packet whole = *entry.original;
      reassembly_.erase(it);
      deliver_local(whole);
    }
    return;
  }
  if (!forwarding_) return;  // not ours, not a router: drop silently
  if (pkt.ttl <= 1) {
    ++stats_.ttl_expired;
    return;
  }
  pkt.ttl -= 1;
  const Route* route = lookup_route(pkt.dst);
  if (route == nullptr) {
    ++stats_.no_route;
    return;
  }
  ++stats_.forwarded;
  ++m_forwarded_;
  sim::Telemetry& tel = ctx_.telemetry();
  if (tel.enabled()) {
    tel.recorder().instant(trk_ip_, "ip.forward", pkt.id, loop().now(),
                           static_cast<double>(pkt.ttl));
  }
  interfaces_[route->interface].dev->transmit(std::move(pkt));
}

}  // namespace tracemod::net
