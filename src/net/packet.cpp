#include "net/packet.hpp"

#include <cstdio>

namespace tracemod::net {

const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kIcmp:
      return "icmp";
    case Protocol::kTcp:
      return "tcp";
    case Protocol::kUdp:
      return "udp";
  }
  return "?";
}

std::string TcpHeader::flags_str() const {
  std::string s;
  if (syn) s += 'S';
  if (ack_flag) s += 'A';
  if (fin) s += 'F';
  if (rst) s += 'R';
  if (s.empty()) return ".";
  return s;
}

std::uint32_t Packet::l4_header_bytes() const {
  switch (protocol) {
    case Protocol::kIcmp:
      return kIcmpHeaderBytes;
    case Protocol::kUdp:
      return kUdpHeaderBytes;
    case Protocol::kTcp:
      return kTcpHeaderBytes;
  }
  return 0;
}

std::string Packet::describe() const {
  char buf[160];
  switch (protocol) {
    case Protocol::kIcmp: {
      const auto& h = icmp();
      std::snprintf(buf, sizeof(buf), "icmp %s %s->%s id=%u seq=%u len=%u",
                    h.type == IcmpHeader::Type::kEchoRequest ? "echo" : "reply",
                    src.str().c_str(), dst.str().c_str(), h.id, h.seq,
                    payload_size);
      break;
    }
    case Protocol::kUdp: {
      const auto& h = udp();
      std::snprintf(buf, sizeof(buf), "udp %s:%u->%s:%u len=%u",
                    src.str().c_str(), h.src_port, dst.str().c_str(),
                    h.dst_port, payload_size);
      break;
    }
    case Protocol::kTcp: {
      const auto& h = tcp();
      std::snprintf(buf, sizeof(buf),
                    "tcp %s:%u->%s:%u %s seq=%llu ack=%llu len=%u",
                    src.str().c_str(), h.src_port, dst.str().c_str(),
                    h.dst_port, h.flags_str().c_str(),
                    static_cast<unsigned long long>(h.seq),
                    static_cast<unsigned long long>(h.ack), payload_size);
      break;
    }
    default:
      std::snprintf(buf, sizeof(buf), "proto=%u", static_cast<unsigned>(protocol));
  }
  return buf;
}

Packet make_icmp_packet(IpAddress src, IpAddress dst, IcmpHeader hdr,
                        std::uint32_t payload_size) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.protocol = Protocol::kIcmp;
  p.l4 = hdr;
  p.payload_size = payload_size;
  return p;
}

Packet make_udp_packet(IpAddress src, IpAddress dst, std::uint16_t sport,
                       std::uint16_t dport, std::uint32_t payload_size) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.protocol = Protocol::kUdp;
  p.l4 = UdpHeader{sport, dport};
  p.payload_size = payload_size;
  return p;
}

Packet make_tcp_packet(IpAddress src, IpAddress dst, TcpHeader hdr,
                       std::uint32_t payload_size) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.protocol = Protocol::kTcp;
  p.l4 = hdr;
  p.payload_size = payload_size;
  return p;
}

}  // namespace tracemod::net
