// Shared-bus Ethernet.
//
// An EthernetSegment serializes frames from all attached devices at the
// segment bandwidth (the paper's modulation testbed is an isolated 10 Mb/s
// Ethernet).  Each EthernetDevice owns a drop-tail transmit queue; frames
// are delivered to the attached device(s) whose address filter accepts the
// destination, which is how WavePoint bridges claim the mobile host's
// address on the wired side.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "net/device.hpp"
#include "net/queue.hpp"
#include "sim/event_loop.hpp"
#include "sim/telemetry.hpp"

namespace tracemod::net {

class EthernetDevice;

struct EthernetConfig {
  double bandwidth_bps = 10e6;
  sim::Duration propagation = sim::microseconds(5);
  /// Minimum gap between frames (models interframe spacing + MAC cost).
  sim::Duration interframe_gap = sim::microseconds(10);
};

class EthernetSegment {
 public:
  using Config = EthernetConfig;

  explicit EthernetSegment(sim::EventLoop& loop, Config cfg = {});

  /// Registers a port; called by EthernetDevice's constructor.
  void attach(EthernetDevice* dev);
  void detach(EthernetDevice* dev);

  /// Reserves the bus for one frame of the given size starting no earlier
  /// than now; returns the transmission start time.
  sim::TimePoint reserve(std::uint32_t frame_bytes,
                         sim::TimePoint* end_of_frame);

  /// Delivers a frame (already serialized on the bus) to accepting ports.
  void deliver(const Packet& pkt, const EthernetDevice* sender);

  sim::EventLoop& loop() { return loop_; }
  const Config& config() const { return cfg_; }
  std::uint64_t frames_carried() const { return frames_; }

 private:
  sim::EventLoop& loop_;
  Config cfg_;
  std::vector<EthernetDevice*> ports_;
  sim::TimePoint busy_until_ = sim::kEpoch;
  std::uint64_t frames_ = 0;
};

class EthernetDevice : public NetDevice {
 public:
  EthernetDevice(EthernetSegment& segment, std::string name,
                 std::size_t queue_packets = 128,
                 std::size_t queue_bytes = 256 * 1024);
  ~EthernetDevice() override;

  void transmit(Packet pkt) override;
  std::string name() const override { return name_; }

  /// Address filter: the device accepts frames whose IP destination it has
  /// claimed.  A host claims its own address; a bridge also claims the
  /// addresses it proxies for.
  void claim_address(IpAddress addr) { addresses_.insert(addr); }
  void unclaim_address(IpAddress addr) { addresses_.erase(addr); }
  bool accepts(IpAddress dst) const { return addresses_.count(dst) != 0; }

  /// Called by the segment when a frame addressed to us finishes arriving.
  void receive_frame(Packet pkt) { deliver_up(std::move(pkt)); }

  const DropTailQueue::Stats& queue_stats() const { return queue_.stats(); }

  /// Attaches the flight recorder (no-op while telemetry is disabled).
  /// The node label names this device's "eth" track in the export.
  void set_telemetry(sim::Telemetry& tel, const std::string& node) {
    if (!tel.enabled()) return;
    tel_ = &tel;
    trk_ = tel.track(node, "eth");
  }

 private:
  void pump();

  EthernetSegment& segment_;
  std::string name_;
  DropTailQueue queue_;
  std::unordered_set<IpAddress> addresses_;
  bool transmitting_ = false;
  sim::Telemetry* tel_ = nullptr;  // non-null only while enabled
  sim::TrackId trk_ = sim::kNoTrack;
};

}  // namespace tracemod::net
