#include "core/distiller.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "sim/assert.hpp"
#include "sim/perf/perf.hpp"

namespace tracemod::core {

std::vector<EchoGroup> reconstruct_echo_groups(
    const std::vector<EchoSent>& sent, const std::vector<EchoReply>& replies) {
  std::map<std::uint16_t, const EchoReply*> reply_by_seq;
  for (const auto& r : replies) reply_by_seq[r.icmp_seq] = &r;

  // Identify the workload's two packet sizes: the smallest observed size is
  // stage 1, the largest is stage 2.
  if (sent.size() < 3) return {};
  double s_small = 1e18, s_large = 0;
  for (const auto& e : sent) {
    s_small = std::min(s_small, static_cast<double>(e.ip_bytes));
    s_large = std::max(s_large, static_cast<double>(e.ip_bytes));
  }
  if (s_small >= s_large) return {};  // degenerate workload

  std::vector<EchoGroup> groups;
  for (std::size_t i = 0; i + 2 < sent.size(); ++i) {
    const auto& e1 = sent[i];
    const auto& e2 = sent[i + 1];
    const auto& e3 = sent[i + 2];
    if (e1.ip_bytes != static_cast<std::uint32_t>(s_small)) continue;
    if (e2.ip_bytes != static_cast<std::uint32_t>(s_large)) continue;
    if (e3.ip_bytes != static_cast<std::uint32_t>(s_large)) continue;
    if (e2.icmp_seq != static_cast<std::uint16_t>(e1.icmp_seq + 1)) continue;
    if (e3.icmp_seq != static_cast<std::uint16_t>(e1.icmp_seq + 2)) continue;

    const auto* r1 = reply_by_seq.count(e1.icmp_seq)
                         ? reply_by_seq[e1.icmp_seq]
                         : nullptr;
    const auto* r2 = reply_by_seq.count(e2.icmp_seq)
                         ? reply_by_seq[e2.icmp_seq]
                         : nullptr;
    const auto* r3 = reply_by_seq.count(e3.icmp_seq)
                         ? reply_by_seq[e3.icmp_seq]
                         : nullptr;
    if (r1 == nullptr || r2 == nullptr || r3 == nullptr) continue;

    EchoGroup g;
    g.at = r3->at;
    g.t1_s = sim::to_seconds(r1->rtt);
    g.t2_s = sim::to_seconds(r2->rtt);
    g.t3_s = sim::to_seconds(r3->rtt);
    g.s1_bytes = s_small;
    g.s2_bytes = s_large;
    if (g.t1_s <= 0 || g.t2_s <= 0 || g.t3_s <= 0) continue;
    groups.push_back(g);
  }
  return groups;
}

std::vector<Distiller::Estimate> estimate_delay_parameters(
    const std::vector<EchoGroup>& groups, Distiller::Stats* stats) {
  std::vector<Distiller::Estimate> estimates;
  std::optional<Distiller::Estimate> last_good;  // correction baseline
  for (const EchoGroup& g : groups) {
    ++stats->groups_total;
    // Equations (5)-(8).
    const double v = (g.t2_s - g.t1_s) / (2.0 * (g.s2_bytes - g.s1_bytes));
    double f = g.t1_s / 2.0 - g.s1_bytes * v;
    double vb = (g.t3_s - g.t2_s) / g.s2_bytes;
    double vr = v - vb;

    // Floating-point cancellation can leave Vr (or Vb) a hair below zero
    // when the true value is zero; that is not a "different conditions"
    // signal, so clamp instead of correcting.
    if (vr < 0.0 && -vr < 1e-3 * std::max(v, 1e-12)) vr = 0.0;
    if (vb < 0.0 && -vb < 1e-3 * std::max(v, 1e-12)) vb = 0.0;

    // A marginally negative F is a structural artifact of measuring over a
    // shared medium (replies queue behind the probe's own later packets,
    // inflating V slightly); clamp it rather than discarding the group.
    // Substantially negative parameters still take the correction path.
    if (f < 0.0 && f >= -0.1 * g.t1_s) f = 0.0;

    if (f >= 0.0 && vb >= 0.0 && vr >= 0.0) {
      Distiller::Estimate e{g.at, f, vb, vr, false};
      estimates.push_back(e);
      last_good = e;
      continue;
    }
    if (!last_good) {
      ++stats->groups_skipped;
      continue;
    }
    // Negative parameter: the packets saw different conditions.  Reuse the
    // previous good Vb/Vr and fold the observed-vs-expected time difference
    // into F, attributing short-term variation to media access delay
    // (Section 3.2.2).  The difference is averaged over the whole group so
    // a delay spike on any of the three packets is captured.  The baseline
    // stays last_good so the correction cannot cascade.
    const double v_prev =
        last_good->per_byte_bottleneck + last_good->per_byte_residual;
    const double t1_exp = 2.0 * (last_good->latency_s + g.s1_bytes * v_prev);
    const double t2_exp = 2.0 * (last_good->latency_s + g.s2_bytes * v_prev);
    const double t3_exp =
        t2_exp + g.s2_bytes * last_good->per_byte_bottleneck;
    // Media access delay strikes individual packets, so the group's worst
    // round-trip deviation is the best instantaneous estimate of it.
    const double diff = std::max({g.t1_s - t1_exp, g.t2_s - t2_exp,
                                  g.t3_s - t3_exp}) /
                        2.0;
    const double f_corrected = std::max(0.0, last_good->latency_s + diff);
    estimates.push_back(Distiller::Estimate{g.at, f_corrected,
                                            last_good->per_byte_bottleneck,
                                            last_good->per_byte_residual,
                                            true});
    ++stats->groups_corrected;
  }
  return estimates;
}

double loss_from_gap(std::int64_t in_window, std::int64_t seq_lo,
                     std::int64_t seq_hi, double previous, double max_loss) {
  const std::int64_t a = seq_hi - seq_lo - 1;
  if (a <= 0) return previous;
  const double ratio = std::min(
      1.0, static_cast<double>(in_window) / static_cast<double>(a));
  const double loss = 1.0 - std::sqrt(ratio);
  return std::clamp(loss, 0.0, max_loss);
}

double window_loss_over_replies(const std::vector<EchoReply>& replies,
                                std::uint64_t echoes_sent_total,
                                sim::TimePoint w_begin, sim::TimePoint w_end,
                                double previous, double max_loss) {
  if (replies.empty() || echoes_sent_total == 0) return previous;

  // Sequence of the last reply strictly before the window, and of the first
  // reply at/after the window's end; the workload's sequence numbers are
  // dense, so the gap tells us how many ECHOs went unanswered.
  std::int64_t seq_lo = -1;
  std::int64_t seq_hi = static_cast<std::int64_t>(echoes_sent_total);
  std::int64_t b = 0;
  for (const auto& r : replies) {
    if (r.at < w_begin) {
      seq_lo = std::max<std::int64_t>(seq_lo, r.icmp_seq);
    } else if (r.at >= w_end) {
      seq_hi = std::min<std::int64_t>(seq_hi, r.icmp_seq);
    } else {
      ++b;
    }
  }
  return loss_from_gap(b, seq_lo, seq_hi, previous, max_loss);
}

ReplayTrace assemble_replay(
    const DistillConfig& cfg,
    const std::vector<Distiller::Estimate>& estimates, sim::TimePoint t0,
    sim::TimePoint t_end,
    const std::function<double(sim::TimePoint, sim::TimePoint, double)>&
        window_loss,
    Distiller::Stats* stats) {
  struct WindowResult {
    bool have_delay = false;
    double f = 0, vb = 0, vr = 0;
  };
  std::vector<WindowResult> wins;
  std::vector<double> losses;

  double prev_loss = 0.0;
  for (sim::TimePoint step_start = t0; step_start < t_end;
       step_start += cfg.step) {
    const sim::TimePoint mid = step_start + cfg.step / 2;
    const sim::TimePoint w_begin = mid - cfg.window / 2;
    const sim::TimePoint w_end = mid + cfg.window / 2;

    WindowResult w;
    double f_sum = 0, vb_sum = 0, vr_sum = 0;
    std::size_t n = 0;
    for (const Distiller::Estimate& e : estimates) {
      if (e.at >= w_begin && e.at < w_end) {
        f_sum += e.latency_s;
        vb_sum += e.per_byte_bottleneck;
        vr_sum += e.per_byte_residual;
        ++n;
      }
    }
    if (n > 0) {
      w.have_delay = true;
      w.f = f_sum / static_cast<double>(n);
      w.vb = vb_sum / static_cast<double>(n);
      w.vr = vr_sum / static_cast<double>(n);
    } else {
      ++stats->windows_empty;
    }
    wins.push_back(w);

    prev_loss = window_loss(w_begin, w_end, prev_loss);
    losses.push_back(prev_loss);
  }

  // Fill windows with no delay estimate (deep outages) from neighbours:
  // forward fill, then backward fill for a leading gap.
  for (std::size_t i = 1; i < wins.size(); ++i) {
    if (!wins[i].have_delay && wins[i - 1].have_delay) {
      wins[i] = wins[i - 1];
    }
  }
  for (std::size_t i = wins.size(); i-- > 1;) {
    if (!wins[i - 1].have_delay && wins[i].have_delay) {
      wins[i - 1] = wins[i];
    }
  }

  std::vector<QualityTuple> tuples;
  tuples.reserve(wins.size());
  for (std::size_t i = 0; i < wins.size(); ++i) {
    if (!wins[i].have_delay) continue;  // trace had no usable group at all
    tuples.push_back(
        QualityTuple{cfg.step, wins[i].f, wins[i].vb, wins[i].vr, losses[i]});
  }
  return ReplayTrace(std::move(tuples));
}

ReplayTrace Distiller::distill(const trace::CollectedTrace& trace) {
  sim::perf::PerfScope perf_scope(sim::perf::Domain::kDistill,
                                  "distill.run");
  stats_ = Stats{};
  std::vector<EchoSent> sent;
  std::vector<EchoReply> replies;
  for (const auto& e : trace.echoes_sent()) {
    sent.push_back(EchoSent{e.icmp_seq, e.ip_bytes});
  }
  for (const auto& r : trace.echo_replies()) {
    replies.push_back(EchoReply{r.at, r.rtt(), r.icmp_seq});
  }

  const auto groups = reconstruct_echo_groups(sent, replies);
  estimates_ = estimate_delay_parameters(groups, &stats_);

  if (trace.records.empty()) return ReplayTrace{};
  const sim::TimePoint t0 = trace::record_time(trace.records.front());
  const sim::TimePoint t_end = trace::record_time(trace.records.back());
  const std::uint64_t echoes_total = sent.size();

  return assemble_replay(
      cfg_, estimates_, t0, t_end,
      [&](sim::TimePoint w_begin, sim::TimePoint w_end, double prev) {
        return window_loss_over_replies(replies, echoes_total, w_begin, w_end,
                                        prev, cfg_.max_loss);
      },
      &stats_);
}

}  // namespace tracemod::core
