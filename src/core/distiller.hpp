// Trace distillation (paper Section 3.2.2).
//
// Transforms a collected trace into a replay trace:
//   1. reconstruct the ping workload's packet groups (one small ECHO, two
//      large back-to-back ECHOs) from the recorded stream;
//   2. per complete group, solve equations (5)-(8) for F, Vb, Vr using only
//      round-trip times taken on a single host;
//   3. when a group yields negative parameters (the packets saw different
//      network conditions), apply the paper's correction: keep the previous
//      Vb/Vr, fold the observed/expected difference into F, and do not let
//      the correction cascade;
//   4. slide a window (default 5 s) over the estimates, emitting one delay
//      tuple per step as the window average;
//   5. per window, estimate the loss rate from ECHOREPLY sequence-number
//      gaps in and immediately surrounding the window: L = 1 - sqrt(b/a).
#pragma once

#include <optional>
#include <vector>

#include "core/model.hpp"
#include "trace/records.hpp"

namespace tracemod::core {

struct DistillConfig {
  sim::Duration window = sim::seconds(5);
  sim::Duration step = sim::seconds(1);
  double max_loss = 0.99;  ///< cap so modulation never fully blackholes
};

class Distiller {
 public:
  /// One per-group estimate of the instantaneous delay parameters.
  struct Estimate {
    sim::TimePoint at;  ///< completion time of the group (stage-1 reply)
    double latency_s = 0.0;
    double per_byte_bottleneck = 0.0;
    double per_byte_residual = 0.0;
    bool corrected = false;  ///< negative-parameter correction applied
  };

  struct Stats {
    std::size_t groups_total = 0;      ///< complete 3-reply groups
    std::size_t groups_corrected = 0;  ///< negative-parameter corrections
    std::size_t groups_skipped = 0;    ///< unusable (no prior estimate)
    std::size_t windows_empty = 0;     ///< windows with no delay estimate
  };

  explicit Distiller(DistillConfig cfg = {}) : cfg_(cfg) {}

  /// Runs the full single-pass distillation.
  ReplayTrace distill(const trace::CollectedTrace& trace);

  /// The per-group estimates from the last distill() call (for analysis
  /// and the figure benches).
  const std::vector<Estimate>& estimates() const { return estimates_; }
  const Stats& stats() const { return stats_; }
  const DistillConfig& config() const { return cfg_; }

 private:
  struct Group {
    sim::TimePoint at;
    double t1_s, t2_s, t3_s;   ///< round-trip times, seconds
    double s1_bytes, s2_bytes; ///< packet sizes (IP bytes)
  };

  std::vector<Group> reconstruct_groups(const trace::CollectedTrace& trace);
  void estimate_delays(const std::vector<Group>& groups);
  double window_loss(const std::vector<trace::PacketRecord>& replies,
                     std::uint64_t echoes_sent_total, sim::TimePoint w_begin,
                     sim::TimePoint w_end, double previous) const;

  DistillConfig cfg_;
  std::vector<Estimate> estimates_;
  Stats stats_;
};

}  // namespace tracemod::core
