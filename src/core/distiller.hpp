// Trace distillation (paper Section 3.2.2).
//
// Transforms a collected trace into a replay trace:
//   1. reconstruct the ping workload's packet groups (one small ECHO, two
//      large back-to-back ECHOs) from the recorded stream;
//   2. per complete group, solve equations (5)-(8) for F, Vb, Vr using only
//      round-trip times taken on a single host;
//   3. when a group yields negative parameters (the packets saw different
//      network conditions), apply the paper's correction: keep the previous
//      Vb/Vr, fold the observed/expected difference into F, and do not let
//      the correction cascade;
//   4. slide a window (default 5 s) over the estimates, emitting one delay
//      tuple per step as the window average;
//   5. per window, estimate the loss rate from ECHOREPLY sequence-number
//      gaps in and immediately surrounding the window: L = 1 - sqrt(b/a).
//
// The pipeline stages are free functions over compact echo projections so
// the in-memory Distiller and the corpus-scale streaming distiller
// (stream_distiller.hpp) run the exact same arithmetic in the exact same
// order -- that is what makes their outputs bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/model.hpp"
#include "trace/records.hpp"

namespace tracemod::core {

struct DistillConfig {
  sim::Duration window = sim::seconds(5);
  sim::Duration step = sim::seconds(1);
  double max_loss = 0.99;  ///< cap so modulation never fully blackholes
};

// --- compact echo projections -----------------------------------------------
//
// Everything distillation reads from a packet record, and nothing else;
// the streaming distiller buffers windows of these (18 bytes a reply)
// instead of full TraceRecords.

struct EchoSent {
  std::uint16_t icmp_seq = 0;
  std::uint32_t ip_bytes = 0;
};

struct EchoReply {
  sim::TimePoint at{};
  sim::Duration rtt{};
  std::uint16_t icmp_seq = 0;
};

inline bool is_echo_sent(const trace::PacketRecord& p) {
  return p.icmp_kind == trace::IcmpKind::kEcho &&
         p.dir == trace::PacketDirection::kOutgoing;
}

inline bool is_echo_reply(const trace::PacketRecord& p) {
  return p.icmp_kind == trace::IcmpKind::kEchoReply &&
         p.dir == trace::PacketDirection::kIncoming;
}

/// One reconstructed probe group: round-trip times and sizes for the
/// small/large/large triple.
struct EchoGroup {
  sim::TimePoint at;          ///< completion time (stage-1 reply)
  double t1_s, t2_s, t3_s;    ///< round-trip times, seconds
  double s1_bytes, s2_bytes;  ///< packet sizes (IP bytes)
};

class Distiller {
 public:
  /// One per-group estimate of the instantaneous delay parameters.
  struct Estimate {
    sim::TimePoint at;  ///< completion time of the group (stage-1 reply)
    double latency_s = 0.0;
    double per_byte_bottleneck = 0.0;
    double per_byte_residual = 0.0;
    bool corrected = false;  ///< negative-parameter correction applied
  };

  struct Stats {
    std::size_t groups_total = 0;      ///< complete 3-reply groups
    std::size_t groups_corrected = 0;  ///< negative-parameter corrections
    std::size_t groups_skipped = 0;    ///< unusable (no prior estimate)
    std::size_t windows_empty = 0;     ///< windows with no delay estimate
  };

  explicit Distiller(DistillConfig cfg = {}) : cfg_(cfg) {}

  /// Runs the full single-pass distillation.
  ReplayTrace distill(const trace::CollectedTrace& trace);

  /// The per-group estimates from the last distill() call (for analysis
  /// and the figure benches).
  const std::vector<Estimate>& estimates() const { return estimates_; }
  const Stats& stats() const { return stats_; }
  const DistillConfig& config() const { return cfg_; }

 private:
  DistillConfig cfg_;
  std::vector<Estimate> estimates_;
  Stats stats_;
};

// --- shared pipeline stages -------------------------------------------------

/// Stage 1: reconstruct complete small/large/large probe groups from the
/// send order and the reply sequence numbers (last reply per seq wins).
std::vector<EchoGroup> reconstruct_echo_groups(
    const std::vector<EchoSent>& sent, const std::vector<EchoReply>& replies);

/// Stages 2-3: equations (5)-(8) plus the negative-parameter correction.
/// Sequential over groups (the correction baseline threads through).
std::vector<Distiller::Estimate> estimate_delay_parameters(
    const std::vector<EchoGroup>& groups, Distiller::Stats* stats);

/// Stage 5 arithmetic: L = 1 - sqrt(b/a) from integer gap inputs, with the
/// previous window's loss carried through unmeasurable windows.  Shared so
/// the streaming distiller's merged integer summaries yield the identical
/// double.
double loss_from_gap(std::int64_t in_window, std::int64_t seq_lo,
                     std::int64_t seq_hi, double previous, double max_loss);

/// Per-step-window loss over a reply projection (the in-memory stage 5).
double window_loss_over_replies(const std::vector<EchoReply>& replies,
                                std::uint64_t echoes_sent_total,
                                sim::TimePoint w_begin, sim::TimePoint w_end,
                                double previous, double max_loss);

/// Stage 4 + assembly: slide the window over the estimates, average per
/// step, fill empty windows from neighbours, and pair each step with the
/// loss the callback reports.  The callback is invoked once per step in
/// step order with (w_begin, w_end, previous_loss).
ReplayTrace assemble_replay(
    const DistillConfig& cfg, const std::vector<Distiller::Estimate>& estimates,
    sim::TimePoint t0, sim::TimePoint t_end,
    const std::function<double(sim::TimePoint, sim::TimePoint, double)>&
        window_loss,
    Distiller::Stats* stats);

}  // namespace tracemod::core
