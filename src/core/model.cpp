#include "core/model.hpp"

#include <cmath>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "sim/assert.hpp"
#include "sim/io/durable.hpp"

namespace tracemod::core {

sim::Duration ReplayTrace::total_duration() const {
  sim::Duration total{};
  for (const QualityTuple& t : tuples_) total += t.d;
  return total;
}

const QualityTuple& ReplayTrace::at_offset(sim::Duration offset) const {
  TM_ASSERT(!tuples_.empty());
  sim::Duration acc{};
  for (const QualityTuple& t : tuples_) {
    acc += t.d;
    if (offset < acc) return t;
  }
  return tuples_.back();
}

double ReplayTrace::mean_latency_s() const {
  double num = 0.0, den = 0.0;
  for (const QualityTuple& t : tuples_) {
    num += t.latency_s * sim::to_seconds(t.d);
    den += sim::to_seconds(t.d);
  }
  return den > 0.0 ? num / den : 0.0;
}

double ReplayTrace::mean_bottleneck_per_byte() const {
  double num = 0.0, den = 0.0;
  for (const QualityTuple& t : tuples_) {
    num += t.per_byte_bottleneck * sim::to_seconds(t.d);
    den += sim::to_seconds(t.d);
  }
  return den > 0.0 ? num / den : 0.0;
}

double ReplayTrace::mean_loss() const {
  double num = 0.0, den = 0.0;
  for (const QualityTuple& t : tuples_) {
    num += t.loss * sim::to_seconds(t.d);
    den += sim::to_seconds(t.d);
  }
  return den > 0.0 ? num / den : 0.0;
}

void ReplayTrace::serialize(std::ostream& out) const {
  out << "# tracemod replay v1\n";
  out << "# d_seconds latency_s vb_s_per_byte vr_s_per_byte loss\n";
  out.precision(12);
  for (const QualityTuple& t : tuples_) {
    out << sim::to_seconds(t.d) << ' ' << t.latency_s << ' '
        << t.per_byte_bottleneck << ' ' << t.per_byte_residual << ' '
        << t.loss << '\n';
  }
}

namespace {

[[noreturn]] void parse_fail(std::size_t line_no, const std::string& what,
                             const std::string& line) {
  throw std::runtime_error("replay trace: line " + std::to_string(line_no) +
                           ": " + what + ": " + line);
}

}  // namespace

ReplayTrace ReplayTrace::parse(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line.rfind("# tracemod replay v1", 0) != 0) {
    throw std::runtime_error("replay trace: missing version header");
  }
  std::vector<QualityTuple> tuples;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    double d_s, f, vb, vr, loss;
    std::string extra;
    if (!(ls >> d_s >> f >> vb >> vr >> loss)) {
      parse_fail(line_no, "malformed tuple (want 5 numeric fields)", line);
    }
    if (ls >> extra) {
      parse_fail(line_no, "trailing garbage after tuple", line);
    }
    // Every field must be a real number: NaN/inf pass naive comparisons
    // and then poison every duration-weighted mean downstream.
    if (!std::isfinite(d_s) || !std::isfinite(f) || !std::isfinite(vb) ||
        !std::isfinite(vr) || !std::isfinite(loss)) {
      parse_fail(line_no, "non-finite value", line);
    }
    if (d_s <= 0.0) {
      parse_fail(line_no,
                 "non-positive segment duration (timestamps must advance "
                 "monotonically)",
                 line);
    }
    if (f < 0.0) parse_fail(line_no, "negative latency", line);
    if (vb < 0.0 || vr < 0.0) {
      parse_fail(line_no, "negative per-byte cost (bandwidth)", line);
    }
    if (loss < 0.0 || loss > 1.0) {
      parse_fail(line_no, "loss outside [0,1]", line);
    }
    tuples.push_back(QualityTuple{sim::from_seconds(d_s), f, vb, vr, loss});
  }
  return ReplayTrace(std::move(tuples));
}

void ReplayTrace::save(const std::string& path) const {
  // Atomic replace: a distilled replay trace is a final artifact; a crash
  // mid-save must not leave a half-serialized file at the target path.
  std::ostringstream out;
  serialize(out);
  const sim::io::IoResult r = sim::io::write_file_atomic(path, out.str());
  if (!r.ok) {
    if (r.error.op == sim::io::IoOp::kOpen) {
      throw std::runtime_error("cannot open for writing: " + path);
    }
    throw std::runtime_error("write failed: " + path + " (" +
                             r.error.describe() + ")");
  }
}

ReplayTrace ReplayTrace::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return parse(in);
}

ReplayTrace ReplayTrace::constant(sim::Duration total, sim::Duration step,
                                  double latency_s, double bandwidth_bps,
                                  double loss) {
  TM_ASSERT(step.count() > 0 && bandwidth_bps > 0);
  std::vector<QualityTuple> tuples;
  const double vb = 8.0 / bandwidth_bps;
  for (sim::Duration t{}; t < total; t += step) {
    tuples.push_back(QualityTuple{step, latency_s, vb, vb * 0.05, loss});
  }
  return ReplayTrace(std::move(tuples));
}

ReplayTrace ReplayTrace::bandwidth_step(sim::Duration total,
                                        sim::Duration step, double latency_s,
                                        double low_bps, double high_bps,
                                        sim::Duration period, double loss) {
  TM_ASSERT(step.count() > 0 && period.count() > 0);
  std::vector<QualityTuple> tuples;
  for (sim::Duration t{}; t < total; t += step) {
    const bool high = (t.count() / (period.count() / 2)) % 2 == 0;
    const double bw = high ? high_bps : low_bps;
    tuples.push_back(
        QualityTuple{step, latency_s, 8.0 / bw, 0.0, loss});
  }
  return ReplayTrace(std::move(tuples));
}

ReplayTrace ReplayTrace::wavelan_like(sim::Duration total) {
  // Typical WaveLAN figures from the paper's traces: ~3 ms latency,
  // ~1.5 Mb/s bottleneck bandwidth, a few percent loss.
  return constant(total, sim::seconds(1), 0.003, 1.5e6, 0.02);
}

}  // namespace tracemod::core
