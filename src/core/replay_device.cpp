#include "core/replay_device.hpp"

#include "sim/metric_names.hpp"
#include "sim/sim_context.hpp"

namespace tracemod::core {

ModulationDaemon::ModulationDaemon(sim::EventLoop& loop,
                                   ReplayPseudoDevice& dev, ReplayTrace trace,
                                   bool loop_trace, sim::Duration wakeup)
    : loop_(loop),
      dev_(dev),
      trace_(std::move(trace)),
      loop_trace_(loop_trace),
      wakeup_(wakeup),
      timer_(loop) {}

void ModulationDaemon::start() {
  if (running_) return;
  running_ = true;
  pump();
}

void ModulationDaemon::stop() {
  running_ = false;
  timer_.cancel();
}

void ModulationDaemon::set_faults(trace::FaultInjector* injector,
                                  trace::DaemonFaultConfig cfg) {
  faults_ = injector;
  fault_cfg_ = cfg;
}

void ModulationDaemon::set_telemetry(sim::SimContext& ctx) {
  if (!ctx.telemetry().enabled()) return;
  tel_ = &ctx.telemetry();
  trk_ = tel_->track("daemon", "replay");
  depth_series_ = &ctx.metrics().series(sim::metric::kReplayBufferDepth);
}

void ModulationDaemon::pump() {
  if (!running_) return;
  if (faults_ != nullptr) {
    // Injected starvation: this wakeup stalls instead of feeding the
    // pseudo-device, so the modulation layer runs the buffer dry and holds
    // its current tuple past its expiry -- the degradation an overloaded
    // collection host inflicts on a real daemon.
    if (auto stall = faults_->daemon_stall(fault_cfg_)) {
      ++stalled_wakeups_;
      if (tel_ != nullptr) {
        tel_->recorder().instant(trk_, "daemon.stall", stalled_wakeups_,
                                 loop_.now(),
                                 sim::to_seconds(*stall));
      }
      timer_.arm(*stall, [this] { pump(); }, "daemon.pump");
      return;
    }
  }
  const auto& tuples = trace_.tuples();
  while (next_ < tuples.size() || loop_trace_) {
    if (next_ >= tuples.size()) next_ = 0;  // loop over the file
    if (tuples.empty()) break;
    if (!dev_.write(tuples[next_])) {
      // Buffer full: "the daemon blocks until there is room"; wake up later.
      if (depth_series_ != nullptr) {
        depth_series_->sample(loop_.now(),
                              static_cast<double>(dev_.size()));
      }
      const sim::Duration delay =
          faults_ != nullptr ? faults_->daemon_wakeup(fault_cfg_, wakeup_)
                             : wakeup_;
      timer_.arm(delay, [this] { pump(); }, "daemon.pump");
      return;
    }
    ++next_;
  }
  if (depth_series_ != nullptr) {
    depth_series_->sample(loop_.now(), static_cast<double>(dev_.size()));
  }
  // Wrote the file of tuples once: close the pseudo-device (Section 3.3).
  dev_.close_writer();
  finished_ = true;
  running_ = false;
}

}  // namespace tracemod::core
