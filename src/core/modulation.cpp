#include "core/modulation.hpp"

#include <algorithm>

#include "sim/metric_names.hpp"
#include "sim/perf/perf.hpp"
#include "sim/sim_context.hpp"

namespace tracemod::core {

ModulationLayer::ModulationLayer(std::unique_ptr<net::NetDevice> inner,
                                 sim::EventLoop& loop,
                                 ReplayPseudoDevice& device,
                                 ModulationConfig cfg)
    : net::DeviceShim(std::move(inner)),
      loop_(loop),
      device_(device),
      cfg_(cfg),
      tick_(cfg.tick),
      rng_(cfg.drop_seed) {}

void ModulationLayer::set_telemetry(sim::SimContext& ctx,
                                    const std::string& node) {
  m_drops_ = &ctx.metrics().counter(sim::metric::kModulationDrops);
  if (!ctx.telemetry().enabled()) return;
  tel_ = &ctx.telemetry();
  trk_ = tel_->track(node, "modulation");
  depth_series_ = &ctx.metrics().series(sim::metric::kDelayQueueDepth);
  backlog_series_ = &ctx.metrics().series(sim::metric::kBottleneckBacklog);
}

bool ModulationLayer::refresh_tuple() {
  if (!have_tuple_) {
    auto next = device_.read();
    if (!next) return false;  // nothing to modulate with yet
    tuple_ = *next;
    have_tuple_ = true;
    tuple_expires_ = loop_.now() + tuple_.d;
    ++stats_.tuples_consumed;
  }
  // Advance through segments whose emulated time has elapsed.
  while (loop_.now() >= tuple_expires_) {
    auto next = device_.read();
    if (!next) {
      if (device_.writer_closed()) {
        // The daemon wrote the trace once and closed the pseudo-device:
        // the experiment is over, stop modulating.
        have_tuple_ = false;
        return false;
      }
      break;  // daemon merely behind: hold the current tuple
    }
    tuple_ = *next;
    tuple_expires_ += tuple_.d;
    ++stats_.tuples_consumed;
  }
  return true;
}

void ModulationLayer::on_outbound(net::Packet pkt) {
  modulate(std::move(pkt), Direction::kOut);
}

void ModulationLayer::on_inbound(net::Packet pkt) {
  modulate(std::move(pkt), Direction::kIn);
}

void ModulationLayer::modulate(net::Packet pkt, Direction dir) {
  sim::perf::PerfScope perf_scope(sim::perf::Domain::kModulation,
                                  "modulation.modulate");
  if (!refresh_tuple()) {
    // No model parameters yet: transparent pass-through.
    ++stats_.passed_unmodulated;
    if (dir == Direction::kOut) {
      send_down(std::move(pkt));
    } else {
      send_up(std::move(pkt));
    }
    return;
  }
  if (dir == Direction::kOut) {
    ++stats_.modulated_out;
  } else {
    ++stats_.modulated_in;
  }

  const double s = pkt.ip_size();
  double vb = tuple_.per_byte_bottleneck;
  if (dir == Direction::kIn) {
    // Endpoint placement: inbound packets were already serialized by the
    // physical network before reaching the delay queue, and the queue
    // charges them the full emulated cost again.  Compensation subtracts
    // the measured physical per-byte cost to cancel the double charge.
    vb = std::max(0.0, vb + cfg_.inbound_physical_vb -
                           cfg_.inbound_vb_compensation);
  }

  // Unified bottleneck queue shared by both directions.
  const sim::TimePoint now = loop_.now();
  const sim::TimePoint start = std::max(now, bottleneck_busy_until_);
  const sim::TimePoint bottleneck_done = start + sim::from_seconds(s * vb);
  if (tel_ != nullptr) {
    // The whole bottleneck window is decided here; record it with its
    // (future) endpoints.  The backlog sample is what this packet found
    // queued ahead of it, in seconds of transmission time.
    backlog_series_->sample(now, sim::to_seconds(start - now));
    tel_->recorder().begin(trk_, "modulate", pkt.id, now, s);
    tel_->recorder().begin(trk_, "bottleneck", pkt.id, start, s);
    tel_->recorder().end(trk_, "bottleneck", pkt.id, bottleneck_done);
  }
  bottleneck_busy_until_ = bottleneck_done;

  // Losses strike after the bottleneck: a dropped packet still consumed
  // bottleneck capacity.
  if (rng_.chance(tuple_.loss)) {
    ++stats_.dropped;
    if (m_drops_ != nullptr) ++*m_drops_;
    if (tel_ != nullptr) {
      tel_->recorder().instant(trk_, "mod.drop", pkt.id, bottleneck_done);
      tel_->recorder().end(trk_, "modulate", pkt.id, bottleneck_done);
    }
    return;
  }

  const sim::TimePoint release_ideal =
      bottleneck_done + sim::from_seconds(tuple_.latency_s +
                                          s * tuple_.per_byte_residual);
  const sim::Duration delay = release_ideal - now;

  auto release = [this, dir](net::Packet p) {
    if (dir == Direction::kOut) {
      send_down(std::move(p));
    } else {
      send_up(std::move(p));
    }
  };

  if (tick_.below_threshold(delay)) {
    // Under half a clock tick: send immediately (Section 3.3).
    ++stats_.sent_immediately;
    if (tel_ != nullptr) {
      tel_->recorder().instant(trk_, "mod.send_now", pkt.id, now);
      tel_->recorder().end(trk_, "modulate", pkt.id, now);
    }
    release(std::move(pkt));
    return;
  }
  ++stats_.scheduled;
  const sim::TimePoint at = tick_.quantize(release_ideal);
  const std::uint64_t id = pkt.id;
  if (tel_ != nullptr) {
    tel_->recorder().end(trk_, "modulate", id, at);
    depth_series_->sample(now, static_cast<double>(++delay_queue_depth_));
  }
  loop_.schedule_at(
      at,
      [this, release = std::move(release), pkt = std::move(pkt)]() mutable {
        if (tel_ != nullptr) {
          depth_series_->sample(loop_.now(),
                                static_cast<double>(--delay_queue_depth_));
        }
        release(std::move(pkt));
      },
      "mod.release");
}

}  // namespace tracemod::core
