// Bounded-memory streaming distillation for production-volume corpora
// (ROADMAP item 5: multi-GB traces, faster than real time, salvage
// semantics and auditor verdicts intact).
//
// Two passes over the file, neither of which slurps it:
//
//   Pass 1 (serial scan, flat RSS): stream every record once through
//   trace::TraceStreamReader in salvage mode.  Produces the *plan*: the
//   corpus partitioned into byte-range windows (a new window starts at the
//   first frame whose record time is a span past the window's first), the
//   global damage report, per-window record/echo counts, and the complete
//   integer loss lattice -- for every output step, the reply count inside
//   the step window and the sequence gap around it.  Loss is therefore
//   final after pass 1: it never depends on which windows later shed their
//   buffers, so budget pressure can never fabricate a loss spike.
//
//   Pass 2 (parallel over sim::TaskPool): each window independently
//   re-reads its byte range (headerless frame-range mode) and extracts the
//   compact echo projections (core::EchoSent / core::EchoReply) into an
//   exactly-sized arena allocation.  Window extraction is deterministic
//   byte-range parsing, so results are identical however windows are
//   scheduled -- serial and parallel runs merge the same bytes.
//
//   Merge (serial): concatenate window projections in index order and run
//   the exact shared pipeline from distiller.hpp -- same arithmetic, same
//   order, bit-identical to core::Distiller on the same records.
//
// MemoryBudget: per-window arena sizes are known after pass 1, so the shed
// plan is decided up front, deterministically, in window-index order --
// independent of thread count and scheduling.  A window is shed when it
// alone exceeds budget/max_inflight or when cumulative retained bytes
// exceed the budget; shedding drops the window's delay contribution
// (neighbour-filled, like any deep outage) but keeps its loss summaries,
// and the run degrades to DistillStatus::kDegraded instead of throwing
// bad_alloc.
//
// Checkpoints: with a journal path configured, the plan and every finished
// window are appended to a CRC-framed TMDJ journal (the TMSJ idiom from
// scenario supervision).  A killed run re-validates the journal against a
// fingerprint of the input and config, reuses the plan and intact windows,
// recomputes the rest, and produces byte-identical output -- the journal
// stores only integers, so there is no round-trip drift.
//
// Damage containment: a corrupted region becomes LostRecords markers in
// pass 1 (stream_reader salvage), which mark their windows damaged; those
// windows surface as audit::Verdict::kUnauditable through
// audit::window_verdict, never as a breach, and never abort the corpus.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/distiller.hpp"
#include "sim/status/status.hpp"
#include "trace/trace_io.hpp"

namespace tracemod::sim {
class MetricsRegistry;
class TaskPool;
}
namespace tracemod::sim::io {
class FaultPlan;
}

namespace tracemod::core {

/// Hard cap on the echo projections retained across windows.  Zero bytes
/// means unlimited.  max_inflight is the shed granularity (a single window
/// may not hold more than bytes/max_inflight) and the parallelism cap; it
/// is part of the shed plan, so runs with different thread counts shed the
/// same windows.
struct MemoryBudget {
  std::uint64_t bytes = 0;
  unsigned max_inflight = 8;
};

struct StreamDistillConfig {
  DistillConfig distill;
  /// Target time span of one corpus window (byte-range re-read unit).
  sim::Duration span = sim::seconds(60);
  MemoryBudget budget;
  /// Worker threads for pass 2; 0 picks hardware concurrency.  Output is
  /// identical for every value.
  unsigned threads = 0;
  /// CRC-framed checkpoint journal; empty disables checkpointing.
  std::string checkpoint_path;
  /// Reuse a valid journal left by a killed run (fingerprint-checked).
  bool resume = false;
  /// Fault plan for the checkpoint journal's syscalls; nullptr consults
  /// the ambient TRACEMOD_IO_FAULTS plan (tests inject locally, CI chaos
  /// drills via environment).  Faults here can only degrade resumability,
  /// never the distilled output.
  sim::io::FaultPlan* checkpoint_fault_plan = nullptr;
  /// Optional distill.* counters (sim/metric_names.hpp).
  sim::MetricsRegistry* metrics = nullptr;
  /// Live status board (sim/status/status.hpp): pass 1 publishes records
  /// streamed, pass 2 per-window progress.  Null (default) adds no code to
  /// the pipeline; the distilled output is identical either way.
  sim::status::StatusBoard* status = nullptr;
};

/// Per-window accounting, surfaced for auditing and reporting.
struct WindowSummary {
  std::uint64_t begin_offset = 0;  ///< first byte of the window's frames
  std::uint64_t end_offset = 0;    ///< one past the last byte
  std::uint64_t records = 0;       ///< records decoded in the range
  std::uint64_t sent_echoes = 0;
  std::uint64_t replies = 0;
  bool damaged = false;  ///< salvage markers fell inside the range
  bool shed = false;     ///< echo buffers dropped to honour the budget
  bool resumed = false;  ///< restored from the checkpoint journal
};

enum class DistillStatus : std::uint8_t {
  kOk = 0,        ///< clean corpus, full fidelity
  kSalvaged = 1,  ///< damage contained to unauditable windows
  kDegraded = 2,  ///< memory budget forced shedding
};

struct StreamDistillStats {
  std::uint64_t windows_total = 0;
  std::uint64_t windows_damaged = 0;
  std::uint64_t windows_shed = 0;
  std::uint64_t windows_resumed = 0;
  std::uint64_t records_streamed = 0;
  std::uint64_t retained_bytes = 0;  ///< echo projections kept (<= budget)
  std::uint64_t steps = 0;           ///< output step count

  /// The checkpoint journal stopped mid-run after a write failure (ENOSPC,
  /// EIO, ...): the distillation result is complete and correct, but a
  /// killed re-run could not resume past the journal's intact prefix.
  /// Drivers surface this as exit-code 5 (degraded).
  bool checkpoint_degraded = false;
};

struct StreamDistillResult {
  ReplayTrace replay;
  trace::TraceReadReport read_report;  ///< pass-1 global salvage report
  std::vector<WindowSummary> windows;
  Distiller::Stats distill_stats;
  StreamDistillStats stats;
  DistillStatus status = DistillStatus::kOk;
};

/// Runs the tolerant checkpoint-journal reader (the resume path, with the
/// fingerprint gate skipped) over arbitrary bytes and returns how many
/// frames decoded intact.  Any input must parse without crashing,
/// throwing, or over-allocating: this is the fuzz surface for the TMDJ
/// format (tests/fuzz/fuzz_distill_journal.cpp).
std::size_t probe_checkpoint_journal(const char* data, std::size_t size);

class StreamDistiller {
 public:
  explicit StreamDistiller(StreamDistillConfig cfg = {}) : cfg_(cfg) {}

  /// Distills a v2 (or v1) trace file.  Throws trace::TraceFormatError on
  /// an unusable header and std::runtime_error on I/O failure; all other
  /// damage is salvaged into the result.
  StreamDistillResult distill_file(const std::string& path);

  const StreamDistillConfig& config() const { return cfg_; }

 private:
  StreamDistillConfig cfg_;
};

}  // namespace tracemod::core
