#include "core/stream_distiller.hpp"

#include "sim/io/durable.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <variant>

#include "sim/metric_names.hpp"
#include "sim/perf/perf.hpp"
#include "sim/sim_context.hpp"
#include "sim/task_pool.hpp"
#include "trace/crc32c.hpp"
#include "trace/stream_reader.hpp"

namespace tracemod::core {

namespace {

// ===========================================================================
// TMDJ checkpoint journal: magic | version u16 | fingerprint u32, then
// CRC-framed records (type u8 | len u32 | crc32c u32 | payload; the CRC
// covers the type byte followed by the payload) -- the same framing the
// sweep supervisor journal uses.  The reader is tolerant: a corrupt frame
// is skipped (that window recomputes), a partial tail is dropped.
// ===========================================================================

constexpr char kJournalMagic[4] = {'T', 'M', 'D', 'J'};
constexpr std::uint16_t kJournalVersion = 1;
constexpr std::size_t kJournalHeaderBytes = 4 + 2 + 4;
constexpr std::uint8_t kFramePlan = 1;
constexpr std::uint8_t kFrameWindow = 2;
constexpr std::size_t kMaxFramePayload = 64u * 1024 * 1024;

template <typename T>
void put(std::string& buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  unsigned char raw[sizeof(T)];
  std::memcpy(raw, &v, sizeof(T));
  buf.append(reinterpret_cast<const char*>(raw), sizeof(T));
}

/// Bounds-checked journal parse cursor.  Returns false on exhaustion
/// instead of throwing: a short or garbled journal frame is recoverable
/// state, not an error.
struct JCursor {
  const unsigned char* p;
  const unsigned char* end;

  bool need(std::size_t n) const {
    return static_cast<std::size_t>(end - p) >= n;
  }
  /// Overflow-safe bound for `count` items of `item_bytes` each: a
  /// fuzzer-controlled count must never trick the reader into a giant
  /// allocation.
  bool need_items(std::uint64_t count, std::size_t item_bytes) const {
    return count <= static_cast<std::size_t>(end - p) / item_bytes;
  }
  template <typename T>
  bool get(T* out) {
    if (!need(sizeof(T))) return false;
    std::memcpy(out, p, sizeof(T));
    p += sizeof(T);
    return true;
  }
};

std::uint32_t frame_checksum(std::uint8_t type, const std::string& payload) {
  const std::uint32_t seed = trace::crc32c(&type, 1);
  return trace::crc32c(payload.data(), payload.size(), seed);
}

// ===========================================================================
// Plan: everything pass 1 learns about the corpus.
// ===========================================================================

struct WindowPlan {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t records = 0;
  std::uint64_t sent = 0;
  std::uint64_t replies = 0;
  bool damaged = false;
  bool shed = false;
};

struct Plan {
  std::uint16_t trace_version = 0;
  std::uint64_t header_bytes = 0;
  std::uint64_t file_size = 0;
  trace::TraceReadReport report;
  bool any_records = false;
  std::int64_t t0 = 0;
  std::int64_t t_end = 0;
  std::uint64_t echoes_total = 0;
  std::uint64_t replies_total = 0;
  std::uint64_t records_streamed = 0;
  // Finalized integer loss lattice, one entry per output step.
  std::vector<std::int64_t> loss_b;
  std::vector<std::int64_t> loss_lo;
  std::vector<std::int64_t> loss_hi;
  std::vector<WindowPlan> windows;
};

/// Exactly-sized echo buffers for one corpus window (or one journal frame).
struct WindowData {
  std::unique_ptr<EchoSent[]> sent;
  std::size_t n_sent = 0;
  std::unique_ptr<EchoReply[]> replies;
  std::size_t n_reply = 0;
};

std::uint64_t retained_bytes_of(const WindowPlan& w) {
  return w.sent * sizeof(EchoSent) + w.replies * sizeof(EchoReply);
}

std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if (a % b != 0 && (a < 0) != (b < 0)) --q;
  return q;
}

// ===========================================================================
// Pass 1: one streaming scan producing the plan.
//
// The loss lattice is built incrementally.  For step j the in-memory
// distiller classifies every reply against w_begin_j = A + j*step and
// w_end_j = B + j*step (A, B fixed by t0 and the config, both halves
// truncated separately, matching assemble_replay's chrono arithmetic):
//   at <  w_begin_j  -> candidate for seq_lo_j   (j >  jb)
//   at >= w_end_j    -> candidate for seq_hi_j   (j <= j1)
//   otherwise        -> counts into b_j          (j1 < j <= jb)
// where jb = floor((t-A)/step), j1 = floor((t-B)/step).  The three ranges
// partition the step axis, so recording one candidate (at jb+1 for lo, at
// j1 for hi) plus a prefix-max / suffix-min sweep at the end reproduces
// the in-memory integers exactly.
// ===========================================================================

class LatticeBuilder {
 public:
  LatticeBuilder(std::int64_t t0, sim::Duration window, sim::Duration step) {
    const std::int64_t hs = (step / 2).count();
    const std::int64_t hw = (window / 2).count();
    a_ = t0 + hs - hw;
    b_ = t0 + hs + hw;
    step_ = step.count();
  }

  void add_reply(std::int64_t t, std::uint16_t seq) {
    const std::int64_t jb = floor_div(t - a_, step_);
    const std::int64_t j1 = floor_div(t - b_, step_);
    grow(std::max(jb + 2, j1 + 1));
    for (std::int64_t j = std::max<std::int64_t>(j1 + 1, 0); j <= jb; ++j) {
      ++b_count_[static_cast<std::size_t>(j)];
    }
    if (jb + 1 >= 0) {
      auto& lo = cand_lo_[static_cast<std::size_t>(jb + 1)];
      lo = std::max<std::int64_t>(lo, seq);
    }
    if (j1 >= 0) {
      auto& hi = cand_hi_[static_cast<std::size_t>(j1)];
      hi = std::min<std::int64_t>(hi, seq);
    }
  }

  void finalize(std::size_t steps, std::uint64_t echoes_total, Plan* plan) {
    grow(static_cast<std::int64_t>(steps));
    plan->loss_b.assign(steps, 0);
    plan->loss_lo.assign(steps, -1);
    plan->loss_hi.assign(steps, static_cast<std::int64_t>(echoes_total));
    std::int64_t run_lo = -1;
    for (std::size_t j = 0; j < steps; ++j) {
      run_lo = std::max(run_lo, cand_lo_[j]);
      plan->loss_lo[j] = run_lo;
      plan->loss_b[j] = b_count_[j];
    }
    std::int64_t run_hi = static_cast<std::int64_t>(echoes_total);
    for (std::size_t j = cand_hi_.size(); j-- > 0;) {
      run_hi = std::min(run_hi, cand_hi_[j]);
      if (j < steps) plan->loss_hi[j] = run_hi;
    }
  }

 private:
  void grow(std::int64_t n) {
    if (n <= static_cast<std::int64_t>(b_count_.size())) return;
    const auto sz = static_cast<std::size_t>(n);
    b_count_.resize(sz, 0);
    cand_lo_.resize(sz, std::numeric_limits<std::int64_t>::min());
    cand_hi_.resize(sz, std::numeric_limits<std::int64_t>::max());
  }

  std::int64_t a_, b_, step_;
  std::vector<std::int64_t> b_count_;
  std::vector<std::int64_t> cand_lo_;
  std::vector<std::int64_t> cand_hi_;
};

std::uint64_t file_size_of(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return static_cast<std::uint64_t>(in.tellg());
}

Plan run_pass1(const std::string& path, const StreamDistillConfig& cfg) {
  sim::perf::PerfScope perf_scope(sim::perf::Domain::kDistill,
                                  "distill.pass1");
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  trace::TraceReadOptions opts;
  opts.mode = trace::ReadMode::kSalvage;
  trace::TraceStreamReader reader(in, opts);

  Plan plan;
  plan.trace_version = reader.version();
  plan.header_bytes = reader.header_bytes();
  plan.file_size = reader.stream_size().value_or(0);

  std::optional<LatticeBuilder> lattice;
  WindowPlan cur;
  bool window_open = false;
  sim::TimePoint window_first{};

  sim::status::StatusBoard* board =
      cfg.status != nullptr && cfg.status->enabled() ? cfg.status : nullptr;
  if (board != nullptr) board->set_phase("plan");
  std::uint64_t reported = 0;

  trace::TraceRecord rec;
  while (reader.next(&rec)) {
    ++plan.records_streamed;
    if (board != nullptr && (plan.records_streamed & 0xFFFFu) == 0) {
      board->add_records_streamed(plan.records_streamed - reported);
      reported = plan.records_streamed;
      board->maybe_publish();
    }
    const sim::TimePoint t = trace::record_time(rec);
    const bool marker = std::holds_alternative<trace::LostRecords>(rec);
    if (!plan.any_records) {
      plan.any_records = true;
      plan.t0 = t.time_since_epoch().count();
      lattice.emplace(plan.t0, cfg.distill.window, cfg.distill.step);
    }
    plan.t_end = t.time_since_epoch().count();

    if (!window_open) {
      cur = WindowPlan{};
      cur.begin = plan.windows.empty() ? plan.header_bytes
                                       : reader.record_frame_offset();
      window_first = t;
      window_open = true;
    } else if (!marker && t >= window_first + cfg.span) {
      // This record's frame starts the next window; everything before it
      // (including any damaged bytes a preceding marker accounts for)
      // belongs to the window being closed.
      cur.end = reader.record_frame_offset();
      plan.windows.push_back(cur);
      cur = WindowPlan{};
      cur.begin = reader.record_frame_offset();
      window_first = t;
    }

    ++cur.records;
    if (marker) {
      cur.damaged = true;
    } else if (const auto* p = std::get_if<trace::PacketRecord>(&rec)) {
      if (is_echo_sent(*p)) {
        ++cur.sent;
        ++plan.echoes_total;
      } else if (is_echo_reply(*p)) {
        ++cur.replies;
        ++plan.replies_total;
        lattice->add_reply(t.time_since_epoch().count(), p->icmp_seq);
      }
    }
  }
  if (window_open) {
    cur.end = reader.next_frame_offset();
    plan.windows.push_back(cur);
  }
  if (board != nullptr && plan.records_streamed > reported) {
    board->add_records_streamed(plan.records_streamed - reported);
    board->maybe_publish();
  }
  plan.report = reader.report();
  if (plan.file_size == 0) plan.file_size = reader.next_frame_offset();

  // Output step count, matching assemble_replay's loop bound.
  std::size_t steps = 0;
  if (plan.any_records && plan.t_end > plan.t0) {
    const std::int64_t d = plan.t_end - plan.t0;
    const std::int64_t s = cfg.distill.step.count();
    steps = static_cast<std::size_t>((d + s - 1) / s);
  }
  if (lattice) {
    lattice->finalize(steps, plan.echoes_total, &plan);
  } else {
    plan.loss_b.assign(steps, 0);
    plan.loss_lo.assign(steps, -1);
    plan.loss_hi.assign(steps, 0);
  }
  return plan;
}

/// Decides which windows keep their echo buffers, in window-index order so
/// the plan is identical for every thread count and schedule.
void apply_shed_plan(const MemoryBudget& budget, Plan* plan,
                     std::uint64_t* retained_out) {
  std::uint64_t retained = 0;
  const unsigned inflight = std::max(1u, budget.max_inflight);
  const std::uint64_t window_cap =
      budget.bytes == 0 ? 0 : budget.bytes / inflight;
  for (WindowPlan& w : plan->windows) {
    const std::uint64_t need = retained_bytes_of(w);
    if (budget.bytes != 0 &&
        (need > window_cap || retained + need > budget.bytes)) {
      w.shed = true;
      continue;
    }
    retained += need;
  }
  *retained_out = retained;
}

// ===========================================================================
// Journal encode/decode.
// ===========================================================================

std::uint32_t journal_fingerprint(const std::string& path,
                                  std::uint64_t file_size,
                                  const StreamDistillConfig& cfg) {
  std::string blob;
  put<std::uint64_t>(blob, file_size);
  // Identity of the container header (magic, version, schema, count).
  std::ifstream in(path, std::ios::binary);
  char head[4096];
  in.read(head, sizeof(head));
  const auto got = static_cast<std::size_t>(std::max<std::streamsize>(
      0, in.gcount()));
  put<std::uint32_t>(blob, trace::crc32c(head, got));
  // Everything the plan depends on.  Thread count is deliberately absent:
  // a resume on a different machine must still be byte-identical.
  put<std::int64_t>(blob, cfg.distill.window.count());
  put<std::int64_t>(blob, cfg.distill.step.count());
  double max_loss = cfg.distill.max_loss;
  put<double>(blob, max_loss);
  put<std::int64_t>(blob, cfg.span.count());
  put<std::uint64_t>(blob, cfg.budget.bytes);
  put<std::uint32_t>(blob, cfg.budget.max_inflight);
  return trace::crc32c(blob.data(), blob.size());
}

std::string encode_plan(const Plan& plan) {
  std::string p;
  put<std::uint16_t>(p, plan.trace_version);
  put<std::uint64_t>(p, plan.header_bytes);
  put<std::uint64_t>(p, plan.file_size);
  const trace::TraceReadReport& r = plan.report;
  put<std::uint16_t>(p, r.version);
  put<std::uint8_t>(p, static_cast<std::uint8_t>(r.mode));
  put<std::uint64_t>(p, r.records_expected);
  put<std::uint64_t>(p, r.records_read);
  put<std::uint64_t>(p, r.records_skipped);
  put<std::uint64_t>(p, r.records_salvaged);
  put<std::uint64_t>(p, r.crc_failures);
  put<std::uint64_t>(p, r.unknown_tags);
  put<std::uint64_t>(p, r.resync_scans);
  put<std::uint64_t>(p, r.bytes_scanned);
  put<std::uint64_t>(p, r.lost_markers_synthesized);
  put<std::uint8_t>(p, r.truncated ? 1 : 0);
  put<std::uint8_t>(p, plan.any_records ? 1 : 0);
  put<std::int64_t>(p, plan.t0);
  put<std::int64_t>(p, plan.t_end);
  put<std::uint64_t>(p, plan.echoes_total);
  put<std::uint64_t>(p, plan.replies_total);
  put<std::uint64_t>(p, plan.records_streamed);
  put<std::uint64_t>(p, plan.loss_b.size());
  for (std::size_t j = 0; j < plan.loss_b.size(); ++j) {
    put<std::int64_t>(p, plan.loss_b[j]);
    put<std::int64_t>(p, plan.loss_lo[j]);
    put<std::int64_t>(p, plan.loss_hi[j]);
  }
  put<std::uint64_t>(p, plan.windows.size());
  for (const WindowPlan& w : plan.windows) {
    put<std::uint64_t>(p, w.begin);
    put<std::uint64_t>(p, w.end);
    put<std::uint64_t>(p, w.records);
    put<std::uint64_t>(p, w.sent);
    put<std::uint64_t>(p, w.replies);
    put<std::uint8_t>(p, w.damaged ? 1 : 0);
    put<std::uint8_t>(p, w.shed ? 1 : 0);
  }
  return p;
}

bool decode_plan(const std::string& payload, Plan* plan) {
  JCursor c{reinterpret_cast<const unsigned char*>(payload.data()),
            reinterpret_cast<const unsigned char*>(payload.data()) +
                payload.size()};
  std::uint8_t mode = 0, truncated = 0, any = 0;
  std::uint64_t steps = 0, windows = 0;
  trace::TraceReadReport& r = plan->report;
  if (!c.get(&plan->trace_version) || !c.get(&plan->header_bytes) ||
      !c.get(&plan->file_size) || !c.get(&r.version) || !c.get(&mode) ||
      !c.get(&r.records_expected) || !c.get(&r.records_read) ||
      !c.get(&r.records_skipped) || !c.get(&r.records_salvaged) ||
      !c.get(&r.crc_failures) || !c.get(&r.unknown_tags) ||
      !c.get(&r.resync_scans) || !c.get(&r.bytes_scanned) ||
      !c.get(&r.lost_markers_synthesized) || !c.get(&truncated) ||
      !c.get(&any) || !c.get(&plan->t0) || !c.get(&plan->t_end) ||
      !c.get(&plan->echoes_total) || !c.get(&plan->replies_total) ||
      !c.get(&plan->records_streamed) || !c.get(&steps)) {
    return false;
  }
  r.mode = static_cast<trace::ReadMode>(mode);
  r.truncated = truncated != 0;
  plan->any_records = any != 0;
  if (!c.need_items(steps, 24)) return false;
  plan->loss_b.resize(steps);
  plan->loss_lo.resize(steps);
  plan->loss_hi.resize(steps);
  for (std::uint64_t j = 0; j < steps; ++j) {
    if (!c.get(&plan->loss_b[j]) || !c.get(&plan->loss_lo[j]) ||
        !c.get(&plan->loss_hi[j])) {
      return false;
    }
  }
  if (!c.get(&windows) || !c.need_items(windows, 42)) return false;
  plan->windows.resize(windows);
  for (std::uint64_t k = 0; k < windows; ++k) {
    WindowPlan& w = plan->windows[k];
    std::uint8_t damaged = 0, shed = 0;
    if (!c.get(&w.begin) || !c.get(&w.end) || !c.get(&w.records) ||
        !c.get(&w.sent) || !c.get(&w.replies) || !c.get(&damaged) ||
        !c.get(&shed)) {
      return false;
    }
    w.damaged = damaged != 0;
    w.shed = shed != 0;
  }
  return true;
}

std::string encode_window(std::uint64_t index, const WindowData& data) {
  std::string p;
  put<std::uint64_t>(p, index);
  put<std::uint64_t>(p, data.n_sent);
  for (std::size_t i = 0; i < data.n_sent; ++i) {
    put<std::uint16_t>(p, data.sent[i].icmp_seq);
    put<std::uint32_t>(p, data.sent[i].ip_bytes);
  }
  put<std::uint64_t>(p, data.n_reply);
  for (std::size_t i = 0; i < data.n_reply; ++i) {
    put<std::int64_t>(p, data.replies[i].at.time_since_epoch().count());
    put<std::int64_t>(p, data.replies[i].rtt.count());
    put<std::uint16_t>(p, data.replies[i].icmp_seq);
  }
  return p;
}

bool decode_window(const std::string& payload, std::uint64_t* index,
                   WindowData* data) {
  JCursor c{reinterpret_cast<const unsigned char*>(payload.data()),
            reinterpret_cast<const unsigned char*>(payload.data()) +
                payload.size()};
  std::uint64_t n_sent = 0, n_reply = 0;
  if (!c.get(index) || !c.get(&n_sent) || !c.need_items(n_sent, 6)) {
    return false;
  }
  data->n_sent = static_cast<std::size_t>(n_sent);
  data->sent = std::make_unique<EchoSent[]>(data->n_sent);
  for (std::uint64_t i = 0; i < n_sent; ++i) {
    if (!c.get(&data->sent[i].icmp_seq) || !c.get(&data->sent[i].ip_bytes)) {
      return false;
    }
  }
  if (!c.get(&n_reply) || !c.need_items(n_reply, 18)) return false;
  data->n_reply = static_cast<std::size_t>(n_reply);
  data->replies = std::make_unique<EchoReply[]>(data->n_reply);
  for (std::uint64_t i = 0; i < n_reply; ++i) {
    std::int64_t at = 0, rtt = 0;
    if (!c.get(&at) || !c.get(&rtt) || !c.get(&data->replies[i].icmp_seq)) {
      return false;
    }
    data->replies[i].at = sim::TimePoint{sim::Duration{at}};
    data->replies[i].rtt = sim::Duration{rtt};
  }
  return true;
}

/// Append-side journal handle over the durable write plane
/// (sim/io/durable.hpp).  I/O failure degrades to not-journaling
/// (checkpointing is an optimization; the distillation must not die for
/// it), truncating back so a failed append never masquerades as a
/// committed frame, and the degradation is reported so drivers can flag
/// the run non-resumable.
class JournalWriter {
 public:
  void open(const std::string& path, std::uint32_t fingerprint,
            sim::io::FaultPlan* plan) {
    std::string head;
    head.append(kJournalMagic, sizeof(kJournalMagic));
    put<std::uint16_t>(head, kJournalVersion);
    put<std::uint32_t>(head, fingerprint);
    // Window frames land at task-pool cadence; periodic fdatasync bounds
    // the resumable-progress loss without a sync per window.
    sim::io::AppendJournalWriter::Options options;
    options.plan = plan;
    const sim::io::IoResult r = writer_.open_fresh(path, head, options);
    if (!r.ok) note_degraded();
  }

  void append(std::uint8_t type, const std::string& payload) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!writer_.is_open()) return;
    std::string frame;
    put<std::uint8_t>(frame, type);
    put<std::uint32_t>(frame, static_cast<std::uint32_t>(payload.size()));
    put<std::uint32_t>(frame, frame_checksum(type, payload));
    frame += payload;
    const sim::io::IoResult r = writer_.append(frame);
    if (!r.ok) note_degraded();
  }

  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!writer_.is_open()) return;
    const sim::io::IoResult r = writer_.close();
    if (!r.ok) note_degraded();
  }

  /// True once any checkpoint write failed; the run is complete but not
  /// resumable past the journal's intact prefix.
  bool degraded() const { return writer_.degraded(); }

 private:
  void note_degraded() {
    sim::io::note_degraded_plane("distill-checkpoint", writer_.last_error());
  }

  sim::io::AppendJournalWriter writer_;
  std::mutex mu_;
};

/// Tolerant journal read: header + fingerprint gate, then every frame that
/// checksums.  Never throws; anything suspect is simply not reused.
struct JournalContents {
  bool have_plan = false;
  Plan plan;
  std::map<std::uint64_t, WindowData> windows;
};

JournalContents parse_journal_bytes(const std::string& bytes,
                                    const std::uint32_t* fingerprint) {
  JournalContents out;
  if (bytes.size() < kJournalHeaderBytes) return out;
  if (std::memcmp(bytes.data(), kJournalMagic, sizeof(kJournalMagic)) != 0) {
    return out;
  }
  std::uint16_t version = 0;
  std::uint32_t fp = 0;
  std::memcpy(&version, bytes.data() + 4, 2);
  std::memcpy(&fp, bytes.data() + 6, 4);
  if (version != kJournalVersion) return out;
  if (fingerprint != nullptr && fp != *fingerprint) return out;

  std::size_t pos = kJournalHeaderBytes;
  while (bytes.size() - pos >= 9) {
    const auto type = static_cast<std::uint8_t>(bytes[pos]);
    std::uint32_t len = 0, crc = 0;
    std::memcpy(&len, bytes.data() + pos + 1, 4);
    std::memcpy(&crc, bytes.data() + pos + 5, 4);
    if (len > kMaxFramePayload || bytes.size() - pos - 9 < len) break;
    const std::string payload = bytes.substr(pos + 9, len);
    pos += 9 + len;
    if (frame_checksum(type, payload) != crc) continue;  // window recomputes
    if (type == kFramePlan) {
      Plan plan;
      if (decode_plan(payload, &plan)) {
        out.plan = std::move(plan);
        out.have_plan = true;
      }
    } else if (type == kFrameWindow) {
      std::uint64_t index = 0;
      WindowData data;
      if (decode_window(payload, &index, &data)) {
        out.windows[index] = std::move(data);
      }
    }
  }
  return out;
}

JournalContents read_journal(const std::string& path,
                             std::uint32_t fingerprint) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return JournalContents{};
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  return parse_journal_bytes(bytes, &fingerprint);
}

// ===========================================================================
// Pass 2: per-window echo extraction from the window's byte range.
// ===========================================================================

/// std::istream view over [offset, offset+length) of a file, so a window
/// task re-reads exactly its frames and nothing else.
class BoundedFileBuf : public std::streambuf {
 public:
  BoundedFileBuf(const std::string& path, std::uint64_t offset,
                 std::uint64_t length)
      : in_(path, std::ios::binary), remaining_(length) {
    if (in_) in_.seekg(static_cast<std::streamoff>(offset));
  }
  bool ok() const { return static_cast<bool>(in_); }

 protected:
  int_type underflow() override {
    if (remaining_ == 0) return traits_type::eof();
    const auto want = static_cast<std::streamsize>(
        std::min<std::uint64_t>(sizeof(buf_), remaining_));
    in_.read(buf_, want);
    const auto got = in_.gcount();
    if (got <= 0) return traits_type::eof();
    remaining_ -= static_cast<std::uint64_t>(got);
    setg(buf_, buf_, buf_ + got);
    return traits_type::to_int_type(buf_[0]);
  }

 private:
  std::ifstream in_;
  std::uint64_t remaining_;
  char buf_[64 * 1024];
};

/// Re-reads one window's byte range and extracts its echo projections into
/// exactly-sized buffers (capacities come from the pass-1 plan, so there
/// is no growth and no over-allocation).  Returns false on a plan/parse
/// mismatch, which the caller treats as a shed window -- never an abort.
bool extract_window(const std::string& path, std::uint16_t version,
                    const WindowPlan& w, WindowData* out) {
  BoundedFileBuf buf(path, w.begin, w.end - w.begin);
  if (!buf.ok()) return false;
  std::istream in(&buf);
  trace::TraceStreamReader reader(
      in, trace::TraceStreamReader::FrameRange{}, version, w.begin);

  out->n_sent = 0;
  out->n_reply = 0;
  out->sent = std::make_unique<EchoSent[]>(static_cast<std::size_t>(w.sent));
  out->replies =
      std::make_unique<EchoReply[]>(static_cast<std::size_t>(w.replies));

  trace::TraceRecord rec;
  while (reader.next(&rec)) {
    const auto* p = std::get_if<trace::PacketRecord>(&rec);
    if (p == nullptr) continue;
    if (is_echo_sent(*p)) {
      if (out->n_sent >= w.sent) return false;
      out->sent[out->n_sent++] = EchoSent{p->icmp_seq, p->ip_bytes};
    } else if (is_echo_reply(*p)) {
      if (out->n_reply >= w.replies) return false;
      out->replies[out->n_reply++] = EchoReply{p->at, p->rtt(), p->icmp_seq};
    }
  }
  return out->n_sent == w.sent && out->n_reply == w.replies;
}

}  // namespace

std::size_t probe_checkpoint_journal(const char* data, std::size_t size) {
  const std::string bytes(data, size);
  const JournalContents contents = parse_journal_bytes(bytes, nullptr);
  return (contents.have_plan ? 1u : 0u) + contents.windows.size();
}

// ===========================================================================
// Driver.
// ===========================================================================

StreamDistillResult StreamDistiller::distill_file(const std::string& path) {
  const std::uint64_t file_size = file_size_of(path);
  const bool journaling = !cfg_.checkpoint_path.empty();
  const std::uint32_t fingerprint =
      journaling ? journal_fingerprint(path, file_size, cfg_) : 0;

  // Reuse a killed run's plan and intact windows when asked to.
  JournalContents resumed;
  if (journaling && cfg_.resume) {
    resumed = read_journal(cfg_.checkpoint_path, fingerprint);
  }

  Plan plan;
  if (resumed.have_plan) {
    plan = std::move(resumed.plan);
  } else {
    plan = run_pass1(path, cfg_);
    std::uint64_t retained = 0;
    apply_shed_plan(cfg_.budget, &plan, &retained);
  }

  // The journal is rewritten fresh on every run: header, plan, then the
  // window frames we can vouch for, with newly computed windows appended
  // as they finish.  A kill at any point leaves a valid prefix.
  JournalWriter journal;
  if (journaling) {
    journal.open(cfg_.checkpoint_path, fingerprint,
                 cfg_.checkpoint_fault_plan);
    journal.append(kFramePlan, encode_plan(plan));
  }

  const std::size_t n_windows = plan.windows.size();
  std::vector<WindowData> window_data(n_windows);
  std::vector<std::uint8_t> window_ok(n_windows, 0);
  std::vector<std::uint8_t> window_resumed(n_windows, 0);

  // Adopt journal windows whose shape matches the plan.
  for (auto& [index, data] : resumed.windows) {
    if (index >= n_windows) continue;
    const WindowPlan& w = plan.windows[index];
    if (w.shed || data.n_sent != w.sent || data.n_reply != w.replies) {
      continue;
    }
    window_data[index] = std::move(data);
    window_ok[index] = 1;
    window_resumed[index] = 1;
    if (journaling) {
      journal.append(kFrameWindow,
                     encode_window(index, window_data[index]));
    }
  }

  // Pass 2: every remaining non-shed window, fanned out.  Extraction is
  // deterministic byte-range parsing, so scheduling cannot change results.
  sim::status::StatusBoard* board =
      cfg_.status != nullptr && cfg_.status->enabled() ? cfg_.status
                                                       : nullptr;
  if (board != nullptr) {
    board->set_units("windows", static_cast<double>(n_windows));
    // Windows the plan shed and windows adopted from the journal are
    // already settled; account them up front so done reaches total.
    for (std::size_t k = 0; k < n_windows; ++k) {
      if (plan.windows[k].shed) {
        board->add_windows_shed(1);
        board->add_units_done(1);
      } else if (window_ok[k]) {
        board->add_windows_distilled(1);
        board->add_units_done(1);
      }
    }
    board->set_phase("distill");
  }
  {
    std::vector<std::function<void()>> tasks;
    for (std::size_t k = 0; k < n_windows; ++k) {
      if (plan.windows[k].shed || window_ok[k]) continue;
      tasks.push_back([&, k, board] {
        if (extract_window(path, plan.trace_version, plan.windows[k],
                           &window_data[k])) {
          window_ok[k] = 1;
          if (journaling) {
            journal.append(kFrameWindow, encode_window(k, window_data[k]));
          }
        }
        if (board != nullptr) {
          if (window_ok[k]) {
            board->add_windows_distilled(1);
          } else {
            board->add_windows_shed(1);
          }
          board->add_units_done(1);
          board->maybe_publish();
        }
      });
    }
    unsigned threads = cfg_.threads == 0
                           ? std::thread::hardware_concurrency()
                           : cfg_.threads;
    threads = std::max(1u, std::min(threads,
                                    std::max(1u, cfg_.budget.max_inflight)));
    sim::TaskPool pool(threads);
    pool.run_all(std::move(tasks));
  }

  // Merge, in window-index order, through the exact in-memory pipeline.
  if (board != nullptr) board->set_phase("merge");
  StreamDistillResult result;
  result.read_report = plan.report;

  std::uint64_t retained_sent = 0, retained_replies = 0;
  for (std::size_t k = 0; k < n_windows; ++k) {
    if (window_ok[k]) {
      retained_sent += window_data[k].n_sent;
      retained_replies += window_data[k].n_reply;
    }
  }
  std::vector<EchoSent> sent;
  std::vector<EchoReply> replies;
  sent.reserve(static_cast<std::size_t>(retained_sent));
  replies.reserve(static_cast<std::size_t>(retained_replies));

  result.windows.reserve(n_windows);
  for (std::size_t k = 0; k < n_windows; ++k) {
    const WindowPlan& w = plan.windows[k];
    WindowSummary s;
    s.begin_offset = w.begin;
    s.end_offset = w.end;
    s.records = w.records;
    s.sent_echoes = w.sent;
    s.replies = w.replies;
    s.damaged = w.damaged;
    s.shed = w.shed || (!window_ok[k]);
    s.resumed = window_resumed[k] != 0;
    result.windows.push_back(s);

    if (window_ok[k]) {
      WindowData& d = window_data[k];
      sent.insert(sent.end(), d.sent.get(), d.sent.get() + d.n_sent);
      replies.insert(replies.end(), d.replies.get(),
                     d.replies.get() + d.n_reply);
      d = WindowData{};  // free the arena as soon as it is merged
    }
  }

  const auto groups = reconstruct_echo_groups(sent, replies);
  result.distill_stats = Distiller::Stats{};
  const auto estimates =
      estimate_delay_parameters(groups, &result.distill_stats);

  if (plan.any_records) {
    const sim::TimePoint t0{sim::Duration{plan.t0}};
    const sim::TimePoint t_end{sim::Duration{plan.t_end}};
    std::size_t j = 0;
    result.replay = assemble_replay(
        cfg_.distill, estimates, t0, t_end,
        [&](sim::TimePoint, sim::TimePoint, double prev) {
          const std::size_t step_index = j++;
          if (plan.replies_total == 0 || plan.echoes_total == 0) return prev;
          return loss_from_gap(plan.loss_b[step_index],
                               plan.loss_lo[step_index],
                               plan.loss_hi[step_index], prev,
                               cfg_.distill.max_loss);
        },
        &result.distill_stats);
  }

  // Accounting and status.
  if (journaling) journal.close();
  StreamDistillStats& st = result.stats;
  st.checkpoint_degraded = journaling && journal.degraded();
  st.windows_total = n_windows;
  st.records_streamed = plan.records_streamed;
  st.steps = plan.loss_b.size();
  for (const WindowSummary& s : result.windows) {
    if (s.damaged) ++st.windows_damaged;
    if (s.shed) ++st.windows_shed;
    if (s.resumed) ++st.windows_resumed;
  }
  st.retained_bytes =
      retained_sent * sizeof(EchoSent) + retained_replies * sizeof(EchoReply);

  if (st.windows_shed > 0) {
    result.status = DistillStatus::kDegraded;
  } else if (!plan.report.clean()) {
    result.status = DistillStatus::kSalvaged;
  } else {
    result.status = DistillStatus::kOk;
  }

  if (cfg_.metrics != nullptr) {
    sim::MetricsRegistry& m = *cfg_.metrics;
    m.counter(sim::metric::kDistillWindowsTotal) += st.windows_total;
    m.counter(sim::metric::kDistillWindowsSalvaged) += st.windows_damaged;
    m.counter(sim::metric::kDistillWindowsShed) += st.windows_shed;
    m.counter(sim::metric::kDistillWindowsResumed) += st.windows_resumed;
    m.counter(sim::metric::kDistillRecordsStreamed) += st.records_streamed;
    sim::io::export_io_metrics(m);
  }
  return result;
}

}  // namespace tracemod::core
