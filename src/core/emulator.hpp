// High-level facade: a complete modulated testbed.
//
// Reproduces the paper's modulation setup: a "mobile" host and a server on
// an isolated Ethernet, with the mobile's protocol stack extended by a
// modulation layer fed from a replay trace.  Unmodified application code
// (anything speaking to the hosts' sockets) then experiences the traced
// network.  Also provides the one-time physical-network measurement used
// for inbound delay compensation.
#pragma once

#include <memory>

#include "core/modulation.hpp"
#include "core/replay_device.hpp"
#include "net/ethernet.hpp"
#include "sim/sim_context.hpp"
#include "transport/host.hpp"

namespace tracemod::core {

struct EmulatorConfig {
  net::EthernetConfig ethernet{};
  transport::TcpConfig tcp{};
  ModulationConfig modulation{};
  std::size_t replay_buffer_capacity = 64;
  bool loop_trace = false;
  std::uint64_t seed = 1;
  net::IpAddress mobile_addr = net::IpAddress(10, 0, 0, 2);
  net::IpAddress server_addr = net::IpAddress(10, 0, 0, 1);
  /// Deterministic runtime faults against the modulation daemon (stalls /
  /// slow wakeups); disabled by default.  Degradation shows up in the
  /// context's metrics registry (sim/metric_names.hpp).
  trace::DaemonFaultConfig daemon_faults{};
  /// Observability (sim/telemetry.hpp); disabled by default, in which case
  /// the emulator's behaviour and outputs are bit-identical to a build
  /// without the subsystem.
  sim::TelemetryConfig telemetry{};
};

class Emulator {
 public:
  explicit Emulator(ReplayTrace trace, EmulatorConfig cfg = {});

  transport::Host& mobile() { return *mobile_; }
  transport::Host& server() { return *server_; }
  sim::SimContext& context() { return ctx_; }
  sim::EventLoop& loop() { return ctx_.loop(); }
  ModulationLayer& modulation() { return *modulation_; }
  ModulationDaemon& daemon() { return *daemon_; }
  const EmulatorConfig& config() const { return cfg_; }

  void run_for(sim::Duration d) { loop().run_until(loop().now() + d); }
  void run() { loop().run(); }

  /// Measures the physical modulating network's long-term mean bottleneck
  /// per-byte cost using the same ping + distillation tools (Figure 1's
  /// compensation constant).  Needs to run only once per modulation setup;
  /// it is independent of the network being emulated.
  static double measure_physical_vb(
      const EmulatorConfig& cfg = {},
      sim::Duration measure_for = sim::seconds(60));

 private:
  EmulatorConfig cfg_;
  sim::SimContext ctx_;  ///< this emulated world's isolated context
  net::EthernetSegment segment_;
  std::unique_ptr<transport::Host> mobile_;
  std::unique_ptr<transport::Host> server_;
  ReplayPseudoDevice replay_device_;
  ModulationLayer* modulation_ = nullptr;  // owned by the mobile's node
  std::unique_ptr<trace::FaultInjector> fault_injector_;  // when faults on
  std::unique_ptr<ModulationDaemon> daemon_;
};

}  // namespace tracemod::core
