// The modulation pseudo-device and its user-level daemon (Section 3.3).
//
// The daemon reads quality tuples from a replay trace and writes them into
// the pseudo-device's fixed-size in-kernel buffer; when the buffer is full
// the daemon blocks (here: retries on its next wakeup).  The modulation
// layer reads tuples out as segments of emulated time expire.  The daemon
// may feed the trace once or loop over it until stopped.
#pragma once

#include <deque>
#include <optional>

#include "core/model.hpp"
#include "sim/event_loop.hpp"
#include "sim/telemetry.hpp"
#include "trace/fault_injector.hpp"

namespace tracemod::sim {
class SimContext;
}

namespace tracemod::core {

class ReplayPseudoDevice {
 public:
  explicit ReplayPseudoDevice(std::size_t capacity = 64)
      : capacity_(capacity) {}

  /// Kernel-side: pop the next tuple; empty when the daemon has fallen
  /// behind or the trace is exhausted.
  std::optional<QualityTuple> read() {
    if (buf_.empty()) return std::nullopt;
    QualityTuple t = buf_.front();
    buf_.pop_front();
    return t;
  }

  /// Daemon-side: returns false when the buffer is full (caller blocks).
  bool write(const QualityTuple& t) {
    if (buf_.size() >= capacity_) return false;
    buf_.push_back(t);
    return true;
  }

  /// Daemon-side: no more tuples will ever be written (the daemon closed
  /// the pseudo-device).  Once drained, the modulation layer reverts to
  /// pass-through.
  void close_writer() { writer_closed_ = true; }
  bool writer_closed() const { return writer_closed_; }

  std::size_t size() const { return buf_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return buf_.empty(); }

 private:
  std::size_t capacity_;
  std::deque<QualityTuple> buf_;
  bool writer_closed_ = false;
};

class ModulationDaemon {
 public:
  /// loop_trace: feed the tuple file repeatedly until stop() (the paper's
  /// "loop over the file until interrupted").
  ModulationDaemon(sim::EventLoop& loop, ReplayPseudoDevice& dev,
                   ReplayTrace trace, bool loop_trace = false,
                   sim::Duration wakeup = sim::milliseconds(100));

  void start();
  void stop();

  /// True once every tuple has been written (never true when looping).
  bool finished() const { return finished_; }

  /// Attaches a fault injector (pseudo-device starvation): each wakeup may
  /// stall per cfg.stall_chance, and buffer-full retries are slowed by
  /// cfg.wakeup_factor.  The injector must outlive the daemon; pass
  /// nullptr to detach.
  void set_faults(trace::FaultInjector* injector,
                  trace::DaemonFaultConfig cfg);

  /// Wakeups lost to injected stalls so far.
  std::uint64_t stalled_wakeups() const { return stalled_wakeups_; }

  /// Wires the daemon into telemetry: samples the pseudo-device's buffer
  /// occupancy into the replay.buffer_depth series at every pump and marks
  /// injected stalls on the "daemon/replay" track.  No-op while disabled.
  void set_telemetry(sim::SimContext& ctx);

 private:
  void pump();

  sim::EventLoop& loop_;
  ReplayPseudoDevice& dev_;
  ReplayTrace trace_;
  bool loop_trace_;
  sim::Duration wakeup_;
  sim::Timer timer_;
  std::size_t next_ = 0;
  bool running_ = false;
  bool finished_ = false;
  trace::FaultInjector* faults_ = nullptr;
  trace::DaemonFaultConfig fault_cfg_{};
  std::uint64_t stalled_wakeups_ = 0;
  sim::Telemetry* tel_ = nullptr;  // non-null only while enabled
  sim::TrackId trk_ = sim::kNoTrack;
  sim::TimeSeries* depth_series_ = nullptr;
};

}  // namespace tracemod::core
