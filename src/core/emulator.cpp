#include "core/emulator.hpp"

#include "core/distiller.hpp"
#include "sim/clock_model.hpp"
#include "trace/ping.hpp"
#include "trace/trace_tap.hpp"

namespace tracemod::core {

Emulator::Emulator(ReplayTrace trace, EmulatorConfig cfg)
    : cfg_(cfg),
      ctx_(cfg.seed, cfg.telemetry),
      segment_(ctx_.loop(), cfg.ethernet),
      replay_device_(cfg.replay_buffer_capacity) {
  mobile_ = std::make_unique<transport::Host>(ctx_, "mobile", cfg.seed,
                                              cfg.tcp);
  server_ = std::make_unique<transport::Host>(ctx_, "server", cfg.seed + 1,
                                              cfg.tcp);

  auto mobile_dev =
      std::make_unique<net::EthernetDevice>(segment_, "mobile-eth0");
  mobile_dev->claim_address(cfg.mobile_addr);
  mobile_dev->set_telemetry(ctx_.telemetry(), "mobile");
  mobile_->node().add_interface(std::move(mobile_dev), cfg.mobile_addr);
  mobile_->node().set_default_route(0);

  auto server_dev =
      std::make_unique<net::EthernetDevice>(segment_, "server-eth0");
  server_dev->claim_address(cfg.server_addr);
  server_dev->set_telemetry(ctx_.telemetry(), "server");
  server_->node().add_interface(std::move(server_dev), cfg.server_addr);
  server_->node().set_default_route(0);

  // Insert the modulation layer between the mobile's IP and Ethernet.
  ModulationConfig mod_cfg = cfg.modulation;
  mod_cfg.drop_seed ^= cfg.seed * 0x9e3779b97f4a7c15ULL;
  // The endpoint-placement artifact scales with the physical network's
  // serialization cost (see ModulationConfig::inbound_physical_vb).
  mod_cfg.inbound_physical_vb = 8.0 / cfg.ethernet.bandwidth_bps;
  mobile_->node().wrap_interface(
      0, [&](std::unique_ptr<net::NetDevice> inner) {
        auto layer = std::make_unique<ModulationLayer>(
            std::move(inner), ctx_.loop(), replay_device_, mod_cfg);
        modulation_ = layer.get();
        return layer;
      });
  modulation_->set_telemetry(ctx_, "mobile");

  daemon_ = std::make_unique<ModulationDaemon>(ctx_.loop(), replay_device_,
                                               std::move(trace),
                                               cfg.loop_trace);
  daemon_->set_telemetry(ctx_);
  if (cfg.daemon_faults.enabled()) {
    // The injector draws from its own stream (derived from the config seed,
    // not the context's root rng) so enabling faults never perturbs the
    // rest of the world's randomness.
    fault_injector_ = std::make_unique<trace::FaultInjector>(
        sim::Rng(cfg.seed ^ 0xfa017'dae3'0a51ULL), &ctx_.metrics());
    daemon_->set_faults(fault_injector_.get(), cfg.daemon_faults);
  }
  daemon_->start();
}

double Emulator::measure_physical_vb(const EmulatorConfig& cfg,
                                     sim::Duration measure_for) {
  // A plain (unmodulated) testbed on the same physical configuration,
  // measured with the same tools: ping workload + trace tap + distillation.
  // The world lives in its own context, so measurement can run concurrently
  // with (and independently of) any emulation in the process.
  sim::SimContext ctx(cfg.seed);
  sim::EventLoop& loop = ctx.loop();
  net::EthernetSegment segment(loop, cfg.ethernet);
  transport::Host mobile(ctx, "mobile", cfg.seed, cfg.tcp);
  transport::Host server(ctx, "server", cfg.seed + 1, cfg.tcp);

  auto mobile_dev = std::make_unique<net::EthernetDevice>(segment, "m-eth0");
  mobile_dev->claim_address(cfg.mobile_addr);
  mobile.node().add_interface(std::move(mobile_dev), cfg.mobile_addr);
  mobile.node().set_default_route(0);

  auto server_dev = std::make_unique<net::EthernetDevice>(segment, "s-eth0");
  server_dev->claim_address(cfg.server_addr);
  server.node().add_interface(std::move(server_dev), cfg.server_addr);
  server.node().set_default_route(0);

  sim::ClockModel clock;  // measurement host clock (ideal here)
  trace::TraceTap* tap = nullptr;
  mobile.node().wrap_interface(0, [&](std::unique_ptr<net::NetDevice> inner) {
    auto t = std::make_unique<trace::TraceTap>(std::move(inner), loop, clock,
                                               nullptr);
    tap = t.get();
    return t;
  });
  trace::CollectionDaemon collector(loop, *tap);
  trace::PingWorkload ping(mobile, cfg.server_addr, clock);

  collector.start();
  ping.start();
  loop.run_until(loop.now() + measure_for);
  ping.stop();
  collector.stop();

  Distiller distiller;
  const ReplayTrace measured = distiller.distill(collector.trace());
  return measured.mean_bottleneck_per_byte();
}

}  // namespace tracemod::core
