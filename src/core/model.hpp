// The paper's simple, instantaneous network model (Section 3.2.1).
//
// Time-varying network quality is a sequence of invariant segments, each a
// network quality tuple <d, F, Vb, Vr, L>:
//   d  - segment duration
//   F  - latency: fixed per-packet cost, seconds (one-way)
//   Vb - bottleneck per-byte cost, seconds/byte (inverse bottleneck bandwidth)
//   Vr - residual per-byte cost along the rest of the path, seconds/byte
//   L  - probability a packet crossing the path in this segment is lost
// A single unqueued packet of s bytes takes F + s(Vb + Vr) one way
// (equation 4); only the bottleneck term serializes consecutive packets.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace tracemod::core {

struct QualityTuple {
  sim::Duration d{};
  double latency_s = 0.0;        ///< F
  double per_byte_bottleneck = 0.0;  ///< Vb, s/byte
  double per_byte_residual = 0.0;    ///< Vr, s/byte
  double loss = 0.0;             ///< L, one-way drop probability

  /// One-way delay of an unqueued packet of the given size (equation 4).
  double one_way_delay_s(std::uint32_t bytes) const {
    return latency_s +
           static_cast<double>(bytes) *
               (per_byte_bottleneck + per_byte_residual);
  }

  /// Bottleneck bandwidth implied by Vb, bits/second.
  double bottleneck_bandwidth_bps() const {
    return per_byte_bottleneck > 0.0 ? 8.0 / per_byte_bottleneck : 0.0;
  }
};

/// The replay trace: a concise, time-varying description of network quality
/// (the distillation output, the modulation input).
class ReplayTrace {
 public:
  ReplayTrace() = default;
  explicit ReplayTrace(std::vector<QualityTuple> tuples)
      : tuples_(std::move(tuples)) {}

  const std::vector<QualityTuple>& tuples() const { return tuples_; }
  std::vector<QualityTuple>& tuples() { return tuples_; }
  bool empty() const { return tuples_.empty(); }
  std::size_t size() const { return tuples_.size(); }

  sim::Duration total_duration() const;

  /// The tuple active at the given offset from the trace start; clamps to
  /// the last tuple past the end.
  const QualityTuple& at_offset(sim::Duration offset) const;

  /// Long-term (duration-weighted) averages, used for delay compensation
  /// and reporting.
  double mean_latency_s() const;
  double mean_bottleneck_per_byte() const;
  double mean_loss() const;

  // --- text serialization ("# tracemod replay v1", one tuple per line) ---
  void serialize(std::ostream& out) const;
  static ReplayTrace parse(std::istream& in);
  void save(const std::string& path) const;
  static ReplayTrace load(const std::string& path);

  // --- synthetic traces (paper Section 6) ---

  /// Constant conditions for the given total duration.
  static ReplayTrace constant(sim::Duration total, sim::Duration step,
                              double latency_s, double bandwidth_bps,
                              double loss);

  /// A step function: bandwidth switches between two levels every half
  /// period (used to explore adaptive systems, per the Odyssey reference).
  static ReplayTrace bandwidth_step(sim::Duration total, sim::Duration step,
                                    double latency_s, double low_bps,
                                    double high_bps, sim::Duration period,
                                    double loss = 0.0);

  /// Roughly WaveLAN-like conditions (Figure 1's synthetic trace).
  static ReplayTrace wavelan_like(sim::Duration total);

 private:
  std::vector<QualityTuple> tuples_;
};

}  // namespace tracemod::core
