// The in-kernel modulation layer (paper Section 3.3).
//
// Sits between IP and the link layer on the host under test and subjects
// every inbound and outbound packet to the delays and drops of the current
// quality tuple:
//   - a single unified delay queue: both directions serialize through the
//     same emulated bottleneck (per-byte cost Vb), so they interfere with
//     each other exactly as on the real path;
//   - latency F and residual per-byte cost Vr add delay but never queue;
//   - each packet is dropped with probability L -- after it has passed
//     through the bottleneck queue, as in the paper;
//   - releases are scheduled on clock ticks (default 10 ms): the release
//     time rounds to the nearest tick, and delays under half a tick send
//     immediately (the artifact behind the Andrew-benchmark divergence,
//     Section 5.4);
//   - delay compensation: the long-term mean bottleneck per-byte cost of
//     the *physical* modulation network is subtracted from Vb for inbound
//     packets (Figure 1).
#pragma once

#include <memory>
#include <string>

#include "core/replay_device.hpp"
#include "net/device.hpp"
#include "sim/event_loop.hpp"
#include "sim/random.hpp"
#include "sim/telemetry.hpp"
#include "sim/tick_clock.hpp"

namespace tracemod::sim {
class SimContext;
}

namespace tracemod::core {

struct ModulationConfig {
  /// Clock-interrupt resolution for release scheduling; 0 = ideal clock.
  sim::Duration tick = sim::milliseconds(10);
  /// The endpoint-placement artifact of the paper's kernel implementation:
  /// inbound packets have already been serialized by the *physical*
  /// modulating network when the delay queue charges them the full
  /// emulated bottleneck cost, so uncompensated inbound traffic pays both
  /// (Figure 1's uncompensated fetch curve).  This is that physical
  /// per-byte cost; the Emulator sets it from its Ethernet configuration.
  double inbound_physical_vb = 0.0;
  /// Compensation (Section 3.3): the measured long-term mean bottleneck
  /// per-byte cost of the physical network, subtracted from the effective
  /// inbound Vb.  0 disables compensation.
  double inbound_vb_compensation = 0.0;
  std::uint64_t drop_seed = 0x7ace;
};

class ModulationLayer : public net::DeviceShim {
 public:
  struct Stats {
    std::uint64_t modulated_out = 0;
    std::uint64_t modulated_in = 0;
    std::uint64_t dropped = 0;
    std::uint64_t sent_immediately = 0;  ///< under the half-tick threshold
    std::uint64_t scheduled = 0;
    std::uint64_t passed_unmodulated = 0;  ///< no tuple available
    std::uint64_t tuples_consumed = 0;
  };

  ModulationLayer(std::unique_ptr<net::NetDevice> inner, sim::EventLoop& loop,
                  ReplayPseudoDevice& device, ModulationConfig cfg = {});

  const Stats& stats() const { return stats_; }
  const ModulationConfig& config() const { return cfg_; }

  /// The currently active tuple (mostly for tests/diagnostics).
  const QualityTuple* active_tuple() const {
    return have_tuple_ ? &tuple_ : nullptr;
  }

  /// Wires the layer into the context's metrics (drop counter) and, when
  /// telemetry is enabled, the flight recorder ("<node>/modulation" track)
  /// plus the delay-queue depth and bottleneck-backlog series.  Call once
  /// from the world builder.
  void set_telemetry(sim::SimContext& ctx, const std::string& node);

 protected:
  void on_outbound(net::Packet pkt) override;
  void on_inbound(net::Packet pkt) override;

 private:
  enum class Direction { kOut, kIn };
  void modulate(net::Packet pkt, Direction dir);
  bool refresh_tuple();

  sim::EventLoop& loop_;
  ReplayPseudoDevice& device_;
  ModulationConfig cfg_;
  sim::TickClock tick_;
  sim::Rng rng_;
  QualityTuple tuple_{};
  bool have_tuple_ = false;
  sim::TimePoint tuple_expires_ = sim::kEpoch;
  sim::TimePoint bottleneck_busy_until_ = sim::kEpoch;
  Stats stats_;
  std::uint64_t* m_drops_ = nullptr;  // context drop counter, when wired
  sim::Telemetry* tel_ = nullptr;     // non-null only while enabled
  sim::TrackId trk_ = sim::kNoTrack;
  sim::TimeSeries* depth_series_ = nullptr;
  sim::TimeSeries* backlog_series_ = nullptr;
  std::size_t delay_queue_depth_ = 0;  // packets awaiting tick release
};

}  // namespace tracemod::core
