#include "transport/udp.hpp"

#include <stdexcept>

namespace tracemod::transport {

void Udp::handle_packet(const net::Packet& pkt) {
  const auto& hdr = pkt.udp();
  auto it = sockets_.find(hdr.dst_port);
  if (it == sockets_.end()) return;  // no listener: silently dropped
  UdpSocket* sock = it->second;
  if (sock->cb_) sock->cb_(pkt, net::Endpoint{pkt.src, hdr.src_port});
}

std::uint16_t Udp::bind(UdpSocket* sock, std::uint16_t port) {
  if (port == 0) {
    while (sockets_.count(next_ephemeral_) != 0) {
      ++next_ephemeral_;
      if (next_ephemeral_ == 0) next_ephemeral_ = 32768;
    }
    port = next_ephemeral_++;
    if (next_ephemeral_ == 0) next_ephemeral_ = 32768;
  } else if (sockets_.count(port) != 0) {
    throw std::runtime_error("udp port already bound: " + std::to_string(port));
  }
  sockets_[port] = sock;
  return port;
}

void Udp::unbind(std::uint16_t port) { sockets_.erase(port); }

UdpSocket::UdpSocket(Udp& udp, std::uint16_t port)
    : udp_(udp), port_(udp.bind(this, port)) {}

UdpSocket::~UdpSocket() { udp_.unbind(port_); }

void UdpSocket::send_to(net::Endpoint dst, std::uint32_t payload_size,
                        std::any payload) {
  net::Packet pkt = net::make_udp_packet(net::IpAddress{}, dst.addr, port_,
                                         dst.port, payload_size);
  pkt.payload = std::move(payload);
  udp_.node().send(std::move(pkt));
}

}  // namespace tracemod::transport
