#include "transport/icmp.hpp"

namespace tracemod::transport {

void Icmp::send_echo(net::IpAddress dst, std::uint16_t id, std::uint16_t seq,
                     std::uint32_t payload_size,
                     sim::TimePoint payload_timestamp) {
  net::IcmpHeader hdr;
  hdr.type = net::IcmpHeader::Type::kEchoRequest;
  hdr.id = id;
  hdr.seq = seq;
  hdr.payload_timestamp = payload_timestamp;
  node_.send(net::make_icmp_packet(net::IpAddress{}, dst, hdr, payload_size));
  ++stats_.echoes_sent;
}

void Icmp::handle_packet(const net::Packet& pkt) {
  const auto& hdr = pkt.icmp();
  if (hdr.type == net::IcmpHeader::Type::kEchoRequest) {
    // Answer with an ECHOREPLY of the same size; the payload (and thus the
    // embedded timestamp) is copied back verbatim.
    net::IcmpHeader reply = hdr;
    reply.type = net::IcmpHeader::Type::kEchoReply;
    node_.send(
        net::make_icmp_packet(net::IpAddress{}, pkt.src, reply, pkt.payload_size));
    ++stats_.echoes_answered;
    return;
  }
  if (hdr.type == net::IcmpHeader::Type::kEchoReply) {
    ++stats_.replies_received;
    if (reply_cb_) reply_cb_(pkt);
  }
}

}  // namespace tracemod::transport
