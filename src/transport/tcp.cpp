#include "transport/tcp.hpp"

#include <algorithm>

#include "sim/assert.hpp"
#include "sim/metric_names.hpp"

namespace tracemod::transport {

namespace {

/// Metadata piggybacked on data segments: record boundaries whose last byte
/// lies inside the segment.
struct SegmentMeta {
  std::vector<std::pair<std::uint64_t, std::any>> record_ends;
};

}  // namespace

const char* to_string(TcpConnection::State s) {
  using St = TcpConnection::State;
  switch (s) {
    case St::kClosed: return "CLOSED";
    case St::kSynSent: return "SYN_SENT";
    case St::kSynReceived: return "SYN_RCVD";
    case St::kEstablished: return "ESTABLISHED";
    case St::kFinWait1: return "FIN_WAIT_1";
    case St::kFinWait2: return "FIN_WAIT_2";
    case St::kClosing: return "CLOSING";
    case St::kTimeWait: return "TIME_WAIT";
    case St::kCloseWait: return "CLOSE_WAIT";
    case St::kLastAck: return "LAST_ACK";
  }
  return "?";
}

// ---------------------------------------------------------------- Tcp ----

Tcp::Tcp(net::Node& node, TcpConfig cfg) : node_(node), cfg_(cfg) {
  node_.register_protocol(net::Protocol::kTcp, this);
}

void Tcp::listen(std::uint16_t port, AcceptCallback cb) {
  TM_ASSERT(cb != nullptr);
  listeners_[port] = std::move(cb);
}

TcpConnection& Tcp::connect(net::Endpoint remote) {
  std::uint16_t port;
  ConnKey key;
  do {
    port = next_ephemeral_++;
    if (next_ephemeral_ == 0) next_ephemeral_ = 20000;
    key = ConnKey{port, remote.addr.value, remote.port};
  } while (conns_.count(key) != 0);

  auto conn = std::unique_ptr<TcpConnection>(new TcpConnection(
      *this, net::Endpoint{node_.address(), port}, remote, /*passive=*/false));
  TcpConnection& ref = *conn;
  conns_[key] = std::move(conn);
  ref.start_connect();
  return ref;
}

void Tcp::handle_packet(const net::Packet& pkt) {
  const auto& hdr = pkt.tcp();
  const ConnKey key{hdr.dst_port, pkt.src.value, hdr.src_port};
  auto it = conns_.find(key);
  if (it != conns_.end()) {
    it->second->on_segment(pkt);
    return;
  }
  auto lit = listeners_.find(hdr.dst_port);
  if (lit != listeners_.end() && hdr.syn && !hdr.ack_flag) {
    auto conn = std::unique_ptr<TcpConnection>(new TcpConnection(
        *this, net::Endpoint{pkt.dst, hdr.dst_port},
        net::Endpoint{pkt.src, hdr.src_port}, /*passive=*/true));
    TcpConnection& ref = *conn;
    // The listener's callback fires once the handshake completes.
    AcceptCallback cb = lit->second;
    ref.set_on_connected([cb, &ref] { cb(ref); });
    conns_[key] = std::move(conn);
    ref.on_segment(pkt);
    return;
  }
  // No connection, no listener: a real stack would send RST; benchmarks
  // never hit this path, so silently ignore.
}

// ------------------------------------------------------- TcpConnection ----

TcpConnection::TcpConnection(Tcp& tcp, net::Endpoint local,
                             net::Endpoint remote, bool passive)
    : tcp_(tcp),
      local_(local),
      remote_(remote),
      passive_(passive),
      rto_timer_(tcp.node().loop()),
      delack_timer_(tcp.node().loop()),
      timewait_timer_(tcp.node().loop()),
      rto_(tcp.config().initial_rto) {
  const auto& cfg = tcp_.config();
  cwnd_ = cfg.initial_cwnd_segments * cfg.mss;
  ssthresh_ = 64 * 1024;
  snd_wnd_ = cfg.recv_buffer;  // until the peer advertises
}

TcpConnection::~TcpConnection() = default;

void TcpConnection::start_connect() {
  TM_ASSERT(!passive_ && state_ == State::kClosed);
  state_ = State::kSynSent;
  snd_nxt_ = 1;
  timed_at_ = tcp_.node().loop().now();
  timing_ = true;
  timed_ack_target_ = 1;
  send_control(/*syn=*/true, /*ack=*/false, /*fin=*/false, /*rst=*/false, 0);
  arm_rto();
}

std::uint32_t TcpConnection::receive_window() const {
  std::uint64_t buffered = 0;
  for (const OooRange& r : ooo_) buffered += r.end - r.begin;
  const std::uint64_t buf = tcp_.config().recv_buffer;
  return buffered >= buf ? 0 : static_cast<std::uint32_t>(buf - buffered);
}

void TcpConnection::send_control(bool syn, bool ack, bool fin, bool rst,
                                 std::uint64_t seq) {
  net::TcpHeader hdr;
  hdr.src_port = local_.port;
  hdr.dst_port = remote_.port;
  hdr.seq = seq;
  hdr.ack = rcv_nxt_;
  hdr.syn = syn;
  hdr.ack_flag = ack;
  hdr.fin = fin;
  hdr.rst = rst;
  hdr.window = receive_window();
  tcp_.send_packet(net::make_tcp_packet(local_.addr, remote_.addr, hdr, 0));
  if (ack) {
    delack_timer_.cancel();
    segs_since_ack_ = 0;
  }
}

void TcpConnection::send_segment(std::uint64_t seq, std::uint32_t len,
                                 bool fin) {
  net::TcpHeader hdr;
  hdr.src_port = local_.port;
  hdr.dst_port = remote_.port;
  hdr.seq = seq;
  hdr.ack = rcv_nxt_;
  hdr.ack_flag = true;
  hdr.fin = fin;
  hdr.window = receive_window();

  net::Packet pkt = net::make_tcp_packet(local_.addr, remote_.addr, hdr, len);
  if (len > 0) {
    // Attach boundaries of records whose last byte rides in this segment.
    SegmentMeta meta;
    for (std::size_t i = send_records_acked_; i < send_records_.size(); ++i) {
      const RecordBoundary& rb = send_records_[i];
      if (rb.end_seq < seq) continue;
      if (rb.end_seq > seq + len - 1) break;
      meta.record_ends.emplace_back(rb.end_seq, rb.meta);
    }
    if (!meta.record_ends.empty()) pkt.payload = std::move(meta);
  }
  tcp_.send_packet(std::move(pkt));
  ++stats_.segments_sent;
  if (seq < snd_max_) {
    ++stats_.retransmits;
    timing_ = false;  // Karn's rule: never time retransmitted data
    sim::SimContext& ctx = tcp_.node().context();
    ++ctx.metrics().counter(sim::metric::kTcpRetransmits);
    sim::Telemetry& tel = ctx.telemetry();
    if (tel.enabled()) {
      // Keyed by wire seq: a segment retransmitted twice shares a key.
      tel.recorder().instant(tel.track(tcp_.node().name(), "transport"),
                             "tcp.retransmit", seq, tcp_.node().loop().now(),
                             static_cast<double>(len));
    }
  }
  snd_nxt_ = std::max(snd_nxt_, seq + len + (fin ? 1u : 0u));
  snd_max_ = std::max(snd_max_, snd_nxt_);
  delack_timer_.cancel();
  segs_since_ack_ = 0;
}

std::uint64_t TcpConnection::send_limit() const {
  // Usable window: min(congestion, advertised), from snd_una_.
  const std::uint64_t wnd = std::min<std::uint64_t>(cwnd_, snd_wnd_);
  return snd_una_ + wnd;
}

void TcpConnection::send(std::uint64_t bytes, std::any meta) {
  TM_ASSERT(bytes > 0);
  TM_ASSERT(!fin_queued_);
  stream_len_ += bytes;
  stats_.bytes_sent += bytes;
  send_records_.push_back(RecordBoundary{stream_len_, std::move(meta)});
  try_send();
}

void TcpConnection::close() {
  if (fin_queued_) return;
  fin_queued_ = true;
  if (state_ == State::kEstablished || state_ == State::kCloseWait) {
    try_send();
  } else if (state_ == State::kClosed || state_ == State::kSynSent) {
    become_closed(false);
  }
}

void TcpConnection::abort() {
  if (state_ == State::kClosed) return;
  send_control(false, false, false, /*rst=*/true, snd_nxt_);
  become_closed(true);
}

void TcpConnection::try_send() {
  // Data may be (re)sent in any synchronized state with unacked stream
  // bytes: the closing states still retransmit after a go-back-N rollback.
  switch (state_) {
    case State::kEstablished:
    case State::kCloseWait:
    case State::kFinWait1:
    case State::kLastAck:
    case State::kClosing:
      break;
    default:
      return;
  }
  const std::uint32_t mss = tcp_.config().mss;
  const std::uint64_t data_end = stream_end_seq();
  bool sent = false;
  while (snd_nxt_ < data_end && snd_nxt_ < send_limit()) {
    const std::uint64_t len64 = std::min<std::uint64_t>(
        {mss, data_end - snd_nxt_, send_limit() - snd_nxt_});
    if (len64 == 0) break;
    const std::uint64_t seq = snd_nxt_;
    send_segment(seq, static_cast<std::uint32_t>(len64), false);
    if (!timing_) {
      timing_ = true;
      timed_ack_target_ = snd_nxt_;
      timed_at_ = tcp_.node().loop().now();
    }
    sent = true;
  }
  if (sent && !rto_timer_.armed()) arm_rto();
  maybe_send_fin();
}

void TcpConnection::maybe_send_fin() {
  if (!fin_queued_) return;
  if (snd_nxt_ != stream_end_seq()) return;  // data still unsent/unfilled
  switch (state_) {
    case State::kEstablished:
    case State::kCloseWait:
      send_control(false, true, /*fin=*/true, false, stream_end_seq());
      fin_sent_ = true;
      snd_nxt_ = stream_end_seq() + 1;
      snd_max_ = std::max(snd_max_, snd_nxt_);
      state_ = (state_ == State::kEstablished) ? State::kFinWait1
                                               : State::kLastAck;
      break;
    case State::kFinWait1:
    case State::kLastAck:
    case State::kClosing:
      // Refilling after a go-back-N rollback: the FIN goes again.
      TM_ASSERT(fin_sent_);
      send_control(false, true, /*fin=*/true, false, stream_end_seq());
      snd_nxt_ = stream_end_seq() + 1;
      break;
    default:
      return;
  }
  if (!rto_timer_.armed()) arm_rto();
}

void TcpConnection::arm_rto() {
  rto_timer_.arm(rto_, [this] { handle_rto(); }, "tcp.rto");
}

void TcpConnection::rtt_sample(sim::Duration sample) {
  const auto& cfg = tcp_.config();
  if (!have_rtt_) {
    srtt_ = sample;
    rttvar_ = sample / 2;
    have_rtt_ = true;
  } else {
    const auto err = (sample > srtt_) ? (sample - srtt_) : (srtt_ - sample);
    rttvar_ = (rttvar_ * 3 + err) / 4;
    srtt_ = (srtt_ * 7 + sample) / 8;
  }
  rto_ = srtt_ + std::max(sim::milliseconds(10), rttvar_ * 4);
  rto_ = std::clamp(rto_, cfg.min_rto, cfg.max_rto);
}

void TcpConnection::handle_rto() {
  const auto& cfg = tcp_.config();
  ++stats_.rto_events;
  if (++retries_ > cfg.max_retries) {
    // Give up.  Tell the peer (best effort) so it does not wait forever on
    // a connection we will never service again.
    send_control(false, false, false, /*rst=*/true, snd_nxt_);
    become_closed(true);
    return;
  }
  // Multiplicative backoff and congestion response.
  rto_ = std::min(rto_ * 2, cfg.max_rto);
  const std::uint64_t flight = snd_nxt_ - snd_una_;
  ssthresh_ = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(flight / 2, 2ull * cfg.mss));
  cwnd_ = cfg.mss;
  in_fast_recovery_ = false;
  dup_acks_ = 0;
  timing_ = false;

  // Retransmit the oldest unacknowledged thing.  For data, roll the send
  // point back (Tahoe go-back-N): without selective acknowledgments,
  // recovering a multi-segment hole one RTO at a time takes seconds per
  // segment and wedges transfers across outage bursts.
  if (snd_una_ == 0) {
    if (passive_) {
      send_control(true, true, false, false, 0);  // SYN|ACK
    } else {
      send_control(true, false, false, false, 0);  // SYN
    }
  } else if (fin_sent_ && snd_una_ == stream_end_seq()) {
    send_control(false, true, true, false, stream_end_seq());
  } else if (snd_una_ < stream_end_seq()) {
    snd_nxt_ = snd_una_;
    try_send();  // cwnd is one segment: retransmits exactly the oldest
  }
  arm_rto();
}

void TcpConnection::process_ack(std::uint64_t ack, std::uint32_t window) {
  snd_wnd_ = window;
  if (ack > snd_max_) return;  // acks something we never sent; ignore
  if (ack > snd_una_) {
    const std::uint64_t newly = ack - snd_una_;
    // Count acked *data* bytes: exclude the SYN (seq 0) and FIN seqs.
    std::uint64_t data_lo = std::max<std::uint64_t>(snd_una_, 1);
    std::uint64_t data_hi = std::min<std::uint64_t>(ack, stream_end_seq());
    if (data_hi > data_lo) stats_.bytes_acked += data_hi - data_lo;
    (void)newly;
    snd_una_ = ack;
    // Old in-flight data can be acked past a go-back-N rollback point.
    snd_nxt_ = std::max(snd_nxt_, snd_una_);
    retries_ = 0;

    if (timing_ && ack >= timed_ack_target_) {
      timing_ = false;
      rtt_sample(tcp_.node().loop().now() - timed_at_);
    }

    // Prune fully-acked record boundaries (their last byte is < snd_una_).
    while (send_records_acked_ < send_records_.size() &&
           send_records_[send_records_acked_].end_seq < snd_una_) {
      ++send_records_acked_;
    }

    const std::uint32_t mss = tcp_.config().mss;
    if (in_fast_recovery_) {
      in_fast_recovery_ = false;
      cwnd_ = ssthresh_;
      dup_acks_ = 0;
    } else {
      dup_acks_ = 0;
      if (cwnd_ < ssthresh_) {
        cwnd_ += mss;  // slow start
      } else {
        cwnd_ += std::max<std::uint32_t>(1, mss * mss / cwnd_);  // CA
      }
    }

    if (snd_una_ == snd_nxt_) {
      rto_timer_.cancel();
    } else {
      arm_rto();
    }

    // FIN acknowledged?
    if (fin_sent_ && snd_una_ > stream_end_seq()) {
      if (state_ == State::kFinWait1) {
        state_ = State::kFinWait2;
        timewait_timer_.arm(tcp_.config().fin_wait2_timeout,
                            [this] { become_closed(false); }, "tcp.finwait2");
      } else if (state_ == State::kClosing) {
        enter_time_wait();
      } else if (state_ == State::kLastAck) {
        become_closed(false);
        return;
      }
    }
    try_send();
    return;
  }

  // Duplicate ACK (only meaningful while data is outstanding).
  if (ack == snd_una_ && snd_nxt_ > snd_una_) {
    const std::uint32_t mss = tcp_.config().mss;
    if (in_fast_recovery_) {
      cwnd_ += mss;
      try_send();
      return;
    }
    if (++dup_acks_ == 3) {
      const std::uint64_t flight = snd_nxt_ - snd_una_;
      ssthresh_ = static_cast<std::uint32_t>(
          std::max<std::uint64_t>(flight / 2, 2ull * mss));
      // Retransmit the missing segment.
      if (snd_una_ >= 1 && snd_una_ < stream_end_seq()) {
        const std::uint64_t len64 =
            std::min<std::uint64_t>(mss, stream_end_seq() - snd_una_);
        send_segment(snd_una_, static_cast<std::uint32_t>(len64), false);
      } else if (fin_sent_ && snd_una_ == stream_end_seq()) {
        send_control(false, true, true, false, stream_end_seq());
      }
      cwnd_ = ssthresh_ + 3 * mss;
      in_fast_recovery_ = true;
      ++stats_.fast_retransmits;
      arm_rto();
    }
  }
}

void TcpConnection::process_data(const net::Packet& pkt) {
  const auto& hdr = pkt.tcp();
  const std::uint64_t s = hdr.seq;
  const std::uint64_t e = s + pkt.payload_size;  // exclusive

  // Stash piggybacked record boundaries; they fire only once the stream
  // reaches them.  Boundaries the stream has already passed were delivered
  // from the original transmission -- re-stashing them from a retransmitted
  // segment would deliver the record twice.
  if (const auto* meta = std::any_cast<SegmentMeta>(&pkt.payload)) {
    for (const auto& [end_seq, m] : meta->record_ends) {
      if (end_seq >= rcv_nxt_) pending_records_.emplace(end_seq, m);
    }
  }

  if (e <= rcv_nxt_) {
    send_ack_now();  // stale duplicate: re-ack
    return;
  }
  if (s > rcv_nxt_) {
    // Out of order: remember the range, dup-ack immediately.
    OooRange add{s, e};
    std::vector<OooRange> merged;
    for (const OooRange& r : ooo_) {
      if (r.end < add.begin || r.begin > add.end) {
        merged.push_back(r);
      } else {
        add.begin = std::min(add.begin, r.begin);
        add.end = std::max(add.end, r.end);
      }
    }
    merged.push_back(add);
    std::sort(merged.begin(), merged.end(),
              [](const OooRange& a, const OooRange& b) {
                return a.begin < b.begin;
              });
    ooo_ = std::move(merged);
    send_ack_now();
    return;
  }

  // In-order (possibly overlapping) data: advance rcv_nxt_.
  std::uint64_t new_next = e;
  // Absorb any buffered ranges now contiguous.
  while (!ooo_.empty() && ooo_.front().begin <= new_next) {
    new_next = std::max(new_next, ooo_.front().end);
    ooo_.erase(ooo_.begin());
  }
  const std::uint64_t delivered = new_next - rcv_nxt_;
  rcv_nxt_ = new_next;
  stats_.bytes_delivered += delivered;
  if (on_bytes_) on_bytes_(delivered);
  deliver_ready_records();

  // ACK policy: every second segment, immediately if reassembly is pending,
  // otherwise a delayed ACK.
  ++segs_since_ack_;
  if (segs_since_ack_ >= 2 || !ooo_.empty()) {
    send_ack_now();
  } else {
    schedule_delayed_ack();
  }
}

void TcpConnection::deliver_ready_records() {
  while (!pending_records_.empty()) {
    auto it = pending_records_.begin();
    if (it->first >= rcv_nxt_) break;
    // Record length is the gap from the previous boundary; apps that care
    // already know it from their own protocol, so report the end offset.
    std::any meta = std::move(it->second);
    const std::uint64_t end_seq = it->first;
    pending_records_.erase(it);
    if (on_record_) on_record_(meta, end_seq);
  }
}

void TcpConnection::send_ack_now() {
  send_control(false, true, false, false, snd_nxt_);
}

void TcpConnection::schedule_delayed_ack() {
  if (delack_timer_.armed()) return;
  delack_timer_.arm(tcp_.config().delayed_ack, [this] { send_ack_now(); },
                    "tcp.delack");
}

void TcpConnection::enter_time_wait() {
  state_ = State::kTimeWait;
  rto_timer_.cancel();
  timewait_timer_.arm(tcp_.config().time_wait,
                      [this] { become_closed(false); }, "tcp.timewait");
}

void TcpConnection::become_closed(bool error) {
  if (state_ == State::kClosed) return;
  state_ = State::kClosed;
  rto_timer_.cancel();
  delack_timer_.cancel();
  timewait_timer_.cancel();
  if (on_closed_) on_closed_(error);
}

void TcpConnection::on_segment(const net::Packet& pkt) {
  const auto& hdr = pkt.tcp();
  ++stats_.segments_received;

  if (hdr.rst) {
    become_closed(true);
    return;
  }

  switch (state_) {
    case State::kClosed:
      if (passive_ && hdr.syn && !hdr.ack_flag) {
        rcv_nxt_ = 1;
        state_ = State::kSynReceived;
        snd_nxt_ = 1;
        send_control(true, true, false, false, 0);  // SYN|ACK
        arm_rto();
      }
      return;

    case State::kSynSent:
      if (hdr.syn && hdr.ack_flag && hdr.ack == 1) {
        rcv_nxt_ = 1;
        snd_una_ = 1;
        snd_wnd_ = hdr.window;
        retries_ = 0;
        rto_timer_.cancel();
        if (timing_) {
          timing_ = false;
          rtt_sample(tcp_.node().loop().now() - timed_at_);
        }
        state_ = State::kEstablished;
        send_ack_now();
        if (on_connected_) on_connected_();
        try_send();
      }
      return;

    case State::kSynReceived:
      if (hdr.syn && !hdr.ack_flag) {
        send_control(true, true, false, false, 0);  // our SYN|ACK was lost
        return;
      }
      if (hdr.ack_flag && hdr.ack >= 1) {
        snd_una_ = std::max<std::uint64_t>(snd_una_, 1);
        snd_wnd_ = hdr.window;
        retries_ = 0;
        rto_timer_.cancel();
        state_ = State::kEstablished;
        if (on_connected_) on_connected_();
        // Fall through to normal processing for any piggybacked data.
        break;
      }
      return;

    default:
      if (hdr.syn) {
        // Retransmitted handshake segment: re-ack our current state.
        send_ack_now();
        return;
      }
      break;
  }

  // Normal processing (ESTABLISHED and later states).
  if (hdr.ack_flag) process_ack(hdr.ack, hdr.window);
  if (state_ == State::kClosed) return;  // process_ack may finish LAST_ACK
  if (pkt.payload_size > 0) process_data(pkt);

  if (hdr.fin) {
    const std::uint64_t fin_seq = hdr.seq + pkt.payload_size;
    if (!peer_fin_seen_) {
      peer_fin_seen_ = true;
      peer_fin_seq_ = fin_seq;
    }
  }
  if (peer_fin_seen_ && rcv_nxt_ == peer_fin_seq_) {
    // FIN is now in-order: consume it.
    rcv_nxt_ = peer_fin_seq_ + 1;
    peer_fin_seq_ = 0;  // consumed marker (rcv_nxt_ moved past)
    peer_fin_seen_ = false;
    peer_fin_consumed_ = true;
    send_ack_now();
    switch (state_) {
      case State::kEstablished:
        state_ = State::kCloseWait;
        if (on_peer_fin_) on_peer_fin_();
        break;
      case State::kFinWait1:
        state_ = State::kClosing;
        if (on_peer_fin_) on_peer_fin_();
        break;
      case State::kFinWait2:
        if (on_peer_fin_) on_peer_fin_();
        enter_time_wait();
        break;
      default:
        break;
    }
  } else if (peer_fin_consumed_ && hdr.fin) {
    // Retransmitted FIN after we consumed it: re-ack.
    send_ack_now();
  }
}

}  // namespace tracemod::transport
