// A Host is a Node with the full transport suite attached.
//
// Everything above the network layer in the paper's testbeds -- the mobile
// ThinkPad, the server workstation, the interfering laptops -- is a Host.
#pragma once

#include <memory>
#include <string>

#include "net/node.hpp"
#include "transport/icmp.hpp"
#include "transport/tcp.hpp"
#include "transport/udp.hpp"

namespace tracemod::transport {

class Host {
 public:
  Host(sim::SimContext& ctx, std::string name, std::uint64_t seed = 1,
       TcpConfig tcp_cfg = {})
      : node_(ctx, std::move(name), seed),
        icmp_(node_),
        udp_(node_),
        tcp_(node_, tcp_cfg) {}

  net::Node& node() { return node_; }
  Icmp& icmp() { return icmp_; }
  Udp& udp() { return udp_; }
  Tcp& tcp() { return tcp_; }

  sim::SimContext& context() { return node_.context(); }
  sim::EventLoop& loop() { return node_.loop(); }
  net::IpAddress address(std::size_t interface = 0) const {
    return node_.address(interface);
  }
  const std::string& name() const { return node_.name(); }

 private:
  net::Node node_;
  Icmp icmp_;
  Udp udp_;
  Tcp tcp_;
};

}  // namespace tracemod::transport
