// TCP (Reno-style) over the simulated network.
//
// A deliberately faithful subset of 4.4BSD-era TCP: three-way handshake,
// MSS segmentation, cumulative ACKs with delayed-ACK policy, sliding window
// bounded by the peer's advertised window and the congestion window,
// Jacobson/Karels RTT estimation with Karn's rule, exponential RTO backoff,
// slow start / congestion avoidance / fast retransmit / fast recovery, and
// FIN teardown with TIME_WAIT.  The Web and FTP benchmarks (paper Sections
// 5.2-5.3) run on this.
//
// Application data model: connections carry *records* -- (byte count, opaque
// meta) pairs.  The byte count drives real segmentation and window dynamics;
// the meta rides on the segment containing the record's last byte and is
// delivered to the receiver's on_record callback once every byte of the
// record has arrived in order.  This keeps apps message-oriented while TCP
// stays a byte stream.
#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/node.hpp"
#include "sim/event_loop.hpp"

namespace tracemod::transport {

struct TcpConfig {
  std::uint32_t mss = 1460;
  std::uint32_t recv_buffer = 16 * 1024;  ///< 4.4BSD default socket buffer
  sim::Duration min_rto = sim::milliseconds(500);
  sim::Duration initial_rto = sim::milliseconds(1000);
  sim::Duration max_rto = sim::seconds(64);
  sim::Duration delayed_ack = sim::milliseconds(200);
  sim::Duration time_wait = sim::seconds(2);
  /// Give up waiting for the peer's FIN eventually (BSD's FIN_WAIT_2
  /// timer); prevents half-closed connections from hanging forever when
  /// the peer died under heavy loss.
  sim::Duration fin_wait2_timeout = sim::seconds(30);
  int max_retries = 12;
  /// Two segments, so short responses don't stall on the receiver's
  /// delayed-ACK timer (the BSD "ack every other segment" interplay).
  std::uint32_t initial_cwnd_segments = 2;
};

class Tcp;

class TcpConnection {
 public:
  enum class State {
    kClosed,
    kSynSent,
    kSynReceived,
    kEstablished,
    kFinWait1,
    kFinWait2,
    kClosing,
    kTimeWait,
    kCloseWait,
    kLastAck,
  };

  struct Stats {
    std::uint64_t bytes_sent = 0;       ///< unique stream bytes queued
    std::uint64_t bytes_acked = 0;
    std::uint64_t bytes_delivered = 0;  ///< in-order bytes handed to the app
    std::uint64_t segments_sent = 0;
    std::uint64_t segments_received = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t rto_events = 0;
    std::uint64_t fast_retransmits = 0;
  };

  using OnConnected = std::function<void()>;
  /// meta: the record's opaque tag; end_offset: wire seq of its last byte
  /// (i.e. cumulative stream bytes through this record).
  using OnRecord = std::function<void(const std::any& meta, std::uint64_t end_offset)>;
  using OnBytes = std::function<void(std::uint64_t n)>;
  using OnClosed = std::function<void(bool error)>;
  using OnPeerFin = std::function<void()>;

  ~TcpConnection();

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  /// Appends a record to the send stream.  bytes > 0.
  void send(std::uint64_t bytes, std::any meta = {});

  /// Half-closes: a FIN follows the last queued byte.
  void close();

  /// Aborts: RST to peer, immediate CLOSED with error.
  void abort();

  void set_on_connected(OnConnected cb) { on_connected_ = std::move(cb); }
  void set_on_record(OnRecord cb) { on_record_ = std::move(cb); }
  void set_on_bytes(OnBytes cb) { on_bytes_ = std::move(cb); }
  void set_on_closed(OnClosed cb) { on_closed_ = std::move(cb); }
  /// Fires when the peer's FIN is consumed in order (end of peer's stream).
  void set_on_peer_fin(OnPeerFin cb) { on_peer_fin_ = std::move(cb); }

  State state() const { return state_; }
  bool established() const { return state_ == State::kEstablished; }
  const Stats& stats() const { return stats_; }
  net::Endpoint local() const { return local_; }
  net::Endpoint remote() const { return remote_; }
  std::uint32_t cwnd() const { return cwnd_; }
  std::uint32_t ssthresh() const { return ssthresh_; }
  sim::Duration current_rto() const { return rto_; }

 private:
  friend class Tcp;

  struct RecordBoundary {
    std::uint64_t end_seq;  ///< wire seq of the record's last byte
    std::any meta;
  };
  struct OooRange {
    std::uint64_t begin;  ///< wire seq, inclusive
    std::uint64_t end;    ///< wire seq, exclusive
  };

  TcpConnection(Tcp& tcp, net::Endpoint local, net::Endpoint remote,
                bool passive);

  void start_connect();
  void on_segment(const net::Packet& pkt);
  void try_send();
  void send_segment(std::uint64_t seq, std::uint32_t len, bool fin);
  void send_ack_now();
  void schedule_delayed_ack();
  void send_control(bool syn, bool ack, bool fin, bool rst, std::uint64_t seq);
  void process_ack(std::uint64_t ack, std::uint32_t window);
  void process_data(const net::Packet& pkt);
  void maybe_send_fin();
  void handle_rto();
  void arm_rto();
  void rtt_sample(sim::Duration sample);
  void enter_time_wait();
  void become_closed(bool error);
  void deliver_ready_records();
  std::uint32_t receive_window() const;
  std::uint64_t send_limit() const;
  std::uint64_t stream_end_seq() const { return 1 + stream_len_; }

  Tcp& tcp_;
  net::Endpoint local_;
  net::Endpoint remote_;
  State state_ = State::kClosed;
  bool passive_ = false;

  // --- send side (wire seq space: SYN=0, data bytes 1..stream_len_) ---
  std::uint64_t stream_len_ = 0;  ///< application bytes queued so far
  bool fin_queued_ = false;       ///< close() called
  bool fin_sent_ = false;
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::uint64_t snd_max_ = 0;  ///< highest seq ever sent (go-back-N aware)
  std::uint32_t snd_wnd_ = 0;   ///< peer's advertised window
  std::uint32_t cwnd_ = 0;
  std::uint32_t ssthresh_ = 0;
  int dup_acks_ = 0;
  bool in_fast_recovery_ = false;
  std::vector<RecordBoundary> send_records_;  // sorted by end_seq
  std::size_t send_records_acked_ = 0;        // prefix fully acked (prunable)

  // --- timers / RTT estimation ---
  sim::Timer rto_timer_;
  sim::Timer delack_timer_;
  sim::Timer timewait_timer_;
  sim::Duration srtt_{};
  sim::Duration rttvar_{};
  bool have_rtt_ = false;
  sim::Duration rto_;
  int retries_ = 0;
  bool timing_ = false;
  std::uint64_t timed_ack_target_ = 0;
  sim::TimePoint timed_at_{};

  // --- receive side ---
  std::uint64_t rcv_nxt_ = 0;
  bool peer_fin_seen_ = false;
  bool peer_fin_consumed_ = false;
  std::uint64_t peer_fin_seq_ = 0;
  std::vector<OooRange> ooo_;  // disjoint, sorted
  std::map<std::uint64_t, std::any> pending_records_;  // end_seq -> meta
  int segs_since_ack_ = 0;

  OnConnected on_connected_;
  OnRecord on_record_;
  OnBytes on_bytes_;
  OnClosed on_closed_;
  OnPeerFin on_peer_fin_;
  Stats stats_;
};

class Tcp : public net::ProtocolHandler {
 public:
  using AcceptCallback = std::function<void(TcpConnection&)>;

  explicit Tcp(net::Node& node, TcpConfig cfg = {});

  /// Registers a passive listener on a port.
  void listen(std::uint16_t port, AcceptCallback cb);

  /// Active open; returns the (Tcp-owned) connection in SYN_SENT.
  TcpConnection& connect(net::Endpoint remote);

  void handle_packet(const net::Packet& pkt) override;

  const TcpConfig& config() const { return cfg_; }
  net::Node& node() { return node_; }

  std::size_t connection_count() const { return conns_.size(); }

 private:
  friend class TcpConnection;

  // Key: (local port, remote addr, remote port).
  using ConnKey = std::tuple<std::uint16_t, std::uint32_t, std::uint16_t>;

  void send_packet(net::Packet pkt) { node_.send(std::move(pkt)); }

  net::Node& node_;
  TcpConfig cfg_;
  std::map<ConnKey, std::unique_ptr<TcpConnection>> conns_;
  std::map<std::uint16_t, AcceptCallback> listeners_;
  std::uint16_t next_ephemeral_ = 20000;
};

const char* to_string(TcpConnection::State s);

}  // namespace tracemod::transport
