// ICMP echo / echo-reply.
//
// The trace-collection workload (the paper's modified ping) is built on
// this.  The echo payload carries the generation timestamp, which the
// responder copies into the reply, so round-trip times need only the
// sender's clock (paper Section 3.1.1).
#pragma once

#include <cstdint>
#include <functional>

#include "net/node.hpp"

namespace tracemod::transport {

class Icmp : public net::ProtocolHandler {
 public:
  struct Stats {
    std::uint64_t echoes_sent = 0;
    std::uint64_t echoes_answered = 0;
    std::uint64_t replies_received = 0;
  };

  /// Called for every ECHOREPLY that reaches this host.
  using ReplyCallback = std::function<void(const net::Packet&)>;

  explicit Icmp(net::Node& node) : node_(node) {
    node_.register_protocol(net::Protocol::kIcmp, this);
  }

  /// Sends an ECHO request.  payload_timestamp should be the sender's clock
  /// reading (possibly drifted); it rides in the payload and comes back in
  /// the reply.  payload_size includes the 8 timestamp bytes, matching ping.
  void send_echo(net::IpAddress dst, std::uint16_t id, std::uint16_t seq,
                 std::uint32_t payload_size, sim::TimePoint payload_timestamp);

  void set_reply_callback(ReplyCallback cb) { reply_cb_ = std::move(cb); }

  void handle_packet(const net::Packet& pkt) override;

  const Stats& stats() const { return stats_; }

 private:
  net::Node& node_;
  ReplyCallback reply_cb_;
  Stats stats_;
};

}  // namespace tracemod::transport
