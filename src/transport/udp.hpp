// UDP sockets.
//
// Datagram transport used by the NFS substrate (the paper's Andrew
// benchmark runs over NFS/UDP).  Sockets are RAII: construction binds,
// destruction unbinds.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/node.hpp"

namespace tracemod::transport {

class UdpSocket;

class Udp : public net::ProtocolHandler {
 public:
  explicit Udp(net::Node& node) : node_(node) {
    node_.register_protocol(net::Protocol::kUdp, this);
  }

  void handle_packet(const net::Packet& pkt) override;

  net::Node& node() { return node_; }

 private:
  friend class UdpSocket;

  std::uint16_t bind(UdpSocket* sock, std::uint16_t port);
  void unbind(std::uint16_t port);

  net::Node& node_;
  std::unordered_map<std::uint16_t, UdpSocket*> sockets_;
  std::uint16_t next_ephemeral_ = 32768;
};

class UdpSocket {
 public:
  /// from: the datagram's source endpoint.
  using ReceiveCallback =
      std::function<void(const net::Packet&, net::Endpoint from)>;

  /// port == 0 binds an ephemeral port.  Throws std::runtime_error if the
  /// requested port is taken.
  UdpSocket(Udp& udp, std::uint16_t port = 0);
  ~UdpSocket();

  UdpSocket(const UdpSocket&) = delete;
  UdpSocket& operator=(const UdpSocket&) = delete;

  std::uint16_t port() const { return port_; }

  /// Sends a datagram.  payload describes the application message (small
  /// struct); payload_size is its simulated wire size in bytes.
  void send_to(net::Endpoint dst, std::uint32_t payload_size,
               std::any payload = {});

  void set_receive_callback(ReceiveCallback cb) { cb_ = std::move(cb); }

 private:
  friend class Udp;

  Udp& udp_;
  std::uint16_t port_;
  ReceiveCallback cb_;
};

}  // namespace tracemod::transport
