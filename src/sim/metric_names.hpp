// Canonical metric names for the degradation counters surfaced through
// SimContext's MetricsRegistry (sim_context.hpp).
//
// Components that detect or inject degradation bump these so an experiment
// can assert "this run saw N salvaged records / M starved daemon wakeups"
// without reaching into component internals.  Central constants keep
// producers (trace reader, fault injector, modulation daemon) and consumers
// (tests, reports) agreeing on spelling.
#pragma once

namespace tracemod::sim::metric {

/// Good trace records decoded after at least one damaged region (salvage
/// reader, trace/trace_io.hpp).
inline constexpr const char* kRecordsSalvaged = "records_salvaged";

/// Record frames whose CRC32C did not validate.
inline constexpr const char* kCrcFailures = "crc_failures";

/// Byte-scan resynchronizations after a corrupted length prefix.
inline constexpr const char* kResyncScans = "resync_scans";

/// Modulation-daemon wakeups lost to injected stalls (pseudo-device
/// starvation; trace/fault_injector.hpp).
inline constexpr const char* kDaemonStarvedTicks = "daemon_starved_ticks";

/// Trace records rejected by injected kernel-buffer pressure.
inline constexpr const char* kBufferPressureDrops = "buffer_pressure_drops";

}  // namespace tracemod::sim::metric
