// Canonical metric names for every counter, histogram, and series channel
// surfaced through SimContext's MetricsRegistry (sim_context.hpp).
//
// Components bump these so an experiment can assert "this run saw N
// salvaged records / M starved daemon wakeups" without reaching into
// component internals.  Central constants keep producers (trace reader,
// fault injector, network stack, modulation daemon) and consumers (tests,
// reports, exporters) agreeing on spelling.  Every counter name a
// simulation can emit must be listed in all_counter_names() below; a test
// runs a full end-to-end scenario and fails on any stray string literal
// that bypassed this header.
#pragma once

namespace tracemod::sim::metric {

/// Good trace records decoded after at least one damaged region (salvage
/// reader, trace/trace_io.hpp).
inline constexpr const char* kRecordsSalvaged = "records_salvaged";

/// Record frames whose CRC32C did not validate.
inline constexpr const char* kCrcFailures = "crc_failures";

/// Byte-scan resynchronizations after a corrupted length prefix.
inline constexpr const char* kResyncScans = "resync_scans";

/// Modulation-daemon wakeups lost to injected stalls (pseudo-device
/// starvation; trace/fault_injector.hpp).
inline constexpr const char* kDaemonStarvedTicks = "daemon_starved_ticks";

/// Trace records rejected by injected kernel-buffer pressure.
inline constexpr const char* kBufferPressureDrops = "buffer_pressure_drops";

// --- network stack counters (src/net, src/transport, src/wireless) ---

/// Packets handed to Node::send by a local source.
inline constexpr const char* kNetPacketsSent = "net.packets_sent";

/// Packets received by a Node on any interface.
inline constexpr const char* kNetPacketsReceived = "net.packets_received";

/// Packets a Node relayed toward another hop.
inline constexpr const char* kNetPacketsForwarded = "net.packets_forwarded";

/// TCP segments retransmitted after a timeout.
inline constexpr const char* kTcpRetransmits = "tcp.retransmits";

/// Link-layer retransmissions on the wireless channel.
inline constexpr const char* kWirelessRetransmits = "wireless.retransmits";

/// Frames dropped by the wireless channel after exhausting retries.
inline constexpr const char* kWirelessDrops = "wireless.drops";

/// Cell handoffs completed by mobile hosts.
inline constexpr const char* kWirelessHandoffs = "wireless.handoffs";

/// Packets dropped by trace modulation (delay-queue policy).
inline constexpr const char* kModulationDrops = "modulation.drops";

// --- fidelity-audit counters (src/audit) ---

/// Divergence windows scored by the fidelity auditor (auditable +
/// unauditable).
inline constexpr const char* kAuditWindowsTotal = "audit.windows_total";

/// Windows the auditor could not score: a LostRecords marker or zero
/// distillation estimates fell inside them.  These are excluded from the
/// divergence aggregates (degraded collection must never read as
/// divergence).
inline constexpr const char* kAuditWindowsUnauditable =
    "audit.windows_unauditable";

/// Auditable windows whose latency/bandwidth/loss all landed inside the
/// per-window tolerances.
inline constexpr const char* kAuditWindowsWithinTolerance =
    "audit.windows_within_tolerance";

// --- telemetry histogram / series channel names ---

/// End-to-end packet latency, source send to final delivery (histogram,
/// milliseconds).
inline constexpr const char* kE2eLatencyMs = "e2e.latency_ms";

/// Modulation delay-queue occupancy sampled at every enqueue/release
/// (series, packets).
inline constexpr const char* kDelayQueueDepth = "modulation.delay_queue_depth";

/// Modelled bottleneck backlog when each packet enters modulation (series,
/// seconds of queued transmission time).
inline constexpr const char* kBottleneckBacklog =
    "modulation.bottleneck_backlog_s";

/// Replay pseudo-device buffer occupancy at each daemon pump (series,
/// records).
inline constexpr const char* kReplayBufferDepth = "replay.buffer_depth";

/// Per-window recovered-vs-reference latency relative error (series,
/// sampled at each divergence window's midpoint on the audit timeline).
inline constexpr const char* kAuditLatencyRelErr = "audit.latency_rel_err";

/// Per-window bottleneck-bandwidth relative error (series).
inline constexpr const char* kAuditBandwidthRelErr =
    "audit.bandwidth_rel_err";

/// Per-window |recovered - reference| loss-rate delta (series).
inline constexpr const char* kAuditLossDelta = "audit.loss_delta";

// --- streaming-distillation counters (src/core/stream_distiller.hpp) ---
//
// Published by StreamDistiller onto whatever registry the caller supplies;
// never emitted from inside a simulated world.

/// Corpus windows planned by the streaming distiller (clean + damaged +
/// shed + resumed).
inline constexpr const char* kDistillWindowsTotal = "distill.windows_total";

/// Corpus windows containing salvaged damage (a LostRecords marker fell
/// inside the window's byte range).
inline constexpr const char* kDistillWindowsSalvaged =
    "distill.windows_salvaged";

/// Corpus windows whose echo buffers were shed to honour the memory
/// budget (delay estimates lost, loss summaries kept).
inline constexpr const char* kDistillWindowsShed = "distill.windows_shed";

/// Corpus windows restored from a checkpoint journal instead of re-read.
inline constexpr const char* kDistillWindowsResumed =
    "distill.windows_resumed";

/// Trace records streamed through distillation passes (never resident all
/// at once).
inline constexpr const char* kDistillRecordsStreamed =
    "distill.records_streamed";

// --- wall-clock perf-plane metrics (src/sim/perf/) ---
//
// Appended onto a TelemetrySnapshot by append_perf_to_telemetry when a
// PerfSession profiled the run; never emitted from inside a simulated
// world (the profiler observes wall time only).

/// Event-loop dispatches observed by the attached profiler (counter).
inline constexpr const char* kPerfEventsProfiled = "perf.events_profiled";

/// Process-wide operator-new calls while the profiler was attached
/// (counter; from the allocation interposer).
inline constexpr const char* kPerfAllocs = "perf.allocs";

/// Process-wide operator-delete calls while attached (counter).
inline constexpr const char* kPerfFrees = "perf.frees";

/// Bytes allocated while attached (counter; usable-size accounting).
inline constexpr const char* kPerfAllocBytes = "perf.alloc_bytes";

/// Live heap bytes at each periodic counter sample (series, bytes,
/// sampled at the dispatch's virtual time).
inline constexpr const char* kPerfHeapLiveBytes = "perf.heap_live_bytes";

/// Event-loop pending-queue depth at each counter sample (series).
inline constexpr const char* kPerfEventQueueDepth =
    "perf.event_queue_depth";

/// Wall-clock dispatch throughput between consecutive counter samples
/// (series, events per wall second).
inline constexpr const char* kPerfEventsPerSec = "perf.events_per_sec";

/// Sampled event-loop dispatch self-times (histogram, microseconds).
inline constexpr const char* kPerfDispatchSelfUs = "perf.dispatch_self_us";

// --- experiment-supervision counters (src/scenarios/supervisor.hpp) ---
//
// Published by export_supervision_metrics onto whatever registry the sweep
// driver supplies; never emitted from inside a trial's SimContext.

/// Trials that exhausted their retry budget and recorded a TrialError.
inline constexpr const char* kSweepTrialsFailed = "sweep.trials_failed";

/// Retry attempts consumed across the sweep (recovered or not).
inline constexpr const char* kSweepTrialsRetried = "sweep.trials_retried";

/// Benchmark outcomes abandoned by a watchdog (virtual-time budget expiry
/// or wall-clock stuck-trial detection).
inline constexpr const char* kSweepTrialsTimedOut = "sweep.trials_timed_out";

// --- durable-write-plane counters (src/sim/io/) ---
//
// Accumulated process-globally (like the perf plane's allocation
// telemetry) and published by export_io_metrics onto whatever registry a
// driver supplies; never emitted from inside a simulated world.

/// Failed write-plane operations: open, write, rename, truncate, close
/// (real or injected).
inline constexpr const char* kIoWriteErrors = "io.write_errors";

/// Failed fsync/fdatasync calls, counted separately because a failed sync
/// forbids the subsequent rename under the atomic-replace contract.
inline constexpr const char* kIoFsyncFailures = "io.fsync_failures";

/// Artifact planes (sweep journal, distill checkpoint, ...) that gave up
/// for the rest of the run after a write failure.
inline constexpr const char* kIoDegradedPlanes = "io.degraded_planes";

/// Status snapshots dropped because their atomic publish failed (the run
/// itself continues; the status plane is droppable by contract).
inline constexpr const char* kStatusPublishFailed = "status.publish_failed";

/// Every counter name the simulation can emit.  The metric-name drift test
/// snapshots a full end-to-end run and fails if it sees a counter that is
/// not in this list.
inline constexpr const char* kAllCounterNames[] = {
    kRecordsSalvaged,    kCrcFailures,         kResyncScans,
    kDaemonStarvedTicks, kBufferPressureDrops, kNetPacketsSent,
    kNetPacketsReceived, kNetPacketsForwarded, kTcpRetransmits,
    kWirelessRetransmits, kWirelessDrops,      kWirelessHandoffs,
    kModulationDrops,    kAuditWindowsTotal,   kAuditWindowsUnauditable,
    kAuditWindowsWithinTolerance, kSweepTrialsFailed, kSweepTrialsRetried,
    kSweepTrialsTimedOut, kDistillWindowsTotal, kDistillWindowsSalvaged,
    kDistillWindowsShed, kDistillWindowsResumed, kDistillRecordsStreamed,
    kPerfEventsProfiled, kPerfAllocs,           kPerfFrees,
    kPerfAllocBytes,     kIoWriteErrors,        kIoFsyncFailures,
    kIoDegradedPlanes,   kStatusPublishFailed,
};

/// Every series channel name, for the same drift test (audit divergence
/// tracks included).
inline constexpr const char* kAllSeriesNames[] = {
    kDelayQueueDepth,    kBottleneckBacklog,   kReplayBufferDepth,
    kAuditLatencyRelErr, kAuditBandwidthRelErr, kAuditLossDelta,
    kPerfHeapLiveBytes,  kPerfEventQueueDepth, kPerfEventsPerSec,
};

/// Every histogram name, for the same drift test.
inline constexpr const char* kAllHistogramNames[] = {
    kE2eLatencyMs,
    kPerfDispatchSelfUs,
};

}  // namespace tracemod::sim::metric
