// The two durability contracts of the write plane (DESIGN.md section 15),
// built on FileSink:
//
//   Atomic replace (AtomicFileWriter) -- for artifacts whose readers need
//   a complete file or nothing: TMST status snapshots, final JSON
//   reports, distilled replay traces, collected trace files.  The
//   sequence is write tmp -> fdatasync(tmp) -> rename(tmp, target) ->
//   fsync(parent dir).  A crash at any syscall leaves either the previous
//   complete artifact or the new complete artifact at the target path,
//   never a mix, and the rename is refused after a failed fsync (renaming
//   un-synced bytes would publish data that power loss can still
//   un-write).  Tmp names are pid/seq-unique so concurrent runs
//   publishing to one PREFIX never collide, and stale tmps from killed
//   writers are swept on open (dead-pid check).
//
//   Append journal (AppendJournalWriter) -- for artifacts whose readers
//   tolerate a torn tail: TMSJ sweep journals, TMDJ distillation
//   checkpoints.  Frames append with periodic fdatasync; a failed or
//   short append is truncated back to the last committed frame boundary
//   (best-effort), so a failed append is never visible as a committed
//   frame, and the writer degrades to closed instead of lying.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "sim/io/file_sink.hpp"

namespace tracemod::sim::io {

/// Write-tmp-then-rename writer with full durability barriers.
class AtomicFileWriter {
 public:
  /// plan == nullptr consults the ambient plan (fault_plan.hpp).
  explicit AtomicFileWriter(std::string path, FaultPlan* plan = nullptr);
  ~AtomicFileWriter();  ///< aborts (unlinks the tmp) if never committed

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Sweeps stale tmps for the target, then opens a fresh pid/seq-unique
  /// tmp file next to it.
  IoResult open();

  IoResult write(const void* data, std::size_t size);
  IoResult write(std::string_view s) { return write(s.data(), s.size()); }

  /// fdatasync(tmp) -> close -> rename over the target -> fsync(dir).
  /// On any failure the tmp is unlinked (best-effort) and the target is
  /// untouched.
  IoResult commit();

  /// Unlinks the tmp; the target is untouched.  Idempotent.
  void abort();

  const std::string& target_path() const { return path_; }
  const std::string& tmp_path() const { return tmp_path_; }

  /// Removes `<target>.tmp.<pid>.<seq>` leftovers whose pid is no longer
  /// alive (and the fixed-name `<target>.tmp` a pre-PR-10 writer used).
  /// Returns how many files were removed.
  static std::size_t sweep_stale_tmp(const std::string& target_path);

 private:
  std::string path_;
  std::string tmp_path_;
  FaultPlan* plan_;
  FileSink sink_;
  bool open_ = false;
  bool committed_ = false;
};

/// Convenience: atomically replace `path` with `content`.
IoResult write_file_atomic(const std::string& path, std::string_view content,
                           FaultPlan* plan = nullptr);

/// Driver convenience for final artifacts (the fail-loudly plane): atomic
/// replace; on failure prints the durable-plane diagnosis to stderr and
/// returns false so the caller can exit with the I/O failure code.
bool write_artifact_or_complain(const std::string& path,
                                std::string_view content,
                                FaultPlan* plan = nullptr);

/// Framed append journal with tail-safe failure handling.
class AppendJournalWriter {
 public:
  struct Options {
    /// fdatasync after every Nth append (0 = never; close always syncs).
    std::uint32_t sync_every_frames = 16;
    FaultPlan* plan = nullptr;  ///< nullptr consults the ambient plan
  };

  AppendJournalWriter() = default;

  /// Truncates and writes `header`, which is synced before success so a
  /// resume never sees a header-less journal claiming frames.
  IoResult open_fresh(const std::string& path, std::string_view header,
                      Options options);
  IoResult open_fresh(const std::string& path, std::string_view header) {
    return open_fresh(path, header, Options());
  }

  /// Opens an existing journal positioned at its end (resume-append).
  IoResult open_existing(const std::string& path, Options options);
  IoResult open_existing(const std::string& path) {
    return open_existing(path, Options());
  }

  bool is_open() const { return open_; }

  /// True once any operation failed; the writer is closed and every
  /// further append is a cheap no-op failure (the producing run keeps
  /// computing -- journaling degrades, never aborts).
  bool degraded() const { return degraded_; }
  const IoError& last_error() const { return last_error_; }

  /// Appends one complete frame.  On failure, truncates back to the last
  /// committed frame boundary (best-effort) and degrades.
  IoResult append(std::string_view frame);

  /// Explicit fdatasync (phase boundaries).
  IoResult sync();

  /// Final sync + close.
  IoResult close();

  /// Bytes known to form complete frames on disk.
  std::uint64_t committed_bytes() const { return committed_; }

 private:
  IoResult degrade(IoResult r);

  FileSink sink_;
  Options options_;
  bool open_ = false;
  bool degraded_ = false;
  IoError last_error_;
  std::uint64_t committed_ = 0;
  std::uint32_t appends_since_sync_ = 0;
};

}  // namespace tracemod::sim::io
