#include "sim/io/file_sink.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <vector>

#include "sim/metric_names.hpp"
#include "sim/sim_context.hpp"

#if defined(_WIN32)
#include <fcntl.h>
#include <io.h>
#include <sys/stat.h>
#else
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>
#endif

namespace tracemod::sim::io {

// --- errors and counters ----------------------------------------------------

std::string IoError::describe() const {
  std::string out = std::string(to_string(op)) + " failed on " + path + ": ";
  out += err != 0 ? std::strerror(err) : "unknown error";
  if (!detail.empty()) out += " (" + detail + ")";
  return out;
}

IoResult IoResult::failure(IoOp op, int err, std::string path,
                           std::string detail) {
  IoResult r;
  r.ok = false;
  r.error = IoError{op, err, std::move(path), std::move(detail)};
  return r;
}

IoCounters& io_counters() {
  static IoCounters counters;
  return counters;
}

namespace {

std::mutex g_notes_mu;
std::vector<std::string>& notes_locked() {
  static std::vector<std::string> notes;
  return notes;
}

void count_failure(const IoResult& r) {
  if (r.ok) return;
  if (r.error.op == IoOp::kFsync) {
    io_counters().fsync_failures.fetch_add(1, std::memory_order_relaxed);
  } else {
    io_counters().write_errors.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

void note_degraded_plane(const std::string& plane, const IoError& error) {
  io_counters().degraded_planes.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_notes_mu);
  notes_locked().push_back(plane + " plane degraded: " + error.describe());
}

std::vector<std::string> degraded_plane_notes() {
  std::lock_guard<std::mutex> lock(g_notes_mu);
  return notes_locked();
}

void export_io_metrics(MetricsRegistry& metrics) {
  const IoCounters& c = io_counters();
  metrics.counter(metric::kIoWriteErrors) =
      c.write_errors.load(std::memory_order_relaxed);
  metrics.counter(metric::kIoFsyncFailures) =
      c.fsync_failures.load(std::memory_order_relaxed);
  metrics.counter(metric::kIoDegradedPlanes) =
      c.degraded_planes.load(std::memory_order_relaxed);
  metrics.counter(metric::kStatusPublishFailed) =
      c.status_publish_failures.load(std::memory_order_relaxed);
}

// --- portability shims ------------------------------------------------------

namespace {

#if defined(_WIN32)

int sys_open(const char* path, bool append) {
  int fd = -1;
  ::_sopen_s(&fd, path,
             _O_WRONLY | _O_CREAT | _O_BINARY |
                 (append ? _O_APPEND : _O_TRUNC),
             _SH_DENYNO, _S_IREAD | _S_IWRITE);
  return fd;
}
long sys_write(int fd, const void* data, std::size_t size) {
  return ::_write(fd, data, static_cast<unsigned>(size));
}
long sys_pwrite(int fd, const void* data, std::size_t size,
                std::uint64_t offset) {
  if (::_lseeki64(fd, static_cast<long long>(offset), SEEK_SET) < 0) {
    return -1;
  }
  return ::_write(fd, data, static_cast<unsigned>(size));
}
int sys_fdatasync(int fd) { return ::_commit(fd); }
int sys_ftruncate(int fd, std::uint64_t size) {
  return ::_chsize_s(fd, static_cast<long long>(size));
}
int sys_close(int fd) { return ::_close(fd); }
std::int64_t sys_end_offset(int fd) {
  return ::_lseeki64(fd, 0, SEEK_END);
}

#else

int sys_open(const char* path, bool append) {
  return ::open(path, O_WRONLY | O_CREAT | (append ? 0 : O_TRUNC), 0644);
}
long sys_write(int fd, const void* data, std::size_t size) {
  return static_cast<long>(::write(fd, data, size));
}
long sys_pwrite(int fd, const void* data, std::size_t size,
                std::uint64_t offset) {
  return static_cast<long>(
      ::pwrite(fd, data, size, static_cast<off_t>(offset)));
}
int sys_fdatasync(int fd) {
#if defined(__APPLE__)
  return ::fsync(fd);
#else
  return ::fdatasync(fd);
#endif
}
int sys_ftruncate(int fd, std::uint64_t size) {
  return ::ftruncate(fd, static_cast<off_t>(size));
}
int sys_close(int fd) { return ::close(fd); }
std::int64_t sys_end_offset(int fd) {
  return static_cast<std::int64_t>(::lseek(fd, 0, SEEK_END));
}

#endif

}  // namespace

// --- FileSink ---------------------------------------------------------------

FileSink::~FileSink() {
  if (fd_ >= 0) sys_close(fd_);
}

IoResult FileSink::open(const std::string& path, Mode mode, FaultPlan* plan) {
  if (fd_ >= 0) {
    sys_close(fd_);
    fd_ = -1;
  }
  path_ = path;
  plan_ = resolve_plan(plan);
  offset_ = 0;

  if (plan_ != nullptr) {
    const FaultDecision d = plan_->next(IoOp::kOpen, path, 0);
    if (d.fault() && d.kind != FaultKind::kEintr) {
      auto r = IoResult::failure(IoOp::kOpen, d.err, path,
                                 std::string("injected ") +
                                     to_string(d.kind));
      count_failure(r);
      return r;
    }
  }
  fd_ = sys_open(path.c_str(), mode == Mode::kAppend);
  if (fd_ < 0) {
    auto r = IoResult::failure(IoOp::kOpen, errno, path);
    count_failure(r);
    return r;
  }
  if (mode == Mode::kAppend) {
    const std::int64_t end = sys_end_offset(fd_);
    if (end < 0) {
      auto r = IoResult::failure(IoOp::kOpen, errno, path, "seek to end");
      count_failure(r);
      sys_close(fd_);
      fd_ = -1;
      return r;
    }
    offset_ = static_cast<std::uint64_t>(end);
  }
  return IoResult::success();
}

IoResult FileSink::write(const void* data, std::size_t size) {
  if (fd_ < 0) {
    return IoResult::failure(IoOp::kWrite, EBADF, path_, "sink not open");
  }
  const char* p = static_cast<const char*>(data);
  std::size_t done = 0;
  while (done < size) {
    std::size_t chunk = size - done;
    if (plan_ != nullptr) {
      const FaultDecision d = plan_->next(IoOp::kWrite, path_, chunk);
      switch (d.kind) {
        case FaultKind::kNone:
          break;
        case FaultKind::kEintr:
          continue;  // interrupted before transfer; retry is a fresh op
        case FaultKind::kShortWrite:
        case FaultKind::kCrash: {
          // A prefix lands for real (the bytes a torn write leaves on
          // disk), then the operation reports failure.
          std::size_t landed = 0;
          while (landed < d.write_len) {
            const long n =
                sys_write(fd_, p + done + landed, d.write_len - landed);
            if (n <= 0) break;
            landed += static_cast<std::size_t>(n);
          }
          done += landed;
          offset_ += landed;
          auto r = IoResult::failure(
              IoOp::kWrite, d.err, path_,
              "short write: " + std::to_string(done) + " of " +
                  std::to_string(size) + " bytes landed (injected " +
                  to_string(d.kind) + ")");
          count_failure(r);
          return r;
        }
        default: {
          auto r = IoResult::failure(IoOp::kWrite, d.err, path_,
                                     "short write: " + std::to_string(done) +
                                         " of " + std::to_string(size) +
                                         " bytes landed (injected " +
                                         to_string(d.kind) + ")");
          count_failure(r);
          return r;
        }
      }
    }
    const long n = sys_write(fd_, p + done, chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      auto r = IoResult::failure(IoOp::kWrite, errno, path_,
                                 "short write: " + std::to_string(done) +
                                     " of " + std::to_string(size) +
                                     " bytes landed");
      count_failure(r);
      return r;
    }
    done += static_cast<std::size_t>(n);
    offset_ += static_cast<std::size_t>(n);
  }
  return IoResult::success();
}

IoResult FileSink::write_at(std::uint64_t offset, const void* data,
                            std::size_t size) {
  if (fd_ < 0) {
    return IoResult::failure(IoOp::kWrite, EBADF, path_, "sink not open");
  }
  const char* p = static_cast<const char*>(data);
  std::size_t done = 0;
  while (done < size) {
    if (plan_ != nullptr) {
      const FaultDecision d = plan_->next(IoOp::kWrite, path_, size - done);
      if (d.kind == FaultKind::kEintr) continue;
      if (d.fault()) {
        std::size_t landed = 0;
        while (landed < d.write_len) {
          const long n = sys_pwrite(fd_, p + done + landed,
                                    d.write_len - landed,
                                    offset + done + landed);
          if (n <= 0) break;
          landed += static_cast<std::size_t>(n);
        }
        auto r = IoResult::failure(IoOp::kWrite, d.err, path_,
                                   std::string("positional write (injected ") +
                                       to_string(d.kind) + ")");
        count_failure(r);
        return r;
      }
    }
    const long n = sys_pwrite(fd_, p + done, size - done, offset + done);
    if (n < 0) {
      if (errno == EINTR) continue;
      auto r = IoResult::failure(IoOp::kWrite, errno, path_,
                                 "positional write");
      count_failure(r);
      return r;
    }
    done += static_cast<std::size_t>(n);
  }
  return IoResult::success();
}

IoResult FileSink::datasync() {
  if (fd_ < 0) {
    return IoResult::failure(IoOp::kFsync, EBADF, path_, "sink not open");
  }
  if (plan_ != nullptr) {
    const FaultDecision d = plan_->next(IoOp::kFsync, path_, 0);
    if (d.fault() && d.kind != FaultKind::kEintr) {
      auto r = IoResult::failure(IoOp::kFsync, d.err, path_,
                                 std::string("injected ") +
                                     to_string(d.kind));
      count_failure(r);
      return r;
    }
  }
  if (sys_fdatasync(fd_) != 0) {
    auto r = IoResult::failure(IoOp::kFsync, errno, path_);
    count_failure(r);
    return r;
  }
  return IoResult::success();
}

IoResult FileSink::truncate_to(std::uint64_t size) {
  if (fd_ < 0) {
    return IoResult::failure(IoOp::kTruncate, EBADF, path_, "sink not open");
  }
  if (plan_ != nullptr) {
    const FaultDecision d = plan_->next(IoOp::kTruncate, path_, 0);
    if (d.fault() && d.kind != FaultKind::kEintr) {
      auto r = IoResult::failure(IoOp::kTruncate, d.err, path_,
                                 std::string("injected ") +
                                     to_string(d.kind));
      count_failure(r);
      return r;
    }
  }
  if (sys_ftruncate(fd_, size) != 0) {
    auto r = IoResult::failure(IoOp::kTruncate, errno, path_);
    count_failure(r);
    return r;
  }
  if (offset_ > size) offset_ = size;
  return IoResult::success();
}

IoResult FileSink::close() {
  if (fd_ < 0) return IoResult::success();
  if (plan_ != nullptr) {
    const FaultDecision d = plan_->next(IoOp::kClose, path_, 0);
    if (d.kind == FaultKind::kCrash || d.kind == FaultKind::kCrashed) {
      // The process "died" with the descriptor open; the kernel closes it
      // for real, but nothing after this call may assume success.
      sys_close(fd_);
      fd_ = -1;
      auto r = IoResult::failure(IoOp::kClose, d.err, path_,
                                 std::string("injected ") +
                                     to_string(d.kind));
      count_failure(r);
      return r;
    }
  }
  const int rc = sys_close(fd_);
  fd_ = -1;
  if (rc != 0) {
    auto r = IoResult::failure(IoOp::kClose, errno, path_);
    count_failure(r);
    return r;
  }
  return IoResult::success();
}

// --- path operations --------------------------------------------------------

IoResult rename_path(const std::string& from, const std::string& to,
                     FaultPlan* plan) {
  FaultPlan* p = resolve_plan(plan);
  if (p != nullptr) {
    const FaultDecision d = p->next(IoOp::kRename, to, 0);
    if (d.fault() && d.kind != FaultKind::kEintr) {
      auto r = IoResult::failure(IoOp::kRename, d.err, to,
                                 std::string("injected ") +
                                     to_string(d.kind) + " renaming " + from);
      count_failure(r);
      return r;
    }
  }
  if (std::rename(from.c_str(), to.c_str()) != 0) {
    auto r = IoResult::failure(IoOp::kRename, errno, to, "renaming " + from);
    count_failure(r);
    return r;
  }
  return IoResult::success();
}

IoResult remove_path(const std::string& path, FaultPlan* plan) {
  FaultPlan* p = resolve_plan(plan);
  if (p != nullptr) {
    const FaultDecision d = p->next(IoOp::kUnlink, path, 0);
    if (d.fault() && d.kind != FaultKind::kEintr) {
      return IoResult::failure(IoOp::kUnlink, d.err, path,
                               std::string("injected ") + to_string(d.kind));
    }
  }
  if (std::remove(path.c_str()) != 0 && errno != ENOENT) {
    return IoResult::failure(IoOp::kUnlink, errno, path);
  }
  return IoResult::success();
}

IoResult sync_parent_dir(const std::string& path, FaultPlan* plan) {
#if defined(_WIN32)
  (void)path;
  (void)plan;
  return IoResult::success();  // no directory fds on Windows
#else
  std::string dir = path;
  const std::size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? std::string(".") : dir.substr(0, slash);
  if (dir.empty()) dir = "/";

  FaultPlan* p = resolve_plan(plan);
  if (p != nullptr) {
    const FaultDecision d = p->next(IoOp::kFsync, dir, 0);
    if (d.fault() && d.kind != FaultKind::kEintr) {
      auto r = IoResult::failure(IoOp::kFsync, d.err, dir,
                                 std::string("injected ") +
                                     to_string(d.kind) + " (directory)");
      count_failure(r);
      return r;
    }
  }
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0) {
    auto r = IoResult::failure(IoOp::kFsync, errno, dir, "open directory");
    count_failure(r);
    return r;
  }
  const int rc = ::fsync(fd);
  const int err = errno;
  ::close(fd);
  if (rc != 0) {
    auto r = IoResult::failure(IoOp::kFsync, err, dir, "directory fsync");
    count_failure(r);
    return r;
  }
  return IoResult::success();
#endif
}

}  // namespace tracemod::sim::io
