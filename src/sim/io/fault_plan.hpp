// Deterministic syscall-boundary fault injection for the durable-write
// plane (DESIGN.md section 15).
//
// PR 2's trace::FaultInjector damages bytes that were already written;
// FaultPlan damages the *writing* itself.  Every artifact producer in the
// repo funnels its open/write/fsync/rename/close syscalls through
// sim::io::FileSink (file_sink.hpp), and a FileSink consults a FaultPlan
// before each syscall.  The plan deals faults from a seeded schedule --
// short writes, ENOSPC, EIO, EINTR, fsync failure, rename failure, and
// crash-point truncation -- so an ENOSPC-mid-sweep or power-loss-mid-
// checkpoint run replays bit-identically from its seed, the same
// discipline the read side has had since PR 2.
//
// Fault model:
//   - kShortWrite: the write lands a seeded strict prefix of its bytes and
//     reports failure (partial sector / interrupted buffer flush).
//   - kEnospc: after a byte budget is exhausted, every further write on a
//     matched path fails ENOSPC (disk filled mid-run).
//   - kEio / kFsyncFail / kRenameFail: the scheduled operation fails EIO
//     without side effects (media error; fsync failure additionally means
//     previously written bytes may not be durable, which is why the
//     durable writers never rename after a failed fsync).
//   - kEintr: the operation is interrupted once; a correct caller retries
//     (FileSink does) and the retry succeeds.  An EINTR schedule therefore
//     changes nothing observable -- that is the assertion.
//   - kCrash: the scheduled operation applies a seeded prefix of its side
//     effects (a torn write; a suppressed fsync/rename) and then the plan
//     is dead: every later operation fails without touching the
//     filesystem, leaving exactly the bytes a SIGKILL or power loss at
//     that syscall would leave.  Readers are then pointed at the wreckage.
//
// Scoping: `match` restricts the plan to paths containing a substring
// (".journal", ".tmdj", ".status"), so a CI drill can starve one artifact
// plane while the rest of the run writes normally.  Only matched
// operations advance the op counter, which keeps schedules stable when
// unrelated artifacts come and go.
//
// The ambient plan: `TRACEMOD_IO_FAULTS=<spec>` installs a process-wide
// plan that every FileSink constructed without an explicit plan consults
// (nullptr == ambient, and ambient is null unless the variable is set, so
// production runs add one pointer load).  Spec grammar, semicolon- or
// comma-separated `key=value`:
//
//   seed=N                 schedule RNG seed (default 1)
//   match=SUBSTR           only paths containing SUBSTR are eligible
//   short-write-chance=P   per-write Bernoulli short write
//   eintr-chance=P         per-op Bernoulli single EINTR
//   enospc-after-bytes=N   matched writes fail ENOSPC after N total bytes
//   eio-at-op=N            matched op #N (1-based) fails EIO
//   fsync-fail-at=N        the Nth matched fsync/fdatasync fails
//   rename-fail-at=N       the Nth matched rename fails
//   crash-at-op=N          matched op #N is the crash point (see above)
//   log=PATH               dump the injected-fault log to PATH at exit
//
// Same seed, same spec, same (serial) workload => byte-identical fault
// log; the io-chaos CI job diffs two runs to pin that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sim/random.hpp"

namespace tracemod::sim::io {

/// The syscall vocabulary of the write plane.
enum class IoOp : std::uint8_t {
  kOpen,
  kWrite,
  kFsync,   ///< fsync and fdatasync (directory fsyncs included)
  kRename,
  kTruncate,
  kClose,
  kUnlink,
};

const char* to_string(IoOp op);

enum class FaultKind : std::uint8_t {
  kNone,
  kShortWrite,
  kEnospc,
  kEio,
  kEintr,
  kFsyncFail,
  kRenameFail,
  kCrash,    ///< this op is the crash point (partial side effects)
  kCrashed,  ///< plan already crashed; op suppressed entirely
};

const char* to_string(FaultKind kind);

struct FaultPlanConfig {
  std::uint64_t seed = 1;
  std::string match;  ///< path-substring scope; empty matches everything
  double short_write_chance = 0.0;
  double eintr_chance = 0.0;
  std::uint64_t enospc_after_bytes = 0;  ///< 0 = off
  std::uint64_t eio_at_op = 0;           ///< 0 = off (1-based op index)
  std::uint64_t fsync_fail_at = 0;       ///< 0 = off (1-based fsync count)
  std::uint64_t rename_fail_at = 0;      ///< 0 = off (1-based rename count)
  std::uint64_t crash_at_op = 0;         ///< 0 = off (1-based op index)
  std::string log_path;  ///< ambient plan dumps its log here at exit

  bool any_fault() const {
    return short_write_chance > 0.0 || eintr_chance > 0.0 ||
           enospc_after_bytes > 0 || eio_at_op > 0 || fsync_fail_at > 0 ||
           rename_fail_at > 0 || crash_at_op > 0;
  }

  /// Parses the spec grammar above.  Returns nullopt (with a diagnosis in
  /// *error when non-null) on an unknown key or malformed value -- an
  /// ambient spec typo must fail loudly, not silently inject nothing.
  static std::optional<FaultPlanConfig> parse(const std::string& spec,
                                              std::string* error = nullptr);

  /// Round-trips back to a canonical spec string (tests, logs).
  std::string to_spec() const;
};

/// What the plan decided for one operation.
struct FaultDecision {
  FaultKind kind = FaultKind::kNone;
  int err = 0;                 ///< errno to surface (0 for kNone/kEintr)
  std::size_t write_len = 0;   ///< kShortWrite/kCrash: bytes that land

  bool fault() const { return kind != FaultKind::kNone; }
};

/// One log entry: what was injected, where, at which op index.
struct InjectedFault {
  std::uint64_t op_index = 0;
  IoOp op = IoOp::kWrite;
  FaultKind kind = FaultKind::kNone;
  std::string path;
};

/// Thread-safe deterministic fault schedule.  One instance per drill (or
/// per process via the ambient plan); FileSinks share it.
class FaultPlan {
 public:
  explicit FaultPlan(FaultPlanConfig cfg)
      : cfg_(std::move(cfg)), rng_(cfg_.seed) {}

  /// Consults the schedule for one operation.  `bytes` is the intended
  /// write length (0 for non-writes).  Unmatched paths always return
  /// kNone and do not advance the op counter.
  FaultDecision next(IoOp op, const std::string& path, std::size_t bytes);

  /// True once a kCrash fault fired; every subsequent matched op fails.
  bool crashed() const;

  std::uint64_t ops_seen() const;
  const FaultPlanConfig& config() const { return cfg_; }

  /// Injected faults so far (kNone decisions are not logged).
  std::vector<InjectedFault> log() const;

  /// One line per injected fault: "op#7 write enospc path".
  void write_log(std::ostream& out) const;

 private:
  mutable std::mutex mu_;
  FaultPlanConfig cfg_;
  Rng rng_;
  std::uint64_t ops_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t fsyncs_ = 0;
  std::uint64_t renames_ = 0;
  bool crashed_ = false;
  std::vector<InjectedFault> log_;
};

/// The process-wide plan parsed from TRACEMOD_IO_FAULTS, or nullptr when
/// the variable is unset.  A malformed spec aborts the process with a
/// diagnosis on stderr (a chaos drill whose faults silently do not inject
/// is worse than no drill).  If the spec names log=PATH, the log is
/// written there at normal process exit.
FaultPlan* ambient_fault_plan();

/// Resolves an explicit plan pointer: non-null passes through, null falls
/// back to the ambient plan.  Every sim/io entry point routes through
/// this, so tests inject locally and CI drills inject via environment.
inline FaultPlan* resolve_plan(FaultPlan* plan) {
  return plan != nullptr ? plan : ambient_fault_plan();
}

}  // namespace tracemod::sim::io
