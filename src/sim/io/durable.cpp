#include "sim/io/durable.hpp"

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <limits>
#include <system_error>

#ifdef _WIN32
#include <process.h>
#else
#include <signal.h>
#include <unistd.h>
#endif

namespace tracemod::sim::io {

namespace {

std::uint64_t current_pid() {
#ifdef _WIN32
  return static_cast<std::uint64_t>(_getpid());
#else
  return static_cast<std::uint64_t>(::getpid());
#endif
}

// "Alive" errs on the side of keeping files: only a definitive ESRCH
// makes a tmp reclaimable, so a sweeper racing a live writer (or lacking
// permission to signal it) leaves the tmp alone.
bool pid_alive(std::uint64_t pid) {
#ifdef _WIN32
  (void)pid;
  return true;
#else
  if (pid == 0 || pid > static_cast<std::uint64_t>(
                            std::numeric_limits<pid_t>::max())) {
    return true;
  }
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  return errno != ESRCH;
#endif
}

bool parse_tmp_pid(const std::string& name, const std::string& prefix,
                   std::uint64_t* pid) {
  // name == prefix + "<pid>.<seq>", both fields non-empty digit runs.
  if (name.size() <= prefix.size() ||
      name.compare(0, prefix.size(), prefix) != 0) {
    return false;
  }
  std::uint64_t value = 0;
  std::size_t i = prefix.size();
  std::size_t digits = 0;
  for (; i < name.size() && name[i] >= '0' && name[i] <= '9'; ++i, ++digits) {
    value = value * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  if (digits == 0 || i >= name.size() || name[i] != '.') return false;
  for (++i, digits = 0; i < name.size(); ++i, ++digits) {
    if (name[i] < '0' || name[i] > '9') return false;
  }
  if (digits == 0) return false;
  *pid = value;
  return true;
}

std::string unique_tmp_path(const std::string& target) {
  static std::atomic<std::uint64_t> seq{0};
  return target + ".tmp." + std::to_string(current_pid()) + "." +
         std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
}

}  // namespace

// --- AtomicFileWriter -------------------------------------------------------

AtomicFileWriter::AtomicFileWriter(std::string path, FaultPlan* plan)
    : path_(std::move(path)), plan_(resolve_plan(plan)) {}

AtomicFileWriter::~AtomicFileWriter() {
  if (open_ && !committed_) abort();
}

IoResult AtomicFileWriter::open() {
  sweep_stale_tmp(path_);
  tmp_path_ = unique_tmp_path(path_);
  IoResult r = sink_.open(tmp_path_, FileSink::Mode::kTruncate, plan_);
  open_ = r.ok;
  return r;
}

IoResult AtomicFileWriter::write(const void* data, std::size_t size) {
  if (!open_) {
    return IoResult::failure(IoOp::kWrite, EBADF, tmp_path_,
                             "writer is not open");
  }
  return sink_.write(data, size);
}

IoResult AtomicFileWriter::commit() {
  if (!open_) {
    return IoResult::failure(IoOp::kRename, EBADF, tmp_path_,
                             "writer is not open");
  }
  // Renaming bytes that never reached stable storage would publish an
  // artifact power loss can still un-write, so a failed sync drops the
  // snapshot and leaves the previous artifact in place.
  IoResult r = sink_.datasync();
  if (r.ok) r = sink_.close();
  if (r.ok) r = rename_path(tmp_path_, path_, plan_);
  if (r.ok) r = sync_parent_dir(path_, plan_);
  if (!r.ok) {
    abort();
    return r;
  }
  open_ = false;
  committed_ = true;
  return r;
}

void AtomicFileWriter::abort() {
  if (!open_) return;
  open_ = false;
  if (sink_.is_open()) (void)sink_.close();
  // A crashed plan means the process "died" here: the tmp stays on disk
  // as real SIGKILL wreckage and a later writer's sweep reclaims it.
  if (plan_ != nullptr && plan_->crashed()) return;
  (void)remove_path(tmp_path_, plan_);
}

std::size_t AtomicFileWriter::sweep_stale_tmp(const std::string& target_path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path target(target_path);
  fs::path dir = target.parent_path();
  if (dir.empty()) dir = ".";
  const std::string prefix = target.filename().string() + ".tmp.";
  const std::uint64_t self = current_pid();
  std::size_t removed = 0;

  // The fixed name the pre-PR-10 status writer used; no owner encoded, so
  // any leftover is stale by definition once a new writer runs.
  const fs::path legacy = fs::path(target_path + ".tmp");
  if (fs::remove(legacy, ec)) ++removed;

  fs::directory_iterator it(dir, fs::directory_options::skip_permission_denied,
                            ec);
  if (ec) return removed;
  for (const fs::directory_entry& entry : it) {
    std::uint64_t pid = 0;
    if (!parse_tmp_pid(entry.path().filename().string(), prefix, &pid)) {
      continue;
    }
    if (pid == self || pid_alive(pid)) continue;
    if (fs::remove(entry.path(), ec)) ++removed;
  }
  return removed;
}

IoResult write_file_atomic(const std::string& path, std::string_view content,
                           FaultPlan* plan) {
  AtomicFileWriter writer(path, plan);
  IoResult r = writer.open();
  if (r.ok) r = writer.write(content);
  if (r.ok) return writer.commit();
  writer.abort();
  return r;
}

bool write_artifact_or_complain(const std::string& path,
                                std::string_view content, FaultPlan* plan) {
  const IoResult r = write_file_atomic(path, content, plan);
  if (!r.ok) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                 r.error.describe().c_str());
    return false;
  }
  return true;
}

// --- AppendJournalWriter ----------------------------------------------------

IoResult AppendJournalWriter::open_fresh(const std::string& path,
                                         std::string_view header,
                                         Options options) {
  options_ = options;
  options_.plan = resolve_plan(options.plan);
  IoResult r = sink_.open(path, FileSink::Mode::kTruncate, options_.plan);
  if (r.ok && !header.empty()) r = sink_.write(header);
  if (r.ok) r = sink_.datasync();
  if (!r.ok) return degrade(r);
  open_ = true;
  committed_ = header.size();
  appends_since_sync_ = 0;
  return r;
}

IoResult AppendJournalWriter::open_existing(const std::string& path,
                                            Options options) {
  options_ = options;
  options_.plan = resolve_plan(options.plan);
  IoResult r = sink_.open(path, FileSink::Mode::kAppend, options_.plan);
  if (!r.ok) return degrade(r);
  open_ = true;
  committed_ = sink_.offset();
  appends_since_sync_ = 0;
  return r;
}

IoResult AppendJournalWriter::append(std::string_view frame) {
  if (!open_) {
    return IoResult::failure(IoOp::kWrite, EBADF, sink_.path(),
                             degraded_ ? "journal plane is degraded"
                                       : "journal is not open");
  }
  IoResult r = sink_.write(frame);
  if (!r.ok) return degrade(r);
  committed_ += frame.size();
  if (options_.sync_every_frames != 0 &&
      ++appends_since_sync_ >= options_.sync_every_frames) {
    appends_since_sync_ = 0;
    r = sink_.datasync();
    if (!r.ok) return degrade(r);
  }
  return r;
}

IoResult AppendJournalWriter::sync() {
  if (!open_) {
    return IoResult::failure(IoOp::kFsync, EBADF, sink_.path(),
                             "journal is not open");
  }
  appends_since_sync_ = 0;
  IoResult r = sink_.datasync();
  if (!r.ok) return degrade(r);
  return r;
}

IoResult AppendJournalWriter::close() {
  if (!open_) return IoResult::success();
  IoResult r = sink_.datasync();
  if (r.ok) r = sink_.close();
  if (!r.ok) return degrade(r);
  open_ = false;
  return r;
}

IoResult AppendJournalWriter::degrade(IoResult r) {
  last_error_ = r.error;
  degraded_ = true;
  open_ = false;
  if (sink_.is_open()) {
    // committed_ was advanced only for fully-landed frames, so truncating
    // back drops at most a torn tail, never an acknowledged frame.
    (void)sink_.truncate_to(committed_);
    (void)sink_.close();
  }
  return r;
}

}  // namespace tracemod::sim::io
