#include "sim/io/fault_plan.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>

namespace tracemod::sim::io {

const char* to_string(IoOp op) {
  switch (op) {
    case IoOp::kOpen: return "open";
    case IoOp::kWrite: return "write";
    case IoOp::kFsync: return "fsync";
    case IoOp::kRename: return "rename";
    case IoOp::kTruncate: return "truncate";
    case IoOp::kClose: return "close";
    case IoOp::kUnlink: return "unlink";
  }
  return "?";
}

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kShortWrite: return "short-write";
    case FaultKind::kEnospc: return "enospc";
    case FaultKind::kEio: return "eio";
    case FaultKind::kEintr: return "eintr";
    case FaultKind::kFsyncFail: return "fsync-fail";
    case FaultKind::kRenameFail: return "rename-fail";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kCrashed: return "crashed";
  }
  return "?";
}

// --- spec parsing -----------------------------------------------------------

namespace {

bool parse_u64(const std::string& v, std::uint64_t* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const unsigned long long n = std::strtoull(v.c_str(), &end, 10);
  if (errno != 0 || end != v.c_str() + v.size()) return false;
  *out = static_cast<std::uint64_t>(n);
  return true;
}

bool parse_chance(const std::string& v, double* out) {
  if (v.empty()) return false;
  char* end = nullptr;
  errno = 0;
  const double d = std::strtod(v.c_str(), &end);
  if (errno != 0 || end != v.c_str() + v.size()) return false;
  if (!(d >= 0.0 && d <= 1.0)) return false;
  *out = d;
  return true;
}

}  // namespace

std::optional<FaultPlanConfig> FaultPlanConfig::parse(const std::string& spec,
                                                     std::string* error) {
  FaultPlanConfig cfg;
  auto fail = [&](const std::string& why) -> std::optional<FaultPlanConfig> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t end = spec.find_first_of(";,", pos);
    if (end == std::string::npos) end = spec.size();
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      return fail("fault-plan item without '=': " + item);
    }
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    bool ok = true;
    if (key == "seed") {
      ok = parse_u64(val, &cfg.seed);
    } else if (key == "match") {
      cfg.match = val;
    } else if (key == "short-write-chance") {
      ok = parse_chance(val, &cfg.short_write_chance);
    } else if (key == "eintr-chance") {
      ok = parse_chance(val, &cfg.eintr_chance);
    } else if (key == "enospc-after-bytes") {
      ok = parse_u64(val, &cfg.enospc_after_bytes);
    } else if (key == "eio-at-op") {
      ok = parse_u64(val, &cfg.eio_at_op);
    } else if (key == "fsync-fail-at") {
      ok = parse_u64(val, &cfg.fsync_fail_at);
    } else if (key == "rename-fail-at") {
      ok = parse_u64(val, &cfg.rename_fail_at);
    } else if (key == "crash-at-op") {
      ok = parse_u64(val, &cfg.crash_at_op);
    } else if (key == "log") {
      cfg.log_path = val;
    } else {
      return fail("unknown fault-plan key: " + key);
    }
    if (!ok) return fail("malformed fault-plan value: " + item);
  }
  return cfg;
}

std::string FaultPlanConfig::to_spec() const {
  std::ostringstream out;
  out << "seed=" << seed;
  if (!match.empty()) out << ";match=" << match;
  if (short_write_chance > 0.0) {
    out << ";short-write-chance=" << short_write_chance;
  }
  if (eintr_chance > 0.0) out << ";eintr-chance=" << eintr_chance;
  if (enospc_after_bytes > 0) {
    out << ";enospc-after-bytes=" << enospc_after_bytes;
  }
  if (eio_at_op > 0) out << ";eio-at-op=" << eio_at_op;
  if (fsync_fail_at > 0) out << ";fsync-fail-at=" << fsync_fail_at;
  if (rename_fail_at > 0) out << ";rename-fail-at=" << rename_fail_at;
  if (crash_at_op > 0) out << ";crash-at-op=" << crash_at_op;
  if (!log_path.empty()) out << ";log=" << log_path;
  return out.str();
}

// --- schedule ---------------------------------------------------------------

FaultDecision FaultPlan::next(IoOp op, const std::string& path,
                              std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!cfg_.match.empty() && path.find(cfg_.match) == std::string::npos) {
    return {};
  }
  const std::uint64_t index = ++ops_;
  auto inject = [&](FaultKind kind, int err,
                    std::size_t write_len = 0) -> FaultDecision {
    log_.push_back(InjectedFault{index, op, kind, path});
    return FaultDecision{kind, err, write_len};
  };

  if (crashed_) return inject(FaultKind::kCrashed, ECANCELED);

  if (cfg_.crash_at_op != 0 && index == cfg_.crash_at_op) {
    crashed_ = true;
    // A torn write lands a seeded strict prefix; every other op at the
    // crash point simply never happens.
    std::size_t landed = 0;
    if (op == IoOp::kWrite && bytes > 0) {
      landed = static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(bytes) - 1));
    }
    return inject(FaultKind::kCrash, ECANCELED, landed);
  }
  if (cfg_.eio_at_op != 0 && index == cfg_.eio_at_op) {
    return inject(FaultKind::kEio, EIO);
  }
  if (op == IoOp::kFsync && cfg_.fsync_fail_at != 0 &&
      ++fsyncs_ == cfg_.fsync_fail_at) {
    return inject(FaultKind::kFsyncFail, EIO);
  }
  if (op == IoOp::kRename && cfg_.rename_fail_at != 0 &&
      ++renames_ == cfg_.rename_fail_at) {
    return inject(FaultKind::kRenameFail, EIO);
  }
  // EINTR interrupts before any bytes transfer; the caller's retry is a
  // fresh operation that rolls the schedule again.
  if (cfg_.eintr_chance > 0.0 && rng_.chance(cfg_.eintr_chance)) {
    return inject(FaultKind::kEintr, EINTR);
  }
  if (op == IoOp::kWrite) {
    if (cfg_.enospc_after_bytes > 0 &&
        bytes_written_ + bytes > cfg_.enospc_after_bytes) {
      return inject(FaultKind::kEnospc, ENOSPC);
    }
    if (cfg_.short_write_chance > 0.0 && bytes > 1 &&
        rng_.chance(cfg_.short_write_chance)) {
      const std::size_t landed = static_cast<std::size_t>(
          rng_.uniform_int(1, static_cast<std::int64_t>(bytes) - 1));
      bytes_written_ += landed;
      return inject(FaultKind::kShortWrite, ENOSPC, landed);
    }
    bytes_written_ += bytes;
  }
  return {};
}

bool FaultPlan::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

std::uint64_t FaultPlan::ops_seen() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_;
}

std::vector<InjectedFault> FaultPlan::log() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_;
}

void FaultPlan::write_log(std::ostream& out) const {
  for (const InjectedFault& f : log()) {
    out << "op#" << f.op_index << " " << to_string(f.op) << " "
        << to_string(f.kind) << " " << f.path << "\n";
  }
}

// --- ambient plan -----------------------------------------------------------

namespace {

FaultPlan* g_ambient = nullptr;

void dump_ambient_log() {
  if (g_ambient == nullptr) return;
  const std::string& path = g_ambient->config().log_path;
  if (path.empty()) return;
  // Plain ofstream on purpose: the fault log must never be subject to the
  // plan it describes.
  std::ofstream out(path, std::ios::trunc);
  if (out) g_ambient->write_log(out);
}

FaultPlan* init_ambient() {
  const char* spec = std::getenv("TRACEMOD_IO_FAULTS");
  if (spec == nullptr || *spec == '\0') return nullptr;
  std::string error;
  auto cfg = FaultPlanConfig::parse(spec, &error);
  if (!cfg) {
    std::fprintf(stderr,
                 "fatal: TRACEMOD_IO_FAULTS is malformed (%s); refusing to "
                 "run a drill that injects nothing\n",
                 error.c_str());
    std::abort();
  }
  // Leaked intentionally: sinks may consult the plan during static
  // destruction; the log is flushed by atexit instead.
  g_ambient = new FaultPlan(*cfg);
  if (!cfg->log_path.empty()) std::atexit(dump_ambient_log);
  return g_ambient;
}

}  // namespace

FaultPlan* ambient_fault_plan() {
  static FaultPlan* plan = init_ambient();
  return plan;
}

}  // namespace tracemod::sim::io
