// The syscall boundary of the durable-write plane: every artifact
// producer in the repo (status snapshots, sweep journals, distillation
// checkpoints, trace files, JSON reports) writes through a FileSink
// instead of a bare std::ofstream, for three reasons:
//
//   1. Explicit errors.  A stream badbit is a silent boolean; an IoResult
//     carries the operation, the errno, and the path, so a producer can
//     declare its degradation policy ("drop the snapshot", "stop
//     journaling", "abort with exit 2") instead of discovering damage at
//     read time.
//
//   2. One fault boundary.  Every syscall consults the attached FaultPlan
//     (fault_plan.hpp; nullptr falls back to the process-ambient plan),
//     so ENOSPC/EIO/torn-write/crash drills cover every producer without
//     per-producer hooks.
//
//   3. Real durability.  std::ofstream has no fsync; FileSink exposes
//     datasync() and the free helpers fsync the parent directory after a
//     rename, which is what "the artifact survives power loss" actually
//     requires on POSIX.
//
// Failures are additionally counted in process-global io counters
// (write_errors, fsync_failures, degraded_planes) surfaced through
// sim/metric_names.hpp via export_io_metrics, mirroring the perf plane's
// process-global allocation telemetry.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/io/fault_plan.hpp"

namespace tracemod::sim {
class MetricsRegistry;
}

namespace tracemod::sim::io {

/// One failed operation, with enough identity to diagnose it.
struct IoError {
  IoOp op = IoOp::kWrite;
  int err = 0;  ///< errno (real or injected)
  std::string path;
  std::string detail;  ///< optional context ("short write: 3 of 128 bytes")

  /// "write failed on foo.journal: No space left on device (short write)".
  std::string describe() const;
};

/// Result of one operation; cheap to return and test.
struct [[nodiscard]] IoResult {
  bool ok = true;
  IoError error;

  explicit operator bool() const { return ok; }
  static IoResult success() { return IoResult{}; }
  static IoResult failure(IoOp op, int err, std::string path,
                          std::string detail = {});
};

// --- process-global write-plane telemetry -----------------------------------

struct IoCounters {
  std::atomic<std::uint64_t> write_errors{0};   ///< failed write/open/rename
  std::atomic<std::uint64_t> fsync_failures{0};
  std::atomic<std::uint64_t> degraded_planes{0};  ///< planes that gave up
  std::atomic<std::uint64_t> status_publish_failures{0};
};

IoCounters& io_counters();

/// Marks one artifact plane (journal, checkpoint, ...) permanently
/// degraded and remembers a one-line note for driver warnings.
void note_degraded_plane(const std::string& plane, const IoError& error);

/// Accumulated degradation notes, in occurrence order.
std::vector<std::string> degraded_plane_notes();

/// Publishes io.write_errors / io.fsync_failures / io.degraded_planes /
/// status.publish_failed (sim/metric_names.hpp) onto a registry.
void export_io_metrics(MetricsRegistry& metrics);

// --- the sink ---------------------------------------------------------------

/// A write-only file handle whose every syscall is checked and
/// fault-injectable.  Not thread-safe; writers that share a sink
/// serialize externally (the journal writers hold their own mutex).
class FileSink {
 public:
  enum class Mode {
    kTruncate,  ///< create or truncate
    kAppend,    ///< create if absent, position at end
  };

  FileSink() = default;
  ~FileSink();  ///< closes silently; durable writers close explicitly

  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;

  /// Opens the file.  plan == nullptr consults the ambient plan.
  IoResult open(const std::string& path, Mode mode,
                FaultPlan* plan = nullptr);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Current append offset (bytes successfully written since open, plus
  /// the pre-existing size in kAppend mode).
  std::uint64_t offset() const { return offset_; }

  /// Writes all `size` bytes (EINTR retried, partial writes continued).
  /// On failure the sink stays open and reports how many bytes landed in
  /// error.detail; the caller decides whether to truncate back or die.
  IoResult write(const void* data, std::size_t size);
  IoResult write(std::string_view s) { return write(s.data(), s.size()); }

  /// Positional write (pwrite); does not move the append offset.  Used by
  /// the trace stream writer to patch its header count on finalize.
  IoResult write_at(std::uint64_t offset, const void* data,
                    std::size_t size);

  /// fdatasync: the payload bytes are on stable storage after success.
  IoResult datasync();

  /// ftruncate to `size` (tail-safe journal repair after a failed append).
  IoResult truncate_to(std::uint64_t size);

  IoResult close();

 private:
  int fd_ = -1;
  std::string path_;
  FaultPlan* plan_ = nullptr;
  std::uint64_t offset_ = 0;
};

// --- fault-injectable path operations ---------------------------------------

/// rename(2); atomic within a directory on POSIX.
IoResult rename_path(const std::string& from, const std::string& to,
                     FaultPlan* plan = nullptr);

/// unlink(2); missing files are not an error (idempotent cleanup).
IoResult remove_path(const std::string& path, FaultPlan* plan = nullptr);

/// Opens the parent directory of `path` and fsyncs it, making a preceding
/// rename durable.  A no-op success on platforms without directory fds.
IoResult sync_parent_dir(const std::string& path, FaultPlan* plan = nullptr);

}  // namespace tracemod::sim::io
