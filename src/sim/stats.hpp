// Summary statistics used throughout the experiment harness.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace tracemod::sim {

/// Online mean / sample-standard-deviation accumulator (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample standard deviation (n-1 denominator), as the paper reports.
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch helpers over a vector of samples.
double mean_of(const std::vector<double>& xs);
double stddev_of(const std::vector<double>& xs);
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);
/// p in [0,1]; linear interpolation between order statistics.
double percentile_of(std::vector<double> xs, double p);

/// Fixed-bin histogram; renders as rows of "lo..hi: count  ###".
class Histogram {
 public:
  /// Buckets [lo, hi) split into n bins; out-of-range samples clamp to the
  /// first/last bin so nothing is silently dropped.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// Multi-line ASCII rendering with the given value label.
  std::string render(const std::string& label, std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace tracemod::sim
