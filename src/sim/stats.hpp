// Summary statistics used throughout the experiment harness.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace tracemod::sim {

/// Online mean / sample-standard-deviation accumulator (Welford).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample standard deviation (n-1 denominator), as the paper reports.
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch helpers over a vector of samples.
double mean_of(const std::vector<double>& xs);
double stddev_of(const std::vector<double>& xs);
double min_of(const std::vector<double>& xs);
double max_of(const std::vector<double>& xs);
/// Linear interpolation between order statistics.  p is clamped to [0,1];
/// p=0 and p=1 return the exact minimum and maximum, and an empty input
/// returns 0.
double percentile_of(std::vector<double> xs, double p);

/// Fixed-bin histogram; renders as rows of "lo..hi: count  ###".
class Histogram {
 public:
  /// Buckets [lo, hi) split into n bins; out-of-range samples clamp to the
  /// first/last bin so nothing is silently dropped.  Degenerate shapes are
  /// tolerated rather than asserted: bins == 0 is promoted to one bin, and
  /// lo >= hi collapses to a single bin that absorbs every sample.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  std::size_t total() const { return total_; }
  /// Sum of all added samples (for mean and Prometheus-style exports).
  double sum() const { return sum_; }
  std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
  std::size_t bins() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// Multi-line ASCII rendering with the given value label.
  std::string render(const std::string& label, std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  double sum_ = 0.0;
};

/// A sim-time-sampled channel: (virtual time, value) pairs plus running
/// summary statistics.  Telemetry gauges (delay-queue depth, bottleneck
/// backlog, replay-buffer fill) record through these; samples are appended
/// in simulation order, so exports need no sorting.
class TimeSeries {
 public:
  void sample(TimePoint t, double v) {
    samples_.emplace_back(t, v);
    stats_.add(v);
  }

  const std::vector<std::pair<TimePoint, double>>& samples() const {
    return samples_;
  }
  const RunningStats& stats() const { return stats_; }
  bool empty() const { return samples_.empty(); }
  double last() const { return samples_.empty() ? 0.0 : samples_.back().second; }

 private:
  std::vector<std::pair<TimePoint, double>> samples_;
  RunningStats stats_;
};

}  // namespace tracemod::sim
