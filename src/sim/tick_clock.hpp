// Clock-interrupt granularity model.
//
// The paper's NetBSD hosts could only schedule packet releases on 10 ms
// clock ticks (Section 3.3, "Scheduling Granularity").  TickClock reproduces
// that constraint: a desired release time is rounded to the *nearest* tick,
// and delays shorter than half a tick are not scheduled at all (the packet
// is sent immediately).  Tick resolution is configurable so the ablation
// bench can sweep it; resolution zero means an ideal (continuous) clock.
#pragma once

#include "sim/time.hpp"

namespace tracemod::sim {

class TickClock {
 public:
  /// resolution == 0 models an ideal clock (no quantization).
  explicit TickClock(Duration resolution = milliseconds(10))
      : resolution_(resolution) {}

  Duration resolution() const { return resolution_; }

  /// True if a delay is too short to be scheduled (< half a tick); the
  /// caller should deliver immediately.
  bool below_threshold(Duration delay) const {
    if (resolution_.count() == 0) return delay.count() <= 0;
    return delay < resolution_ / 2;
  }

  /// Rounds an absolute time to the nearest schedulable instant.
  TimePoint quantize(TimePoint t) const {
    if (resolution_.count() == 0) return t;
    const auto res = resolution_.count();
    const auto ticks = (t.time_since_epoch().count() + res / 2) / res;
    return TimePoint{Duration{ticks * res}};
  }

 private:
  Duration resolution_;
};

}  // namespace tracemod::sim
