#include "sim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace tracemod::sim {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double mean_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double min_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.min();
}

double max_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.max();
}

double percentile_of(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  // The extremes must be exact (no interpolation residue): tests and
  // reports rely on p=0 == min and p=1 == max.
  if (p <= 0.0) return xs.front();
  if (p >= 1.0) return xs.back();
  const double idx = p * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins > 0 ? bins : 1, 0) {}

void Histogram::add(double x) {
  const double span = hi_ - lo_;
  std::ptrdiff_t idx = 0;
  if (span > 0.0) {
    const double frac = (x - lo_) / span;
    idx = static_cast<std::ptrdiff_t>(frac * static_cast<double>(counts_.size()));
    idx = std::clamp<std::ptrdiff_t>(
        idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  }
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
  sum_ += x;
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t i) const { return bin_lo(i + 1); }

std::string Histogram::render(const std::string& label,
                              std::size_t width) const {
  std::string out = label + " (" + std::to_string(total_) + " samples)\n";
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                 static_cast<double>(peak) *
                                 static_cast<double>(width));
    std::snprintf(line, sizeof(line), "  [%10.3f, %10.3f) %8zu |", bin_lo(i),
                  bin_hi(i), counts_[i]);
    out += line;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace tracemod::sim
