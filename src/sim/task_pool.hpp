// A minimal fixed-size thread pool for fanning out independent units of
// work: the experiment engine's trial matrix (scenarios/parallel_runner.hpp)
// and the streaming distiller's corpus windows (core/stream_distiller.hpp).
// Tasks must be independent of each other -- no task may block on another.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tracemod::sim {

class TaskPool {
 public:
  /// threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit TaskPool(unsigned threads = 0);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  unsigned thread_count() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Runs every task on the pool and blocks until all complete.  Every
  /// task runs even when siblings throw.  If exactly one task threw, that
  /// exception is rethrown here; if several threw, a combined
  /// std::runtime_error reports the failure count and the first collected
  /// message (collection order, not submission order).  Not reentrant: a
  /// task that calls run_all on its own pool would deadlock waiting for a
  /// worker slot, so a debug assertion rejects calls from worker threads.
  void run_all(std::vector<std::function<void()>> tasks);

 private:
  void worker_main();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> pending_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// out[i] = fn(i), computed on the pool; results land in index order no
/// matter which thread finishes first.
template <typename T>
std::vector<T> parallel_index_map(TaskPool& pool, std::size_t n,
                                  std::function<T(std::size_t)> fn) {
  std::vector<T> out(n);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks.push_back([&out, &fn, i] { out[i] = fn(i); });
  }
  pool.run_all(std::move(tasks));
  return out;
}

}  // namespace tracemod::sim
