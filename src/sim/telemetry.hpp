// The observability subsystem: flight recorder + metrics + exporters.
//
// One Telemetry lives inside each SimContext.  It is disabled by default
// and costs a single predicted branch per hook point when disabled (hook
// sites pre-resolve the handle and guard with `if (!tel.enabled()) ...`),
// so default experiment outputs stay bit-identical with the subsystem
// compiled in.  Enabling it (SimContext's TelemetryConfig constructor arg)
// turns on:
//   - the packet flight recorder (sim/trace_event.hpp): per-packet
//     lifecycle spans across wireless / ethernet / IP / modulation /
//     transport, in virtual time;
//   - richer metrics: named histograms and sim-time-sampled series in the
//     context's MetricsRegistry (delay-queue depth, bottleneck backlog,
//     replay-buffer fill, end-to-end latency);
//   - the EventLoop profiler (per-tag dispatch counts + wall self-time).
//
// A finished run is captured into a TelemetrySnapshot -- a plain value
// that can cross threads -- and exported as Chrome trace-event JSON (loads
// in ui.perfetto.dev / chrome://tracing), a Prometheus-style text dump, or
// a human-readable report.  Each experiment's sink is isolated by
// construction (one Telemetry per SimContext); merged exports take
// labelled snapshots in caller-chosen (trial) order, so parallel and
// serial runs merge identically.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_loop.hpp"
#include "sim/stats.hpp"
#include "sim/trace_event.hpp"

namespace tracemod::sim {

class SimContext;

struct TelemetryConfig {
  bool enabled = false;
  /// Flight-recorder cap; events beyond it are counted, not stored.
  std::size_t max_events = 1u << 20;
  /// End-to-end latency histogram shape (milliseconds).
  double e2e_hist_lo_ms = 0.0;
  double e2e_hist_hi_ms = 2000.0;
  std::size_t e2e_hist_bins = 40;
};

class Telemetry {
 public:
  /// The one guard every hook point checks.  False by default; recording
  /// calls must not be made while disabled.
  bool enabled() const { return enabled_; }

  const TelemetryConfig& config() const { return cfg_; }

  /// The flight recorder.  Valid only while enabled().
  FlightRecorder& recorder() { return *recorder_; }
  const FlightRecorder& recorder() const { return *recorder_; }

  /// Registers (or looks up) a track; returns kNoTrack while disabled, so
  /// constructors may resolve track handles unconditionally.
  TrackId track(const std::string& node, const std::string& layer) {
    return enabled_ ? recorder_->track(node, layer) : kNoTrack;
  }

  EventLoopProfiler& loop_profiler() { return profiler_; }
  const EventLoopProfiler& loop_profiler() const { return profiler_; }

 private:
  friend class SimContext;
  void enable(const TelemetryConfig& cfg) {
    cfg_ = cfg;
    if (!cfg.enabled) return;
    enabled_ = true;
    recorder_ = std::make_unique<FlightRecorder>(cfg.max_events);
  }

  bool enabled_ = false;
  TelemetryConfig cfg_;
  std::unique_ptr<FlightRecorder> recorder_;
  EventLoopProfiler profiler_;
};

/// Everything observable from one finished simulation, as a plain value:
/// the flight-recorder contents, the metrics registry (counters,
/// histograms, series), and the EventLoop profiler.  Snapshots are taken
/// per experiment and merged deterministically by the exporters below.
struct TelemetrySnapshot {
  std::vector<Track> tracks;
  std::vector<TraceEvent> events;
  std::uint64_t events_dropped = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, Histogram>> histograms;
  std::vector<std::pair<std::string, TimeSeries>> series;
  EventLoopProfiler profiler;

  /// Number of distinct layer names across all tracks.
  std::size_t distinct_layers() const;
};

/// Copies the context's telemetry state into a snapshot.  Cheap relative
/// to a simulation; call once after the run completes.
TelemetrySnapshot capture_telemetry(const SimContext& ctx);

/// A snapshot tagged with the experiment it came from ("trial3", ...).
struct LabeledTelemetry {
  std::string label;
  std::shared_ptr<const TelemetrySnapshot> snapshot;
};

/// Chrome trace-event JSON for one snapshot or a merged set.  Each
/// snapshot's nodes become processes (offset so labels never collide);
/// tracks become named threads; timestamps are virtual-time microseconds.
void write_chrome_trace(std::ostream& out, const TelemetrySnapshot& snap);
void write_chrome_trace(std::ostream& out,
                        const std::vector<LabeledTelemetry>& snaps);

/// Prometheus-style text dump: counters, histogram buckets (cumulative,
/// `le` labels), and series summarized as gauges.  Deterministic for a
/// deterministic simulation (no wall-clock content).
void write_metrics_text(std::ostream& out, const TelemetrySnapshot& snap,
                        const std::string& label = "");
void write_metrics_text(std::ostream& out,
                        const std::vector<LabeledTelemetry>& snaps);

/// Human-readable report: flight-recorder summary, series channels,
/// histograms, and the EventLoop profiler.  Wall-clock self-times are
/// included only when include_wall_time is set, so tests can pin the
/// deterministic shape.
void write_report(std::ostream& out, const TelemetrySnapshot& snap,
                  bool include_wall_time = true);

}  // namespace tracemod::sim
