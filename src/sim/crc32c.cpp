#include "sim/crc32c.hpp"

#include <array>

namespace tracemod::sim {

namespace {

constexpr std::uint32_t kPolyReflected = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPolyReflected : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace tracemod::sim
