// Packet flight recorder: per-packet lifecycle events in virtual time.
//
// Hook points across the stack (wireless tx, ethernet serialization, IP
// forward, modulation delay queue, transport deliver) record begin/end/
// instant/counter events onto named tracks.  A track is a (node, layer)
// pair -- e.g. ("mobile", "modulation") -- and maps to one timeline in the
// exported Chrome trace-event JSON (one process per node, one thread per
// layer), so a packet's journey reads top-to-bottom in ui.perfetto.dev.
//
// Recording never schedules events, draws randomness, or blocks: enabling
// the recorder cannot perturb a simulation's behaviour, only observe it.
// Timestamps are explicit, so a hook may record a span whose endpoints lie
// in the (virtual) future -- e.g. the bottleneck-serialization window is
// known the moment a packet enqueues; the exporter sorts by time.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace tracemod::sim {

/// Index into the recorder's track table.  0 is "no track" (disabled).
using TrackId = std::uint32_t;
inline constexpr TrackId kNoTrack = 0;

/// One timeline: a node (exported as a process) and a layer within it
/// (exported as a thread).
struct Track {
  std::string node;
  std::string layer;
};

/// One recorded event.  A kBegin/kEnd pair with the same (track, name, id)
/// brackets a span; the id is the packet id, correlating one packet's
/// spans across layers.  kCounter events chart `value` over time.
struct TraceEvent {
  enum class Phase : std::uint8_t { kBegin, kEnd, kInstant, kCounter };
  Phase phase{};
  TrackId track = kNoTrack;
  const char* name = "";  ///< static string; hook sites pass literals
  std::uint64_t id = 0;   ///< packet id; 0 for unkeyed events
  TimePoint at{};
  double value = 0.0;  ///< counter value or span payload (e.g. bytes)
};

/// Bounded append-only event buffer plus the track table.  Once the buffer
/// reaches max_events further events are counted as dropped rather than
/// recorded, so a runaway scenario degrades to truncated output instead of
/// unbounded memory.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t max_events) : max_events_(max_events) {}

  /// Returns the track for a node/layer pair, creating it on first use.
  /// Ids are assigned in registration order, so a deterministic simulation
  /// yields a deterministic track table.
  TrackId track(const std::string& node, const std::string& layer);

  void begin(TrackId t, const char* name, std::uint64_t id, TimePoint at,
             double value = 0.0) {
    push({TraceEvent::Phase::kBegin, t, name, id, at, value});
  }
  void end(TrackId t, const char* name, std::uint64_t id, TimePoint at) {
    push({TraceEvent::Phase::kEnd, t, name, id, at, 0.0});
  }
  void instant(TrackId t, const char* name, std::uint64_t id, TimePoint at,
               double value = 0.0) {
    push({TraceEvent::Phase::kInstant, t, name, id, at, value});
  }
  void counter(TrackId t, const char* name, TimePoint at, double value) {
    push({TraceEvent::Phase::kCounter, t, name, 0, at, value});
  }

  const std::vector<Track>& tracks() const { return tracks_; }
  const std::vector<TraceEvent>& events() const { return events_; }
  std::uint64_t dropped() const { return dropped_; }

 private:
  void push(TraceEvent e) {
    if (events_.size() >= max_events_) {
      ++dropped_;
      return;
    }
    events_.push_back(e);
  }

  std::size_t max_events_;
  std::vector<Track> tracks_;  // TrackId i names tracks_[i - 1]
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

/// Escapes a string for embedding in a JSON string literal.
std::string json_escape(const std::string& s);

/// Writes the comma-separated Chrome trace-event objects for one recorder's
/// events (metadata events naming each track, then the events sorted by
/// timestamp).  Process ids start at pid_base + 1 and node names are
/// prefixed with `label/` when label is non-empty, so several simulations
/// can share one traceEvents array.  Emits a leading comma when
/// `continuation` is true.  Timestamps are virtual-time microseconds.
void write_chrome_trace_events(std::ostream& out,
                               const std::vector<Track>& tracks,
                               const std::vector<TraceEvent>& events,
                               const std::string& label = "", int pid_base = 0,
                               bool continuation = false);

}  // namespace tracemod::sim
