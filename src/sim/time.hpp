// Virtual time for the discrete-event simulator.
//
// All tracemod components run on a single virtual clock with nanosecond
// resolution.  TimePoint/Duration are std::chrono types over a custom clock
// tag, so the usual chrono arithmetic and literals work, but accidental
// mixing with wall-clock time is a compile error.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace tracemod::sim {

/// Tag type satisfying the Clock requirements for virtual simulation time.
/// now() is intentionally absent: the current time is owned by EventLoop.
struct VirtualClock {
  using rep = std::int64_t;
  using period = std::nano;
  using duration = std::chrono::duration<rep, period>;
  using time_point = std::chrono::time_point<VirtualClock>;
  static constexpr bool is_steady = true;
};

using Duration = VirtualClock::duration;
using TimePoint = VirtualClock::time_point;

/// Simulation epoch (t = 0).  Experiments start here.
inline constexpr TimePoint kEpoch{};

constexpr Duration nanoseconds(std::int64_t n) { return Duration{n}; }
constexpr Duration microseconds(std::int64_t n) {
  return std::chrono::duration_cast<Duration>(std::chrono::microseconds{n});
}
constexpr Duration milliseconds(std::int64_t n) {
  return std::chrono::duration_cast<Duration>(std::chrono::milliseconds{n});
}
constexpr Duration seconds(std::int64_t n) {
  return std::chrono::duration_cast<Duration>(std::chrono::seconds{n});
}

/// Converts a duration in (possibly fractional) seconds to virtual time.
constexpr Duration from_seconds(double s) {
  return Duration{static_cast<std::int64_t>(s * 1e9)};
}

constexpr double to_seconds(Duration d) {
  return static_cast<double>(d.count()) * 1e-9;
}

constexpr double to_seconds(TimePoint t) {
  return to_seconds(t.time_since_epoch());
}

constexpr double to_milliseconds(Duration d) {
  return static_cast<double>(d.count()) * 1e-6;
}

/// Renders a time point as seconds since the simulation epoch, e.g. "12.503s".
std::string format_time(TimePoint t);
std::string format_duration(Duration d);

}  // namespace tracemod::sim
