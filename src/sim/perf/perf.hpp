// The wall-clock performance observability plane.
//
// Where sim/telemetry.hpp answers "what happened in virtual time", this
// subsystem answers "where did the CPU cycles and heap bytes go".  It is
// a scoped, sampling call-path profiler with per-subsystem domains:
//
//   - hook points in the hot paths (event-loop dispatch, packet path,
//     modulation delay queue, cell-index queries, distiller passes) open
//     a PerfScope; nested scopes build call paths such as
//     "event_loop;icmp.echo;node.send";
//   - a profiler attaches to ONE thread via PerfSession (a thread-local
//     current-profiler pointer), so hook sites cost a TLS load plus a
//     predicted branch when no profiler is attached -- the disabled
//     contract is bit-identical output, pinned by the seed goldens;
//   - timing is sampled: one in sampling_stride root scopes is measured
//     with the steady clock (the whole stack of that occurrence is timed
//     together, so self-time subtraction stays consistent); counts and
//     allocation attribution are exact for every occurrence;
//   - allocation attribution reads the operator-new interposer counters
//     (sim/perf/alloc_telemetry.hpp) around each scope, with the
//     profiler's own bookkeeping excluded via AllocSuspendGuard, so a
//     subsystem claiming "zero heap allocs in steady state" can be held
//     to it;
//   - periodic counter samples (every counter_sample_every dispatches)
//     capture events/sec, live heap bytes, and event-queue depth for
//     Perfetto counter tracks.
//
// The profiler never schedules events, never draws randomness, and never
// touches virtual time: an attached run is virtual-time-identical to an
// unattached one (pinned by tests/sim/perf_test.cpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "sim/perf/alloc_telemetry.hpp"
#include "sim/stats.hpp"
#include "sim/time.hpp"

namespace tracemod::sim::perf {

/// The subsystems wall time and allocations are attributed to.  A scope's
/// domain classifies its leaf; root scopes prefix the call path with the
/// domain name (flamegraph grouping).
enum class Domain : std::uint8_t {
  kEventLoop = 0,  ///< event-loop dispatch (root scopes, per handler tag)
  kPacketPath,     ///< Node::send / Node::on_receive and below
  kModulation,     ///< the modulation delay queue
  kCellIndex,      ///< spatial cell-index queries and updates
  kDistill,        ///< distiller passes (in-memory and streaming)
  kOther,          ///< everything else (toy subsystems, tests)
};
inline constexpr std::size_t kDomainCount = 6;
const char* to_string(Domain d);

struct PerfConfig {
  /// Time one in N root-scope occurrences (1 = time everything).  Counts
  /// and allocation attribution stay exact regardless.
  std::uint32_t sampling_stride = 1;
  /// Dispatches between two counter samples (events/sec, heap bytes,
  /// queue depth).
  std::uint32_t counter_sample_every = 1024;
  /// Histogram shape for sampled root-dispatch self-times (microseconds).
  double dispatch_hist_max_us = 1000.0;
  std::size_t dispatch_hist_bins = 40;
};

class PerfProfiler {
 public:
  explicit PerfProfiler(PerfConfig cfg = {});

  const PerfConfig& config() const { return cfg_; }

  /// One call-path node: a (parent, domain, label) triple with exact
  /// counts, sampled wall time, and exact allocation attribution.
  /// Children's measured time/allocs are recorded so self = total - child.
  struct Node {
    std::int32_t parent = -1;  ///< index into nodes(), -1 for roots
    Domain domain = Domain::kOther;
    const char* label = "";
    std::uint64_t count = 0;
    std::uint64_t timed_count = 0;  ///< occurrences measured (sampling)
    double wall_s = 0.0;            ///< measured total time
    double child_s = 0.0;           ///< measured time spent in children
    std::uint64_t allocs = 0;       ///< exact allocations in scope
    std::uint64_t alloc_bytes = 0;
    std::uint64_t child_allocs = 0;
    std::uint64_t child_alloc_bytes = 0;
    std::vector<std::uint32_t> children;
  };

  /// One periodic counter sample, for Perfetto counter tracks and the
  /// perf.* series family.
  struct CounterSample {
    double wall_s = 0.0;   ///< wall seconds since first attach
    TimePoint at;          ///< virtual time of the sampled dispatch
    std::uint64_t dispatched = 0;  ///< dispatches seen by this profiler
    std::uint64_t allocs = 0;      ///< process allocs since first attach
    std::int64_t heap_live_bytes = 0;  ///< process-wide live heap bytes
    std::uint64_t queue_depth = 0;     ///< event-loop pending events
  };

  // --- hook API (called from instrumented code via PerfScope) ---
  void enter(Domain d, const char* label);
  void leave();
  /// Event-loop dispatch hook: counts dispatches and takes periodic
  /// counter samples.  Never schedules, never allocates attributably.
  void on_dispatch(TimePoint virtual_now, std::size_t queue_depth);

  // --- session lifecycle (called by PerfSession) ---
  void on_attach();
  void on_detach();

  // --- introspection (for sim/perf/report.hpp and tests) ---
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<std::uint32_t>& roots() const { return roots_; }
  const std::vector<CounterSample>& samples() const { return samples_; }
  const Histogram& dispatch_hist() const { return dispatch_hist_; }
  std::uint64_t dispatched() const { return dispatched_; }
  /// Wall seconds spent attached (closed sessions plus the live one).
  double attached_wall_s() const;
  /// Process-wide allocation delta since the first attach.
  AllocTotals alloc_delta() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Frame {
    std::uint32_t node = 0;
    bool timed = false;
    Clock::time_point t0;
    double child_s = 0.0;
    AllocTotals alloc0;
    std::uint64_t child_allocs = 0;
    std::uint64_t child_alloc_bytes = 0;
  };

  std::uint32_t find_or_create(std::int32_t parent, Domain d,
                               const char* label);

  PerfConfig cfg_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> roots_;
  std::vector<Frame> stack_;
  std::uint64_t root_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t sample_countdown_ = 0;
  Histogram dispatch_hist_;
  std::vector<CounterSample> samples_;
  bool ever_attached_ = false;
  Clock::time_point first_attach_;
  Clock::time_point session_t0_;
  double closed_wall_s_ = 0.0;
  bool attached_ = false;
  AllocTotals alloc_at_start_;
  std::thread::id owner_;
};

namespace detail {
extern thread_local PerfProfiler* g_current;
}

/// The profiler attached to the calling thread, or nullptr.  This is the
/// single guard every hook point checks.
inline PerfProfiler* current() noexcept { return detail::g_current; }

/// Attaches a profiler to the calling thread for the guard's lifetime.
/// Sessions may nest (the previous attachment is restored); a profiler is
/// single-threaded by contract and asserts if re-attached elsewhere.
class PerfSession {
 public:
  explicit PerfSession(PerfProfiler& p);
  ~PerfSession();
  PerfSession(const PerfSession&) = delete;
  PerfSession& operator=(const PerfSession&) = delete;

 private:
  PerfProfiler* prev_;
};

/// RAII scope for one hook point.  Resolves the thread's profiler once;
/// when none is attached the constructor and destructor are a TLS load
/// plus a predicted branch.
class PerfScope {
 public:
  PerfScope(Domain d, const char* label) : p_(current()) {
    if (p_ != nullptr) p_->enter(d, label);
  }
  /// Overload for call sites that already resolved current() (the event
  /// loop, which also feeds on_dispatch).
  PerfScope(PerfProfiler* p, Domain d, const char* label) : p_(p) {
    if (p_ != nullptr) p_->enter(d, label);
  }
  ~PerfScope() {
    if (p_ != nullptr) p_->leave();
  }
  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

 private:
  PerfProfiler* p_;
};

}  // namespace tracemod::sim::perf
