// Allocation telemetry: a global operator-new/delete interposer that
// counts every C++ heap allocation and free, per thread, with relaxed
// atomics (TSan-clean by construction).  The wall-clock perf plane
// (sim/perf/perf.hpp) reads these counters around scoped regions to
// attribute allocations to subsystems and to prove -- or refute -- "zero
// heap allocations in steady state" claims per domain.
//
// Properties:
//   - counting only: allocation behaviour, addresses, and failure
//     semantics are unchanged, so simulations are bit-identical whether
//     or not anyone reads the counters;
//   - per-thread counter blocks registered once per thread and leaked
//     reachable (never freed), so snapshots may race thread exit safely
//     and LeakSanitizer stays quiet;
//   - byte counts use malloc_usable_size on glibc, so alloc/free byte
//     totals are symmetric even through unsized operator delete;
//   - the interposer lives in one translation unit inside tracemod_sim;
//     SimContext anchors it (ensure_alloc_interposer) so every binary
//     that simulates anything gets process-wide counting.
#pragma once

#include <cstdint>

namespace tracemod::sim::perf {

/// Monotonic allocation counters.  Deltas between two snapshots bound the
/// allocations of the code that ran in between (on one thread for
/// thread_alloc_totals, process-wide for alloc_totals).
struct AllocTotals {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t bytes_allocated = 0;
  std::uint64_t bytes_freed = 0;

  /// Bytes currently live (allocated minus freed); approximate when
  /// allocations cross suspension windows.
  std::int64_t live_bytes() const {
    return static_cast<std::int64_t>(bytes_allocated) -
           static_cast<std::int64_t>(bytes_freed);
  }
};

inline AllocTotals operator-(const AllocTotals& a, const AllocTotals& b) {
  return {a.allocs - b.allocs, a.frees - b.frees,
          a.bytes_allocated - b.bytes_allocated,
          a.bytes_freed - b.bytes_freed};
}

/// True when the interposing operator new/delete pair is linked into this
/// binary (always the case once ensure_alloc_interposer is reachable).
bool alloc_interposer_active();

/// Process-wide totals: the sum over every thread that ever allocated.
AllocTotals alloc_totals();

/// Totals for the calling thread only.
AllocTotals thread_alloc_totals();

/// Link anchor: forces the interposer's translation unit (and therefore
/// the replaced global operator new/delete) into the final binary.
/// SimContext's constructor calls this; it costs one predicted branch.
void ensure_alloc_interposer();

/// Suspends counting on the calling thread while alive.  The profiler
/// wraps its own bookkeeping in this guard so the instrument's
/// allocations are never attributed to the code under measurement.
class AllocSuspendGuard {
 public:
  AllocSuspendGuard();
  ~AllocSuspendGuard();
  AllocSuspendGuard(const AllocSuspendGuard&) = delete;
  AllocSuspendGuard& operator=(const AllocSuspendGuard&) = delete;
};

}  // namespace tracemod::sim::perf
