#include "sim/perf/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "sim/metric_names.hpp"
#include "sim/telemetry.hpp"
#include "sim/trace_event.hpp"
#include "version.hpp"

namespace tracemod::sim::perf {

namespace {

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

/// "domain;label;label..." for the node at `idx` (root-first).
std::string path_string(const std::vector<PerfProfiler::Node>& nodes,
                        std::uint32_t idx) {
  std::vector<const char*> labels;
  std::int32_t cur = static_cast<std::int32_t>(idx);
  Domain root_domain = Domain::kOther;
  while (cur >= 0) {
    const PerfProfiler::Node& n = nodes[static_cast<std::size_t>(cur)];
    labels.push_back(n.label);
    root_domain = n.domain;
    cur = n.parent;
  }
  std::string out = to_string(root_domain);
  for (auto it = labels.rbegin(); it != labels.rend(); ++it) {
    out += ';';
    out += *it;
  }
  return out;
}

/// Sampling-scaled estimate: measured seconds extrapolated from the timed
/// occurrences to all occurrences.
double scale(double measured_s, std::uint64_t count, std::uint64_t timed) {
  if (timed == 0) return 0.0;
  return measured_s * (static_cast<double>(count) / static_cast<double>(timed));
}

void append_counter_event(std::string& buf, bool& first, const char* name,
                          double ts_us, const char* arg, double value) {
  if (!first) buf += ",\n";
  first = false;
  buf += "{\"name\":\"";
  buf += name;
  buf += "\",\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":";
  buf += fmt("%.3f", ts_us);
  buf += ",\"args\":{\"";
  buf += arg;
  buf += "\":";
  buf += fmt("%.6g", value);
  buf += "}}";
}

/// Inserts (name, value) into a name-sorted vector, summing on collision.
template <typename T>
void sorted_upsert(std::vector<std::pair<std::string, T>>& vec,
                   const std::string& name, T value) {
  auto it = std::lower_bound(
      vec.begin(), vec.end(), name,
      [](const auto& p, const std::string& n) { return p.first < n; });
  if (it != vec.end() && it->first == name) {
    it->second += value;
  } else {
    vec.insert(it, {name, value});
  }
}

/// Inserts (name, value) into a name-sorted vector, replacing on collision
/// (for histogram/series entries, which do not sum meaningfully).
template <typename T>
void sorted_put(std::vector<std::pair<std::string, T>>& vec,
                const std::string& name, T value) {
  auto it = std::lower_bound(
      vec.begin(), vec.end(), name,
      [](const auto& p, const std::string& n) { return p.first < n; });
  if (it != vec.end() && it->first == name) {
    it->second = std::move(value);
  } else {
    vec.insert(it, {name, std::move(value)});
  }
}

}  // namespace

PerfSnapshot capture_perf(const PerfProfiler& profiler) {
  PerfSnapshot snap;
  snap.wall_s = profiler.attached_wall_s();
  snap.dispatched = profiler.dispatched();
  snap.allocs = profiler.alloc_delta();
  snap.sampling_stride = profiler.config().sampling_stride;
  snap.samples = profiler.samples();
  snap.dispatch_self_us = profiler.dispatch_hist();

  const std::vector<PerfProfiler::Node>& nodes = profiler.nodes();
  snap.paths.reserve(nodes.size());
  double domain_self_s[kDomainCount] = {};
  std::uint64_t domain_count[kDomainCount] = {};
  std::uint64_t domain_allocs[kDomainCount] = {};
  std::uint64_t domain_bytes[kDomainCount] = {};
  for (std::uint32_t i = 0; i < nodes.size(); ++i) {
    const PerfProfiler::Node& n = nodes[i];
    if (n.count == 0) continue;
    PerfPath p;
    p.path = path_string(nodes, i);
    p.leaf_domain = n.domain;
    p.count = n.count;
    p.timed_count = n.timed_count;
    p.est_total_s = scale(n.wall_s, n.count, n.timed_count);
    const double self_s = std::max(0.0, n.wall_s - n.child_s);
    p.est_self_s = scale(self_s, n.count, n.timed_count);
    p.allocs = n.allocs;
    p.alloc_bytes = n.alloc_bytes;
    p.self_allocs = n.allocs - n.child_allocs;
    p.self_alloc_bytes = n.alloc_bytes - n.child_alloc_bytes;
    const auto d = static_cast<std::size_t>(n.domain);
    domain_self_s[d] += p.est_self_s;
    domain_count[d] += p.count;
    domain_allocs[d] += p.self_allocs;
    domain_bytes[d] += p.self_alloc_bytes;
    snap.paths.push_back(std::move(p));
  }
  std::sort(snap.paths.begin(), snap.paths.end(),
            [](const PerfPath& a, const PerfPath& b) {
              if (a.est_self_s != b.est_self_s) {
                return a.est_self_s > b.est_self_s;
              }
              return a.path < b.path;
            });
  for (std::size_t d = 0; d < kDomainCount; ++d) {
    if (domain_count[d] == 0) continue;
    PerfDomainStats s;
    s.domain = static_cast<Domain>(d);
    s.count = domain_count[d];
    s.est_self_s = domain_self_s[d];
    s.self_allocs = domain_allocs[d];
    s.self_alloc_bytes = domain_bytes[d];
    snap.domains.push_back(s);
  }
  return snap;
}

void write_flamegraph(std::ostream& out, const PerfSnapshot& snap) {
  // flamegraph.pl wants integral sample values; self-microseconds keeps
  // sub-millisecond paths visible.
  std::vector<const PerfPath*> by_path;
  by_path.reserve(snap.paths.size());
  for (const PerfPath& p : snap.paths) by_path.push_back(&p);
  std::sort(by_path.begin(), by_path.end(),
            [](const PerfPath* a, const PerfPath* b) {
              return a->path < b->path;
            });
  for (const PerfPath* p : by_path) {
    const auto us = static_cast<std::uint64_t>(std::llround(
        p->est_self_s * 1e6));
    if (us == 0) continue;
    out << p->path << " " << us << "\n";
  }
}

void write_perf_chrome(std::ostream& out, const PerfSnapshot& snap) {
  std::string buf;
  bool first = true;
  double prev_wall = 0.0;
  std::uint64_t prev_dispatched = 0;
  for (const PerfProfiler::CounterSample& s : snap.samples) {
    const double ts_us = s.wall_s * 1e6;
    append_counter_event(buf, first, "perf.events_dispatched", ts_us,
                         "events", static_cast<double>(s.dispatched));
    append_counter_event(buf, first, "perf.heap_live_bytes", ts_us, "bytes",
                         static_cast<double>(s.heap_live_bytes));
    append_counter_event(buf, first, "perf.event_queue_depth", ts_us,
                         "events", static_cast<double>(s.queue_depth));
    const double dt = s.wall_s - prev_wall;
    if (dt > 0.0) {
      append_counter_event(
          buf, first, "perf.events_per_sec", ts_us, "rate",
          static_cast<double>(s.dispatched - prev_dispatched) / dt);
    }
    prev_wall = s.wall_s;
    prev_dispatched = s.dispatched;
  }
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
      << buf << "\n]}\n";
}

void write_perf_report(std::ostream& out, const PerfSnapshot& snap,
                       std::size_t top_n, bool include_wall_time) {
  out << "== perf report ==\n";
  out << "[totals] events=" << snap.dispatched;
  if (include_wall_time) {
    out << " wall=" << fmt("%.3f", snap.wall_s) << "s"
        << " events/sec=" << fmt("%.0f", snap.events_per_sec());
  }
  out << " allocs=" << snap.allocs.allocs
      << " allocs/event=" << fmt("%.3f", snap.allocs_per_event())
      << " stride=" << snap.sampling_stride << "\n";
  out << "[domains]\n";
  for (const PerfDomainStats& d : snap.domains) {
    out << "  " << to_string(d.domain) << ": count=" << d.count;
    if (include_wall_time) {
      out << " self=" << fmt("%.3f", d.est_self_s * 1e3) << "ms";
    }
    out << " self-allocs=" << d.self_allocs << " ("
        << d.self_alloc_bytes << " bytes)\n";
  }
  out << "[hotspots]\n";
  std::size_t shown = 0;
  for (const PerfPath& p : snap.paths) {
    if (shown++ >= top_n) break;
    out << "  " << p.path << ": count=" << p.count;
    if (include_wall_time) {
      out << " self=" << fmt("%.3f", p.est_self_s * 1e3) << "ms"
          << " total=" << fmt("%.3f", p.est_total_s * 1e3) << "ms";
    }
    out << " self-allocs=" << p.self_allocs << "\n";
  }
}

void write_perf_json(std::ostream& out, const PerfSnapshot& snap,
                     const std::string& workload, double sim_seconds,
                     std::size_t top_n, const std::string& extra) {
  out << "{\n";
  out << "  \"schema\": \"tracemod-perf-v1\",\n";
  out << "  \"tool_version\": \"" << kToolVersion << "\",\n";
  out << "  \"workload\": \"" << json_escape(workload) << "\",\n";
  out << "  \"wall_s\": " << fmt("%.6f", snap.wall_s) << ",\n";
  out << "  \"sim_s\": " << fmt("%.6f", sim_seconds) << ",\n";
  out << "  \"sim_per_wall\": "
      << fmt("%.6g", snap.wall_s > 0.0 ? sim_seconds / snap.wall_s : 0.0)
      << ",\n";
  out << "  \"events\": " << snap.dispatched << ",\n";
  out << "  \"events_per_sec\": " << fmt("%.6g", snap.events_per_sec())
      << ",\n";
  out << "  \"allocs\": " << snap.allocs.allocs << ",\n";
  out << "  \"frees\": " << snap.allocs.frees << ",\n";
  out << "  \"alloc_bytes\": " << snap.allocs.bytes_allocated << ",\n";
  out << "  \"allocs_per_event\": " << fmt("%.6g", snap.allocs_per_event())
      << ",\n";
  out << "  \"sampling_stride\": " << snap.sampling_stride << ",\n";
  if (!extra.empty()) out << "  " << extra << ",\n";
  out << "  \"domains\": [";
  for (std::size_t i = 0; i < snap.domains.size(); ++i) {
    const PerfDomainStats& d = snap.domains[i];
    out << (i ? ",\n    " : "\n    ");
    out << "{\"domain\": \"" << to_string(d.domain)
        << "\", \"count\": " << d.count
        << ", \"self_s\": " << fmt("%.6f", d.est_self_s)
        << ", \"self_allocs\": " << d.self_allocs
        << ", \"self_alloc_bytes\": " << d.self_alloc_bytes << "}";
  }
  out << "\n  ],\n";
  out << "  \"hotspots\": [";
  std::size_t shown = 0;
  for (const PerfPath& p : snap.paths) {
    if (shown >= top_n) break;
    out << (shown ? ",\n    " : "\n    ");
    ++shown;
    out << "{\"path\": \"" << json_escape(p.path)
        << "\", \"count\": " << p.count
        << ", \"self_s\": " << fmt("%.6f", p.est_self_s)
        << ", \"total_s\": " << fmt("%.6f", p.est_total_s)
        << ", \"self_allocs\": " << p.self_allocs
        << ", \"self_alloc_bytes\": " << p.self_alloc_bytes << "}";
  }
  out << "\n  ]\n";
  out << "}\n";
}

void append_perf_to_telemetry(TelemetrySnapshot& tel,
                              const PerfSnapshot& snap) {
  sorted_upsert<std::uint64_t>(tel.counters, metric::kPerfEventsProfiled,
                               snap.dispatched);
  sorted_upsert<std::uint64_t>(tel.counters, metric::kPerfAllocs,
                               snap.allocs.allocs);
  sorted_upsert<std::uint64_t>(tel.counters, metric::kPerfFrees,
                               snap.allocs.frees);
  sorted_upsert<std::uint64_t>(tel.counters, metric::kPerfAllocBytes,
                               snap.allocs.bytes_allocated);

  TimeSeries heap, depth, rate;
  double prev_wall = 0.0;
  std::uint64_t prev_dispatched = 0;
  for (const PerfProfiler::CounterSample& s : snap.samples) {
    heap.sample(s.at, static_cast<double>(s.heap_live_bytes));
    depth.sample(s.at, static_cast<double>(s.queue_depth));
    const double dt = s.wall_s - prev_wall;
    if (dt > 0.0) {
      rate.sample(s.at,
                  static_cast<double>(s.dispatched - prev_dispatched) / dt);
    }
    prev_wall = s.wall_s;
    prev_dispatched = s.dispatched;
  }
  // capture_telemetry emits channels in name order (MetricsRegistry is a
  // std::map); keep that invariant so merged exports stay deterministic.
  sorted_put<TimeSeries>(tel.series, metric::kPerfHeapLiveBytes, heap);
  sorted_put<TimeSeries>(tel.series, metric::kPerfEventQueueDepth, depth);
  sorted_put<TimeSeries>(tel.series, metric::kPerfEventsPerSec, rate);
  sorted_put<Histogram>(tel.histograms, metric::kPerfDispatchSelfUs,
                        snap.dispatch_self_us);
}

}  // namespace tracemod::sim::perf
