#include "sim/perf/perf.hpp"

#include <cstring>

#include "sim/assert.hpp"

namespace tracemod::sim::perf {

namespace detail {
thread_local PerfProfiler* g_current = nullptr;
}

const char* to_string(Domain d) {
  switch (d) {
    case Domain::kEventLoop: return "event_loop";
    case Domain::kPacketPath: return "packet_path";
    case Domain::kModulation: return "modulation";
    case Domain::kCellIndex: return "cell_index";
    case Domain::kDistill: return "distill";
    case Domain::kOther: return "other";
  }
  return "unknown";
}

PerfProfiler::PerfProfiler(PerfConfig cfg)
    : cfg_(cfg),
      dispatch_hist_(0.0, cfg.dispatch_hist_max_us, cfg.dispatch_hist_bins) {
  if (cfg_.sampling_stride == 0) cfg_.sampling_stride = 1;
  if (cfg_.counter_sample_every == 0) cfg_.counter_sample_every = 1024;
  AllocSuspendGuard guard;
  stack_.reserve(64);
  nodes_.reserve(256);
  sample_countdown_ = cfg_.counter_sample_every;
}

std::uint32_t PerfProfiler::find_or_create(std::int32_t parent, Domain d,
                                           const char* label) {
  const std::vector<std::uint32_t>& siblings =
      parent < 0 ? roots_ : nodes_[static_cast<std::size_t>(parent)].children;
  for (const std::uint32_t idx : siblings) {
    const Node& n = nodes_[idx];
    if (n.domain == d &&
        (n.label == label || std::strcmp(n.label, label) == 0)) {
      return idx;
    }
  }
  const auto idx = static_cast<std::uint32_t>(nodes_.size());
  Node n;
  n.parent = parent;
  n.domain = d;
  n.label = label;
  nodes_.push_back(std::move(n));
  if (parent < 0) {
    roots_.push_back(idx);
  } else {
    nodes_[static_cast<std::size_t>(parent)].children.push_back(idx);
  }
  return idx;
}

void PerfProfiler::enter(Domain d, const char* label) {
  AllocSuspendGuard guard;  // the instrument's allocations are invisible
  const std::int32_t parent =
      stack_.empty() ? -1 : static_cast<std::int32_t>(stack_.back().node);
  const std::uint32_t node = find_or_create(parent, d, label);
  Frame f;
  f.node = node;
  // Sampling decision at the root: the whole stack of a selected root
  // occurrence is timed together, so self = total - child stays exact
  // within the sample.
  f.timed = stack_.empty()
                ? (cfg_.sampling_stride <= 1 ||
                   root_seq_++ % cfg_.sampling_stride == 0)
                : stack_.back().timed;
  ++nodes_[node].count;
  f.alloc0 = thread_alloc_totals();
  if (f.timed) f.t0 = Clock::now();
  stack_.push_back(f);
}

void PerfProfiler::leave() {
  AllocSuspendGuard guard;
  TM_ASSERT(!stack_.empty());
  const Frame f = stack_.back();
  stack_.pop_back();
  Node& n = nodes_[f.node];

  const AllocTotals now_alloc = thread_alloc_totals();
  const std::uint64_t d_allocs = now_alloc.allocs - f.alloc0.allocs;
  const std::uint64_t d_bytes =
      now_alloc.bytes_allocated - f.alloc0.bytes_allocated;
  n.allocs += d_allocs;
  n.alloc_bytes += d_bytes;
  n.child_allocs += f.child_allocs;
  n.child_alloc_bytes += f.child_alloc_bytes;

  double total_s = 0.0;
  if (f.timed) {
    total_s = std::chrono::duration<double>(Clock::now() - f.t0).count();
    ++n.timed_count;
    n.wall_s += total_s;
    n.child_s += f.child_s;
  }

  if (!stack_.empty()) {
    Frame& parent = stack_.back();
    parent.child_allocs += d_allocs;
    parent.child_alloc_bytes += d_bytes;
    if (f.timed) parent.child_s += total_s;
  } else if (f.timed && n.domain == Domain::kEventLoop) {
    dispatch_hist_.add(total_s * 1e6);
  }
}

void PerfProfiler::on_dispatch(TimePoint virtual_now,
                               std::size_t queue_depth) {
  ++dispatched_;
  if (--sample_countdown_ != 0) return;
  sample_countdown_ = cfg_.counter_sample_every;
  AllocSuspendGuard guard;
  const AllocTotals now_alloc = alloc_totals();
  CounterSample s;
  s.wall_s = std::chrono::duration<double>(Clock::now() - first_attach_).count();
  s.at = virtual_now;
  s.dispatched = dispatched_;
  s.allocs = now_alloc.allocs - alloc_at_start_.allocs;
  s.heap_live_bytes = now_alloc.live_bytes();
  s.queue_depth = queue_depth;
  samples_.push_back(s);
}

void PerfProfiler::on_attach() {
  TM_ASSERT(!attached_);
  if (!ever_attached_) {
    ever_attached_ = true;
    first_attach_ = Clock::now();
    alloc_at_start_ = alloc_totals();
    owner_ = std::this_thread::get_id();
  } else {
    TM_ASSERT(owner_ == std::this_thread::get_id());
  }
  attached_ = true;
  session_t0_ = Clock::now();
}

void PerfProfiler::on_detach() {
  TM_ASSERT(attached_);
  attached_ = false;
  closed_wall_s_ +=
      std::chrono::duration<double>(Clock::now() - session_t0_).count();
}

double PerfProfiler::attached_wall_s() const {
  double s = closed_wall_s_;
  if (attached_) {
    s += std::chrono::duration<double>(Clock::now() - session_t0_).count();
  }
  return s;
}

AllocTotals PerfProfiler::alloc_delta() const {
  if (!ever_attached_) return {};
  return alloc_totals() - alloc_at_start_;
}

PerfSession::PerfSession(PerfProfiler& p) : prev_(detail::g_current) {
  detail::g_current = &p;
  p.on_attach();
}

PerfSession::~PerfSession() {
  detail::g_current->on_detach();
  detail::g_current = prev_;
}

}  // namespace tracemod::sim::perf
