// Snapshots and exporters for the wall-clock perf plane (sim/perf/perf.hpp).
//
// A finished profiling session is captured into a PerfSnapshot -- a plain
// value -- and exported as:
//   - collapsed-stack flamegraph text (flamegraph.pl / speedscope /
//     inferno: one "path self_microseconds" line per call path);
//   - Perfetto counter tracks (Chrome trace JSON "C" events over wall
//     time: events/sec, live heap bytes, event-queue depth);
//   - the `tracemod-perf-v1` hotspot report JSON (top-N self-time paths,
//     allocs/event, events/sec, sim-seconds per wall-second);
//   - a human-readable hotspot table;
//   - the `perf.*` metric family appended onto a TelemetrySnapshot so the
//     standard report/Prometheus exporters carry it (metric_names.hpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/perf/perf.hpp"

namespace tracemod::sim {
struct TelemetrySnapshot;
}

namespace tracemod::sim::perf {

/// One call path, flattened: labels joined with ';' under a domain-name
/// root, e.g. "event_loop;icmp.echo;node.send".
struct PerfPath {
  std::string path;
  Domain leaf_domain = Domain::kOther;
  std::uint64_t count = 0;
  std::uint64_t timed_count = 0;
  /// Sampling-scaled estimates: measured time times count/timed_count.
  double est_total_s = 0.0;
  double est_self_s = 0.0;
  /// Exact allocation attribution (counts are never sampled).
  std::uint64_t allocs = 0;
  std::uint64_t alloc_bytes = 0;
  std::uint64_t self_allocs = 0;
  std::uint64_t self_alloc_bytes = 0;
};

/// Per-domain aggregate of self time and self allocations.
struct PerfDomainStats {
  Domain domain = Domain::kOther;
  std::uint64_t count = 0;
  double est_self_s = 0.0;
  std::uint64_t self_allocs = 0;
  std::uint64_t self_alloc_bytes = 0;
};

struct PerfSnapshot {
  double wall_s = 0.0;               ///< attached wall-clock seconds
  std::uint64_t dispatched = 0;      ///< event-loop dispatches profiled
  AllocTotals allocs;                ///< process alloc delta while attached
  std::uint32_t sampling_stride = 1;
  /// Paths sorted by estimated self time (descending; ties by path).
  std::vector<PerfPath> paths;
  /// Domain aggregates in Domain declaration order (only touched domains).
  std::vector<PerfDomainStats> domains;
  std::vector<PerfProfiler::CounterSample> samples;
  Histogram dispatch_self_us{0.0, 1000.0, 40};

  double events_per_sec() const {
    return wall_s > 0.0 ? static_cast<double>(dispatched) / wall_s : 0.0;
  }
  double allocs_per_event() const {
    return dispatched > 0
               ? static_cast<double>(allocs.allocs) /
                     static_cast<double>(dispatched)
               : 0.0;
  }
};

/// Flattens the profiler's call-path tree into a snapshot.  Cheap; call
/// after the workload completes (the session may still be open).
PerfSnapshot capture_perf(const PerfProfiler& profiler);

/// Collapsed-stack flamegraph text: "path self_us" per line, skipping
/// zero-valued stacks.  Feed to flamegraph.pl or paste into speedscope.
void write_flamegraph(std::ostream& out, const PerfSnapshot& snap);

/// Chrome trace JSON whose counter tracks ("C" events over wall-clock
/// microseconds) plot events/sec, live heap bytes, event-queue depth, and
/// cumulative allocations.  Loads in ui.perfetto.dev.
void write_perf_chrome(std::ostream& out, const PerfSnapshot& snap);

/// Human-readable hotspot table: totals line, per-domain aggregate, and
/// the top_n self-time paths.  Wall-clock numbers are printed only when
/// include_wall_time is set so tests can pin the deterministic shape.
void write_perf_report(std::ostream& out, const PerfSnapshot& snap,
                       std::size_t top_n = 10, bool include_wall_time = true);

/// The `tracemod-perf-v1` report: totals, throughput (events/sec,
/// sim-seconds per wall-second), allocs/event, per-domain aggregates, and
/// the top_n hotspots.  `workload` names what ran; `sim_seconds` is the
/// virtual time the workload covered (0 when not applicable); `extra` is
/// spliced verbatim as additional top-level JSON members (may be empty).
void write_perf_json(std::ostream& out, const PerfSnapshot& snap,
                     const std::string& workload, double sim_seconds,
                     std::size_t top_n = 20, const std::string& extra = "");

/// Appends the perf.* metric family onto a telemetry snapshot so the
/// standard exporters (report, Prometheus text) carry it: counters
/// perf.events_profiled / perf.allocs / perf.frees / perf.alloc_bytes,
/// series perf.events_per_sec / perf.heap_live_bytes /
/// perf.event_queue_depth, histogram perf.dispatch_self_us.
void append_perf_to_telemetry(TelemetrySnapshot& tel,
                              const PerfSnapshot& snap);

}  // namespace tracemod::sim::perf
