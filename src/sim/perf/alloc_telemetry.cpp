// The operator-new/delete interposer behind sim/perf/alloc_telemetry.hpp.
//
// This translation unit replaces the global allocation functions for any
// binary that links it (see ensure_alloc_interposer).  Each thread owns a
// counter block of relaxed atomics; blocks are registered once under a
// mutex and never freed (they stay reachable through the registry, so
// LeakSanitizer does not flag them and snapshots never race a dying
// thread's storage).  A thread-local recursion flag keeps the registry's
// own allocations out of the counts, and a thread-local suspension depth
// lets the profiler exclude its bookkeeping.
#include "sim/perf/alloc_telemetry.hpp"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <mutex>
#include <new>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace tracemod::sim::perf {
namespace {

struct ThreadBlock {
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> frees{0};
  std::atomic<std::uint64_t> bytes_allocated{0};
  std::atomic<std::uint64_t> bytes_freed{0};
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

// Heap-allocated and reachable through a static pointer for the life of
// the process: blocks survive their thread, and LSan sees them as live.
std::vector<ThreadBlock*>& registry() {
  static std::vector<ThreadBlock*>* r = new std::vector<ThreadBlock*>();
  return *r;
}

// POD thread-locals only: no dynamic initialization, no destructors, so
// the hooks are safe during process startup and thread teardown.
thread_local ThreadBlock* t_block = nullptr;
thread_local bool t_in_hook = false;
thread_local int t_suspend = 0;

ThreadBlock* block_for_thread() {
  if (t_block == nullptr) {
    t_in_hook = true;
    void* raw = std::malloc(sizeof(ThreadBlock));
    if (raw == nullptr) {
      t_in_hook = false;
      return nullptr;  // never fail an allocation because of bookkeeping
    }
    auto* b = new (raw) ThreadBlock();
    {
      std::lock_guard<std::mutex> lock(registry_mutex());
      registry().push_back(b);
    }
    t_block = b;
    t_in_hook = false;
  }
  return t_block;
}

std::size_t usable_size(void* p, std::size_t fallback) {
#if defined(__GLIBC__)
  const std::size_t u = ::malloc_usable_size(p);
  return u != 0 ? u : fallback;
#else
  (void)p;
  return fallback;
#endif
}

void note_alloc(std::size_t bytes) {
  if (t_in_hook || t_suspend > 0) return;
  ThreadBlock* b = block_for_thread();
  if (b == nullptr) return;
  b->allocs.fetch_add(1, std::memory_order_relaxed);
  b->bytes_allocated.fetch_add(bytes, std::memory_order_relaxed);
}

void note_free(std::size_t bytes) {
  if (t_in_hook || t_suspend > 0) return;
  ThreadBlock* b = block_for_thread();
  if (b == nullptr) return;
  b->frees.fetch_add(1, std::memory_order_relaxed);
  b->bytes_freed.fetch_add(bytes, std::memory_order_relaxed);
}

void* allocate(std::size_t size, std::size_t align, bool nothrow) {
  if (size == 0) size = 1;
  for (;;) {
    void* p = nullptr;
    if (align <= alignof(std::max_align_t)) {
      p = std::malloc(size);
    } else if (::posix_memalign(&p, align, size) != 0) {
      p = nullptr;
    }
    if (p != nullptr) {
      note_alloc(usable_size(p, size));
      return p;
    }
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) {
      if (nothrow) return nullptr;
      throw std::bad_alloc();
    }
    handler();
  }
}

void deallocate(void* p, std::size_t size_hint) noexcept {
  if (p == nullptr) return;
  note_free(usable_size(p, size_hint));
  std::free(p);
}

}  // namespace

bool alloc_interposer_active() { return true; }

AllocTotals alloc_totals() {
  AllocTotals out;
  std::lock_guard<std::mutex> lock(registry_mutex());
  for (const ThreadBlock* b : registry()) {
    out.allocs += b->allocs.load(std::memory_order_relaxed);
    out.frees += b->frees.load(std::memory_order_relaxed);
    out.bytes_allocated += b->bytes_allocated.load(std::memory_order_relaxed);
    out.bytes_freed += b->bytes_freed.load(std::memory_order_relaxed);
  }
  return out;
}

AllocTotals thread_alloc_totals() {
  AllocTotals out;
  const ThreadBlock* b = t_block;
  if (b == nullptr) return out;
  out.allocs = b->allocs.load(std::memory_order_relaxed);
  out.frees = b->frees.load(std::memory_order_relaxed);
  out.bytes_allocated = b->bytes_allocated.load(std::memory_order_relaxed);
  out.bytes_freed = b->bytes_freed.load(std::memory_order_relaxed);
  return out;
}

void ensure_alloc_interposer() {
  // Touching any symbol in this TU pulls the object file -- and with it
  // the replaced operator new/delete below -- out of the static archive.
}

AllocSuspendGuard::AllocSuspendGuard() { ++t_suspend; }
AllocSuspendGuard::~AllocSuspendGuard() { --t_suspend; }

}  // namespace tracemod::sim::perf

// --- replaced global allocation functions ---------------------------------
//
// Counting only: the underlying storage comes from malloc/posix_memalign,
// failure raises bad_alloc through the standard new-handler loop, and the
// nothrow forms return nullptr, exactly like the defaults.

namespace {
constexpr std::size_t kDefaultAlign = alignof(std::max_align_t);
}

void* operator new(std::size_t size) {
  return tracemod::sim::perf::allocate(size, kDefaultAlign, false);
}
void* operator new[](std::size_t size) {
  return tracemod::sim::perf::allocate(size, kDefaultAlign, false);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return tracemod::sim::perf::allocate(size, kDefaultAlign, true);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  try {
    return tracemod::sim::perf::allocate(size, kDefaultAlign, true);
  } catch (...) {
    return nullptr;
  }
}
void* operator new(std::size_t size, std::align_val_t align) {
  return tracemod::sim::perf::allocate(
      size, static_cast<std::size_t>(align), false);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return tracemod::sim::perf::allocate(
      size, static_cast<std::size_t>(align), false);
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  try {
    return tracemod::sim::perf::allocate(
        size, static_cast<std::size_t>(align), true);
  } catch (...) {
    return nullptr;
  }
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  try {
    return tracemod::sim::perf::allocate(
        size, static_cast<std::size_t>(align), true);
  } catch (...) {
    return nullptr;
  }
}

void operator delete(void* p) noexcept {
  tracemod::sim::perf::deallocate(p, 0);
}
void operator delete[](void* p) noexcept {
  tracemod::sim::perf::deallocate(p, 0);
}
void operator delete(void* p, std::size_t size) noexcept {
  tracemod::sim::perf::deallocate(p, size);
}
void operator delete[](void* p, std::size_t size) noexcept {
  tracemod::sim::perf::deallocate(p, size);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  tracemod::sim::perf::deallocate(p, 0);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  tracemod::sim::perf::deallocate(p, 0);
}
void operator delete(void* p, std::align_val_t) noexcept {
  tracemod::sim::perf::deallocate(p, 0);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  tracemod::sim::perf::deallocate(p, 0);
}
void operator delete(void* p, std::size_t size, std::align_val_t) noexcept {
  tracemod::sim::perf::deallocate(p, size);
}
void operator delete[](void* p, std::size_t size, std::align_val_t) noexcept {
  tracemod::sim::perf::deallocate(p, size);
}
