// Discrete-event scheduler.
//
// EventLoop owns virtual time.  Components schedule callbacks at absolute or
// relative times; run() dispatches them in timestamp order (FIFO among equal
// timestamps).  Scheduling returns an EventId that can be cancelled, which is
// how protocol timers (TCP retransmission, NFS RPC timeouts, ...) are built.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace tracemod::sim {

/// Opaque handle for a scheduled event.  Value 0 is never issued.
using EventId = std::uint64_t;

/// EventLoop introspection for finding simulator hot spots: dispatch counts
/// per handler tag, wall-clock self-time per tag, and queue-depth high
/// water.  Tag strings come from the optional tag argument to schedule();
/// untagged events aggregate under "(untagged)".  Counts and high water are
/// deterministic for a given simulation; self-time is measured on the host
/// wall clock and is reported separately from deterministic output.
struct EventLoopProfiler {
  struct TagStats {
    std::uint64_t count = 0;
    double self_seconds = 0.0;
  };

  std::uint64_t dispatched = 0;
  std::size_t queue_high_water = 0;
  std::map<std::string, TagStats> by_tag;

  void note(const char* tag, double self_seconds) {
    TagStats& s = by_tag[tag != nullptr ? tag : "(untagged)"];
    ++s.count;
    s.self_seconds += self_seconds;
    ++dispatched;
  }
};

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time.  Advances only inside run()/run_until()/step().
  TimePoint now() const { return now_; }

  /// Schedules fn at absolute time t.  Times in the past are clamped to
  /// now().  Returns a cancellable id.  The optional tag (a static string)
  /// classifies the handler for the profiler; it has no effect on dispatch.
  EventId schedule_at(TimePoint t, std::function<void()> fn,
                      const char* tag = nullptr);

  /// Schedules fn after the given delay (>= 0).
  EventId schedule(Duration delay, std::function<void()> fn,
                   const char* tag = nullptr) {
    return schedule_at(now_ + delay, std::move(fn), tag);
  }

  /// Attaches a profiler (nullptr detaches).  When attached, every
  /// dispatch is counted per tag and timed on the host wall clock.  The
  /// profiler observes only; dispatch order and virtual time are
  /// unaffected.
  void set_profiler(EventLoopProfiler* p) { profiler_ = p; }

  /// Cancels a pending event.  Returns false if it already ran, was already
  /// cancelled, or never existed.
  bool cancel(EventId id);

  /// True if the event has been scheduled and has neither run nor been
  /// cancelled.
  bool pending(EventId id) const { return live_.count(id) != 0; }

  /// Runs events until the queue is empty.
  void run();

  /// Runs events with timestamp <= t, then advances the clock to t.
  void run_until(TimePoint t);

  /// Runs events for the given span of virtual time from now().
  void run_for(Duration d) { run_until(now_ + d); }

  /// Dispatches the single next event.  Returns false if the queue is empty.
  bool step();

  /// Number of events dispatched so far (for tests and diagnostics).
  std::uint64_t dispatched() const { return dispatched_; }

  /// Number of events currently pending.
  std::size_t pending_count() const { return live_.size(); }

  /// Number of heap entries, live plus not-yet-compacted dead ones (for
  /// tests and diagnostics).  Bounded by compaction: dead entries never
  /// exceed half the heap once it passes a small minimum size.
  std::size_t queue_size() const { return queue_.size(); }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    EventId id;
    std::function<void()> fn;
    const char* tag;  // profiler classification; nullptr = untagged
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool dispatch_one();
  void compact();

  TimePoint now_ = kEpoch;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> live_;
  EventId next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::size_t dead_in_queue_ = 0;
  EventLoopProfiler* profiler_ = nullptr;
};

/// RAII one-shot timer bound to an EventLoop.  Used by protocol state
/// machines; destroying the timer cancels any pending callback.
class Timer {
 public:
  explicit Timer(EventLoop& loop) : loop_(loop) {}
  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)arms the timer to fire after the delay, replacing any pending arm.
  /// The optional tag classifies the handler for the EventLoop profiler.
  void arm(Duration delay, std::function<void()> fn,
           const char* tag = nullptr) {
    cancel();
    id_ = loop_.schedule(delay,
                         [this, fn = std::move(fn)] {
                           id_ = 0;
                           fn();
                         },
                         tag);
  }

  void cancel() {
    if (id_ != 0) {
      loop_.cancel(id_);
      id_ = 0;
    }
  }

  bool armed() const { return id_ != 0; }

  EventLoop& loop() { return loop_; }

 private:
  EventLoop& loop_;
  EventId id_ = 0;
};

}  // namespace tracemod::sim
