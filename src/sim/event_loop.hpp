// Discrete-event scheduler.
//
// EventLoop owns virtual time.  Components schedule callbacks at absolute or
// relative times; run() dispatches them in timestamp order (FIFO among equal
// timestamps).  Scheduling returns an EventId that can be cancelled, which is
// how protocol timers (TCP retransmission, NFS RPC timeouts, ...) are built.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace tracemod::sim {

/// Opaque handle for a scheduled event.  Value 0 is never issued.
using EventId = std::uint64_t;

class EventLoop {
 public:
  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Current virtual time.  Advances only inside run()/run_until()/step().
  TimePoint now() const { return now_; }

  /// Schedules fn at absolute time t.  Times in the past are clamped to
  /// now().  Returns a cancellable id.
  EventId schedule_at(TimePoint t, std::function<void()> fn);

  /// Schedules fn after the given delay (>= 0).
  EventId schedule(Duration delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event.  Returns false if it already ran, was already
  /// cancelled, or never existed.
  bool cancel(EventId id);

  /// True if the event has been scheduled and has neither run nor been
  /// cancelled.
  bool pending(EventId id) const { return live_.count(id) != 0; }

  /// Runs events until the queue is empty.
  void run();

  /// Runs events with timestamp <= t, then advances the clock to t.
  void run_until(TimePoint t);

  /// Runs events for the given span of virtual time from now().
  void run_for(Duration d) { run_until(now_ + d); }

  /// Dispatches the single next event.  Returns false if the queue is empty.
  bool step();

  /// Number of events dispatched so far (for tests and diagnostics).
  std::uint64_t dispatched() const { return dispatched_; }

  /// Number of events currently pending.
  std::size_t pending_count() const { return live_.size(); }

  /// Number of heap entries, live plus not-yet-compacted dead ones (for
  /// tests and diagnostics).  Bounded by compaction: dead entries never
  /// exceed half the heap once it passes a small minimum size.
  std::size_t queue_size() const { return queue_.size(); }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  bool dispatch_one();
  void compact();

  TimePoint now_ = kEpoch;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<EventId> live_;
  EventId next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::size_t dead_in_queue_ = 0;
};

/// RAII one-shot timer bound to an EventLoop.  Used by protocol state
/// machines; destroying the timer cancels any pending callback.
class Timer {
 public:
  explicit Timer(EventLoop& loop) : loop_(loop) {}
  ~Timer() { cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)arms the timer to fire after the delay, replacing any pending arm.
  void arm(Duration delay, std::function<void()> fn) {
    cancel();
    id_ = loop_.schedule(delay, [this, fn = std::move(fn)] {
      id_ = 0;
      fn();
    });
  }

  void cancel() {
    if (id_ != 0) {
      loop_.cancel(id_);
      id_ = 0;
    }
  }

  bool armed() const { return id_ != 0; }

  EventLoop& loop() { return loop_; }

 private:
  EventLoop& loop_;
  EventId id_ = 0;
};

}  // namespace tracemod::sim
