#include "sim/trace_event.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <numeric>
#include <ostream>

namespace tracemod::sim {

TrackId FlightRecorder::track(const std::string& node,
                              const std::string& layer) {
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    if (tracks_[i].node == node && tracks_[i].layer == layer) {
      return static_cast<TrackId>(i + 1);
    }
  }
  tracks_.push_back(Track{node, layer});
  return static_cast<TrackId>(tracks_.size());
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

// Formats virtual time as the trace-event "ts" field (microseconds, with
// nanosecond precision preserved in the fraction).
void append_ts(std::string& out, TimePoint t) {
  char buf[40];
  const std::int64_t ns = t.time_since_epoch().count();
  std::snprintf(buf, sizeof(buf), "%lld.%03lld",
                static_cast<long long>(ns / 1000),
                static_cast<long long>(ns % 1000));
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out += buf;
}

}  // namespace

void write_chrome_trace_events(std::ostream& out,
                               const std::vector<Track>& tracks,
                               const std::vector<TraceEvent>& events,
                               const std::string& label, int pid_base,
                               bool continuation) {
  // Assign process ids per distinct node (in track order) and thread ids
  // per layer within a node, so the assignment is deterministic.
  std::map<std::string, int> pid_of_node;
  std::vector<int> pid_of_track(tracks.size(), 0);
  std::vector<int> tid_of_track(tracks.size(), 0);
  std::map<std::string, int> tid_next;
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    auto [it, fresh] =
        pid_of_node.try_emplace(tracks[i].node,
                                pid_base + 1 + static_cast<int>(pid_of_node.size()));
    (void)fresh;
    pid_of_track[i] = it->second;
    tid_of_track[i] = ++tid_next[tracks[i].node];
  }

  std::string buf;
  bool first = !continuation;
  auto emit = [&](const std::string& obj) {
    if (!first) out << ",\n";
    first = false;
    out << obj;
  };

  // Metadata: name each process and thread.
  for (const auto& [node, pid] : pid_of_node) {
    const std::string shown =
        label.empty() ? node : label + "/" + node;
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
         ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"" +
         json_escape(shown) + "\"}}");
  }
  for (std::size_t i = 0; i < tracks.size(); ++i) {
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(pid_of_track[i]) +
         ",\"tid\":" + std::to_string(tid_of_track[i]) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         json_escape(tracks[i].layer) + "\"}}");
  }

  // Events, sorted by timestamp (stable: recording order breaks ties, so a
  // begin at t always precedes its end at t).
  std::vector<std::size_t> order(events.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return events[a].at < events[b].at;
                   });

  for (const std::size_t i : order) {
    const TraceEvent& e = events[i];
    if (e.track == kNoTrack || e.track > tracks.size()) continue;
    const int pid = pid_of_track[e.track - 1];
    const int tid = tid_of_track[e.track - 1];
    buf.clear();
    buf += "{\"name\":\"";
    buf += json_escape(e.name);
    buf += "\",\"pid\":";
    buf += std::to_string(pid);
    buf += ",\"tid\":";
    buf += std::to_string(tid);
    buf += ",\"ts\":";
    append_ts(buf, e.at);
    switch (e.phase) {
      case TraceEvent::Phase::kBegin:
        buf += ",\"ph\":\"b\",\"cat\":\"pkt\",\"id\":\"" +
               std::to_string(e.id) + "\",\"args\":{\"bytes\":";
        append_double(buf, e.value);
        buf += "}}";
        break;
      case TraceEvent::Phase::kEnd:
        buf += ",\"ph\":\"e\",\"cat\":\"pkt\",\"id\":\"" +
               std::to_string(e.id) + "\"}";
        break;
      case TraceEvent::Phase::kInstant:
        buf += ",\"ph\":\"i\",\"s\":\"t\",\"args\":{\"pkt\":" +
               std::to_string(e.id) + ",\"value\":";
        append_double(buf, e.value);
        buf += "}}";
        break;
      case TraceEvent::Phase::kCounter:
        buf += ",\"ph\":\"C\",\"args\":{\"value\":";
        append_double(buf, e.value);
        buf += "}}";
        break;
    }
    emit(buf);
  }
}

}  // namespace tracemod::sim
