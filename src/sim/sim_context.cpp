#include "sim/sim_context.hpp"

namespace tracemod::sim {

std::uint64_t& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

std::uint64_t MetricsRegistry::value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::snapshot()
    const {
  return {counters_.begin(), counters_.end()};
}

Histogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                      double hi, std::size_t bins) {
  return histograms_.try_emplace(name, lo, hi, bins).first->second;
}

TimeSeries& MetricsRegistry::series(const std::string& name) {
  return series_[name];
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

const TimeSeries* MetricsRegistry::find_series(const std::string& name) const {
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

}  // namespace tracemod::sim
