#include "sim/sim_context.hpp"

namespace tracemod::sim {

std::uint64_t& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

std::uint64_t MetricsRegistry::value(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> MetricsRegistry::snapshot()
    const {
  return {counters_.begin(), counters_.end()};
}

}  // namespace tracemod::sim
