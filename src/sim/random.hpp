// Deterministic random number generation.
//
// Every stochastic component (channel fading, loss draws, workload think
// times, modulation drop decisions) takes an Rng so experiments are
// reproducible from a single seed.  The generator is xoshiro256**, a small
// fast PRNG whose output is identical across platforms and standard-library
// implementations -- unlike std::uniform_*_distribution, whose algorithms
// are unspecified.  All distribution code here is self-contained.
#pragma once

#include <cstdint>

namespace tracemod::sim {

class Rng {
 public:
  /// Seeds via splitmix64 so that nearby seeds yield unrelated streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent child stream; used to give each subsystem its
  /// own generator (one trial seed fans out to channel, apps, modulation).
  Rng fork();

  /// Raw 64 uniform bits.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw.
  bool chance(double p);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Normal via Box-Muller (cached second variate).
  double normal(double mean, double stddev);

  /// Bounded Pareto (shape alpha) on [lo, hi]; heavy-tailed object sizes.
  double pareto(double alpha, double lo, double hi);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace tracemod::sim
