#include "sim/status/status.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <ostream>
#include <stdexcept>
#include <utility>

#include "sim/crc32c.hpp"
#include "sim/io/durable.hpp"
#include "version.hpp"

#if defined(_WIN32)
#include <process.h>
#else
#include <unistd.h>
#endif

namespace tracemod::sim::status {

// --- TMST codec -------------------------------------------------------------

namespace {

constexpr char kMagic[4] = {'T', 'M', 'S', 'T'};
constexpr std::size_t kHeaderSize = 4 + 2 + 4 + 4;  // magic|version|len|crc
constexpr std::uint32_t kMaxPayload = 1u << 20;     // snapshots are tiny

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}
void put_u16(std::string& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) put_u8(out, (v >> (8 * i)) & 0xff);
}
void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) put_u8(out, (v >> (8 * i)) & 0xff);
}
void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) put_u8(out, (v >> (8 * i)) & 0xff);
}
void put_f64(std::string& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}
void put_str(std::string& out, const std::string& s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out += s;
}

/// Bounds-checked little-endian cursor; decode errors throw and
/// decode_status maps them to StatusReadStatus::kCorrupt.
struct Cursor {
  const char* p;
  const char* end;
  void need(std::size_t n) const {
    if (static_cast<std::size_t>(end - p) < n) {
      throw std::runtime_error("status snapshot truncated mid-field");
    }
  }
  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(*p++);
  }
  std::uint16_t u16() {
    need(2);
    std::uint16_t v = 0;
    for (int i = 0; i < 2; ++i) {
      v |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(*p++))
           << (8 * i);
    }
    return v;
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(*p++))
           << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(*p++))
           << (8 * i);
    }
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::uint32_t n = u32();
    if (n > kMaxPayload) {
      throw std::runtime_error("status string length implausible");
    }
    need(n);
    std::string s(p, n);
    p += n;
    return s;
  }
};

std::string encode_payload(const StatusSnapshot& s) {
  std::string out;
  put_str(out, s.tool_version);
  put_str(out, s.driver);
  put_str(out, s.phase);
  put_str(out, s.units_label);
  put_u64(out, s.seq);
  put_u64(out, s.pid);
  put_u64(out, s.published_unix_ms);
  put_f64(out, s.units_done);
  put_f64(out, s.units_total);
  put_u64(out, s.events_dispatched);
  put_u64(out, s.retries);
  put_u64(out, s.errors);
  put_u64(out, s.windows_distilled);
  put_u64(out, s.windows_shed);
  put_u64(out, s.records_streamed);
  put_f64(out, s.sim_seconds);
  put_f64(out, s.wall_seconds);
  put_f64(out, s.sim_per_wall);
  put_f64(out, s.eta_seconds);
  put_u8(out, s.finished ? 1 : 0);
  put_u32(out, static_cast<std::uint32_t>(s.exit_code));
  return out;
}

StatusSnapshot decode_payload(const char* data, std::size_t size) {
  Cursor c{data, data + size};
  StatusSnapshot s;
  s.tool_version = c.str();
  s.driver = c.str();
  s.phase = c.str();
  s.units_label = c.str();
  s.seq = c.u64();
  s.pid = c.u64();
  s.published_unix_ms = c.u64();
  s.units_done = c.f64();
  s.units_total = c.f64();
  s.events_dispatched = c.u64();
  s.retries = c.u64();
  s.errors = c.u64();
  s.windows_distilled = c.u64();
  s.windows_shed = c.u64();
  s.records_streamed = c.u64();
  s.sim_seconds = c.f64();
  s.wall_seconds = c.f64();
  s.sim_per_wall = c.f64();
  s.eta_seconds = c.f64();
  s.finished = c.u8() != 0;
  s.exit_code = static_cast<std::int32_t>(c.u32());
  if (c.p != c.end) {
    throw std::runtime_error("status snapshot has trailing bytes");
  }
  return s;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::uint64_t current_pid() {
#if defined(_WIN32)
  return static_cast<std::uint64_t>(_getpid());
#else
  return static_cast<std::uint64_t>(::getpid());
#endif
}

std::uint64_t unix_now_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::vector<std::uint8_t> encode_status(const StatusSnapshot& snap) {
  const std::string payload = encode_payload(snap);
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(kMagic, sizeof(kMagic));
  put_u16(out, kStatusFormatVersion);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32c(payload.data(), payload.size()));
  out += payload;
  return std::vector<std::uint8_t>(out.begin(), out.end());
}

StatusReadResult decode_status(const std::uint8_t* data, std::size_t size) {
  StatusReadResult r;
  r.status = StatusReadStatus::kCorrupt;
  if (size < kHeaderSize) {
    r.message = "file shorter than the TMST header (torn write?)";
    return r;
  }
  const char* p = reinterpret_cast<const char*>(data);
  if (std::char_traits<char>::compare(p, kMagic, sizeof(kMagic)) != 0) {
    r.message = "bad magic: not a TMST status file";
    return r;
  }
  Cursor header{p + 4, p + kHeaderSize};
  const std::uint16_t version = header.u16();
  if (version != kStatusFormatVersion) {
    r.message = "unsupported TMST version " + std::to_string(version);
    return r;
  }
  const std::uint32_t len = header.u32();
  const std::uint32_t crc = header.u32();
  if (len > kMaxPayload) {
    r.message = "payload length implausible";
    return r;
  }
  if (size != kHeaderSize + len) {
    r.message = "payload truncated: header claims " + std::to_string(len) +
                " bytes, file carries " +
                std::to_string(size - kHeaderSize);
    return r;
  }
  if (crc32c(p + kHeaderSize, len) != crc) {
    r.message = "CRC mismatch: snapshot payload is damaged";
    return r;
  }
  try {
    r.snapshot = decode_payload(p + kHeaderSize, len);
  } catch (const std::exception& e) {
    r.message = e.what();
    return r;
  }
  r.status = StatusReadStatus::kOk;
  return r;
}

StatusReadResult read_status_file(const std::string& path) {
  StatusReadResult r;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    r.status = StatusReadStatus::kMissing;
    r.message = "no status file at " + path;
    return r;
  }
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return decode_status(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                       bytes.size());
}

void write_status_json(std::ostream& out, const StatusSnapshot& s) {
  out << "{\"schema\": \"" << kStatusSchema << "\"";
  out << ",\n \"tool_version\": \"" << json_escape(s.tool_version) << "\"";
  out << ",\n \"driver\": \"" << json_escape(s.driver) << "\"";
  out << ",\n \"phase\": \"" << json_escape(s.phase) << "\"";
  out << ",\n \"seq\": " << s.seq;
  out << ",\n \"pid\": " << s.pid;
  out << ",\n \"published_unix_ms\": " << s.published_unix_ms;
  out << ",\n \"units\": {\"label\": \"" << json_escape(s.units_label)
      << "\", \"done\": " << json_double(s.units_done)
      << ", \"total\": " << json_double(s.units_total) << "}";
  out << ",\n \"events_dispatched\": " << s.events_dispatched;
  out << ",\n \"retries\": " << s.retries;
  out << ",\n \"errors\": " << s.errors;
  out << ",\n \"windows_distilled\": " << s.windows_distilled;
  out << ",\n \"windows_shed\": " << s.windows_shed;
  out << ",\n \"records_streamed\": " << s.records_streamed;
  out << ",\n \"sim_seconds\": " << json_double(s.sim_seconds);
  out << ",\n \"wall_seconds\": " << json_double(s.wall_seconds);
  out << ",\n \"sim_per_wall\": " << json_double(s.sim_per_wall);
  if (s.eta_seconds >= 0.0) {
    out << ",\n \"eta_seconds\": " << json_double(s.eta_seconds);
  } else {
    out << ",\n \"eta_seconds\": null";
  }
  out << ",\n \"finished\": " << (s.finished ? "true" : "false");
  if (s.finished) {
    out << ",\n \"exit_code\": " << s.exit_code;
  } else {
    out << ",\n \"exit_code\": null";
  }
  out << "}\n";
}

// --- StatusBoard ------------------------------------------------------------

bool StatusBoard::configure(Config cfg) {
  std::lock_guard<std::mutex> lock(mu_);
  path_ = std::move(cfg.path);
  driver_ = std::move(cfg.driver);
  min_interval_s_ = cfg.min_publish_interval_s;
  wall_start_ = std::chrono::steady_clock::now();
  phase_ = "starting";
  enabled_.store(true, std::memory_order_relaxed);
  publish_locked();
  if (write_failures_.load(std::memory_order_relaxed) > 0) {
    enabled_.store(false, std::memory_order_relaxed);
    return false;
  }
  return true;
}

void StatusBoard::set_phase(const std::string& phase) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  phase_ = phase;
  publish_locked();
}

void StatusBoard::set_units(const std::string& label, double total) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  units_label_ = label;
  units_total_ = total;
}

void StatusBoard::set_units_follow_sim(bool follow) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  units_follow_sim_ = follow;
}

void StatusBoard::add_units_done(std::uint64_t n) {
  units_done_.fetch_add(n, std::memory_order_relaxed);
}
void StatusBoard::add_retries(std::uint64_t n) {
  retries_.fetch_add(n, std::memory_order_relaxed);
}
void StatusBoard::add_errors(std::uint64_t n) {
  errors_.fetch_add(n, std::memory_order_relaxed);
}
void StatusBoard::add_windows_distilled(std::uint64_t n) {
  windows_distilled_.fetch_add(n, std::memory_order_relaxed);
}
void StatusBoard::add_windows_shed(std::uint64_t n) {
  windows_shed_.fetch_add(n, std::memory_order_relaxed);
}
void StatusBoard::add_records_streamed(std::uint64_t n) {
  records_streamed_.fetch_add(n, std::memory_order_relaxed);
}

void StatusBoard::note_dispatch(std::uint64_t delta_events,
                                double sim_now_s) {
  events_.fetch_add(delta_events, std::memory_order_relaxed);
  // Monotone max across concurrently heartbeating worlds: the published
  // virtual clock never runs backwards.
  std::uint64_t cur = sim_now_bits_.load(std::memory_order_relaxed);
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(sim_now_s);
  while (sim_now_s > std::bit_cast<double>(cur) &&
         !sim_now_bits_.compare_exchange_weak(cur, bits,
                                              std::memory_order_relaxed)) {
  }
  maybe_publish();
}

void StatusBoard::maybe_publish() {
  if (!enabled()) return;
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - wall_start_)
          .count();
  const std::int64_t interval_ns =
      static_cast<std::int64_t>(min_interval_s_ * 1e9);
  if (now_ns - last_publish_ns_.load(std::memory_order_relaxed) <
      interval_ns) {
    return;
  }
  // try_lock, not lock: a worker thread must never block on a slow disk.
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;
  if (now_ns - last_publish_ns_.load(std::memory_order_relaxed) <
      interval_ns) {
    return;  // lost the race to a concurrent publisher
  }
  publish_locked();
}

void StatusBoard::publish_now() {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  publish_locked();
}

void StatusBoard::finish(int exit_code) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  finished_ = true;
  exit_code_ = exit_code;
  if (phase_ != "finished") phase_ = "finished";
  publish_locked();
}

StatusSnapshot StatusBoard::peek() const {
  std::lock_guard<std::mutex> lock(mu_);
  return build_snapshot_locked();
}

StatusSnapshot StatusBoard::build_snapshot_locked() const {
  StatusSnapshot s;
  s.tool_version = kToolVersion;
  s.driver = driver_;
  s.phase = phase_;
  s.units_label = units_label_;
  s.seq = seq_.load(std::memory_order_relaxed) + 1;
  s.pid = current_pid();
  s.published_unix_ms = unix_now_ms();
  const std::chrono::duration<double> wall =
      std::chrono::steady_clock::now() - wall_start_;
  s.wall_seconds = wall.count();
  s.sim_seconds =
      std::bit_cast<double>(sim_now_bits_.load(std::memory_order_relaxed));
  s.units_total = units_total_;
  s.units_done = units_follow_sim_
                     ? (units_total_ > 0.0
                            ? std::min(s.sim_seconds, units_total_)
                            : s.sim_seconds)
                     : static_cast<double>(
                           units_done_.load(std::memory_order_relaxed));
  s.events_dispatched = events_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.windows_distilled = windows_distilled_.load(std::memory_order_relaxed);
  s.windows_shed = windows_shed_.load(std::memory_order_relaxed);
  s.records_streamed = records_streamed_.load(std::memory_order_relaxed);
  if (s.wall_seconds > 0.0 && s.sim_seconds > 0.0) {
    s.sim_per_wall = s.sim_seconds / s.wall_seconds;
  }
  s.finished = finished_;
  s.exit_code = exit_code_;
  if (finished_) {
    s.eta_seconds = 0.0;
  } else if (s.units_total > 0.0 && s.units_done > 0.0 &&
             s.units_done <= s.units_total) {
    s.eta_seconds =
        s.wall_seconds * (s.units_total - s.units_done) / s.units_done;
  }
  return s;
}

void StatusBoard::publish_locked() {
  const StatusSnapshot snap = build_snapshot_locked();
  const std::vector<std::uint8_t> image = encode_status(snap);
  // Atomic replace via a pid/seq-unique tmp: readers see either the
  // previous complete snapshot or this one, never a mix, two boards
  // publishing to one path never clobber each other's tmp, and tmp files
  // orphaned by a killed run are swept on the next writer's open.
  // Degradation policy: a failed publish drops this snapshot (counted in
  // status.publish_failed) and the run continues -- the status plane must
  // never abort or block the work it is describing.
  const io::IoResult r =
      io::write_file_atomic(path_, std::string_view(reinterpret_cast<const char*>(
                                                        image.data()),
                                                    image.size()));
  if (!r.ok) {
    write_failures_.fetch_add(1, std::memory_order_relaxed);
    io::io_counters().status_publish_failures.fetch_add(
        1, std::memory_order_relaxed);
    return;
  }
  seq_.fetch_add(1, std::memory_order_relaxed);
  last_publish_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                             std::chrono::steady_clock::now() - wall_start_)
                             .count(),
                         std::memory_order_relaxed);
}

}  // namespace tracemod::sim::status
