// Live run introspection: a crash-safe status plane for long-running
// simulations.
//
// Long-running drivers (supervised sweeps, campus runs, streaming
// distillation, the fig benchmarks) periodically publish a compact
// snapshot of their progress — phase, units done/total, events dispatched,
// sim-time vs wall-time rate, retry/error counters, an ETA — to a small
// status file that any other process can read while the run executes:
//
//   tracemod status run.status            # render the latest snapshot
//   tracemod status run.status --follow   # tail it live
//   tracemod status run.status --json     # machine-readable
//
// Three properties drive the design:
//
//   1. Crash safety.  Every publish writes the whole snapshot to
//      `<path>.tmp` and atomically renames it over `<path>` (same
//      directory, so POSIX rename atomicity applies).  The payload is
//      CRC32C-tagged like the TMSJ/TMDJ journals, so a torn or damaged
//      file is detectable and the last good snapshot survives SIGKILL as
//      a postmortem of where the run died.
//
//   2. Zero perturbation.  Publishing never touches virtual time: no
//      events are scheduled, no RNG is drawn, and every driver hook sits
//      behind a single `board != nullptr && board->enabled()` branch that
//      predicts perfectly when status is off.  Status-off runs are
//      bit-identical to a build without this subsystem; status-on runs
//      are virtual-time-identical (only host-clock reads and file writes
//      are added), pinned by digest-equality tests.
//
//   3. Non-blocking workers.  Counters are relaxed atomics; the throttled
//      maybe_publish() uses try_lock, so a worker thread never blocks on
//      a slow disk — it just skips the publish and the next heartbeat
//      retries.
//
// On-disk format TMST v1 (little-endian):
//   "TMST" | u16 version | u32 payload_len | u32 crc32c(payload) | payload
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace tracemod::sim::status {

/// JSON schema kind emitted by `tracemod status --json`.
inline constexpr const char* kStatusSchema = "tracemod-status-v1";

/// TMST on-disk format version.
inline constexpr std::uint16_t kStatusFormatVersion = 1;

/// One published snapshot of a run's progress.  Counters that a given
/// driver does not use stay zero (a sweep has no windows; a distillation
/// has no trials); `units_*` is the driver's primary progress axis.
struct StatusSnapshot {
  std::string tool_version;  ///< tracemod::kToolVersion of the publisher
  std::string driver;        ///< "sweep" | "campus" | "distill" | "perf" | ...
  std::string phase;         ///< driver-specific phase label
  std::string units_label;   ///< what units_done/total count ("trials", ...)
  std::uint64_t seq = 0;     ///< publish sequence number, starts at 1
  std::uint64_t pid = 0;     ///< publishing process, for liveness checks
  std::uint64_t published_unix_ms = 0;  ///< host clock at publish
  double units_done = 0.0;
  double units_total = 0.0;  ///< 0 = unknown / open-ended
  std::uint64_t events_dispatched = 0;
  std::uint64_t retries = 0;  ///< guarded-trial retry attempts
  std::uint64_t errors = 0;   ///< trials that exhausted retries
  std::uint64_t windows_distilled = 0;
  std::uint64_t windows_shed = 0;
  std::uint64_t records_streamed = 0;
  double sim_seconds = 0.0;   ///< latest heartbeat's virtual clock
  double wall_seconds = 0.0;  ///< host time since the board was configured
  double sim_per_wall = 0.0;  ///< sim_seconds / wall_seconds, 0 = unknown
  double eta_seconds = -1.0;  ///< projected wall time remaining, <0 unknown
  bool finished = false;
  std::int32_t exit_code = -1;  ///< meaningful only when finished
};

/// Serializes a snapshot as a TMST v1 file image (header + CRC + payload).
std::vector<std::uint8_t> encode_status(const StatusSnapshot& snap);

enum class StatusReadStatus {
  kOk,       ///< snapshot decoded and CRC-verified
  kMissing,  ///< no file at the path
  kCorrupt,  ///< torn write, bad magic/version, CRC mismatch, or damage
};

struct StatusReadResult {
  StatusReadStatus status = StatusReadStatus::kMissing;
  std::string message;  ///< human-readable diagnosis for kCorrupt/kMissing
  StatusSnapshot snapshot;
};

/// Reads and verifies a status file.  Never throws: any damage is reported
/// as kCorrupt with a diagnosis, so a postmortem reader can distinguish
/// "run never started" from "snapshot damaged".
StatusReadResult read_status_file(const std::string& path);

/// Decodes a TMST image from memory (same validation as read_status_file).
StatusReadResult decode_status(const std::uint8_t* data, std::size_t size);

/// Writes the `tracemod-status-v1` JSON document for a snapshot.
void write_status_json(std::ostream& out, const StatusSnapshot& snap);

/// Shared, thread-safe progress board.  The driver owns one and hands a
/// pointer to its subsystems; a null pointer (the default everywhere)
/// means status is off and no hook executes any code beyond one branch.
class StatusBoard {
 public:
  struct Config {
    std::string path;    ///< status file; `<path>.tmp` is the staging file
    std::string driver;  ///< snapshot driver label
    double min_publish_interval_s = 0.25;  ///< maybe_publish throttle
  };

  StatusBoard() = default;
  StatusBoard(const StatusBoard&) = delete;
  StatusBoard& operator=(const StatusBoard&) = delete;

  /// Enables the board and publishes snapshot #1 (phase "starting").
  /// Returns false if the status file could not be written, leaving the
  /// board disabled so the run proceeds without status.
  bool configure(Config cfg);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Sets the phase label and publishes immediately (phase changes are
  /// rare and load-bearing for postmortems: "which stage died?").
  void set_phase(const std::string& phase);

  /// Declares the primary progress axis.  total == 0 means open-ended.
  void set_units(const std::string& label, double total);

  /// When set, units_done tracks sim_seconds from heartbeats (single-world
  /// drivers like campus, whose natural axis is the virtual horizon).
  void set_units_follow_sim(bool follow);

  void add_units_done(std::uint64_t n = 1);
  void add_retries(std::uint64_t n);
  void add_errors(std::uint64_t n);
  void add_windows_distilled(std::uint64_t n);
  void add_windows_shed(std::uint64_t n);
  void add_records_streamed(std::uint64_t n);

  /// Event-loop heartbeat hook: accumulates dispatched events and advances
  /// the published virtual clock (monotone max across worlds), then
  /// maybe_publish().  Called from run_event_loop_until every
  /// wall_check_interval dispatches when status is on.
  void note_dispatch(std::uint64_t delta_events, double sim_now_s);

  /// Publishes if at least min_publish_interval_s elapsed since the last
  /// snapshot and the publish lock is free; otherwise returns without
  /// blocking.  Safe from any thread.
  void maybe_publish();

  /// Publishes unconditionally (phase boundaries, final snapshot).
  void publish_now();

  /// Marks the run finished with its exit code and publishes.
  void finish(int exit_code);

  /// Current counters as a snapshot, without writing (tests, drivers).
  StatusSnapshot peek() const;

  std::uint64_t publishes() const {
    return seq_.load(std::memory_order_relaxed);
  }
  std::uint64_t write_failures() const {
    return write_failures_.load(std::memory_order_relaxed);
  }
  const std::string& path() const { return path_; }

 private:
  StatusSnapshot build_snapshot_locked() const;
  void publish_locked();

  std::atomic<bool> enabled_{false};
  std::string path_;
  std::string driver_;
  double min_interval_s_ = 0.25;
  std::chrono::steady_clock::time_point wall_start_{};

  mutable std::mutex mu_;        // phase/label strings + publish I/O
  std::string phase_;
  std::string units_label_;
  double units_total_ = 0.0;
  bool units_follow_sim_ = false;
  bool finished_ = false;
  std::int32_t exit_code_ = -1;

  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint64_t> units_done_{0};
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> windows_distilled_{0};
  std::atomic<std::uint64_t> windows_shed_{0};
  std::atomic<std::uint64_t> records_streamed_{0};
  std::atomic<std::uint64_t> sim_now_bits_{0};  // double bit pattern, max
  std::atomic<std::int64_t> last_publish_ns_{0};
  std::atomic<std::uint64_t> write_failures_{0};
};

}  // namespace tracemod::sim::status
