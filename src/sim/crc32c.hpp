// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// The checksum shared by every crash-safe on-disk format in the repo: trace
// format v2 records (trace/trace_io.hpp), the TMSJ sweep journal
// (scenarios/supervisor.cpp), the TMDJ distill checkpoints
// (core/stream_distiller.cpp), and the TMST status snapshots
// (sim/status/status.hpp).  CRC32C is the standard choice for storage
// framing (iSCSI, ext4, Btrfs): it catches all burst errors up to 32 bits
// and has good Hamming distance at trace-record payload sizes.
// Table-driven software implementation; no hardware dependencies, identical
// output on every platform.
//
// Lives in sim/ (the base library) so layers below trace/ can frame their
// files with it; trace/crc32c.hpp forwards here for existing callers.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tracemod::sim {

/// CRC32C of the buffer, continuing from `seed` (pass the previous return
/// value to checksum discontiguous spans as one message).  The empty-buffer
/// CRC of seed 0 is 0.
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

}  // namespace tracemod::sim
