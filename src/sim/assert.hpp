// Internal invariant checking for the tracemod libraries.
//
// TM_ASSERT checks protocol and data-structure invariants that indicate a
// programming error (never a configuration or input error; those throw
// typed exceptions instead).  Assertions stay enabled in release builds:
// this is a measurement tool, and a silently corrupted experiment is worse
// than an aborted one.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace tracemod::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "tracemod: assertion failed: %s (%s:%d)\n", expr, file,
               line);
  std::abort();
}

}  // namespace tracemod::detail

#define TM_ASSERT(expr)                                            \
  do {                                                             \
    if (!(expr))                                                   \
      ::tracemod::detail::assert_fail(#expr, __FILE__, __LINE__);  \
  } while (0)
