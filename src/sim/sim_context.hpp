// The per-simulation world: one SimContext per simulated universe.
//
// Everything mutable that a simulation needs -- virtual time, the root
// random stream, the packet-id counter, metrics -- lives here rather than
// in process globals.  That makes two properties structural instead of
// accidental:
//   - isolation: any number of simulations can run concurrently in one
//     process (one SimContext per thread/task) without sharing state;
//   - determinism: a simulation's behaviour is a pure function of its seed
//     and inputs, bit-identical regardless of what else the process runs.
// Components receive a SimContext& (or just its EventLoop&) from whoever
// builds the world; nothing reaches for a global.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_loop.hpp"
#include "sim/perf/alloc_telemetry.hpp"
#include "sim/random.hpp"
#include "sim/stats.hpp"
#include "sim/telemetry.hpp"

namespace tracemod::sim {

/// Named metric channels scoped to one simulation: monotonic counters,
/// histograms, and sim-time-sampled series.  References are stable for the
/// registry's lifetime (node-based maps), so hot paths can cache the
/// reference once and record without a lookup.  Registration is
/// idempotent: re-registering an existing name returns the same channel
/// (histogram shape arguments are ignored on the second call).
class MetricsRegistry {
 public:
  /// Returns the counter with the given name, creating it at zero.
  std::uint64_t& counter(const std::string& name);

  /// Current value, or 0 for a counter that was never touched.
  std::uint64_t value(const std::string& name) const;

  /// All counters in name order (for reports and tests).
  std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

  /// Returns the named histogram, creating it with the given shape.
  Histogram& histogram(const std::string& name, double lo, double hi,
                       std::size_t bins);

  /// Returns the named time series, creating it empty.
  TimeSeries& series(const std::string& name);

  /// Lookup without creation; nullptr when absent.
  const Histogram* find_histogram(const std::string& name) const;
  const TimeSeries* find_series(const std::string& name) const;

  /// All channels in name order (for exporters and tests).
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, TimeSeries>& series_channels() const {
    return series_;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, TimeSeries> series_;
};

class SimContext {
 public:
  explicit SimContext(std::uint64_t seed = 1) : seed_(seed), rng_(seed) {
    // Anchors the allocation-telemetry interposer (sim/perf/) into every
    // binary that simulates anything; costs one no-op call.
    perf::ensure_alloc_interposer();
  }

  /// Builds a world with telemetry configured up front, so every component
  /// constructed against this context can resolve its track handles in its
  /// constructor.  When cfg.enabled is false this is identical to
  /// SimContext(seed).
  SimContext(std::uint64_t seed, const TelemetryConfig& cfg)
      : seed_(seed), rng_(seed) {
    perf::ensure_alloc_interposer();
    telemetry_.enable(cfg);
    if (telemetry_.enabled()) loop_.set_profiler(&telemetry_.loop_profiler());
  }

  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;

  /// The seed this world was built from.
  std::uint64_t seed() const { return seed_; }

  EventLoop& loop() { return loop_; }
  const EventLoop& loop() const { return loop_; }

  /// The root random stream.  World builders draw sub-seeds and fork
  /// per-subsystem streams from it in a fixed order.
  Rng& rng() { return rng_; }

  /// Derives an independent child stream from the root.
  Rng fork_rng() { return rng_.fork(); }

  /// Packet ids, unique within this context (trace correlation and
  /// diagnostics).  Ids are dense from 1 in stamping order, so a context's
  /// id sequence is deterministic however many sibling contexts exist.
  std::uint64_t next_packet_id() { return next_packet_id_++; }
  std::uint64_t packet_ids_issued() const { return next_packet_id_ - 1; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// The context's observability sink (disabled by default; see
  /// sim/telemetry.hpp).  Components record through this; the runner
  /// captures it into a TelemetrySnapshot when the simulation ends.
  Telemetry& telemetry() { return telemetry_; }
  const Telemetry& telemetry() const { return telemetry_; }

 private:
  std::uint64_t seed_;
  EventLoop loop_;
  Rng rng_;
  std::uint64_t next_packet_id_ = 1;
  MetricsRegistry metrics_;
  Telemetry telemetry_;
};

}  // namespace tracemod::sim
