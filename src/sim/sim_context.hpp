// The per-simulation world: one SimContext per simulated universe.
//
// Everything mutable that a simulation needs -- virtual time, the root
// random stream, the packet-id counter, metrics -- lives here rather than
// in process globals.  That makes two properties structural instead of
// accidental:
//   - isolation: any number of simulations can run concurrently in one
//     process (one SimContext per thread/task) without sharing state;
//   - determinism: a simulation's behaviour is a pure function of its seed
//     and inputs, bit-identical regardless of what else the process runs.
// Components receive a SimContext& (or just its EventLoop&) from whoever
// builds the world; nothing reaches for a global.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/event_loop.hpp"
#include "sim/random.hpp"

namespace tracemod::sim {

/// Named monotonic counters scoped to one simulation.  Counter references
/// are stable for the registry's lifetime (node-based map), so hot paths
/// can cache the reference once and bump it without a lookup.
class MetricsRegistry {
 public:
  /// Returns the counter with the given name, creating it at zero.
  std::uint64_t& counter(const std::string& name);

  /// Current value, or 0 for a counter that was never touched.
  std::uint64_t value(const std::string& name) const;

  /// All counters in name order (for reports and tests).
  std::vector<std::pair<std::string, std::uint64_t>> snapshot() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
};

class SimContext {
 public:
  explicit SimContext(std::uint64_t seed = 1) : seed_(seed), rng_(seed) {}

  SimContext(const SimContext&) = delete;
  SimContext& operator=(const SimContext&) = delete;

  /// The seed this world was built from.
  std::uint64_t seed() const { return seed_; }

  EventLoop& loop() { return loop_; }
  const EventLoop& loop() const { return loop_; }

  /// The root random stream.  World builders draw sub-seeds and fork
  /// per-subsystem streams from it in a fixed order.
  Rng& rng() { return rng_; }

  /// Derives an independent child stream from the root.
  Rng fork_rng() { return rng_.fork(); }

  /// Packet ids, unique within this context (trace correlation and
  /// diagnostics).  Ids are dense from 1 in stamping order, so a context's
  /// id sequence is deterministic however many sibling contexts exist.
  std::uint64_t next_packet_id() { return next_packet_id_++; }
  std::uint64_t packet_ids_issued() const { return next_packet_id_ - 1; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

 private:
  std::uint64_t seed_;
  EventLoop loop_;
  Rng rng_;
  std::uint64_t next_packet_id_ = 1;
  MetricsRegistry metrics_;
};

}  // namespace tracemod::sim
