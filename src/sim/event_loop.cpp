#include "sim/event_loop.hpp"

#include <chrono>
#include <cstdio>

#include "sim/assert.hpp"
#include "sim/perf/perf.hpp"

namespace tracemod::sim {

std::string format_time(TimePoint t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6fs", to_seconds(t));
  return buf;
}

std::string format_duration(Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6fs", to_seconds(d));
  return buf;
}

EventId EventLoop::schedule_at(TimePoint t, std::function<void()> fn,
                               const char* tag) {
  TM_ASSERT(fn != nullptr);
  if (t < now_) t = now_;  // clamp: scheduling "in the past" fires at now
  const EventId id = next_id_++;
  queue_.push(Entry{t, next_seq_++, id, std::move(fn), tag});
  live_.insert(id);
  if (profiler_ != nullptr && live_.size() > profiler_->queue_high_water) {
    profiler_->queue_high_water = live_.size();
  }
  return id;
}

bool EventLoop::cancel(EventId id) {
  if (id == 0 || live_.erase(id) == 0) return false;
  // The entry (and its captured std::function state) stays in the heap
  // until popped or compacted.  Compact once dead entries dominate, so a
  // component that repeatedly arms and cancels a Timer cannot grow the
  // heap without bound.
  ++dead_in_queue_;
  constexpr std::size_t kCompactionMinEntries = 64;
  if (queue_.size() >= kCompactionMinEntries &&
      dead_in_queue_ > queue_.size() / 2) {
    compact();
  }
  return true;
}

void EventLoop::compact() {
  std::vector<Entry> keep;
  keep.reserve(live_.size());
  while (!queue_.empty()) {
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (live_.count(e.id) != 0) keep.push_back(std::move(e));
  }
  queue_ = decltype(queue_)(Later{}, std::move(keep));
  dead_in_queue_ = 0;
}

bool EventLoop::dispatch_one() {
  while (!queue_.empty()) {
    Entry e = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (live_.erase(e.id) == 0) {  // cancelled
      if (dead_in_queue_ > 0) --dead_in_queue_;
      continue;
    }
    TM_ASSERT(e.at >= now_);
    now_ = e.at;
    ++dispatched_;
    // The wall-clock perf plane observes only (virtual time is untouched
    // and no randomness is drawn); when no profiler is attached to this
    // thread the two hooks cost a TLS load plus a predicted branch.
    perf::PerfProfiler* const pp = perf::current();
    if (pp != nullptr) pp->on_dispatch(now_, live_.size());
    if (profiler_ == nullptr) {
      perf::PerfScope scope(pp, perf::Domain::kEventLoop,
                            e.tag != nullptr ? e.tag : "(untagged)");
      e.fn();
      return true;
    }
    const auto t0 = std::chrono::steady_clock::now();
    {
      perf::PerfScope scope(pp, perf::Domain::kEventLoop,
                            e.tag != nullptr ? e.tag : "(untagged)");
      e.fn();
    }
    const std::chrono::duration<double> self =
        std::chrono::steady_clock::now() - t0;
    profiler_->note(e.tag, self.count());
    return true;
  }
  return false;
}

bool EventLoop::step() { return dispatch_one(); }

void EventLoop::run() {
  while (dispatch_one()) {
  }
}

void EventLoop::run_until(TimePoint t) {
  while (!queue_.empty()) {
    // Skip over cancelled entries to find the real next event time.
    if (live_.count(queue_.top().id) == 0) {
      queue_.pop();
      if (dead_in_queue_ > 0) --dead_in_queue_;
      continue;
    }
    if (queue_.top().at > t) break;
    dispatch_one();
  }
  if (now_ < t) now_ = t;
}

}  // namespace tracemod::sim
