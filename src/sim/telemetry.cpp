#include "sim/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <set>

#include "sim/sim_context.hpp"

namespace tracemod::sim {

namespace {

std::string fmt(const char* f, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

/// Prometheus metric identifier: [a-zA-Z0-9_], everything else becomes '_'.
std::string prom_name(const std::string& name) {
  std::string out = "tracemod_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

std::string run_label(const std::string& label) {
  return label.empty() ? "" : "{run=\"" + json_escape(label) + "\"}";
}

std::size_t distinct_nodes(const std::vector<Track>& tracks) {
  std::set<std::string> nodes;
  for (const Track& t : tracks) nodes.insert(t.node);
  return nodes.size();
}

}  // namespace

std::size_t TelemetrySnapshot::distinct_layers() const {
  std::set<std::string> layers;
  for (const Track& t : tracks) layers.insert(t.layer);
  return layers.size();
}

TelemetrySnapshot capture_telemetry(const SimContext& ctx) {
  TelemetrySnapshot snap;
  const Telemetry& tel = ctx.telemetry();
  if (tel.enabled()) {
    snap.tracks = tel.recorder().tracks();
    snap.events = tel.recorder().events();
    snap.events_dropped = tel.recorder().dropped();
  }
  snap.counters = ctx.metrics().snapshot();
  for (const auto& [name, hist] : ctx.metrics().histograms()) {
    snap.histograms.emplace_back(name, hist);
  }
  for (const auto& [name, series] : ctx.metrics().series_channels()) {
    snap.series.emplace_back(name, series);
  }
  snap.profiler = tel.loop_profiler();
  return snap;
}

void write_chrome_trace(std::ostream& out, const TelemetrySnapshot& snap) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  write_chrome_trace_events(out, snap.tracks, snap.events);
  out << "\n]}\n";
}

void write_chrome_trace(std::ostream& out,
                        const std::vector<LabeledTelemetry>& snaps) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  int pid_base = 0;
  bool continuation = false;
  for (const LabeledTelemetry& s : snaps) {
    if (s.snapshot == nullptr) continue;
    write_chrome_trace_events(out, s.snapshot->tracks, s.snapshot->events,
                              s.label, pid_base, continuation);
    pid_base += static_cast<int>(distinct_nodes(s.snapshot->tracks));
    continuation = continuation || !s.snapshot->tracks.empty();
  }
  out << "\n]}\n";
}

void write_metrics_text(std::ostream& out, const TelemetrySnapshot& snap,
                        const std::string& label) {
  const std::string run = run_label(label);
  for (const auto& [name, value] : snap.counters) {
    const std::string id = prom_name(name);
    out << "# TYPE " << id << " counter\n";
    out << id << run << " " << value << "\n";
  }
  for (const auto& [name, hist] : snap.histograms) {
    const std::string id = prom_name(name);
    out << "# TYPE " << id << " histogram\n";
    std::size_t cumulative = 0;
    for (std::size_t i = 0; i < hist.bins(); ++i) {
      cumulative += hist.bin_count(i);
      out << id << "_bucket{";
      if (!label.empty()) out << "run=\"" << json_escape(label) << "\",";
      out << "le=\"" << fmt("%.6g", hist.bin_hi(i)) << "\"} " << cumulative
          << "\n";
    }
    out << id << "_bucket{";
    if (!label.empty()) out << "run=\"" << json_escape(label) << "\",";
    out << "le=\"+Inf\"} " << hist.total() << "\n";
    out << id << "_sum" << run << " " << fmt("%.6g", hist.sum()) << "\n";
    out << id << "_count" << run << " " << hist.total() << "\n";
  }
  for (const auto& [name, series] : snap.series) {
    const std::string id = prom_name(name);
    const RunningStats& s = series.stats();
    out << "# TYPE " << id << " gauge\n";
    out << id << "_last" << run << " " << fmt("%.6g", series.last()) << "\n";
    out << id << "_max" << run << " " << fmt("%.6g", s.max()) << "\n";
    out << id << "_mean" << run << " " << fmt("%.6g", s.mean()) << "\n";
    out << id << "_samples" << run << " " << s.count() << "\n";
  }
}

void write_metrics_text(std::ostream& out,
                        const std::vector<LabeledTelemetry>& snaps) {
  for (const LabeledTelemetry& s : snaps) {
    if (s.snapshot == nullptr) continue;
    write_metrics_text(out, *s.snapshot, s.label);
  }
}

void write_report(std::ostream& out, const TelemetrySnapshot& snap,
                  bool include_wall_time) {
  out << "== telemetry report ==\n";
  out << "[flight recorder] " << snap.events.size() << " events on "
      << snap.tracks.size() << " tracks (" << snap.distinct_layers()
      << " layers, " << snap.events_dropped << " dropped)\n";
  std::vector<std::size_t> per_track(snap.tracks.size(), 0);
  for (const TraceEvent& e : snap.events) {
    if (e.track != kNoTrack && e.track <= snap.tracks.size()) {
      ++per_track[e.track - 1];
    }
  }
  for (std::size_t i = 0; i < snap.tracks.size(); ++i) {
    out << "  " << snap.tracks[i].node << "/" << snap.tracks[i].layer << ": "
        << per_track[i] << " events\n";
  }
  out << "[series]\n";
  for (const auto& [name, series] : snap.series) {
    const RunningStats& s = series.stats();
    out << "  " << name << ": n=" << s.count()
        << " mean=" << fmt("%.3f", s.mean()) << " max=" << fmt("%.3f", s.max())
        << " last=" << fmt("%.3f", series.last()) << "\n";
  }
  out << "[histograms]\n";
  for (const auto& [name, hist] : snap.histograms) {
    out << hist.render("  " + name);
  }
  out << "[counters]\n";
  for (const auto& [name, value] : snap.counters) {
    out << "  " << name << " = " << value << "\n";
  }
  out << "[event loop] dispatched=" << snap.profiler.dispatched
      << " queue-high-water=" << snap.profiler.queue_high_water << "\n";
  for (const auto& [tag, stats] : snap.profiler.by_tag) {
    out << "  " << tag << ": count=" << stats.count;
    if (include_wall_time) {
      out << " self=" << fmt("%.3f", stats.self_seconds * 1e3) << "ms";
    }
    out << "\n";
  }
}

}  // namespace tracemod::sim
