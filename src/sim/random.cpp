#include "sim/random.hpp"

#include <cmath>

#include "sim/assert.hpp"

namespace tracemod::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

Rng Rng::fork() { return Rng(next_u64()); }

std::uint64_t Rng::next_u64() {
  // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 top bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  TM_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  TM_ASSERT(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % span);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  TM_ASSERT(mean > 0.0);
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::pareto(double alpha, double lo, double hi) {
  TM_ASSERT(alpha > 0.0 && lo > 0.0 && lo <= hi);
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  const double u = uniform();
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

}  // namespace tracemod::sim
