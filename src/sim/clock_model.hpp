// Imperfect host clocks.
//
// The paper's distillation uses only single-host timestamps because the
// ThinkPad's clock drifted too much for one-way measurements (Section 3.2.2).
// ClockModel turns true virtual time into what such a host would read:
// a constant frequency skew plus bounded random jitter.  The symmetry-
// assumption ablation uses two of these to show what synchronized low-drift
// clocks would buy.
#pragma once

#include "sim/random.hpp"
#include "sim/time.hpp"

namespace tracemod::sim {

class ClockModel {
 public:
  struct Config {
    double skew_ppm = 0.0;        ///< constant frequency error, parts/million
    Duration offset{};            ///< initial offset from true time
    Duration jitter{};            ///< +/- uniform read jitter
  };

  ClockModel() : ClockModel(Config{}, Rng(1)) {}
  ClockModel(const Config& cfg, Rng rng) : cfg_(cfg), rng_(rng) {}

  /// What this host's clock reads when true time is t.
  TimePoint read(TimePoint t) {
    const double skewed =
        to_seconds(t) * (1.0 + cfg_.skew_ppm * 1e-6) + to_seconds(cfg_.offset);
    Duration j{};
    if (cfg_.jitter.count() > 0) {
      j = Duration{rng_.uniform_int(-cfg_.jitter.count(), cfg_.jitter.count())};
    }
    return TimePoint{from_seconds(skewed) + j};
  }

  const Config& config() const { return cfg_; }

 private:
  Config cfg_;
  Rng rng_;
};

}  // namespace tracemod::sim
