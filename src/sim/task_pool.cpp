#include "sim/task_pool.hpp"

#include <atomic>
#include <exception>
#include <stdexcept>
#include <string>

#include "sim/assert.hpp"

namespace tracemod::sim {

namespace {
/// True on threads owned by a TaskPool; run_all asserts against it because
/// a worker calling run_all would wait forever for its own slot.
thread_local bool tl_pool_worker = false;
}  // namespace

TaskPool::TaskPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void TaskPool::worker_main() {
  tl_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stop_ and drained
      task = std::move(pending_.front());
      pending_.pop_front();
    }
    task();
  }
}

void TaskPool::run_all(std::vector<std::function<void()>> tasks) {
  TM_ASSERT(!tl_pool_worker);  // reentrant run_all deadlocks on its own slot
  if (tasks.empty()) return;

  struct Batch {
    std::atomic<std::size_t> remaining;
    std::mutex done_mu;
    std::condition_variable done_cv;
    std::mutex err_mu;
    std::vector<std::exception_ptr> errors;
  };
  Batch batch;
  batch.remaining.store(tasks.size());
  const std::size_t total = tasks.size();

  {
    std::lock_guard<std::mutex> lock(mu_);
    TM_ASSERT(!stop_);
    for (auto& t : tasks) {
      pending_.push_back([&batch, fn = std::move(t)] {
        try {
          fn();
        } catch (...) {
          std::lock_guard<std::mutex> el(batch.err_mu);
          batch.errors.push_back(std::current_exception());
        }
        // Signal under the lock so the waiter cannot miss the last task
        // finishing between its predicate check and its wait.
        std::lock_guard<std::mutex> dl(batch.done_mu);
        batch.remaining.fetch_sub(1);
        batch.done_cv.notify_all();
      });
    }
  }
  work_cv_.notify_all();

  std::unique_lock<std::mutex> lock(batch.done_mu);
  batch.done_cv.wait(lock, [&batch] { return batch.remaining.load() == 0; });
  if (batch.errors.empty()) return;
  if (batch.errors.size() == 1) std::rethrow_exception(batch.errors.front());
  // Several tasks failed; none may be silently swallowed.  The combined
  // error carries the count and one representative message (the first
  // collected, which depends on scheduling).
  std::string first_what = "unknown exception";
  try {
    std::rethrow_exception(batch.errors.front());
  } catch (const std::exception& e) {
    first_what = e.what();
  } catch (...) {
  }
  throw std::runtime_error(std::to_string(batch.errors.size()) + " of " +
                           std::to_string(total) +
                           " tasks failed; first: " + first_what);
}

}  // namespace tracemod::sim
