// Tool identity, stamped into every emitted artifact.
//
// kToolVersion tracks the PR sequence (major.minor = era.PR); bump it in
// the PR that changes any on-disk schema.  Every JSON document the repo
// emits carries a "tool_version" field with this string so a snapshot's
// provenance is auditable long after the binary that wrote it is gone
// (`tracemod version` prints the same inventory interactively).  The
// binary formats are versioned separately, in their own headers:
//   - trace format v2        (trace/trace_io.hpp, per-record CRC32C)
//   - TMSJ v1                (scenarios/supervisor.cpp, sweep journal)
//   - TMDJ v1                (core/stream_distiller.cpp, distill checkpoints)
//   - TMST v1                (sim/status/status.hpp, live status snapshots)
#pragma once

namespace tracemod {

inline constexpr const char* kToolVersion = "0.9.0";

/// Every JSON schema kind the tool suite emits, for `tracemod version`.
/// Append-only: a schema change mints a new kind (…-v2), it never mutates
/// an existing one.
inline constexpr const char* kJsonSchemaKinds[] = {
    "tracemod-sweep-v1",
    "tracemod-campus-v1",
    "tracemod-distill-v1",
    "tracemod-perf-v1",
    "tracemod-perf-gate-v1",
    "tracemod-fidelity-v1",
    "tracemod-fidelity-trajectory-v1",
    "tracemod-campus-bench-v1",
    "tracemod-corpus-bench-v1",
    "tracemod-status-v1",
};

/// Build type as stamped by CMake (TRACEMOD_BUILD_TYPE, lower-cased), or
/// "unknown" for generators that did not stamp one.  Mirrors
/// bench/build_guard.hpp, which additionally enforces Release-only
/// benchmarking on top of this value.
inline const char* build_type() {
#if defined(TRACEMOD_BUILD_TYPE)
  return TRACEMOD_BUILD_TYPE[0] != '\0' ? TRACEMOD_BUILD_TYPE : "unknown";
#else
  return "unknown";
#endif
}

}  // namespace tracemod
