// Trace records (RFC 2041 spirit: packet traffic + device characteristics).
//
// Collection logs every outgoing and incoming packet with protocol-specific
// fields, plus periodic WaveLAN device readings, plus explicit markers for
// records lost to kernel-buffer overruns (paper Section 3.1).
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"
#include "wireless/signal_model.hpp"

namespace tracemod::trace {

enum class PacketDirection : std::uint8_t { kOutgoing = 0, kIncoming = 1 };

enum class IcmpKind : std::uint8_t { kNone = 0, kEcho = 1, kEchoReply = 2 };

struct PacketRecord {
  sim::TimePoint at{};          ///< collection-host clock reading
  PacketDirection dir = PacketDirection::kOutgoing;
  net::Protocol protocol = net::Protocol::kUdp;
  std::uint32_t ip_bytes = 0;   ///< IP datagram size
  // ICMP workload fields (paper Section 3.1.1).
  IcmpKind icmp_kind = IcmpKind::kNone;
  std::uint16_t icmp_id = 0;    ///< pid of the generating process
  std::uint16_t icmp_seq = 0;
  sim::TimePoint echo_origin{}; ///< generation timestamp from the payload
  // Transport fields where relevant.
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint64_t tcp_seq = 0;
  std::uint8_t tcp_flags = 0;   ///< bit0 SYN, bit1 ACK, bit2 FIN, bit3 RST

  /// Round-trip time for an ECHOREPLY: receive time minus the origin
  /// timestamp carried in the payload.  Single-host clock, no sync needed.
  sim::Duration rtt() const { return at - echo_origin; }
};

struct DeviceRecord {
  sim::TimePoint at{};
  double signal_level = 0.0;
  double signal_quality = 0.0;
  double silence_level = 0.0;
};

/// Emitted when the kernel buffer overran; counts what was lost, by type.
struct LostRecords {
  sim::TimePoint at{};
  std::uint32_t lost_packet_records = 0;
  std::uint32_t lost_device_records = 0;
};

using TraceRecord = std::variant<PacketRecord, DeviceRecord, LostRecords>;

/// Timestamp of any record.
sim::TimePoint record_time(const TraceRecord& r);

/// A complete collected trace plus query helpers used by the distiller.
struct CollectedTrace {
  std::vector<TraceRecord> records;

  std::vector<PacketRecord> echo_replies() const;
  std::vector<PacketRecord> echoes_sent() const;
  std::vector<DeviceRecord> device_records() const;
  std::uint64_t total_lost_records() const;
  sim::Duration duration() const;
};

}  // namespace tracemod::trace
