#include "trace/synthetic_corpus.hpp"

#include <algorithm>
#include <array>
#include <utility>
#include <vector>

#include "sim/random.hpp"
#include "trace/records.hpp"
#include "trace/stream_reader.hpp"

namespace tracemod::trace {

namespace {

PacketRecord echo(sim::TimePoint at, std::uint16_t seq,
                  std::uint32_t ip_bytes) {
  PacketRecord p;
  p.at = at;
  p.dir = PacketDirection::kOutgoing;
  p.protocol = net::Protocol::kIcmp;
  p.ip_bytes = ip_bytes;
  p.icmp_kind = IcmpKind::kEcho;
  p.icmp_id = 97;
  p.icmp_seq = seq;
  p.echo_origin = at;
  return p;
}

PacketRecord reply(const PacketRecord& sent, sim::Duration rtt) {
  PacketRecord p = sent;
  p.dir = PacketDirection::kIncoming;
  p.icmp_kind = IcmpKind::kEchoReply;
  p.at = sent.at + rtt;
  return p;
}

}  // namespace

CorpusInfo generate_ping_corpus(const std::string& path,
                                const CorpusSpec& spec) {
  TraceStreamWriter writer(path);
  sim::Rng rng(spec.seed);
  CorpusInfo info;

  // Slowly wandering network state: one-way latency F and total per-byte
  // delay V (with a fixed bottleneck share), random-walked per group so
  // the distilled track has structure worth auditing.
  double f_s = 0.008;
  double v_per_byte = 2e-6;
  const double vb_share = 0.6;

  const sim::TimePoint t_stop = sim::kEpoch + spec.duration;
  std::uint16_t seq = 0;
  std::uint64_t device_frame_est = 48;  // refined from the first append

  for (sim::TimePoint t = sim::kEpoch; t < t_stop; t += spec.group_interval) {
    f_s = std::clamp(f_s + rng.uniform(-0.0015, 0.0015), 0.002, 0.040);
    v_per_byte =
        std::clamp(v_per_byte + rng.uniform(-2e-7, 2e-7), 5e-7, 8e-6);
    const double vb = v_per_byte * vb_share;

    const double s1 = spec.small_bytes;
    const double s2 = spec.large_bytes;
    const std::array<PacketRecord, 3> sent = {
        echo(t, seq, spec.small_bytes),
        echo(t + sim::microseconds(200),
             static_cast<std::uint16_t>(seq + 1), spec.large_bytes),
        echo(t + sim::microseconds(400),
             static_cast<std::uint16_t>(seq + 2), spec.large_bytes),
    };
    seq = static_cast<std::uint16_t>(seq + 3);
    ++info.groups;

    // Round trips from the paper's delay model: equations (5)-(8) solved
    // forward.  The third large packet queues behind the second at the
    // bottleneck, adding one bottleneck service time.
    const double t1 = 2.0 * (f_s + s1 * v_per_byte);
    const double t2 = 2.0 * (f_s + s2 * v_per_byte);
    const double t3 = t2 + s2 * vb;
    const std::array<double, 3> rtts = {t1, t2, t3};

    std::vector<PacketRecord> events(sent.begin(), sent.end());
    for (std::size_t i = 0; i < 3; ++i) {
      if (rng.chance(spec.reply_loss)) {
        ++info.replies_dropped;
        continue;
      }
      events.push_back(reply(sent[i], sim::from_seconds(rtts[i])));
    }
    std::stable_sort(events.begin(), events.end(),
                     [](const PacketRecord& a, const PacketRecord& b) {
                       return a.at < b.at;
                     });
    sim::TimePoint last = t;
    for (const PacketRecord& p : events) {
      writer.append(p);
      last = p.at;
    }

    // Device-record padding toward the proportional size target, strictly
    // inside (last event, next group) so the record stream stays in time
    // order.
    if (spec.target_bytes > 0) {
      const sim::TimePoint t_next = t + spec.group_interval;
      const double frac =
          sim::to_seconds(t_next) / sim::to_seconds(spec.duration);
      const auto target_now = static_cast<std::uint64_t>(
          static_cast<double>(spec.target_bytes) * std::min(1.0, frac));
      if (writer.bytes_written() < target_now && t_next > last) {
        const std::uint64_t deficit = target_now - writer.bytes_written();
        const std::uint64_t n =
            std::max<std::uint64_t>(1, deficit / device_frame_est);
        const sim::Duration dt =
            (t_next - last) / static_cast<std::int64_t>(n + 1);
        sim::TimePoint at = last;
        for (std::uint64_t k = 0;
             k < n && writer.bytes_written() < target_now; ++k) {
          at += dt;
          DeviceRecord d;
          d.at = at;
          d.signal_level = 20.0 + 10.0 * rng.uniform();
          d.signal_quality = 10.0 + 5.0 * rng.uniform();
          d.silence_level = 5.0 * rng.uniform();
          const std::uint64_t before = writer.bytes_written();
          writer.append(d);
          device_frame_est =
              std::max<std::uint64_t>(1, writer.bytes_written() - before);
        }
      }
    }
  }

  writer.finalize();
  info.records = writer.records_written();
  info.bytes = writer.bytes_written();
  return info;
}

}  // namespace tracemod::trace
