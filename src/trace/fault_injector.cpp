#include "trace/fault_injector.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "sim/metric_names.hpp"
#include "sim/sim_context.hpp"
#include "trace/kernel_buffer.hpp"

namespace tracemod::trace {

FaultInjector::FaultInjector(sim::Rng rng, sim::MetricsRegistry* metrics)
    : rng_(rng), metrics_(metrics) {}

void FaultInjector::flip_bytes(std::string& bytes, std::size_t flips,
                               std::size_t protect_prefix) {
  if (bytes.size() <= protect_prefix) return;
  for (std::size_t i = 0; i < flips; ++i) {
    const auto pos = static_cast<std::size_t>(rng_.uniform_int(
        static_cast<std::int64_t>(protect_prefix),
        static_cast<std::int64_t>(bytes.size()) - 1));
    const auto bit = static_cast<unsigned>(rng_.uniform_int(0, 7));
    bytes[pos] = static_cast<char>(
        static_cast<unsigned char>(bytes[pos]) ^ (1u << bit));
  }
}

void FaultInjector::flip_bytes_in_range(std::string& bytes, std::size_t flips,
                                        std::size_t begin, std::size_t end) {
  end = std::min(end, bytes.size());
  if (begin >= end) return;
  for (std::size_t i = 0; i < flips; ++i) {
    const auto pos = static_cast<std::size_t>(
        rng_.uniform_int(static_cast<std::int64_t>(begin),
                         static_cast<std::int64_t>(end) - 1));
    const auto bit = static_cast<unsigned>(rng_.uniform_int(0, 7));
    bytes[pos] = static_cast<char>(
        static_cast<unsigned char>(bytes[pos]) ^ (1u << bit));
  }
}

std::size_t FaultInjector::flip_file_range(const std::string& path,
                                           std::size_t flips,
                                           std::uint64_t begin,
                                           std::uint64_t end) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  if (!f) return 0;
  f.seekg(0, std::ios::end);
  const auto size = static_cast<std::uint64_t>(f.tellg());
  if (end == 0 || end > size) end = size;
  if (begin >= end) return 0;
  std::size_t applied = 0;
  for (std::size_t i = 0; i < flips; ++i) {
    const auto pos = static_cast<std::uint64_t>(
        rng_.uniform_int(static_cast<std::int64_t>(begin),
                         static_cast<std::int64_t>(end) - 1));
    const auto bit = static_cast<unsigned>(rng_.uniform_int(0, 7));
    char c = 0;
    f.seekg(static_cast<std::streamoff>(pos));
    f.read(&c, 1);
    c = static_cast<char>(static_cast<unsigned char>(c) ^ (1u << bit));
    f.seekp(static_cast<std::streamoff>(pos));
    f.write(&c, 1);
    if (!f) return applied;
    ++applied;
  }
  f.flush();
  return f ? applied : 0;
}

std::optional<std::uint64_t> FaultInjector::truncate_file(
    const std::string& path, std::uint64_t min_keep) {
  std::error_code ec;
  const std::uint64_t size = std::filesystem::file_size(path, ec);
  if (ec || size <= min_keep) return std::nullopt;
  const auto keep = static_cast<std::uint64_t>(
      rng_.uniform_int(static_cast<std::int64_t>(min_keep),
                       static_cast<std::int64_t>(size) - 1));
  std::filesystem::resize_file(path, keep, ec);
  if (ec) return std::nullopt;
  return keep;
}

void FaultInjector::truncate_bytes(std::string& bytes, std::size_t min_keep) {
  if (bytes.size() <= min_keep) return;
  const auto keep = static_cast<std::size_t>(rng_.uniform_int(
      static_cast<std::int64_t>(min_keep),
      static_cast<std::int64_t>(bytes.size()) - 1));
  bytes.resize(keep);
}

std::string FaultInjector::mutate_once(std::string bytes,
                                       std::size_t protect_prefix) {
  if (rng_.chance(0.5)) {
    flip_bytes(bytes, 1, protect_prefix);
  } else {
    truncate_bytes(bytes, protect_prefix);
  }
  return bytes;
}

void FaultInjector::drop_records(CollectedTrace& trace, std::size_t n) {
  for (std::size_t i = 0; i < n && !trace.records.empty(); ++i) {
    const auto pos = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(trace.records.size()) - 1));
    trace.records.erase(trace.records.begin() +
                        static_cast<std::ptrdiff_t>(pos));
  }
}

void FaultInjector::duplicate_records(CollectedTrace& trace, std::size_t n) {
  for (std::size_t i = 0; i < n && !trace.records.empty(); ++i) {
    const auto pos = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(trace.records.size()) - 1));
    TraceRecord copy = trace.records[pos];
    trace.records.insert(trace.records.begin() +
                             static_cast<std::ptrdiff_t>(pos),
                         std::move(copy));
  }
}

std::optional<sim::Duration> FaultInjector::daemon_stall(
    const DaemonFaultConfig& cfg) {
  if (cfg.stall_chance <= 0.0 || !rng_.chance(cfg.stall_chance)) {
    return std::nullopt;
  }
  if (metrics_ != nullptr) {
    ++metrics_->counter(sim::metric::kDaemonStarvedTicks);
  }
  return cfg.stall;
}

sim::Duration FaultInjector::daemon_wakeup(const DaemonFaultConfig& cfg,
                                           sim::Duration base) const {
  if (cfg.wakeup_factor == 1.0) return base;
  return sim::from_seconds(sim::to_seconds(base) *
                           std::max(cfg.wakeup_factor, 0.0));
}

void FaultInjector::pressure_kernel_buffer(KernelBuffer& buf,
                                           double capacity_fraction) {
  const double clamped = std::clamp(capacity_fraction, 0.0, 1.0);
  const auto reduced = static_cast<std::size_t>(
      static_cast<double>(buf.capacity()) * clamped);
  buf.set_capacity(std::max<std::size_t>(reduced, 1));
  buf.set_pressure_metrics(metrics_);
}

}  // namespace tracemod::trace
