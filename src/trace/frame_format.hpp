// On-disk primitives shared by every component that touches the trace
// container: the in-memory reader facade (trace_io.cpp), the incremental
// reader/writer (stream_reader.cpp), and the streaming distiller's window
// re-scan.  One definition of the frame layout keeps the salvage semantics
// of all of them byte-identical.
//
// Layout recap (trace_io.hpp documents the container): a v2 frame is
//   tag u8 | payload length u32 | crc32c u32 | payload bytes
// with the CRC covering the tag byte followed by the payload.
#pragma once

#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <string>

#include "trace/records.hpp"
#include "trace/trace_io.hpp"

namespace tracemod::trace::wire {

inline constexpr char kMagic[4] = {'T', 'M', 'T', 'R'};

// v2 frame: tag u8 | payload length u32 | crc32c u32 | payload.
inline constexpr std::size_t kFrameHeaderBytes = 1 + 4 + 4;
// Real payloads are <= 40 bytes today; anything past this bound is a
// corrupted length, not a future record type.
inline constexpr std::size_t kMaxRecordPayload = 4096;
// Smallest on-disk record across both versions (v1 LostRecords: tag + time +
// two u32 counters).  Used to clamp the header count before reserving.
inline constexpr std::size_t kMinRecordBytes = 17;
// Worst-case bytes a reader must see past any position to make the same
// frame decision an in-memory parse would: a full header plus the largest
// plausible payload.
inline constexpr std::size_t kMaxFrameBytes =
    kFrameHeaderBytes + kMaxRecordPayload;

enum class RecordTag : std::uint8_t {
  kPacket = 1,
  kDevice = 2,
  kLost = 3,
};

bool known_tag(std::uint8_t tag);

std::uint32_t frame_crc(std::uint8_t tag, const unsigned char* payload,
                        std::size_t len);

// --- in-memory parse cursor -------------------------------------------------
//
// A bounds-checked view over a byte span that knows its absolute offset in
// the stream and the index of the record being decoded, so every failure
// can say exactly where it happened.  The streaming reader parks one of
// these over its buffered window; the offsets it reports are identical to a
// whole-file slurp's.

struct Cursor {
  const unsigned char* data;
  std::size_t size;
  std::size_t pos = 0;
  std::size_t base = 0;          ///< absolute offset of data[0] in the stream
  std::uint64_t record = 0;      ///< record index, for error messages

  std::size_t remaining() const { return size - pos; }
  std::uint64_t offset() const { return base + pos; }

  [[noreturn]] void fail(const std::string& what) const {
    throw TraceFormatError(what, offset(), record);
  }

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) fail("unexpected end of stream");
    T v;
    std::memcpy(&v, data + pos, sizeof(T));
    pos += sizeof(T);
    return v;
  }

  std::string get_string() {
    const auto n = get<std::uint16_t>();
    if (remaining() < n) fail("unexpected end of stream in string");
    std::string s(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return s;
  }

  sim::TimePoint get_time() {
    return sim::TimePoint{sim::Duration{get<std::int64_t>()}};
  }
};

/// True when the bytes at `pos` look like a decodable frame header whose
/// payload fits in [data, data+size) and whose CRC validates.
bool frame_validates(const unsigned char* data, std::size_t size,
                     std::size_t pos);

// --- record payload codecs --------------------------------------------------

void encode_payload(std::string& buf, const TraceRecord& r, RecordTag* tag);

/// Decodes one record body (sans tag) from the cursor.  Shared by the v1
/// reader (cursor over the record run) and the v2 reader (cursor over one
/// frame's payload).
TraceRecord decode_payload(RecordTag tag, Cursor& cur);

// --- container header -------------------------------------------------------

/// Serializes magic | version | schema table | record count.  Returns the
/// absolute byte offset of the count field so a streaming writer can patch
/// it on finalize.  Throws TraceFormatError on an unsupported version.
std::uint64_t write_container_header(std::ostream& out, std::uint16_t version,
                                     std::uint64_t count);

/// One fully framed record (v1: bare tag + payload; v2: checksummed frame).
std::string encode_frame(const TraceRecord& r, std::uint16_t version);

}  // namespace tracemod::trace::wire
