// In-kernel trace collection (paper Section 3.1.2).
//
// TraceTap hooks the input and output routines of a traced device (it is a
// DeviceShim between IP and the link layer), copies relevant header fields
// of every traced packet into a fixed-size kernel buffer, and periodically
// samples the wireless device's signal characteristics into the same
// buffer.  It exposes the paper's pseudo-device interface: open() enables
// tracing, close() disables it, read() extracts records.  A user-level
// CollectionDaemon drains the pseudo-device periodically.
#pragma once

#include <functional>
#include <memory>
#include <optional>

#include "net/device.hpp"
#include "sim/clock_model.hpp"
#include "sim/event_loop.hpp"
#include "trace/kernel_buffer.hpp"

namespace tracemod::trace {

struct TraceTapConfig {
  std::size_t buffer_capacity = 8192;
  sim::Duration device_sample_period = sim::seconds(1);
};

class TraceTap : public net::DeviceShim {
 public:
  /// signal_source may be empty (wired device: no device records).
  /// clock is the collection host's (possibly drifting) clock.
  TraceTap(std::unique_ptr<net::NetDevice> inner, sim::EventLoop& loop,
           sim::ClockModel& clock,
           std::function<wireless::SignalInfo()> signal_source,
           TraceTapConfig cfg = {});

  // --- pseudo-device interface ---
  void open();
  void close();
  bool is_open() const { return open_; }
  /// Drains up to max_records; prefixes a LostRecords marker after overruns.
  std::vector<TraceRecord> read(std::size_t max_records);

  const KernelBuffer& buffer() const { return buffer_; }
  /// Mutable access for fault drills (FaultInjector::pressure_kernel_buffer
  /// shrinks the capacity so overruns emit LostRecords markers).
  KernelBuffer& buffer() { return buffer_; }

 protected:
  void on_outbound(net::Packet pkt) override;
  void on_inbound(net::Packet pkt) override;

 private:
  void record_packet(const net::Packet& pkt, PacketDirection dir);
  void sample_device();

  sim::EventLoop& loop_;
  sim::ClockModel& clock_;
  std::function<wireless::SignalInfo()> signal_source_;
  TraceTapConfig cfg_;
  KernelBuffer buffer_;
  sim::Timer sample_timer_;
  bool open_ = false;
};

/// User-level daemon: periodically extracts collected data from the
/// pseudo-device and appends it to an in-memory trace (standing in for the
/// paper's on-disk trace file; use trace_io to persist).
class CollectionDaemon {
 public:
  CollectionDaemon(sim::EventLoop& loop, TraceTap& tap,
                   sim::Duration period = sim::milliseconds(100),
                   std::size_t read_chunk = 512);

  /// Opens the pseudo-device and starts draining.
  void start();
  /// Final drain, then closes the pseudo-device.
  void stop();

  const CollectedTrace& trace() const { return trace_; }
  CollectedTrace take_trace() { return std::move(trace_); }

 private:
  void drain();

  sim::EventLoop& loop_;
  TraceTap& tap_;
  sim::Duration period_;
  std::size_t read_chunk_;
  sim::Timer timer_;
  CollectedTrace trace_;
  bool running_ = false;
};

}  // namespace tracemod::trace
