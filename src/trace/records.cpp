#include "trace/records.hpp"

namespace tracemod::trace {

sim::TimePoint record_time(const TraceRecord& r) {
  return std::visit([](const auto& rec) { return rec.at; }, r);
}

std::vector<PacketRecord> CollectedTrace::echo_replies() const {
  std::vector<PacketRecord> out;
  for (const TraceRecord& r : records) {
    if (const auto* p = std::get_if<PacketRecord>(&r)) {
      if (p->icmp_kind == IcmpKind::kEchoReply &&
          p->dir == PacketDirection::kIncoming) {
        out.push_back(*p);
      }
    }
  }
  return out;
}

std::vector<PacketRecord> CollectedTrace::echoes_sent() const {
  std::vector<PacketRecord> out;
  for (const TraceRecord& r : records) {
    if (const auto* p = std::get_if<PacketRecord>(&r)) {
      if (p->icmp_kind == IcmpKind::kEcho &&
          p->dir == PacketDirection::kOutgoing) {
        out.push_back(*p);
      }
    }
  }
  return out;
}

std::vector<DeviceRecord> CollectedTrace::device_records() const {
  std::vector<DeviceRecord> out;
  for (const TraceRecord& r : records) {
    if (const auto* d = std::get_if<DeviceRecord>(&r)) out.push_back(*d);
  }
  return out;
}

std::uint64_t CollectedTrace::total_lost_records() const {
  std::uint64_t n = 0;
  for (const TraceRecord& r : records) {
    if (const auto* l = std::get_if<LostRecords>(&r)) {
      n += l->lost_packet_records + l->lost_device_records;
    }
  }
  return n;
}

sim::Duration CollectedTrace::duration() const {
  if (records.empty()) return {};
  return record_time(records.back()) - record_time(records.front());
}

}  // namespace tracemod::trace
