#include "trace/trace_tap.hpp"

namespace tracemod::trace {

TraceTap::TraceTap(std::unique_ptr<net::NetDevice> inner, sim::EventLoop& loop,
                   sim::ClockModel& clock,
                   std::function<wireless::SignalInfo()> signal_source,
                   TraceTapConfig cfg)
    : net::DeviceShim(std::move(inner)),
      loop_(loop),
      clock_(clock),
      signal_source_(std::move(signal_source)),
      cfg_(cfg),
      buffer_(cfg.buffer_capacity),
      sample_timer_(loop) {}

void TraceTap::open() {
  if (open_) return;
  open_ = true;
  if (signal_source_) sample_device();
}

void TraceTap::close() {
  open_ = false;
  sample_timer_.cancel();
}

std::vector<TraceRecord> TraceTap::read(std::size_t max_records) {
  return buffer_.drain(max_records, clock_.read(loop_.now()));
}

void TraceTap::on_outbound(net::Packet pkt) {
  if (open_) record_packet(pkt, PacketDirection::kOutgoing);
  send_down(std::move(pkt));
}

void TraceTap::on_inbound(net::Packet pkt) {
  if (open_) record_packet(pkt, PacketDirection::kIncoming);
  send_up(std::move(pkt));
}

void TraceTap::record_packet(const net::Packet& pkt, PacketDirection dir) {
  PacketRecord rec;
  rec.at = clock_.read(loop_.now());
  rec.dir = dir;
  rec.protocol = pkt.protocol;
  rec.ip_bytes = pkt.ip_size();
  switch (pkt.protocol) {
    case net::Protocol::kIcmp: {
      const auto& h = pkt.icmp();
      rec.icmp_kind = (h.type == net::IcmpHeader::Type::kEchoRequest)
                          ? IcmpKind::kEcho
                          : IcmpKind::kEchoReply;
      rec.icmp_id = h.id;
      rec.icmp_seq = h.seq;
      rec.echo_origin = h.payload_timestamp;
      break;
    }
    case net::Protocol::kUdp: {
      rec.src_port = pkt.udp().src_port;
      rec.dst_port = pkt.udp().dst_port;
      break;
    }
    case net::Protocol::kTcp: {
      const auto& h = pkt.tcp();
      rec.src_port = h.src_port;
      rec.dst_port = h.dst_port;
      rec.tcp_seq = h.seq;
      rec.tcp_flags = static_cast<std::uint8_t>(
          (h.syn ? 1 : 0) | (h.ack_flag ? 2 : 0) | (h.fin ? 4 : 0) |
          (h.rst ? 8 : 0));
      break;
    }
  }
  buffer_.push(std::move(rec));
}

void TraceTap::sample_device() {
  if (!open_) return;
  const wireless::SignalInfo info = signal_source_();
  DeviceRecord rec;
  rec.at = clock_.read(loop_.now());
  rec.signal_level = info.level;
  rec.signal_quality = info.quality;
  rec.silence_level = info.silence;
  buffer_.push(std::move(rec));
  sample_timer_.arm(cfg_.device_sample_period, [this] { sample_device(); });
}

CollectionDaemon::CollectionDaemon(sim::EventLoop& loop, TraceTap& tap,
                                   sim::Duration period, std::size_t read_chunk)
    : loop_(loop),
      tap_(tap),
      period_(period),
      read_chunk_(read_chunk),
      timer_(loop) {}

void CollectionDaemon::start() {
  if (running_) return;
  running_ = true;
  tap_.open();
  timer_.arm(period_, [this] { drain(); });
}

void CollectionDaemon::stop() {
  if (!running_) return;
  running_ = false;
  timer_.cancel();
  // Final drain: pull everything left, in chunks.
  for (;;) {
    auto chunk = tap_.read(read_chunk_);
    if (chunk.empty()) break;
    for (auto& r : chunk) trace_.records.push_back(std::move(r));
  }
  tap_.close();
}

void CollectionDaemon::drain() {
  auto chunk = tap_.read(read_chunk_);
  for (auto& r : chunk) trace_.records.push_back(std::move(r));
  timer_.arm(period_, [this] { drain(); });
}

}  // namespace tracemod::trace
