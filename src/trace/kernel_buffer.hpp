// The in-kernel circular record buffer (paper Section 3.1.2).
//
// Fixed capacity; when full, new records are lost and counted by type so
// the drained stream can carry explicit LostRecords markers.
#pragma once

#include <deque>

#include "sim/metric_names.hpp"
#include "sim/sim_context.hpp"
#include "trace/records.hpp"

namespace tracemod::trace {

class KernelBuffer {
 public:
  explicit KernelBuffer(std::size_t capacity) : capacity_(capacity) {}

  /// Returns false (and counts the loss) if the buffer is full.
  bool push(TraceRecord rec) {
    if (buf_.size() >= capacity_) {
      if (std::holds_alternative<DeviceRecord>(rec)) {
        ++lost_device_;
      } else {
        ++lost_packet_;
      }
      if (pressure_metrics_ != nullptr) {
        ++pressure_metrics_->counter(sim::metric::kBufferPressureDrops);
      }
      return false;
    }
    buf_.push_back(std::move(rec));
    return true;
  }

  /// Drains up to max_records.  If records were lost since the last drain,
  /// the drained stream begins with a LostRecords marker stamped at the
  /// drain time.
  std::vector<TraceRecord> drain(std::size_t max_records, sim::TimePoint now) {
    std::vector<TraceRecord> out;
    if (lost_packet_ > 0 || lost_device_ > 0) {
      out.emplace_back(LostRecords{now, lost_packet_, lost_device_});
      lost_packet_ = 0;
      lost_device_ = 0;
    }
    while (!buf_.empty() && out.size() < max_records) {
      out.push_back(std::move(buf_.front()));
      buf_.pop_front();
    }
    return out;
  }

  std::size_t size() const { return buf_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return buf_.empty(); }
  std::uint32_t pending_lost_packet() const { return lost_packet_; }
  std::uint32_t pending_lost_device() const { return lost_device_; }

  /// Changes the capacity in place (fault injection: memory pressure).
  /// Records already queued beyond a reduced capacity stay queued; only new
  /// pushes are rejected until the buffer drains below the new bound.
  void set_capacity(std::size_t capacity) { capacity_ = capacity; }

  /// When set, pushes rejected by a full buffer additionally bump
  /// metric::kBufferPressureDrops (wired by FaultInjector so injected
  /// pressure is distinguishable in the metrics registry).
  void set_pressure_metrics(sim::MetricsRegistry* metrics) {
    pressure_metrics_ = metrics;
  }

 private:
  std::size_t capacity_;
  std::deque<TraceRecord> buf_;
  std::uint32_t lost_packet_ = 0;
  std::uint32_t lost_device_ = 0;
  sim::MetricsRegistry* pressure_metrics_ = nullptr;
};

}  // namespace tracemod::trace
