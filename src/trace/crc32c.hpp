// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78).
//
// The per-record checksum of trace format v2 (trace_io.hpp).  CRC32C is the
// standard choice for storage framing (iSCSI, ext4, Btrfs): it catches all
// burst errors up to 32 bits and has good Hamming distance at trace-record
// payload sizes.  Table-driven software implementation; no hardware
// dependencies, identical output on every platform.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tracemod::trace {

/// CRC32C of the buffer, continuing from `seed` (pass the previous return
/// value to checksum discontiguous spans as one message).  The empty-buffer
/// CRC of seed 0 is 0.
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

}  // namespace tracemod::trace
