// CRC32C, forwarded from sim/crc32c.hpp where the implementation now lives
// (the status plane in sim/status/ frames its snapshot file with the same
// checksum and sits below this library in the link order).  Kept so the
// historical include path and trace::crc32c spelling keep working for the
// v2 trace format and the TMSJ/TMDJ journals.
#pragma once

#include "sim/crc32c.hpp"

namespace tracemod::trace {

using sim::crc32c;

}  // namespace tracemod::trace
