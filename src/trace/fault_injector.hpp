// Deterministic fault injection for the trace pipeline.
//
// Robustness claims need reproducible failures: every fault this injector
// deals -- byte flips and truncation of serialized trace bytes, record
// drops/duplication, modulation-daemon stalls (pseudo-device starvation),
// kernel-buffer pressure -- is drawn from a seeded sim::Rng, so a corrupted
// run replays bit-identically from its seed (fork the injector's stream
// from SimContext::rng() or seed it directly).  Injected degradation is
// surfaced through the SimContext metrics registry under the names in
// sim/metric_names.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "sim/random.hpp"
#include "sim/time.hpp"
#include "trace/records.hpp"

namespace tracemod::sim {
class MetricsRegistry;
}

namespace tracemod::trace {

class KernelBuffer;

/// Runtime faults against the modulation daemon (core/replay_device.hpp).
struct DaemonFaultConfig {
  /// Per-wakeup probability that the daemon stalls instead of pumping
  /// tuples (models a starved user-level process).
  double stall_chance = 0.0;
  /// How long a stalled wakeup sleeps before retrying.
  sim::Duration stall = sim::milliseconds(500);
  /// Multiplier on the daemon's buffer-full retry delay (> 1 models a
  /// slow-wakeup daemon that lets the pseudo-device run dry).
  double wakeup_factor = 1.0;

  bool enabled() const { return stall_chance > 0.0 || wakeup_factor != 1.0; }
};

class FaultInjector {
 public:
  /// The injector owns its random stream; pass SimContext::fork_rng() (or a
  /// directly seeded Rng) plus the context's metrics registry to make the
  /// injected degradation both reproducible and observable.
  explicit FaultInjector(sim::Rng rng,
                         sim::MetricsRegistry* metrics = nullptr);

  // --- serialized-byte faults ----------------------------------------------

  /// Flips `flips` random bits, one per randomly chosen byte at or past
  /// `protect_prefix` (use it to keep the file header intact).
  void flip_bytes(std::string& bytes, std::size_t flips,
                  std::size_t protect_prefix = 0);

  /// Flips `flips` random bits inside [begin, end) -- offset-ranged
  /// corruption, for landing damage inside one chosen region (say, a
  /// single distillation window's byte range) and nowhere else.
  void flip_bytes_in_range(std::string& bytes, std::size_t flips,
                           std::size_t begin, std::size_t end);

  /// flip_bytes_in_range against a file on disk, one read-modify-write
  /// per flip: a multi-GB corpus can be damaged mid-file with flat
  /// memory.  `end` == 0 means end of file; the range is clamped to the
  /// file.  Returns the flips applied (0 if the clamped range is empty
  /// or the file cannot be opened).
  std::size_t flip_file_range(const std::string& path, std::size_t flips,
                              std::uint64_t begin, std::uint64_t end = 0);

  /// truncate_bytes against a file on disk (no slurp): cuts at a random
  /// offset in [min_keep, size - 1], always removing at least one byte.
  /// Returns the new size, or nullopt when the file is missing or already
  /// no larger than min_keep.
  std::optional<std::uint64_t> truncate_file(const std::string& path,
                                             std::uint64_t min_keep = 0);

  /// Truncates at a random offset in [min_keep, size - 1]: always removes
  /// at least one byte (a no-op is not a fault).
  void truncate_bytes(std::string& bytes, std::size_t min_keep = 0);

  /// The corruption-soak primitive: returns a copy with exactly one
  /// mutation -- a single-byte bit flip or a truncation, chosen at random.
  std::string mutate_once(std::string bytes, std::size_t protect_prefix = 0);

  // --- record-level faults --------------------------------------------------

  /// Removes up to `n` randomly chosen records.
  void drop_records(CollectedTrace& trace, std::size_t n);

  /// Re-inserts up to `n` randomly chosen records next to the original.
  void duplicate_records(CollectedTrace& trace, std::size_t n);

  // --- runtime faults -------------------------------------------------------

  /// Rolls the daemon's stall die: a duration to sleep instead of pumping,
  /// or nullopt to run normally.  Stalls bump metric::kDaemonStarvedTicks.
  std::optional<sim::Duration> daemon_stall(const DaemonFaultConfig& cfg);

  /// The (possibly slowed) buffer-full retry delay.
  sim::Duration daemon_wakeup(const DaemonFaultConfig& cfg,
                              sim::Duration base) const;

  /// Shrinks the buffer to `capacity_fraction` of its current capacity
  /// (at least one slot) so subsequent pushes overrun and emit LostRecords
  /// markers; rejected pushes bump metric::kBufferPressureDrops.
  void pressure_kernel_buffer(KernelBuffer& buf, double capacity_fraction);

  sim::Rng& rng() { return rng_; }

 private:
  sim::Rng rng_;
  sim::MetricsRegistry* metrics_;
};

}  // namespace tracemod::trace
