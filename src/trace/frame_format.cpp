#include "trace/frame_format.hpp"

#include <cstring>
#include <ostream>
#include <vector>

#include "trace/crc32c.hpp"

namespace tracemod::trace::wire {

namespace {

struct SchemaEntry {
  std::uint8_t tag;
  const char* name;
  std::vector<const char*> fields;
};

const std::vector<SchemaEntry>& schema() {
  static const std::vector<SchemaEntry> s = {
      {static_cast<std::uint8_t>(RecordTag::kPacket),
       "packet",
       {"at_ns", "dir", "protocol", "ip_bytes", "icmp_kind", "icmp_id",
        "icmp_seq", "echo_origin_ns", "src_port", "dst_port", "tcp_seq",
        "tcp_flags"}},
      {static_cast<std::uint8_t>(RecordTag::kDevice),
       "device",
       {"at_ns", "signal_level", "signal_quality", "silence_level"}},
      {static_cast<std::uint8_t>(RecordTag::kLost),
       "lost_records",
       {"at_ns", "lost_packet_records", "lost_device_records"}},
  };
  return s;
}

// --- primitive writers (little-endian) -------------------------------------

template <typename T>
void put(std::ostream& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  unsigned char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.write(reinterpret_cast<const char*>(buf), sizeof(T));
}

void put_string(std::ostream& out, const std::string& s) {
  if (s.size() > 0xffff) throw TraceFormatError("string too long");
  put<std::uint16_t>(out, static_cast<std::uint16_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

template <typename T>
void append(std::string& buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  unsigned char raw[sizeof(T)];
  std::memcpy(raw, &v, sizeof(T));
  buf.append(reinterpret_cast<const char*>(raw), sizeof(T));
}

void append_time(std::string& buf, sim::TimePoint t) {
  append<std::int64_t>(buf, t.time_since_epoch().count());
}

}  // namespace

bool known_tag(std::uint8_t tag) {
  return tag == static_cast<std::uint8_t>(RecordTag::kPacket) ||
         tag == static_cast<std::uint8_t>(RecordTag::kDevice) ||
         tag == static_cast<std::uint8_t>(RecordTag::kLost);
}

std::uint32_t frame_crc(std::uint8_t tag, const unsigned char* payload,
                        std::size_t len) {
  const std::uint32_t tag_crc = crc32c(&tag, 1);
  return crc32c(payload, len, tag_crc);
}

bool frame_validates(const unsigned char* data, std::size_t size,
                     std::size_t pos) {
  if (size - pos < kFrameHeaderBytes) return false;
  const std::uint8_t tag = data[pos];
  std::uint32_t len, crc;
  std::memcpy(&len, data + pos + 1, sizeof(len));
  std::memcpy(&crc, data + pos + 5, sizeof(crc));
  if (len > kMaxRecordPayload) return false;
  if (size - pos - kFrameHeaderBytes < len) return false;
  return frame_crc(tag, data + pos + kFrameHeaderBytes, len) == crc;
}

void encode_payload(std::string& buf, const TraceRecord& r, RecordTag* tag) {
  if (const auto* p = std::get_if<PacketRecord>(&r)) {
    *tag = RecordTag::kPacket;
    append_time(buf, p->at);
    append<std::uint8_t>(buf, static_cast<std::uint8_t>(p->dir));
    append<std::uint8_t>(buf, static_cast<std::uint8_t>(p->protocol));
    append<std::uint32_t>(buf, p->ip_bytes);
    append<std::uint8_t>(buf, static_cast<std::uint8_t>(p->icmp_kind));
    append<std::uint16_t>(buf, p->icmp_id);
    append<std::uint16_t>(buf, p->icmp_seq);
    append_time(buf, p->echo_origin);
    append<std::uint16_t>(buf, p->src_port);
    append<std::uint16_t>(buf, p->dst_port);
    append<std::uint64_t>(buf, p->tcp_seq);
    append<std::uint8_t>(buf, p->tcp_flags);
  } else if (const auto* d = std::get_if<DeviceRecord>(&r)) {
    *tag = RecordTag::kDevice;
    append_time(buf, d->at);
    append<double>(buf, d->signal_level);
    append<double>(buf, d->signal_quality);
    append<double>(buf, d->silence_level);
  } else {
    const auto& l = std::get<LostRecords>(r);
    *tag = RecordTag::kLost;
    append_time(buf, l.at);
    append<std::uint32_t>(buf, l.lost_packet_records);
    append<std::uint32_t>(buf, l.lost_device_records);
  }
}

TraceRecord decode_payload(RecordTag tag, Cursor& cur) {
  switch (tag) {
    case RecordTag::kPacket: {
      PacketRecord p;
      p.at = cur.get_time();
      p.dir = static_cast<PacketDirection>(cur.get<std::uint8_t>());
      p.protocol = static_cast<net::Protocol>(cur.get<std::uint8_t>());
      p.ip_bytes = cur.get<std::uint32_t>();
      p.icmp_kind = static_cast<IcmpKind>(cur.get<std::uint8_t>());
      p.icmp_id = cur.get<std::uint16_t>();
      p.icmp_seq = cur.get<std::uint16_t>();
      p.echo_origin = cur.get_time();
      p.src_port = cur.get<std::uint16_t>();
      p.dst_port = cur.get<std::uint16_t>();
      p.tcp_seq = cur.get<std::uint64_t>();
      p.tcp_flags = cur.get<std::uint8_t>();
      return p;
    }
    case RecordTag::kDevice: {
      DeviceRecord d;
      d.at = cur.get_time();
      d.signal_level = cur.get<double>();
      d.signal_quality = cur.get<double>();
      d.silence_level = cur.get<double>();
      return d;
    }
    case RecordTag::kLost: {
      LostRecords l;
      l.at = cur.get_time();
      l.lost_packet_records = cur.get<std::uint32_t>();
      l.lost_device_records = cur.get<std::uint32_t>();
      return l;
    }
  }
  cur.fail("unknown record tag " +
           std::to_string(static_cast<int>(tag)));
}

std::uint64_t write_container_header(std::ostream& out, std::uint16_t version,
                                     std::uint64_t count) {
  if (version != kTraceFormatVersionV1 && version != kTraceFormatVersionV2) {
    throw TraceFormatError("unsupported version " + std::to_string(version));
  }
  std::uint64_t off = sizeof(kMagic);
  out.write(kMagic, sizeof(kMagic));
  put<std::uint16_t>(out, version);
  off += 2;

  // Self-descriptive schema table.
  put<std::uint8_t>(out, static_cast<std::uint8_t>(schema().size()));
  off += 1;
  for (const SchemaEntry& e : schema()) {
    put<std::uint8_t>(out, e.tag);
    put_string(out, e.name);
    off += 1 + 2 + std::strlen(e.name);
    put<std::uint8_t>(out, static_cast<std::uint8_t>(e.fields.size()));
    off += 1;
    for (const char* f : e.fields) {
      put_string(out, f);
      off += 2 + std::strlen(f);
    }
  }

  put<std::uint64_t>(out, count);
  return off;
}

std::string encode_frame(const TraceRecord& r, std::uint16_t version) {
  std::string payload;
  RecordTag tag{};
  encode_payload(payload, r, &tag);
  std::string frame;
  const auto tag_byte = static_cast<std::uint8_t>(tag);
  append<std::uint8_t>(frame, tag_byte);
  if (version == kTraceFormatVersionV2) {
    append<std::uint32_t>(frame, static_cast<std::uint32_t>(payload.size()));
    append<std::uint32_t>(
        frame,
        frame_crc(tag_byte,
                  reinterpret_cast<const unsigned char*>(payload.data()),
                  payload.size()));
  }
  frame += payload;
  return frame;
}

}  // namespace tracemod::trace::wire
