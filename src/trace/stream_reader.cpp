#include "trace/stream_reader.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "sim/metric_names.hpp"
#include "sim/sim_context.hpp"
#include "trace/frame_format.hpp"

namespace tracemod::trace {

namespace {

/// Read granularity.  The buffer never grows past roughly one chunk plus
/// two maximum frames, no matter how large the stream is.
constexpr std::size_t kReadChunk = 256 * 1024;

/// Largest on-disk v1 record: packet tag byte + 40 payload bytes.
constexpr std::size_t kMaxV1RecordBytes = 41;

}  // namespace

// --- construction -----------------------------------------------------------

TraceStreamReader::TraceStreamReader(std::istream& in,
                                     const TraceReadOptions& options)
    : in_(&in), opts_(options) {
  report_.mode = options.mode;

  // Probe the stream size when seekable; read_trace_ex uses it to clamp the
  // reservation exactly the way the slurping reader's remaining-byte count
  // did.
  const std::streampos start = in_->tellg();
  if (start != std::streampos(-1)) {
    in_->seekg(0, std::ios::end);
    const std::streampos end = in_->tellg();
    in_->seekg(start);
    if (end != std::streampos(-1) && end >= start) {
      stream_size_ = static_cast<std::uint64_t>(end - start);
    }
  }

  // Header: magic | version | schema table | record count.  The header must
  // be intact even for salvage: without it there is no trustworthy record
  // framing to resynchronize against.
  ensure(sizeof(wire::kMagic));
  if (avail() < sizeof(wire::kMagic) ||
      std::memcmp(buf_.data() + pos_, wire::kMagic,
                  sizeof(wire::kMagic)) != 0) {
    throw TraceFormatError("bad magic");
  }
  pos_ += sizeof(wire::kMagic);

  const auto get_u8 = [&] {
    ensure(1);
    wire::Cursor c{reinterpret_cast<const unsigned char*>(buf_.data()) + pos_,
                   avail(), 0, static_cast<std::size_t>(abs()), 0};
    const auto v = c.get<std::uint8_t>();
    pos_ += c.pos;
    return v;
  };
  const auto get_string = [&] {
    ensure(2);
    std::uint16_t n = 0;
    if (avail() >= 2) std::memcpy(&n, buf_.data() + pos_, 2);
    ensure(2 + static_cast<std::size_t>(n));
    wire::Cursor c{reinterpret_cast<const unsigned char*>(buf_.data()) + pos_,
                   avail(), 0, static_cast<std::size_t>(abs()), 0};
    std::string s = c.get_string();
    pos_ += c.pos;
    return s;
  };

  {
    ensure(2);
    wire::Cursor c{reinterpret_cast<const unsigned char*>(buf_.data()) + pos_,
                   avail(), 0, static_cast<std::size_t>(abs()), 0};
    report_.version = c.get<std::uint16_t>();
    pos_ += c.pos;
  }
  if (report_.version != kTraceFormatVersionV1 &&
      report_.version != kTraceFormatVersionV2) {
    throw TraceFormatError("unsupported version " +
                           std::to_string(report_.version));
  }

  const auto n_schemas = get_u8();
  for (std::uint8_t i = 0; i < n_schemas; ++i) {
    (void)get_u8();       // tag
    (void)get_string();   // name
    const auto n_fields = get_u8();
    for (std::uint8_t f = 0; f < n_fields; ++f) (void)get_string();
  }

  {
    ensure(8);
    wire::Cursor c{reinterpret_cast<const unsigned char*>(buf_.data()) + pos_,
                   avail(), 0, static_cast<std::size_t>(abs()), 0};
    report_.records_expected = c.get<std::uint64_t>();
    pos_ += c.pos;
  }
  header_bytes_ = abs();
  hold_rel_ = pos_;
}

TraceStreamReader::TraceStreamReader(std::istream& in, FrameRange,
                                     std::uint16_t version,
                                     std::uint64_t base_offset)
    : in_(&in), headerless_(true), base_(base_offset),
      header_bytes_(base_offset) {
  opts_.mode = ReadMode::kSalvage;
  report_.mode = ReadMode::kSalvage;
  report_.version = version;
}

// --- buffer management ------------------------------------------------------

void TraceStreamReader::ensure(std::size_t n) {
  if (avail() >= n || stream_exhausted_) return;
  // Compact: everything before the hold point (the earliest byte a salvage
  // resync may still revisit) is done with.
  const std::size_t keep_from = std::min(pos_, hold_rel_);
  if (keep_from > 0) {
    buf_.erase(0, keep_from);
    base_ += keep_from;
    pos_ -= keep_from;
    hold_rel_ -= keep_from;
  }
  while (avail() < n && !stream_exhausted_) {
    const std::size_t chunk = std::max(n, kReadChunk);
    const std::size_t old = buf_.size();
    buf_.resize(old + chunk);
    in_->read(buf_.data() + old, static_cast<std::streamsize>(chunk));
    const auto got = static_cast<std::size_t>(in_->gcount());
    buf_.resize(old + got);
    if (got < chunk) stream_exhausted_ = true;
  }
}

void TraceStreamReader::fail(const std::string& what,
                             std::uint64_t offset) const {
  throw TraceFormatError(what, offset,
                         report_.records_read + report_.records_skipped);
}

// --- salvage bookkeeping ----------------------------------------------------

void TraceStreamReader::queue_damage(std::uint8_t tag, std::uint32_t n,
                                     std::uint64_t frame_start_abs) {
  if (lost_packet_ == 0 && lost_device_ == 0) damage_start_ = frame_start_abs;
  if (tag == static_cast<std::uint8_t>(wire::RecordTag::kDevice)) {
    lost_device_ += n;
  } else {
    lost_packet_ += n;
  }
}

void TraceStreamReader::flush_damage() {
  if (lost_packet_ == 0 && lost_device_ == 0) return;
  pending_.push_back(
      {TraceRecord{LostRecords{last_good_, lost_packet_, lost_device_}},
       damage_start_});
  ++report_.lost_markers_synthesized;
  lost_packet_ = 0;
  lost_device_ = 0;
}

void TraceStreamReader::emit_good(TraceRecord rec,
                                  std::uint64_t frame_start_abs) {
  flush_damage();
  last_good_ = record_time(rec);
  pending_.push_back({std::move(rec), frame_start_abs});
  ++report_.records_read;
  if (damage_seen_) ++report_.records_salvaged;
}

void TraceStreamReader::finish() {
  if (done_) return;
  if (strict() && !headerless_ &&
      report_.records_read < report_.records_expected) {
    throw TraceFormatError("unexpected end of stream", abs(),
                           last_record_index_);
  }
  // Clean EOF but fewer frames than the header declared: the stream lost
  // its tail (or the count field itself is damaged) -- either way the
  // reader delivered less than promised, which salvage must report.  This
  // also catches truncation that lands exactly on a frame boundary.
  if (!strict() && !headerless_ &&
      report_.records_read + report_.records_skipped <
          report_.records_expected) {
    report_.truncated = true;
  }
  flush_damage();
  if (opts_.metrics != nullptr) {
    sim::MetricsRegistry& m = *opts_.metrics;
    m.counter(sim::metric::kRecordsSalvaged) += report_.records_salvaged;
    m.counter(sim::metric::kCrcFailures) += report_.crc_failures;
    m.counter(sim::metric::kResyncScans) += report_.resync_scans;
  }
  done_ = true;
}

bool TraceStreamReader::resync(std::uint64_t frame_start_abs) {
  ++report_.resync_scans;
  pos_ = static_cast<std::size_t>(frame_start_abs - base_) + 1;
  for (;;) {
    hold_rel_ = pos_;
    ensure(wire::kMaxFrameBytes);
    if (avail() == 0) {
      report_.bytes_scanned += abs() - frame_start_abs;
      report_.truncated = true;
      return false;
    }
    if (wire::frame_validates(
            reinterpret_cast<const unsigned char*>(buf_.data()), buf_.size(),
            pos_)) {
      report_.bytes_scanned += abs() - frame_start_abs;
      return true;
    }
    ++pos_;
  }
}

// --- record iteration -------------------------------------------------------

bool TraceStreamReader::next(TraceRecord* out) {
  if (pending_.empty() && !done_) {
    if (report_.version == kTraceFormatVersionV1) {
      next_v1();
    } else {
      next_v2();
    }
  }
  if (pending_.empty()) return false;
  *out = std::move(pending_.front().record);
  record_frame_offset_ = pending_.front().frame_offset;
  pending_.pop_front();
  return true;
}

void TraceStreamReader::next_v2() {
  while (pending_.empty() && !done_) {
    if (strict() && !headerless_ &&
        report_.records_read >= report_.records_expected) {
      finish();
      break;
    }
    hold_rel_ = pos_;
    ensure(wire::kMaxFrameBytes);
    if (avail() == 0) {
      finish();
      break;
    }
    last_record_index_ = report_.records_read + report_.records_skipped;
    const std::uint64_t frame_start = abs();

    if (avail() < wire::kFrameHeaderBytes) {
      if (strict()) {
        fail("unexpected end of stream in frame header", abs());
      }
      report_.truncated = true;
      ++report_.records_skipped;
      queue_damage(0, 1, frame_start);
      damage_seen_ = true;
      pos_ = buf_.size();
      finish();
      break;
    }
    const auto* d = reinterpret_cast<const unsigned char*>(buf_.data());
    const std::uint8_t tag = d[pos_];
    std::uint32_t len, crc;
    std::memcpy(&len, d + pos_ + 1, sizeof(len));
    std::memcpy(&crc, d + pos_ + 5, sizeof(crc));
    pos_ += wire::kFrameHeaderBytes;

    // A length that cannot fit the stream (or is absurd) means the header
    // itself is corrupt: the length cannot be trusted to skip forward, so
    // resynchronize by scanning for the next frame that checksums.  The
    // buffer holds at least kMaxFrameBytes here unless the stream ended,
    // so avail() agrees with the slurping reader's remaining-byte check.
    if (len > wire::kMaxRecordPayload || avail() < len) {
      if (strict()) {
        if (len > wire::kMaxRecordPayload) {
          fail("implausible record length " + std::to_string(len), abs());
        }
        fail("unexpected end of stream in record payload", abs());
      }
      queue_damage(0, 1, frame_start);
      damage_seen_ = true;
      ++report_.records_skipped;
      if (!resync(frame_start)) {
        finish();
        break;
      }
      continue;
    }

    const std::size_t payload_pos = pos_;
    pos_ += len;

    if (wire::frame_crc(tag, d + payload_pos, len) != crc) {
      if (strict()) {
        throw TraceFormatError("record checksum mismatch", frame_start,
                               last_record_index_);
      }
      ++report_.crc_failures;
      ++report_.records_skipped;
      queue_damage(tag, 1, frame_start);
      damage_seen_ = true;
      // The length field may be part of the damage (a plausible-but-wrong
      // value skips into the middle of a later frame and cascades).  Only
      // trust the skip if it lands on a frame that checksums, or on EOF.
      ensure(wire::kMaxFrameBytes);
      if (avail() > 0 &&
          !wire::frame_validates(
              reinterpret_cast<const unsigned char*>(buf_.data()),
              buf_.size(), pos_)) {
        if (!resync(frame_start)) {
          finish();
          break;
        }
      }
      continue;
    }
    if (!wire::known_tag(tag)) {
      if (strict()) {
        throw TraceFormatError("unknown record tag " + std::to_string(tag),
                               frame_start, last_record_index_);
      }
      ++report_.unknown_tags;
      ++report_.records_skipped;
      queue_damage(tag, 1, frame_start);
      damage_seen_ = true;
      continue;
    }

    // A checksummed frame of a known type.  Decode from the payload span;
    // a payload longer than the fields we know is a newer minor revision
    // (extra fields are ignored), a shorter one is damage the CRC cannot
    // see (it was written that way), which strict mode rejects.
    wire::Cursor body{d + payload_pos, len, 0,
                      static_cast<std::size_t>(base_) + payload_pos,
                      last_record_index_};
    try {
      TraceRecord rec =
          wire::decode_payload(static_cast<wire::RecordTag>(tag), body);
      emit_good(std::move(rec), frame_start);
    } catch (const TraceFormatError&) {
      if (strict()) throw;
      ++report_.records_skipped;
      queue_damage(tag, 1, frame_start);
      damage_seen_ = true;
    }
  }
}

void TraceStreamReader::next_v1() {
  while (pending_.empty() && !done_) {
    if (!headerless_ && v1_index_ >= report_.records_expected) {
      finish();
      break;
    }
    hold_rel_ = pos_;
    ensure(kMaxV1RecordBytes);
    if (headerless_ && avail() == 0) {
      finish();
      break;
    }
    last_record_index_ = v1_index_;
    const std::uint64_t frame_start = abs();
    wire::Cursor cur{reinterpret_cast<const unsigned char*>(buf_.data()) +
                         pos_,
                     avail(), 0, static_cast<std::size_t>(abs()), v1_index_};
    if (strict()) {
      const auto tag = static_cast<wire::RecordTag>(cur.get<std::uint8_t>());
      TraceRecord rec = wire::decode_payload(tag, cur);
      pos_ += cur.pos;
      pending_.push_back({std::move(rec), frame_start});
      ++report_.records_read;
      ++v1_index_;
      continue;
    }
    // Salvage: v1 frames carry no length prefix, so damage cannot be
    // skipped over -- parsing stops at the first problem and the remainder
    // of the header's promised records becomes one LostRecords marker.
    try {
      const auto tag = static_cast<wire::RecordTag>(cur.get<std::uint8_t>());
      TraceRecord rec = wire::decode_payload(tag, cur);
      pos_ += cur.pos;
      emit_good(std::move(rec), frame_start);
      ++v1_index_;
    } catch (const TraceFormatError&) {
      if (!headerless_) {
        report_.truncated = true;
        const std::uint64_t lost = report_.records_expected - v1_index_;
        report_.records_skipped += lost;
        queue_damage(static_cast<std::uint8_t>(wire::RecordTag::kPacket),
                     static_cast<std::uint32_t>(
                         std::min<std::uint64_t>(lost, 0xffffffffu)),
                     frame_start);
      }
      finish();
      break;
    }
  }
}

// --- streaming writer -------------------------------------------------------

TraceStreamWriter::TraceStreamWriter(const std::string& path,
                                     std::uint16_t version)
    : path_(path), version_(version) {
  if (!sink_.open(path, sim::io::FileSink::Mode::kTruncate)) {
    throw std::runtime_error("cannot open for writing: " + path);
  }
  std::ostringstream header;
  count_offset_ = wire::write_container_header(header, version, 0);
  bytes_ = count_offset_ + 8;
  if (!sink_.write(header.str())) {
    throw std::runtime_error("write failed: " + path);
  }
}

TraceStreamWriter::~TraceStreamWriter() {
  try {
    if (!finalized_) finalize();
  } catch (...) {
    // Destructors must not throw; an unfinalized file is detectably
    // invalid (its count field is zero against a non-empty body).
  }
}

void TraceStreamWriter::append(const TraceRecord& record) {
  const std::string frame = wire::encode_frame(record, version_);
  if (!sink_.write(frame)) {
    throw std::runtime_error("write failed: " + path_);
  }
  ++records_;
  bytes_ += frame.size();
}

void TraceStreamWriter::finalize() {
  if (finalized_) return;
  // Patch the header count in place, then make the whole container
  // durable before reporting success: after finalize() returns, the trace
  // survives power loss.
  unsigned char raw[8];
  std::uint64_t v = records_;
  std::memcpy(raw, &v, sizeof(v));
  sim::io::IoResult r = sink_.write_at(count_offset_, raw, sizeof(raw));
  if (r.ok) r = sink_.datasync();
  if (r.ok) r = sink_.close();
  if (!r.ok) throw std::runtime_error("finalize failed: " + path_);
  finalized_ = true;
}

}  // namespace tracemod::trace
