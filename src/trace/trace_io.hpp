// Self-descriptive binary trace format (in the spirit of RFC 2041: flexible,
// extensible, fully self-descriptive).
//
// Layout:
//   magic "TMTR" | format version u16 | schema table | records...
// The schema table names every record type and its fields, so a reader can
// detect version skew and skip unknown record types instead of
// misinterpreting bytes.  All integers little-endian fixed width.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "trace/records.hpp"

namespace tracemod::trace {

/// Malformed or incompatible trace data.
class TraceFormatError : public std::runtime_error {
 public:
  explicit TraceFormatError(const std::string& what)
      : std::runtime_error("trace format error: " + what) {}
};

inline constexpr std::uint16_t kTraceFormatVersion = 1;

/// Serializes a collected trace.
void write_trace(std::ostream& out, const CollectedTrace& trace);

/// Parses a trace; throws TraceFormatError on malformed input.
CollectedTrace read_trace(std::istream& in);

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void save_trace(const std::string& path, const CollectedTrace& trace);
CollectedTrace load_trace(const std::string& path);

}  // namespace tracemod::trace
