// Self-descriptive binary trace format (in the spirit of RFC 2041: flexible,
// extensible, fully self-descriptive).
//
// Version 1 layout:
//   magic "TMTR" | format version u16 | schema table | record count u64 |
//   records...                       (records are bare tag u8 + fields)
//
// Version 2 layout (current writer default) adds per-record framing so a
// reader can survive corruption:
//   magic "TMTR" | format version u16 | schema table | record count u64 |
//   frames...
// where each frame is
//   tag u8 | payload length u32 | crc32c u32 | payload bytes
// The CRC covers the tag byte followed by the payload, so a flipped tag,
// a flipped length, and flipped payload bytes are all detected.  The length
// prefix lets a reader skip records it cannot interpret (unknown tag, bad
// CRC); a corrupted length is recovered from by scanning forward for the
// next frame whose CRC validates.
//
// The schema table names every record type and its fields, so a reader can
// detect version skew and skip unknown record types instead of
// misinterpreting bytes.  All integers little-endian fixed width.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "trace/records.hpp"

namespace tracemod::sim {
class MetricsRegistry;
}

namespace tracemod::trace {

/// Malformed or incompatible trace data.
class TraceFormatError : public std::runtime_error {
 public:
  explicit TraceFormatError(const std::string& what)
      : std::runtime_error("trace format error: " + what) {}
  /// Annotates the failure with the absolute byte offset in the stream and
  /// the index of the record being parsed when it was detected.
  TraceFormatError(const std::string& what, std::uint64_t byte_offset,
                   std::uint64_t record_index)
      : std::runtime_error("trace format error: " + what + " at byte offset " +
                           std::to_string(byte_offset) + " (record " +
                           std::to_string(record_index) + ")") {}
};

inline constexpr std::uint16_t kTraceFormatVersionV1 = 1;
inline constexpr std::uint16_t kTraceFormatVersionV2 = 2;
inline constexpr std::uint16_t kTraceFormatVersion = kTraceFormatVersionV2;

/// How a reader treats damage (bad CRC, unknown tag, truncation).
enum class ReadMode {
  kStrict,   ///< throw TraceFormatError on the first problem
  kSalvage,  ///< skip damaged regions, synthesize LostRecords markers
};

/// What a read saw: damage accounting alongside the decoded trace.  The
/// salvage reader converts every damaged region into a LostRecords marker,
/// so downstream consumers (the distiller) see corruption exactly the way
/// they already see kernel-buffer overruns.
struct TraceReadReport {
  std::uint16_t version = 0;           ///< format version of the stream
  ReadMode mode = ReadMode::kStrict;
  std::uint64_t records_expected = 0;  ///< count field from the header
  std::uint64_t records_read = 0;      ///< records decoded successfully
  std::uint64_t records_skipped = 0;   ///< frames dropped (CRC/unknown tag)
  std::uint64_t records_salvaged = 0;  ///< good records decoded after damage
  std::uint64_t crc_failures = 0;      ///< frames whose checksum mismatched
  std::uint64_t unknown_tags = 0;      ///< frames with an unrecognized tag
  std::uint64_t resync_scans = 0;      ///< byte-scan resynchronizations
  std::uint64_t bytes_scanned = 0;     ///< bytes consumed while resyncing
  std::uint64_t lost_markers_synthesized = 0;  ///< LostRecords added
  bool truncated = false;  ///< ended mid-record, or delivered < count

  /// True when the stream decoded without any damage.
  bool clean() const {
    return records_skipped == 0 && crc_failures == 0 && unknown_tags == 0 &&
           resync_scans == 0 && !truncated;
  }
};

struct TraceReadOptions {
  ReadMode mode = ReadMode::kStrict;
  /// Optional degradation counters (sim/metric_names.hpp): records_salvaged,
  /// crc_failures, resync_scans are bumped on the registry when present.
  sim::MetricsRegistry* metrics = nullptr;
};

struct TraceReadResult {
  CollectedTrace trace;
  TraceReadReport report;
};

/// Serializes a collected trace; `version` selects the on-disk format
/// (v2, the checksummed framing, by default).
void write_trace(std::ostream& out, const CollectedTrace& trace,
                 std::uint16_t version = kTraceFormatVersion);

/// Parses a trace in strict mode; throws TraceFormatError on malformed
/// input.  Reads both v1 and v2 streams.
CollectedTrace read_trace(std::istream& in);

/// Parses a trace under the given options, returning the damage report
/// alongside the records.  In salvage mode only an unusable header (bad
/// magic, unsupported version, corrupt schema table) still throws; any
/// damage past the header is skipped and reported.
TraceReadResult read_trace_ex(std::istream& in,
                              const TraceReadOptions& options = {});

/// Convenience file wrappers; throw std::runtime_error on I/O failure.
void save_trace(const std::string& path, const CollectedTrace& trace,
                std::uint16_t version = kTraceFormatVersion);
CollectedTrace load_trace(const std::string& path);
TraceReadResult load_trace_ex(const std::string& path,
                              const TraceReadOptions& options = {});

}  // namespace tracemod::trace
