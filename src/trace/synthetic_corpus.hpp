// Production-volume synthetic trace corpora, generated with flat memory.
//
// Writes the paper's ping workload -- one small ECHO followed by two large
// back-to-back ECHOs per group, replies timed by a slowly wandering
// latency/bandwidth model -- through TraceStreamWriter, so a multi-GB
// corpus never exists in memory.  Between groups the generator pads with
// WaveLAN device readings until the file tracks `target_bytes`
// proportionally: device records stress the streaming container exactly
// like packet records but do not add distillation work, which keeps a
// 1 GB corpus distillable in seconds instead of hours.
//
// Used by bench/corpus_distill (the committed BENCH_corpus.json run), the
// CI corpus soak job, and the kill-resume drills in the tests.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"

namespace tracemod::trace {

struct CorpusSpec {
  sim::Duration duration = sim::seconds(3600);
  /// One probe group (small/large/large) starts every interval.
  sim::Duration group_interval = sim::seconds(1);
  /// Grow the file toward this size with device-record padding; 0 writes
  /// the bare workload.
  std::uint64_t target_bytes = 0;
  /// Per-reply chance the reply never arrives (exercises the sequence-gap
  /// loss estimator).
  double reply_loss = 0.01;
  std::uint64_t seed = 1;
  std::uint32_t small_bytes = 64;
  std::uint32_t large_bytes = 1064;
};

struct CorpusInfo {
  std::uint64_t records = 0;
  std::uint64_t bytes = 0;
  std::uint64_t groups = 0;
  std::uint64_t replies_dropped = 0;
};

/// Generates a v2 trace file per the spec.  Deterministic from the seed.
/// Throws std::runtime_error on I/O failure.
CorpusInfo generate_ping_corpus(const std::string& path,
                                const CorpusSpec& spec);

}  // namespace tracemod::trace
