// Incremental trace reader/writer: the container from trace_io.hpp without
// the whole-file slurp.
//
// TraceStreamReader pulls records one at a time from an std::istream while
// holding only a bounded buffer (one read chunk plus the largest plausible
// frame).  Every decision the in-memory reader makes -- strict-mode error
// offsets, salvage skips, resynchronization scans, LostRecords marker
// synthesis -- depends on at most kMaxFrameBytes of lookahead, so the
// streaming parse is byte-for-byte identical to a slurped parse of the same
// stream: read_trace_ex (trace_io.cpp) is now a loop over this class, and
// the pinned salvage tests in tests/trace/trace_v2_test.cpp hold for both.
//
// The reader also reports the absolute byte offset of every record's frame,
// which is what lets the streaming distiller (core/stream_distiller.hpp)
// partition a corpus into re-readable byte-range windows and re-scan any
// window later via the headerless frame-range mode.
//
// TraceStreamWriter is the append-side dual: it writes the container header
// with a zero record count, appends framed records one at a time, and
// patches the count on finalize() -- so a multi-GB synthetic corpus can be
// generated with flat memory.
#pragma once

#include <cstdint>
#include <deque>
#include <fstream>
#include <istream>
#include <optional>
#include <string>

#include "sim/io/file_sink.hpp"
#include "trace/records.hpp"
#include "trace/trace_io.hpp"

namespace tracemod::trace {

class TraceStreamReader {
 public:
  /// Parses the container header immediately; header damage (bad magic,
  /// unsupported version, corrupt schema table) throws TraceFormatError
  /// even in salvage mode, exactly like read_trace_ex.
  explicit TraceStreamReader(std::istream& in,
                             const TraceReadOptions& options = {});

  /// Headerless frame-range mode: parse v2 frames (or v1 records) starting
  /// at the stream's current position, which must be a frame boundary
  /// `base_offset` bytes into the original file.  Always salvage; no
  /// expected-count bookkeeping.  This is how a distillation window is
  /// re-read from its checkpointed byte range.
  struct FrameRange {};
  TraceStreamReader(std::istream& in, FrameRange, std::uint16_t version,
                    std::uint64_t base_offset);

  TraceStreamReader(const TraceStreamReader&) = delete;
  TraceStreamReader& operator=(const TraceStreamReader&) = delete;

  /// Yields the next record (including synthesized LostRecords markers in
  /// salvage mode); false at end of stream.  Strict mode throws
  /// TraceFormatError on the first problem, with the same offset-annotated
  /// message an in-memory parse produces.
  bool next(TraceRecord* out);

  std::uint16_t version() const { return report_.version; }

  /// Running damage report; final once next() has returned false.
  const TraceReadReport& report() const { return report_; }

  /// Absolute offset of the first frame (end of the container header).
  std::uint64_t header_bytes() const { return header_bytes_; }

  /// Absolute offset of the frame that produced the last record next()
  /// returned.  For a synthesized marker this is the start of the damaged
  /// region the marker accounts for.
  std::uint64_t record_frame_offset() const { return record_frame_offset_; }

  /// Absolute offset parsing will continue from: the byte boundary between
  /// everything consumed and the next unread frame.
  std::uint64_t next_frame_offset() const { return base_ + pos_; }

  /// Total stream size when the stream is seekable (used for the
  /// reservation clamp in read_trace_ex).
  std::optional<std::uint64_t> stream_size() const { return stream_size_; }

 private:
  bool strict() const { return opts_.mode == ReadMode::kStrict; }
  std::size_t avail() const { return buf_.size() - pos_; }
  std::uint64_t abs() const { return base_ + pos_; }

  /// Ensures `n` bytes are buffered past pos_, or the stream is exhausted
  /// (in which case avail() is ground truth).  Compacts the consumed prefix
  /// before reading so the buffer stays bounded.
  void ensure(std::size_t n);

  [[noreturn]] void fail(const std::string& what, std::uint64_t offset) const;

  /// Byte-scan from just past frame_start for the next offset that
  /// checksums as a frame; false at end of stream.
  bool resync(std::uint64_t frame_start_abs);

  void queue_damage(std::uint8_t tag, std::uint32_t n,
                    std::uint64_t frame_start_abs);
  void flush_damage();
  void emit_good(TraceRecord rec, std::uint64_t frame_start_abs);
  void finish();

  void next_v1();
  void next_v2();

  std::istream* in_;
  TraceReadOptions opts_;
  bool headerless_ = false;
  bool done_ = false;
  bool stream_exhausted_ = false;

  std::string buf_;
  std::size_t pos_ = 0;
  std::uint64_t base_ = 0;      ///< absolute offset of buf_[0]
  std::size_t hold_rel_ = 0;    ///< earliest byte a resync may revisit

  TraceReadReport report_;
  std::uint64_t header_bytes_ = 0;
  std::uint64_t record_frame_offset_ = 0;
  std::uint64_t v1_index_ = 0;
  std::uint64_t last_record_index_ = 0;
  std::optional<std::uint64_t> stream_size_;

  // Salvage bookkeeping: one contiguous damaged region accumulates here and
  // flushes as a single LostRecords marker timestamped with the last good
  // record's time (the epoch before any record decoded) -- the same shape a
  // kernel-buffer overrun leaves in the stream.
  std::uint32_t lost_packet_ = 0;
  std::uint32_t lost_device_ = 0;
  sim::TimePoint last_good_ = sim::kEpoch;
  std::uint64_t damage_start_ = 0;  ///< frame offset of the region's start
  bool damage_seen_ = false;

  struct Pending {
    TraceRecord record;
    std::uint64_t frame_offset;
  };
  std::deque<Pending> pending_;
};

/// Streaming v2 writer: header up front (count patched on finalize), one
/// framed record per append.  File-based because finalize() must seek.
/// Writes through the durable plane (sim/io/file_sink.hpp) directly --
/// not via atomic replace, because a collection stream can be far larger
/// than the free space a tmp copy would need, and an unfinalized file is
/// already detectably invalid (zero count against a non-empty body).
class TraceStreamWriter {
 public:
  explicit TraceStreamWriter(const std::string& path,
                             std::uint16_t version = kTraceFormatVersion);
  ~TraceStreamWriter();

  TraceStreamWriter(const TraceStreamWriter&) = delete;
  TraceStreamWriter& operator=(const TraceStreamWriter&) = delete;

  void append(const TraceRecord& record);

  std::uint64_t records_written() const { return records_; }
  std::uint64_t bytes_written() const { return bytes_; }

  /// Seeks back and patches the header's record count; the file is not a
  /// valid trace until this runs.  Throws std::runtime_error on I/O failure.
  void finalize();

 private:
  sim::io::FileSink sink_;
  std::string path_;
  std::uint16_t version_;
  std::uint64_t count_offset_ = 0;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
  bool finalized_ = false;
};

}  // namespace tracemod::trace
