#include "trace/ping.hpp"

namespace tracemod::trace {

PingWorkload::PingWorkload(transport::Host& host, net::IpAddress target,
                           sim::ClockModel& clock, PingConfig cfg)
    : host_(host), target_(target), clock_(clock), cfg_(cfg),
      timer_(host.loop()) {
  host_.icmp().set_reply_callback(
      [this](const net::Packet& pkt) { on_reply(pkt); });
}

void PingWorkload::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void PingWorkload::stop() {
  running_ = false;
  timer_.cancel();
}

void PingWorkload::send_echo(std::uint32_t payload_size) {
  host_.icmp().send_echo(target_, cfg_.id, next_seq_++, payload_size,
                         clock_.read(host_.loop().now()));
  ++stats_.echoes_sent;
}

void PingWorkload::tick() {
  if (!running_) return;
  ++stats_.groups_started;
  // Stage 1: one small ECHO; stage 2 fires from its reply.  If the reply is
  // lost, this group contributes only a loss observation.
  pending_stage1_seq_ = next_seq_;
  send_echo(cfg_.s1);
  timer_.arm(cfg_.period, [this] { tick(); });
}

void PingWorkload::on_reply(const net::Packet& pkt) {
  if (!running_) return;
  const auto& h = pkt.icmp();
  if (h.id != cfg_.id) return;
  if (pending_stage1_seq_ && h.seq == *pending_stage1_seq_) {
    pending_stage1_seq_.reset();
    ++stats_.stage1_replies;
    // Stage 2: two large ECHOs back-to-back.
    send_echo(cfg_.s2);
    send_echo(cfg_.s2);
    return;
  }
  ++stats_.stage2_replies;
}

}  // namespace tracemod::trace
