#include "trace/trace_io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

#include "sim/metric_names.hpp"
#include "sim/sim_context.hpp"
#include "trace/crc32c.hpp"

namespace tracemod::trace {

namespace {

constexpr char kMagic[4] = {'T', 'M', 'T', 'R'};

// v2 frame: tag u8 | payload length u32 | crc32c u32 | payload.
constexpr std::size_t kFrameHeaderBytes = 1 + 4 + 4;
// Real payloads are <= 40 bytes today; anything past this bound is a
// corrupted length, not a future record type.
constexpr std::size_t kMaxRecordPayload = 4096;
// Smallest on-disk record across both versions (v1 LostRecords: tag + time +
// two u32 counters).  Used to clamp the header count before reserving.
constexpr std::size_t kMinRecordBytes = 17;

enum class RecordTag : std::uint8_t {
  kPacket = 1,
  kDevice = 2,
  kLost = 3,
};

struct SchemaEntry {
  std::uint8_t tag;
  const char* name;
  std::vector<const char*> fields;
};

const std::vector<SchemaEntry>& schema() {
  static const std::vector<SchemaEntry> s = {
      {static_cast<std::uint8_t>(RecordTag::kPacket),
       "packet",
       {"at_ns", "dir", "protocol", "ip_bytes", "icmp_kind", "icmp_id",
        "icmp_seq", "echo_origin_ns", "src_port", "dst_port", "tcp_seq",
        "tcp_flags"}},
      {static_cast<std::uint8_t>(RecordTag::kDevice),
       "device",
       {"at_ns", "signal_level", "signal_quality", "silence_level"}},
      {static_cast<std::uint8_t>(RecordTag::kLost),
       "lost_records",
       {"at_ns", "lost_packet_records", "lost_device_records"}},
  };
  return s;
}

// --- primitive writers (little-endian) -------------------------------------

template <typename T>
void put(std::ostream& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  unsigned char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.write(reinterpret_cast<const char*>(buf), sizeof(T));
}

void put_string(std::ostream& out, const std::string& s) {
  if (s.size() > 0xffff) throw TraceFormatError("string too long");
  put<std::uint16_t>(out, static_cast<std::uint16_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

template <typename T>
void append(std::string& buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  unsigned char raw[sizeof(T)];
  std::memcpy(raw, &v, sizeof(T));
  buf.append(reinterpret_cast<const char*>(raw), sizeof(T));
}

void append_time(std::string& buf, sim::TimePoint t) {
  append<std::int64_t>(buf, t.time_since_epoch().count());
}

// --- in-memory parse cursor -------------------------------------------------
//
// The whole stream is slurped into memory and parsed from a cursor that
// knows its absolute offset and the index of the record being decoded, so
// every failure can say exactly where it happened.  Parsing from memory is
// also what makes salvage resynchronization (arbitrary byte-scans) and the
// reserve clamp (remaining size is known) cheap.

struct Cursor {
  const unsigned char* data;
  std::size_t size;
  std::size_t pos = 0;
  std::size_t base = 0;          ///< absolute offset of data[0] in the stream
  std::uint64_t record = 0;      ///< record index, for error messages

  std::size_t remaining() const { return size - pos; }
  std::uint64_t offset() const { return base + pos; }

  [[noreturn]] void fail(const std::string& what) const {
    throw TraceFormatError(what, offset(), record);
  }

  template <typename T>
  T get() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (remaining() < sizeof(T)) fail("unexpected end of stream");
    T v;
    std::memcpy(&v, data + pos, sizeof(T));
    pos += sizeof(T);
    return v;
  }

  std::string get_string() {
    const auto n = get<std::uint16_t>();
    if (remaining() < n) fail("unexpected end of stream in string");
    std::string s(reinterpret_cast<const char*>(data + pos), n);
    pos += n;
    return s;
  }

  sim::TimePoint get_time() {
    return sim::TimePoint{sim::Duration{get<std::int64_t>()}};
  }
};

// --- record payload codecs --------------------------------------------------

void encode_payload(std::string& buf, const TraceRecord& r, RecordTag* tag) {
  if (const auto* p = std::get_if<PacketRecord>(&r)) {
    *tag = RecordTag::kPacket;
    append_time(buf, p->at);
    append<std::uint8_t>(buf, static_cast<std::uint8_t>(p->dir));
    append<std::uint8_t>(buf, static_cast<std::uint8_t>(p->protocol));
    append<std::uint32_t>(buf, p->ip_bytes);
    append<std::uint8_t>(buf, static_cast<std::uint8_t>(p->icmp_kind));
    append<std::uint16_t>(buf, p->icmp_id);
    append<std::uint16_t>(buf, p->icmp_seq);
    append_time(buf, p->echo_origin);
    append<std::uint16_t>(buf, p->src_port);
    append<std::uint16_t>(buf, p->dst_port);
    append<std::uint64_t>(buf, p->tcp_seq);
    append<std::uint8_t>(buf, p->tcp_flags);
  } else if (const auto* d = std::get_if<DeviceRecord>(&r)) {
    *tag = RecordTag::kDevice;
    append_time(buf, d->at);
    append<double>(buf, d->signal_level);
    append<double>(buf, d->signal_quality);
    append<double>(buf, d->silence_level);
  } else {
    const auto& l = std::get<LostRecords>(r);
    *tag = RecordTag::kLost;
    append_time(buf, l.at);
    append<std::uint32_t>(buf, l.lost_packet_records);
    append<std::uint32_t>(buf, l.lost_device_records);
  }
}

/// Decodes one record body (sans tag) from the cursor.  Shared by the v1
/// reader (cursor over the whole stream) and the v2 reader (cursor over one
/// frame's payload).
TraceRecord decode_payload(RecordTag tag, Cursor& cur) {
  switch (tag) {
    case RecordTag::kPacket: {
      PacketRecord p;
      p.at = cur.get_time();
      p.dir = static_cast<PacketDirection>(cur.get<std::uint8_t>());
      p.protocol = static_cast<net::Protocol>(cur.get<std::uint8_t>());
      p.ip_bytes = cur.get<std::uint32_t>();
      p.icmp_kind = static_cast<IcmpKind>(cur.get<std::uint8_t>());
      p.icmp_id = cur.get<std::uint16_t>();
      p.icmp_seq = cur.get<std::uint16_t>();
      p.echo_origin = cur.get_time();
      p.src_port = cur.get<std::uint16_t>();
      p.dst_port = cur.get<std::uint16_t>();
      p.tcp_seq = cur.get<std::uint64_t>();
      p.tcp_flags = cur.get<std::uint8_t>();
      return p;
    }
    case RecordTag::kDevice: {
      DeviceRecord d;
      d.at = cur.get_time();
      d.signal_level = cur.get<double>();
      d.signal_quality = cur.get<double>();
      d.silence_level = cur.get<double>();
      return d;
    }
    case RecordTag::kLost: {
      LostRecords l;
      l.at = cur.get_time();
      l.lost_packet_records = cur.get<std::uint32_t>();
      l.lost_device_records = cur.get<std::uint32_t>();
      return l;
    }
  }
  cur.fail("unknown record tag " +
           std::to_string(static_cast<int>(tag)));
}

bool known_tag(std::uint8_t tag) {
  return tag == static_cast<std::uint8_t>(RecordTag::kPacket) ||
         tag == static_cast<std::uint8_t>(RecordTag::kDevice) ||
         tag == static_cast<std::uint8_t>(RecordTag::kLost);
}

std::uint32_t frame_crc(std::uint8_t tag, const unsigned char* payload,
                        std::size_t len) {
  const std::uint32_t tag_crc = crc32c(&tag, 1);
  return crc32c(payload, len, tag_crc);
}

/// True when the 9 bytes at `pos` look like a decodable frame header whose
/// payload fits in the buffer and whose CRC validates.
bool frame_validates(const Cursor& cur, std::size_t pos) {
  if (cur.size - pos < kFrameHeaderBytes) return false;
  const std::uint8_t tag = cur.data[pos];
  std::uint32_t len, crc;
  std::memcpy(&len, cur.data + pos + 1, sizeof(len));
  std::memcpy(&crc, cur.data + pos + 5, sizeof(crc));
  if (len > kMaxRecordPayload) return false;
  if (cur.size - pos - kFrameHeaderBytes < len) return false;
  return frame_crc(tag, cur.data + pos + kFrameHeaderBytes, len) == crc;
}

// --- salvage bookkeeping ----------------------------------------------------

/// Accumulates one contiguous damaged region and flushes it as a single
/// LostRecords marker, timestamped with the last successfully decoded
/// record's time (the epoch before any record decoded) -- the same shape a
/// kernel-buffer overrun leaves in the stream.
struct DamageAccumulator {
  std::uint32_t lost_packet = 0;
  std::uint32_t lost_device = 0;
  sim::TimePoint last_good = sim::kEpoch;

  bool pending() const { return lost_packet > 0 || lost_device > 0; }

  void add(std::uint8_t tag, std::uint32_t n = 1) {
    if (tag == static_cast<std::uint8_t>(RecordTag::kDevice)) {
      lost_device += n;
    } else {
      lost_packet += n;
    }
  }

  void flush(CollectedTrace& trace, TraceReadReport& report) {
    if (!pending()) return;
    trace.records.emplace_back(LostRecords{last_good, lost_packet,
                                           lost_device});
    ++report.lost_markers_synthesized;
    lost_packet = 0;
    lost_device = 0;
  }
};

void emit_good_record(CollectedTrace& trace, TraceRecord rec,
                      TraceReadReport& report, DamageAccumulator& damage,
                      bool damage_seen) {
  damage.flush(trace, report);
  damage.last_good = record_time(rec);
  trace.records.push_back(std::move(rec));
  ++report.records_read;
  if (damage_seen) ++report.records_salvaged;
}

// --- v1 body ----------------------------------------------------------------

void read_body_v1(Cursor& cur, const TraceReadOptions& options,
                  CollectedTrace& trace, TraceReadReport& report) {
  DamageAccumulator damage;
  for (std::uint64_t i = 0; i < report.records_expected; ++i) {
    cur.record = i;
    if (options.mode == ReadMode::kStrict) {
      const auto tag = static_cast<RecordTag>(cur.get<std::uint8_t>());
      trace.records.push_back(decode_payload(tag, cur));
      ++report.records_read;
      continue;
    }
    // Salvage: v1 frames carry no length prefix, so damage cannot be
    // skipped over -- parsing stops at the first problem and the remainder
    // of the header's promised records becomes one LostRecords marker.
    const std::size_t mark = cur.pos;
    try {
      const auto tag = static_cast<RecordTag>(cur.get<std::uint8_t>());
      TraceRecord rec = decode_payload(tag, cur);
      emit_good_record(trace, std::move(rec), report, damage, false);
    } catch (const TraceFormatError&) {
      cur.pos = mark;
      report.truncated = true;
      const std::uint64_t lost = report.records_expected - i;
      report.records_skipped += lost;
      damage.add(static_cast<std::uint8_t>(RecordTag::kPacket),
                 static_cast<std::uint32_t>(
                     std::min<std::uint64_t>(lost, 0xffffffffu)));
      break;
    }
  }
  damage.flush(trace, report);
}

// --- v2 body ----------------------------------------------------------------

void read_body_v2(Cursor& cur, const TraceReadOptions& options,
                  CollectedTrace& trace, TraceReadReport& report) {
  const bool strict = options.mode == ReadMode::kStrict;
  DamageAccumulator damage;
  bool damage_seen = false;

  // Scans forward from just past `frame_start` for the next offset that
  // checksums as a frame; returns false at end of stream.
  const auto resync = [&](std::size_t frame_start) {
    ++report.resync_scans;
    std::size_t p = frame_start + 1;
    while (p < cur.size && !frame_validates(cur, p)) ++p;
    report.bytes_scanned += p - frame_start;
    if (p >= cur.size) {
      report.truncated = true;
      cur.pos = cur.size;
      return false;
    }
    cur.pos = p;
    return true;
  };

  while (cur.remaining() > 0) {
    cur.record = report.records_read + report.records_skipped;
    if (strict && report.records_read >= report.records_expected) break;
    const std::size_t frame_start = cur.pos;

    if (cur.remaining() < kFrameHeaderBytes) {
      if (strict) cur.fail("unexpected end of stream in frame header");
      report.truncated = true;
      ++report.records_skipped;
      damage.add(0);
      damage_seen = true;
      cur.pos = cur.size;
      break;
    }
    const auto tag = cur.get<std::uint8_t>();
    const auto len = cur.get<std::uint32_t>();
    const auto crc = cur.get<std::uint32_t>();

    // A length that cannot fit the buffer (or is absurd) means the header
    // itself is corrupt: the length cannot be trusted to skip forward, so
    // resynchronize by scanning for the next frame that checksums.
    if (len > kMaxRecordPayload || cur.remaining() < len) {
      if (strict) {
        if (len > kMaxRecordPayload) {
          cur.fail("implausible record length " + std::to_string(len));
        }
        cur.fail("unexpected end of stream in record payload");
      }
      damage.add(0);
      damage_seen = true;
      ++report.records_skipped;
      if (!resync(frame_start)) break;
      continue;
    }

    const unsigned char* payload = cur.data + cur.pos;
    const std::size_t payload_off = cur.pos;
    cur.pos += len;

    if (frame_crc(tag, payload, len) != crc) {
      if (strict) {
        throw TraceFormatError("record checksum mismatch",
                               cur.base + frame_start, cur.record);
      }
      ++report.crc_failures;
      ++report.records_skipped;
      damage.add(tag);
      damage_seen = true;
      // The length field may be part of the damage (a plausible-but-wrong
      // value skips into the middle of a later frame and cascades).  Only
      // trust the skip if it lands on a frame that checksums, or on EOF.
      if (cur.pos < cur.size && !frame_validates(cur, cur.pos)) {
        if (!resync(frame_start)) break;
      }
      continue;
    }
    if (!known_tag(tag)) {
      if (strict) {
        throw TraceFormatError("unknown record tag " + std::to_string(tag),
                               cur.base + frame_start, cur.record);
      }
      ++report.unknown_tags;
      ++report.records_skipped;
      damage.add(tag);
      damage_seen = true;
      continue;
    }

    // A checksummed frame of a known type.  Decode from the payload span;
    // a payload longer than the fields we know is a newer minor revision
    // (extra fields are ignored), a shorter one is damage the CRC cannot
    // see (it was written that way), which strict mode rejects.
    Cursor body{cur.data + payload_off, len, 0, cur.base + payload_off,
                cur.record};
    try {
      TraceRecord rec = decode_payload(static_cast<RecordTag>(tag), body);
      emit_good_record(trace, std::move(rec), report, damage, damage_seen);
    } catch (const TraceFormatError&) {
      if (strict) throw;
      ++report.records_skipped;
      damage.add(tag);
      damage_seen = true;
    }
  }

  if (strict && report.records_read < report.records_expected) {
    cur.fail("unexpected end of stream");
  }
  // Clean EOF but fewer frames than the header declared: the stream lost
  // its tail (or the count field itself is damaged) -- either way the
  // reader delivered less than promised, which salvage must report.  This
  // also catches truncation that lands exactly on a frame boundary.
  if (!strict &&
      report.records_read + report.records_skipped <
          report.records_expected) {
    report.truncated = true;
  }
  damage.flush(trace, report);
}

}  // namespace

// --- writer -----------------------------------------------------------------

void write_trace(std::ostream& out, const CollectedTrace& trace,
                 std::uint16_t version) {
  if (version != kTraceFormatVersionV1 && version != kTraceFormatVersionV2) {
    throw TraceFormatError("unsupported version " + std::to_string(version));
  }
  out.write(kMagic, sizeof(kMagic));
  put<std::uint16_t>(out, version);

  // Self-descriptive schema table.
  put<std::uint8_t>(out, static_cast<std::uint8_t>(schema().size()));
  for (const SchemaEntry& e : schema()) {
    put<std::uint8_t>(out, e.tag);
    put_string(out, e.name);
    put<std::uint8_t>(out, static_cast<std::uint8_t>(e.fields.size()));
    for (const char* f : e.fields) put_string(out, f);
  }

  put<std::uint64_t>(out, trace.records.size());
  std::string payload;
  for (const TraceRecord& r : trace.records) {
    payload.clear();
    RecordTag tag{};
    encode_payload(payload, r, &tag);
    if (version == kTraceFormatVersionV1) {
      put<std::uint8_t>(out, static_cast<std::uint8_t>(tag));
      out.write(payload.data(),
                static_cast<std::streamsize>(payload.size()));
    } else {
      const auto tag_byte = static_cast<std::uint8_t>(tag);
      put<std::uint8_t>(out, tag_byte);
      put<std::uint32_t>(out, static_cast<std::uint32_t>(payload.size()));
      put<std::uint32_t>(
          out, frame_crc(tag_byte,
                         reinterpret_cast<const unsigned char*>(
                             payload.data()),
                         payload.size()));
      out.write(payload.data(),
                static_cast<std::streamsize>(payload.size()));
    }
  }
}

// --- reader -----------------------------------------------------------------

TraceReadResult read_trace_ex(std::istream& in,
                              const TraceReadOptions& options) {
  // Slurp: in-memory parsing is what makes resynchronization scans and
  // exact remaining-size bounds possible.
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  Cursor cur{reinterpret_cast<const unsigned char*>(bytes.data()),
             bytes.size()};

  if (cur.remaining() < sizeof(kMagic) ||
      std::memcmp(cur.data, kMagic, sizeof(kMagic)) != 0) {
    throw TraceFormatError("bad magic");
  }
  cur.pos = sizeof(kMagic);

  TraceReadResult result;
  TraceReadReport& report = result.report;
  report.mode = options.mode;
  report.version = cur.get<std::uint16_t>();
  if (report.version != kTraceFormatVersionV1 &&
      report.version != kTraceFormatVersionV2) {
    throw TraceFormatError("unsupported version " +
                           std::to_string(report.version));
  }

  // Parse (and sanity-check) the schema table.  The header must be intact
  // even for salvage: without it there is no trustworthy record framing to
  // resynchronize against.
  const auto n_schemas = cur.get<std::uint8_t>();
  for (std::uint8_t i = 0; i < n_schemas; ++i) {
    (void)cur.get<std::uint8_t>();  // tag
    (void)cur.get_string();         // name
    const auto n_fields = cur.get<std::uint8_t>();
    for (std::uint8_t f = 0; f < n_fields; ++f) (void)cur.get_string();
  }

  report.records_expected = cur.get<std::uint64_t>();
  // The count field is attacker/corruption-controlled: never trust it with
  // an allocation.  The stream cannot hold more records than remaining
  // bytes allow, so clamp the reservation to that bound.
  result.trace.records.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(report.records_expected,
                              cur.remaining() / kMinRecordBytes + 1)));

  if (report.version == kTraceFormatVersionV1) {
    read_body_v1(cur, options, result.trace, report);
  } else {
    read_body_v2(cur, options, result.trace, report);
  }

  if (options.metrics != nullptr) {
    sim::MetricsRegistry& m = *options.metrics;
    m.counter(sim::metric::kRecordsSalvaged) += report.records_salvaged;
    m.counter(sim::metric::kCrcFailures) += report.crc_failures;
    m.counter(sim::metric::kResyncScans) += report.resync_scans;
  }
  return result;
}

CollectedTrace read_trace(std::istream& in) {
  return read_trace_ex(in, TraceReadOptions{}).trace;
}

void save_trace(const std::string& path, const CollectedTrace& trace,
                std::uint16_t version) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_trace(out, trace, version);
  if (!out) throw std::runtime_error("write failed: " + path);
}

CollectedTrace load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_trace(in);
}

TraceReadResult load_trace_ex(const std::string& path,
                              const TraceReadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_trace_ex(in, options);
}

}  // namespace tracemod::trace
