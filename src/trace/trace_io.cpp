#include "trace/trace_io.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>
#include <vector>

namespace tracemod::trace {

namespace {

constexpr char kMagic[4] = {'T', 'M', 'T', 'R'};

enum class RecordTag : std::uint8_t {
  kPacket = 1,
  kDevice = 2,
  kLost = 3,
};

struct SchemaEntry {
  std::uint8_t tag;
  const char* name;
  std::vector<const char*> fields;
};

const std::vector<SchemaEntry>& schema() {
  static const std::vector<SchemaEntry> s = {
      {static_cast<std::uint8_t>(RecordTag::kPacket),
       "packet",
       {"at_ns", "dir", "protocol", "ip_bytes", "icmp_kind", "icmp_id",
        "icmp_seq", "echo_origin_ns", "src_port", "dst_port", "tcp_seq",
        "tcp_flags"}},
      {static_cast<std::uint8_t>(RecordTag::kDevice),
       "device",
       {"at_ns", "signal_level", "signal_quality", "silence_level"}},
      {static_cast<std::uint8_t>(RecordTag::kLost),
       "lost_records",
       {"at_ns", "lost_packet_records", "lost_device_records"}},
  };
  return s;
}

// --- primitive writers/readers (little-endian) ---

template <typename T>
void put(std::ostream& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  unsigned char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out.write(reinterpret_cast<const char*>(buf), sizeof(T));
}

void put_string(std::ostream& out, const std::string& s) {
  if (s.size() > 0xffff) throw TraceFormatError("string too long");
  put<std::uint16_t>(out, static_cast<std::uint16_t>(s.size()));
  out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

template <typename T>
T get(std::istream& in) {
  static_assert(std::is_trivially_copyable_v<T>);
  unsigned char buf[sizeof(T)];
  in.read(reinterpret_cast<char*>(buf), sizeof(T));
  if (!in) throw TraceFormatError("unexpected end of stream");
  T v;
  std::memcpy(&v, buf, sizeof(T));
  return v;
}

std::string get_string(std::istream& in) {
  const auto n = get<std::uint16_t>(in);
  std::string s(n, '\0');
  in.read(s.data(), n);
  if (!in) throw TraceFormatError("unexpected end of stream in string");
  return s;
}

void put_time(std::ostream& out, sim::TimePoint t) {
  put<std::int64_t>(out, t.time_since_epoch().count());
}

sim::TimePoint get_time(std::istream& in) {
  return sim::TimePoint{sim::Duration{get<std::int64_t>(in)}};
}

}  // namespace

void write_trace(std::ostream& out, const CollectedTrace& trace) {
  out.write(kMagic, sizeof(kMagic));
  put<std::uint16_t>(out, kTraceFormatVersion);

  // Self-descriptive schema table.
  put<std::uint8_t>(out, static_cast<std::uint8_t>(schema().size()));
  for (const SchemaEntry& e : schema()) {
    put<std::uint8_t>(out, e.tag);
    put_string(out, e.name);
    put<std::uint8_t>(out, static_cast<std::uint8_t>(e.fields.size()));
    for (const char* f : e.fields) put_string(out, f);
  }

  put<std::uint64_t>(out, trace.records.size());
  for (const TraceRecord& r : trace.records) {
    if (const auto* p = std::get_if<PacketRecord>(&r)) {
      put<std::uint8_t>(out, static_cast<std::uint8_t>(RecordTag::kPacket));
      put_time(out, p->at);
      put<std::uint8_t>(out, static_cast<std::uint8_t>(p->dir));
      put<std::uint8_t>(out, static_cast<std::uint8_t>(p->protocol));
      put<std::uint32_t>(out, p->ip_bytes);
      put<std::uint8_t>(out, static_cast<std::uint8_t>(p->icmp_kind));
      put<std::uint16_t>(out, p->icmp_id);
      put<std::uint16_t>(out, p->icmp_seq);
      put_time(out, p->echo_origin);
      put<std::uint16_t>(out, p->src_port);
      put<std::uint16_t>(out, p->dst_port);
      put<std::uint64_t>(out, p->tcp_seq);
      put<std::uint8_t>(out, p->tcp_flags);
    } else if (const auto* d = std::get_if<DeviceRecord>(&r)) {
      put<std::uint8_t>(out, static_cast<std::uint8_t>(RecordTag::kDevice));
      put_time(out, d->at);
      put<double>(out, d->signal_level);
      put<double>(out, d->signal_quality);
      put<double>(out, d->silence_level);
    } else if (const auto* l = std::get_if<LostRecords>(&r)) {
      put<std::uint8_t>(out, static_cast<std::uint8_t>(RecordTag::kLost));
      put_time(out, l->at);
      put<std::uint32_t>(out, l->lost_packet_records);
      put<std::uint32_t>(out, l->lost_device_records);
    }
  }
}

CollectedTrace read_trace(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw TraceFormatError("bad magic");
  }
  const auto version = get<std::uint16_t>(in);
  if (version != kTraceFormatVersion) {
    throw TraceFormatError("unsupported version " + std::to_string(version));
  }

  // Parse (and sanity-check) the schema table.
  const auto n_schemas = get<std::uint8_t>(in);
  for (std::uint8_t i = 0; i < n_schemas; ++i) {
    (void)get<std::uint8_t>(in);  // tag
    (void)get_string(in);         // name
    const auto n_fields = get<std::uint8_t>(in);
    for (std::uint8_t f = 0; f < n_fields; ++f) (void)get_string(in);
  }

  CollectedTrace trace;
  const auto count = get<std::uint64_t>(in);
  trace.records.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto tag = static_cast<RecordTag>(get<std::uint8_t>(in));
    switch (tag) {
      case RecordTag::kPacket: {
        PacketRecord p;
        p.at = get_time(in);
        p.dir = static_cast<PacketDirection>(get<std::uint8_t>(in));
        p.protocol = static_cast<net::Protocol>(get<std::uint8_t>(in));
        p.ip_bytes = get<std::uint32_t>(in);
        p.icmp_kind = static_cast<IcmpKind>(get<std::uint8_t>(in));
        p.icmp_id = get<std::uint16_t>(in);
        p.icmp_seq = get<std::uint16_t>(in);
        p.echo_origin = get_time(in);
        p.src_port = get<std::uint16_t>(in);
        p.dst_port = get<std::uint16_t>(in);
        p.tcp_seq = get<std::uint64_t>(in);
        p.tcp_flags = get<std::uint8_t>(in);
        trace.records.emplace_back(p);
        break;
      }
      case RecordTag::kDevice: {
        DeviceRecord d;
        d.at = get_time(in);
        d.signal_level = get<double>(in);
        d.signal_quality = get<double>(in);
        d.silence_level = get<double>(in);
        trace.records.emplace_back(d);
        break;
      }
      case RecordTag::kLost: {
        LostRecords l;
        l.at = get_time(in);
        l.lost_packet_records = get<std::uint32_t>(in);
        l.lost_device_records = get<std::uint32_t>(in);
        trace.records.emplace_back(l);
        break;
      }
      default:
        throw TraceFormatError("unknown record tag " +
                               std::to_string(static_cast<int>(tag)));
    }
  }
  return trace;
}

void save_trace(const std::string& path, const CollectedTrace& trace) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_trace(out, trace);
  if (!out) throw std::runtime_error("write failed: " + path);
}

CollectedTrace load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_trace(in);
}

}  // namespace tracemod::trace
