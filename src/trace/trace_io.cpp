#include "trace/trace_io.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "sim/io/durable.hpp"
#include "trace/frame_format.hpp"
#include "trace/stream_reader.hpp"

namespace tracemod::trace {

// --- writer -----------------------------------------------------------------

void write_trace(std::ostream& out, const CollectedTrace& trace,
                 std::uint16_t version) {
  wire::write_container_header(out, version, trace.records.size());
  for (const TraceRecord& r : trace.records) {
    const std::string frame = wire::encode_frame(r, version);
    out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
  }
}

// --- reader -----------------------------------------------------------------

TraceReadResult read_trace_ex(std::istream& in,
                              const TraceReadOptions& options) {
  // The incremental reader makes every decision the old slurping parse made
  // (same errors, same offsets, same salvage markers); this facade just
  // collects its records into memory.
  TraceStreamReader reader(in, options);

  TraceReadResult result;
  // The count field is attacker/corruption-controlled: never trust it with
  // an allocation.  The stream cannot hold more records than its size
  // allows, so clamp the reservation to that bound (a conservative constant
  // when the stream is not seekable).
  const std::uint64_t expected = reader.report().records_expected;
  std::uint64_t size_bound = 1024;
  if (reader.stream_size()) {
    const std::uint64_t body = *reader.stream_size() > reader.header_bytes()
                                   ? *reader.stream_size() -
                                         reader.header_bytes()
                                   : 0;
    size_bound = body / wire::kMinRecordBytes + 1;
  }
  result.trace.records.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(expected, size_bound)));

  TraceRecord rec;
  while (reader.next(&rec)) result.trace.records.push_back(std::move(rec));
  result.report = reader.report();
  return result;
}

CollectedTrace read_trace(std::istream& in) {
  return read_trace_ex(in, TraceReadOptions{}).trace;
}

void save_trace(const std::string& path, const CollectedTrace& trace,
                std::uint16_t version) {
  // Atomic replace (sim/io/durable.hpp): a collected trace is a final
  // artifact, so a crash or full disk mid-save leaves the previous file
  // (or nothing), never a truncated container that replays short.
  std::ostringstream out;
  write_trace(out, trace, version);
  if (!out) throw std::runtime_error("write failed: " + path);
  const std::string bytes = out.str();
  const sim::io::IoResult r = sim::io::write_file_atomic(path, bytes);
  if (!r.ok) {
    if (r.error.op == sim::io::IoOp::kOpen) {
      throw std::runtime_error("cannot open for writing: " + path);
    }
    throw std::runtime_error("write failed: " + path + " (" +
                             r.error.describe() + ")");
  }
}

CollectedTrace load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_trace(in);
}

TraceReadResult load_trace_ex(const std::string& path,
                              const TraceReadOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_trace_ex(in, options);
}

}  // namespace tracemod::trace
