// The paper's modified ping workload (Section 3.2.2).
//
// Each second the workload sends a group of three ICMP ECHOs in two stages:
//   stage 1: one small ECHO of payload size s1;
//   stage 2: on receiving stage 1's reply, two larger ECHOs of size s2
//            back-to-back.
// Round-trips of the small/large pair give F and V (equations 5-6); the
// queueing of the back-to-back pair at the bottleneck separates Vb from Vr
// (equations 7-8).  Sequence numbers increase monotonically across all
// ECHOs so the distiller can count losses from reply gaps.
#pragma once

#include <cstdint>
#include <optional>

#include "sim/clock_model.hpp"
#include "transport/host.hpp"

namespace tracemod::trace {

struct PingConfig {
  std::uint32_t s1 = 32;      ///< small payload bytes
  std::uint32_t s2 = 1024;    ///< large payload bytes
  sim::Duration period = sim::seconds(1);
  std::uint16_t id = 42;      ///< process id carried in the ICMP id field
};

class PingWorkload {
 public:
  struct Stats {
    std::uint64_t groups_started = 0;
    std::uint64_t echoes_sent = 0;
    std::uint64_t stage1_replies = 0;
    std::uint64_t stage2_replies = 0;
  };

  /// clock: the collection host's clock; its readings are embedded in the
  /// ECHO payloads, so drift flows through to recorded RTTs exactly as on
  /// real hardware.
  PingWorkload(transport::Host& host, net::IpAddress target,
               sim::ClockModel& clock, PingConfig cfg = {});

  void start();
  void stop();

  const Stats& stats() const { return stats_; }
  const PingConfig& config() const { return cfg_; }

 private:
  void tick();
  void on_reply(const net::Packet& pkt);
  void send_echo(std::uint32_t payload_size);

  transport::Host& host_;
  net::IpAddress target_;
  sim::ClockModel& clock_;
  PingConfig cfg_;
  sim::Timer timer_;
  bool running_ = false;
  std::uint16_t next_seq_ = 0;
  std::optional<std::uint16_t> pending_stage1_seq_;
  Stats stats_;
};

}  // namespace tracemod::trace
