// Web browsing benchmark (paper Section 4.2, Figure 6).
//
// Models Mosaic-era HTTP/1.0: one TCP connection per object, a small GET,
// a response of the object's size, server-side close.  The client replays a
// reference trace of objects "as fast as possible", separated only by the
// browser's processing time per object.  Reference traces stand in for the
// paper's five users' search-task traces: seeded synthetic lists with
// heavy-tailed object sizes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/random.hpp"
#include "transport/host.hpp"

namespace tracemod::apps {

struct WebReference {
  std::uint32_t object_bytes = 0;
  sim::Duration processing{};  ///< client think/render time after the fetch
};

/// A synthetic search-task reference trace: `count` objects, heavy-tailed
/// sizes (median a few KB), ~0.2 s client processing per object.
std::vector<WebReference> make_search_task_trace(sim::Rng& rng,
                                                 std::size_t count);

/// Serves any requested object size on the given port.
class WebServer {
 public:
  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t bytes_served = 0;
  };

  explicit WebServer(transport::Host& host, std::uint16_t port = 80);

  const Stats& stats() const { return stats_; }

 private:
  transport::Host& host_;
  Stats stats_;
};

/// Replays a reference trace against a server and reports the elapsed time.
class WebBenchmark {
 public:
  struct Result {
    sim::Duration elapsed{};
    std::size_t objects_fetched = 0;
    std::size_t objects_failed = 0;
    std::uint64_t bytes_fetched = 0;
    bool ok = false;
  };
  using Done = std::function<void(Result)>;

  /// object_timeout: the browser's per-fetch read timeout; a fetch that
  /// exceeds it is aborted (RST) and counted failed.
  WebBenchmark(transport::Host& client, net::Endpoint server,
               std::vector<WebReference> refs,
               sim::Duration object_timeout = sim::seconds(30));

  void start(Done done);

 private:
  void fetch_next();
  void finish(bool ok);

  transport::Host& client_;
  net::Endpoint server_;
  std::vector<WebReference> refs_;
  sim::Duration object_timeout_;
  std::unique_ptr<sim::Timer> timer_;
  std::size_t next_ = 0;
  sim::TimePoint started_{};
  Done done_;
  Result result_;
};

}  // namespace tracemod::apps
