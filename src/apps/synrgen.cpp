#include "apps/synrgen.hpp"

namespace tracemod::apps {

SynRGenUser::SynRGenUser(transport::Host& host, net::Endpoint server,
                         std::string name, std::uint64_t seed,
                         SynRGenConfig cfg)
    : host_(host),
      name_(std::move(name)),
      cfg_(cfg),
      rng_(seed),
      nfs_(host, server) {}

std::string SynRGenUser::file_path(std::size_t i) const {
  return "home/" + name_ + "/f" + std::to_string(i);
}

void SynRGenUser::start() {
  if (running_) return;
  running_ = true;
  nfs_.mkdir("home", [this](const NfsReply&, bool) {
    nfs_.mkdir("home/" + name_, [this](const NfsReply&, bool) { setup(0); });
  });
}

void SynRGenUser::setup(std::size_t next_file) {
  if (!running_) return;
  if (next_file >= cfg_.files) {
    think();
    return;
  }
  nfs_.create(file_path(next_file), [this, next_file](const NfsReply&, bool) {
    nfs_.write(file_path(next_file), 0, cfg_.file_bytes,
               [this, next_file](const NfsReply&, bool) {
                 setup(next_file + 1);
               });
  });
}

void SynRGenUser::stop() { running_ = false; }

void SynRGenUser::think() {
  if (!running_) return;
  host_.loop().schedule(
      sim::from_seconds(rng_.exponential(cfg_.mean_think_s)), [this] {
        if (!running_) return;
        ++stats_.cycles;
        std::vector<std::pair<NfsOp, std::uint32_t>> ops;
        if (rng_.chance(cfg_.compile_fraction)) {
          // "Debug": compile-ish burst -- heavier reads and object writes.
          ++stats_.compiles;
          const auto stats_n = rng_.uniform_int(12, 24);
          for (std::int64_t i = 0; i < stats_n; ++i) {
            ops.emplace_back(NfsOp::kGetAttr, 0);
          }
          for (int i = 0; i < 8; ++i) {
            ops.emplace_back(NfsOp::kRead, cfg_.file_bytes);
          }
          for (int i = 0; i < 4; ++i) {
            ops.emplace_back(NfsOp::kWrite, cfg_.file_bytes);
          }
        } else {
          // "Edit": stat the tree, read a file, save a small change.
          ++stats_.edits;
          const auto stats_n = rng_.uniform_int(4, 10);
          for (std::int64_t i = 0; i < stats_n; ++i) {
            ops.emplace_back(NfsOp::kGetAttr, 0);
          }
          ops.emplace_back(NfsOp::kRead, cfg_.file_bytes / 2);
          ops.emplace_back(NfsOp::kWrite, cfg_.file_bytes / 4);
        }
        run_burst(std::move(ops), 0);
      });
}

void SynRGenUser::run_burst(std::vector<std::pair<NfsOp, std::uint32_t>> ops,
                            std::size_t idx) {
  if (!running_ || idx >= ops.size()) {
    think();
    return;
  }
  const auto [op, bytes] = ops[idx];
  const auto file = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(cfg_.files) - 1));
  nfs_.call(op, file_path(file), 0, bytes,
            [this, ops = std::move(ops), idx](const NfsReply&, bool) mutable {
              run_burst(std::move(ops), idx + 1);
            });
}

}  // namespace tracemod::apps
