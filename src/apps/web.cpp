#include "apps/web.hpp"

#include <memory>

namespace tracemod::apps {

namespace {

struct HttpRequest {
  std::uint32_t object_bytes = 0;  ///< size of the object being asked for
};
constexpr std::uint32_t kRequestBytes = 300;   ///< GET + headers
constexpr std::uint32_t kResponseHeaderBytes = 200;

}  // namespace

std::vector<WebReference> make_search_task_trace(sim::Rng& rng,
                                                 std::size_t count) {
  std::vector<WebReference> refs;
  refs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    WebReference ref;
    // Heavy-tailed object sizes: mostly small pages/icons, occasional large
    // images.  Bounded Pareto keeps trials comparable.
    ref.object_bytes =
        static_cast<std::uint32_t>(rng.pareto(1.2, 1500.0, 200000.0));
    // Mosaic parse/render plus the user-driven pace of "as fast as
    // possible" trace replay.
    ref.processing = sim::from_seconds(std::max(0.02, rng.normal(0.245, 0.05)));
    refs.push_back(ref);
  }
  return refs;
}

WebServer::WebServer(transport::Host& host, std::uint16_t port)
    : host_(host) {
  host_.tcp().listen(port, [this](transport::TcpConnection& conn) {
    conn.set_on_record([this, &conn](const std::any& meta, std::uint64_t) {
      const auto* req = std::any_cast<HttpRequest>(&meta);
      if (req == nullptr) return;
      ++stats_.requests;
      stats_.bytes_served += req->object_bytes;
      // Response: headers, then the body; HTTP/1.0 close marks the end.
      conn.send(kResponseHeaderBytes + req->object_bytes);
      conn.close();
    });
  });
}

WebBenchmark::WebBenchmark(transport::Host& client, net::Endpoint server,
                           std::vector<WebReference> refs,
                           sim::Duration object_timeout)
    : client_(client),
      server_(server),
      refs_(std::move(refs)),
      object_timeout_(object_timeout),
      timer_(std::make_unique<sim::Timer>(client.loop())) {}

void WebBenchmark::start(Done done) {
  done_ = std::move(done);
  started_ = client_.loop().now();
  next_ = 0;
  result_ = Result{};
  fetch_next();
}

void WebBenchmark::finish(bool ok) {
  result_.elapsed = client_.loop().now() - started_;
  result_.ok = ok;
  if (done_) done_(result_);
}

void WebBenchmark::fetch_next() {
  if (next_ >= refs_.size()) {
    finish(true);
    return;
  }
  const WebReference ref = refs_[next_++];
  auto& conn = client_.tcp().connect(server_);
  auto advance = [this, ref](bool ok) {
    // A failed fetch (connection reset / gave up retrying) is recorded and
    // skipped; the browser moves on to the next reference.
    if (ok) {
      ++result_.objects_fetched;
      result_.bytes_fetched += ref.object_bytes;
    } else {
      ++result_.objects_failed;
    }
    client_.loop().schedule(ref.processing, [this] { fetch_next(); });
  };
  auto finished = std::make_shared<bool>(false);
  auto once = [finished, advance](bool ok) {
    if (*finished) return;
    *finished = true;
    advance(ok);
  };

  conn.set_on_connected([&conn, ref] {
    conn.send(kRequestBytes, HttpRequest{ref.object_bytes});
  });
  // Browser read timeout: abort a wedged fetch and move on.
  timer_->arm(object_timeout_, [&conn] { conn.abort(); });
  // The whole response has arrived when the server's FIN lands in order.
  conn.set_on_peer_fin([this, &conn, once] {
    timer_->cancel();
    conn.close();
    once(true);
  });
  conn.set_on_closed([this, once](bool error) {
    timer_->cancel();
    once(!error);
  });
}

}  // namespace tracemod::apps
