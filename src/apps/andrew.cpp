#include "apps/andrew.hpp"

#include "sim/assert.hpp"

namespace tracemod::apps {

namespace {

std::string dir_name(std::size_t i) {
  return "src/dir" + std::to_string(i);
}

std::string file_name(const AndrewConfig& cfg, std::size_t i) {
  return dir_name(i % cfg.dirs) + "/file" + std::to_string(i) + ".c";
}

std::string object_name(std::size_t i) {
  return "obj/file" + std::to_string(i) + ".o";
}

}  // namespace

std::vector<std::uint32_t> AndrewBenchmark::file_sizes() const {
  // Deterministic sizes summing to ~total_bytes: a mild spread around the
  // mean, from the benchmark seed so every trial sees the same tree.
  sim::Rng rng(seed_ ^ 0xA9D3Eu);
  std::vector<std::uint32_t> sizes(cfg_.files);
  double sum = 0;
  std::vector<double> raw(cfg_.files);
  for (auto& r : raw) {
    r = std::max(0.2, rng.normal(1.0, 0.5));
    sum += r;
  }
  for (std::size_t i = 0; i < cfg_.files; ++i) {
    sizes[i] = static_cast<std::uint32_t>(
        raw[i] / sum * static_cast<double>(cfg_.total_bytes));
    sizes[i] = std::max<std::uint32_t>(sizes[i], 64);
  }
  return sizes;
}

void populate_andrew_tree(NfsServer& server, const AndrewConfig& cfg,
                          std::uint64_t seed) {
  // Master copy the benchmark reads from (the Copy phase's source).
  sim::Rng rng(seed ^ 0xA9D3Eu);
  std::vector<double> raw(cfg.files);
  double sum = 0;
  for (auto& r : raw) {
    r = std::max(0.2, rng.normal(1.0, 0.5));
    sum += r;
  }
  for (std::size_t i = 0; i < cfg.files; ++i) {
    auto size = static_cast<std::uint32_t>(
        raw[i] / sum * static_cast<double>(cfg.total_bytes));
    size = std::max<std::uint32_t>(size, 64);
    server.add_file("master/file" + std::to_string(i) + ".c", size);
  }
  server.add_dir("obj");
}

AndrewBenchmark::AndrewBenchmark(transport::Host& client, net::Endpoint server,
                                 AndrewConfig cfg, std::uint64_t seed)
    : client_(client),
      cfg_(cfg),
      seed_(seed),
      nfs_(client, server,
           NfsClientConfig{sim::milliseconds(700), 2.0, sim::seconds(20), 15}) {
}

void AndrewBenchmark::build_phases() {
  const auto sizes = file_sizes();
  sim::Rng rng(seed_ ^ 0x5EEDF00Du);

  // --- MakeDir: create the target tree.
  Phase makedir{"MakeDir", {}, cfg_.cpu_makedir_s, &result_.makedir_s};
  makedir.ops.push_back(Op{NfsOp::kMkdir, "src", 0, 0});
  for (std::size_t i = 0; i < cfg_.dirs; ++i) {
    makedir.ops.push_back(Op{NfsOp::kLookup, "src", 0, 0});
    makedir.ops.push_back(Op{NfsOp::kMkdir, dir_name(i), 0, 0});
    makedir.ops.push_back(Op{NfsOp::kGetAttr, dir_name(i), 0, 0});
  }

  // --- Copy: read the master copy, write into the tree.
  Phase copy{"Copy", {}, cfg_.cpu_copy_s, &result_.copy_s};
  for (std::size_t i = 0; i < cfg_.files; ++i) {
    const std::string master = "master/file" + std::to_string(i) + ".c";
    const std::string target = file_name(cfg_, i);
    copy.ops.push_back(Op{NfsOp::kLookup, master, 0, 0});
    copy.ops.push_back(Op{NfsOp::kCreate, target, 0, 0});
    for (std::uint32_t off = 0; off < sizes[i]; off += cfg_.io_chunk) {
      const std::uint32_t len = std::min(cfg_.io_chunk, sizes[i] - off);
      copy.ops.push_back(Op{NfsOp::kRead, master, off, len});
      copy.ops.push_back(Op{NfsOp::kWrite, target, off, len});
    }
    copy.ops.push_back(Op{NfsOp::kGetAttr, target, 0, 0});
  }

  // --- ScanDir: stat everything, repeatedly (cache revalidation traffic).
  Phase scandir{"ScanDir", {}, cfg_.cpu_scandir_s, &result_.scandir_s};
  for (std::size_t i = 0; i < cfg_.dirs; ++i) {
    scandir.ops.push_back(Op{NfsOp::kReadDir, dir_name(i), 0, 0});
  }
  for (std::size_t k = 0; k < cfg_.scandir_status_ops; ++k) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(cfg_.files) - 1));
    scandir.ops.push_back(Op{NfsOp::kGetAttr, file_name(cfg_, i), 0, 0});
  }

  // --- ReadAll: read every file; caches are warm, so the bulk of the
  // traffic is status checks plus the data reads themselves.
  Phase readall{"ReadAll", {}, cfg_.cpu_readall_s, &result_.readall_s};
  for (std::size_t i = 0; i < cfg_.files; ++i) {
    const std::string target = file_name(cfg_, i);
    readall.ops.push_back(Op{NfsOp::kGetAttr, target, 0, 0});
    for (std::uint32_t off = 0; off < sizes[i]; off += cfg_.io_chunk) {
      const std::uint32_t len = std::min(cfg_.io_chunk, sizes[i] - off);
      readall.ops.push_back(Op{NfsOp::kRead, target, off, len});
    }
  }
  for (std::size_t k = 0; k < cfg_.readall_status_ops; ++k) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(cfg_.files) - 1));
    readall.ops.push_back(Op{NfsOp::kGetAttr, file_name(cfg_, i), 0, 0});
  }

  // --- Make: compile: read sources, write objects, lots of stats between.
  Phase make{"Make", {}, cfg_.cpu_make_s, &result_.make_s};
  for (std::size_t i = 0; i < cfg_.files; ++i) {
    const std::string target = file_name(cfg_, i);
    make.ops.push_back(Op{NfsOp::kGetAttr, target, 0, 0});
    make.ops.push_back(Op{NfsOp::kRead, target, 0, sizes[i]});
  }
  for (std::size_t i = 0; i < cfg_.objects_built; ++i) {
    make.ops.push_back(Op{NfsOp::kCreate, object_name(i), 0, 0});
    make.ops.push_back(Op{NfsOp::kWrite, object_name(i), 0, cfg_.io_chunk});
  }
  for (std::size_t k = 0; k < cfg_.make_status_ops; ++k) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(cfg_.files) - 1));
    make.ops.push_back(Op{NfsOp::kGetAttr, file_name(cfg_, i), 0, 0});
  }

  phases_ = {std::move(makedir), std::move(copy), std::move(scandir),
             std::move(readall), std::move(make)};
}

void AndrewBenchmark::start(Done done) {
  done_ = std::move(done);
  result_ = AndrewResult{};
  build_phases();
  started_ = client_.loop().now();
  run_phase(0);
}

void AndrewBenchmark::run_phase(std::size_t phase_idx) {
  if (phase_idx >= phases_.size()) {
    result_.total_s = sim::to_seconds(client_.loop().now() - started_);
    result_.ok = true;
    result_.rpc_calls = nfs_.stats().calls;
    result_.rpc_retransmissions = nfs_.stats().retransmissions;
    if (done_) done_(result_);
    return;
  }
  run_op(phase_idx, 0, client_.loop().now());
}

void AndrewBenchmark::run_op(std::size_t phase_idx, std::size_t op_idx,
                             sim::TimePoint phase_start) {
  Phase& phase = phases_[phase_idx];
  if (op_idx >= phase.ops.size()) {
    *phase.result_slot = sim::to_seconds(client_.loop().now() - phase_start);
    run_phase(phase_idx + 1);
    return;
  }
  const Op& op = phase.ops[op_idx];
  // CPU between RPCs: the per-op syscall cost plus this phase's share of
  // compute (compilation, checksumming, directory walking).
  const double cpu =
      cfg_.cpu_per_op_s +
      phase.cpu_budget_s / static_cast<double>(phase.ops.size());
  nfs_.call(op.op, op.path, op.offset, op.length,
            [this, phase_idx, op_idx, phase_start, cpu](const NfsReply&,
                                                        bool ok) {
              if (!ok) {
                // An RPC that gave up after retries: a real hard-mounted
                // NFS would wedge; we record failure and finish.
                result_.ok = false;
                result_.total_s =
                    sim::to_seconds(client_.loop().now() - started_);
                if (done_) done_(result_);
                return;
              }
              client_.loop().schedule(sim::from_seconds(cpu), [this, phase_idx,
                                                               op_idx,
                                                               phase_start] {
                run_op(phase_idx, op_idx + 1, phase_start);
              });
            });
}

}  // namespace tracemod::apps
