#include "apps/nfs.hpp"

#include <sstream>

#include "sim/assert.hpp"

namespace tracemod::apps {

namespace {

constexpr std::uint32_t kRpcRequestOverhead = 120;  ///< RPC + NFS headers
constexpr std::uint32_t kRpcReplyOverhead = 96;
constexpr std::uint32_t kDirEntryBytes = 24;
constexpr std::size_t kReplyCacheCapacity = 256;

std::vector<std::string> split_path(const std::string& path) {
  std::vector<std::string> parts;
  std::istringstream ss(path);
  std::string part;
  while (std::getline(ss, part, '/')) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

}  // namespace

const char* to_string(NfsOp op) {
  switch (op) {
    case NfsOp::kGetAttr: return "getattr";
    case NfsOp::kLookup: return "lookup";
    case NfsOp::kRead: return "read";
    case NfsOp::kWrite: return "write";
    case NfsOp::kCreate: return "create";
    case NfsOp::kMkdir: return "mkdir";
    case NfsOp::kReadDir: return "readdir";
    case NfsOp::kRemove: return "remove";
  }
  return "?";
}

std::uint32_t request_wire_bytes(const NfsRequest& req) {
  std::uint32_t bytes =
      kRpcRequestOverhead + static_cast<std::uint32_t>(req.path.size());
  if (req.op == NfsOp::kWrite) bytes += req.length;  // data rides the request
  return bytes;
}

std::uint32_t reply_wire_bytes(const NfsReply& rep) {
  std::uint32_t bytes = kRpcReplyOverhead + rep.data_bytes;
  bytes += static_cast<std::uint32_t>(rep.entries.size()) * kDirEntryBytes;
  return bytes;
}

// ------------------------------------------------------------- server ----

NfsServer::NfsServer(transport::Host& host, std::uint16_t port)
    : host_(host), socket_(host.udp(), port) {
  root_.is_dir = true;
  socket_.set_receive_callback(
      [this](const net::Packet& pkt, net::Endpoint from) {
        on_datagram(pkt, from);
      });
}

NfsServer::INode* NfsServer::resolve(const std::string& path) {
  INode* node = &root_;
  for (const std::string& part : split_path(path)) {
    if (!node->is_dir) return nullptr;
    auto it = node->children.find(part);
    if (it == node->children.end()) return nullptr;
    node = it->second.get();
  }
  return node;
}

const NfsServer::INode* NfsServer::resolve(const std::string& path) const {
  return const_cast<NfsServer*>(this)->resolve(path);
}

NfsServer::INode* NfsServer::resolve_parent(const std::string& path,
                                            std::string* leaf) {
  auto parts = split_path(path);
  if (parts.empty()) return nullptr;
  *leaf = parts.back();
  INode* node = &root_;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    if (!node->is_dir) return nullptr;
    auto it = node->children.find(parts[i]);
    if (it == node->children.end()) return nullptr;
    node = it->second.get();
  }
  return node->is_dir ? node : nullptr;
}

void NfsServer::add_dir(const std::string& path) {
  INode* node = &root_;
  for (const std::string& part : split_path(path)) {
    auto& child = node->children[part];
    if (!child) {
      child = std::make_unique<INode>();
      child->is_dir = true;
    }
    node = child.get();
  }
}

void NfsServer::add_file(const std::string& path, std::uint32_t size) {
  auto parts = split_path(path);
  TM_ASSERT(!parts.empty());
  std::string dir;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    dir += parts[i];
    dir += '/';
  }
  if (!dir.empty()) add_dir(dir);
  std::string leaf;
  INode* parent = resolve_parent(path, &leaf);
  TM_ASSERT(parent != nullptr);
  auto& child = parent->children[leaf];
  child = std::make_unique<INode>();
  child->is_dir = false;
  child->size = size;
}

bool NfsServer::exists(const std::string& path) const {
  return resolve(path) != nullptr;
}

NfsAttr NfsServer::getattr(const std::string& path) const {
  const INode* node = resolve(path);
  TM_ASSERT(node != nullptr);
  return NfsAttr{node->is_dir, node->size, node->generation};
}

NfsReply NfsServer::execute(const NfsRequest& req) {
  NfsReply rep;
  rep.xid = req.xid;
  rep.op = req.op;

  auto fill_attr = [&rep](const INode& n) {
    rep.attr = NfsAttr{n.is_dir, n.size, n.generation};
  };

  switch (req.op) {
    case NfsOp::kGetAttr:
    case NfsOp::kLookup: {
      const INode* node = resolve(req.path);
      if (node == nullptr) {
        rep.status = NfsStatus::kNoEntry;
      } else {
        fill_attr(*node);
      }
      break;
    }
    case NfsOp::kRead: {
      INode* node = resolve(req.path);
      if (node == nullptr) {
        rep.status = NfsStatus::kNoEntry;
      } else if (node->is_dir) {
        rep.status = NfsStatus::kIsDir;
      } else {
        fill_attr(*node);
        if (req.offset < node->size) {
          rep.data_bytes = std::min(req.length, node->size - req.offset);
        }
      }
      break;
    }
    case NfsOp::kWrite: {
      INode* node = resolve(req.path);
      if (node == nullptr) {
        rep.status = NfsStatus::kNoEntry;
      } else if (node->is_dir) {
        rep.status = NfsStatus::kIsDir;
      } else {
        node->size = std::max(node->size, req.offset + req.length);
        ++node->generation;
        fill_attr(*node);
      }
      break;
    }
    case NfsOp::kCreate:
    case NfsOp::kMkdir: {
      std::string leaf;
      INode* parent = resolve_parent(req.path, &leaf);
      if (parent == nullptr) {
        rep.status = NfsStatus::kNoEntry;
      } else if (parent->children.count(leaf) != 0) {
        rep.status = NfsStatus::kExists;
        fill_attr(*parent->children[leaf]);
      } else {
        auto node = std::make_unique<INode>();
        node->is_dir = (req.op == NfsOp::kMkdir);
        fill_attr(*node);
        parent->children[leaf] = std::move(node);
      }
      break;
    }
    case NfsOp::kReadDir: {
      const INode* node = resolve(req.path);
      if (node == nullptr) {
        rep.status = NfsStatus::kNoEntry;
      } else if (!node->is_dir) {
        rep.status = NfsStatus::kNotDir;
      } else {
        for (const auto& [name, child] : node->children) {
          (void)child;
          rep.entries.push_back(name);
        }
      }
      break;
    }
    case NfsOp::kRemove: {
      std::string leaf;
      INode* parent = resolve_parent(req.path, &leaf);
      if (parent == nullptr || parent->children.erase(leaf) == 0) {
        rep.status = NfsStatus::kNoEntry;
      }
      break;
    }
  }
  if (rep.status != NfsStatus::kOk) ++stats_.errors;
  return rep;
}

void NfsServer::on_datagram(const net::Packet& pkt, net::Endpoint from) {
  const auto* req = std::any_cast<NfsRequest>(&pkt.payload);
  if (req == nullptr) return;
  ++stats_.calls;

  // Duplicate cache keyed on (client address, port, xid): two clients may
  // legitimately use the same xid sequence.
  const CacheKey key{from.addr.value, from.port, req->xid};
  NfsReply rep;
  auto cached = reply_cache_.find(key);
  if (cached != reply_cache_.end()) {
    ++stats_.duplicate_xids;
    rep = cached->second;
  } else {
    rep = execute(*req);
    reply_cache_[key] = rep;
    reply_cache_order_.push_back(key);
    if (reply_cache_order_.size() > kReplyCacheCapacity) {
      reply_cache_.erase(reply_cache_order_.front());
      reply_cache_order_.erase(reply_cache_order_.begin());
    }
  }
  socket_.send_to(from, reply_wire_bytes(rep), rep);
}

// ------------------------------------------------------------- client ----

NfsClient::NfsClient(transport::Host& host, net::Endpoint server,
                     NfsClientConfig cfg)
    : host_(host), server_(server), cfg_(cfg), socket_(host.udp()) {
  socket_.set_receive_callback(
      [this](const net::Packet& pkt, net::Endpoint) { on_datagram(pkt); });
}

void NfsClient::call(NfsOp op, const std::string& path, std::uint32_t offset,
                     std::uint32_t length, Callback cb) {
  const std::uint32_t xid = next_xid_++;
  Pending p;
  p.req = NfsRequest{xid, op, path, offset, length};
  p.cb = std::move(cb);
  p.timer = std::make_unique<sim::Timer>(host_.loop());
  p.timeout = cfg_.initial_timeout;
  auto [it, inserted] = pending_.emplace(xid, std::move(p));
  TM_ASSERT(inserted);
  ++stats_.calls;
  transmit(it->second);
}

void NfsClient::transmit(Pending& p) {
  socket_.send_to(server_, request_wire_bytes(p.req), p.req);
  const std::uint32_t xid = p.req.xid;
  p.timer->arm(p.timeout, [this, xid] { on_timeout(xid); });
}

void NfsClient::on_timeout(std::uint32_t xid) {
  auto it = pending_.find(xid);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  if (++p.tries > cfg_.max_retries) {
    ++stats_.failures;
    Callback cb = std::move(p.cb);
    pending_.erase(it);
    NfsReply rep;
    rep.xid = xid;
    cb(rep, false);
    return;
  }
  ++stats_.retransmissions;
  p.timeout = std::min(
      sim::Duration{static_cast<std::int64_t>(
          static_cast<double>(p.timeout.count()) * cfg_.backoff)},
      cfg_.max_timeout);
  transmit(p);
}

void NfsClient::on_datagram(const net::Packet& pkt) {
  const auto* rep = std::any_cast<NfsReply>(&pkt.payload);
  if (rep == nullptr) return;
  auto it = pending_.find(rep->xid);
  if (it == pending_.end()) return;  // late duplicate
  Callback cb = std::move(it->second.cb);
  NfsReply copy = *rep;
  pending_.erase(it);
  cb(copy, true);
}

}  // namespace tracemod::apps
