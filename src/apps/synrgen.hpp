// SynRGen-style synthetic file-reference generator (paper Section 4.1.4).
//
// Models a user in an edit-debug cycle over NFS: bursts of status checks,
// file reads, and writes separated by think times.  Five of these on
// interfering laptops produce the Chatterbox scenario's cross traffic.
#pragma once

#include <string>

#include "apps/nfs.hpp"
#include "sim/random.hpp"

namespace tracemod::apps {

struct SynRGenConfig {
  double mean_think_s = 1.8;
  std::size_t files = 10;
  std::uint32_t file_bytes = 12 * 1024;
  /// Probability a cycle is a "compile" burst rather than an "edit" burst.
  double compile_fraction = 0.5;
};

class SynRGenUser {
 public:
  struct Stats {
    std::uint64_t cycles = 0;
    std::uint64_t edits = 0;
    std::uint64_t compiles = 0;
  };

  /// The user's working files live under "home/<name>" on the server; they
  /// are created (via RPC) when the user starts.
  SynRGenUser(transport::Host& host, net::Endpoint server, std::string name,
              std::uint64_t seed, SynRGenConfig cfg = {});

  void start();
  void stop();

  const Stats& stats() const { return stats_; }
  const NfsClient& nfs() const { return nfs_; }

 private:
  void setup(std::size_t next_file);
  void think();
  void run_burst(std::vector<std::pair<NfsOp, std::uint32_t>> ops,
                 std::size_t idx);
  std::string file_path(std::size_t i) const;

  transport::Host& host_;
  std::string name_;
  SynRGenConfig cfg_;
  sim::Rng rng_;
  NfsClient nfs_;
  bool running_ = false;
  Stats stats_;
};

}  // namespace tracemod::apps
