// FTP-style bulk transfer over TCP (paper Section 4.2, Figure 7).
//
// Transfers a file of a given size disk-to-disk, in either direction.  The
// sending side paces injection at a disk/host service rate, which is what
// bounds throughput on the fast Ethernet (the paper's 10 MB in ~20 s) while
// the network bounds it over WaveLAN.
#pragma once

#include <cstdint>
#include <functional>

#include "transport/host.hpp"

namespace tracemod::apps {

struct FtpConfig {
  std::uint64_t chunk_bytes = 32 * 1024;
  /// Disk + host service rate of the sending side, bits/second.
  double disk_rate_bps = 4.1e6;
  std::uint16_t port = 21;
};

/// Serves both STOR and RETR.  Lives as long as the host.
class FtpServer {
 public:
  explicit FtpServer(transport::Host& host, FtpConfig cfg = {});

  const FtpConfig& config() const { return cfg_; }

 private:
  transport::Host& host_;
  FtpConfig cfg_;
};

struct FtpResult {
  sim::Duration elapsed{};
  std::uint64_t bytes = 0;
  bool ok = false;
};

class FtpClient {
 public:
  using Done = std::function<void(FtpResult)>;

  FtpClient(transport::Host& host, net::Endpoint server, FtpConfig cfg = {});

  /// RETR: server -> client ("fetch" / "recv").
  void fetch(std::uint64_t bytes, Done done);
  /// STOR: client -> server ("store" / "send").
  void store(std::uint64_t bytes, Done done);

 private:
  transport::Host& host_;
  net::Endpoint server_;
  FtpConfig cfg_;
};

/// Streams `total` bytes over an established connection in disk-paced
/// chunks, then half-closes.  Shared by client (STOR) and server (RETR).
void ftp_stream_file(transport::TcpConnection& conn, std::uint64_t total,
                     const FtpConfig& cfg, sim::EventLoop& loop);

}  // namespace tracemod::apps
