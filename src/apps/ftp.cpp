#include "apps/ftp.hpp"

#include <memory>

namespace tracemod::apps {

namespace {

/// The control record sent by the client after connecting.
struct FtpRequest {
  bool store = false;       ///< true: client will upload; false: download
  std::uint64_t bytes = 0;  ///< transfer size
};
constexpr std::uint32_t kRequestBytes = 64;
constexpr std::uint32_t kCompleteBytes = 32;
struct FtpComplete {};

}  // namespace

void ftp_stream_file(transport::TcpConnection& conn, std::uint64_t total,
                     const FtpConfig& cfg, sim::EventLoop& loop) {
  // Disk pacing: read and queue one chunk every chunk_time.
  auto remaining = std::make_shared<std::uint64_t>(total);
  const sim::Duration chunk_time = sim::from_seconds(
      static_cast<double>(cfg.chunk_bytes) * 8.0 / cfg.disk_rate_bps);
  // The stored closure captures itself only weakly: the strong reference
  // lives in the pending loop event, so once the last chunk is sent (or the
  // chain stops rescheduling) the whole pump is freed instead of keeping
  // itself alive through a shared_ptr cycle.
  auto pump = std::make_shared<std::function<void()>>();
  std::weak_ptr<std::function<void()>> weak = pump;
  *pump = [&conn, remaining, chunk_time, weak, &loop, &cfg] {
    if (*remaining == 0) return;
    const std::uint64_t n =
        std::min<std::uint64_t>(cfg.chunk_bytes, *remaining);
    *remaining -= n;
    conn.send(n);
    if (*remaining > 0) {
      if (auto self = weak.lock()) {
        loop.schedule(chunk_time, [self] { (*self)(); });
      }
    } else {
      conn.close();  // EOF after the last chunk
    }
  };
  (*pump)();
}

FtpServer::FtpServer(transport::Host& host, FtpConfig cfg)
    : host_(host), cfg_(cfg) {
  host_.tcp().listen(cfg_.port, [this](transport::TcpConnection& conn) {
    conn.set_on_record([this, &conn](const std::any& meta, std::uint64_t) {
      if (const auto* req = std::any_cast<FtpRequest>(&meta)) {
        if (!req->store) {
          // RETR: stream the file to the client.
          ftp_stream_file(conn, req->bytes, cfg_, host_.loop());
        } else {
          // STOR: count inbound bytes; confirm completion, then close.
          auto got = std::make_shared<std::uint64_t>(0);
          const std::uint64_t expect = req->bytes;
          conn.set_on_bytes([&conn, got, expect](std::uint64_t n) {
            *got += n;
            if (*got >= expect) {
              conn.send(kCompleteBytes, FtpComplete{});
              conn.close();
            }
          });
        }
      }
    });
  });
}

FtpClient::FtpClient(transport::Host& host, net::Endpoint server,
                     FtpConfig cfg)
    : host_(host), server_(server), cfg_(cfg) {}

void FtpClient::fetch(std::uint64_t bytes, Done done) {
  auto& conn = host_.tcp().connect(server_);
  const sim::TimePoint start = host_.loop().now();
  auto got = std::make_shared<std::uint64_t>(0);
  auto finished = std::make_shared<bool>(false);

  conn.set_on_connected([&conn, bytes] {
    conn.send(kRequestBytes, FtpRequest{false, bytes});
  });
  auto finish = [this, start, done, got, finished, bytes](bool ok) {
    if (*finished) return;
    *finished = true;
    done(FtpResult{host_.loop().now() - start, *got, ok && *got >= bytes});
  };
  conn.set_on_bytes([got](std::uint64_t n) { *got += n; });
  conn.set_on_peer_fin([&conn, finish] {
    conn.close();
    finish(true);
  });
  conn.set_on_closed([finish](bool error) { finish(!error); });
}

void FtpClient::store(std::uint64_t bytes, Done done) {
  auto& conn = host_.tcp().connect(server_);
  const sim::TimePoint start = host_.loop().now();
  auto finished = std::make_shared<bool>(false);
  auto finish = [this, start, done, finished, bytes](bool ok) {
    if (*finished) return;
    *finished = true;
    done(FtpResult{host_.loop().now() - start, bytes, ok});
  };

  conn.set_on_connected([this, &conn, bytes] {
    conn.send(kRequestBytes, FtpRequest{true, bytes});
    ftp_stream_file(conn, bytes, cfg_, host_.loop());
  });
  // Completion: the server's confirmation record after it has every byte.
  conn.set_on_record([finish](const std::any& meta, std::uint64_t) {
    if (std::any_cast<FtpComplete>(&meta) != nullptr) finish(true);
  });
  conn.set_on_closed([finish](bool error) { finish(!error); });
}

}  // namespace tracemod::apps
