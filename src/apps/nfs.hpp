// NFS-like RPC over UDP (the substrate for the Andrew benchmark and the
// SynRGen interferers).
//
// Faithful in the ways that matter to the paper: status checks (GETATTR /
// LOOKUP) are small datagrams, data exchanges (READ / WRITE) are large,
// operations are synchronous with at-most-one outstanding call per client
// stream, and lost datagrams are recovered by client-side retransmission
// with exponential backoff -- which is what turns loss into multi-second
// stalls in the Andrew results.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "transport/host.hpp"

namespace tracemod::apps {

enum class NfsOp : std::uint8_t {
  kGetAttr,
  kLookup,
  kRead,
  kWrite,
  kCreate,
  kMkdir,
  kReadDir,
  kRemove,
};

const char* to_string(NfsOp op);

enum class NfsStatus : std::uint8_t { kOk, kNoEntry, kExists, kNotDir, kIsDir };

struct NfsRequest {
  std::uint32_t xid = 0;
  NfsOp op = NfsOp::kGetAttr;
  std::string path;          ///< slash-separated, relative to export root
  std::uint32_t offset = 0;  ///< read/write
  std::uint32_t length = 0;  ///< read/write byte count
};

struct NfsAttr {
  bool is_dir = false;
  std::uint32_t size = 0;
  std::uint32_t generation = 0;  ///< bumped on every mutation
};

struct NfsReply {
  std::uint32_t xid = 0;
  NfsOp op = NfsOp::kGetAttr;
  NfsStatus status = NfsStatus::kOk;
  NfsAttr attr;
  std::uint32_t data_bytes = 0;          ///< bytes of file data carried
  std::vector<std::string> entries;      ///< readdir
};

/// Simulated wire sizes: header-ish cost plus any carried data.
std::uint32_t request_wire_bytes(const NfsRequest& req);
std::uint32_t reply_wire_bytes(const NfsReply& rep);

// ---------------------------------------------------------------------------
// Server: an in-memory filesystem exported over UDP port 2049.

class NfsServer {
 public:
  struct Stats {
    std::uint64_t calls = 0;
    std::uint64_t duplicate_xids = 0;  ///< retransmitted requests absorbed
    std::uint64_t errors = 0;
  };

  explicit NfsServer(transport::Host& host, std::uint16_t port = 2049);

  /// Pre-populates the export with a file (creating parent directories).
  void add_file(const std::string& path, std::uint32_t size);
  void add_dir(const std::string& path);

  /// Direct (non-RPC) inspection helpers for tests.
  bool exists(const std::string& path) const;
  NfsAttr getattr(const std::string& path) const;

  const Stats& stats() const { return stats_; }

 private:
  struct INode {
    bool is_dir = false;
    std::uint32_t size = 0;
    std::uint32_t generation = 0;
    std::map<std::string, std::unique_ptr<INode>> children;
  };

  void on_datagram(const net::Packet& pkt, net::Endpoint from);
  NfsReply execute(const NfsRequest& req);
  INode* resolve(const std::string& path);
  const INode* resolve(const std::string& path) const;
  INode* resolve_parent(const std::string& path, std::string* leaf);

  transport::Host& host_;
  transport::UdpSocket socket_;
  INode root_;
  Stats stats_;
  // Duplicate-request cache: NFS servers answer retransmissions from
  // cache.  Keyed per client endpoint so colliding xids don't cross-talk.
  using CacheKey = std::tuple<std::uint32_t, std::uint16_t, std::uint32_t>;
  std::map<CacheKey, NfsReply> reply_cache_;
  std::vector<CacheKey> reply_cache_order_;
};

// ---------------------------------------------------------------------------
// Client: synchronous RPC with retransmission.

struct NfsClientConfig {
  sim::Duration initial_timeout = sim::milliseconds(700);  ///< BSD timeo=7
  double backoff = 2.0;
  sim::Duration max_timeout = sim::seconds(20);
  int max_retries = 10;
};

class NfsClient {
 public:
  struct Stats {
    std::uint64_t calls = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t failures = 0;  ///< gave up after max_retries
  };

  using Callback = std::function<void(const NfsReply&, bool ok)>;

  NfsClient(transport::Host& host, net::Endpoint server,
            NfsClientConfig cfg = {});

  /// Issues one RPC; invokes cb exactly once (ok=false on give-up).
  void call(NfsOp op, const std::string& path, std::uint32_t offset,
            std::uint32_t length, Callback cb);

  // Convenience wrappers.
  void getattr(const std::string& path, Callback cb) {
    call(NfsOp::kGetAttr, path, 0, 0, std::move(cb));
  }
  void lookup(const std::string& path, Callback cb) {
    call(NfsOp::kLookup, path, 0, 0, std::move(cb));
  }
  void read(const std::string& path, std::uint32_t off, std::uint32_t len,
            Callback cb) {
    call(NfsOp::kRead, path, off, len, std::move(cb));
  }
  void write(const std::string& path, std::uint32_t off, std::uint32_t len,
             Callback cb) {
    call(NfsOp::kWrite, path, off, len, std::move(cb));
  }
  void create(const std::string& path, Callback cb) {
    call(NfsOp::kCreate, path, 0, 0, std::move(cb));
  }
  void mkdir(const std::string& path, Callback cb) {
    call(NfsOp::kMkdir, path, 0, 0, std::move(cb));
  }
  void readdir(const std::string& path, Callback cb) {
    call(NfsOp::kReadDir, path, 0, 0, std::move(cb));
  }

  const Stats& stats() const { return stats_; }

 private:
  struct Pending {
    NfsRequest req;
    Callback cb;
    std::unique_ptr<sim::Timer> timer;
    sim::Duration timeout;
    int tries = 0;
  };

  void transmit(Pending& p);
  void on_datagram(const net::Packet& pkt);
  void on_timeout(std::uint32_t xid);

  transport::Host& host_;
  net::Endpoint server_;
  NfsClientConfig cfg_;
  transport::UdpSocket socket_;
  std::uint32_t next_xid_ = 1;
  std::unordered_map<std::uint32_t, Pending> pending_;
  Stats stats_;
};

}  // namespace tracemod::apps
