// The Andrew benchmark over NFS (paper Section 4.2, Figure 8).
//
// Five phases over a ~70-file / ~200 KB source tree stored on an NFS
// server: MakeDir, Copy, ScanDir, ReadAll, Make.  ScanDir and ReadAll are
// dominated by small status-check RPCs against warm caches (the messages
// whose sub-threshold delays expose the 10 ms scheduling granularity);
// Copy and Make mix data exchanges with local CPU time.  Phase CPU budgets
// are calibrated against the paper's Ethernet baseline row.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "apps/nfs.hpp"

namespace tracemod::apps {

struct AndrewConfig {
  std::size_t dirs = 20;
  std::size_t files = 70;
  std::uint32_t total_bytes = 200 * 1024;
  std::uint32_t io_chunk = 8192;

  /// Client CPU cost charged per RPC (syscall + local bookkeeping).
  double cpu_per_op_s = 0.0015;
  /// Phase-level CPU budgets, spread uniformly across the phase's RPCs.
  /// Calibrated so the Ethernet row of Figure 8 lands near the paper's.
  double cpu_makedir_s = 2.14;
  double cpu_copy_s = 11.54;
  double cpu_scandir_s = 4.52;
  double cpu_readall_s = 14.24;
  double cpu_make_s = 82.24;

  /// Status-check volumes for the cache-validation-heavy phases.
  std::size_t scandir_status_ops = 1800;
  std::size_t readall_status_ops = 1600;
  std::size_t make_status_ops = 550;
  std::size_t objects_built = 35;   ///< .o files written during Make
};

struct AndrewResult {
  double makedir_s = 0;
  double copy_s = 0;
  double scandir_s = 0;
  double readall_s = 0;
  double make_s = 0;
  double total_s = 0;
  bool ok = false;
  std::uint64_t rpc_calls = 0;
  std::uint64_t rpc_retransmissions = 0;
};

/// Populates the server with the benchmark's source tree ("the input is a
/// tree of about 70 source files occupying about 200KB").  The same seed
/// yields the same tree, so trials are comparable.
void populate_andrew_tree(NfsServer& server, const AndrewConfig& cfg,
                          std::uint64_t seed);

class AndrewBenchmark {
 public:
  using Done = std::function<void(AndrewResult)>;

  /// The client issues RPCs through its own NfsClient; the caller is
  /// responsible for having populated the source tree on the server side
  /// with the same config/seed.
  AndrewBenchmark(transport::Host& client, net::Endpoint server,
                  AndrewConfig cfg, std::uint64_t seed);

  void start(Done done);

 private:
  struct Op {
    NfsOp op;
    std::string path;
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
  };
  struct Phase {
    const char* name;
    std::vector<Op> ops;
    double cpu_budget_s;
    double* result_slot;
  };

  void build_phases();
  std::vector<std::uint32_t> file_sizes() const;
  void run_phase(std::size_t phase_idx);
  void run_op(std::size_t phase_idx, std::size_t op_idx,
              sim::TimePoint phase_start);

  transport::Host& client_;
  AndrewConfig cfg_;
  std::uint64_t seed_;
  NfsClient nfs_;
  std::vector<Phase> phases_;
  AndrewResult result_;
  Done done_;
  sim::TimePoint started_{};
};

}  // namespace tracemod::apps
