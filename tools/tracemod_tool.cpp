// tracemod — command-line front end for the trace pipeline.
//
//   tracemod collect <scenario> <out.trace> [--seed N]
//       run a collection traversal of a built-in scenario and write the
//       raw trace (binary, self-descriptive format)
//   tracemod distill <in.trace> <out.replay> [--window S] [--step S]
//                    [--salvage]
//       distill a raw trace into a replay trace (text format);
//       --salvage reads around damage instead of failing on it
//   tracemod info <file>
//       summarize a raw trace or a replay trace (auto-detected)
//   tracemod synth <kind> <out.replay> [--seconds N]
//       write a synthetic replay trace: wavelan | step | slow
//   tracemod verify <in.trace>
//       integrity-check a raw trace: strict parse, then a salvage parse
//       whose damage report is printed (records read/skipped, CRC
//       failures, resync scans, bytes scanned)
//   tracemod corrupt <in.trace> <out.trace> [--seed N] [--flips K]
//                    [--truncate] [--drop N] [--dup N]
//       write a deterministically corrupted copy of a raw trace (byte
//       flips past the header, optional truncation, record drops/dups)
//   tracemod report <out-prefix> [--replay FILE] [--benchmark KIND]
//                   [--seed N] [--seconds N]
//       run one telemetry-enabled modulated benchmark (over the given
//       replay trace, or a synthetic WaveLAN-like one) and export
//       <out-prefix>.perfetto.json (load in ui.perfetto.dev) and
//       <out-prefix>.metrics.txt, printing the human-readable report
//
// Exit status: 0 on success, 1 on usage error, 2 on I/O or format error,
// 3 when verify found a damaged-but-salvageable trace.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/distiller.hpp"
#include "core/model.hpp"
#include "scenarios/experiment.hpp"
#include "trace/fault_injector.hpp"
#include "trace/trace_io.hpp"

using namespace tracemod;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  tracemod collect <porter|flagstaff|wean|chatterbox> "
               "<out.trace> [--seed N]\n"
               "  tracemod distill <in.trace> <out.replay> "
               "[--window SECONDS] [--step SECONDS] [--salvage]\n"
               "  tracemod info <file.trace|file.replay>\n"
               "  tracemod synth <wavelan|step|slow> <out.replay> "
               "[--seconds N]\n"
               "  tracemod verify <in.trace>\n"
               "  tracemod corrupt <in.trace> <out.trace> [--seed N] "
               "[--flips K] [--truncate] [--drop N] [--dup N]\n"
               "  tracemod report <out-prefix> [--replay FILE] "
               "[--benchmark web|ftp-send|ftp-recv|andrew] [--seed N] "
               "[--seconds N]\n");
  return 1;
}

bool has_flag(const std::vector<std::string>& args, const std::string& name) {
  for (const std::string& a : args) {
    if (a == name) return true;
  }
  return false;
}

bool flag_value(const std::vector<std::string>& args, const std::string& name,
                double* out) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == name) {
      *out = std::stod(args[i + 1]);
      return true;
    }
  }
  return false;
}

bool flag_string(const std::vector<std::string>& args, const std::string& name,
                 std::string* out) {
  for (std::size_t i = 0; i + 1 < args.size(); ++i) {
    if (args[i] == name) {
      *out = args[i + 1];
      return true;
    }
  }
  return false;
}

int cmd_collect(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  const scenarios::Scenario* scenario = nullptr;
  static const auto all = scenarios::all_scenarios();
  for (const auto& s : all) {
    std::string lower = s.name;
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower == args[0]) scenario = &s;
  }
  if (scenario == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s'\n", args[0].c_str());
    return 1;
  }
  double seed = 1;
  flag_value(args, "--seed", &seed);

  std::printf("collecting %s (seed %.0f, %.0f s traversal)...\n",
              scenario->name.c_str(), seed,
              sim::to_seconds(scenario->collection_duration));
  const trace::CollectedTrace collected = scenarios::collect_raw_trace(
      *scenario, static_cast<std::uint64_t>(seed));
  trace::save_trace(args[1], collected);
  std::printf("wrote %zu records to %s\n", collected.records.size(),
              args[1].c_str());
  return 0;
}

int cmd_distill(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  trace::TraceReadOptions ropts;
  if (has_flag(args, "--salvage")) ropts.mode = trace::ReadMode::kSalvage;
  const trace::TraceReadResult loaded = trace::load_trace_ex(args[0], ropts);
  if (!loaded.report.clean()) {
    std::printf("salvaged input: %llu records read, %llu skipped "
                "(%llu crc failures, %llu loss markers added)\n",
                static_cast<unsigned long long>(loaded.report.records_read),
                static_cast<unsigned long long>(loaded.report.records_skipped),
                static_cast<unsigned long long>(loaded.report.crc_failures),
                static_cast<unsigned long long>(
                    loaded.report.lost_markers_synthesized));
  }
  const trace::CollectedTrace& collected = loaded.trace;
  core::DistillConfig cfg;
  double v = 0;
  if (flag_value(args, "--window", &v)) cfg.window = sim::from_seconds(v);
  if (flag_value(args, "--step", &v)) cfg.step = sim::from_seconds(v);
  core::Distiller distiller(cfg);
  const core::ReplayTrace replay = distiller.distill(collected);
  replay.save(args[1]);
  std::printf(
      "distilled %zu records -> %zu tuples (%zu groups, %zu corrected, "
      "%zu skipped)\nmean latency %.2f ms, mean bottleneck %.2f Mb/s, "
      "mean loss %.1f%%\nwrote %s\n",
      collected.records.size(), replay.size(),
      distiller.stats().groups_total, distiller.stats().groups_corrected,
      distiller.stats().groups_skipped, replay.mean_latency_s() * 1e3,
      replay.mean_bottleneck_per_byte() > 0
          ? 8.0 / replay.mean_bottleneck_per_byte() / 1e6
          : 0.0,
      replay.mean_loss() * 100.0, args[1].c_str());
  return 0;
}

int cmd_info(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  // Sniff: binary raw traces start with "TMTR"; replay traces with '#'.
  std::ifstream in(args[0], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", args[0].c_str());
    return 2;
  }
  char magic[4] = {};
  in.read(magic, 4);
  in.close();
  if (std::memcmp(magic, "TMTR", 4) == 0) {
    const trace::CollectedTrace t = trace::load_trace(args[0]);
    std::size_t packets = 0, device = 0, lost_markers = 0;
    for (const auto& r : t.records) {
      if (std::holds_alternative<trace::PacketRecord>(r)) ++packets;
      if (std::holds_alternative<trace::DeviceRecord>(r)) ++device;
      if (std::holds_alternative<trace::LostRecords>(r)) ++lost_markers;
    }
    std::printf(
        "raw trace: %zu records over %.1f s\n"
        "  packet records: %zu (%zu echoes sent, %zu replies received)\n"
        "  device records: %zu\n"
        "  loss markers:   %zu (%llu records lost to overruns)\n",
        t.records.size(), sim::to_seconds(t.duration()), packets,
        t.echoes_sent().size(), t.echo_replies().size(), device, lost_markers,
        static_cast<unsigned long long>(t.total_lost_records()));
    return 0;
  }
  const core::ReplayTrace r = core::ReplayTrace::load(args[0]);
  double worst_loss = 0, worst_latency = 0;
  for (const auto& t : r.tuples()) {
    worst_loss = std::max(worst_loss, t.loss);
    worst_latency = std::max(worst_latency, t.latency_s);
  }
  std::printf(
      "replay trace: %zu tuples covering %.1f s\n"
      "  mean latency %.2f ms (worst %.1f ms)\n"
      "  mean bottleneck bandwidth %.2f Mb/s\n"
      "  mean loss %.1f%% (worst %.0f%%)\n",
      r.size(), sim::to_seconds(r.total_duration()),
      r.mean_latency_s() * 1e3, worst_latency * 1e3,
      r.mean_bottleneck_per_byte() > 0
          ? 8.0 / r.mean_bottleneck_per_byte() / 1e6
          : 0.0,
      r.mean_loss() * 100.0, worst_loss * 100.0);
  return 0;
}

int cmd_synth(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  double seconds = 300;
  flag_value(args, "--seconds", &seconds);
  const sim::Duration total = sim::from_seconds(seconds);
  core::ReplayTrace trace;
  if (args[0] == "wavelan") {
    trace = core::ReplayTrace::wavelan_like(total);
  } else if (args[0] == "step") {
    trace = core::ReplayTrace::bandwidth_step(total, sim::seconds(1), 0.003,
                                              200e3, 1.6e6, sim::seconds(16));
  } else if (args[0] == "slow") {
    trace = core::ReplayTrace::constant(total, sim::seconds(1), 0.020, 250e3,
                                        0.0);
  } else {
    std::fprintf(stderr, "unknown synth kind '%s'\n", args[0].c_str());
    return 1;
  }
  trace.save(args[1]);
  std::printf("wrote %zu tuples to %s\n", trace.size(), args[1].c_str());
  return 0;
}

void print_report(const trace::TraceReadReport& r) {
  std::printf(
      "  format version:      v%u\n"
      "  records expected:    %llu\n"
      "  records read:        %llu\n"
      "  records skipped:     %llu\n"
      "  records salvaged:    %llu\n"
      "  crc failures:        %llu\n"
      "  unknown tags:        %llu\n"
      "  resync scans:        %llu (%llu bytes scanned)\n"
      "  lost markers added:  %llu\n"
      "  truncated:           %s\n",
      r.version, static_cast<unsigned long long>(r.records_expected),
      static_cast<unsigned long long>(r.records_read),
      static_cast<unsigned long long>(r.records_skipped),
      static_cast<unsigned long long>(r.records_salvaged),
      static_cast<unsigned long long>(r.crc_failures),
      static_cast<unsigned long long>(r.unknown_tags),
      static_cast<unsigned long long>(r.resync_scans),
      static_cast<unsigned long long>(r.bytes_scanned),
      static_cast<unsigned long long>(r.lost_markers_synthesized),
      r.truncated ? "yes" : "no");
}

int cmd_verify(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  // Strict pass first: a clean trace needs no salvage.
  try {
    const auto strict = trace::load_trace_ex(
        args[0], {trace::ReadMode::kStrict, nullptr});
    std::printf("%s: OK (strict)\n", args[0].c_str());
    print_report(strict.report);
    return 0;
  } catch (const trace::TraceFormatError& e) {
    std::printf("%s: strict parse FAILED\n  %s\n", args[0].c_str(), e.what());
  }
  // Damaged: report what a salvage read can recover.
  const auto salvaged = trace::load_trace_ex(
      args[0], {trace::ReadMode::kSalvage, nullptr});
  std::printf("salvage read recovered %zu records\n",
              salvaged.trace.records.size());
  print_report(salvaged.report);
  return 3;
}

int cmd_corrupt(const std::vector<std::string>& args) {
  if (args.size() < 2) return usage();
  double seed = 1, flips = 4, drop = 0, dup = 0;
  flag_value(args, "--seed", &seed);
  flag_value(args, "--flips", &flips);
  flag_value(args, "--drop", &drop);
  flag_value(args, "--dup", &dup);

  trace::CollectedTrace collected = trace::load_trace(args[0]);
  trace::FaultInjector injector(
      sim::Rng(static_cast<std::uint64_t>(seed)));
  injector.drop_records(collected, static_cast<std::size_t>(drop));
  injector.duplicate_records(collected, static_cast<std::size_t>(dup));

  std::ostringstream out;
  trace::write_trace(out, collected);
  std::string bytes = out.str();
  // Keep the header intact (magic + version + schema table + count): the
  // salvage reader needs an anchor; header-corrupting runs are exercised
  // separately by the fuzzers.
  const std::size_t protect = bytes.size() < 64 ? bytes.size() / 2 : 64;
  injector.flip_bytes(bytes, static_cast<std::size_t>(flips), protect);
  if (has_flag(args, "--truncate")) injector.truncate_bytes(bytes, protect);

  std::ofstream f(args[1], std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", args[1].c_str());
    return 2;
  }
  f.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  std::printf(
      "wrote %s: %zu bytes, %zu records, %d byte flips%s, "
      "%d dropped, %d duplicated (seed %.0f)\n",
      args[1].c_str(), bytes.size(), collected.records.size(),
      static_cast<int>(flips),
      has_flag(args, "--truncate") ? ", truncated" : "",
      static_cast<int>(drop), static_cast<int>(dup), seed);
  return 0;
}

int cmd_report(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string prefix = args[0];
  double seed = 1, seconds = 120;
  flag_value(args, "--seed", &seed);
  flag_value(args, "--seconds", &seconds);

  core::ReplayTrace trace;
  std::string replay_path;
  if (flag_string(args, "--replay", &replay_path)) {
    trace = core::ReplayTrace::load(replay_path);
  } else {
    trace = core::ReplayTrace::wavelan_like(sim::from_seconds(seconds));
  }

  scenarios::BenchmarkKind kind = scenarios::BenchmarkKind::kFtpRecv;
  std::string bm;
  if (flag_string(args, "--benchmark", &bm)) {
    if (bm == "web") {
      kind = scenarios::BenchmarkKind::kWeb;
    } else if (bm == "ftp-send") {
      kind = scenarios::BenchmarkKind::kFtpSend;
    } else if (bm == "ftp-recv") {
      kind = scenarios::BenchmarkKind::kFtpRecv;
    } else if (bm == "andrew") {
      kind = scenarios::BenchmarkKind::kAndrew;
    } else {
      std::fprintf(stderr, "unknown benchmark '%s'\n", bm.c_str());
      return 1;
    }
  }

  sim::TelemetryConfig tcfg;
  tcfg.enabled = true;
  const scenarios::BenchmarkOutcome outcome = scenarios::run_modulated_benchmark(
      trace, kind, static_cast<std::uint64_t>(seed), sim::milliseconds(10),
      0.0, tcfg);
  if (outcome.telemetry == nullptr) {
    std::fprintf(stderr, "telemetry capture failed\n");
    return 2;
  }
  const sim::TelemetrySnapshot& snap = *outcome.telemetry;

  const std::string trace_path = prefix + ".perfetto.json";
  const std::string metrics_path = prefix + ".metrics.txt";
  {
    std::ofstream f(trace_path);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", trace_path.c_str());
      return 2;
    }
    sim::write_chrome_trace(f, snap);
  }
  {
    std::ofstream f(metrics_path);
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", metrics_path.c_str());
      return 2;
    }
    sim::write_metrics_text(f, snap);
  }

  std::ostringstream report;
  sim::write_report(report, snap);
  std::fputs(report.str().c_str(), stdout);
  std::printf(
      "\nbenchmark %s: %s in %.2f s (simulated)\n"
      "wrote %s (load in ui.perfetto.dev) and %s\n",
      scenarios::to_string(kind), outcome.ok ? "ok" : "FAILED",
      outcome.elapsed_s, trace_path.c_str(), metrics_path.c_str());
  return outcome.ok ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "collect") return cmd_collect(args);
    if (cmd == "distill") return cmd_distill(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "synth") return cmd_synth(args);
    if (cmd == "verify") return cmd_verify(args);
    if (cmd == "corrupt") return cmd_corrupt(args);
    if (cmd == "report") return cmd_report(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  return usage();
}
