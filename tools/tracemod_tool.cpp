// Thin entry point; the command line lives in tracemod_cli.cpp so the
// exit-code and flag contracts are unit-testable.
#include <string>
#include <vector>

#include "tracemod_cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return tracemod::cli::run(args);
}
