// tracemod — command-line front end for the trace pipeline.
//
//   tracemod collect <scenario> <out.trace> [--seed N]
//       run a collection traversal of a built-in scenario and write the
//       raw trace (binary, self-descriptive format)
//   tracemod distill <in.trace> <out.replay> [--window S] [--step S]
//                    [--salvage] [--stream] [--corpus-window S]
//                    [--threads N] [--budget-mb N] [--checkpoint FILE]
//                    [--resume] [--json FILE]
//       distill a raw trace into a replay trace (text format);
//       --salvage reads around damage instead of failing on it.
//       --stream runs the bounded-memory streaming distiller
//       (core/stream_distiller.hpp): windowed two-pass distillation with
//       flat RSS, optional CRC-framed checkpoints (--checkpoint) that a
//       killed run resumes byte-identically (--resume), and graceful
//       degradation under --budget-mb instead of bad_alloc; exits 0 on a
//       clean corpus, 3 when damage was salvaged into unauditable
//       windows, 5 when the budget forced shedding
//   tracemod gen-corpus <out.trace> [--seconds N] [--interval S]
//                       [--target-mb N] [--loss P] [--seed N]
//       generate a synthetic ping-workload corpus with flat memory
//       (trace/synthetic_corpus.hpp); --target-mb pads with device
//       records toward the requested file size
//   tracemod info <file>
//       summarize a raw trace or a replay trace (auto-detected)
//   tracemod synth <kind> <out.replay> [--seconds N]
//       write a synthetic replay trace: wavelan | step | slow
//   tracemod verify <in.trace>
//       integrity-check a raw trace: strict parse, then a salvage parse
//       whose damage report is printed
//   tracemod corrupt <in.trace> <out.trace> [--seed N] [--flips K]
//                    [--truncate] [--drop N] [--dup N]
//                    [--range-begin OFF] [--range-end OFF]
//       write a deterministically corrupted copy of a raw trace; the
//       copy is streamed record-by-record and the byte faults are
//       applied in place, so a multi-GB corpus corrupts with flat
//       memory.  --range-begin/--range-end confine the byte flips to an
//       offset range (e.g. one distillation window)
//   tracemod audit <in.replay> [--tick MS] [--seed N] [--json FILE] ...
//       close the loop over a replay trace: replay it through the
//       modulated testbed, collect a second-order trace with the standard
//       instruments, re-distill, and judge the recovered parameter track
//       against the input; exits kExitAudit on breach
//   tracemod report <out-prefix> [--replay FILE] [--benchmark KIND]
//                   [--seed N] [--seconds N] [--audit]
//       run one telemetry-enabled modulated benchmark and export
//       <out-prefix>.perfetto.json and <out-prefix>.metrics.txt; with
//       --audit the exports also carry the fidelity divergence series
//   tracemod campus [--hosts N] [--cell M] [--threads N] [--seconds S]
//                   [--seed N] [--wall-budget S] [--json FILE]
//       generate and run an N-host campus on the sharded wireless medium
//       (scenarios/campus.hpp); prints the deterministic result digest and
//       events/sec, exits kExitDegraded if the run did not reach its
//       virtual horizon
//   tracemod perf <out-prefix> [--pipeline SCENARIO | --campus]
//                 [--replay FILE] [--benchmark KIND] [--seed N]
//                 [--seconds N] [--hosts N] [--cell M] [--threads N]
//                 [--stride N] [--top N]
//       run one workload under the wall-clock profiler (sim/perf/) and
//       write <out-prefix>.perf.json (tracemod-perf-v1: top-N self-time
//       hotspots, allocs/event, events/sec, sim-seconds per wall-second),
//       <out-prefix>.folded.txt (collapsed-stack flamegraph text), and
//       <out-prefix>.perf-counters.json (Perfetto counter tracks).
//       Default workload is a modulated benchmark (--replay / synthetic);
//       --pipeline runs collect -> distill -> modulated benchmark over a
//       built-in scenario; --campus runs the N-host campus and carries
//       its result digest (profiling never changes virtual time, so the
//       digest equals an unprofiled run's)
#include "tracemod_cli.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "audit/auditor.hpp"
#include "core/distiller.hpp"
#include "core/model.hpp"
#include "core/stream_distiller.hpp"
#include "scenarios/campus.hpp"
#include "scenarios/experiment.hpp"
#include "sim/io/durable.hpp"
#include "sim/perf/perf.hpp"
#include "sim/perf/report.hpp"
#include "sim/status/status.hpp"
#include "trace/fault_injector.hpp"
#include "trace/stream_reader.hpp"
#include "trace/synthetic_corpus.hpp"
#include "trace/trace_io.hpp"
#include "version.hpp"

#include <chrono>
#include <thread>

namespace tracemod::cli {

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  tracemod collect <porter|flagstaff|wean|chatterbox> <out.trace> "
      "[--seed N]\n"
      "  tracemod distill <in.trace> <out.replay> [--window SECONDS] "
      "[--step SECONDS] [--salvage]\n"
      "                   [--stream] [--corpus-window SECONDS] [--threads N] "
      "[--budget-mb N]\n"
      "                   [--checkpoint FILE] [--resume] [--json FILE]\n"
      "  tracemod gen-corpus <out.trace> [--seconds N] [--interval S] "
      "[--target-mb N] [--loss P] [--seed N]\n"
      "  tracemod info <file.trace|file.replay>\n"
      "  tracemod synth <wavelan|step|slow> <out.replay> [--seconds N]\n"
      "  tracemod verify <in.trace>\n"
      "  tracemod corrupt <in.trace> <out.trace> [--seed N] [--flips K] "
      "[--truncate] [--drop N] [--dup N]\n"
      "                   [--range-begin OFF] [--range-end OFF]\n"
      "  tracemod audit <in.replay> [--tick MS] [--seed N] [--json FILE]\n"
      "                 [--baseline-seconds N] [--max-latency X] "
      "[--max-bandwidth X]\n"
      "                 [--max-loss X] [--max-ks X] [--min-within X] "
      "[--min-auditable X]\n"
      "  tracemod report <out-prefix> [--replay FILE] "
      "[--benchmark web|ftp-send|ftp-recv|andrew] [--seed N] [--seconds N] "
      "[--audit] [--perf]\n"
      "  tracemod campus [--hosts N] [--cell METERS] [--threads N] "
      "[--seconds S]\n"
      "                  [--seed N] [--wall-budget S] [--json FILE]\n"
      "  tracemod perf <out-prefix> [--pipeline SCENARIO | --campus] "
      "[--replay FILE]\n"
      "                [--benchmark web|ftp-send|ftp-recv|andrew] [--seed N] "
      "[--seconds N]\n"
      "                [--hosts N] [--cell METERS] [--threads N] "
      "[--stride N] [--top N] [--status PREFIX]\n"
      "  tracemod status <file.status> [--json] [--follow] [--interval S]\n"
      "  tracemod version\n"
      "(campus and `distill --stream` also accept --status PREFIX: publish "
      "live progress\n to PREFIX.status, readable by `tracemod status` "
      "while the run executes)\n"
      "exit codes: 0 ok, 1 usage, 2 I/O or format error, "
      "3 damaged-but-salvageable trace, 4 fidelity breach, "
      "5 degraded/incomplete run (6 is bench-only; see README)\n");
  return kExitUsage;
}

struct FlagSpec {
  const char* name;
  bool takes_value;
};

/// Parsed, validated arguments: positionals in order, flags by name.
struct Parsed {
  std::vector<std::string> pos;
  std::map<std::string, std::string> flags;
  bool failed = false;

  bool has(const std::string& name) const { return flags.count(name) > 0; }

  bool str(const std::string& name, std::string* out) const {
    const auto it = flags.find(name);
    if (it == flags.end()) return false;
    *out = it->second;
    return true;
  }
};

/// Strict parse: every --flag must be declared, value-taking flags must
/// have a value, and the positional count must be in [min_pos, max_pos].
Parsed parse(const char* cmd, const std::vector<std::string>& args,
             std::initializer_list<FlagSpec> spec, std::size_t min_pos,
             std::size_t max_pos) {
  Parsed p;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    if (a.rfind("--", 0) != 0) {
      p.pos.push_back(a);
      continue;
    }
    const FlagSpec* match = nullptr;
    for (const FlagSpec& f : spec) {
      if (a == f.name) match = &f;
    }
    if (match == nullptr) {
      std::fprintf(stderr, "tracemod %s: unknown flag '%s'\n", cmd, a.c_str());
      p.failed = true;
      return p;
    }
    if (!match->takes_value) {
      p.flags[a];
      continue;
    }
    if (i + 1 >= args.size()) {
      std::fprintf(stderr, "tracemod %s: flag '%s' requires a value\n", cmd,
                   a.c_str());
      p.failed = true;
      return p;
    }
    p.flags[a] = args[++i];
  }
  if (p.pos.size() < min_pos || p.pos.size() > max_pos) {
    std::fprintf(stderr, "tracemod %s: expected %zu%s argument%s, got %zu\n",
                 cmd, min_pos, max_pos > min_pos ? "+" : "",
                 min_pos == 1 && max_pos == 1 ? "" : "s", p.pos.size());
    p.failed = true;
  }
  return p;
}

/// A numeric flag whose value must parse fully as a number.
bool checked_number(const char* cmd, const Parsed& p, const std::string& name,
                    double* out, bool* bad) {
  const auto it = p.flags.find(name);
  if (it == p.flags.end()) return false;
  char* end = nullptr;
  *out = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    std::fprintf(stderr, "tracemod %s: flag '%s' needs a number, got '%s'\n",
                 cmd, name.c_str(), it->second.c_str());
    *bad = true;
    return false;
  }
  return true;
}

/// Arms `board` when --status PREFIX was given: snapshots go to
/// PREFIX.status.  Returns false (after diagnosing) only when the flag was
/// given but the status file is unwritable -- callers map that to usage,
/// so a typo'd prefix fails loudly instead of running dark.
bool arm_status_board(const char* cmd, const Parsed& p, const char* driver,
                      sim::status::StatusBoard* board) {
  std::string prefix;
  if (!p.str("--status", &prefix)) return true;
  sim::status::StatusBoard::Config cfg;
  cfg.path = prefix + ".status";
  cfg.driver = driver;
  if (!board->configure(std::move(cfg))) {
    std::fprintf(stderr, "tracemod %s: cannot write status file %s.status\n",
                 cmd, prefix.c_str());
    return false;
  }
  return true;
}

int cmd_collect(const std::vector<std::string>& args) {
  const Parsed p = parse("collect", args, {{"--seed", true}}, 2, 2);
  if (p.failed) return usage();
  const scenarios::Scenario* scenario = nullptr;
  static const auto all = scenarios::all_scenarios();
  for (const auto& s : all) {
    std::string lower = s.name;
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower == p.pos[0]) scenario = &s;
  }
  if (scenario == nullptr) {
    std::fprintf(stderr, "unknown scenario '%s'\n", p.pos[0].c_str());
    return usage();
  }
  double seed = 1;
  bool bad = false;
  checked_number("collect", p, "--seed", &seed, &bad);
  if (bad) return usage();

  std::printf("collecting %s (seed %.0f, %.0f s traversal)...\n",
              scenario->name.c_str(), seed,
              sim::to_seconds(scenario->collection_duration));
  const trace::CollectedTrace collected = scenarios::collect_raw_trace(
      *scenario, static_cast<std::uint64_t>(seed));
  trace::save_trace(p.pos[1], collected);
  std::printf("wrote %zu records to %s\n", collected.records.size(),
              p.pos[1].c_str());
  return kExitOk;
}

/// The streaming-distillation path of cmd_distill: bounded memory,
/// checkpoints, and the 0/3/5 exit-code contract.
int cmd_distill_stream(const Parsed& p, const core::DistillConfig& dcfg) {
  core::StreamDistillConfig scfg;
  scfg.distill = dcfg;
  double v = 0;
  bool bad = false;
  if (checked_number("distill", p, "--corpus-window", &v, &bad)) {
    scfg.span = sim::from_seconds(v);
  }
  if (checked_number("distill", p, "--threads", &v, &bad)) {
    scfg.threads = static_cast<unsigned>(v);
  }
  if (checked_number("distill", p, "--budget-mb", &v, &bad)) {
    scfg.budget.bytes =
        static_cast<std::uint64_t>(v * 1024.0 * 1024.0);
  }
  if (bad) return usage();
  p.str("--checkpoint", &scfg.checkpoint_path);
  scfg.resume = p.has("--resume");
  sim::status::StatusBoard board;
  if (!arm_status_board("distill", p, "distill", &board)) return usage();
  if (board.enabled()) scfg.status = &board;

  core::StreamDistiller distiller(scfg);
  const core::StreamDistillResult res = distiller.distill_file(p.pos[0]);
  res.replay.save(p.pos[1]);

  const char* status = res.status == core::DistillStatus::kOk ? "ok"
                       : res.status == core::DistillStatus::kSalvaged
                           ? "salvaged"
                           : "degraded";
  std::printf(
      "streamed %llu records through %llu windows "
      "(%llu damaged, %llu shed, %llu resumed)\n"
      "retained %llu bytes of echo projections; %zu tuples -> %s [%s]\n",
      static_cast<unsigned long long>(res.stats.records_streamed),
      static_cast<unsigned long long>(res.stats.windows_total),
      static_cast<unsigned long long>(res.stats.windows_damaged),
      static_cast<unsigned long long>(res.stats.windows_shed),
      static_cast<unsigned long long>(res.stats.windows_resumed),
      static_cast<unsigned long long>(res.stats.retained_bytes),
      res.replay.size(), p.pos[1].c_str(), status);

  if (res.stats.checkpoint_degraded) {
    std::fprintf(stderr,
                 "warning: checkpoint journal degraded mid-run (%s); results "
                 "are complete but a killed re-run cannot resume past the "
                 "journal's intact prefix\n",
                 scfg.checkpoint_path.c_str());
  }

  std::string json_path;
  if (p.str("--json", &json_path)) {
    const trace::TraceReadReport& r = res.read_report;
    std::ostringstream f;
    f << "{\n"
      << "  \"schema\": \"tracemod-distill-v1\",\n"
      << "  \"tool_version\": \"" << kToolVersion << "\",\n"
      << "  \"status\": \"" << status << "\",\n";
    // Emitted only when true so an injection-off artifact stays
    // byte-identical to earlier releases.
    if (res.stats.checkpoint_degraded) {
      f << "  \"checkpoint_degraded\": true,\n";
    }
    f << "  \"records_streamed\": " << res.stats.records_streamed << ",\n"
      << "  \"windows_total\": " << res.stats.windows_total << ",\n"
      << "  \"windows_damaged\": " << res.stats.windows_damaged << ",\n"
      << "  \"windows_shed\": " << res.stats.windows_shed << ",\n"
      << "  \"windows_resumed\": " << res.stats.windows_resumed << ",\n"
      << "  \"retained_bytes\": " << res.stats.retained_bytes << ",\n"
      << "  \"steps\": " << res.stats.steps << ",\n"
      << "  \"tuples\": " << res.replay.size() << ",\n"
      << "  \"records_read\": " << r.records_read << ",\n"
      << "  \"records_skipped\": " << r.records_skipped << ",\n"
      << "  \"crc_failures\": " << r.crc_failures << ",\n"
      << "  \"lost_markers\": " << r.lost_markers_synthesized << ",\n"
      << "  \"truncated\": " << (r.truncated ? "true" : "false") << "\n"
      << "}\n";
    if (!sim::io::write_artifact_or_complain(json_path, f.str())) {
      return kExitIo;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  int exit_code = kExitIo;
  switch (res.status) {
    case core::DistillStatus::kOk: exit_code = kExitOk; break;
    case core::DistillStatus::kSalvaged: exit_code = kExitSalvage; break;
    case core::DistillStatus::kDegraded: exit_code = kExitDegraded; break;
  }
  // A degraded checkpoint plane outranks salvage: the artifact is good,
  // but the crash-safety the flag promised is gone for the rest of the
  // run (DESIGN.md section 15).
  if (res.stats.checkpoint_degraded) exit_code = kExitDegraded;
  board.finish(exit_code);
  return exit_code;
}

int cmd_distill(const std::vector<std::string>& args) {
  const Parsed p = parse("distill", args,
                         {{"--window", true},
                          {"--step", true},
                          {"--salvage", false},
                          {"--stream", false},
                          {"--corpus-window", true},
                          {"--threads", true},
                          {"--budget-mb", true},
                          {"--checkpoint", true},
                          {"--resume", false},
                          {"--json", true},
                          {"--status", true}},
                         2, 2);
  if (p.failed) return usage();
  if (p.has("--status") && !p.has("--stream")) {
    std::fprintf(stderr,
                 "tracemod distill: --status requires --stream (the "
                 "in-memory path is too short to watch)\n");
    return usage();
  }
  core::DistillConfig cfg;
  {
    double v = 0;
    bool bad = false;
    if (checked_number("distill", p, "--window", &v, &bad)) {
      cfg.window = sim::from_seconds(v);
    }
    if (checked_number("distill", p, "--step", &v, &bad)) {
      cfg.step = sim::from_seconds(v);
    }
    if (bad) return usage();
  }
  if (p.has("--stream")) return cmd_distill_stream(p, cfg);
  trace::TraceReadOptions ropts;
  if (p.has("--salvage")) ropts.mode = trace::ReadMode::kSalvage;
  const trace::TraceReadResult loaded = trace::load_trace_ex(p.pos[0], ropts);
  if (!loaded.report.clean()) {
    std::printf("salvaged input: %llu records read, %llu skipped "
                "(%llu crc failures, %llu loss markers added)\n",
                static_cast<unsigned long long>(loaded.report.records_read),
                static_cast<unsigned long long>(loaded.report.records_skipped),
                static_cast<unsigned long long>(loaded.report.crc_failures),
                static_cast<unsigned long long>(
                    loaded.report.lost_markers_synthesized));
  }
  const trace::CollectedTrace& collected = loaded.trace;
  core::Distiller distiller(cfg);
  const core::ReplayTrace replay = distiller.distill(collected);
  replay.save(p.pos[1]);
  std::printf(
      "distilled %zu records -> %zu tuples (%zu groups, %zu corrected, "
      "%zu skipped)\nmean latency %.2f ms, mean bottleneck %.2f Mb/s, "
      "mean loss %.1f%%\nwrote %s\n",
      collected.records.size(), replay.size(),
      distiller.stats().groups_total, distiller.stats().groups_corrected,
      distiller.stats().groups_skipped, replay.mean_latency_s() * 1e3,
      replay.mean_bottleneck_per_byte() > 0
          ? 8.0 / replay.mean_bottleneck_per_byte() / 1e6
          : 0.0,
      replay.mean_loss() * 100.0, p.pos[1].c_str());
  return kExitOk;
}

int cmd_info(const std::vector<std::string>& args) {
  const Parsed p = parse("info", args, {}, 1, 1);
  if (p.failed) return usage();
  // Sniff: binary raw traces start with "TMTR"; replay traces with '#'.
  std::ifstream in(p.pos[0], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", p.pos[0].c_str());
    return kExitIo;
  }
  char magic[4] = {};
  in.read(magic, 4);
  in.close();
  if (std::memcmp(magic, "TMTR", 4) == 0) {
    const trace::CollectedTrace t = trace::load_trace(p.pos[0]);
    std::size_t packets = 0, device = 0, lost_markers = 0;
    for (const auto& r : t.records) {
      if (std::holds_alternative<trace::PacketRecord>(r)) ++packets;
      if (std::holds_alternative<trace::DeviceRecord>(r)) ++device;
      if (std::holds_alternative<trace::LostRecords>(r)) ++lost_markers;
    }
    std::printf(
        "raw trace: %zu records over %.1f s\n"
        "  packet records: %zu (%zu echoes sent, %zu replies received)\n"
        "  device records: %zu\n"
        "  loss markers:   %zu (%llu records lost to overruns)\n",
        t.records.size(), sim::to_seconds(t.duration()), packets,
        t.echoes_sent().size(), t.echo_replies().size(), device, lost_markers,
        static_cast<unsigned long long>(t.total_lost_records()));
    return kExitOk;
  }
  const core::ReplayTrace r = core::ReplayTrace::load(p.pos[0]);
  double worst_loss = 0, worst_latency = 0;
  for (const auto& t : r.tuples()) {
    worst_loss = std::max(worst_loss, t.loss);
    worst_latency = std::max(worst_latency, t.latency_s);
  }
  std::printf(
      "replay trace: %zu tuples covering %.1f s\n"
      "  mean latency %.2f ms (worst %.1f ms)\n"
      "  mean bottleneck bandwidth %.2f Mb/s\n"
      "  mean loss %.1f%% (worst %.0f%%)\n",
      r.size(), sim::to_seconds(r.total_duration()),
      r.mean_latency_s() * 1e3, worst_latency * 1e3,
      r.mean_bottleneck_per_byte() > 0
          ? 8.0 / r.mean_bottleneck_per_byte() / 1e6
          : 0.0,
      r.mean_loss() * 100.0, worst_loss * 100.0);
  return kExitOk;
}

int cmd_synth(const std::vector<std::string>& args) {
  const Parsed p = parse("synth", args, {{"--seconds", true}}, 2, 2);
  if (p.failed) return usage();
  double seconds = 300;
  bool bad = false;
  checked_number("synth", p, "--seconds", &seconds, &bad);
  if (bad) return usage();
  const sim::Duration total = sim::from_seconds(seconds);
  core::ReplayTrace trace;
  if (p.pos[0] == "wavelan") {
    trace = core::ReplayTrace::wavelan_like(total);
  } else if (p.pos[0] == "step") {
    trace = core::ReplayTrace::bandwidth_step(total, sim::seconds(1), 0.003,
                                              200e3, 1.6e6, sim::seconds(16));
  } else if (p.pos[0] == "slow") {
    trace = core::ReplayTrace::constant(total, sim::seconds(1), 0.020, 250e3,
                                        0.0);
  } else {
    std::fprintf(stderr, "unknown synth kind '%s'\n", p.pos[0].c_str());
    return usage();
  }
  trace.save(p.pos[1]);
  std::printf("wrote %zu tuples to %s\n", trace.size(), p.pos[1].c_str());
  return kExitOk;
}

void print_report(const trace::TraceReadReport& r) {
  std::printf(
      "  format version:      v%u\n"
      "  records expected:    %llu\n"
      "  records read:        %llu\n"
      "  records skipped:     %llu\n"
      "  records salvaged:    %llu\n"
      "  crc failures:        %llu\n"
      "  unknown tags:        %llu\n"
      "  resync scans:        %llu (%llu bytes scanned)\n"
      "  lost markers added:  %llu\n"
      "  truncated:           %s\n",
      r.version, static_cast<unsigned long long>(r.records_expected),
      static_cast<unsigned long long>(r.records_read),
      static_cast<unsigned long long>(r.records_skipped),
      static_cast<unsigned long long>(r.records_salvaged),
      static_cast<unsigned long long>(r.crc_failures),
      static_cast<unsigned long long>(r.unknown_tags),
      static_cast<unsigned long long>(r.resync_scans),
      static_cast<unsigned long long>(r.bytes_scanned),
      static_cast<unsigned long long>(r.lost_markers_synthesized),
      r.truncated ? "yes" : "no");
}

/// Streams the whole file through TraceStreamReader without retaining
/// records: RSS stays flat however large the trace is.  Returns the count
/// of records the pass yielded.
std::uint64_t streamed_record_count(const std::string& path,
                                    trace::ReadMode mode,
                                    trace::TraceReadReport* report) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  trace::TraceStreamReader reader(in, {mode, nullptr});
  trace::TraceRecord rec;
  std::uint64_t n = 0;
  while (reader.next(&rec)) ++n;
  *report = reader.report();
  return n;
}

int cmd_verify(const std::vector<std::string>& args) {
  const Parsed p = parse("verify", args, {}, 1, 1);
  if (p.failed) return usage();
  // Strict pass first: a clean trace needs no salvage.  Both passes
  // stream, so verification of a multi-GB corpus runs in constant memory.
  trace::TraceReadReport report;
  try {
    streamed_record_count(p.pos[0], trace::ReadMode::kStrict, &report);
    std::printf("%s: OK (strict)\n", p.pos[0].c_str());
    print_report(report);
    return kExitOk;
  } catch (const trace::TraceFormatError& e) {
    std::printf("%s: strict parse FAILED\n  %s\n", p.pos[0].c_str(),
                e.what());
  }
  // Damaged: report what a salvage read can recover.
  const std::uint64_t recovered =
      streamed_record_count(p.pos[0], trace::ReadMode::kSalvage, &report);
  std::printf("salvage read recovered %llu records\n",
              static_cast<unsigned long long>(recovered));
  print_report(report);
  return kExitSalvage;
}

int cmd_corrupt(const std::vector<std::string>& args) {
  const Parsed p = parse("corrupt", args,
                         {{"--seed", true},
                          {"--flips", true},
                          {"--truncate", false},
                          {"--drop", true},
                          {"--dup", true},
                          {"--range-begin", true},
                          {"--range-end", true}},
                         2, 2);
  if (p.failed) return usage();
  double seed = 1, flips = 4, drop = 0, dup = 0;
  double range_begin = 0, range_end = 0;
  bool bad = false;
  checked_number("corrupt", p, "--seed", &seed, &bad);
  checked_number("corrupt", p, "--flips", &flips, &bad);
  checked_number("corrupt", p, "--drop", &drop, &bad);
  checked_number("corrupt", p, "--dup", &dup, &bad);
  checked_number("corrupt", p, "--range-begin", &range_begin, &bad);
  checked_number("corrupt", p, "--range-end", &range_end, &bad);
  if (bad) return usage();

  // Record-level faults ride along a streaming copy: the input is never
  // resident, so a multi-GB corpus corrupts with flat memory.
  std::ifstream in(p.pos[0], std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", p.pos[0].c_str());
    return kExitIo;
  }
  trace::TraceStreamReader reader(in, {trace::ReadMode::kStrict, nullptr});
  const std::uint64_t expected = reader.report().records_expected;

  trace::FaultInjector injector(sim::Rng(static_cast<std::uint64_t>(seed)));
  std::set<std::uint64_t> dropped;
  std::multiset<std::uint64_t> duplicated;
  if (expected > 0) {
    for (std::size_t i = 0; i < static_cast<std::size_t>(drop); ++i) {
      dropped.insert(static_cast<std::uint64_t>(injector.rng().uniform_int(
          0, static_cast<std::int64_t>(expected) - 1)));
    }
    for (std::size_t i = 0; i < static_cast<std::size_t>(dup); ++i) {
      duplicated.insert(static_cast<std::uint64_t>(injector.rng().uniform_int(
          0, static_cast<std::int64_t>(expected) - 1)));
    }
  }

  std::uint64_t written = 0;
  {
    trace::TraceStreamWriter writer(p.pos[1]);
    trace::TraceRecord rec;
    std::uint64_t index = 0;
    while (reader.next(&rec)) {
      const std::uint64_t copies =
          (dropped.count(index) ? 0 : 1) + duplicated.count(index);
      for (std::uint64_t c = 0; c < copies; ++c) writer.append(rec);
      ++index;
    }
    writer.finalize();
    written = writer.records_written();
  }

  // Byte faults applied in place.  Keep the header intact (magic +
  // version + schema table + count): the salvage reader needs an anchor;
  // header-corrupting runs are exercised separately by the fuzzers.
  std::error_code ec;
  std::uint64_t size = std::filesystem::file_size(p.pos[1], ec);
  if (ec) {
    std::fprintf(stderr, "cannot stat %s\n", p.pos[1].c_str());
    return kExitIo;
  }
  const std::uint64_t protect = size < 64 ? size / 2 : 64;
  const std::uint64_t begin =
      std::max(protect, static_cast<std::uint64_t>(range_begin));
  injector.flip_file_range(p.pos[1], static_cast<std::size_t>(flips), begin,
                           static_cast<std::uint64_t>(range_end));
  if (p.has("--truncate")) {
    injector.truncate_file(p.pos[1], protect);
  }
  size = std::filesystem::file_size(p.pos[1], ec);

  std::printf(
      "wrote %s: %llu bytes, %llu records, %d byte flips%s, "
      "%d dropped, %d duplicated (seed %.0f)\n",
      p.pos[1].c_str(), static_cast<unsigned long long>(size),
      static_cast<unsigned long long>(written), static_cast<int>(flips),
      p.has("--truncate") ? ", truncated" : "", static_cast<int>(drop),
      static_cast<int>(dup), seed);
  return kExitOk;
}

int cmd_gen_corpus(const std::vector<std::string>& args) {
  const Parsed p = parse("gen-corpus", args,
                         {{"--seconds", true},
                          {"--interval", true},
                          {"--target-mb", true},
                          {"--loss", true},
                          {"--seed", true}},
                         1, 1);
  if (p.failed) return usage();
  double seconds = 3600, interval = 1.0, target_mb = 0, loss = 0.01, seed = 1;
  bool bad = false;
  checked_number("gen-corpus", p, "--seconds", &seconds, &bad);
  checked_number("gen-corpus", p, "--interval", &interval, &bad);
  checked_number("gen-corpus", p, "--target-mb", &target_mb, &bad);
  checked_number("gen-corpus", p, "--loss", &loss, &bad);
  checked_number("gen-corpus", p, "--seed", &seed, &bad);
  if (bad) return usage();
  if (seconds <= 0 || interval <= 0 || loss < 0 || loss > 1 ||
      target_mb < 0) {
    std::fprintf(stderr, "tracemod gen-corpus: invalid parameter value\n");
    return usage();
  }

  trace::CorpusSpec spec;
  spec.duration = sim::from_seconds(seconds);
  spec.group_interval = sim::from_seconds(interval);
  spec.target_bytes = static_cast<std::uint64_t>(target_mb * 1024.0 * 1024.0);
  spec.reply_loss = loss;
  spec.seed = static_cast<std::uint64_t>(seed);
  const trace::CorpusInfo info = trace::generate_ping_corpus(p.pos[0], spec);
  std::printf(
      "wrote %s: %llu records (%llu probe groups, %llu replies dropped), "
      "%.1f MB\n",
      p.pos[0].c_str(), static_cast<unsigned long long>(info.records),
      static_cast<unsigned long long>(info.groups),
      static_cast<unsigned long long>(info.replies_dropped),
      static_cast<double>(info.bytes) / (1024.0 * 1024.0));
  return kExitOk;
}

int cmd_audit(const std::vector<std::string>& args) {
  const Parsed p = parse("audit", args,
                         {{"--tick", true},
                          {"--seed", true},
                          {"--json", true},
                          {"--baseline-seconds", true},
                          {"--max-latency", true},
                          {"--max-bandwidth", true},
                          {"--max-loss", true},
                          {"--max-ks", true},
                          {"--min-within", true},
                          {"--min-auditable", true}},
                         1, 1);
  if (p.failed) return usage();
  double tick_ms = 10, seed = 1, baseline_s = 30;
  bool bad = false;
  checked_number("audit", p, "--tick", &tick_ms, &bad);
  checked_number("audit", p, "--seed", &seed, &bad);
  checked_number("audit", p, "--baseline-seconds", &baseline_s, &bad);

  audit::AuditConfig cfg;
  cfg.second_order.emulator.seed = static_cast<std::uint64_t>(seed);
  cfg.second_order.emulator.modulation.tick =
      sim::from_seconds(tick_ms * 1e-3);
  cfg.baseline_run = sim::from_seconds(baseline_s);
  audit::FidelityThresholds& th = cfg.thresholds;
  checked_number("audit", p, "--max-latency", &th.max_latency_rel_err, &bad);
  checked_number("audit", p, "--max-bandwidth", &th.max_bandwidth_rel_err,
                 &bad);
  checked_number("audit", p, "--max-loss", &th.max_loss_delta, &bad);
  checked_number("audit", p, "--max-ks", &th.max_ks_rtt, &bad);
  checked_number("audit", p, "--min-within", &th.min_within_tolerance, &bad);
  checked_number("audit", p, "--min-auditable", &th.min_auditable, &bad);
  if (bad) return usage();

  const core::ReplayTrace reference = core::ReplayTrace::load(p.pos[0]);
  const audit::FidelityReport report =
      audit::audit_trace(reference, cfg, p.pos[0]);

  std::ostringstream human;
  audit::write_fidelity_report(human, report);
  std::fputs(human.str().c_str(), stdout);

  std::string json_path;
  if (p.str("--json", &json_path)) {
    std::ostringstream f;
    audit::write_fidelity_json(f, report);
    if (!sim::io::write_artifact_or_complain(json_path, f.str())) {
      return kExitIo;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return report.passed() ? kExitOk : kExitAudit;
}

/// Parses a --benchmark value; returns false (and prints) on an unknown
/// kind.  Shared by cmd_report and cmd_perf.
bool parse_benchmark_kind(const Parsed& p, scenarios::BenchmarkKind* kind) {
  std::string bm;
  if (!p.str("--benchmark", &bm)) return true;
  if (bm == "web") {
    *kind = scenarios::BenchmarkKind::kWeb;
  } else if (bm == "ftp-send") {
    *kind = scenarios::BenchmarkKind::kFtpSend;
  } else if (bm == "ftp-recv") {
    *kind = scenarios::BenchmarkKind::kFtpRecv;
  } else if (bm == "andrew") {
    *kind = scenarios::BenchmarkKind::kAndrew;
  } else {
    std::fprintf(stderr, "unknown benchmark '%s'\n", bm.c_str());
    return false;
  }
  return true;
}

int cmd_report(const std::vector<std::string>& args) {
  const Parsed p = parse("report", args,
                         {{"--replay", true},
                          {"--benchmark", true},
                          {"--seed", true},
                          {"--seconds", true},
                          {"--audit", false},
                          {"--perf", false}},
                         1, 1);
  if (p.failed) return usage();
  const std::string prefix = p.pos[0];
  double seed = 1, seconds = 120;
  bool bad = false;
  checked_number("report", p, "--seed", &seed, &bad);
  checked_number("report", p, "--seconds", &seconds, &bad);
  if (bad) return usage();

  core::ReplayTrace trace;
  std::string replay_path;
  if (p.str("--replay", &replay_path)) {
    trace = core::ReplayTrace::load(replay_path);
  } else {
    trace = core::ReplayTrace::wavelan_like(sim::from_seconds(seconds));
  }

  scenarios::BenchmarkKind kind = scenarios::BenchmarkKind::kFtpRecv;
  if (!parse_benchmark_kind(p, &kind)) return usage();

  sim::TelemetryConfig tcfg;
  tcfg.enabled = true;
  // With --perf the same run is also profiled on the wall-clock plane;
  // the profiler never touches virtual time, so the telemetry content is
  // identical either way.
  sim::perf::PerfProfiler profiler;
  scenarios::BenchmarkOutcome outcome;
  {
    std::optional<sim::perf::PerfSession> session;
    if (p.has("--perf")) session.emplace(profiler);
    outcome = scenarios::run_modulated_benchmark(
        trace, kind, static_cast<std::uint64_t>(seed), sim::milliseconds(10),
        0.0, tcfg);
  }
  if (outcome.telemetry == nullptr) {
    std::fprintf(stderr, "telemetry capture failed\n");
    return kExitIo;
  }
  auto tel = std::make_shared<sim::TelemetrySnapshot>(*outcome.telemetry);
  sim::perf::PerfSnapshot perf_snap;
  if (p.has("--perf")) {
    perf_snap = sim::perf::capture_perf(profiler);
    sim::perf::append_perf_to_telemetry(*tel, perf_snap);
  }
  const sim::TelemetrySnapshot& snap = *tel;

  // With --audit, close the loop on the same replay trace and carry the
  // divergence series alongside the benchmark's telemetry in every export.
  std::shared_ptr<sim::TelemetrySnapshot> audit_snap;
  audit::FidelityReport fidelity;
  if (p.has("--audit")) {
    audit::AuditConfig acfg;
    acfg.second_order.emulator.seed = static_cast<std::uint64_t>(seed) + 1700;
    fidelity = audit::audit_trace(trace, acfg, prefix);
    audit_snap = std::make_shared<sim::TelemetrySnapshot>(
        audit::telemetry_snapshot(fidelity));
  }

  const std::string trace_path = prefix + ".perfetto.json";
  const std::string metrics_path = prefix + ".metrics.txt";
  {
    std::ostringstream f;
    if (audit_snap != nullptr) {
      sim::write_chrome_trace(f, {{"bench", tel}, {"audit", audit_snap}});
    } else {
      sim::write_chrome_trace(f, snap);
    }
    if (!sim::io::write_artifact_or_complain(trace_path, f.str())) {
      return kExitIo;
    }
  }
  {
    std::ostringstream f;
    if (audit_snap != nullptr) {
      sim::write_metrics_text(f, {{"bench", tel}, {"audit", audit_snap}});
    } else {
      sim::write_metrics_text(f, snap);
    }
    if (!sim::io::write_artifact_or_complain(metrics_path, f.str())) {
      return kExitIo;
    }
  }

  std::ostringstream report;
  sim::write_report(report, snap);
  if (p.has("--perf")) {
    report << "\n";
    sim::perf::write_perf_report(report, perf_snap);
  }
  if (audit_snap != nullptr) {
    report << "\n";
    audit::write_fidelity_report(report, fidelity);
  }
  std::fputs(report.str().c_str(), stdout);
  std::printf(
      "\nbenchmark %s: %s in %.2f s (simulated)\n"
      "wrote %s (load in ui.perfetto.dev) and %s\n",
      scenarios::to_string(kind), outcome.ok ? "ok" : "FAILED",
      outcome.elapsed_s, trace_path.c_str(), metrics_path.c_str());
  return outcome.ok ? kExitOk : kExitIo;
}

int cmd_campus(const std::vector<std::string>& args) {
  const Parsed p = parse("campus", args,
                         {{"--hosts", true},
                          {"--cell", true},
                          {"--threads", true},
                          {"--seconds", true},
                          {"--seed", true},
                          {"--wall-budget", true},
                          {"--json", true},
                          {"--status", true}},
                         0, 0);
  if (p.failed) return usage();
  double hosts = 1000, cell = 130.0, threads = 0, seconds = 30, seed = 42,
         wall_budget = 0;
  bool bad = false;
  checked_number("campus", p, "--hosts", &hosts, &bad);
  checked_number("campus", p, "--cell", &cell, &bad);
  checked_number("campus", p, "--threads", &threads, &bad);
  checked_number("campus", p, "--seconds", &seconds, &bad);
  checked_number("campus", p, "--seed", &seed, &bad);
  checked_number("campus", p, "--wall-budget", &wall_budget, &bad);
  if (bad) return usage();
  if (hosts < 1 || seconds <= 0 || threads < 0 || wall_budget < 0) {
    std::fprintf(stderr, "tracemod campus: invalid parameter value\n");
    return usage();
  }

  scenarios::CampusConfig cfg;
  cfg.hosts = static_cast<std::size_t>(hosts);
  cfg.cell_size_m = cell;
  cfg.threads = static_cast<unsigned>(threads);
  cfg.horizon = sim::from_seconds(seconds);
  cfg.seed = static_cast<std::uint64_t>(seed);
  cfg.watchdog.wall_budget_s = wall_budget;
  sim::status::StatusBoard board;
  if (!arm_status_board("campus", p, "campus", &board)) return usage();
  if (board.enabled()) cfg.watchdog.status = &board;

  const scenarios::CampusResult r = scenarios::run_campus(cfg);
  std::printf(
      "campus: %zu hosts, %zu wavepoints, %s medium (%zu occupied cells)\n"
      "        %s after %.1f virtual s: %llu events in %.2f s wall "
      "(%.0f events/s)\n"
      "        air: %llu delivered, %llu dropped, %llu handoffs; "
      "app: %llu up, %llu echoes\n"
      "        digest %016llx\n",
      r.hosts, r.wavepoints, cell > 0 ? "sharded" : "flat", r.occupied_cells,
      scenarios::to_string(r.status), r.virtual_s,
      static_cast<unsigned long long>(r.events), r.wall_s, r.events_per_sec,
      static_cast<unsigned long long>(r.frames_delivered),
      static_cast<unsigned long long>(r.frames_dropped),
      static_cast<unsigned long long>(r.handoffs),
      static_cast<unsigned long long>(r.uplink_sent),
      static_cast<unsigned long long>(r.echoes_received),
      static_cast<unsigned long long>(r.digest));

  std::string json_path;
  if (p.str("--json", &json_path)) {
    std::ostringstream f;
    f << "{\n"
      << "  \"schema\": \"tracemod-campus-v1\",\n"
      << "  \"tool_version\": \"" << kToolVersion << "\",\n"
      << "  \"hosts\": " << r.hosts << ",\n"
      << "  \"wavepoints\": " << r.wavepoints << ",\n"
      << "  \"cell_size_m\": " << cell << ",\n"
      << "  \"threads\": " << cfg.threads << ",\n"
      << "  \"status\": \"" << scenarios::to_string(r.status) << "\",\n"
      << "  \"ok\": " << (r.ok ? "true" : "false") << ",\n"
      << "  \"virtual_s\": " << r.virtual_s << ",\n"
      << "  \"events\": " << r.events << ",\n"
      << "  \"wall_s\": " << r.wall_s << ",\n"
      << "  \"events_per_sec\": " << r.events_per_sec << ",\n"
      << "  \"frames_delivered\": " << r.frames_delivered << ",\n"
      << "  \"frames_dropped\": " << r.frames_dropped << ",\n"
      << "  \"handoffs\": " << r.handoffs << ",\n"
      << "  \"uplink_sent\": " << r.uplink_sent << ",\n"
      << "  \"echoes_received\": " << r.echoes_received << ",\n"
      << "  \"occupied_cells\": " << r.occupied_cells << ",\n"
      << "  \"digest\": \"" << std::hex << r.digest << std::dec << "\"\n"
      << "}\n";
    if (!sim::io::write_artifact_or_complain(json_path, f.str())) {
      return kExitIo;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  const int exit_code = r.ok ? kExitOk : kExitDegraded;
  board.finish(exit_code);
  return exit_code;
}

int cmd_perf(const std::vector<std::string>& args) {
  const Parsed p = parse("perf", args,
                         {{"--pipeline", true},
                          {"--campus", false},
                          {"--replay", true},
                          {"--benchmark", true},
                          {"--seed", true},
                          {"--seconds", true},
                          {"--hosts", true},
                          {"--cell", true},
                          {"--threads", true},
                          {"--stride", true},
                          {"--top", true},
                          {"--status", true}},
                         1, 1);
  if (p.failed) return usage();
  const std::string prefix = p.pos[0];
  double seed = 1, seconds = 0, hosts = 1000, cell = 130.0, threads = 0,
         stride = 1, top = 10;
  bool bad = false;
  checked_number("perf", p, "--seed", &seed, &bad);
  checked_number("perf", p, "--seconds", &seconds, &bad);
  checked_number("perf", p, "--hosts", &hosts, &bad);
  checked_number("perf", p, "--cell", &cell, &bad);
  checked_number("perf", p, "--threads", &threads, &bad);
  checked_number("perf", p, "--stride", &stride, &bad);
  checked_number("perf", p, "--top", &top, &bad);
  if (bad) return usage();
  if (p.has("--campus") && p.has("--pipeline")) {
    std::fprintf(stderr,
                 "tracemod perf: --campus and --pipeline are exclusive\n");
    return usage();
  }
  if (stride < 1 || top < 1 || hosts < 1) {
    std::fprintf(stderr, "tracemod perf: invalid parameter value\n");
    return usage();
  }

  sim::perf::PerfConfig pcfg;
  pcfg.sampling_stride = static_cast<std::uint32_t>(stride);
  sim::perf::PerfProfiler profiler(pcfg);

  sim::status::StatusBoard board;
  if (!arm_status_board("perf", p, "perf", &board)) return usage();
  scenarios::WatchdogConfig perf_watchdog;
  if (board.enabled()) perf_watchdog.status = &board;

  std::string workload;
  std::string extra;
  double sim_s = 0.0;
  bool ok = true;

  if (p.has("--campus")) {
    scenarios::CampusConfig cfg;
    cfg.hosts = static_cast<std::size_t>(hosts);
    cfg.cell_size_m = cell;
    cfg.threads = static_cast<unsigned>(threads);
    cfg.horizon = sim::from_seconds(seconds > 0 ? seconds : 30);
    // Match cmd_campus's default seed so `tracemod perf --campus` and
    // `tracemod campus` produce the same digest out of the box (the
    // virtual-time-identity check in CI diffs exactly that).
    cfg.seed = p.has("--seed") ? static_cast<std::uint64_t>(seed) : 42;
    cfg.watchdog = perf_watchdog;
    scenarios::CampusResult r;
    {
      sim::perf::PerfSession session(profiler);
      r = scenarios::run_campus(cfg);
    }
    workload = "campus-" + std::to_string(cfg.hosts);
    sim_s = r.virtual_s;
    ok = r.ok;
    char digest[32];
    std::snprintf(digest, sizeof(digest), "%016llx",
                  static_cast<unsigned long long>(r.digest));
    extra = std::string("\"digest\": \"") + digest + "\"";
    std::printf("campus: %zu hosts, %s after %.1f virtual s, digest %s\n",
                r.hosts, scenarios::to_string(r.status), r.virtual_s, digest);
  } else if (p.has("--pipeline")) {
    std::string name;
    p.str("--pipeline", &name);
    const scenarios::Scenario* scenario = nullptr;
    static const auto all = scenarios::all_scenarios();
    for (const auto& s : all) {
      std::string lower = s.name;
      for (char& c : lower) c = static_cast<char>(std::tolower(c));
      if (lower == name) scenario = &s;
    }
    if (scenario == nullptr) {
      std::fprintf(stderr, "unknown scenario '%s'\n", name.c_str());
      return usage();
    }
    scenarios::BenchmarkKind kind = scenarios::BenchmarkKind::kFtpRecv;
    if (!parse_benchmark_kind(p, &kind)) return usage();
    scenarios::BenchmarkOutcome outcome;
    {
      sim::perf::PerfSession session(profiler);
      board.set_phase("collect");
      const trace::CollectedTrace collected = scenarios::collect_raw_trace(
          *scenario, static_cast<std::uint64_t>(seed));
      board.set_phase("distill");
      core::Distiller distiller(core::DistillConfig{});
      const core::ReplayTrace replay = distiller.distill(collected);
      board.set_phase("modulated");
      outcome = scenarios::run_modulated_benchmark(
          replay, kind, static_cast<std::uint64_t>(seed),
          sim::milliseconds(10), 0.0, {}, sim::seconds(7200), perf_watchdog);
    }
    workload = "pipeline-" + name + "-" + scenarios::to_string(kind);
    sim_s = sim::to_seconds(scenario->collection_duration) +
            outcome.elapsed_s;
    ok = outcome.ok;
    std::printf("pipeline %s: collect+distill+%s %s in %.2f s (simulated)\n",
                name.c_str(), scenarios::to_string(kind),
                outcome.ok ? "ok" : "FAILED", outcome.elapsed_s);
  } else {
    core::ReplayTrace trace;
    std::string replay_path;
    if (p.str("--replay", &replay_path)) {
      trace = core::ReplayTrace::load(replay_path);
    } else {
      trace = core::ReplayTrace::wavelan_like(
          sim::from_seconds(seconds > 0 ? seconds : 120));
    }
    scenarios::BenchmarkKind kind = scenarios::BenchmarkKind::kFtpRecv;
    if (!parse_benchmark_kind(p, &kind)) return usage();
    scenarios::BenchmarkOutcome outcome;
    {
      sim::perf::PerfSession session(profiler);
      board.set_phase("modulated");
      outcome = scenarios::run_modulated_benchmark(
          trace, kind, static_cast<std::uint64_t>(seed),
          sim::milliseconds(10), 0.0, {}, sim::seconds(7200), perf_watchdog);
    }
    workload = std::string("benchmark-") + scenarios::to_string(kind);
    sim_s = outcome.elapsed_s;
    ok = outcome.ok;
    std::printf("benchmark %s: %s in %.2f s (simulated)\n",
                scenarios::to_string(kind), outcome.ok ? "ok" : "FAILED",
                outcome.elapsed_s);
  }

  board.set_phase("export");
  const sim::perf::PerfSnapshot snap = sim::perf::capture_perf(profiler);
  const std::string json_path = prefix + ".perf.json";
  const std::string folded_path = prefix + ".folded.txt";
  const std::string counters_path = prefix + ".perf-counters.json";
  {
    std::ostringstream f;
    sim::perf::write_perf_json(f, snap, workload, sim_s,
                               static_cast<std::size_t>(top), extra);
    if (!sim::io::write_artifact_or_complain(json_path, f.str())) {
      return kExitIo;
    }
  }
  {
    std::ostringstream f;
    sim::perf::write_flamegraph(f, snap);
    if (!sim::io::write_artifact_or_complain(folded_path, f.str())) {
      return kExitIo;
    }
  }
  {
    std::ostringstream f;
    sim::perf::write_perf_chrome(f, snap);
    if (!sim::io::write_artifact_or_complain(counters_path, f.str())) {
      return kExitIo;
    }
  }

  std::ostringstream report;
  sim::perf::write_perf_report(report, snap, static_cast<std::size_t>(top));
  std::fputs(report.str().c_str(), stdout);
  std::printf("wrote %s, %s, and %s\n", json_path.c_str(),
              folded_path.c_str(), counters_path.c_str());
  const int exit_code = ok ? kExitOk : kExitDegraded;
  board.finish(exit_code);
  return exit_code;
}

void print_status_human(const sim::status::StatusSnapshot& s) {
  std::printf("%s", s.driver.c_str());
  if (!s.phase.empty()) std::printf(" [%s]", s.phase.c_str());
  if (s.units_total > 0.0) {
    std::printf("  %.0f/%.0f %s (%.1f%%)", s.units_done, s.units_total,
                s.units_label.c_str(),
                100.0 * s.units_done / s.units_total);
  } else if (s.units_done > 0.0) {
    std::printf("  %.0f %s", s.units_done, s.units_label.c_str());
  }
  if (s.eta_seconds >= 0.0 && !s.finished) {
    std::printf("  ETA %.1fs", s.eta_seconds);
  }
  std::printf("\n  wall %.1fs", s.wall_seconds);
  if (s.sim_seconds > 0.0) {
    std::printf("  sim %.1fs (%.1fx real time)", s.sim_seconds,
                s.sim_per_wall);
  }
  if (s.events_dispatched > 0) {
    std::printf("  events %llu",
                static_cast<unsigned long long>(s.events_dispatched));
  }
  std::printf("\n");
  if (s.retries > 0 || s.errors > 0) {
    std::printf("  retries %llu  errors %llu\n",
                static_cast<unsigned long long>(s.retries),
                static_cast<unsigned long long>(s.errors));
  }
  if (s.records_streamed > 0 || s.windows_distilled > 0 ||
      s.windows_shed > 0) {
    std::printf("  records %llu  windows %llu distilled, %llu shed\n",
                static_cast<unsigned long long>(s.records_streamed),
                static_cast<unsigned long long>(s.windows_distilled),
                static_cast<unsigned long long>(s.windows_shed));
  }
  std::printf("  seq %llu  pid %llu  tool %s\n",
              static_cast<unsigned long long>(s.seq),
              static_cast<unsigned long long>(s.pid),
              s.tool_version.c_str());
  if (s.finished) std::printf("  finished: exit %d\n", s.exit_code);
}

int cmd_status(const std::vector<std::string>& args) {
  const Parsed p = parse(
      "status", args,
      {{"--json", false}, {"--follow", false}, {"--interval", true}}, 1, 1);
  if (p.failed) return usage();
  double interval = 0.5;
  bool bad = false;
  checked_number("status", p, "--interval", &interval, &bad);
  if (bad || interval <= 0) return usage();
  const bool as_json = p.has("--json");
  const bool follow = p.has("--follow");

  std::uint64_t last_seq = 0;
  for (;;) {
    const sim::status::StatusReadResult r =
        sim::status::read_status_file(p.pos[0]);
    if (r.status == sim::status::StatusReadStatus::kOk) {
      if (r.snapshot.seq != last_seq) {
        last_seq = r.snapshot.seq;
        if (as_json) {
          write_status_json(std::cout, r.snapshot);
          std::cout.flush();
        } else {
          print_status_human(r.snapshot);
          std::fflush(stdout);
        }
      }
      if (!follow || r.snapshot.finished) return kExitOk;
    } else if (r.status == sim::status::StatusReadStatus::kCorrupt) {
      // Publishes are atomic renames, so damage is never a benign race:
      // report it even in follow mode.
      std::fprintf(stderr, "tracemod status: %s\n", r.message.c_str());
      return kExitIo;
    } else if (!follow) {
      std::fprintf(stderr, "tracemod status: %s\n", r.message.c_str());
      return kExitIo;
    }
    // kMissing under --follow waits for the run to publish its first
    // snapshot; so does an unchanged seq.
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
}

int cmd_version(const std::vector<std::string>& args) {
  const Parsed p = parse("version", args, {}, 0, 0);
  if (p.failed) return usage();
  std::printf("tracemod %s (%s build)\n", kToolVersion, build_type());
  std::printf(
      "binary formats: trace v2 (TMTR), sweep journal TMSJ v1, "
      "distill checkpoint TMDJ v1, status snapshot TMST v1\n");
  std::printf("json schemas:");
  for (const char* kind : kJsonSchemaKinds) std::printf(" %s", kind);
  std::printf("\n");
  return kExitOk;
}

}  // namespace

int run(const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string cmd = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  try {
    if (cmd == "collect") return cmd_collect(rest);
    if (cmd == "distill") return cmd_distill(rest);
    if (cmd == "gen-corpus") return cmd_gen_corpus(rest);
    if (cmd == "info") return cmd_info(rest);
    if (cmd == "synth") return cmd_synth(rest);
    if (cmd == "verify") return cmd_verify(rest);
    if (cmd == "corrupt") return cmd_corrupt(rest);
    if (cmd == "audit") return cmd_audit(rest);
    if (cmd == "report") return cmd_report(rest);
    if (cmd == "campus") return cmd_campus(rest);
    if (cmd == "perf") return cmd_perf(rest);
    if (cmd == "status") return cmd_status(rest);
    if (cmd == "version" || cmd == "--version") return cmd_version(rest);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return kExitIo;
  }
  std::fprintf(stderr, "tracemod: unknown command '%s'\n", cmd.c_str());
  return usage();
}

}  // namespace tracemod::cli
