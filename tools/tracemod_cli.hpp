// The tracemod command line as a library, so the exit-code contract and
// flag handling are testable without spawning the binary.
//
// Contract (pinned by tests/tools/tracemod_cli_test.cpp):
//   - unknown subcommands and malformed flags print usage to stderr and
//     return kExitUsage;
//   - I/O and trace-format failures return kExitIo;
//   - `verify` returns kExitSalvage for damaged-but-salvageable traces;
//   - `audit` returns kExitAudit when the fidelity verdict is breach or
//     unauditable;
//   - kExitDegraded is returned by supervised sweeps that completed with
//     degraded cells (tools/sweep.cpp: every cell ran, but at least one
//     trial exhausted its retries and carries a TrialError record), by
//     runs whose journal/checkpoint plane degraded after a write failure
//     (the results are complete but no longer resumable; DESIGN.md
//     section 15), and by `campus` runs that did not reach their virtual
//     horizon (watchdog or drained queue);
//   - exit code 6 is reserved by the benchmark build guard
//     (bench/build_guard.hpp: refused to benchmark a non-Release build)
//     and is never returned by tracemod itself.
// README.md carries the full 0-6 table.
#pragma once

#include <string>
#include <vector>

namespace tracemod::cli {

inline constexpr int kExitOk = 0;
inline constexpr int kExitUsage = 1;
inline constexpr int kExitIo = 2;
inline constexpr int kExitSalvage = 3;
inline constexpr int kExitAudit = 4;
inline constexpr int kExitDegraded = 5;
/// Bench-only (bench/build_guard.hpp defines the authoritative constant);
/// mirrored here so the CLI test can pin the whole 0-6 contract disjoint.
inline constexpr int kExitNonReleaseBuild = 6;

/// Runs one tracemod invocation.  `args` excludes argv[0]; the first
/// element is the subcommand.  Never throws: failures map to the exit
/// codes above with diagnostics on stderr.
int run(const std::vector<std::string>& args);

}  // namespace tracemod::cli
