// sweep — run the paper's full evaluation matrix on N threads.
//
//   sweep [--threads N] [--serial] [--trials N] [--seed N]
//         [--scenarios porter,flagstaff,wean,chatterbox]
//         [--benchmarks web,ftp-send,ftp-recv,andrew]
//         [--no-compensate] [--telemetry=PREFIX] [--audit[=FILE]]
//         [--supervise] [--retries N] [--retry-perturb]
//         [--budget SECONDS] [--wall-budget SECONDS]
//         [--poison SCEN:BENCH:PHASE:TRIAL[:FAILS]]
//         [--journal FILE | --resume FILE] [--json FILE]
//
// Every cell of {benchmark} x {scenario} runs the paper's procedure: N
// live trials, N collection traversals distilled to replay traces, one
// modulated trial per trace, plus a bare-Ethernet baseline row per
// benchmark.  Each trial is an isolated SimContext seeded as
// base_seed + trial, so the results are bit-identical whether the matrix
// runs on one thread (--serial) or across all cores; only the wall clock
// changes.  Exit status: 0 on success, 1 on usage error, 4 when --audit
// found a fidelity breach, 5 when a supervised sweep completed with
// degraded cells (at least one trial exhausted its retries; the table
// still prints and the error records say which trials and seeds failed).
//
// Supervision (DESIGN.md section 10, scenarios/supervisor.hpp): with
// --supervise (implied by the other supervision flags), every trial runs
// crash-isolated under a guard, watchdogs bound runaway worlds
// (--budget caps virtual time per trial, --wall-budget abandons trials
// whose event loop stops making progress), and --retries re-runs a failed
// trial with the identical derived seed (--retry-perturb opts into
// explicitly non-bit-identical perturbed retry seeds).  --poison injects
// a deterministic fault for chaos drills ("-" fields are wildcards;
// FAILS bounds how many attempts fail, default all).
//
// Resumable sweeps: --journal FILE persists each completed cell to a
// CRC-framed journal as the sweep runs; after a crash or kill,
// --resume FILE skips the journaled cells and re-runs only the rest, with
// final output byte-identical to an uninterrupted run of the same config.
// A damaged journal degrades safely: a partial trailing record (the
// normal kill-mid-append case) is dropped with a warning, and a corrupt
// or config-mismatched journal falls back to a full re-run.  Resuming is
// incompatible with --audit and --telemetry (neither is journaled).
//
// --audit additionally runs one closed-loop fidelity audit per collected
// trace (src/audit/) in its own dedicated world, prints a verdict table,
// and writes the reports as a fidelity trajectory (schema
// "tracemod-fidelity-trajectory-v1", default BENCH_fidelity.json --
// documented in EXPERIMENTS.md).  Audit worlds never touch trial worlds,
// so every benchmark number above is bit-identical with or without the
// flag.
//
// --telemetry=PREFIX enables the observability subsystem in every trial
// world and writes the merged exports to PREFIX.perfetto.json (load in
// ui.perfetto.dev) and PREFIX.metrics.txt.  Snapshots merge in trial
// order, so the files are identical for serial and parallel runs.
//
// --status=PREFIX (implies --supervise) publishes a live crash-safe
// tracemod-status-v1 snapshot to PREFIX.status as the sweep runs; poll it
// with `tracemod status PREFIX.status [--follow]` (DESIGN.md section 14).
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenarios/campus.hpp"
#include "scenarios/parallel_runner.hpp"
#include "sim/io/durable.hpp"
#include "sim/status/status.hpp"
#include "tracemod_cli.hpp"
#include "version.hpp"

using namespace tracemod;
using namespace tracemod::scenarios;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: sweep [--threads N] [--serial] [--trials N] [--seed N]\n"
      "             [--scenarios porter,flagstaff,wean,chatterbox,campus] "
      "[--benchmarks web,ftp-recv,...]\n"
      "             [--no-compensate] [--telemetry=PREFIX] "
      "[--audit[=FILE]]\n"
      "             [--supervise] [--retries N] [--retry-perturb]\n"
      "             [--budget SECONDS] [--wall-budget SECONDS]\n"
      "             [--poison SCEN:BENCH:PHASE:TRIAL[:FAILS]]\n"
      "             [--journal FILE | --resume FILE] [--json FILE]\n"
      "             [--status=PREFIX]\n");
  return cli::kExitUsage;
}

std::vector<std::string> split_csv_with(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(sep, start);
    if (comma == std::string::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

std::vector<std::string> split_csv(const std::string& s) {
  return split_csv_with(s, ',');
}

/// "wean:web:live:0" or "wean:web:live:0:2"; "-" fields are wildcards.
bool parse_poison(const std::string& spec, InjectedTrialFault* out) {
  const std::vector<std::string> parts = split_csv_with(spec, ':');
  if (parts.size() < 4 || parts.size() > 5) return false;
  InjectedTrialFault f;
  if (parts[0] != "-") f.scenario = parts[0];
  if (parts[1] != "-") f.benchmark = parts[1];
  if (parts[2] != "-") {
    if (parts[2] != "live" && parts[2] != "collect" &&
        parts[2] != "modulated" && parts[2] != "ethernet" &&
        parts[2] != "audit") {
      return false;
    }
    f.phase = parts[2];
  }
  try {
    if (parts[3] != "-") f.trial = std::stoi(parts[3]);
    if (parts.size() == 5) f.fail_attempts = std::stoi(parts[4]);
  } catch (const std::exception&) {
    return false;
  }
  if (f.fail_attempts <= 0) return false;
  *out = f;
  return true;
}

bool parse_benchmark(const std::string& name, BenchmarkKind* out) {
  if (name == "web") *out = BenchmarkKind::kWeb;
  else if (name == "ftp-send") *out = BenchmarkKind::kFtpSend;
  else if (name == "ftp-recv") *out = BenchmarkKind::kFtpRecv;
  else if (name == "andrew") *out = BenchmarkKind::kAndrew;
  else return false;
  return true;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  unsigned threads = 0;  // 0 = hardware concurrency
  std::string telemetry_prefix;
  std::string status_prefix;
  std::string audit_path;
  std::string journal_path;
  std::string resume_path;
  std::string json_path;
  ExperimentConfig cfg;
  std::vector<Scenario> scenarios = all_scenarios();
  std::vector<BenchmarkKind> kinds = {BenchmarkKind::kWeb,
                                      BenchmarkKind::kFtpRecv,
                                      BenchmarkKind::kAndrew};

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--threads") {
      const char* v = next_value("--threads");
      if (v == nullptr) return usage();
      threads = static_cast<unsigned>(std::stoul(v));
    } else if (arg == "--serial") {
      threads = 1;
    } else if (arg == "--trials") {
      const char* v = next_value("--trials");
      if (v == nullptr) return usage();
      cfg.trials = std::stoi(v);
    } else if (arg == "--seed") {
      const char* v = next_value("--seed");
      if (v == nullptr) return usage();
      cfg.base_seed = std::stoull(v);
    } else if (arg == "--no-compensate") {
      cfg.compensate = false;
    } else if (arg == "--supervise") {
      cfg.supervision.enabled = true;
    } else if (arg == "--retries") {
      const char* v = next_value("--retries");
      if (v == nullptr) return usage();
      cfg.supervision.max_retries = std::stoi(v);
      cfg.supervision.enabled = true;
    } else if (arg == "--retry-perturb") {
      cfg.supervision.perturb_retry_seed = true;
      cfg.supervision.enabled = true;
    } else if (arg == "--budget") {
      const char* v = next_value("--budget");
      if (v == nullptr) return usage();
      cfg.supervision.virtual_budget = sim::from_seconds(std::stod(v));
      cfg.supervision.enabled = true;
    } else if (arg == "--wall-budget") {
      const char* v = next_value("--wall-budget");
      if (v == nullptr) return usage();
      cfg.supervision.wall_budget_s = std::stod(v);
      cfg.supervision.enabled = true;
    } else if (arg == "--poison") {
      const char* v = next_value("--poison");
      if (v == nullptr) return usage();
      InjectedTrialFault fault;
      if (!parse_poison(v, &fault)) {
        std::fprintf(stderr, "bad --poison spec '%s'\n", v);
        return usage();
      }
      cfg.supervision.inject.push_back(fault);
      cfg.supervision.enabled = true;
    } else if (arg == "--journal") {
      const char* v = next_value("--journal");
      if (v == nullptr) return usage();
      journal_path = v;
      cfg.supervision.enabled = true;
    } else if (arg == "--resume") {
      const char* v = next_value("--resume");
      if (v == nullptr) return usage();
      resume_path = v;
      cfg.supervision.enabled = true;
    } else if (arg == "--json") {
      const char* v = next_value("--json");
      if (v == nullptr) return usage();
      json_path = v;
    } else if (arg == "--audit") {
      audit_path = "BENCH_fidelity.json";
      cfg.audit.enabled = true;
    } else if (arg.rfind("--audit=", 0) == 0) {
      audit_path = arg.substr(std::strlen("--audit="));
      if (audit_path.empty()) {
        std::fprintf(stderr, "--audit needs a file path\n");
        return usage();
      }
      cfg.audit.enabled = true;
    } else if (arg.rfind("--telemetry=", 0) == 0) {
      telemetry_prefix = arg.substr(std::strlen("--telemetry="));
      if (telemetry_prefix.empty()) {
        std::fprintf(stderr, "--telemetry needs a file prefix\n");
        return usage();
      }
      cfg.telemetry.enabled = true;
    } else if (arg == "--telemetry") {
      const char* v = next_value("--telemetry");
      if (v == nullptr) return usage();
      telemetry_prefix = v;
      cfg.telemetry.enabled = true;
    } else if (arg.rfind("--status=", 0) == 0) {
      status_prefix = arg.substr(std::strlen("--status="));
      if (status_prefix.empty()) {
        std::fprintf(stderr, "--status needs a file prefix\n");
        return usage();
      }
      // Per-trial progress accounting lives in the supervised path.
      cfg.supervision.enabled = true;
    } else if (arg == "--scenarios") {
      const char* v = next_value("--scenarios");
      if (v == nullptr) return usage();
      // The paper's four plus the synthetic sharded-medium quad; "campus"
      // is selectable by name only so all_scenarios() (and the goldens
      // pinned to it) stay exactly the paper's set.
      auto all = all_scenarios();
      all.push_back(campus_walk());
      scenarios.clear();
      for (const std::string& name : split_csv(v)) {
        bool found = false;
        for (const auto& s : all) {
          std::string lower = s.name;
          for (char& c : lower) c = static_cast<char>(std::tolower(c));
          if (lower == name) {
            scenarios.push_back(s);
            found = true;
          }
        }
        if (!found) {
          std::fprintf(stderr, "unknown scenario '%s'\n", name.c_str());
          return usage();
        }
      }
    } else if (arg == "--benchmarks") {
      const char* v = next_value("--benchmarks");
      if (v == nullptr) return usage();
      kinds.clear();
      for (const std::string& name : split_csv(v)) {
        BenchmarkKind kind;
        if (!parse_benchmark(name, &kind)) {
          std::fprintf(stderr, "unknown benchmark '%s'\n", name.c_str());
          return usage();
        }
        kinds.push_back(kind);
      }
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return usage();
    }
  }
  if (scenarios.empty() || kinds.empty() || cfg.trials <= 0) return usage();
  if (!journal_path.empty() && !resume_path.empty()) {
    std::fprintf(stderr, "--journal and --resume are mutually exclusive "
                         "(--resume keeps journaling to its own file)\n");
    return usage();
  }
  if (!resume_path.empty() &&
      (cfg.audit.enabled || cfg.telemetry.enabled)) {
    std::fprintf(stderr, "--resume is incompatible with --audit and "
                         "--telemetry (neither is journaled)\n");
    return usage();
  }

  sim::status::StatusBoard board;
  if (!status_prefix.empty()) {
    sim::status::StatusBoard::Config bcfg;
    bcfg.path = status_prefix + ".status";
    bcfg.driver = "sweep";
    if (!board.configure(bcfg)) {
      std::fprintf(stderr, "cannot write status file '%s'\n",
                   bcfg.path.c_str());
      return cli::kExitIo;
    }
    cfg.status = &board;
    std::printf("status: -> %s (poll with `tracemod status %s`)\n",
                bcfg.path.c_str(), bcfg.path.c_str());
  }

  const auto t0 = std::chrono::steady_clock::now();
  if (cfg.compensate) {
    cfg.compensation_vb = measure_compensation_vb();
    std::printf("measured physical network Vb: %.3f us/byte\n",
                cfg.compensation_vb * 1e6);
  }

  ParallelRunner runner(threads);
  std::printf("sweep: %zu scenario(s) x %zu benchmark(s) x %d trial(s) on "
              "%u thread(s)\n\n",
              scenarios.size(), kinds.size(), cfg.trials,
              runner.thread_count());

  // Journal / resume plumbing.  Resume-specific notices go to stderr so a
  // resumed run's stdout stays byte-comparable to an uninterrupted one.
  SweepJournalWriter journal;
  JournalReadResult resumed;
  SupervisedSweepOptions opts;
  const std::uint32_t fingerprint = sweep_fingerprint(cfg);
  if (!journal_path.empty()) {
    if (!journal.open(journal_path, fingerprint, /*fresh=*/true)) {
      std::fprintf(stderr, "cannot write sweep journal '%s'\n",
                   journal_path.c_str());
      return cli::kExitIo;
    }
    opts.journal = &journal;
  } else if (!resume_path.empty()) {
    resumed = read_sweep_journal(resume_path, fingerprint);
    switch (resumed.status) {
      case JournalStatus::kMissing:
        std::fprintf(stderr, "resume: no journal at '%s'; running the full "
                             "sweep\n", resume_path.c_str());
        journal.open(resume_path, fingerprint, /*fresh=*/true);
        break;
      case JournalStatus::kClean:
        journal.open(resume_path, fingerprint, /*fresh=*/false);
        break;
      case JournalStatus::kDroppedTail:
        // The normal kill-mid-append shape: keep the intact prefix and
        // rewrite the journal without the partial tail.
        std::fprintf(stderr, "resume: %s; keeping %zu intact record(s)\n",
                     resumed.message.c_str(), resumed.records.size());
        if (journal.open(resume_path, fingerprint, /*fresh=*/true)) {
          for (const auto& r : resumed.records) journal.append(r);
        }
        break;
      case JournalStatus::kCorrupt:
      case JournalStatus::kMismatch:
        // A damaged or foreign journal must never skip work: warn, drop
        // every record, and re-run the full sweep.
        std::fprintf(stderr, "resume: journal '%s' unusable (%s: %s); "
                             "re-running the full sweep\n",
                     resume_path.c_str(), to_string(resumed.status),
                     resumed.message.c_str());
        resumed.records.clear();
        journal.open(resume_path, fingerprint, /*fresh=*/true);
        break;
    }
    if (!resumed.records.empty()) opts.resume = &resumed.records;
    if (journal.is_open()) opts.journal = &journal;
    std::fprintf(stderr, "resume: %zu journaled record(s) reused\n",
                 resumed.records.size());
  }

  const auto result = cfg.supervision.enabled
                          ? runner.supervised_sweep(scenarios, kinds, cfg, opts)
                          : runner.sweep(scenarios, kinds, cfg);

  std::printf("%-11s %-9s | %18s %18s | %s\n", "scenario", "benchmark",
              "real(s)", "modulated(s)", "check");
  for (const auto& c : result.cells) {
    const Summary r = summarize_elapsed(c.live);
    const Summary m = summarize_elapsed(c.modulated);
    std::printf("%-11s %-9s | %18s %18s | %s\n", c.scenario.c_str(),
                to_string(c.kind), cell(r).c_str(), cell(m).c_str(),
                check_label(r, m).c_str());
  }
  for (std::size_t k = 0; k < kinds.size(); ++k) {
    const Summary eth = summarize_elapsed(result.ethernet[k]);
    std::printf("%-11s %-9s | %18s %18s |\n", "Ethernet",
                to_string(kinds[k]), cell(eth).c_str(), "-");
  }

  if (cfg.supervision.enabled) {
    const SupervisionReport& sup = result.supervision;
    std::printf("\nsupervision: %llu trial(s) failed, %llu retry attempt(s), "
                "%llu timed out\n",
                static_cast<unsigned long long>(sup.trials_failed),
                static_cast<unsigned long long>(sup.trials_retried),
                static_cast<unsigned long long>(sup.trials_timed_out));
    for (const TrialError& e : sup.errors) {
      std::printf("  %s\n", describe(e).c_str());
    }
  }

  bool audit_breach = false;
  if (cfg.audit.enabled) {
    std::printf("\n%-25s %-12s | %8s %8s %8s %8s %6s\n", "audit", "verdict",
                "lat.err", "bw.err", "loss.d", "ks.rtt", "within");
    std::size_t pass = 0, breach = 0, unauditable = 0;
    for (const auto& per_scenario : result.audits) {
      for (const auto& rep : per_scenario) {
        const auto& s = rep.scores;
        std::printf("%-25s %-12s | %8.3f %8.3f %8.4f %8.3f %5.0f%%\n",
                    rep.label.c_str(), audit::to_string(rep.verdict),
                    s.latency_rel_err, s.bandwidth_rel_err, s.loss_delta,
                    s.ks_rtt, 100.0 * s.within_tolerance_fraction);
        for (const std::string& b : rep.breaches) {
          std::printf("%-25s   breach: %s\n", "", b.c_str());
        }
        switch (rep.verdict) {
          case audit::Verdict::kPass: ++pass; break;
          case audit::Verdict::kBreach: ++breach; break;
          case audit::Verdict::kUnauditable: ++unauditable; break;
        }
      }
    }
    std::printf("audit: %zu pass, %zu breach, %zu unauditable\n", pass,
                breach, unauditable);
    audit_breach = breach > 0;

    std::ostringstream out;
    out << "{\n\"schema\": \"tracemod-fidelity-trajectory-v1\",\n"
        << "\"tool_version\": \"" << kToolVersion << "\",\n"
        << "\"reports\": [";
    bool first = true;
    for (const auto& per_scenario : result.audits) {
      for (const auto& rep : per_scenario) {
        out << (first ? "\n" : ",\n");
        first = false;
        audit::write_fidelity_json(out, rep);
      }
    }
    out << "\n]\n}\n";
    if (!sim::io::write_artifact_or_complain(audit_path, out.str())) {
      return cli::kExitIo;
    }
    std::printf("fidelity trajectory: -> %s\n", audit_path.c_str());
  }

  if (!telemetry_prefix.empty()) {
    // Merge every trial's snapshot in table order (cells, then Ethernet
    // baselines) with trial-ordered labels -- the same file regardless of
    // thread count.
    std::vector<sim::LabeledTelemetry> snaps;
    for (const auto& c : result.cells) {
      const std::string cell_prefix =
          c.scenario + "/" + to_string(c.kind);
      for (auto& s : labeled_telemetry(c.live, cell_prefix + "/live"))
        snaps.push_back(std::move(s));
      for (auto& s : labeled_telemetry(c.modulated, cell_prefix + "/mod"))
        snaps.push_back(std::move(s));
    }
    for (std::size_t k = 0; k < kinds.size(); ++k) {
      for (auto& s : labeled_telemetry(
               result.ethernet[k],
               std::string("ethernet/") + to_string(kinds[k])))
        snaps.push_back(std::move(s));
    }

    const std::string json_path = telemetry_prefix + ".perfetto.json";
    const std::string metrics_path = telemetry_prefix + ".metrics.txt";
    std::ostringstream json;
    std::ostringstream metrics;
    sim::write_chrome_trace(json, snaps);
    sim::write_metrics_text(metrics, snaps);
    if (!sim::io::write_artifact_or_complain(json_path, json.str()) ||
        !sim::io::write_artifact_or_complain(metrics_path, metrics.str())) {
      return cli::kExitIo;
    }
    std::printf("\ntelemetry: %zu snapshot(s) -> %s (load in "
                "ui.perfetto.dev) and %s\n",
                snaps.size(), json_path.c_str(), metrics_path.c_str());
  }

  if (!json_path.empty()) {
    std::ostringstream out;
    write_sweep_json(out, result, cfg, kinds);
    if (!sim::io::write_artifact_or_complain(json_path, out.str())) {
      return cli::kExitIo;
    }
    std::printf("\nsweep json: -> %s\n", json_path.c_str());
  }

  journal.close();
  if (journal.degraded()) {
    std::fprintf(stderr,
                 "warning: sweep journal degraded mid-run (%s); results are "
                 "complete but this run is not resumable\n",
                 journal.degraded_reason().c_str());
  }

  std::printf("\ntotal wall clock: %.2f s\n", seconds_since(t0));
  // Degraded cells outrank an audit breach: exit 5 says "every cell ran,
  // but these trials carry error records" (the contract tracemod_cli.hpp
  // pins as kExitDegraded).  A journal plane that gave up mid-run is the
  // same grade of outcome: the table is good, the crash-safety is not.
  const int exit_code = result.supervision.degraded() || journal.degraded()
                            ? cli::kExitDegraded
                            : (audit_breach ? cli::kExitAudit : cli::kExitOk);
  board.finish(exit_code);
  return exit_code;
}
